// advisord serves the energy advisor over JSON HTTP — the paper's §1
// scenario ("programmers could take informed decisions to augment the
// energy efficiency of linear systems resolutions") as shared
// infrastructure rather than an in-process call:
//
//	GET  /v1/recommend     solver recommendation for a job shape
//	GET  /v1/predict       modelled energy/time/power for one solver
//	POST /v1/sweep         batched grid cells on the worker pool
//	POST /v1/schedule      fleet batch-scheduling simulation (internal/sched)
//	GET  /metrics          Prometheus exposition (with trace exemplars)
//	GET  /healthz          liveness/readiness (503 while draining)
//	GET  /version          build identity (also server_build_info)
//	GET  /debug/requests   recent / slowest / errored request digests
//	GET  /debug/trace/{id} one retained request trace (Perfetto JSON)
//	GET  /debug/slo        SLO compliance and burn rates
//
// The serving layer caches results (LRU+TTL over canonicalized
// requests), answers in-envelope recommend/predict misses from the
// learned surrogate in O(µs) (-surrogate, on by default), coalesces
// concurrent identical requests into one computation, and bounds
// admission (semaphore + bounded queue with 429/503 shedding). Every
// compute request is traced per stage under a W3C-style trace ID
// (inbound traceparent honoured) and retained in a bounded ring for
// live inspection. SIGINT/SIGTERM drains gracefully: new computations
// are refused while in-flight requests complete.
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		cacheEntries = flag.Int("cache-entries", 4096, "result cache capacity (bodies)")
		cacheTTL     = flag.Duration("cache-ttl", time.Hour, "result cache TTL (<0 disables expiry)")
		maxInflight  = flag.Int("max-inflight", 0, "concurrent model computations (0 = GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 0, "admission queue bound (0 = 4x max-inflight)")
		timeout      = flag.Duration("timeout", 15*time.Second, "per-request deadline")
		workers      = flag.Int("j", 0, "sweep worker budget (0 = GOMAXPROCS)")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		useSurrogate = flag.Bool("surrogate", true, "serve in-envelope cache misses from the learned surrogate")
		surRefresh   = flag.Bool("surrogate-refresh", false, "refresh surrogate-served cache bodies with a background exact compute")
		storeDir     = flag.String("store", "", "experiment store directory: serve recommend/sweep cells through it and persist computed ones")
		warmFrom     = flag.Bool("warm-from-store", false, "pre-render cached response bodies from the store at startup (requires -store)")
		withPprof    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		traceRing    = flag.Int("trace-ring", 256, "retained request traces for /debug/requests (<0 disables tracing)")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat    = flag.String("log-format", "logfmt", "log encoding: logfmt or json")
	)
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fatalUsage(err)
	}
	format, err := telemetry.ParseLogFormat(*logFormat)
	if err != nil {
		fatalUsage(err)
	}
	logger := telemetry.NewLogger(os.Stderr, telemetry.LoggerOptions{Level: level, Format: format}).
		With("app", "advisord")

	cfg := server.Config{
		CacheEntries:     *cacheEntries,
		CacheTTL:         *cacheTTL,
		MaxInflight:      *maxInflight,
		MaxQueue:         *maxQueue,
		RequestTimeout:   *timeout,
		SweepWorkers:     *workers,
		SurrogateRefresh: *surRefresh,
		TraceRing:        *traceRing,
		Logger:           logger,
	}
	if *useSurrogate {
		p, err := server.DefaultSurrogate()
		if err != nil {
			logger.Error("surrogate table load failed", "err", err)
			os.Exit(1)
		}
		cfg.Surrogate = p
		logger.Info("surrogate fast path on", "table", p.Version(), "models", p.Models(), "refresh", *surRefresh)
	}
	if *warmFrom && *storeDir == "" {
		fatalUsage(errors.New("-warm-from-store requires -store"))
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			logger.Error("experiment store open failed", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		defer st.Close()
		cfg.Store = st
		logger.Info("experiment store attached", "dir", *storeDir,
			"records", st.Len(), "digest", st.Digest())
	}
	svc := server.New(cfg)
	if *warmFrom {
		logger.Info("cache warmed from store", "bodies", svc.WarmFromStore())
	}
	handler := svc.Handler()
	if *withPprof {
		// The service mux owns the API routes; mount the profiler beside
		// them so production deployments keep pprof off by default.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logger.Info("pprof exposed", "path", "/debug/pprof/")
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		s := <-sig
		logger.Info("draining", "signal", s.String(), "budget", drainWait.String())
		svc.Drain() // refuse new computations; healthz flips to 503
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logger.Error("shutdown failed", "err", err)
		}
	}()

	logger.Info("listening", "addr", *addr, "version", server.Version, "trace_ring", *traceRing)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	}
	<-done
	logger.Info("drained, bye")
}

func fatalUsage(err error) {
	flag.CommandLine.SetOutput(os.Stderr)
	os.Stderr.WriteString("advisord: " + err.Error() + "\n")
	flag.Usage()
	os.Exit(2)
}
