package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestStoreAndParallelismPreserveOutput is the golden diff: `-figure all`
// output is byte-identical across every combination of store (absent,
// cold, warm) and worker count. The store may only remove recomputation,
// never change a byte; parallel builds may only change wall time.
func TestStoreAndParallelismPreserveOutput(t *testing.T) {
	render := func(workers int, st *store.Store) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := run(&buf, "all", "table", true, 0, 0, "", workers,
			faultsConfig{enabled: true, seed: 5}, st); err != nil {
			t.Fatalf("run(all, j=%d, store=%v): %v", workers, st != nil, err)
		}
		return buf.Bytes()
	}

	baseline := render(1, nil) // serial, storeless: the reference bytes

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cases := []struct {
		name    string
		workers int
		st      *store.Store
	}{
		{"parallel storeless", 8, nil},
		{"cold store serial", 1, st},
		{"warm store serial", 1, st},
		{"warm store parallel", 8, st},
	}
	for _, tc := range cases {
		if got := render(tc.workers, tc.st); !bytes.Equal(got, baseline) {
			t.Errorf("%s: output differs from serial storeless baseline", tc.name)
		}
	}
	if st.Len() == 0 {
		t.Fatal("store is empty after -figure all runs; cells were not persisted")
	}

	// A fresh handle over the same directory reproduces the bytes with
	// zero appends — everything served from disk.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := render(8, st2); !bytes.Equal(got, baseline) {
		t.Error("reopened store: output differs from baseline")
	}
	if st2.Appended() != 0 {
		t.Errorf("reopened store appended %d records, want 0 (everything was stored)", st2.Appended())
	}
}

// TestSparseFigureDeterministic pins the sparse artifact alone: bytes
// identical across worker counts and store states (the injector-off
// sparse golden contract).
func TestSparseFigureDeterministic(t *testing.T) {
	render := func(workers int, st *store.Store) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := run(&buf, "sparse", "table", true, 0, 0, "", workers, faultsConfig{}, st); err != nil {
			t.Fatalf("run(sparse, j=%d): %v", workers, err)
		}
		return buf.Bytes()
	}
	baseline := render(1, nil)
	if !strings.Contains(string(baseline), "accel") || !strings.Contains(string(baseline), "cpu") {
		t.Fatal("sparse figure shows only one device verdict")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, tc := range []struct {
		name    string
		workers int
		st      *store.Store
	}{
		{"parallel storeless", 8, nil},
		{"cold store parallel", 8, st},
		{"warm store serial", 1, st},
	} {
		if got := render(tc.workers, tc.st); !bytes.Equal(got, baseline) {
			t.Errorf("%s: sparse figure differs from serial storeless baseline", tc.name)
		}
	}
}

// TestErrorSurfaces pins the CLI's error contract: an unknown artifact
// name enumerates the valid set, and sparse rejects -cap loudly.
func TestErrorSurfaces(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, "figure8", "table", true, 0, 0, "", 1, faultsConfig{}, nil)
	if err == nil {
		t.Fatal("unknown artifact accepted")
	}
	for _, name := range []string{"table1", "sparse", "repetitions", "all"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-artifact error %q does not list %q", err, name)
		}
	}
	if err := run(&buf, "sparse", "table", true, 110, 0, "", 1, faultsConfig{}, nil); err == nil {
		t.Fatal("sparse artifact accepted -cap")
	}
	if err := run(&buf, "resilience", "table", true, 0, 0, "", 1, faultsConfig{}, nil); err == nil {
		t.Fatal("resilience artifact built without -faults")
	}
}
