// Command lsbench regenerates the paper's evaluation artifacts: Table 1
// and Figures 3–7, plus the §5.3 socket breakdown and the §2.1 message
// accounting. Results come from the analytic engine calibrated and
// cross-checked against the executable simulated cluster.
//
// Usage:
//
//	lsbench -figure all            # every table and figure as text
//	lsbench -figure all -j 8       # same output, 8 artifact builders at once
//	lsbench -figure 5 -format csv  # one figure as CSV
//	lsbench -figure 4 -cap 110     # reproduce under a 110 W package cap
//	lsbench -figure all -store .store  # memoize cells in the experiment store
//
// Artifacts are independent experiment cells, so -j N builds them
// concurrently under one worker budget; emission stays in the canonical
// order, making the output byte-identical to a serial run for every N.
//
// The observability flags additionally execute one monitored reference
// experiment (IMe, n=96, 24 ranks, half-load-2-sockets) on the simulated
// cluster with the telemetry layer on, stream its artifacts and print the
// per-rank activity / critical-path analysis:
//
//	lsbench -figure table1 -trace t.json -metrics m.prom
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/report"
	"repro/internal/store"
)

func main() {
	figure := flag.String("figure", "all", "artifact: table1, 3, 4, 5, 6, 7, sockets, messages, ablation, blocksize, slurm, repetitions, breakdown, sparse, all")
	format := flag.String("format", "table", "output format: table, csv or markdown")
	noOverlap := flag.Bool("no-overlap", false, "disable communication/computation overlap in the model")
	capW := flag.Float64("cap", 0, "RAPL package power cap in watts (0 = uncapped)")
	nb := flag.Int("nb", 0, "ScaLAPACK block size (default 64)")
	outdir := flag.String("out", "", "also store each artifact as a file under this directory")
	tracePath := flag.String("trace", "", "run an instrumented reference experiment and write its Perfetto trace JSON here")
	metricsPath := flag.String("metrics", "", "run an instrumented reference experiment and write its Prometheus exposition here")
	workers := flag.Int("j", 1, "concurrent artifact builders (0 = GOMAXPROCS); output is identical for every value")
	storeDir := flag.String("store", "", "experiment store directory: reuse stored cells and persist computed ones (output is identical with or without)")
	faults := flag.Bool("faults", false, "additionally build the resilience artifact: both solvers under a seed-driven crash schedule")
	mtbf := flag.Float64("mtbf", 0, "with -faults: mean time between rank crashes in virtual seconds (0 = sweep around the fault-free makespan)")
	seed := flag.Int64("seed", 5, "with -faults: crash-schedule seed")
	flag.Parse()

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir); err != nil {
			fmt.Fprintf(os.Stderr, "lsbench: %v\n", err)
			os.Exit(1)
		}
		defer st.Close()
	}
	if err := run(os.Stdout, *figure, *format, !*noOverlap, *capW, *nb, *outdir, *workers,
		faultsConfig{enabled: *faults, mtbf: *mtbf, seed: *seed}, st); err != nil {
		fmt.Fprintf(os.Stderr, "lsbench: %v\n", err)
		os.Exit(1)
	}
	if *tracePath != "" || *metricsPath != "" {
		if err := runInstrumented(os.Stdout, *tracePath, *metricsPath); err != nil {
			fmt.Fprintf(os.Stderr, "lsbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// runInstrumented executes the reference monitored experiment with the
// telemetry layer enabled and reports the trace analysis.
func runInstrumented(w io.Writer, tracePath, metricsPath string) error {
	var inst core.Instrumentation
	var files []*os.File
	open := func(path string) (*os.File, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		return f, nil
	}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	if tracePath != "" {
		f, err := open(tracePath)
		if err != nil {
			return err
		}
		inst.TraceW = f
	}
	if metricsPath != "" {
		f, err := open(metricsPath)
		if err != nil {
			return err
		}
		inst.MetricsW = f
	}
	e := core.Experiment{
		Algorithm: perfmodel.IMe,
		N:         96,
		Ranks:     24,
		Placement: cluster.HalfLoadTwoSockets,
		Seed:      1,
	}
	m, st, err := core.RunMonitoredInstrumented(e, inst)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "reference run: %s n=%d ranks=%d — %.3f J, %.6f s\n",
		e.Algorithm, e.N, e.Ranks, m.TotalJ, m.DurationS)
	if st != nil {
		if err := st.WriteReport(w); err != nil {
			return err
		}
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			return err
		}
	}
	files = nil
	return nil
}

// faultsConfig carries the resilience artifact's flags. The artifact is
// strictly opt-in: without -faults the output of every -figure value is
// byte-identical to earlier releases.
type faultsConfig struct {
	enabled bool
	mtbf    float64
	seed    int64
}

// run builds and emits the requested artifacts. st, when non-nil, is the
// content-addressed experiment store the cell-grid artifacts (sweep,
// repetitions, resilience) read through and persist to; the emitted
// bytes are identical with or without it — the store only removes
// recomputation.
func run(w io.Writer, figure, format string, overlap bool, capW float64, nb int, outdir string, workers int, faults faultsConfig, st *store.Store) error {
	runner := grid.New(workers)
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			return err
		}
	}
	emitOne := func(t *report.Table, w io.Writer, format string) error {
		switch format {
		case "csv":
			return t.CSV(w)
		case "markdown":
			return t.Markdown(w)
		default:
			return t.Render(w)
		}
	}
	artifactIdx := 0
	emit := func(t *report.Table) error {
		if err := emitOne(t, w, format); err != nil {
			return err
		}
		if outdir != "" {
			// The testing framework "automatically collects and stores
			// results in a human-readable format" (§4): one file per
			// artifact, in every format.
			for _, f := range []struct{ ext, format string }{
				{"txt", "table"}, {"csv", "csv"}, {"md", "markdown"},
			} {
				name := fmt.Sprintf("artifact%02d.%s", artifactIdx, f.ext)
				file, err := os.Create(filepath.Join(outdir, name))
				if err != nil {
					return err
				}
				if err := emitOne(t, file, f.format); err != nil {
					file.Close()
					return err
				}
				if err := file.Close(); err != nil {
					return err
				}
			}
			artifactIdx++
		}
		_, err := fmt.Fprintln(w)
		return err
	}

	needSweep := figure != "table1" && figure != "messages" &&
		figure != "ablation" && figure != "blocksize" && figure != "slurm" &&
		figure != "repetitions" && figure != "breakdown" && figure != "sparse"
	var sweep *core.Sweep
	if needSweep {
		var err error
		sweep, _, err = core.NewSweepStored(perfmodel.Params{Overlap: overlap, PowerCapW: capW, BlockSize: nb}, runner, st)
		if err != nil {
			return err
		}
	}
	// The sparse sweep is built here, next to the dense one, rather than
	// inside its artifact closure: closures run under the artifact-level
	// grid.Map, and a nested Map on the same runner deadlocks at -j 1
	// (the outer cell holds the only slot the inner acquire waits for).
	var sparseSweep *core.SparseSweep
	if (figure == "sparse" || figure == "all") && capW == 0 {
		var err error
		sparseSweep, _, err = core.NewSparseSweepStored(perfmodel.Params{}, runner, st)
		if err != nil {
			return err
		}
	}

	artifacts := map[string]func() (*report.Table, error){
		"table1": core.Table1,
		"3":      func() (*report.Table, error) { return sweep.Figure3(), nil },
		"4":      func() (*report.Table, error) { return sweep.Figure4(), nil },
		"5":      func() (*report.Table, error) { return sweep.Figure5(), nil },
		"6":      func() (*report.Table, error) { return sweep.Figure6(), nil },
		"7":      func() (*report.Table, error) { return sweep.Figure7(), nil },
		"sockets": func() (*report.Table, error) {
			return sweep.SocketBreakdown(17280, 144)
		},
		"messages": func() (*report.Table, error) {
			return core.MessageAccounting([][2]int{{48, 4}, {96, 8}, {144, 12}})
		},
		"ablation": func() (*report.Table, error) {
			return core.OverlapAblation([]core.AblationCase{
				{N: 96, Ranks: 4}, {N: 96, Ranks: 8}, {N: 144, Ranks: 12}, {N: 192, Ranks: 16},
			})
		},
		"blocksize": func() (*report.Table, error) {
			return core.BlockSizeAblation(192, 16, []int{4, 8, 16, 32, 48})
		},
		"slurm": func() (*report.Table, error) {
			return core.SlurmLeakStudy(perfmodel.ScaLAPACK, 17280, 144,
				[]float64{0, 0.1, 0.25, 0.5}, perfmodel.Params{Overlap: overlap, PowerCapW: capW})
		},
		"breakdown": func() (*report.Table, error) {
			return core.DurationBreakdown(perfmodel.Params{Overlap: overlap, PowerCapW: capW, BlockSize: nb})
		},
		"sparse": func() (*report.Table, error) {
			// The sparse model has no cap semantics (memory-bound kernels
			// never hit PL1); every sparse consumer — this artifact, the
			// campaign stage, advisord — models with default params so the
			// cells share one store identity.
			if capW > 0 {
				return nil, fmt.Errorf("the sparse artifact does not support -cap (sparse kernels are not cap-modelled)")
			}
			return sparseSweep.SparseFigure()
		},
		"repetitions": func() (*report.Table, error) {
			var cells []core.SweepKey
			for _, alg := range perfmodel.Algorithms() {
				for _, n := range cluster.PaperMatrixDims() {
					cells = append(cells, core.SweepKey{
						Algorithm: alg, N: n, Ranks: 144, Placement: cluster.FullLoad,
					})
				}
			}
			t, _, err := core.RepetitionStudyStored(cells,
				perfmodel.Params{Overlap: overlap, PowerCapW: capW}, 10, 0.05, st)
			return t, err
		},
	}

	if faults.enabled {
		artifacts["resilience"] = func() (*report.Table, error) {
			t, _, err := core.ResilienceArtifactStored(faults.mtbf, faults.seed, st)
			return t, err
		}
	} else if figure == "resilience" {
		return fmt.Errorf("the resilience artifact requires -faults")
	}

	if figure == "all" {
		names := []string{"table1", "3", "4", "5", "6", "7", "sockets", "messages", "ablation", "blocksize", "slurm", "repetitions", "breakdown"}
		if capW == 0 {
			// The sparse artifact has no cap semantics; capped "all" runs
			// keep the dense-only artifact set.
			names = append(names, "sparse")
		}
		if faults.enabled {
			names = append(names, "resilience")
		}
		// Build every artifact concurrently under the worker budget, then
		// emit serially in the canonical order: the output is byte-identical
		// to the serial loop, only the wall time changes.
		tables, err := grid.Map(runner, len(names), func(i int) (*report.Table, error) {
			return artifacts[names[i]]()
		})
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	}
	build, ok := artifacts[figure]
	if !ok {
		// Enumerate the real artifact set so the error never goes stale as
		// figures are added.
		names := make([]string, 0, len(artifacts)+1)
		for name := range artifacts {
			names = append(names, name)
		}
		sort.Strings(names)
		names = append(names, "all")
		return fmt.Errorf("unknown artifact %q (want one of: %s)", figure, strings.Join(names, ", "))
	}
	t, err := build()
	if err != nil {
		return err
	}
	return emit(t)
}
