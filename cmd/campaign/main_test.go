package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// TestList pins the registry listing: every declared campaign with its
// stage breakdown, no store required.
func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := mainErr(&buf, "", "", 1, 0, "", "", "", "", true); err != nil {
		t.Fatalf("-list: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"paper", "scaling", "paper-grid", "resilience"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

// TestNothingToDo pins the usage error when no action flag is given.
func TestNothingToDo(t *testing.T) {
	err := mainErr(io.Discard, t.TempDir(), "", 1, 0, "", "", "", "", false)
	if err == nil || !strings.Contains(err.Error(), "nothing to do") {
		t.Fatalf("no action: err = %v, want 'nothing to do'", err)
	}
}

// TestUnknownCampaign pins the lookup error for a bad -run value.
func TestUnknownCampaign(t *testing.T) {
	err := mainErr(io.Discard, t.TempDir(), "nope", 1, 0, "", "", "", "", false)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown campaign: err = %v, want it to name 'nope'", err)
	}
}

// TestRunScalingWritesSummary runs the small scaling campaign end to end
// through the CLI entry point: summary JSON on disk, warm re-run
// computes nothing, budget interruption surfaces ErrInterrupted.
func TestRunScalingWritesSummary(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	summary := filepath.Join(dir, "summary.json")

	var buf bytes.Buffer
	if err := mainErr(&buf, storeDir, "scaling", 2, 0, summary, "", "", "", false); err != nil {
		t.Fatalf("cold scaling run: %v", err)
	}
	var sum campaign.Summary
	b, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &sum); err != nil {
		t.Fatalf("summary JSON: %v", err)
	}
	if sum.ComputedTotal == 0 || sum.ComputedTotal != sum.CellsTotal {
		t.Fatalf("cold summary computed %d of %d cells, want all", sum.ComputedTotal, sum.CellsTotal)
	}

	buf.Reset()
	if err := mainErr(&buf, storeDir, "scaling", 2, 0, summary, "", "", "", false); err != nil {
		t.Fatalf("warm scaling run: %v", err)
	}
	b, err = os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &sum); err != nil {
		t.Fatalf("warm summary JSON: %v", err)
	}
	if sum.ComputedTotal != 0 || sum.HitsTotal != sum.CellsTotal {
		t.Fatalf("warm summary computed %d, hits %d of %d — want 0 computed, all hits",
			sum.ComputedTotal, sum.HitsTotal, sum.CellsTotal)
	}

	// Budget interruption on a fresh store: the error is ErrInterrupted
	// (the exit-3 path) and the summary still lands on disk.
	budgetStore := filepath.Join(dir, "budget")
	err = mainErr(io.Discard, budgetStore, "scaling", 1, 5, summary, "", "", "", false)
	if !errors.Is(err, campaign.ErrInterrupted) {
		t.Fatalf("budgeted run: err = %v, want ErrInterrupted", err)
	}
	b, err = os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &sum); err != nil {
		t.Fatalf("interrupted summary JSON: %v", err)
	}
	if !sum.Interrupted || sum.ComputedTotal != 5 {
		t.Fatalf("interrupted summary: interrupted=%v computed=%d, want true/5",
			sum.Interrupted, sum.ComputedTotal)
	}
}
