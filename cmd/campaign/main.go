// Command campaign orchestrates experiment campaigns over the
// content-addressed store: staged cell sets (the paper grid, scaling
// sweeps, resilience studies) run across the worker pool with
// store-backed memoization — a cell already in the store is never
// computed again, and an interrupted campaign resumes with zero lost
// work.
//
// Usage:
//
//	campaign -list                               # show declared campaigns
//	campaign -store .store -run paper            # compute missing cells
//	campaign -store .store -run paper -j 8       # same, 8 workers
//	campaign -store .store -run paper -summary s.json
//	campaign -store .store -artifacts out/       # emit figure tables from the store
//	campaign -store .store -experiments EXPERIMENTS.md
//	campaign -store .store -bench BENCH_store.json
//
// Artifacts are emitted strictly from the store (a missing cell is an
// error, not a recompute) with provenance headers naming the store
// digest and record count.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/campaign"
	"repro/internal/store"
)

func main() {
	storeDir := flag.String("store", ".store", "experiment store directory (created if missing)")
	run := flag.String("run", "", "campaign to run: paper or scaling")
	workers := flag.Int("j", 1, "concurrent cell evaluations (0 = GOMAXPROCS); results are identical for every value")
	maxCells := flag.Int("max-cells", 0, "stop after computing this many cells (0 = no budget) — interruption drill; resume by re-running")
	summaryPath := flag.String("summary", "", "write the run summary JSON here")
	artifactsDir := flag.String("artifacts", "", "emit every paper artifact from the store into this directory")
	experimentsPath := flag.String("experiments", "", "regenerate EXPERIMENTS.md from the store at this path")
	benchPath := flag.String("bench", "", "run the paper campaign cold then warm against the store and write the comparison JSON here")
	list := flag.Bool("list", false, "list declared campaigns and exit")
	flag.Parse()

	if err := mainErr(os.Stdout, *storeDir, *run, *workers, *maxCells,
		*summaryPath, *artifactsDir, *experimentsPath, *benchPath, *list); err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		if errors.Is(err, campaign.ErrInterrupted) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

func mainErr(w io.Writer, storeDir, run string, workers, maxCells int,
	summaryPath, artifactsDir, experimentsPath, benchPath string, list bool) error {

	if list {
		return printList(w)
	}
	if run == "" && artifactsDir == "" && experimentsPath == "" && benchPath == "" {
		return fmt.Errorf("nothing to do: pass -run, -artifacts, -experiments, -bench or -list")
	}

	st, err := store.Open(storeDir)
	if err != nil {
		return err
	}
	defer st.Close()
	if n := st.Corrupt(); n > 0 {
		fmt.Fprintf(w, "store: skipped %d torn line(s) from an interrupted writer; the affected cells will be recomputed\n", n)
	}

	if benchPath != "" {
		return bench(w, st, workers, benchPath)
	}

	var runErr error
	if run != "" {
		c, err := campaign.Lookup(run)
		if err != nil {
			return err
		}
		sum, err := campaign.Run(c, st, campaign.RunOptions{Workers: workers, MaxCells: maxCells})
		if err != nil && !errors.Is(err, campaign.ErrInterrupted) {
			return err
		}
		runErr = err
		printSummary(w, sum)
		if summaryPath != "" {
			if err := writeJSON(summaryPath, sum); err != nil {
				return err
			}
		}
	}
	if artifactsDir != "" {
		names, err := campaign.EmitArtifacts(st, artifactsDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "emitted %d artifacts to %s (%s)\n", len(names), artifactsDir, campaign.Provenance(st))
	}
	if experimentsPath != "" {
		if err := campaign.EmitExperiments(st, experimentsPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "regenerated %s from the store\n", experimentsPath)
	}
	return runErr
}

func printList(w io.Writer) error {
	reg := campaign.Registry()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := reg[name]
		fmt.Fprintf(w, "%-10s %4d cells  %s\n", c.Name, c.Cells(), c.Description)
		for _, s := range c.Stages {
			fmt.Fprintf(w, "    %-20s %4d cells\n", s.Name, s.Cells)
		}
	}
	return nil
}

func printSummary(w io.Writer, sum campaign.Summary) {
	for _, s := range sum.Stages {
		fmt.Fprintf(w, "stage %-20s computed %4d  hits %4d\n", s.Name, s.Computed, s.Hits)
	}
	fmt.Fprintf(w, "campaign %s: computed %d, hits %d of %d cells in %.3fs; store has %d records (digest %.12s…)\n",
		sum.Campaign, sum.ComputedTotal, sum.HitsTotal, sum.CellsTotal, sum.RunWallS,
		sum.StoreRecords, sum.StoreDigest)
	if sum.Interrupted {
		fmt.Fprintln(w, "interrupted by cell budget — re-run to resume with zero lost work")
	}
}

// benchResult is the BENCH_store.json schema: the cold-vs-warm evidence
// that the store never computes a cell twice.
type benchResult struct {
	Campaign     string  `json:"campaign"`
	Workers      int     `json:"workers"`
	ColdWallS    float64 `json:"cold_wall_s"`
	ColdComputed int     `json:"cold_computed"`
	WarmWallS    float64 `json:"warm_wall_s"`
	WarmComputed int     `json:"warm_computed"`
	WarmHits     int     `json:"warm_hits"`
	Speedup      float64 `json:"speedup"`
	StoreRecords int     `json:"store_records"`
	StoreDigest  string  `json:"store_digest"`
}

// bench runs the paper campaign against the store twice — the first run
// computes whatever is missing (cold when the store is fresh), the
// second must compute nothing — and records the wall-clock ratio.
func bench(w io.Writer, st *store.Store, workers int, path string) error {
	c := campaign.Paper()
	opt := campaign.RunOptions{Workers: workers}
	cold, err := campaign.Run(c, st, opt)
	if err != nil {
		return err
	}
	warm, err := campaign.Run(c, st, opt)
	if err != nil {
		return err
	}
	if warm.ComputedTotal != 0 {
		return fmt.Errorf("warm run computed %d cells, want 0 — store memoization broken", warm.ComputedTotal)
	}
	res := benchResult{
		Campaign:     c.Name,
		Workers:      opt.Workers,
		ColdWallS:    cold.RunWallS,
		ColdComputed: cold.ComputedTotal,
		WarmWallS:    warm.RunWallS,
		WarmComputed: warm.ComputedTotal,
		WarmHits:     warm.HitsTotal,
		Speedup:      cold.RunWallS / warm.RunWallS,
		StoreRecords: warm.StoreRecords,
		StoreDigest:  warm.StoreDigest,
	}
	fmt.Fprintf(w, "cold: %.3fs (%d computed)  warm: %.6fs (%d computed, %d hits)  speedup %.0f×\n",
		res.ColdWallS, res.ColdComputed, res.WarmWallS, res.WarmComputed, res.WarmHits, res.Speedup)
	return writeJSON(path, res)
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
