// Command energymon runs one monitored experiment on the simulated
// cluster — the full §4 pipeline: per-node communicators, designated
// monitoring ranks, PAPI powercap counters around the distributed solve —
// and writes one human-readable energy file per processor, exactly as the
// paper's framework does.
//
// Usage:
//
//	energymon -alg ime -n 384 -ranks 96 -outdir results/
//
// The observability flags stream the run's telemetry:
//
//	energymon -alg ime -n 96 -ranks 24 -trace t.json -metrics m.prom
//
// -trace writes a Perfetto/Chrome trace (load it at ui.perfetto.dev;
// analyse it with cmd/tracestats) and -metrics a Prometheus text
// exposition. Neither changes the simulated energies or durations.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/cluster"
	"repro/internal/ime"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/monitor"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/scalapack"
)

func main() {
	algName := flag.String("alg", "ime", "solver: ime or scalapack")
	n := flag.Int("n", 384, "system order")
	ranks := flag.Int("ranks", 48, "MPI ranks (multiple of 48 for full-load, 24 for half-load)")
	placement := flag.String("placement", "auto", "node placement: auto, full, half1, half2")
	seed := flag.Int64("seed", 1, "input generator seed")
	nb := flag.Int("nb", 16, "ScaLAPACK block size")
	outdir := flag.String("outdir", ".", "directory for per-processor energy files")
	tracePath := flag.String("trace", "", "write a Perfetto/Chrome trace JSON to this file")
	metricsPath := flag.String("metrics", "", "write a Prometheus text exposition to this file")
	flag.Parse()

	if err := run(*algName, *n, *ranks, *placement, *seed, *nb, *outdir, *tracePath, *metricsPath); err != nil {
		fmt.Fprintf(os.Stderr, "energymon: %v\n", err)
		os.Exit(1)
	}
}

func run(algName string, n, ranks int, placement string, seed int64, nb int, outdir, tracePath, metricsPath string) error {
	var alg perfmodel.Algorithm
	switch algName {
	case "ime":
		alg = perfmodel.IMe
	case "scalapack":
		alg = perfmodel.ScaLAPACK
	default:
		return fmt.Errorf("unknown algorithm %q", algName)
	}
	spec := cluster.MarconiA3()
	var pl cluster.Placement
	switch placement {
	case "auto":
		// Prefer full-load; fall back to half-load-2-sockets when the rank
		// count only fills one socket per node.
		switch {
		case ranks%spec.CoresPerNode() == 0:
			pl = cluster.FullLoad
		case ranks%spec.CoresPerSocket == 0:
			pl = cluster.HalfLoadTwoSockets
		default:
			return fmt.Errorf("no placement fits %d ranks (need a multiple of %d or %d); pass -placement explicitly",
				ranks, spec.CoresPerNode(), spec.CoresPerSocket)
		}
	case "full":
		pl = cluster.FullLoad
	case "half1":
		pl = cluster.HalfLoadOneSocket
	case "half2":
		pl = cluster.HalfLoadTwoSockets
	default:
		return fmt.Errorf("unknown placement %q", placement)
	}
	cfg, err := cluster.NewConfig(ranks, pl, spec)
	if err != nil {
		return err
	}
	if ranks > n {
		return fmt.Errorf("%d ranks exceed order %d", ranks, n)
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}

	sys := mat.NewRandomSystem(n, seed)
	w, err := mpi.NewWorld(ranks, mpi.Options{Config: &cfg})
	if err != nil {
		return err
	}
	if tracePath != "" {
		w.EnableTracing()
	}
	if metricsPath != "" {
		kernel.EnableMetrics(w.EnableMetrics())
	}
	var mu sync.Mutex
	var reports []monitor.NodeReport
	err = w.Run(func(p *mpi.Proc) error {
		s, err := monitor.Setup(p, p.World())
		if err != nil {
			return err
		}
		if err := s.StartMonitoring(); err != nil {
			return err
		}
		x, err := solve(p, alg, sys, nb)
		if err != nil {
			return err
		}
		rep, err := s.StopMonitoring()
		if err != nil {
			return err
		}
		all, err := monitor.CollectReports(p, p.World(), rep)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			mu.Lock()
			reports = all
			mu.Unlock()
			if rr := mat.RelativeResidual(sys.A, x, sys.B); rr > 1e-9 {
				return fmt.Errorf("solution residual %g too large", rr)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	for i := range reports {
		path, err := monitor.WriteNodeReport(outdir, &reports[i])
		if err != nil {
			return err
		}
		fmt.Printf("node %d: %.3f J over %.6f s (%.1f W) → %s\n",
			reports[i].Node, reports[i].TotalJoules(), reports[i].ElapsedS,
			reports[i].AvgPowerW(), path)
	}
	sum := monitor.Summarize(reports)
	path, err := monitor.WriteRunSummary(outdir, sum)
	if err != nil {
		return err
	}
	fmt.Printf("run: %s %s on %s — %.3f J, %.6f s, avg %.1f W across %d nodes → %s\n",
		alg, fmt.Sprintf("n=%d", n), cfg.Label(), sum.TotalJ, sum.DurationS, sum.AvgPowerW(), sum.Nodes, path)

	if tracePath != "" {
		if err := writeTrace(w, tracePath); err != nil {
			return err
		}
		st, err := mpi.AnalyzeSpans(w.Spans())
		if err != nil {
			return err
		}
		fmt.Printf("trace: %d spans → %s (critical path %.6f s of %.6f s makespan)\n",
			len(w.Spans()), tracePath, st.CriticalS, st.Makespan)
	}
	if metricsPath != "" {
		if err := writeMetrics(w, metricsPath); err != nil {
			return err
		}
		fmt.Printf("metrics: %s\n", metricsPath)
	}
	return nil
}

// writeTrace exports the recorded spans and RAPL counter tracks.
func writeTrace(w *mpi.World, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := w.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics snapshots final energies and exports the registry.
func writeMetrics(w *mpi.World, path string) error {
	w.SnapshotEnergyMetrics()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := w.MetricsRegistry().WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func solve(p *mpi.Proc, alg perfmodel.Algorithm, sys *mat.System, nb int) ([]float64, error) {
	switch alg {
	case perfmodel.IMe:
		return ime.SolveParallel(p, p.World(), sys, ime.ParallelOptions{ChargeCosts: true})
	default:
		return scalapack.Pdgesv(p, p.World(), sys, scalapack.ParallelOptions{BlockSize: nb, ChargeCosts: true})
	}
}
