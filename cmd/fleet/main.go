// Command fleet runs the energy-aware multi-tenant batch scheduler
// (internal/sched) over a workload trace on a simulated Marconi A3
// fleet, and writes the deterministic fleet report, the per-node
// Perfetto timeline and the scheduler benchmark artifact.
//
// Usage:
//
//	fleet -synthetic 200 -seed 1 -nodes 1024 -budget-w 250000   # seeded trace
//	fleet -workload trace.json -mtbf 3600 -policy energy-aware  # replay a file
//	fleet -synthetic 48 -trace fleet.trace.json                 # Perfetto timeline
//	fleet -synthetic 200 -nodes 1024 -bench BENCH_fleet.json    # vs FCFS baseline
//
// Determinism is the contract: the same seed and workload produce
// byte-identical reports, accounting and timelines at every -j and
// across restarts resuming predictions from -store.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/surrogate"
)

func main() {
	var (
		workloadPath = flag.String("workload", "", "workload trace file (JSON; see internal/sched.Workload)")
		synthetic    = flag.Int("synthetic", 0, "generate a seeded synthetic workload with this many jobs")
		seed         = flag.Int64("seed", 1, "synthetic workload seed")
		nodes        = flag.Int("nodes", 0, "fleet size in nodes (0 = full Marconi A3, 3188)")
		budgetW      = flag.Float64("budget-w", 0, "cluster power budget in watts (0 = unlimited)")
		mtbf         = flag.Float64("mtbf", 0, "mean time between rank crashes per job, virtual seconds (0 = fault-free)")
		faultSeed    = flag.Int64("fault-seed", 0, "fault-plane seed (with the workload fixed, varies only the crashes)")
		policyName   = flag.String("policy", "energy-aware", "scheduling policy: energy-aware or fcfs")
		workers      = flag.Int("j", 0, "prediction workers (0 = GOMAXPROCS); the schedule is identical for every value")
		useSurrogate = flag.Bool("surrogate", true, "price in-envelope candidates with the learned surrogate")
		storeDir     = flag.String("store", "", "experiment store directory: memoize exact predictions across runs")
		outPath      = flag.String("out", "", "write the fleet report here (default stdout)")
		tracePath    = flag.String("trace", "", "write the per-node Perfetto timeline here")
		benchPath    = flag.String("bench", "", "run energy-aware AND fcfs, write the comparison artifact here")
	)
	flag.Parse()

	if err := run(*workloadPath, *synthetic, *seed, *nodes, *budgetW, *mtbf, *faultSeed,
		*policyName, *workers, *useSurrogate, *storeDir, *outPath, *tracePath, *benchPath); err != nil {
		fmt.Fprintln(os.Stderr, "fleet:", err)
		os.Exit(1)
	}
}

func run(workloadPath string, synthetic int, seed int64, nodes int, budgetW, mtbf float64,
	faultSeed int64, policyName string, workers int, useSurrogate bool,
	storeDir, outPath, tracePath, benchPath string) error {
	var w sched.Workload
	switch {
	case workloadPath != "" && synthetic > 0:
		return fmt.Errorf("-workload and -synthetic are mutually exclusive")
	case workloadPath != "":
		f, err := os.Open(workloadPath)
		if err != nil {
			return err
		}
		w, err = sched.ParseWorkload(f)
		f.Close()
		if err != nil {
			return err
		}
	case synthetic > 0:
		w = sched.Synthetic(seed, synthetic)
	default:
		return fmt.Errorf("name a workload: -workload FILE or -synthetic N")
	}

	policy, err := sched.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	cfg := sched.Config{
		Nodes:        nodes,
		PowerBudgetW: budgetW,
		Policy:       policy,
		MTBF:         mtbf,
		FaultSeed:    faultSeed,
		Workers:      workers,
		Trace:        tracePath != "",
	}
	if useSurrogate {
		if cfg.Surrogate, err = surrogate.Default(); err != nil {
			return err
		}
	}
	if storeDir != "" {
		st, err := store.Open(storeDir)
		if err != nil {
			return err
		}
		defer st.Close()
		cfg.Store = st
	}

	if benchPath != "" {
		return bench(cfg, w, benchPath)
	}

	t0 := time.Now()
	o, err := sched.Simulate(cfg, w)
	if err != nil {
		return err
	}
	wall := time.Since(t0)
	body, err := o.Report.Marshal()
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, body, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(body)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := o.Trace.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	rep := o.Report
	fmt.Fprintf(os.Stderr, "fleet: %d jobs on %d nodes in %v wall (%.0f jobs/s): makespan %.1fs, energy %.1f kJ, peak %.0f W, util %.1f%%, digest %s\n",
		len(rep.Jobs), rep.Nodes, wall.Round(time.Millisecond),
		float64(len(rep.Jobs))/wall.Seconds(), rep.MakespanS, rep.TotalEnergyJ/1e3,
		rep.PeakPowerW, rep.UtilizationPct, rep.ScheduleDigest[:16])
	if o.StoreHits+o.StoreComputed > 0 {
		fmt.Fprintf(os.Stderr, "fleet: store: %d predictions resumed, %d computed\n", o.StoreHits, o.StoreComputed)
	}
	return nil
}

// benchArtifact is the BENCH_fleet.json envelope: the energy-aware
// scheduler against the energy-oblivious FCFS baseline on one workload.
type benchArtifact struct {
	Description string       `json:"description"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Workload    benchWork    `json:"workload"`
	EnergyAware benchRun     `json:"energy_aware"`
	FCFS        benchRun     `json:"fcfs_baseline"`
	Savings     benchSavings `json:"savings"`
}

type benchWork struct {
	Seed         int64   `json:"seed"`
	Jobs         int     `json:"jobs"`
	Nodes        int     `json:"nodes"`
	PowerBudgetW float64 `json:"power_budget_w"`
	MTBFS        float64 `json:"mtbf_s"`
}

type benchRun struct {
	WallMS         float64 `json:"wall_ms"`
	JobsPerSec     float64 `json:"jobs_per_sec"`
	MakespanS      float64 `json:"makespan_s"`
	TotalEnergyJ   float64 `json:"total_energy_j"`
	PeakPowerW     float64 `json:"peak_power_w"`
	UtilizationPct float64 `json:"utilization_pct"`
	MeanWaitS      float64 `json:"mean_wait_s"`
	Backfills      int     `json:"backfills"`
	ScheduleDigest string  `json:"schedule_digest"`
}

type benchSavings struct {
	EnergyPct   float64 `json:"energy_pct"`
	MakespanPct float64 `json:"makespan_pct"`
}

func bench(cfg sched.Config, w sched.Workload, path string) error {
	runOne := func(policy sched.Policy) (benchRun, error) {
		c := cfg
		c.Policy = policy
		t0 := time.Now()
		o, err := sched.Simulate(c, w)
		if err != nil {
			return benchRun{}, err
		}
		wall := time.Since(t0)
		r := o.Report
		return benchRun{
			WallMS:         float64(wall.Microseconds()) / 1e3,
			JobsPerSec:     float64(len(r.Jobs)) / wall.Seconds(),
			MakespanS:      r.MakespanS,
			TotalEnergyJ:   r.TotalEnergyJ,
			PeakPowerW:     r.PeakPowerW,
			UtilizationPct: r.UtilizationPct,
			MeanWaitS:      r.MeanWaitS,
			Backfills:      r.Backfills,
			ScheduleDigest: r.ScheduleDigest,
		}, nil
	}
	aware, err := runOne(sched.EnergyAware)
	if err != nil {
		return err
	}
	base, err := runOne(sched.FCFSBaseline)
	if err != nil {
		return err
	}
	art := benchArtifact{
		Description: "Energy-aware batch scheduler vs energy-oblivious FCFS baseline on one seeded synthetic workload (cmd/fleet -bench). Schedules and energies are deterministic (the digests pin them); wall times and jobs/sec are machine-dependent — regenerate on the target machine before comparing.",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workload: benchWork{
			Seed: w.Seed, Jobs: len(w.Jobs), Nodes: cfg.Nodes,
			PowerBudgetW: cfg.PowerBudgetW, MTBFS: cfg.MTBF,
		},
		EnergyAware: aware,
		FCFS:        base,
		Savings: benchSavings{
			EnergyPct:   100 * (base.TotalEnergyJ - aware.TotalEnergyJ) / base.TotalEnergyJ,
			MakespanPct: 100 * (base.MakespanS - aware.MakespanS) / base.MakespanS,
		},
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fleet: bench: energy-aware %.1f kJ vs fcfs %.1f kJ (%.1f%% saved), makespan %.1fs vs %.1fs, %.0f vs %.0f jobs/s -> %s\n",
		aware.TotalEnergyJ/1e3, base.TotalEnergyJ/1e3, art.Savings.EnergyPct,
		aware.MakespanS, base.MakespanS, aware.JobsPerSec, base.JobsPerSec, path)
	return nil
}
