// Command table1 prints the paper's Table 1: the nine node/rank/socket
// configurations tested on Marconi A3.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()
	t, err := core.Table1()
	if err != nil {
		fmt.Fprintf(os.Stderr, "table1: %v\n", err)
		os.Exit(1)
	}
	if *csv {
		err = t.CSV(os.Stdout)
	} else {
		err = t.Render(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "table1: %v\n", err)
		os.Exit(1)
	}
}
