// Command tracestats analyses a trace recorded by the simulated MPI
// runtime (energymon/lsbench -trace, or mpi.World.WriteChromeTrace): it
// reports each rank's compute/communication/wait breakdown and the
// critical path through the virtual-time DAG — the chain of compute spans
// and matched send→recv pairs that bounds the makespan.
//
// Usage:
//
//	tracestats trace.json
//	tracestats -csv trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mpi"
)

func main() {
	csv := flag.Bool("csv", false, "emit the per-rank table as CSV instead of aligned text")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestats [-csv] <trace.json>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *csv); err != nil {
		fmt.Fprintf(os.Stderr, "tracestats: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, csv bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := mpi.ReadChromeTrace(f)
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	st, err := mpi.AnalyzeSpans(spans)
	if err != nil {
		return err
	}
	if csv {
		return st.WriteCSV(os.Stdout)
	}
	return st.WriteReport(os.Stdout)
}
