// Command tracestats analyses a trace recorded by the simulated MPI
// runtime (energymon/lsbench -trace, or mpi.World.WriteChromeTrace): it
// reports each rank's compute/communication/wait breakdown and the
// critical path through the virtual-time DAG — the chain of compute spans
// and matched send→recv pairs that bounds the makespan.
//
// -parse-only validates that a file is well-formed Perfetto/Chrome trace
// JSON and counts its spans without the MPI rank analysis; advisord's
// request traces (from /debug/trace/{id}) mix serving stages with
// modelled solver spans and have no send/recv pairs to critical-path.
//
// Usage:
//
//	tracestats trace.json
//	tracestats -csv trace.json
//	tracestats -parse-only trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mpi"
)

func main() {
	csv := flag.Bool("csv", false, "emit the per-rank table as CSV instead of aligned text")
	parseOnly := flag.Bool("parse-only", false, "validate the trace file and report the span count, skipping rank analysis")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestats [-csv] [-parse-only] <trace.json>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *csv, *parseOnly); err != nil {
		fmt.Fprintf(os.Stderr, "tracestats: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, csv, parseOnly bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := mpi.ReadChromeTrace(f)
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if parseOnly {
		if len(spans) == 0 {
			return fmt.Errorf("%s: no duration spans", path)
		}
		fmt.Printf("%s: valid trace, %d spans\n", path, len(spans))
		return nil
	}
	st, err := mpi.AnalyzeSpans(spans)
	if err != nil {
		return err
	}
	if csv {
		return st.WriteCSV(os.Stdout)
	}
	return st.WriteReport(os.Stdout)
}
