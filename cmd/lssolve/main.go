// Command lssolve solves a dense linear system with the Inhibition Method
// and/or ScaLAPACK-style Gaussian elimination on the simulated cluster,
// verifying the solution by residual — the paper's workload as a
// standalone tool.
//
// Usage:
//
//	lssolve -n 200 -seed 1 -ranks 4 -alg both      # generated input
//	lssolve -gen sys.txt -n 100 -seed 2            # write an input file
//	lssolve -in sys.txt -alg ime -ranks 5          # solve from a file
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/ime"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/scalapack"
)

func main() {
	in := flag.String("in", "", "input system file (text or binary); empty = generate")
	gen := flag.String("gen", "", "write a generated system to this path and exit")
	n := flag.Int("n", 200, "order of the generated system")
	seed := flag.Int64("seed", 1, "generator seed")
	ranks := flag.Int("ranks", 4, "MPI ranks of the simulated job")
	alg := flag.String("alg", "both", "solver: ime, scalapack or both")
	nb := flag.Int("nb", 32, "ScaLAPACK block size")
	out := flag.String("out", "", "write the solution vector to this path")
	kl := flag.Int("kl", -1, "solve a banded system with kl subdiagonals (with -ku)")
	ku := flag.Int("ku", -1, "banded superdiagonals")
	mtx := flag.String("mtx", "", "load the matrix from a MatrixMarket file (b = A·1)")
	trace := flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the rank timelines to this file")
	flag.Parse()
	tracePath = *trace

	if *mtx != "" {
		if err := runMatrixMarket(*mtx, *ranks, *nb); err != nil {
			fmt.Fprintf(os.Stderr, "lssolve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *kl >= 0 || *ku >= 0 {
		if err := runBanded(*n, *kl, *ku, *ranks, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "lssolve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*in, *gen, *n, *seed, *ranks, *alg, *nb, *out); err != nil {
		fmt.Fprintf(os.Stderr, "lssolve: %v\n", err)
		os.Exit(1)
	}
}

// runMatrixMarket solves A·x = A·1 for a matrix loaded from a MatrixMarket
// file, so externally produced inputs drive the solvers directly.
func runMatrixMarket(path string, ranks, nb int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	a, err := mat.ReadMatrixMarket(f)
	if err != nil {
		return err
	}
	if a.Rows() != a.Cols() {
		return fmt.Errorf("matrix is %d×%d, need square", a.Rows(), a.Cols())
	}
	ones := make([]float64, a.Cols())
	for i := range ones {
		ones[i] = 1
	}
	sys := &mat.System{A: a, B: a.MulVec(ones), X: ones}
	fmt.Printf("loaded %d×%d MatrixMarket matrix from %s\n", a.Rows(), a.Cols(), path)
	x, dur, err := solveOne("scalapack", sys, ranks, nb)
	if err != nil {
		return err
	}
	fmt.Printf("scalapack  ranks=%-3d virtual-time=%.6fs relative-residual=%.3g\n",
		ranks, dur, mat.RelativeResidual(sys.A, x, sys.B))
	return nil
}

// runBanded demonstrates the banded path: generate, solve with the
// sequential band solver and (for ranks > 1) the distributed SPIKE solver,
// verify against the dense solution.
func runBanded(n, kl, ku, ranks int, seed int64) error {
	if kl < 0 {
		kl = 0
	}
	if ku < 0 {
		ku = 0
	}
	band, err := mat.NewBandedDiagonallyDominant(n, kl, ku, seed)
	if err != nil {
		return err
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%7) - 3
	}
	x, err := scalapack.Dgbsv(band, rhs)
	if err != nil {
		return err
	}
	dense := band.Dense()
	fmt.Printf("banded n=%d kl=%d ku=%d: relative residual %.3g\n",
		n, kl, ku, mat.RelativeResidual(dense, x, rhs))
	ref, err := scalapack.Dgesv(&mat.System{A: dense, B: rhs})
	if err != nil {
		return err
	}
	var maxDiff float64
	for i := range x {
		d := x[i] - ref[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max deviation from dense solver: %.3g\n", maxDiff)
	if ranks > 1 {
		w, err := mpi.NewWorld(ranks, mpi.Options{})
		if err != nil {
			return err
		}
		var mu sync.Mutex
		var px []float64
		if err := w.Run(func(p *mpi.Proc) error {
			sol, err := scalapack.Pdgbsv(p, p.World(), band, rhs)
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				mu.Lock()
				px = sol
				mu.Unlock()
			}
			return nil
		}); err != nil {
			return err
		}
		fmt.Printf("parallel SPIKE ranks=%d: relative residual %.3g, virtual-time %.6fs\n",
			ranks, mat.RelativeResidual(dense, px, rhs), w.MaxClock())
	}
	return nil
}

func run(in, gen string, n int, seed int64, ranks int, alg string, nb int, out string) error {
	if gen != "" {
		sys := mat.NewRandomSystem(n, seed)
		if err := mat.SaveSystem(gen, sys); err != nil {
			return err
		}
		fmt.Printf("wrote order-%d system to %s\n", n, gen)
		return nil
	}

	var sys *mat.System
	var err error
	if in != "" {
		sys, err = mat.LoadSystem(in)
		if err != nil {
			return err
		}
		fmt.Printf("loaded order-%d system from %s\n", sys.N(), in)
	} else {
		sys = mat.NewRandomSystem(n, seed)
		fmt.Printf("generated order-%d system (seed %d)\n", n, seed)
	}

	algs := []string{"ime", "scalapack"}
	switch alg {
	case "both":
	case "ime", "scalapack":
		algs = []string{alg}
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	var solution []float64
	for _, a := range algs {
		x, dur, err := solveOne(a, sys, ranks, nb)
		if err != nil {
			return fmt.Errorf("%s: %w", a, err)
		}
		rr := mat.RelativeResidual(sys.A, x, sys.B)
		fmt.Printf("%-10s ranks=%-3d virtual-time=%.6fs relative-residual=%.3g\n", a, ranks, dur, rr)
		solution = x
	}

	if out != "" && solution != nil {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		for i, v := range solution {
			fmt.Fprintf(f, "%d %.17g\n", i, v)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote solution to %s\n", out)
	}
	return nil
}

// tracePath, when set, receives a Chrome trace of the last solve.
var tracePath string

func solveOne(alg string, sys *mat.System, ranks, nb int) ([]float64, float64, error) {
	w, err := mpi.NewWorld(ranks, mpi.Options{})
	if err != nil {
		return nil, 0, err
	}
	if tracePath != "" {
		w.EnableTracing()
		defer func() {
			f, err := os.Create(tracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lssolve: trace: %v\n", err)
				return
			}
			defer f.Close()
			if err := w.WriteChromeTrace(f); err != nil {
				fmt.Fprintf(os.Stderr, "lssolve: trace: %v\n", err)
				return
			}
			fmt.Printf("wrote rank timeline trace to %s\n", tracePath)
		}()
	}
	var mu sync.Mutex
	var x []float64
	err = w.Run(func(p *mpi.Proc) error {
		var sol []float64
		var err error
		switch alg {
		case "ime":
			sol, err = ime.SolveParallel(p, p.World(), sys, ime.ParallelOptions{ChargeCosts: true})
		default:
			sol, err = scalapack.Pdgesv(p, p.World(), sys, scalapack.ParallelOptions{
				BlockSize: nb, ChargeCosts: true,
			})
		}
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			mu.Lock()
			x = sol
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return x, w.MaxClock(), nil
}
