// Command powertrace samples the RAPL counters through PAPI while a
// sequential solver reduces a system step by step, printing a power
// time-series per domain — the fine-grained view the paper's start/stop
// framework aggregates into one number.
//
// Usage:
//
//	powertrace -n 1024 -alg ime -samples 32
//	powertrace -alg scalapack
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ime"
	"repro/internal/mat"
	"repro/internal/papi"
	"repro/internal/power"
	"repro/internal/rapl"
	"repro/internal/scalapack"
)

// stepper is a solver exposing one reduction step at a time.
type stepper interface {
	Remaining() int
	StepFlops() float64
	Step() error
}

// imeStepper adapts ime.Table.
type imeStepper struct{ t *ime.Table }

func (s imeStepper) Remaining() int     { return s.t.Level() }
func (s imeStepper) StepFlops() float64 { return s.t.StepFlops() }
func (s imeStepper) Step() error        { return s.t.Step() }

func main() {
	n := flag.Int("n", 1024, "system order")
	alg := flag.String("alg", "ime", "solver: ime or scalapack")
	seed := flag.Int64("seed", 1, "generator seed")
	samples := flag.Int("samples", 32, "number of trace samples")
	flag.Parse()

	if err := run(*n, *alg, *seed, *samples); err != nil {
		fmt.Fprintf(os.Stderr, "powertrace: %v\n", err)
		os.Exit(1)
	}
}

func run(n int, alg string, seed int64, samples int) error {
	if samples < 1 {
		return fmt.Errorf("need at least one sample")
	}
	sys := mat.NewRandomSystem(n, seed)

	var st stepper
	var rate, bytesPerFlop, activity, totalFlops float64
	var solve func() ([]float64, error)
	switch alg {
	case "ime":
		tab, err := ime.NewTable(sys)
		if err != nil {
			return err
		}
		st = imeStepper{tab}
		rate, bytesPerFlop, activity = ime.EffFlopsPerCore, ime.DramBytesPerFlop, ime.CoreActivity
		totalFlops = ime.TotalFlops(n)
		solve = tab.Solution
	case "scalapack":
		lu, err := scalapack.NewLU(sys.A)
		if err != nil {
			return err
		}
		st = lu
		rate, bytesPerFlop, activity = scalapack.EffFlopsPerCore, scalapack.DramBytesPerFlop, scalapack.CoreActivity
		totalFlops = scalapack.TotalFlops(n)
		solve = func() ([]float64, error) { return lu.Solve(sys.B) }
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	node, err := rapl.NewNode(0, power.Skylake8160())
	if err != nil {
		return err
	}
	lib, err := papi.Init(papi.Version, node)
	if err != nil {
		return err
	}
	es, err := lib.CreateEventSet()
	if err != nil {
		return err
	}
	if err := es.AddNamedEvents(papi.DefaultEventNames()); err != nil {
		return err
	}
	if err := es.Start(); err != nil {
		return err
	}

	fmt.Printf("%-12s %-12s %-12s %-12s %-12s %-8s\n",
		"t[s]", "PKG0[W]", "PKG1[W]", "DRAM0[W]", "DRAM1[W]", "left")
	clock := 0.0
	prev := make([]int64, 4)
	prevT := 0.0
	// Never sample finer than a few RAPL refresh intervals, or the trace
	// would alternate between stale and double-counted readings.
	const minSpacing = 2.5e-3
	spacing := totalFlops / rate / float64(samples)
	if spacing < minSpacing {
		spacing = minSpacing
		fmt.Fprintf(os.Stderr,
			"powertrace: run is short (%.3fs virtual); sampling every %.1fms instead of %d samples\n",
			totalFlops/rate, spacing*1e3, samples)
	}
	for st.Remaining() > 0 {
		sampleAt := clock + spacing
		for clock < sampleAt && st.Remaining() > 0 {
			flops := st.StepFlops()
			seconds := flops / rate
			if err := node.AccountBusy(0, seconds*activity); err != nil {
				return err
			}
			if err := node.AccountBytes(0, flops*bytesPerFlop); err != nil {
				return err
			}
			clock += seconds
			if err := node.SetTime(clock); err != nil {
				return err
			}
			if err := st.Step(); err != nil {
				return err
			}
		}
		vals, err := es.Read()
		if err != nil {
			return err
		}
		dt := clock - prevT
		if dt > 0 {
			fmt.Printf("%-12.6f %-12.2f %-12.2f %-12.2f %-12.2f %-8d\n",
				clock,
				wattsOf(vals[0]-prev[0], dt), wattsOf(vals[1]-prev[1], dt),
				wattsOf(vals[2]-prev[2], dt), wattsOf(vals[3]-prev[3], dt),
				st.Remaining())
		}
		copy(prev, vals)
		prevT = clock
	}
	totals, elapsed, err := es.Stop()
	if err != nil {
		return err
	}
	var sum float64
	for _, v := range totals {
		sum += float64(v) / papi.MicrojoulesPerJoule
	}
	x, err := solve()
	if err != nil {
		return err
	}
	fmt.Printf("\n%s total: %.3f J over %.6f s (avg %.1f W), residual %.3g\n",
		alg, sum, elapsed, sum/elapsed, mat.RelativeResidual(sys.A, x, sys.B))
	return nil
}

func wattsOf(deltaUJ int64, dt float64) float64 {
	return float64(deltaUJ) / papi.MicrojoulesPerJoule / dt
}
