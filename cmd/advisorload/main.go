// advisorload is a closed-loop load generator for advisord: a fixed
// number of workers each keep exactly one request in flight (fire,
// await, fire again), so measured latency is service latency, not
// coordinated-omission artifacts from an open-loop arrival clock.
//
// The request mix walks the paper's §5.1 grid — matrix orders × rank
// counts × placements — with an optional off-grid fraction that jitters
// the matrix order away from the grid (exercising the surrogate between
// its knots), and -distinct perturbs every request to a unique never-
// cached shape, pinning the cache-miss path. Every request carries a
// client-chosen traceparent, so the slowest observations print with the
// trace ID to fetch from /debug/trace/{id}. Results (throughput, latency
// percentiles, status counts, the server's build identity and its SLO
// verdicts) are printed and optionally written as JSON for
// BENCH_advisord.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

type result struct {
	latency time.Duration
	status  int
	err     bool
	traceID string
}

// versionInfo mirrors the server's GET /version body.
type versionInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Surrogate string `json:"surrogate"`
}

// sloObjective is the slice of the /debug/slo body the verdict line needs.
type sloObjective struct {
	Name     string `json:"name"`
	Requests uint64 `json:"requests"`
	Verdict  string `json:"verdict"`
}

type slowTrace struct {
	TraceID   string  `json:"trace_id"`
	LatencyMs float64 `json:"latency_ms"`
}

type summary struct {
	URL         string             `json:"url"`
	Endpoint    string             `json:"endpoint"`
	Concurrency int                `json:"concurrency"`
	DurationS   float64            `json:"duration_s"`
	Distinct    bool               `json:"distinct"`
	OffGridPct  int                `json:"offgrid_pct"`
	Requests    int                `json:"requests"`
	Errors      int                `json:"errors"`
	Status      map[string]int     `json:"status"`
	Throughput  float64            `json:"throughput_rps"`
	LatencyMs   map[string]float64 `json:"latency_ms"`
	Server      *versionInfo       `json:"server,omitempty"`
	SLOVerdicts map[string]string  `json:"slo_verdicts,omitempty"`
	Slowest     []slowTrace        `json:"slowest_traces,omitempty"`
}

func main() {
	var (
		base     = flag.String("url", "http://localhost:8080", "advisord base URL")
		conc     = flag.Int("c", 8, "closed-loop workers (in-flight requests)")
		duration = flag.Duration("duration", 10*time.Second, "measurement window")
		endpoint = flag.String("endpoint", "mix", "request mix: recommend, predict or mix")
		offGrid  = flag.Int("offgrid", 30, "percent of requests jittered off the paper grid")
		distinct = flag.Bool("distinct", false, "make every request unique (pins the cache-miss path)")
		seed     = flag.Int64("seed", 1, "request-mix RNG seed")
		jsonOut  = flag.String("json", "", "write the summary as JSON to this file")
	)
	flag.Parse()
	if *conc <= 0 {
		log.Fatal("advisorload: -c must be positive")
	}
	switch *endpoint {
	case "recommend", "predict", "mix":
	default:
		log.Fatalf("advisorload: -endpoint %q (want recommend, predict or mix)", *endpoint)
	}
	if *offGrid < 0 || *offGrid > 100 {
		log.Fatal("advisorload: -offgrid must be 0..100")
	}

	client := &http.Client{Timeout: 30 * time.Second}

	// Identify the server under test before loading it.
	server := fetchVersion(client, *base)
	if server != nil {
		fmt.Printf("server: advisord %s (%s, surrogate %s)\n", server.Version, server.GoVersion, server.Surrogate)
	}

	var uniq atomic.Int64 // distinct-mode perturbation, shared across workers
	var wg sync.WaitGroup
	results := make([][]result, *conc)
	deadline := time.Now().Add(*duration)
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for time.Now().Before(deadline) {
				url := *base + nextPath(rng, *endpoint, *offGrid, *distinct, &uniq)
				// Name the trace client-side (W3C traceparent) so a slow
				// observation maps straight to a fetchable server trace.
				traceID := fmt.Sprintf("%016x%016x", rng.Uint64()|1, rng.Uint64())
				req, err := http.NewRequest(http.MethodGet, url, nil)
				if err != nil {
					results[w] = append(results[w], result{err: true})
					continue
				}
				req.Header.Set("traceparent", "00-"+traceID+"-0000000000000001-01")
				start := time.Now()
				resp, err := client.Do(req)
				lat := time.Since(start)
				r := result{latency: lat, traceID: traceID}
				if err != nil {
					r.err = true
				} else {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					r.status = resp.StatusCode
				}
				results[w] = append(results[w], r)
			}
		}(w)
	}
	wg.Wait()

	var all []result
	for _, rs := range results {
		all = append(all, rs...)
	}
	if len(all) == 0 {
		log.Fatal("advisorload: no requests completed")
	}
	s := summarize(all, *base, *endpoint, *conc, *duration, *distinct, *offGrid)
	s.Server = server
	fmt.Printf("advisorload: %d requests in %.1fs (%.0f req/s), %d errors\n",
		s.Requests, s.DurationS, s.Throughput, s.Errors)
	fmt.Printf("latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
		s.LatencyMs["p50"], s.LatencyMs["p95"], s.LatencyMs["p99"], s.LatencyMs["max"])
	var codes []string
	for code := range s.Status {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		fmt.Printf("status %s: %d\n", code, s.Status[code])
	}
	for _, st := range s.Slowest {
		fmt.Printf("slow request: %.3fms  trace %s  (GET %s/debug/trace/%s)\n",
			st.LatencyMs, st.TraceID, *base, st.TraceID)
	}

	// The server's own verdict on the run: observed SLO compliance.
	if verdicts := fetchSLOVerdicts(client, *base); len(verdicts) > 0 {
		s.SLOVerdicts = map[string]string{}
		var names []string
		for _, o := range verdicts {
			s.SLOVerdicts[o.Name] = o.Verdict
			names = append(names, o.Name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("slo %s: %s\n", name, s.SLOVerdicts[name])
		}
	}

	if *jsonOut != "" {
		b, err := json.MarshalIndent(s, "", " ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if s.Errors > 0 || s.Status[fmt.Sprint(http.StatusOK)] != s.Requests {
		os.Exit(1)
	}
}

// fetchVersion asks the server who it is; nil when /version is absent
// (an older advisord), which is informational, not fatal.
func fetchVersion(client *http.Client, base string) *versionInfo {
	resp, err := client.Get(base + "/version")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var vi versionInfo
	if err := json.NewDecoder(resp.Body).Decode(&vi); err != nil {
		return nil
	}
	return &vi
}

// fetchSLOVerdicts reads /debug/slo after the run.
func fetchSLOVerdicts(client *http.Client, base string) []sloObjective {
	resp, err := client.Get(base + "/debug/slo")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var rep struct {
		Objectives []sloObjective `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil
	}
	var out []sloObjective
	for _, o := range rep.Objectives {
		if o.Requests > 0 {
			out = append(out, o)
		}
	}
	return out
}

// nextPath draws one request from the mix: a paper grid cell, its matrix
// order jittered off-grid for offGrid percent of draws (±20%, clamped to
// stay a plausible job), and perturbed to a globally unique order under
// -distinct so no two requests share a cache key.
func nextPath(rng *rand.Rand, endpoint string, offGrid int, distinct bool, uniq *atomic.Int64) string {
	dims := cluster.PaperMatrixDims()
	rankCounts := cluster.PaperRankCounts()
	placements := cluster.Placements()
	n := dims[rng.Intn(len(dims))]
	ranks := rankCounts[rng.Intn(len(rankCounts))]
	pl := placements[rng.Intn(len(placements))]
	if rng.Intn(100) < offGrid {
		n = n + rng.Intn(n/5+1) - n/10 // ±10% around the grid order
	}
	if distinct {
		// Walk orders upward from the grid so every request is a fresh
		// cache key but stays inside the modelled range.
		n += int(uniq.Add(1)) % 1000
	}
	if n < 4*ranks {
		n = 4 * ranks
	}
	ep := endpoint
	if ep == "mix" {
		if rng.Intn(2) == 0 {
			ep = "recommend"
		} else {
			ep = "predict"
		}
	}
	var b strings.Builder
	if ep == "recommend" {
		objectives := []string{"min-energy", "min-time", "max-gflops-per-watt"}
		fmt.Fprintf(&b, "/v1/recommend?n=%d&ranks=%d&placement=%s&objective=%s",
			n, ranks, pl, objectives[rng.Intn(len(objectives))])
	} else {
		alg := "IMe"
		if rng.Intn(2) == 0 {
			alg = "ScaLAPACK"
		}
		fmt.Fprintf(&b, "/v1/predict?alg=%s&n=%d&ranks=%d&placement=%s", alg, n, ranks, pl)
	}
	return b.String()
}

// slowestCount bounds the printed worst observations.
const slowestCount = 3

func summarize(all []result, url, endpoint string, conc int, d time.Duration, distinct bool, offGrid int) summary {
	lats := make([]float64, 0, len(all))
	s := summary{
		URL:         url,
		Endpoint:    endpoint,
		Concurrency: conc,
		DurationS:   d.Seconds(),
		Distinct:    distinct,
		OffGridPct:  offGrid,
		Requests:    len(all),
		Status:      map[string]int{},
	}
	for _, r := range all {
		if r.err {
			s.Errors++
			continue
		}
		s.Status[fmt.Sprint(r.status)]++
		lats = append(lats, float64(r.latency)/float64(time.Millisecond))
	}
	sort.Float64s(lats)
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	s.LatencyMs = map[string]float64{
		"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99), "max": pct(1),
	}
	s.Throughput = float64(s.Requests) / d.Seconds()

	// The worst observations, with the trace IDs to go fetch.
	byLatency := append([]result(nil), all...)
	sort.Slice(byLatency, func(i, j int) bool { return byLatency[i].latency > byLatency[j].latency })
	for _, r := range byLatency {
		if len(s.Slowest) == slowestCount {
			break
		}
		if r.err || r.traceID == "" {
			continue
		}
		s.Slowest = append(s.Slowest, slowTrace{
			TraceID:   r.traceID,
			LatencyMs: float64(r.latency) / float64(time.Millisecond),
		})
	}
	return s
}
