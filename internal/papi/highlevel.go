package papi

import (
	"fmt"
	"os"
	"sort"
)

// The PAPI High Level-API (§2.3: it "defines only a fraction of functions
// compared to the PAPI Low Level-API ... but these functions are enough to
// extract performance data using pre-sets events"). Regions wrap code
// sections; each region accumulates the default powercap events between
// its begin and end markers, possibly over multiple entries.

// RegionStats is the accumulated measurement of one named region.
type RegionStats struct {
	Name   string
	Count  int
	Events []string
	// Microjoule accumulates per event across all entries of the region.
	Microjoule []int64
	// Seconds accumulates the virtual time spent inside the region.
	Seconds float64
}

// TotalJoules sums the region's events.
func (r *RegionStats) TotalJoules() float64 {
	var uj int64
	for _, v := range r.Microjoule {
		uj += v
	}
	return float64(uj) / MicrojoulesPerJoule
}

// hlState is the lazily initialised high-level machinery of a Library.
type hlState struct {
	es      *EventSet
	open    map[string]hlOpen
	regions map[string]*RegionStats
}

type hlOpen struct {
	values []int64
	at     float64
}

// HLRegionBegin opens (or re-enters) a named region
// (PAPI_hl_region_begin). The first call initialises the high-level event
// set with the default powercap events.
func (l *Library) HLRegionBegin(name string) error {
	if l == nil {
		return ErrNotInitialized
	}
	if name == "" {
		return fmt.Errorf("papi: empty region name")
	}
	if l.hl == nil {
		es, err := l.CreateEventSet()
		if err != nil {
			return err
		}
		if err := es.AddNamedEvents(DefaultEventNames()); err != nil {
			return err
		}
		if err := es.Start(); err != nil {
			return err
		}
		l.hl = &hlState{
			es:      es,
			open:    make(map[string]hlOpen),
			regions: make(map[string]*RegionStats),
		}
	}
	if _, dup := l.hl.open[name]; dup {
		return fmt.Errorf("papi: region %q already open", name)
	}
	values, err := l.hl.es.Read()
	if err != nil {
		return err
	}
	l.hl.open[name] = hlOpen{values: values, at: l.node.Now()}
	return nil
}

// HLRegionEnd closes a named region (PAPI_hl_region_end), folding the
// measured deltas into its statistics.
func (l *Library) HLRegionEnd(name string) error {
	if l == nil || l.hl == nil {
		return fmt.Errorf("papi: no region open (PAPI_ENOTRUN)")
	}
	begin, ok := l.hl.open[name]
	if !ok {
		return fmt.Errorf("papi: region %q is not open", name)
	}
	delete(l.hl.open, name)
	values, err := l.hl.es.Read()
	if err != nil {
		return err
	}
	r := l.hl.regions[name]
	if r == nil {
		r = &RegionStats{
			Name:       name,
			Events:     DefaultEventNames(),
			Microjoule: make([]int64, len(values)),
		}
		l.hl.regions[name] = r
	}
	r.Count++
	for i := range values {
		r.Microjoule[i] += values[i] - begin.values[i]
	}
	r.Seconds += l.node.Now() - begin.at
	return nil
}

// HLWriteOutput stores the region report in a human-readable file under
// dir, the analog of real PAPI's papi_hl_output directory. Returns the
// file path.
func (l *Library) HLWriteOutput(dir string) (string, error) {
	if l == nil || l.hl == nil {
		return "", fmt.Errorf("papi: no high-level regions recorded")
	}
	path := dir + "/papi_hl_output.txt"
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	fmt.Fprintf(f, "# PAPI high-level region report\n")
	for _, r := range l.HLReport() {
		fmt.Fprintf(f, "region: %s\n  entries: %d\n  seconds: %.9f\n", r.Name, r.Count, r.Seconds)
		for i, name := range r.Events {
			fmt.Fprintf(f, "  %s_uJ: %d\n", name, r.Microjoule[i])
		}
	}
	return path, f.Close()
}

// HLReport returns the accumulated regions sorted by name
// (the analog of PAPI_hl_print_output's papi_hl_output files).
func (l *Library) HLReport() []RegionStats {
	if l == nil || l.hl == nil {
		return nil
	}
	names := make([]string, 0, len(l.hl.regions))
	for name := range l.hl.regions {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]RegionStats, 0, len(names))
	for _, name := range names {
		out = append(out, *l.hl.regions[name])
	}
	return out
}
