package papi

import (
	"os"
	"strings"
	"testing"
)

func TestHLRegions(t *testing.T) {
	lib, node := newLib(t)
	if err := lib.HLRegionBegin("allocation"); err != nil {
		t.Fatal(err)
	}
	if err := node.AccountBusy(0, 24); err != nil {
		t.Fatal(err)
	}
	if err := node.SetTime(1); err != nil {
		t.Fatal(err)
	}
	if err := lib.HLRegionEnd("allocation"); err != nil {
		t.Fatal(err)
	}
	// Two entries of a second region.
	for i := 0; i < 2; i++ {
		if err := lib.HLRegionBegin("solve"); err != nil {
			t.Fatal(err)
		}
		if err := node.AccountBusy(0, 48); err != nil {
			t.Fatal(err)
		}
		if err := node.SetTime(float64(2 + i)); err != nil {
			t.Fatal(err)
		}
		if err := lib.HLRegionEnd("solve"); err != nil {
			t.Fatal(err)
		}
	}
	report := lib.HLReport()
	if len(report) != 2 {
		t.Fatalf("%d regions, want 2", len(report))
	}
	if report[0].Name != "allocation" || report[1].Name != "solve" {
		t.Fatalf("region order %q %q", report[0].Name, report[1].Name)
	}
	alloc, solve := report[0], report[1]
	if alloc.Count != 1 || solve.Count != 2 {
		t.Fatalf("counts %d/%d, want 1/2", alloc.Count, solve.Count)
	}
	if alloc.TotalJoules() <= 0 || solve.TotalJoules() <= 0 {
		t.Fatal("regions measured no energy")
	}
	if solve.TotalJoules() <= alloc.TotalJoules() {
		t.Fatal("the busier region should consume more energy")
	}
	if solve.Seconds <= alloc.Seconds {
		t.Fatalf("solve %gs should exceed allocation %gs", solve.Seconds, alloc.Seconds)
	}
}

func TestHLRegionMisuse(t *testing.T) {
	lib, _ := newLib(t)
	if err := lib.HLRegionEnd("nope"); err == nil {
		t.Fatal("end before any begin accepted")
	}
	if err := lib.HLRegionBegin(""); err == nil {
		t.Fatal("empty region name accepted")
	}
	if err := lib.HLRegionBegin("r"); err != nil {
		t.Fatal(err)
	}
	if err := lib.HLRegionBegin("r"); err == nil {
		t.Fatal("double begin accepted")
	}
	if err := lib.HLRegionEnd("other"); err == nil {
		t.Fatal("ending a region that is not open accepted")
	}
	if err := lib.HLRegionEnd("r"); err != nil {
		t.Fatal(err)
	}
	var nilLib *Library
	if err := nilLib.HLRegionBegin("x"); err == nil {
		t.Fatal("nil library accepted")
	}
	if nilLib.HLReport() != nil {
		t.Fatal("nil library report should be nil")
	}
}

func TestHLWriteOutput(t *testing.T) {
	lib, node := newLib(t)
	if _, err := lib.HLWriteOutput(t.TempDir()); err == nil {
		t.Fatal("output before any region accepted")
	}
	if err := lib.HLRegionBegin("solve"); err != nil {
		t.Fatal(err)
	}
	if err := node.SetTime(1); err != nil {
		t.Fatal(err)
	}
	if err := lib.HLRegionEnd("solve"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := lib.HLWriteOutput(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"region: solve", "entries: 1", "seconds: 1.0"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestHLNestedRegions(t *testing.T) {
	lib, node := newLib(t)
	if err := lib.HLRegionBegin("outer"); err != nil {
		t.Fatal(err)
	}
	if err := lib.HLRegionBegin("inner"); err != nil {
		t.Fatal(err)
	}
	if err := node.SetTime(1); err != nil {
		t.Fatal(err)
	}
	if err := lib.HLRegionEnd("inner"); err != nil {
		t.Fatal(err)
	}
	if err := node.SetTime(2); err != nil {
		t.Fatal(err)
	}
	if err := lib.HLRegionEnd("outer"); err != nil {
		t.Fatal(err)
	}
	rep := lib.HLReport()
	var outer, inner RegionStats
	for _, r := range rep {
		if r.Name == "outer" {
			outer = r
		} else {
			inner = r
		}
	}
	if outer.Seconds <= inner.Seconds {
		t.Fatalf("outer %gs must cover inner %gs", outer.Seconds, inner.Seconds)
	}
}
