// Package papi reimplements the slice of the Performance API the paper's
// monitoring framework uses (§2.3, §4): library and thread initialisation,
// the powercap component, event-name-to-code translation, event sets, and
// start/stop/read of energy counters.
//
// The structure follows PAPI's layering: this package is the Portable
// Layer; the Machine Specific Layer underneath is the simulated RAPL node
// (internal/rapl). As in real PAPI's powercap component, event values are
// energy readings scaled to an integer unit — we report microjoules.
package papi

import (
	"errors"
	"fmt"

	"repro/internal/rapl"
)

// Version is the simulated PAPI version the library must be initialised
// with, mirroring PAPI_VER_CURRENT checking.
const Version = 7_00_01

// Errors mirroring PAPI return codes.
var (
	ErrNotInitialized = errors.New("papi: library not initialized (PAPI_ENOINIT)")
	ErrBadVersion     = errors.New("papi: version mismatch (PAPI_EVER)")
	ErrNoEvent        = errors.New("papi: event does not exist (PAPI_ENOEVNT)")
	ErrNotRunning     = errors.New("papi: event set not running (PAPI_ENOTRUN)")
	ErrIsRunning      = errors.New("papi: event set already running (PAPI_EISRUN)")
	ErrEmptySet       = errors.New("papi: event set has no events (PAPI_EINVAL)")
	ErrDestroyed      = errors.New("papi: event set destroyed (PAPI_EINVAL)")
)

// MicrojoulesPerJoule converts model joules to reported event units.
const MicrojoulesPerJoule = 1e6

// EventCode identifies one addable event, as returned by EventNameToCode.
type EventCode int

// EventInfo describes one available event of a component.
type EventInfo struct {
	Code      EventCode
	Name      string
	Units     string
	Component string
	Domain    rapl.Domain
}

// Library is one initialised PAPI instance bound to the RAPL of one node.
// Real PAPI is process-global; one simulated node maps to one process in
// the paper's deployment, so the monitoring rank of each node owns one
// Library.
type Library struct {
	node        *rapl.Node
	events      []EventInfo
	byName      map[string]EventCode
	threadsInit bool
	hl          *hlState
}

// Init initialises the library against a node's RAPL, checking the caller
// was compiled against the current version (PAPI_library_init semantics).
func Init(version int, node *rapl.Node) (*Library, error) {
	if version != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, version, Version)
	}
	if node == nil {
		return nil, errors.New("papi: nil RAPL node")
	}
	lib := &Library{node: node, byName: make(map[string]EventCode)}
	add := func(component string, d rapl.Domain) {
		code := EventCode(len(lib.events))
		name := component + ":::" + d.String()
		lib.events = append(lib.events, EventInfo{
			Code:      code,
			Name:      name,
			Units:     "uJ",
			Component: component,
			Domain:    d,
		})
		lib.byName[name] = code
	}
	// The powercap component: package and DRAM domains. As in the paper
	// (§4), "the monitored events will belong only to powercap event set
	// offered by PAPI"; most RAPL events of interest are included there.
	for _, d := range []rapl.Domain{rapl.PKG0, rapl.PKG1, rapl.DRAM0, rapl.DRAM1} {
		add("powercap", d)
	}
	// The rapl component additionally exposes the PP0 (core) sub-domains,
	// as real PAPI does when the direct-MSR backend is available.
	for _, d := range []rapl.Domain{rapl.PKG0, rapl.PKG1, rapl.DRAM0, rapl.DRAM1, rapl.PP00, rapl.PP01} {
		add("rapl", d)
	}
	return lib, nil
}

// ThreadInit enables per-thread counter use (PAPI_thread_init analog). The
// monitoring framework calls it right after Init.
func (l *Library) ThreadInit() error {
	if l == nil {
		return ErrNotInitialized
	}
	l.threadsInit = true
	return nil
}

// Components lists the available component names.
func (l *Library) Components() []string { return []string{"powercap", "rapl"} }

// ComponentEvents lists the events of one component, the analog of
// enumerating with PAPI_enum_cmp_event. An empty name lists everything.
func (l *Library) ComponentEvents(component string) []EventInfo {
	var out []EventInfo
	for _, e := range l.events {
		if component == "" || e.Component == component {
			out = append(out, e)
		}
	}
	return out
}

// EventNameToCode translates an event name to its code
// (papi_event_name_to_code in the paper's papi_monitoring.h).
func (l *Library) EventNameToCode(name string) (EventCode, error) {
	code, ok := l.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoEvent, name)
	}
	return code, nil
}

// EventSet is a created-but-not-necessarily-running set of events.
type EventSet struct {
	lib       *Library
	events    []EventInfo
	running   bool
	destroyed bool
	startRaw  []uint32
	// accumulated holds wrap-corrected deltas carried across counter
	// refreshes while running, so arbitrarily long runs read correctly.
	accumulated []float64
	startTime   float64
}

// CreateEventSet returns an empty event set (PAPI_create_eventset).
func (l *Library) CreateEventSet() (*EventSet, error) {
	if l == nil {
		return nil, ErrNotInitialized
	}
	return &EventSet{lib: l}, nil
}

// AddEvent appends an event by code (PAPI_add_event).
func (es *EventSet) AddEvent(code EventCode) error {
	if err := es.usable(); err != nil {
		return err
	}
	if es.running {
		return ErrIsRunning
	}
	if int(code) < 0 || int(code) >= len(es.lib.events) {
		return fmt.Errorf("%w: code %d", ErrNoEvent, code)
	}
	es.events = append(es.events, es.lib.events[code])
	return nil
}

// AddNamedEvents resolves and adds each name, the pattern the paper's
// framework uses with its event_names array.
func (es *EventSet) AddNamedEvents(names []string) error {
	for _, n := range names {
		code, err := es.lib.EventNameToCode(n)
		if err != nil {
			return err
		}
		if err := es.AddEvent(code); err != nil {
			return err
		}
	}
	return nil
}

// Names returns the names of the added events in order.
func (es *EventSet) Names() []string {
	out := make([]string, len(es.events))
	for i, e := range es.events {
		out[i] = e.Name
	}
	return out
}

// Start begins counting and records the virtual start time
// (the paper's PAPI_start_AND_time).
func (es *EventSet) Start() error {
	if err := es.usable(); err != nil {
		return err
	}
	if es.running {
		return ErrIsRunning
	}
	if len(es.events) == 0 {
		return ErrEmptySet
	}
	es.startRaw = make([]uint32, len(es.events))
	es.accumulated = make([]float64, len(es.events))
	for i, e := range es.events {
		raw, err := es.readRaw(e)
		if err != nil {
			return err
		}
		es.startRaw[i] = raw
	}
	es.startTime = es.lib.node.Now()
	es.running = true
	return nil
}

// Read returns the microjoules accumulated per event since Start without
// stopping (PAPI_read). Reading also folds any counter wrap into the
// accumulator, so callers sampling at least once per wrap horizon get
// exact totals.
func (es *EventSet) Read() ([]int64, error) {
	if err := es.usable(); err != nil {
		return nil, err
	}
	if !es.running {
		return nil, ErrNotRunning
	}
	out := make([]int64, len(es.events))
	for i, e := range es.events {
		raw, err := es.readRaw(e)
		if err != nil {
			return nil, err
		}
		es.accumulated[i] += rapl.CounterDelta(es.startRaw[i], raw)
		es.startRaw[i] = raw
		out[i] = int64(es.accumulated[i] * MicrojoulesPerJoule)
	}
	return out, nil
}

// Reset zeroes the running counters without stopping (PAPI_reset):
// subsequent reads accumulate from this instant.
func (es *EventSet) Reset() error {
	if err := es.usable(); err != nil {
		return err
	}
	if !es.running {
		return ErrNotRunning
	}
	for i, e := range es.events {
		raw, err := es.readRaw(e)
		if err != nil {
			return err
		}
		es.startRaw[i] = raw
		es.accumulated[i] = 0
	}
	es.startTime = es.lib.node.Now()
	return nil
}

// Stop ends counting and returns the final per-event microjoule totals
// together with the elapsed virtual time (the paper's PAPI_stop_AND_time).
func (es *EventSet) Stop() (values []int64, elapsed float64, err error) {
	values, err = es.Read()
	if err != nil {
		return nil, 0, err
	}
	es.running = false
	return values, es.lib.node.Now() - es.startTime, nil
}

// Cleanup removes all events from a stopped set (PAPI_cleanup_eventset).
func (es *EventSet) Cleanup() error {
	if err := es.usable(); err != nil {
		return err
	}
	if es.running {
		return ErrIsRunning
	}
	es.events = nil
	es.startRaw = nil
	es.accumulated = nil
	return nil
}

// Destroy releases the set (PAPI_destroy_eventset); further use errors.
func (es *EventSet) Destroy() error {
	if es.destroyed {
		return ErrDestroyed
	}
	if es.running {
		return ErrIsRunning
	}
	es.destroyed = true
	return nil
}

func (es *EventSet) usable() error {
	if es == nil || es.lib == nil {
		return ErrNotInitialized
	}
	if es.destroyed {
		return ErrDestroyed
	}
	return nil
}

// readRaw reads the raw counter behind an event through the MSR path, so
// driver gating and update granularity apply exactly as they would to a
// real powercap component read.
func (es *EventSet) readRaw(e EventInfo) (uint32, error) {
	var addr uint32
	switch e.Domain {
	case rapl.PKG0, rapl.PKG1:
		addr = rapl.MSRPkgEnergyStatus
	case rapl.DRAM0, rapl.DRAM1:
		addr = rapl.MSRDramEnergyStatus
	case rapl.PP00, rapl.PP01:
		addr = rapl.MSRPP0EnergyStatus
	default:
		return 0, fmt.Errorf("%w: domain %v", ErrNoEvent, e.Domain)
	}
	v, err := es.lib.node.ReadMSR(e.Domain.Socket(), addr)
	if err != nil {
		return 0, err
	}
	return uint32(v), nil
}

// DefaultEventNames returns the full powercap set in component order —
// the contents of the paper's event_names array.
func DefaultEventNames() []string {
	names := make([]string, 0, 4)
	for _, d := range rapl.Domains() {
		names = append(names, "powercap:::"+d.String())
	}
	return names
}
