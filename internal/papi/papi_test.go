package papi

import (
	"errors"
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/rapl"
)

func newLib(t *testing.T) (*Library, *rapl.Node) {
	t.Helper()
	node, err := rapl.NewNode(0, power.Skylake8160())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := Init(Version, node)
	if err != nil {
		t.Fatal(err)
	}
	return lib, node
}

func TestInitVersionCheck(t *testing.T) {
	node, _ := rapl.NewNode(0, power.Skylake8160())
	if _, err := Init(123, node); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("got %v, want version error", err)
	}
	if _, err := Init(Version, nil); err == nil {
		t.Fatal("nil node accepted")
	}
}

func TestThreadInit(t *testing.T) {
	lib, _ := newLib(t)
	if err := lib.ThreadInit(); err != nil {
		t.Fatal(err)
	}
	var nilLib *Library
	if err := nilLib.ThreadInit(); !errors.Is(err, ErrNotInitialized) {
		t.Fatal("nil library ThreadInit should fail")
	}
}

func TestComponentEnumeratesPowercap(t *testing.T) {
	lib, _ := newLib(t)
	evs := lib.ComponentEvents("powercap")
	if len(evs) != 4 {
		t.Fatalf("powercap component has %d events, want 4", len(evs))
	}
	want := map[string]bool{
		"powercap:::PACKAGE_ENERGY:PACKAGE0": true,
		"powercap:::PACKAGE_ENERGY:PACKAGE1": true,
		"powercap:::DRAM_ENERGY:PACKAGE0":    true,
		"powercap:::DRAM_ENERGY:PACKAGE1":    true,
	}
	for _, e := range evs {
		if !want[e.Name] {
			t.Errorf("unexpected event %q", e.Name)
		}
		if e.Units != "uJ" {
			t.Errorf("event %q units %q, want uJ", e.Name, e.Units)
		}
	}
}

func TestRaplComponentExposesPP0(t *testing.T) {
	lib, node := newLib(t)
	if got := lib.Components(); len(got) != 2 || got[0] != "powercap" || got[1] != "rapl" {
		t.Fatalf("components = %v", got)
	}
	evs := lib.ComponentEvents("rapl")
	if len(evs) != 6 {
		t.Fatalf("rapl component has %d events, want 6", len(evs))
	}
	if all := lib.ComponentEvents(""); len(all) != 10 {
		t.Fatalf("library exposes %d events, want 10", len(all))
	}
	// PP0 events are readable and sit below the package energy.
	es, _ := lib.CreateEventSet()
	if err := es.AddNamedEvents([]string{
		"rapl:::PP0_ENERGY:PACKAGE0",
		"rapl:::PACKAGE_ENERGY:PACKAGE0",
	}); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if err := node.AccountBusy(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := node.SetTime(10); err != nil {
		t.Fatal(err)
	}
	values, _, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if values[0] <= 0 || values[0] >= values[1] {
		t.Fatalf("PP0 %d µJ should be positive and below package %d µJ", values[0], values[1])
	}
}

func TestEventNameToCode(t *testing.T) {
	lib, _ := newLib(t)
	code, err := lib.EventNameToCode("powercap:::PACKAGE_ENERGY:PACKAGE0")
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("code = %d, want 0", code)
	}
	if _, err := lib.EventNameToCode("nope"); !errors.Is(err, ErrNoEvent) {
		t.Fatalf("got %v, want ErrNoEvent", err)
	}
}

func TestDefaultEventNamesResolvable(t *testing.T) {
	lib, _ := newLib(t)
	names := DefaultEventNames()
	if len(names) != 4 {
		t.Fatalf("%d default events, want 4", len(names))
	}
	for _, n := range names {
		if _, err := lib.EventNameToCode(n); err != nil {
			t.Errorf("default event %q not resolvable: %v", n, err)
		}
	}
}

func TestStartStopMeasuresEnergy(t *testing.T) {
	lib, node := newLib(t)
	es, err := lib.CreateEventSet()
	if err != nil {
		t.Fatal(err)
	}
	if err := es.AddNamedEvents(DefaultEventNames()); err != nil {
		t.Fatal(err)
	}
	if err := node.SetTime(1); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	// Simulate 10 s of 24 busy cores on each socket.
	if err := node.AccountBusy(0, 240); err != nil {
		t.Fatal(err)
	}
	if err := node.AccountBusy(1, 240); err != nil {
		t.Fatal(err)
	}
	if err := node.SetTime(11); err != nil {
		t.Fatal(err)
	}
	values, elapsed, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(elapsed-10) > 1e-9 {
		t.Fatalf("elapsed = %g, want 10", elapsed)
	}
	cal := power.Skylake8160()
	wantPkg0 := cal.PkgEnergy(10, 240, 0) * MicrojoulesPerJoule
	got := float64(values[0])
	// Allow the ~1 ms counter-granularity slack at both ends.
	slack := cal.PkgPower(24, 0) * 4e-3 * MicrojoulesPerJoule
	if math.Abs(got-wantPkg0) > slack {
		t.Fatalf("PKG0 = %g µJ, want %g ± %g", got, wantPkg0, slack)
	}
	if values[0] <= values[1] {
		t.Fatal("PKG0 should exceed PKG1 (OS noise)")
	}
	if values[2] <= 0 || values[3] <= 0 {
		t.Fatal("DRAM events must be positive (idle power)")
	}
}

func TestEventSetStateMachine(t *testing.T) {
	lib, node := newLib(t)
	es, _ := lib.CreateEventSet()

	if err := es.Start(); !errors.Is(err, ErrEmptySet) {
		t.Fatalf("empty Start = %v, want ErrEmptySet", err)
	}
	if _, err := es.Read(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("Read before Start = %v, want ErrNotRunning", err)
	}
	if err := es.AddEvent(0); err != nil {
		t.Fatal(err)
	}
	if err := es.AddEvent(99); !errors.Is(err, ErrNoEvent) {
		t.Fatalf("bad code = %v, want ErrNoEvent", err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); !errors.Is(err, ErrIsRunning) {
		t.Fatalf("double Start = %v, want ErrIsRunning", err)
	}
	if err := es.AddEvent(1); !errors.Is(err, ErrIsRunning) {
		t.Fatalf("AddEvent while running = %v", err)
	}
	if err := es.Cleanup(); !errors.Is(err, ErrIsRunning) {
		t.Fatalf("Cleanup while running = %v", err)
	}
	if err := es.Destroy(); !errors.Is(err, ErrIsRunning) {
		t.Fatalf("Destroy while running = %v", err)
	}
	if err := node.SetTime(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := es.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := es.Stop(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("double Stop = %v, want ErrNotRunning", err)
	}
	if err := es.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if len(es.Names()) != 0 {
		t.Fatal("Cleanup left events behind")
	}
	if err := es.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := es.AddEvent(0); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("use after Destroy = %v, want ErrDestroyed", err)
	}
	if err := es.Destroy(); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("double Destroy = %v", err)
	}
}

func TestReadIsMonotoneAndRunning(t *testing.T) {
	lib, node := newLib(t)
	es, _ := lib.CreateEventSet()
	if err := es.AddNamedEvents(DefaultEventNames()); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	for i := 1; i <= 5; i++ {
		if err := node.SetTime(float64(i)); err != nil {
			t.Fatal(err)
		}
		v, err := es.Read()
		if err != nil {
			t.Fatal(err)
		}
		if v[0] < prev {
			t.Fatalf("read %d: PKG0 decreased %d → %d", i, prev, v[0])
		}
		prev = v[0]
	}
}

func TestReadSurvivesCounterWrap(t *testing.T) {
	// Run long enough at idle power for the 32-bit counter to wrap
	// (horizon ≈ 2^32·61µJ / ~66W ≈ 4000 s) while sampling inside the
	// horizon; accumulated energy must match the exact model.
	lib, node := newLib(t)
	es, _ := lib.CreateEventSet()
	if err := es.AddNamedEvents([]string{"powercap:::PACKAGE_ENERGY:PACKAGE1"}); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	total := 10000.0 // seconds, > one wrap at idle
	steps := 10
	for i := 1; i <= steps; i++ {
		if err := node.SetTime(total * float64(i) / float64(steps)); err != nil {
			t.Fatal(err)
		}
		if _, err := es.Read(); err != nil {
			t.Fatal(err)
		}
	}
	values, _, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	exact := node.ExactEnergy(rapl.PKG1) * MicrojoulesPerJoule
	got := float64(values[0])
	if math.Abs(got-exact)/exact > 0.001 {
		t.Fatalf("wrapped accumulation %g µJ vs exact %g µJ", got, exact)
	}
}

func TestReset(t *testing.T) {
	lib, node := newLib(t)
	es, _ := lib.CreateEventSet()
	if err := es.AddNamedEvents([]string{"powercap:::PACKAGE_ENERGY:PACKAGE0"}); err != nil {
		t.Fatal(err)
	}
	if err := es.Reset(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("Reset before Start = %v", err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if err := node.SetTime(5); err != nil {
		t.Fatal(err)
	}
	before, err := es.Read()
	if err != nil {
		t.Fatal(err)
	}
	if before[0] <= 0 {
		t.Fatal("no energy before reset")
	}
	if err := es.Reset(); err != nil {
		t.Fatal(err)
	}
	after, err := es.Read()
	if err != nil {
		t.Fatal(err)
	}
	if after[0] != 0 {
		t.Fatalf("post-reset read %d, want 0", after[0])
	}
	if err := node.SetTime(6); err != nil {
		t.Fatal(err)
	}
	v, _, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if v[0] <= 0 || v[0] >= before[0] {
		t.Fatalf("post-reset accumulation %d vs pre-reset %d", v[0], before[0])
	}
}

func TestStartFailsWhenDriverDisabled(t *testing.T) {
	lib, node := newLib(t)
	es, _ := lib.CreateEventSet()
	if err := es.AddNamedEvents(DefaultEventNames()); err != nil {
		t.Fatal(err)
	}
	node.SetDriverEnabled(false)
	if err := es.Start(); err == nil {
		t.Fatal("Start succeeded with msr driver disabled")
	}
}
