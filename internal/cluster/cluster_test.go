package cluster

import (
	"testing"
	"testing/quick"
)

func TestMarconiA3Spec(t *testing.T) {
	s := MarconiA3()
	if s.CoresPerNode() != 48 {
		t.Fatalf("cores per node = %d, want 48", s.CoresPerNode())
	}
	if s.TotalNodes != 3188 || s.ClockGHz != 2.10 {
		t.Fatal("Marconi A3 spec drifted from the paper")
	}
}

// TestTable1MatchesPaper pins every cell of the paper's Table 1.
func TestTable1MatchesPaper(t *testing.T) {
	want := []struct {
		ranks, nodes, rpn, sockets, s0, s1 int
	}{
		{144, 3, 48, 2, 24, 24},
		{144, 6, 24, 1, 24, 0},
		{144, 6, 24, 2, 12, 12},
		{576, 12, 48, 2, 24, 24},
		{576, 24, 24, 1, 24, 0},
		{576, 24, 24, 2, 12, 12},
		{1296, 27, 48, 2, 24, 24},
		{1296, 54, 24, 1, 24, 0},
		{1296, 54, 24, 2, 12, 12},
	}
	got, err := Table1(MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("table has %d rows, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Ranks != w.ranks || g.Nodes != w.nodes || g.RanksPerNode != w.rpn ||
			g.SocketsUsed != w.sockets || g.RanksSocket0 != w.s0 || g.RanksSocket1 != w.s1 {
			t.Errorf("row %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestNewConfigErrors(t *testing.T) {
	spec := MarconiA3()
	if _, err := NewConfig(0, FullLoad, spec); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewConfig(100, FullLoad, spec); err == nil {
		t.Error("non-divisible rank count accepted (100 % 48 != 0)")
	}
	if _, err := NewConfig(48, Placement(99), spec); err == nil {
		t.Error("unknown placement accepted")
	}
	if _, err := NewConfig(48, FullLoad, nil); err == nil {
		t.Error("nil spec accepted")
	}
	huge := 48 * (spec.TotalNodes + 1)
	if _, err := NewConfig(huge, FullLoad, spec); err == nil {
		t.Error("oversubscribed machine accepted")
	}
}

func TestRankLocationBlockPlacement(t *testing.T) {
	spec := MarconiA3()
	cfg, err := NewConfig(144, FullLoad, spec)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		rank               int
		node, socket, core int
	}{
		{0, 0, 0, 0},
		{23, 0, 0, 23},
		{24, 0, 1, 0},
		{47, 0, 1, 23},
		{48, 1, 0, 0},
		{143, 2, 1, 23},
	}
	for _, c := range cases {
		loc, err := cfg.RankLocation(c.rank)
		if err != nil {
			t.Fatal(err)
		}
		if loc.Node != c.node || loc.Socket != c.socket || loc.Core != c.core {
			t.Errorf("rank %d → %+v, want node %d socket %d core %d",
				c.rank, loc, c.node, c.socket, c.core)
		}
	}
	if _, err := cfg.RankLocation(144); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := cfg.RankLocation(-1); err == nil {
		t.Error("negative rank accepted")
	}
}

func TestRankLocationHalfLoadLayouts(t *testing.T) {
	spec := MarconiA3()

	one, err := NewConfig(144, HalfLoadOneSocket, spec)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 144; r++ {
		loc, err := one.RankLocation(r)
		if err != nil {
			t.Fatal(err)
		}
		if loc.Socket != 0 {
			t.Fatalf("one-socket placement put rank %d on socket %d", r, loc.Socket)
		}
	}

	two, err := NewConfig(144, HalfLoadTwoSockets, spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for r := 0; r < 24; r++ { // one node's worth
		loc, err := two.RankLocation(r)
		if err != nil {
			t.Fatal(err)
		}
		counts[loc.Socket]++
	}
	if counts[0] != 12 || counts[1] != 12 {
		t.Fatalf("two-socket split = %v, want 12+12", counts)
	}
}

// TestRankLocationBijection checks every rank maps to a distinct
// (node, socket, core) triple and back, for random valid configs.
func TestRankLocationBijection(t *testing.T) {
	spec := MarconiA3()
	f := func(nodesSeed uint8, pIdx uint8) bool {
		p := Placements()[int(pIdx)%3]
		nodes := int(nodesSeed)%20 + 1
		rpn := spec.CoresPerNode()
		if p != FullLoad {
			rpn = spec.CoresPerSocket
		}
		cfg, err := NewConfig(nodes*rpn, p, spec)
		if err != nil {
			return false
		}
		seen := make(map[Location]bool, cfg.Ranks)
		for r := 0; r < cfg.Ranks; r++ {
			loc, err := cfg.RankLocation(r)
			if err != nil || seen[loc] {
				return false
			}
			seen[loc] = true
			if loc.Node != cfg.NodeOfRank(r) {
				return false
			}
			if loc.Core < 0 || loc.Core >= spec.CoresPerSocket {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestActiveCores(t *testing.T) {
	spec := MarconiA3()
	cfg, _ := NewConfig(576, HalfLoadOneSocket, spec)
	if cfg.ActiveCores(0) != 24 || cfg.ActiveCores(1) != 0 {
		t.Fatalf("one-socket active cores = %d/%d", cfg.ActiveCores(0), cfg.ActiveCores(1))
	}
	if cfg.ActiveCores(7) != 0 {
		t.Fatal("nonexistent socket should have zero cores")
	}
}

func TestRanksOnNode(t *testing.T) {
	spec := MarconiA3()
	cfg, _ := NewConfig(144, FullLoad, spec)
	ranks := cfg.RanksOnNode(1)
	if len(ranks) != 48 || ranks[0] != 48 || ranks[47] != 95 {
		t.Fatalf("RanksOnNode(1) = %v...", ranks[:2])
	}
	if cfg.RanksOnNode(99) != nil {
		t.Fatal("invalid node should return nil")
	}
	if cfg.RanksOnNode(-1) != nil {
		t.Fatal("negative node should return nil")
	}
}

func TestPlacementString(t *testing.T) {
	if FullLoad.String() != "full-load" || Placement(42).String() == "" {
		t.Fatal("Placement.String misbehaves")
	}
}

func TestLabel(t *testing.T) {
	cfg, _ := NewConfig(144, FullLoad, MarconiA3())
	if cfg.Label() != "144r/3n/48rpn/2s" {
		t.Fatalf("Label = %q", cfg.Label())
	}
}

func TestPaperConstants(t *testing.T) {
	for _, r := range PaperRankCounts() {
		// IMe requires square rank counts (§5.1).
		root := 0
		for root*root < r {
			root++
		}
		if root*root != r {
			t.Errorf("rank count %d is not a perfect square", r)
		}
	}
	dims := PaperMatrixDims()
	if len(dims) != 4 || dims[0] != 8640 || dims[3] != 34560 {
		t.Fatal("paper matrix dims drifted")
	}
}
