// Package cluster models the HPC machine and job placements the paper
// evaluates on: CINECA Marconi A3 nodes (2 × 24-core Intel Xeon 8160
// "Skylake" at 2.10 GHz, 192 GB DDR4) scheduled by Slurm-style block
// placement.
//
// The paper's Table 1 enumerates, for each rank count (144, 576, 1296),
// three layouts: full-load nodes (48 ranks/node split 24+24 across the two
// sockets), half-load on one socket (24 ranks/node, all on socket 0) and
// half-load on two sockets (24 ranks/node, 12+12). This package generates
// those configurations and maps every MPI rank to its node, socket and
// core — the information the power model and monitoring framework need.
package cluster

import (
	"fmt"
)

// MachineSpec describes a homogeneous cluster.
type MachineSpec struct {
	Name           string
	TotalNodes     int
	SocketsPerNode int
	CoresPerSocket int
	MemPerNodeGB   int
	ClockGHz       float64
	// PeakNodeGFlops is the vendor peak for one node (used only for
	// documentation and sanity checks; effective rates live in the power
	// and performance models).
	PeakNodeGFlops float64
	// Accel, when non-nil, equips every node with accelerators (see
	// accel.go). The dense solvers and the paper grid ignore it.
	Accel *AcceleratorSpec
}

// CoresPerNode returns the total core count of one node.
func (s *MachineSpec) CoresPerNode() int { return s.SocketsPerNode * s.CoresPerSocket }

// MarconiA3 returns the specification of the CINECA Marconi A3 partition
// used in the paper (§5): 3188 nodes, 2 × 24-core Xeon 8160 @ 2.10 GHz,
// 192 GB DDR4, 3.2 TFlop/s peak per node.
func MarconiA3() *MachineSpec {
	return &MachineSpec{
		Name:           "Marconi A3 (Intel Xeon 8160 Skylake)",
		TotalNodes:     3188,
		SocketsPerNode: 2,
		CoresPerSocket: 24,
		MemPerNodeGB:   192,
		ClockGHz:       2.10,
		PeakNodeGFlops: 3200,
	}
}

// BroadwellEP returns an alternative machine — 2 × 16-core Xeon E5-2697A v4
// nodes — used to demonstrate the monitoring stack's portability (§4 asks
// for "high portability, enabling seamless adaptation"): everything from
// placement to RAPL readout works unchanged on a different node shape.
func BroadwellEP() *MachineSpec {
	return &MachineSpec{
		Name:           "Broadwell-EP (Intel Xeon E5-2697A v4)",
		TotalNodes:     512,
		SocketsPerNode: 2,
		CoresPerSocket: 16,
		MemPerNodeGB:   128,
		ClockGHz:       2.60,
		PeakNodeGFlops: 1331,
	}
}

// Placement selects how ranks are packed onto nodes and sockets.
type Placement int

const (
	// FullLoad packs CoresPerNode ranks per node (48 on Marconi),
	// 24 per socket. The densest, fewest-nodes layout.
	FullLoad Placement = iota
	// HalfLoadOneSocket packs CoresPerSocket ranks per node (24), all
	// pinned to socket 0; socket 1 is nominally idle.
	HalfLoadOneSocket
	// HalfLoadTwoSockets packs CoresPerSocket ranks per node (24), split
	// 12 + 12 across the two sockets.
	HalfLoadTwoSockets
)

// Placements lists all placements in Table 1 order.
func Placements() []Placement {
	return []Placement{FullLoad, HalfLoadOneSocket, HalfLoadTwoSockets}
}

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case FullLoad:
		return "full-load"
	case HalfLoadOneSocket:
		return "half-load-1-socket"
	case HalfLoadTwoSockets:
		return "half-load-2-sockets"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// ParsePlacement is the inverse of Placement.String, for request-driven
// callers (the advisor service) that receive placements as text.
func ParsePlacement(s string) (Placement, error) {
	for _, p := range Placements() {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown placement %q (want full-load, half-load-1-socket or half-load-2-sockets)", s)
}

// Config is one resolved job configuration: a rank count placed on a
// machine. It corresponds to one row of the paper's Table 1.
type Config struct {
	Spec         *MachineSpec
	Placement    Placement
	Ranks        int
	Nodes        int
	RanksPerNode int
	// SocketsUsed is the number of sockets hosting ranks on each node.
	SocketsUsed int
	// RanksSocket0 and RanksSocket1 are the per-node rank counts pinned to
	// each socket (the last two columns of Table 1).
	RanksSocket0 int
	RanksSocket1 int
}

// Location identifies where a rank runs.
type Location struct {
	Node   int // node index, 0-based
	Socket int // socket within the node
	Core   int // core within the socket
}

// NewConfig resolves a rank count and placement against a machine.
func NewConfig(ranks int, p Placement, spec *MachineSpec) (Config, error) {
	if spec == nil {
		return Config{}, fmt.Errorf("cluster: nil machine spec")
	}
	if ranks <= 0 {
		return Config{}, fmt.Errorf("cluster: rank count %d must be positive", ranks)
	}
	cfg := Config{Spec: spec, Placement: p, Ranks: ranks}
	switch p {
	case FullLoad:
		cfg.RanksPerNode = spec.CoresPerNode()
		cfg.SocketsUsed = spec.SocketsPerNode
		cfg.RanksSocket0 = spec.CoresPerSocket
		cfg.RanksSocket1 = spec.CoresPerSocket
	case HalfLoadOneSocket:
		cfg.RanksPerNode = spec.CoresPerSocket
		cfg.SocketsUsed = 1
		cfg.RanksSocket0 = spec.CoresPerSocket
		cfg.RanksSocket1 = 0
	case HalfLoadTwoSockets:
		cfg.RanksPerNode = spec.CoresPerSocket
		cfg.SocketsUsed = spec.SocketsPerNode
		cfg.RanksSocket0 = spec.CoresPerSocket / 2
		cfg.RanksSocket1 = spec.CoresPerSocket - spec.CoresPerSocket/2
	default:
		return Config{}, fmt.Errorf("cluster: unknown placement %v", p)
	}
	if ranks%cfg.RanksPerNode != 0 {
		return Config{}, fmt.Errorf("cluster: %d ranks not divisible by %d ranks/node (%v)",
			ranks, cfg.RanksPerNode, p)
	}
	cfg.Nodes = ranks / cfg.RanksPerNode
	if cfg.Nodes > spec.TotalNodes {
		return Config{}, fmt.Errorf("cluster: %d nodes exceed machine size %d", cfg.Nodes, spec.TotalNodes)
	}
	return cfg, nil
}

// RankLocation maps an MPI world rank to its node, socket and core under
// Slurm-style block placement: ranks fill node 0 first, and within a node
// fill socket 0's allotment before socket 1's.
func (c *Config) RankLocation(rank int) (Location, error) {
	if rank < 0 || rank >= c.Ranks {
		return Location{}, fmt.Errorf("cluster: rank %d out of range [0,%d)", rank, c.Ranks)
	}
	node := rank / c.RanksPerNode
	local := rank % c.RanksPerNode
	if local < c.RanksSocket0 {
		return Location{Node: node, Socket: 0, Core: local}, nil
	}
	return Location{Node: node, Socket: 1, Core: local - c.RanksSocket0}, nil
}

// ActiveCores returns how many ranks run on the given socket of any node
// (all nodes are identically loaded under block placement).
func (c *Config) ActiveCores(socket int) int {
	switch socket {
	case 0:
		return c.RanksSocket0
	case 1:
		return c.RanksSocket1
	default:
		return 0
	}
}

// NodeOfRank returns just the node index for a rank.
func (c *Config) NodeOfRank(rank int) int { return rank / c.RanksPerNode }

// RanksOnNode returns the world ranks hosted by the given node.
func (c *Config) RanksOnNode(node int) []int {
	if node < 0 || node >= c.Nodes {
		return nil
	}
	out := make([]int, c.RanksPerNode)
	for i := range out {
		out[i] = node*c.RanksPerNode + i
	}
	return out
}

// Label renders a short human-readable identifier such as
// "144r/3n/48rpn/2s".
func (c *Config) Label() string {
	return fmt.Sprintf("%dr/%dn/%drpn/%ds", c.Ranks, c.Nodes, c.RanksPerNode, c.SocketsUsed)
}

// PaperRankCounts are the strong-scaling rank counts of §5.1; each is a
// perfect square as required by IMe's rank-count constraint
// (144 = 12², 576 = 24², 1296 = 36²).
func PaperRankCounts() []int { return []int{144, 576, 1296} }

// PaperMatrixDims are the four matrix orders tested in §5.1.
func PaperMatrixDims() []int { return []int{8640, 17280, 25920, 34560} }

// Table1 generates the nine configurations of the paper's Table 1 on the
// given machine, in row order (rank count major, placement minor).
func Table1(spec *MachineSpec) ([]Config, error) {
	var out []Config
	for _, ranks := range PaperRankCounts() {
		for _, p := range Placements() {
			cfg, err := NewConfig(ranks, p, spec)
			if err != nil {
				return nil, fmt.Errorf("cluster: table 1 row (%d ranks, %v): %w", ranks, p, err)
			}
			out = append(out, cfg)
		}
	}
	return out, nil
}
