// Accelerator device model. The source paper's machine is CPU-only; the
// sparse/iterative workload family ("On the energy efficiency of sparse
// matrix computations on multi-GPU clusters", PAPERS.md) needs nodes that
// can optionally carry accelerators: a device with its own memory
// bandwidth, its own energy domain, and a host↔device transfer edge whose
// cost the solver pays per iteration. Dense solvers and the existing
// paper grid never look at this field, so CPU-only behaviour is
// byte-identical to before.
package cluster

import "fmt"

// Device selects the compute device a (sparse) workload runs on.
type Device int

const (
	// DeviceCPU runs kernels on the host cores, exactly like the dense
	// solvers.
	DeviceCPU Device = iota
	// DeviceAccel offloads the memory-bound kernels (SpMV, axpy, dot) to
	// the node's accelerators, paying the host↔device transfer edge.
	DeviceAccel
)

// Devices lists all devices in canonical order.
func Devices() []Device { return []Device{DeviceCPU, DeviceAccel} }

// String implements fmt.Stringer.
func (d Device) String() string {
	switch d {
	case DeviceCPU:
		return "cpu"
	case DeviceAccel:
		return "accel"
	default:
		return fmt.Sprintf("Device(%d)", int(d))
	}
}

// ParseDevice is the inverse of Device.String, for request-driven callers
// (the advisor service) that receive devices as text.
func ParseDevice(s string) (Device, error) {
	for _, d := range Devices() {
		if s == d.String() {
			return d, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown device %q (want cpu or accel)", s)
}

// AcceleratorSpec describes the accelerators of one node. The numbers
// parameterise a memory-bound roofline: kernels that stream bytes run at
// MemBandwidthBps instead of the host's DRAM bandwidth, every offloaded
// phase pays the PCIe-style transfer edge, and energy accrues in a
// dedicated RAPL-like domain (rapl.Accel) at ActivePowerW while busy and
// IdlePowerW for the rest of the job.
type AcceleratorSpec struct {
	// PerNode is the accelerator count per node.
	PerNode int
	// MemBandwidthBps is the aggregate device-memory bandwidth of one
	// accelerator in bytes/s.
	MemBandwidthBps float64
	// PeakGFlops is the vendor peak of one accelerator (documentation and
	// sanity checks only, like MachineSpec.PeakNodeGFlops).
	PeakGFlops float64
	// ActivePowerW is one accelerator's power at full memory-bandwidth
	// utilisation; IdlePowerW is its floor while the job holds it.
	ActivePowerW float64
	IdlePowerW   float64
	// TransferBps and TransferLatS model the host↔device link: each
	// offloaded transfer costs TransferLatS + bytes/TransferBps.
	TransferBps  float64
	TransferLatS float64
}

// DefaultAccelerator returns the accelerator profile used by the sparse
// study: a 900 GB/s HBM device (Volta-class) behind a 12 GB/s effective
// PCIe 3 x16 link, 250 W active / 30 W idle, 4 per node.
func DefaultAccelerator() *AcceleratorSpec {
	return &AcceleratorSpec{
		PerNode:         4,
		MemBandwidthBps: 900e9,
		PeakGFlops:      7800,
		ActivePowerW:    250,
		IdlePowerW:      30,
		TransferBps:     12e9,
		// Per-transfer fixed cost: kernel launch + DMA setup + host sync.
		// Dominates small solves — the reason CPU-only placements win them.
		TransferLatS: 50e-6,
	}
}

// MarconiA3Accel returns the Marconi A3 machine with every node carrying
// the default accelerator complement — the heterogeneous half of the
// CPU-vs-accelerator placement space the sparse advisor ranks over.
func MarconiA3Accel() *MachineSpec {
	s := MarconiA3()
	s.Name = "Marconi A3 + accelerators (Volta-class, 4/node)"
	s.Accel = DefaultAccelerator()
	return s
}
