// Package slurm simulates the batch layer the paper submits through: job
// specifications with node/task/socket directives, allocation of concrete
// nodes from the machine's pool, and job accounting. "The supercomputer
// batch job submission is managed through Slurm, thus the collected energy
// values concern only the processors directly involved in the computation"
// (§5).
//
// Section 5.3 suspects the socket directives were not always honoured
// ("this observation raises some doubts about the effectiveness of the
// Slurm directives"): the scheduler therefore supports a LeakySocketPinning
// mode that lets a fraction of the supposedly pinned ranks land on the
// other socket — reproducing the anomalous socket-1 activity the paper
// measured in its one-socket deployments.
//
// The scheduler is the allocation substrate of the fleet simulator
// (internal/sched): Submit/Release are safe for concurrent use and cost
// O(nodes granted) rather than O(machine), so a fleet event loop can
// churn thousands of jobs over thousands of nodes.
package slurm

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/cluster"
)

// JobSpec mirrors the sbatch directives the paper's jobs use.
type JobSpec struct {
	// Name labels the job in accounting output.
	Name string
	// Ranks is the total task count (--ntasks).
	Ranks int
	// Placement encodes the ranks-per-node/socket directives
	// (--ntasks-per-node, --ntasks-per-socket).
	Placement cluster.Placement
	// LeakySocketPinning, when non-zero, is the fraction (0..1] of each
	// node's ranks that escape the socket directive and run on the other
	// socket — the §5.3 suspicion made explicit.
	LeakySocketPinning float64
}

// Allocation is a granted job: concrete node IDs plus the resolved
// configuration, possibly perturbed by leaky pinning.
type Allocation struct {
	JobID  int
	Spec   JobSpec
	Config cluster.Config
	// Nodes are the machine node IDs assigned to this job.
	Nodes []int
}

// Scheduler owns the machine's node pool and grants allocations. All
// methods are safe for concurrent use: the fleet event loop and its
// worker goroutines drive one scheduler from many goroutines.
type Scheduler struct {
	mu      sync.Mutex
	machine *cluster.MachineSpec
	free    nodeSet
	nextJob int
	// running maps job IDs to their allocations for accounting/release.
	running map[int]*Allocation
}

// nodeSet is an ordered set of idle node IDs kept as a bitmap: one bit
// per node, take() pops the k lowest set bits. Grant and release are
// O(nodes touched), not O(machine) — the map+sort structure this
// replaces rebuilt and sorted the full free list on every Submit.
type nodeSet struct {
	words []uint64
	count int
	// first is the lowest word index that may contain a set bit; words
	// below it are known empty, so take() never rescans the allocated
	// prefix of a mostly-busy machine.
	first int
}

func newNodeSet(n int) nodeSet {
	ns := nodeSet{words: make([]uint64, (n+63)/64), count: n}
	for i := range ns.words {
		ns.words[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 {
		ns.words[len(ns.words)-1] = uint64(1)<<r - 1
	}
	return ns
}

// take removes and returns the k lowest set bits. The caller must have
// checked k <= count.
func (ns *nodeSet) take(k int) []int {
	out := make([]int, 0, k)
	w := ns.first
	for len(out) < k {
		for ns.words[w] == 0 {
			w++
		}
		word := ns.words[w]
		for word != 0 && len(out) < k {
			b := bits.TrailingZeros64(word)
			out = append(out, w*64+b)
			word &^= uint64(1) << b
		}
		ns.words[w] = word
	}
	// Every word below w was drained (or already empty) on the way here.
	ns.first = w
	ns.count -= k
	return out
}

// add returns one node ID to the set.
func (ns *nodeSet) add(id int) {
	ns.words[id/64] |= uint64(1) << (id % 64)
	if id/64 < ns.first {
		ns.first = id / 64
	}
	ns.count++
}

// NewScheduler builds a scheduler over an idle machine.
func NewScheduler(machine *cluster.MachineSpec) (*Scheduler, error) {
	if machine == nil || machine.TotalNodes <= 0 {
		return nil, fmt.Errorf("slurm: invalid machine")
	}
	return &Scheduler{
		machine: machine,
		free:    newNodeSet(machine.TotalNodes),
		nextJob: 1,
		running: make(map[int]*Allocation),
	}, nil
}

// FreeNodes returns how many nodes are currently idle.
func (s *Scheduler) FreeNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.free.count
}

// Submit resolves and grants a job, or fails when the directives are
// inconsistent or the machine lacks idle nodes.
func (s *Scheduler) Submit(spec JobSpec) (*Allocation, error) {
	if spec.LeakySocketPinning < 0 || spec.LeakySocketPinning > 1 {
		return nil, fmt.Errorf("slurm: leaky pinning fraction %g outside [0,1]", spec.LeakySocketPinning)
	}
	cfg, err := cluster.NewConfig(spec.Ranks, spec.Placement, s.machine)
	if err != nil {
		return nil, fmt.Errorf("slurm: %w", err)
	}
	if spec.LeakySocketPinning > 0 {
		leak := int(float64(cfg.RanksPerNode) * spec.LeakySocketPinning)
		cfg = applyLeak(cfg, leak)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cfg.Nodes > s.free.count {
		return nil, fmt.Errorf("slurm: job needs %d nodes, %d idle", cfg.Nodes, s.free.count)
	}
	// Grant the lowest-numbered idle nodes (block allocation, like the
	// paper's contiguous deployments).
	granted := s.free.take(cfg.Nodes)
	alloc := &Allocation{JobID: s.nextJob, Spec: spec, Config: cfg, Nodes: granted}
	s.nextJob++
	s.running[alloc.JobID] = alloc
	return alloc, nil
}

// applyLeak moves leak ranks per node from their directed socket to the
// other one, modelling imperfect --ntasks-per-socket enforcement. The
// leak is clamped to the directed socket's population, so at most every
// rank escapes. Balanced two-socket directives (both sockets populated)
// are a deliberate no-op: with ranks already spread over both sockets
// there is no "other" socket for a directed rank to escape to, so the
// configuration is returned unchanged.
func applyLeak(cfg cluster.Config, leak int) cluster.Config {
	if leak <= 0 {
		return cfg
	}
	switch {
	case cfg.RanksSocket1 == 0: // one-socket directive leaks to socket 1
		if leak > cfg.RanksSocket0 {
			leak = cfg.RanksSocket0
		}
		cfg.RanksSocket0 -= leak
		cfg.RanksSocket1 += leak
	case cfg.RanksSocket0 == 0:
		if leak > cfg.RanksSocket1 {
			leak = cfg.RanksSocket1
		}
		cfg.RanksSocket1 -= leak
		cfg.RanksSocket0 += leak
	default:
		// Balanced directives have nothing meaningful to leak.
	}
	return cfg
}

// Release returns a job's nodes to the pool (job completion).
func (s *Scheduler) Release(jobID int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	alloc, ok := s.running[jobID]
	if !ok {
		return fmt.Errorf("slurm: unknown job %d", jobID)
	}
	for _, id := range alloc.Nodes {
		s.free.add(id)
	}
	delete(s.running, jobID)
	return nil
}

// Running lists the active job IDs in submission order.
func (s *Scheduler) Running() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.running))
	for id := range s.running {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
