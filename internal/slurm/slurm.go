// Package slurm simulates the batch layer the paper submits through: job
// specifications with node/task/socket directives, allocation of concrete
// nodes from the machine's pool, and job accounting. "The supercomputer
// batch job submission is managed through Slurm, thus the collected energy
// values concern only the processors directly involved in the computation"
// (§5).
//
// Section 5.3 suspects the socket directives were not always honoured
// ("this observation raises some doubts about the effectiveness of the
// Slurm directives"): the scheduler therefore supports a LeakySocketPinning
// mode that lets a fraction of the supposedly pinned ranks land on the
// other socket — reproducing the anomalous socket-1 activity the paper
// measured in its one-socket deployments.
package slurm

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
)

// JobSpec mirrors the sbatch directives the paper's jobs use.
type JobSpec struct {
	// Name labels the job in accounting output.
	Name string
	// Ranks is the total task count (--ntasks).
	Ranks int
	// Placement encodes the ranks-per-node/socket directives
	// (--ntasks-per-node, --ntasks-per-socket).
	Placement cluster.Placement
	// LeakySocketPinning, when non-zero, is the fraction (0..1] of each
	// node's ranks that escape the socket directive and run on the other
	// socket — the §5.3 suspicion made explicit.
	LeakySocketPinning float64
}

// Allocation is a granted job: concrete node IDs plus the resolved
// configuration, possibly perturbed by leaky pinning.
type Allocation struct {
	JobID  int
	Spec   JobSpec
	Config cluster.Config
	// Nodes are the machine node IDs assigned to this job.
	Nodes []int
}

// Scheduler owns the machine's node pool and grants allocations.
type Scheduler struct {
	machine *cluster.MachineSpec
	free    map[int]bool
	nextJob int
	// running maps job IDs to their allocations for accounting/release.
	running map[int]*Allocation
}

// NewScheduler builds a scheduler over an idle machine.
func NewScheduler(machine *cluster.MachineSpec) (*Scheduler, error) {
	if machine == nil || machine.TotalNodes <= 0 {
		return nil, fmt.Errorf("slurm: invalid machine")
	}
	s := &Scheduler{
		machine: machine,
		free:    make(map[int]bool, machine.TotalNodes),
		nextJob: 1,
		running: make(map[int]*Allocation),
	}
	for i := 0; i < machine.TotalNodes; i++ {
		s.free[i] = true
	}
	return s, nil
}

// FreeNodes returns how many nodes are currently idle.
func (s *Scheduler) FreeNodes() int { return len(s.free) }

// Submit resolves and grants a job, or fails when the directives are
// inconsistent or the machine lacks idle nodes.
func (s *Scheduler) Submit(spec JobSpec) (*Allocation, error) {
	if spec.LeakySocketPinning < 0 || spec.LeakySocketPinning > 1 {
		return nil, fmt.Errorf("slurm: leaky pinning fraction %g outside [0,1]", spec.LeakySocketPinning)
	}
	cfg, err := cluster.NewConfig(spec.Ranks, spec.Placement, s.machine)
	if err != nil {
		return nil, fmt.Errorf("slurm: %w", err)
	}
	if cfg.Nodes > len(s.free) {
		return nil, fmt.Errorf("slurm: job needs %d nodes, %d idle", cfg.Nodes, len(s.free))
	}
	if spec.LeakySocketPinning > 0 {
		leak := int(float64(cfg.RanksPerNode) * spec.LeakySocketPinning)
		cfg = applyLeak(cfg, leak)
	}
	// Grant the lowest-numbered idle nodes (block allocation, like the
	// paper's contiguous deployments).
	ids := make([]int, 0, len(s.free))
	for id := range s.free {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	granted := ids[:cfg.Nodes]
	for _, id := range granted {
		delete(s.free, id)
	}
	alloc := &Allocation{JobID: s.nextJob, Spec: spec, Config: cfg, Nodes: granted}
	s.nextJob++
	s.running[alloc.JobID] = alloc
	return alloc, nil
}

// applyLeak moves leak ranks per node from their directed socket to the
// other one, modelling imperfect --ntasks-per-socket enforcement.
func applyLeak(cfg cluster.Config, leak int) cluster.Config {
	if leak <= 0 {
		return cfg
	}
	switch {
	case cfg.RanksSocket1 == 0: // one-socket directive leaks to socket 1
		if leak > cfg.RanksSocket0 {
			leak = cfg.RanksSocket0
		}
		cfg.RanksSocket0 -= leak
		cfg.RanksSocket1 += leak
	case cfg.RanksSocket0 == 0:
		if leak > cfg.RanksSocket1 {
			leak = cfg.RanksSocket1
		}
		cfg.RanksSocket1 -= leak
		cfg.RanksSocket0 += leak
	default:
		// Balanced directives have nothing meaningful to leak.
	}
	return cfg
}

// Release returns a job's nodes to the pool (job completion).
func (s *Scheduler) Release(jobID int) error {
	alloc, ok := s.running[jobID]
	if !ok {
		return fmt.Errorf("slurm: unknown job %d", jobID)
	}
	for _, id := range alloc.Nodes {
		s.free[id] = true
	}
	delete(s.running, jobID)
	return nil
}

// Running lists the active job IDs in submission order.
func (s *Scheduler) Running() []int {
	out := make([]int, 0, len(s.running))
	for id := range s.running {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
