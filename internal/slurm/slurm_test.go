package slurm

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

func newSched(t *testing.T) *Scheduler {
	t.Helper()
	s, err := NewScheduler(cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSubmitGrantsContiguousNodes(t *testing.T) {
	s := newSched(t)
	alloc, err := s.Submit(JobSpec{Name: "ime", Ranks: 144, Placement: cluster.FullLoad})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Config.Nodes != 3 || len(alloc.Nodes) != 3 {
		t.Fatalf("allocation = %+v", alloc)
	}
	for i, id := range alloc.Nodes {
		if id != i {
			t.Fatalf("nodes %v not the lowest idle block", alloc.Nodes)
		}
	}
	if s.FreeNodes() != 3188-3 {
		t.Fatalf("free nodes = %d", s.FreeNodes())
	}
	if got := s.Running(); len(got) != 1 || got[0] != alloc.JobID {
		t.Fatalf("running = %v", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newSched(t)
	if _, err := s.Submit(JobSpec{Ranks: 100, Placement: cluster.FullLoad}); err == nil {
		t.Error("non-divisible rank count accepted")
	}
	if _, err := s.Submit(JobSpec{Ranks: 48, Placement: cluster.FullLoad, LeakySocketPinning: 2}); err == nil {
		t.Error("leak fraction > 1 accepted")
	}
	if _, err := NewScheduler(nil); err == nil {
		t.Error("nil machine accepted")
	}
}

func TestReleaseRecyclesNodes(t *testing.T) {
	s := newSched(t)
	a, err := s.Submit(JobSpec{Ranks: 576, Placement: cluster.FullLoad})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(a.JobID); err != nil {
		t.Fatal(err)
	}
	if s.FreeNodes() != 3188 {
		t.Fatalf("free nodes after release = %d", s.FreeNodes())
	}
	if err := s.Release(a.JobID); err == nil {
		t.Fatal("double release accepted")
	}
	// The freed nodes are granted again.
	b, err := s.Submit(JobSpec{Ranks: 576, Placement: cluster.FullLoad})
	if err != nil {
		t.Fatal(err)
	}
	if b.Nodes[0] != 0 {
		t.Fatalf("recycled allocation starts at node %d", b.Nodes[0])
	}
}

func TestMachineExhaustion(t *testing.T) {
	small := &cluster.MachineSpec{
		Name: "tiny", TotalNodes: 4, SocketsPerNode: 2, CoresPerSocket: 24,
		MemPerNodeGB: 192, ClockGHz: 2.1,
	}
	s, err := NewScheduler(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Ranks: 3 * 48, Placement: cluster.FullLoad}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Ranks: 2 * 48, Placement: cluster.FullLoad}); err == nil {
		t.Fatal("oversubscription accepted")
	}
	// One more node still fits.
	if _, err := s.Submit(JobSpec{Ranks: 48, Placement: cluster.FullLoad}); err != nil {
		t.Fatal(err)
	}
}

// TestLeakySocketPinning reproduces the §5.3 anomaly: a one-socket
// directive with leaky enforcement shows ranks on the "idle" socket.
func TestLeakySocketPinning(t *testing.T) {
	s := newSched(t)
	clean, err := s.Submit(JobSpec{Ranks: 144, Placement: cluster.HalfLoadOneSocket})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Config.RanksSocket1 != 0 {
		t.Fatal("clean pinning leaked")
	}
	leaky, err := s.Submit(JobSpec{
		Ranks: 144, Placement: cluster.HalfLoadOneSocket, LeakySocketPinning: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if leaky.Config.RanksSocket1 != 6 || leaky.Config.RanksSocket0 != 18 {
		t.Fatalf("leaky split = %d/%d, want 18/6",
			leaky.Config.RanksSocket0, leaky.Config.RanksSocket1)
	}
	// Total ranks per node unchanged.
	if leaky.Config.RanksSocket0+leaky.Config.RanksSocket1 != 24 {
		t.Fatal("leak changed the rank count")
	}
	// Balanced placements have nothing to leak.
	two, err := s.Submit(JobSpec{
		Ranks: 144, Placement: cluster.HalfLoadTwoSockets, LeakySocketPinning: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if two.Config.RanksSocket0 != 12 || two.Config.RanksSocket1 != 12 {
		t.Fatal("balanced placement perturbed")
	}
}

func TestLeakConservesRanksQuick(t *testing.T) {
	s := newSched(t)
	f := func(frac uint8) bool {
		leak := float64(frac%101) / 100
		a, err := s.Submit(JobSpec{
			Ranks: 144, Placement: cluster.HalfLoadOneSocket, LeakySocketPinning: leak,
		})
		if err != nil {
			return false
		}
		defer func() {
			if err := s.Release(a.JobID); err != nil {
				panic(err)
			}
		}()
		return a.Config.RanksSocket0+a.Config.RanksSocket1 == 24 &&
			a.Config.RanksSocket0 >= 0 && a.Config.RanksSocket1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyLeakTable pins the edge cases of the leak arithmetic: the
// fraction is truncated via int() (never rounded up), the leak is
// clamped to the directed socket's population, and balanced directives
// are a documented no-op.
func TestApplyLeakTable(t *testing.T) {
	cases := []struct {
		name         string
		s0, s1, leak int
		want0, want1 int
	}{
		{"zero leak no-op", 24, 0, 0, 24, 0},
		{"negative leak no-op", 24, 0, -3, 24, 0},
		{"one-socket leaks down", 24, 0, 6, 18, 6},
		{"socket-1 directive leaks up", 0, 24, 6, 6, 18},
		{"leak exactly empties the socket", 24, 0, 24, 0, 24},
		{"leak beyond ranks clamps", 24, 0, 1000, 0, 24},
		{"leak beyond ranks clamps (socket 1)", 0, 12, 13, 12, 0},
		{"balanced directive is a no-op", 12, 12, 6, 12, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := cluster.Config{RanksSocket0: tc.s0, RanksSocket1: tc.s1}
			got := applyLeak(cfg, tc.leak)
			if got.RanksSocket0 != tc.want0 || got.RanksSocket1 != tc.want1 {
				t.Fatalf("applyLeak(%d/%d, %d) = %d/%d, want %d/%d",
					tc.s0, tc.s1, tc.leak, got.RanksSocket0, got.RanksSocket1, tc.want0, tc.want1)
			}
		})
	}
}

// TestLeakFractionTruncates pins that the per-node leak count comes from
// int() truncation of fraction*RanksPerNode, not rounding: 0.99 of a
// 24-rank node leaks 23 ranks, not 24.
func TestLeakFractionTruncates(t *testing.T) {
	s := newSched(t)
	a, err := s.Submit(JobSpec{
		Ranks: 144, Placement: cluster.HalfLoadOneSocket, LeakySocketPinning: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Config.RanksSocket0 != 1 || a.Config.RanksSocket1 != 23 {
		t.Fatalf("0.99 leak split = %d/%d, want 1/23", a.Config.RanksSocket0, a.Config.RanksSocket1)
	}
}

// TestConcurrentSubmitRelease drives the scheduler from many goroutines
// (the fleet event loop's access pattern) and checks pool conservation.
// Run with -race: it is in the CI race lane.
func TestConcurrentSubmitRelease(t *testing.T) {
	s := newSched(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a, err := s.Submit(JobSpec{Ranks: 576, Placement: cluster.FullLoad})
				if err != nil {
					continue // pool momentarily exhausted by peers
				}
				if len(a.Nodes) != 12 {
					panic("wrong grant size")
				}
				_ = s.FreeNodes()
				if err := s.Release(a.JobID); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	if s.FreeNodes() != 3188 {
		t.Fatalf("free nodes after churn = %d, want 3188", s.FreeNodes())
	}
	if len(s.Running()) != 0 {
		t.Fatalf("running after churn = %v", s.Running())
	}
}

// TestNodeSetGrantsStayDisjointAndOrdered churns allocations of varying
// sizes and checks every grant is the lowest idle block with no node
// granted twice.
func TestNodeSetGrantsStayDisjointAndOrdered(t *testing.T) {
	small := &cluster.MachineSpec{
		Name: "tiny", TotalNodes: 130, SocketsPerNode: 2, CoresPerSocket: 24,
		MemPerNodeGB: 192, ClockGHz: 2.1,
	}
	s, err := NewScheduler(small)
	if err != nil {
		t.Fatal(err)
	}
	busy := make(map[int]int) // node -> job
	var jobs []int
	for round := 0; round < 50; round++ {
		ranks := []int{48, 144, 576}[round%3]
		a, err := s.Submit(JobSpec{Ranks: ranks, Placement: cluster.FullLoad})
		if err != nil {
			// Exhausted: release the oldest half and keep going.
			for _, id := range jobs[:len(jobs)/2] {
				if err := s.Release(id); err != nil {
					t.Fatal(err)
				}
			}
			for n, j := range busy {
				for _, id := range jobs[:len(jobs)/2] {
					if j == id {
						delete(busy, n)
					}
				}
			}
			jobs = jobs[len(jobs)/2:]
			continue
		}
		for i := 1; i < len(a.Nodes); i++ {
			if a.Nodes[i] <= a.Nodes[i-1] {
				t.Fatalf("grant %v not ascending", a.Nodes)
			}
		}
		for _, n := range a.Nodes {
			if other, ok := busy[n]; ok {
				t.Fatalf("node %d granted to jobs %d and %d", n, other, a.JobID)
			}
			busy[n] = a.JobID
		}
		jobs = append(jobs, a.JobID)
	}
}
