package slurm

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

func newSched(t *testing.T) *Scheduler {
	t.Helper()
	s, err := NewScheduler(cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSubmitGrantsContiguousNodes(t *testing.T) {
	s := newSched(t)
	alloc, err := s.Submit(JobSpec{Name: "ime", Ranks: 144, Placement: cluster.FullLoad})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Config.Nodes != 3 || len(alloc.Nodes) != 3 {
		t.Fatalf("allocation = %+v", alloc)
	}
	for i, id := range alloc.Nodes {
		if id != i {
			t.Fatalf("nodes %v not the lowest idle block", alloc.Nodes)
		}
	}
	if s.FreeNodes() != 3188-3 {
		t.Fatalf("free nodes = %d", s.FreeNodes())
	}
	if got := s.Running(); len(got) != 1 || got[0] != alloc.JobID {
		t.Fatalf("running = %v", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newSched(t)
	if _, err := s.Submit(JobSpec{Ranks: 100, Placement: cluster.FullLoad}); err == nil {
		t.Error("non-divisible rank count accepted")
	}
	if _, err := s.Submit(JobSpec{Ranks: 48, Placement: cluster.FullLoad, LeakySocketPinning: 2}); err == nil {
		t.Error("leak fraction > 1 accepted")
	}
	if _, err := NewScheduler(nil); err == nil {
		t.Error("nil machine accepted")
	}
}

func TestReleaseRecyclesNodes(t *testing.T) {
	s := newSched(t)
	a, err := s.Submit(JobSpec{Ranks: 576, Placement: cluster.FullLoad})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(a.JobID); err != nil {
		t.Fatal(err)
	}
	if s.FreeNodes() != 3188 {
		t.Fatalf("free nodes after release = %d", s.FreeNodes())
	}
	if err := s.Release(a.JobID); err == nil {
		t.Fatal("double release accepted")
	}
	// The freed nodes are granted again.
	b, err := s.Submit(JobSpec{Ranks: 576, Placement: cluster.FullLoad})
	if err != nil {
		t.Fatal(err)
	}
	if b.Nodes[0] != 0 {
		t.Fatalf("recycled allocation starts at node %d", b.Nodes[0])
	}
}

func TestMachineExhaustion(t *testing.T) {
	small := &cluster.MachineSpec{
		Name: "tiny", TotalNodes: 4, SocketsPerNode: 2, CoresPerSocket: 24,
		MemPerNodeGB: 192, ClockGHz: 2.1,
	}
	s, err := NewScheduler(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Ranks: 3 * 48, Placement: cluster.FullLoad}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Ranks: 2 * 48, Placement: cluster.FullLoad}); err == nil {
		t.Fatal("oversubscription accepted")
	}
	// One more node still fits.
	if _, err := s.Submit(JobSpec{Ranks: 48, Placement: cluster.FullLoad}); err != nil {
		t.Fatal(err)
	}
}

// TestLeakySocketPinning reproduces the §5.3 anomaly: a one-socket
// directive with leaky enforcement shows ranks on the "idle" socket.
func TestLeakySocketPinning(t *testing.T) {
	s := newSched(t)
	clean, err := s.Submit(JobSpec{Ranks: 144, Placement: cluster.HalfLoadOneSocket})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Config.RanksSocket1 != 0 {
		t.Fatal("clean pinning leaked")
	}
	leaky, err := s.Submit(JobSpec{
		Ranks: 144, Placement: cluster.HalfLoadOneSocket, LeakySocketPinning: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if leaky.Config.RanksSocket1 != 6 || leaky.Config.RanksSocket0 != 18 {
		t.Fatalf("leaky split = %d/%d, want 18/6",
			leaky.Config.RanksSocket0, leaky.Config.RanksSocket1)
	}
	// Total ranks per node unchanged.
	if leaky.Config.RanksSocket0+leaky.Config.RanksSocket1 != 24 {
		t.Fatal("leak changed the rank count")
	}
	// Balanced placements have nothing to leak.
	two, err := s.Submit(JobSpec{
		Ranks: 144, Placement: cluster.HalfLoadTwoSockets, LeakySocketPinning: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if two.Config.RanksSocket0 != 12 || two.Config.RanksSocket1 != 12 {
		t.Fatal("balanced placement perturbed")
	}
}

func TestLeakConservesRanksQuick(t *testing.T) {
	s := newSched(t)
	f := func(frac uint8) bool {
		leak := float64(frac%101) / 100
		a, err := s.Submit(JobSpec{
			Ranks: 144, Placement: cluster.HalfLoadOneSocket, LeakySocketPinning: leak,
		})
		if err != nil {
			return false
		}
		defer func() {
			if err := s.Release(a.JobID); err != nil {
				panic(err)
			}
		}()
		return a.Config.RanksSocket0+a.Config.RanksSocket1 == 24 &&
			a.Config.RanksSocket0 >= 0 && a.Config.RanksSocket1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
