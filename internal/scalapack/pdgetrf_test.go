package scalapack

import (
	"math"
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/mpi"
)

func TestPdgetrfSolveMatchesSequential(t *testing.T) {
	for _, tc := range []struct{ n, ranks, nb int }{
		{16, 1, 4}, {20, 4, 4}, {24, 6, 4}, {30, 9, 5}, {23, 4, 4},
	} {
		sys := mat.NewRandomSystem(tc.n, int64(tc.n*11+tc.ranks))
		want, err := Dgesv(sys)
		if err != nil {
			t.Fatal(err)
		}
		w, err := mpi.NewWorld(tc.ranks, mpi.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var got []float64
		err = w.Run(func(p *mpi.Proc) error {
			f, err := Pdgetrf(p, p.World(), sys.A, ParallelOptions{BlockSize: tc.nb})
			if err != nil {
				return err
			}
			x, err := f.Solve(p, sys.B)
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				mu.Lock()
				got = x
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%+v: x[%d] = %g, want %g", tc, i, got[i], want[i])
			}
		}
	}
}

func TestFactorizationSolvesMultipleRHS(t *testing.T) {
	// One factorisation, three right-hand sides — the point of the split.
	const n, ranks = 24, 4
	a := mat.NewDiagonallyDominant(n, 55)
	w, err := mpi.NewWorld(ranks, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	results := make([][]float64, 3)
	rhs := make([][]float64, 3)
	for k := range rhs {
		x := make([]float64, n)
		for i := range x {
			x[i] = float64((i+1)*(k+1)) / 7
		}
		rhs[k] = a.MulVec(x)
	}
	err = w.Run(func(p *mpi.Proc) error {
		f, err := Pdgetrf(p, p.World(), a, ParallelOptions{BlockSize: 6})
		if err != nil {
			return err
		}
		if f.N() != n {
			return errString("wrong order")
		}
		for k := range rhs {
			x, err := f.Solve(p, rhs[k])
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				mu.Lock()
				results[k] = x
				mu.Unlock()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, x := range results {
		if rr := mat.RelativeResidual(a, x, rhs[k]); rr > 1e-12 {
			t.Fatalf("rhs %d: residual %g", k, rr)
		}
	}
}

func TestFactorizationPivotsRecorded(t *testing.T) {
	// A matrix needing swaps must record non-identity pivots.
	a, _ := mat.NewFromData(4, 4, []float64{
		0, 2, 0, 1,
		2, 0, 1, 0,
		0, 1, 0, 2,
		1, 0, 2, 0,
	})
	w, err := mpi.NewWorld(4, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) error {
		f, err := Pdgetrf(p, p.World(), a.Clone(), ParallelOptions{BlockSize: 2})
		if err != nil {
			return err
		}
		pivots := f.Pivots()
		if len(pivots) != 4 {
			return errString("pivot list incomplete")
		}
		moved := false
		for _, pv := range pivots {
			if pv[0] != pv[1] {
				moved = true
			}
		}
		if !moved {
			return errString("no swaps recorded for a pivot-requiring matrix")
		}
		// And the factorisation still solves correctly.
		x0 := []float64{3, -1, 2, 5}
		b := a.MulVec(x0)
		x, err := f.Solve(p, b)
		if err != nil {
			return err
		}
		for i := range x0 {
			if math.Abs(x[i]-x0[i]) > 1e-10 {
				return errString("pivoted solve wrong")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPdgetrfValidation(t *testing.T) {
	w, err := mpi.NewWorld(2, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) error {
		if _, err := Pdgetrf(p, p.World(), mat.New(2, 3), ParallelOptions{}); err == nil {
			return errString("non-square accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Solve with a wrong-length rhs.
	w2, err := mpi.NewWorld(2, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := mat.NewDiagonallyDominant(8, 1)
	err = w2.Run(func(p *mpi.Proc) error {
		f, err := Pdgetrf(p, p.World(), a, ParallelOptions{BlockSize: 4})
		if err != nil {
			return err
		}
		if _, err := f.Solve(p, []float64{1}); err == nil {
			return errString("short rhs accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
