package scalapack

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestSteppedLUMatchesDgetrf(t *testing.T) {
	sys := mat.NewRandomSystem(20, 6)
	lu, err := NewLU(sys.A)
	if err != nil {
		t.Fatal(err)
	}
	if lu.N() != 20 || lu.Remaining() != 20 {
		t.Fatalf("fresh state: N=%d remaining=%d", lu.N(), lu.Remaining())
	}
	if _, _, err := lu.Factors(); err == nil {
		t.Fatal("Factors before completion accepted")
	}
	steps := 0
	for lu.Remaining() > 0 {
		if lu.StepFlops() < 0 {
			t.Fatal("negative step cost")
		}
		if err := lu.Step(); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if steps != 20 {
		t.Fatalf("%d steps, want 20", steps)
	}
	if err := lu.Step(); err == nil {
		t.Fatal("step past completion accepted")
	}
	packed, ipiv, err := lu.Factors()
	if err != nil {
		t.Fatal(err)
	}
	// Must agree exactly with the one-shot factorisation.
	ref := sys.A.Clone()
	refPiv, err := Dgetrf(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !packed.EqualApprox(ref, 0) {
		t.Fatal("stepped LU differs from Dgetrf")
	}
	for i := range ipiv {
		if ipiv[i] != refPiv[i] {
			t.Fatalf("pivot %d: %d vs %d", i, ipiv[i], refPiv[i])
		}
	}
}

func TestSteppedLUSolve(t *testing.T) {
	sys := mat.NewRandomSystem(16, 2)
	lu, err := NewLU(sys.A)
	if err != nil {
		t.Fatal(err)
	}
	// Partially step, then let Solve finish.
	for i := 0; i < 5; i++ {
		if err := lu.Step(); err != nil {
			t.Fatal(err)
		}
	}
	x, err := lu.Solve(sys.B)
	if err != nil {
		t.Fatal(err)
	}
	if rr := mat.RelativeResidual(sys.A, x, sys.B); rr > 1e-12 {
		t.Fatalf("residual %g", rr)
	}
}

func TestSteppedLUValidation(t *testing.T) {
	if _, err := NewLU(mat.New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	singular, _ := mat.NewFromData(2, 2, []float64{1, 2, 2, 4})
	lu, err := NewLU(singular)
	if err != nil {
		t.Fatal(err)
	}
	if err := lu.Step(); err != nil {
		t.Fatal(err)
	}
	if err := lu.Step(); err == nil {
		t.Fatal("singular trailing column accepted")
	}
}

func TestStepFlopsSum(t *testing.T) {
	// Σ StepFlops ≈ 2/3·n³ leading term.
	n := 64
	lu, err := NewLU(mat.NewDiagonallyDominant(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for lu.Remaining() > 0 {
		sum += lu.StepFlops()
		if err := lu.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want := 2.0 / 3.0 * float64(n*n*n)
	if math.Abs(sum-want)/want > 0.05 {
		t.Fatalf("Σ step flops = %g, want ≈%g", sum, want)
	}
}
