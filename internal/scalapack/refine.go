package scalapack

import (
	"fmt"

	"repro/internal/mat"
)

// RefineResult reports an iterative-refinement solve.
type RefineResult struct {
	X []float64
	// Iterations actually performed (stops early on convergence).
	Iterations int
	// Residuals holds the relative residual after each iteration,
	// Residuals[0] being the unrefined solve.
	Residuals []float64
}

// DgesvRefined solves A·x = b by LU with partial pivoting followed by
// iterative refinement (the classic DGESVX companion): factor once, then
// repeatedly solve A·δ = b − A·x and update x ← x + δ until the relative
// residual stops improving or maxIter corrections have been applied.
func DgesvRefined(sys *mat.System, maxIter int) (*RefineResult, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if maxIter < 0 {
		return nil, fmt.Errorf("scalapack: negative refinement count %d", maxIter)
	}
	lu := sys.A.Clone()
	ipiv, err := Dgetrf(lu)
	if err != nil {
		return nil, err
	}
	x, err := Dgetrs(lu, ipiv, sys.B)
	if err != nil {
		return nil, err
	}
	res := &RefineResult{X: x}
	res.Residuals = append(res.Residuals, mat.RelativeResidual(sys.A, x, sys.B))
	for it := 0; it < maxIter; it++ {
		// r = b − A·x, computed in working precision (the refinement still
		// gains whenever the factorisation lost accuracy, e.g. growth from
		// pivoting on ill-conditioned inputs).
		ax := sys.A.MulVec(res.X)
		r := mat.Sub(sys.B, ax)
		delta, err := Dgetrs(lu, ipiv, r)
		if err != nil {
			return nil, err
		}
		cand := mat.VecClone(res.X)
		mat.Axpy(1, delta, cand)
		rr := mat.RelativeResidual(sys.A, cand, sys.B)
		if rr >= res.Residuals[len(res.Residuals)-1] {
			break // no further progress
		}
		res.X = cand
		res.Residuals = append(res.Residuals, rr)
		res.Iterations++
	}
	return res, nil
}
