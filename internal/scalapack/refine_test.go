package scalapack

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// illConditioned builds a Hilbert-like matrix, notoriously ill-conditioned.
func illConditioned(n int) *mat.Dense {
	a := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 1/float64(i+j+1))
		}
	}
	return a
}

func TestDgesvRefinedWellConditioned(t *testing.T) {
	sys := mat.NewRandomSystem(30, 4)
	res, err := DgesvRefined(sys, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Well-conditioned: already near machine precision, refinement stops
	// quickly and never makes things worse.
	if res.Residuals[len(res.Residuals)-1] > res.Residuals[0] {
		t.Fatal("refinement degraded the residual")
	}
	if res.Residuals[len(res.Residuals)-1] > 1e-13 {
		t.Fatalf("final residual %g", res.Residuals[len(res.Residuals)-1])
	}
}

func TestDgesvRefinedImprovesIllConditioned(t *testing.T) {
	n := 10
	a := illConditioned(n)
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = 1
	}
	sys := &mat.System{A: a, B: a.MulVec(x0)}
	res, err := DgesvRefined(sys, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Skip("factorisation already optimal on this platform")
	}
	first, last := res.Residuals[0], res.Residuals[len(res.Residuals)-1]
	if last >= first {
		t.Fatalf("refinement did not improve: %g → %g", first, last)
	}
}

func TestDgesvRefinedZeroIterations(t *testing.T) {
	sys := mat.NewRandomSystem(8, 2)
	res, err := DgesvRefined(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || len(res.Residuals) != 1 {
		t.Fatalf("zero-iteration result %+v", res)
	}
	plain, err := Dgesv(sys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if math.Abs(res.X[i]-plain[i]) > 1e-15*(1+math.Abs(plain[i])) {
			t.Fatal("zero-iteration refined solve differs from plain solve")
		}
	}
}

func TestDgesvRefinedValidation(t *testing.T) {
	sys := mat.NewRandomSystem(4, 1)
	if _, err := DgesvRefined(sys, -1); err == nil {
		t.Fatal("negative iteration count accepted")
	}
	bad, _ := mat.NewFromData(2, 2, []float64{1, 2, 2, 4})
	if _, err := DgesvRefined(&mat.System{A: bad, B: []float64{1, 2}}, 2); err == nil {
		t.Fatal("singular matrix accepted")
	}
}
