package scalapack

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestDgesvKnownSystem(t *testing.T) {
	a, _ := mat.NewFromData(3, 3, []float64{
		2, 1, -1,
		-3, -1, 2,
		-2, 1, 2,
	})
	sys := &mat.System{A: a, B: []float64{8, -11, -3}}
	x, err := Dgesv(sys)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestDgesvNeedsPivoting(t *testing.T) {
	// Zero leading diagonal forces a swap; unpivoted elimination dies here.
	a, _ := mat.NewFromData(2, 2, []float64{0, 1, 1, 0})
	sys := &mat.System{A: a, B: []float64{3, 7}}
	x, err := Dgesv(sys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-14 || math.Abs(x[1]-3) > 1e-14 {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestDgesvSingular(t *testing.T) {
	a, _ := mat.NewFromData(2, 2, []float64{1, 2, 2, 4})
	sys := &mat.System{A: a, B: []float64{1, 2}}
	if _, err := Dgesv(sys); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v, want ErrSingular", err)
	}
}

func TestDgesvLeavesInputsIntact(t *testing.T) {
	sys := mat.NewRandomSystem(10, 3)
	aCopy := sys.A.Clone()
	bCopy := mat.VecClone(sys.B)
	if _, err := Dgesv(sys); err != nil {
		t.Fatal(err)
	}
	if !sys.A.EqualApprox(aCopy, 0) {
		t.Fatal("Dgesv mutated A")
	}
	for i := range bCopy {
		if sys.B[i] != bCopy[i] {
			t.Fatal("Dgesv mutated b")
		}
	}
}

func TestDgetrfReconstruction(t *testing.T) {
	// P·A = L·U must hold: rebuild and compare.
	sys := mat.NewRandomSystem(12, 9)
	lu := sys.A.Clone()
	ipiv, err := Dgetrf(lu)
	if err != nil {
		t.Fatal(err)
	}
	n := sys.N()
	l := mat.Identity(n)
	u := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j < i {
				l.Set(i, j, lu.At(i, j))
			} else {
				u.Set(i, j, lu.At(i, j))
			}
		}
	}
	pa := sys.A.Clone()
	for k := 0; k < n; k++ {
		pa.SwapRows(k, ipiv[k])
	}
	if !l.Mul(u).EqualApprox(pa, 1e-10) {
		t.Fatal("L·U != P·A")
	}
}

func TestDgesvRandomQuick(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%50) + 1
		if n < 1 {
			n = -n + 2
		}
		sys := mat.NewRandomSystem(n, seed)
		x, err := Dgesv(sys)
		if err != nil {
			return false
		}
		return mat.RelativeResidual(sys.A, x, sys.B) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDgesvAgreesWithGeneratingSolution(t *testing.T) {
	sys := mat.NewRandomSystem(40, 123)
	x, err := Dgesv(sys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-sys.X[i]) > 1e-9*(1+math.Abs(sys.X[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], sys.X[i])
		}
	}
}

func TestDgetrsValidation(t *testing.T) {
	lu := mat.Identity(3)
	if _, err := Dgetrs(lu, []int{0}, []float64{1, 2, 3}); err == nil {
		t.Fatal("short ipiv accepted")
	}
	if _, err := Dgetrs(lu, []int{0, 1, 2}, []float64{1}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestDgetrfNonSquare(t *testing.T) {
	if _, err := Dgetrf(mat.New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}
