package scalapack

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/mpi"
)

// Checkpoint/restart support for Pdgesv — the fault-tolerance technique
// the paper's IMe reference [7] compares against ("more efficient than
// the checkpoint/restart technique usually applied in Gaussian
// Elimination"). ScaLAPACK has no algorithm-level redundancy: when a rank
// dies the job dies, and resilience means periodically snapshotting every
// rank's local factorisation state so a restarted job can resume from the
// last complete snapshot instead of from scratch. The solver only defines
// the hook types and calls them at panel boundaries; storage lives in
// internal/ckpt, and the restart loop in core.RunResilient.

// PanelSnapshot is one rank's factorisation state at a panel boundary:
// everything panelStep mutates. Restoring it and resuming the panel loop
// at K0 replays the original run bit for bit (the solver is deterministic
// in virtual time).
type PanelSnapshot struct {
	// K0 is the first unprocessed panel column: the resume point.
	K0 int
	// A is a deep copy of the rank's local block-cyclic tile of the
	// partially factorised matrix.
	A *mat.Dense
	// B is the rank's replicated right-hand-side segment (nil when the
	// run does not carry b).
	B []float64
	// Pivots is the swap log up to K0 (needed by Factorization.Solve and
	// by the panels still to come).
	Pivots [][2]int
}

// Bytes returns the snapshot's payload size — what a checkpoint write
// moves to stable storage, and what the cost model charges for.
func (s PanelSnapshot) Bytes() float64 {
	var elems int
	if s.A != nil {
		elems += s.A.Rows() * s.A.Cols()
	}
	elems += len(s.B)
	return float64(elems)*mpi.Float64Bytes + float64(len(s.Pivots))*16
}

// CheckpointPlan wires periodic checkpointing into Pdgesv. The zero/nil
// plan disables everything; with Every > 0 each rank snapshots its state
// after every Every-th panel step, charging Cost virtual seconds before
// handing the snapshot to Save. Resume, when it yields a snapshot, makes
// the solver skip the already-factorised panels and continue from the
// snapshot instead (charging Cost again for the restore read).
type CheckpointPlan struct {
	// Every is the checkpoint period in panel steps (≤ 0 disables).
	Every int
	// Cost returns the virtual seconds one rank spends writing
	// (restore=false) or reading back (restore=true) a snapshot of the
	// given size. Nil means checkpoints are free.
	Cost func(bytes float64, restore bool) float64
	// Save stores one rank's snapshot (called once per rank per period).
	Save func(rank int, snap PanelSnapshot)
	// Resume returns the snapshot a restarted rank continues from, if any.
	Resume func(rank int) (PanelSnapshot, bool)
}

// snapshot deep-copies the mutable solver state, resuming at nextK0.
func (st *pdState) snapshot(nextK0 int) PanelSnapshot {
	snap := PanelSnapshot{K0: nextK0, A: st.a.Clone()}
	if st.b != nil {
		snap.B = append([]float64(nil), st.b...)
	}
	snap.Pivots = append([][2]int(nil), st.pivots...)
	return snap
}

// restore overwrites the solver state from a snapshot taken by a run with
// the same layout.
func (st *pdState) restore(snap PanelSnapshot) error {
	if snap.A == nil || snap.A.Rows() != st.a.Rows() || snap.A.Cols() != st.a.Cols() {
		return fmt.Errorf("scalapack: snapshot block shape mismatch")
	}
	if len(snap.B) != len(st.b) {
		return fmt.Errorf("scalapack: snapshot rhs length %d, want %d", len(snap.B), len(st.b))
	}
	if snap.K0 <= 0 || snap.K0 > st.n {
		return fmt.Errorf("scalapack: snapshot resume point %d out of range (0,%d]", snap.K0, st.n)
	}
	for li := 0; li < st.a.Rows(); li++ {
		copy(st.a.Row(li), snap.A.Row(li))
	}
	copy(st.b, snap.B)
	st.pivots = append(st.pivots[:0], snap.Pivots...)
	return nil
}

// chargeCheckpoint charges the virtual cost of one snapshot write or
// restore read: busy seconds plus the snapshot's bytes through the memory
// hierarchy.
func (st *pdState) chargeCheckpoint(plan *CheckpointPlan, bytes float64, restore bool) {
	if plan.Cost == nil {
		return
	}
	if s := plan.Cost(bytes, restore); s > 0 {
		st.p.Compute(s, bytes)
	}
}
