package scalapack

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// ParallelOptions tunes Pdgesv.
type ParallelOptions struct {
	// BlockSize is the block-cyclic/panel width nb (DefaultBlockSize if 0).
	BlockSize int
	// ChargeCosts enables virtual-time/energy accounting of the compute.
	ChargeCosts bool
	// DistributeInput switches from the shared-file input model (every
	// rank passes the same system) to master-reads-and-scatters: only comm
	// rank 0 needs sys; each rank's block-cyclic pieces travel over
	// point-to-point sends.
	DistributeInput bool
	// Checkpoint enables periodic in-memory checkpoint/restart of the
	// panel loop (see checkpoint.go); nil disables it.
	Checkpoint *CheckpointPlan
}

// Pdgesv solves A·x = b by block-cyclic parallel Gaussian elimination with
// partial pivoting over communicator c — the ScaLAPACK routine the paper
// benchmarks. Every rank passes the same system and calls collectively;
// all ranks return the full solution vector.
//
// The implementation is the standard right-looking algorithm: per panel,
// the owning process column factorises it with per-column pivot
// allreduces and row exchanges, the pivot list is broadcast row-wise and
// the swaps applied everywhere, the L panel is broadcast row-wise and the
// U block row (plus the transformed right-hand-side segment) column-wise,
// and every rank updates its trailing block with a local GEMM. Distributed
// blocked back-substitution recovers x.
func Pdgesv(p *mpi.Proc, c *mpi.Comm, sys *mat.System, opts ParallelOptions) ([]float64, error) {
	me, err := c.Rank(p)
	if err != nil {
		return nil, err
	}
	grid, err := NewGrid(c.Size())
	if err != nil {
		return nil, err
	}
	nb := opts.BlockSize
	if nb <= 0 {
		nb = DefaultBlockSize
	}
	if opts.ChargeCosts {
		p.SetActivity(CoreActivity)
		defer p.SetActivity(1)
	}

	var st *pdState
	if opts.DistributeInput {
		st, err = newPdStateScattered(p, c, sys, grid, me, nb)
	} else {
		if verr := sys.Validate(); verr != nil {
			return nil, verr
		}
		n := sys.N()
		if nb > n {
			nb = n
		}
		if grid.Pr > (n+nb-1)/nb || grid.Pc > (n+nb-1)/nb {
			return nil, fmt.Errorf("scalapack: grid %d×%d too large for %d blocks of %d",
				grid.Pr, grid.Pc, (n+nb-1)/nb, nb)
		}
		st, err = newPdState(p, c, sys.A, sys.B, grid, me, nb)
	}
	if err != nil {
		return nil, err
	}
	if opts.ChargeCosts {
		st.charge = true
	}
	st.attachMetrics()

	n, nb := st.n, st.nb
	startK0 := 0
	if plan := opts.Checkpoint; plan != nil && plan.Resume != nil {
		if snap, ok := plan.Resume(me); ok {
			ph := p.BeginPhase("checkpoint-restore", snap.K0/nb)
			if err := st.restore(snap); err != nil {
				return nil, err
			}
			st.chargeCheckpoint(plan, snap.Bytes(), true)
			p.EndPhase(ph)
			startK0 = snap.K0
		}
	}
	steps := 0
	for k0 := startK0; k0 < n; k0 += nb {
		stepStart := p.Clock()
		if err := st.panelStep(k0); err != nil {
			return nil, fmt.Errorf("scalapack: panel at %d: %w", k0, err)
		}
		if st.pr == 0 && st.pc == 0 {
			st.mPanelS.Add(p.Clock() - stepStart)
			st.mPanels.Inc()
		}
		steps++
		if plan := opts.Checkpoint; plan != nil && plan.Every > 0 &&
			steps%plan.Every == 0 && k0+nb < n {
			// Every rank reaches this point at the same panel in program
			// order, so the generation (the resume column) is coherent
			// across the world without extra synchronisation.
			ph := p.BeginPhase("checkpoint", k0/nb)
			snap := st.snapshot(k0 + nb)
			st.chargeCheckpoint(plan, snap.Bytes(), false)
			if plan.Save != nil {
				plan.Save(me, snap)
			}
			p.EndPhase(ph)
		}
	}
	ph := p.BeginPhase("back-substitution", -1)
	x, err := st.backSubstitute(func(_, li int) float64 { return st.b[li] })
	p.EndPhase(ph)
	if err != nil {
		return nil, err
	}
	return x, nil
}

// pdState is one rank's share of a Pdgesv run.
type pdState struct {
	p       *mpi.Proc
	c       *mpi.Comm
	grid    Grid
	pr, pc  int
	rowComm *mpi.Comm // the pcs of my process row; my rank there is pc
	colComm *mpi.Comm // the prs of my process column; my rank there is pr
	n, nb   int
	myRows  []int // global rows owned, ascending
	myCols  []int // global cols owned, ascending
	a       *mat.Dense
	carryB  bool
	b       []float64 // rhs entries for myRows, replicated across my row's pcs (fused path)
	charge  bool
	// pivots records (j, pv) swaps in elimination order for later
	// right-hand sides (Factorization.Solve).
	pivots [][2]int
	// Registry instruments (nil when metrics are disabled; telemetry
	// instruments no-op on nil, so they are used unconditionally).
	mFlops  *telemetry.Counter
	mPanelS *telemetry.Counter
	mPanels *telemetry.Counter
}

// attachMetrics resolves the solver's instruments from the world registry
// (no-op when metrics are disabled).
func (st *pdState) attachMetrics() {
	reg := st.p.Metrics()
	if reg == nil {
		return
	}
	st.mFlops = reg.Counter("solver_flops_total", "modelled floating-point operations charged by the solver", "alg", "scalapack")
	st.mPanelS = reg.Counter("solver_level_seconds_total", "virtual seconds spent in panel steps, grid rank (0,0)", "alg", "scalapack")
	st.mPanels = reg.Counter("solver_levels_total", "panel steps completed, grid rank (0,0)", "alg", "scalapack")
}

func newPdState(p *mpi.Proc, c *mpi.Comm, a *mat.Dense, b []float64, grid Grid, me, nb int) (*pdState, error) {
	st, err := layoutPdState(p, c, grid, me, nb, a.Rows(), b != nil)
	if err != nil {
		return nil, err
	}
	for li, gi := range st.myRows {
		src := a.Row(gi)
		dst := st.a.Row(li)
		for lj, gj := range st.myCols {
			dst[lj] = src[gj]
		}
	}
	if st.carryB {
		for li, gi := range st.myRows {
			st.b[li] = b[gi]
		}
	}
	return st, nil
}

// layoutPdState builds the communicator topology and empty local storage
// of one rank — everything that does not depend on the matrix contents.
func layoutPdState(p *mpi.Proc, c *mpi.Comm, grid Grid, me, nb, n int, carryB bool) (*pdState, error) {
	pr, pc, err := grid.Coords(me)
	if err != nil {
		return nil, err
	}
	rowComm, err := p.CommSplit(c, pr, pc)
	if err != nil {
		return nil, err
	}
	colComm, err := p.CommSplit(c, pc, pr)
	if err != nil {
		return nil, err
	}
	st := &pdState{
		p: p, c: c, grid: grid, pr: pr, pc: pc,
		rowComm: rowComm, colComm: colComm, n: n, nb: nb,
		carryB: carryB,
	}
	for g := 0; g < n; g++ {
		if o, _ := OwnerAndLocal(g, nb, grid.Pr); o == pr {
			st.myRows = append(st.myRows, g)
		}
		if o, _ := OwnerAndLocal(g, nb, grid.Pc); o == pc {
			st.myCols = append(st.myCols, g)
		}
	}
	st.a = mat.New(len(st.myRows), len(st.myCols))
	if carryB {
		st.b = make([]float64, len(st.myRows))
	}
	return st, nil
}

// newPdStateScattered builds a rank's state in master-reads-and-scatters
// mode: a metadata broadcast shares the order (and propagates validation
// failures coherently), then one MPI_Scatter ships every rank its
// block-cyclic pieces plus its share of b.
func newPdStateScattered(p *mpi.Proc, c *mpi.Comm, sys *mat.System, grid Grid, me, nb int) (*pdState, error) {
	var meta []float64
	var masterErr error
	if me == 0 {
		switch {
		case sys == nil:
			masterErr = fmt.Errorf("scalapack: master needs the input system")
		case sys.Validate() != nil:
			masterErr = sys.Validate()
		}
		if masterErr != nil {
			meta = []float64{1, 0}
		} else {
			meta = []float64{0, float64(sys.N())}
		}
	}
	meta, err := p.Bcast(c, 0, meta)
	if err != nil {
		return nil, err
	}
	if meta[0] != 0 {
		if masterErr != nil {
			return nil, masterErr
		}
		return nil, fmt.Errorf("scalapack: master rejected the input system")
	}
	n := int(meta[1])
	if nb > n {
		nb = n
	}
	if grid.Pr > (n+nb-1)/nb || grid.Pc > (n+nb-1)/nb {
		return nil, fmt.Errorf("scalapack: grid %d×%d too large for %d blocks of %d",
			grid.Pr, grid.Pc, (n+nb-1)/nb, nb)
	}
	st, err := layoutPdState(p, c, grid, me, nb, n, true)
	if err != nil {
		return nil, err
	}
	var chunks [][]float64
	if me == 0 {
		chunks = make([][]float64, grid.Size())
		for r := 0; r < grid.Size(); r++ {
			rpr, rpc, err := grid.Coords(r)
			if err != nil {
				return nil, err
			}
			var rows, cols []int
			for g := 0; g < n; g++ {
				if o, _ := OwnerAndLocal(g, nb, grid.Pr); o == rpr {
					rows = append(rows, g)
				}
				if o, _ := OwnerAndLocal(g, nb, grid.Pc); o == rpc {
					cols = append(cols, g)
				}
			}
			flat := make([]float64, 0, len(rows)*len(cols)+len(rows))
			for _, gi := range rows {
				src := sys.A.Row(gi)
				for _, gj := range cols {
					flat = append(flat, src[gj])
				}
			}
			for _, gi := range rows {
				flat = append(flat, sys.B[gi])
			}
			chunks[r] = flat
		}
	}
	chunk, err := p.Scatter(c, 0, chunks)
	if err != nil {
		return nil, err
	}
	nr, nc := len(st.myRows), len(st.myCols)
	if len(chunk) != nr*nc+nr {
		return nil, fmt.Errorf("scalapack: scattered block has %d entries, want %d", len(chunk), nr*nc+nr)
	}
	for li := 0; li < nr; li++ {
		copy(st.a.Row(li), chunk[li*nc:(li+1)*nc])
	}
	copy(st.b, chunk[nr*nc:])
	return st, nil
}

// localRow returns the local index of global row g if this rank's process
// row owns it.
func (st *pdState) localRow(g int) (int, bool) {
	o, l := OwnerAndLocal(g, st.nb, st.grid.Pr)
	return l, o == st.pr
}

// localCol is the column counterpart of localRow.
func (st *pdState) localCol(g int) (int, bool) {
	o, l := OwnerAndLocal(g, st.nb, st.grid.Pc)
	return l, o == st.pc
}

// chargeFlops accounts local arithmetic to the virtual clock.
func (st *pdState) chargeFlops(flops float64) {
	if flops > 0 {
		st.mFlops.Add(flops)
	}
	if st.charge && flops > 0 {
		st.p.ComputeFlops(flops, EffFlopsPerCore, flops*DramBytesPerFlop)
	}
}

// panelStep factorises the panel starting at global column k0 and updates
// the trailing matrix and right-hand side.
func (st *pdState) panelStep(k0 int) error {
	n, nb := st.n, st.nb
	kw := nb
	if k0+kw > n {
		kw = n - k0
	}
	k1 := k0 + kw // first column after the panel
	bi := k0 / nb
	pcK := bi % st.grid.Pc
	prK := bi % st.grid.Pr

	// --- Panel factorisation (process column pcK only) ---
	phPanel := st.p.BeginPhase("panel", bi)
	pivots := make([]int, kw)
	status := 0.0
	if st.pc == pcK {
		for j := k0; j < k1; j++ {
			piv, err := st.factorColumn(j, k0, k1)
			if err != nil {
				// Only genuine singularity rides the coordinated status
				// broadcast; anything else (a failed peer rank, a transport
				// error) must propagate as itself so callers can tell a bad
				// matrix from a dead world.
				if !errors.Is(err, ErrSingular) {
					return err
				}
				status = 1
				break
			}
			pivots[j-k0] = piv
		}
	}

	// Broadcast the pivot list (with a status flag) row-wise so every
	// process column learns the swaps; a singular panel aborts all ranks
	// coherently instead of deadlocking them.
	var build []float64
	if st.pc == pcK {
		build = mpi.GetBuf(kw + 1)
		build[0] = status
		for t, pv := range pivots {
			build[t+1] = float64(pv)
		}
	}
	payload, err := st.p.Bcast(st.rowComm, pcK, build)
	if err != nil {
		return err
	}
	if build != nil {
		mpi.PutBuf(build)
	}
	if payload[0] != 0 {
		st.p.Recycle(payload)
		return fmt.Errorf("%w: panel at column %d", ErrSingular, k0)
	}
	for t := range pivots {
		pivots[t] = int(payload[t+1])
		st.pivots = append(st.pivots, [2]int{k0 + t, pivots[t]})
	}
	st.p.Recycle(payload)

	// --- Apply the row swaps outside the panel, and to b ---
	for t, pv := range pivots {
		j := k0 + t
		if pv == j {
			continue
		}
		if err := st.swapRows(j, pv, func(g int) bool { return g < k0 || g >= k1 }); err != nil {
			return err
		}
		if st.carryB {
			if err := st.swapB(j, pv); err != nil {
				return err
			}
		}
	}
	st.p.EndPhase(phPanel)

	// --- Row-wise broadcast of the panel columns (L11 at prK, L21 below) ---
	phBcast := st.p.BeginPhase("broadcast", bi)
	lpanel, err := st.broadcastPanel(k0, k1, pcK)
	if err != nil {
		return err
	}

	// --- U block row: triangular solve on my trailing columns (prK row) ---
	// and transform of the panel segment of b, then column-wise broadcast.
	if st.pr == prK {
		st.computeURow(k0, k1, lpanel)
	}
	u12, bp, err := st.broadcastURow(k0, k1, prK)
	if err != nil {
		return err
	}
	st.p.EndPhase(phBcast)

	// --- Trailing update: A22 -= L21·U12 and b -= L21·bp ---
	phTrail := st.p.BeginPhase("trailing-update", bi)
	st.trailingUpdate(k0, k1, lpanel, u12, bp)
	st.p.EndPhase(phTrail)

	// Both broadcast payloads are dead now. lpanel wraps its transport
	// buffer directly; u12 wraps the prefix of the U-row buffer (bp is its
	// suffix), and the prefix slice keeps the full capacity, so recycling
	// it returns the whole buffer.
	lraw, _ := lpanel.Raw()
	mpi.PutBuf(lraw)
	uraw, _ := u12.Raw()
	mpi.PutBuf(uraw)
	return nil
}

// factorColumn performs the pivot search, swap and elimination for global
// column j inside the panel [k0,k1). Only pcK ranks call it.
func (st *pdState) factorColumn(j, k0, k1 int) (int, error) {
	lj, ok := st.localCol(j)
	if !ok {
		return 0, fmt.Errorf("scalapack: rank (%d,%d) does not own panel column %d", st.pr, st.pc, j)
	}
	// Local candidate among owned rows ≥ j.
	best, bestRow := math.Inf(-1), j
	scanned := 0
	for li := len(st.myRows) - 1; li >= 0; li-- {
		gi := st.myRows[li]
		if gi < j {
			break
		}
		scanned++
		if v := math.Abs(st.a.At(li, lj)); v > best {
			best, bestRow = v, gi
		}
	}
	st.chargeFlops(float64(scanned))
	val, piv, err := st.p.AllreduceMaxLoc(st.colComm, best, bestRow)
	if err != nil {
		return 0, err
	}
	if val <= 0 {
		return 0, fmt.Errorf("%w: column %d", ErrSingular, j)
	}
	// Swap rows j and piv within the panel columns.
	if piv != j {
		if err := st.swapRows(j, piv, func(g int) bool { return g >= k0 && g < k1 }); err != nil {
			return 0, err
		}
	}
	// Broadcast the pivot row segment (cols j..k1) down the process column.
	ownerPr, _ := OwnerAndLocal(j, st.nb, st.grid.Pr)
	var seg []float64
	if st.pr == ownerPr {
		li, _ := st.localRow(j)
		seg = mpi.GetBuf(k1 - j)
		for t := j; t < k1; t++ {
			lt, ok := st.localCol(t)
			if !ok {
				return 0, fmt.Errorf("scalapack: panel column %d not local", t)
			}
			seg[t-j] = st.a.At(li, lt)
		}
	}
	built := seg
	seg, err = st.p.Bcast(st.colComm, ownerPr, seg)
	if err != nil {
		return 0, err
	}
	if built != nil {
		mpi.PutBuf(built)
	}
	pivVal := seg[0]
	// Eliminate below: L multipliers and panel trailing update. Rows with
	// gi > j form a suffix of the ascending myRows, and the panel columns
	// j+1..k1 are consecutive local columns (one block-cyclic block), so
	// each row's update is a single fused AXPY — bit-identical to the
	// scalar loop — fanned across the worker pool. The flop charge is the
	// per-row constant times the row count, exactly what the scalar loop
	// summed.
	s := len(st.myRows)
	for s > 0 && st.myRows[s-1] > j {
		s--
	}
	nrows := len(st.myRows) - s
	if nrows > 0 {
		w := k1 - j - 1
		kernel.ParallelFor(nrows, 1+(1<<14)/(2*w+2), func(lo, hi int) {
			for li := s + lo; li < s+hi; li++ {
				row := st.a.Row(li)
				l := row[lj] / pivVal
				row[lj] = l
				if l != 0 && w > 0 {
					kernel.Axpy(-l, seg[1:], row[lj+1:lj+1+w])
				}
			}
		})
	}
	st.chargeFlops(float64(nrows) * float64(2*(k1-j-1)+1))
	st.p.Recycle(seg)
	return piv, nil
}

// swapRows exchanges global rows j and pv across the columns selected by
// keep. Rows on the same process row swap locally; otherwise the two
// owners exchange segments through the column communicator.
func (st *pdState) swapRows(j, pv int, keep func(g int) bool) error {
	prA, _ := OwnerAndLocal(j, st.nb, st.grid.Pr)
	prB, _ := OwnerAndLocal(pv, st.nb, st.grid.Pr)
	var cols []int // local col indices to exchange
	for lj, gj := range st.myCols {
		if keep(gj) {
			cols = append(cols, lj)
		}
	}
	if prA == prB {
		if st.pr != prA || len(cols) == 0 {
			return nil
		}
		liA, _ := st.localRow(j)
		liB, _ := st.localRow(pv)
		rowA, rowB := st.a.Row(liA), st.a.Row(liB)
		for _, lj := range cols {
			rowA[lj], rowB[lj] = rowB[lj], rowA[lj]
		}
		return nil
	}
	if st.pr != prA && st.pr != prB {
		return nil
	}
	mine, other := j, prB
	if st.pr == prB {
		mine, other = pv, prA
	}
	li, _ := st.localRow(mine)
	row := st.a.Row(li)
	// The outbound segment is built fresh for a single destination, so it
	// rides the zero-copy path: ownership passes to the receiver.
	seg := mpi.GetBuf(len(cols))
	for t, lj := range cols {
		seg[t] = row[lj]
	}
	// Deterministic exchange order: the lower process row sends first.
	const tagSwap = 101
	if st.pr < other {
		if err := st.p.SendNoCopy(st.colComm, other, tagSwap, seg); err != nil {
			return err
		}
		got, err := st.p.Recv(st.colComm, other, tagSwap)
		if err != nil {
			return err
		}
		seg = got
	} else {
		got, err := st.p.Recv(st.colComm, other, tagSwap)
		if err != nil {
			return err
		}
		if err := st.p.SendNoCopy(st.colComm, other, tagSwap, seg); err != nil {
			return err
		}
		seg = got
	}
	if len(seg) != len(cols) {
		return fmt.Errorf("scalapack: swap segment length %d, want %d", len(seg), len(cols))
	}
	for t, lj := range cols {
		row[lj] = seg[t]
	}
	st.p.Recycle(seg)
	return nil
}

// swapB exchanges the replicated right-hand-side entries of global rows j
// and pv (every process column performs the same exchange, mirroring the
// extra-column treatment of b in pdgesv's pdlaswp).
func (st *pdState) swapB(j, pv int) error {
	prA, _ := OwnerAndLocal(j, st.nb, st.grid.Pr)
	prB, _ := OwnerAndLocal(pv, st.nb, st.grid.Pr)
	if prA == prB {
		if st.pr == prA {
			liA, _ := st.localRow(j)
			liB, _ := st.localRow(pv)
			st.b[liA], st.b[liB] = st.b[liB], st.b[liA]
		}
		return nil
	}
	if st.pr != prA && st.pr != prB {
		return nil
	}
	mine, other := j, prB
	if st.pr == prB {
		mine, other = pv, prA
	}
	li, _ := st.localRow(mine)
	const tagSwapB = 102
	out := mpi.GetBuf(1)
	out[0] = st.b[li]
	if st.pr < other {
		if err := st.p.SendNoCopy(st.colComm, other, tagSwapB, out); err != nil {
			return err
		}
		got, err := st.p.Recv(st.colComm, other, tagSwapB)
		if err != nil {
			return err
		}
		st.b[li] = got[0]
		st.p.Recycle(got)
	} else {
		got, err := st.p.Recv(st.colComm, other, tagSwapB)
		if err != nil {
			return err
		}
		if err := st.p.SendNoCopy(st.colComm, other, tagSwapB, out); err != nil {
			return err
		}
		st.b[li] = got[0]
		st.p.Recycle(got)
	}
	return nil
}

// broadcastPanel ships each process row's factored panel columns from pcK
// to the whole row. The returned matrix holds, for every owned row, the
// kw panel-column values (L11 rows for prK, multipliers L21 elsewhere).
func (st *pdState) broadcastPanel(k0, k1, pcK int) (*mat.Dense, error) {
	kw := k1 - k0
	var build []float64
	if st.pc == pcK {
		build = mpi.GetBuf(len(st.myRows) * kw)
		for li := range st.myRows {
			row := st.a.Row(li)
			for t := k0; t < k1; t++ {
				lt, _ := st.localCol(t)
				build[li*kw+(t-k0)] = row[lt]
			}
		}
	}
	flat, err := st.p.Bcast(st.rowComm, pcK, build)
	if err != nil {
		return nil, err
	}
	if build != nil {
		mpi.PutBuf(build)
	}
	if len(flat) != len(st.myRows)*kw {
		return nil, fmt.Errorf("scalapack: panel payload %d, want %d", len(flat), len(st.myRows)*kw)
	}
	lp, err := mat.NewFromData(len(st.myRows), kw, flat)
	if err != nil {
		return nil, err
	}
	return lp, nil
}

// computeURow turns rows k0..k1 of my trailing columns into U12 via
// forward substitution with unit-lower L11, and transforms the panel
// segment of b the same way. Only prK ranks call it.
func (st *pdState) computeURow(k0, k1 int, lpanel *mat.Dense) {
	kw := k1 - k0
	// Local row indices of the panel block rows (all owned by prK).
	lis := make([]int, kw)
	for t := 0; t < kw; t++ {
		li, ok := st.localRow(k0 + t)
		if !ok {
			panic(fmt.Sprintf("scalapack: process row lost panel row %d", k0+t))
		}
		lis[t] = li
	}
	var flops float64
	for _, gj := range st.myCols {
		if gj < k1 {
			continue
		}
		lj, _ := st.localCol(gj)
		for i := 1; i < kw; i++ {
			var s float64
			lrow := lpanel.Row(lis[i])
			for t := 0; t < i; t++ {
				s += lrow[t] * st.a.At(lis[t], lj)
			}
			st.a.Set(lis[i], lj, st.a.At(lis[i], lj)-s)
		}
		flops += float64(kw * kw)
	}
	// b panel: same forward substitution on the replicated segment.
	if st.carryB {
		for i := 1; i < kw; i++ {
			var s float64
			lrow := lpanel.Row(lis[i])
			for t := 0; t < i; t++ {
				s += lrow[t] * st.b[lis[t]]
			}
			st.b[lis[i]] -= s
		}
		flops += float64(kw * kw)
	}
	st.chargeFlops(flops)
}

// broadcastURow ships the U block row (my trailing columns) and the
// transformed b panel segment from process row prK down every process
// column. Returns U12 for my columns (kw × nTrailingLocal) and bp (kw).
func (st *pdState) broadcastURow(k0, k1, prK int) (*mat.Dense, []float64, error) {
	kw := k1 - k0
	var trail []int
	for lj, gj := range st.myCols {
		if gj >= k1 {
			trail = append(trail, lj)
		}
	}
	bLen := 0
	if st.carryB {
		bLen = kw
	}
	var build []float64
	if st.pr == prK {
		build = mpi.GetBuf(kw*len(trail) + bLen)
		for t := 0; t < kw; t++ {
			li, _ := st.localRow(k0 + t)
			row := st.a.Row(li)
			for u, lj := range trail {
				build[t*len(trail)+u] = row[lj]
			}
			if st.carryB {
				build[kw*len(trail)+t] = st.b[li]
			}
		}
	}
	flat, err := st.p.Bcast(st.colComm, prK, build)
	if err != nil {
		return nil, nil, err
	}
	if build != nil {
		mpi.PutBuf(build)
	}
	if len(flat) != kw*len(trail)+bLen {
		return nil, nil, fmt.Errorf("scalapack: U row payload %d, want %d", len(flat), kw*len(trail)+bLen)
	}
	u12, err := mat.NewFromData(kw, len(trail), flat[:kw*len(trail)])
	if err != nil {
		return nil, nil, err
	}
	return u12, flat[kw*len(trail):], nil
}

// trailingUpdate applies A22 -= L21·U12 on the owned trailing block and
// b -= L21·bp on the owned trailing rows. myRows/myCols are ascending, so
// the trailing rows and columns are suffixes of the local layout and the
// whole update is one strided GEMM on the blocked kernel (kw ≤ nb ≤ the
// kernel's k panel, so the accumulation per element even stays in
// ascending k order, like the scalar loops it replaces). The flop charge
// below is the same closed form the scalar version accumulated, keeping
// virtual time and energy bit-for-bit unchanged.
func (st *pdState) trailingUpdate(k0, k1 int, lpanel, u12 *mat.Dense, bp []float64) {
	kw := k1 - k0
	ri := len(st.myRows)
	for ri > 0 && st.myRows[ri-1] >= k1 {
		ri--
	}
	ci := len(st.myCols)
	for ci > 0 && st.myCols[ci-1] >= k1 {
		ci--
	}
	mrows := len(st.myRows) - ri
	ncols := len(st.myCols) - ci
	if mrows == 0 {
		return
	}
	if ncols > 0 {
		lp, ldl := lpanel.Raw()
		ud, ldu := u12.Raw()
		ad, lda := st.a.Raw()
		kernel.Gemm(mrows, ncols, kw, -1, lp[ri*ldl:], ldl, ud, ldu, ad[ri*lda+ci:], lda)
	}
	flops := float64(mrows) * float64(2*kw*ncols)
	if st.carryB {
		for li := ri; li < len(st.myRows); li++ {
			st.b[li] -= kernel.DotSerial(lpanel.Row(li)[:kw], bp)
		}
		flops += float64(mrows) * float64(2*kw)
	}
	st.chargeFlops(flops)
}

// backSubstitute solves U·x = y block row by block row from the bottom,
// broadcasting each solved segment to the whole grid. rhsAt returns the
// transformed right-hand-side entry of a global row (only consulted on
// the process row owning it).
func (st *pdState) backSubstitute(rhsAt func(globalRow, localRow int) float64) ([]float64, error) {
	n, nb := st.n, st.nb
	x := make([]float64, n)
	nBlocks := (n + nb - 1) / nb
	for bi := nBlocks - 1; bi >= 0; bi-- {
		r0 := bi * nb
		r1 := r0 + nb
		if r1 > n {
			r1 = n
		}
		kw := r1 - r0
		prI := bi % st.grid.Pr
		pcI := bi % st.grid.Pc
		solver := st.grid.Rank(prI, pcI)

		if st.pr == prI {
			// Partial sums over my trailing columns.
			s := make([]float64, kw)
			var flops float64
			for t := 0; t < kw; t++ {
				li, _ := st.localRow(r0 + t)
				row := st.a.Row(li)
				for lj, gj := range st.myCols {
					if gj >= r1 {
						s[t] += row[lj] * x[gj]
					}
				}
			}
			flops = float64(2 * kw * len(st.myCols))
			st.chargeFlops(flops)
			total, err := st.p.AllreduceSum(st.rowComm, s)
			if err != nil {
				return nil, err
			}
			if st.pc == pcI {
				// Solve the diagonal block backwards.
				seg := make([]float64, kw+1) // status + solution
				for t := kw - 1; t >= 0; t-- {
					li, _ := st.localRow(r0 + t)
					row := st.a.Row(li)
					v := rhsAt(r0+t, li) - total[t]
					for u := kw - 1; u > t; u-- {
						lu, _ := st.localCol(r0 + u)
						v -= row[lu] * seg[u+1]
					}
					ld, ok := st.localCol(r0 + t)
					if !ok {
						return nil, fmt.Errorf("scalapack: diagonal col %d not local", r0+t)
					}
					d := row[ld]
					if d == 0 {
						seg[0] = 1
						break
					}
					seg[t+1] = v / d
				}
				st.chargeFlops(float64(kw * kw))
				got, err := st.p.Bcast(st.c, solver, seg)
				if err != nil {
					return nil, err
				}
				if got[0] != 0 {
					return nil, fmt.Errorf("%w: zero U diagonal in block %d", ErrSingular, bi)
				}
				copy(x[r0:r1], got[1:])
				continue
			}
		}
		got, err := st.p.Bcast(st.c, solver, nil)
		if err != nil {
			return nil, err
		}
		if len(got) != kw+1 {
			return nil, fmt.Errorf("scalapack: solution payload %d, want %d", len(got), kw+1)
		}
		if got[0] != 0 {
			return nil, fmt.Errorf("%w: zero U diagonal in block %d", ErrSingular, bi)
		}
		copy(x[r0:r1], got[1:])
	}
	return x, nil
}
