// Package scalapack implements the slice of ScaLAPACK the paper benchmarks:
// dense LU factorisation with partial pivoting and the corresponding
// linear-system solve (pdgesv), on a 2-D block-cyclic data distribution
// over a process grid — plus the sequential LAPACK-style baseline
// (dgetrf/dgesv) it degenerates to on one rank.
//
// The package follows the library's key concepts (§2.2): a runtime-
// parametrised block-cyclic distribution, block-partitioned right-looking
// elimination for data reuse, and partial pivoting for numerical
// stability.
package scalapack

import "fmt"

// DefaultBlockSize is the distribution/panel block size nb. 64 is a
// typical pdgetrf choice on Skylake-class nodes.
const DefaultBlockSize = 64

// Grid is a Pr×Pc process grid over the ranks of a communicator, mapped
// row-major: comm rank = pr·Pc + pc.
type Grid struct {
	Pr, Pc int
}

// NewGrid builds the most square grid for p ranks (Pr ≤ Pc, Pr·Pc = p) —
// the shape ScaLAPACK guides recommend and the paper's square rank counts
// (144, 576, 1296) make exact.
func NewGrid(p int) (Grid, error) {
	if p <= 0 {
		return Grid{}, fmt.Errorf("scalapack: grid needs positive rank count, got %d", p)
	}
	pr := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			pr = d
		}
	}
	return Grid{Pr: pr, Pc: p / pr}, nil
}

// Size returns the rank count of the grid.
func (g Grid) Size() int { return g.Pr * g.Pc }

// Coords maps a comm rank to its (pr, pc) grid coordinates.
func (g Grid) Coords(rank int) (pr, pc int, err error) {
	if rank < 0 || rank >= g.Size() {
		return 0, 0, fmt.Errorf("scalapack: rank %d outside %d×%d grid", rank, g.Pr, g.Pc)
	}
	return rank / g.Pc, rank % g.Pc, nil
}

// Rank maps grid coordinates back to a comm rank.
func (g Grid) Rank(pr, pc int) int { return pr*g.Pc + pc }

// Numroc (NUMber of Rows Or Columns) returns how many of n global indices
// distributed in blocks of nb over np processes land on process p —
// ScaLAPACK's NUMROC with zero source offset.
func Numroc(n, nb, p, np int) int {
	if n <= 0 || nb <= 0 || np <= 0 || p < 0 || p >= np {
		return 0
	}
	nblocks := n / nb
	count := (nblocks / np) * nb
	extra := nblocks % np
	switch {
	case p < extra:
		count += nb
	case p == extra:
		count += n % nb
	}
	return count
}

// OwnerAndLocal maps a global index to its owning process and the local
// index there, for block size nb over np processes.
func OwnerAndLocal(g, nb, np int) (owner, local int) {
	block := g / nb
	owner = block % np
	local = (block/np)*nb + g%nb
	return owner, local
}

// GlobalIndex is the inverse of OwnerAndLocal: the global index of local
// element l on process p.
func GlobalIndex(l, nb, p, np int) int {
	block := l / nb
	return (block*np+p)*nb + l%nb
}
