package scalapack_test

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/scalapack"
)

// ExampleDgesv solves a system needing a pivot swap.
func ExampleDgesv() {
	a, _ := mat.NewFromData(2, 2, []float64{0, 1, 1, 0})
	x, err := scalapack.Dgesv(&mat.System{A: a, B: []float64{3, 7}})
	if err != nil {
		panic(err)
	}
	fmt.Printf("x = [%.0f %.0f]\n", x[0], x[1])
	// Output: x = [7 3]
}

// ExampleDgbsv solves a tridiagonal system in band storage.
func ExampleDgbsv() {
	b, _ := mat.NewBanded(3, 1, 1)
	for i := 0; i < 3; i++ {
		b.Set(i, i, 2)
	}
	b.Set(0, 1, -1)
	b.Set(1, 0, -1)
	b.Set(1, 2, -1)
	b.Set(2, 1, -1)
	x, err := scalapack.Dgbsv(b, []float64{1, 0, 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("x = [%.0f %.0f %.0f]\n", x[0], x[1], x[2])
	// Output: x = [1 1 1]
}

// ExampleDgels fits a line through consistent points.
func ExampleDgels() {
	a := mat.New(3, 2)
	b := make([]float64, 3)
	for i, tv := range []float64{0, 1, 2} {
		a.Set(i, 0, tv)
		a.Set(i, 1, 1)
		b[i] = 3*tv + 2
	}
	x, err := scalapack.Dgels(a, b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("slope %.0f intercept %.0f\n", x[0], x[1])
	// Output: slope 3 intercept 2
}
