package scalapack

import (
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/mpi"
)

func TestPdgesvDistributeInputMatchesShared(t *testing.T) {
	for _, tc := range []struct{ n, ranks, nb int }{
		{20, 4, 4}, {24, 6, 4}, {23, 4, 4},
	} {
		sys := mat.NewRandomSystem(tc.n, int64(tc.n*19+tc.ranks))
		shared, _ := runPdgesv(t, sys, tc.ranks, ParallelOptions{BlockSize: tc.nb})

		w, err := mpi.NewWorld(tc.ranks, mpi.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var scattered []float64
		err = w.Run(func(p *mpi.Proc) error {
			in := sys
			if p.Rank() != 0 {
				in = nil
			}
			x, err := Pdgesv(p, p.World(), in, ParallelOptions{
				BlockSize: tc.nb, DistributeInput: true,
			})
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				mu.Lock()
				scattered = x
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for i := range shared {
			if scattered[i] != shared[i] {
				t.Fatalf("%+v: scattered x[%d] = %g, shared %g", tc, i, scattered[i], shared[i])
			}
		}
	}
}

func TestPdgesvDistributeInputErrorsPropagate(t *testing.T) {
	w, err := mpi.NewWorld(4, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	failures := 0
	err = w.Run(func(p *mpi.Proc) error {
		if _, err := Pdgesv(p, p.World(), nil, ParallelOptions{
			BlockSize: 4, DistributeInput: true,
		}); err != nil {
			mu.Lock()
			failures++
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if failures != 4 {
		t.Fatalf("%d ranks failed, want all 4", failures)
	}
}
