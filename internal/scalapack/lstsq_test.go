package scalapack

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestDgelsSquareMatchesDgesv(t *testing.T) {
	sys := mat.NewRandomSystem(15, 8)
	want, err := Dgesv(sys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Dgels(sys.A, sys.B)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, dgesv %g", i, got[i], want[i])
		}
	}
}

func TestDgelsOverdeterminedLine(t *testing.T) {
	// Fit y = 2t + 1 exactly through consistent points.
	ts := []float64{0, 1, 2, 3, 4}
	a := mat.New(len(ts), 2)
	b := make([]float64, len(ts))
	for i, tv := range ts {
		a.Set(i, 0, tv)
		a.Set(i, 1, 1)
		b[i] = 2*tv + 1
	}
	x, err := Dgels(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("fit = %v, want [2 1]", x)
	}
}

func TestDgelsResidualOrthogonality(t *testing.T) {
	// For inconsistent systems, the residual r = A·x − b must satisfy
	// Aᵀ·r ≈ 0 — the normal-equations optimality condition.
	const m, n = 20, 4
	a := mat.New(m, n)
	b := make([]float64, m)
	s := int64(1)
	rngv := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s%1000)/500 - 1
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rngv())
		}
		b[i] = rngv()
	}
	f, err := Dgeqrf(a)
	if err != nil {
		t.Fatal(err)
	}
	x, res, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	r := mat.Sub(a.MulVec(x), b)
	atr := a.Transpose().MulVec(r)
	if mat.InfNorm(atr) > 1e-10 {
		t.Fatalf("Aᵀ·r = %v, want ≈0", atr)
	}
	if math.Abs(res-mat.TwoNorm(r)) > 1e-9*(1+res) {
		t.Fatalf("reported residual %g vs actual %g", res, mat.TwoNorm(r))
	}
}

func TestQRReconstruction(t *testing.T) {
	// R must be upper triangular with the same column norms structure:
	// ‖A·e₁‖ = |R[0][0]| etc. via QᵀQ = I ⇒ ‖A·x‖ = ‖R·x‖ for all x.
	a := mat.NewDiagonallyDominant(8, 4)
	f, err := Dgeqrf(a)
	if err != nil {
		t.Fatal(err)
	}
	r := f.R()
	for i := 1; i < 8; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R not upper triangular at (%d,%d)", i, j)
			}
		}
	}
	x := []float64{1, -2, 3, -4, 5, -6, 7, -8}
	if na, nr := mat.TwoNorm(a.MulVec(x)), mat.TwoNorm(r.MulVec(x)); math.Abs(na-nr) > 1e-9*na {
		t.Fatalf("‖Ax‖ = %g but ‖Rx‖ = %g (Q not orthogonal)", na, nr)
	}
}

func TestDgelsValidation(t *testing.T) {
	if _, err := Dgeqrf(mat.New(2, 3)); err == nil {
		t.Error("underdetermined accepted")
	}
	if _, err := Dgeqrf(mat.New(3, 0)); err == nil {
		t.Error("empty matrix accepted")
	}
	zero := mat.New(3, 2) // zero column ⇒ rank deficient
	if _, err := Dgeqrf(zero); err == nil {
		t.Error("zero column accepted")
	}
	a := mat.NewDiagonallyDominant(4, 2)
	f, err := Dgeqrf(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Solve([]float64{1}); err == nil {
		t.Error("short rhs accepted")
	}
}

func TestDgelsQuick(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%10) + 2
		if n < 2 {
			n = -n + 3
		}
		m := n + int(seed>>8)%10
		if m < n {
			m = n
		}
		// Random consistent system: b = A·x0 has LS solution exactly x0
		// when A has full column rank.
		a := mat.New(m, n)
		s := seed | 1
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s = s*6364136223846793005 + 1442695040888963407
				a.Set(i, j, float64(s%2001)/1000-1)
			}
		}
		// Boost the diagonal to keep full rank.
		for j := 0; j < n; j++ {
			a.Set(j, j, a.At(j, j)+3)
		}
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = float64(j) - 1.5
		}
		x, err := Dgels(a, a.MulVec(x0))
		if err != nil {
			return false
		}
		for j := range x0 {
			if math.Abs(x[j]-x0[j]) > 1e-7*(1+math.Abs(x0[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
