package scalapack

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestDgbsvTridiagonalKnown(t *testing.T) {
	// Classic tridiagonal [-1, 2, -1] with b = A·ones → x = ones.
	n := 10
	b, err := mat.NewBanded(n, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		b.Set(i, i, 2)
		if i > 0 {
			b.Set(i, i-1, -1)
		}
		if i < n-1 {
			b.Set(i, i+1, -1)
		}
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	x, err := Dgbsv(b, b.MulVec(ones))
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-1) > 1e-12 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestDgbsvMatchesDenseSolve(t *testing.T) {
	for _, tc := range []struct{ n, kl, ku int }{
		{8, 1, 1}, {20, 2, 3}, {30, 4, 1}, {15, 0, 2}, {15, 3, 0}, {12, 5, 5},
	} {
		band, err := mat.NewBandedDiagonallyDominant(tc.n, tc.kl, tc.ku, int64(tc.n*7+tc.kl))
		if err != nil {
			t.Fatal(err)
		}
		rhs := make([]float64, tc.n)
		for i := range rhs {
			rhs[i] = float64(i%5) - 2
		}
		want, err := Dgesv(&mat.System{A: band.Dense(), B: rhs})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Dgbsv(band, rhs)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%+v: x[%d] = %g, dense %g", tc, i, got[i], want[i])
			}
		}
	}
}

func TestDgbsvNeedsPivoting(t *testing.T) {
	// Zero diagonal forces band pivoting into the subdiagonal.
	b, err := mat.NewBanded(4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// [[0 2 0 0] [3 0 1 0] [0 1 0 2] [0 0 4 0]]
	b.Set(0, 1, 2)
	b.Set(1, 0, 3)
	b.Set(1, 2, 1)
	b.Set(2, 1, 1)
	b.Set(2, 3, 2)
	b.Set(3, 2, 4)
	x0 := []float64{1, -1, 2, -2}
	x, err := Dgbsv(b, b.MulVec(x0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range x0 {
		if math.Abs(x[i]-x0[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, x0)
		}
	}
}

func TestDgbsvSingular(t *testing.T) {
	b, err := mat.NewBanded(3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Column 1 entirely zero.
	b.Set(0, 0, 1)
	b.Set(2, 2, 1)
	if _, err := Dgbsv(b, []float64{1, 1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v, want ErrSingular", err)
	}
	good, _ := mat.NewBandedDiagonallyDominant(4, 1, 1, 1)
	if _, err := Dgbsv(good, []float64{1}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestDgbsvQuick(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%30) + 5
		if n < 5 {
			n = -n + 6
		}
		kl := int(seed>>8) % 4
		if kl < 0 {
			kl = -kl
		}
		ku := int(seed>>16) % 4
		if ku < 0 {
			ku = -ku
		}
		if kl >= n {
			kl = n - 1
		}
		if ku >= n {
			ku = n - 1
		}
		band, err := mat.NewBandedDiagonallyDominant(n, kl, ku, seed)
		if err != nil {
			return false
		}
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = float64((i*13)%7) - 3
		}
		x, err := Dgbsv(band, band.MulVec(x0))
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-x0[i]) > 1e-8*(1+math.Abs(x0[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
