package scalapack

// Performance-accounting constants and closed forms for the ScaLAPACK
// Gaussian elimination, mirrored by the analytic engine.

const (
	// EffFlopsPerCore is the effective rate of one Xeon 8160 core inside
	// pdgetrf's blocked kernels. The trailing update is a local DGEMM with
	// strong reuse, so it runs above IMe's streaming rate, but pivoting,
	// swaps and panel work drag the average below DGEMM peak. Together
	// with ime.EffFlopsPerCore this sets the paper's ≈2× dense-deployment
	// duration ratio.
	EffFlopsPerCore = 8.5e9
	// DramBytesPerFlop is the DRAM traffic per flop: blocking keeps the
	// working set in cache, ≈0.12 B/flop ≈ 23 GB/s per loaded socket.
	DramBytesPerFlop = 0.12
	// CoreActivity scales dynamic core power; blocked kernels stall less
	// on memory and retire from cache, drawing slightly under-nominal
	// switching power in our calibration (IMe is the above-nominal one).
	CoreActivity = 0.97
)

// TotalFlops is the arithmetic complexity of LU with partial pivoting,
// 2/3·n³ + O(n²) (§2: "the most efficient algorithm for solving systems
// of linear equations"), plus the 2n² triangular solves.
func TotalFlops(n int) float64 {
	nf := float64(n)
	return 2.0/3.0*nf*nf*nf + 2*nf*nf
}
