package scalapack

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/mpi"
)

// Factorization is a completed distributed LU factorisation P·A = L·U held
// block-cyclically across a communicator. It can solve any number of
// right-hand sides without refactorising (the pdgetrf/pdgetrs split of
// ScaLAPACK's driver).
type Factorization struct {
	st *pdState
}

// Pdgetrf factorises A (square, identical on every rank) in place over
// communicator c with partial pivoting. Every rank calls collectively; the
// returned Factorization is rank-local state sharing the collective
// protocol with its siblings.
func Pdgetrf(p *mpi.Proc, c *mpi.Comm, a *mat.Dense, opts ParallelOptions) (*Factorization, error) {
	if a == nil || a.Rows() != a.Cols() {
		return nil, fmt.Errorf("scalapack: pdgetrf needs a square matrix")
	}
	me, err := c.Rank(p)
	if err != nil {
		return nil, err
	}
	grid, err := NewGrid(c.Size())
	if err != nil {
		return nil, err
	}
	n := a.Rows()
	nb := opts.BlockSize
	if nb <= 0 {
		nb = DefaultBlockSize
	}
	if nb > n {
		nb = n
	}
	if grid.Pr > (n+nb-1)/nb || grid.Pc > (n+nb-1)/nb {
		return nil, fmt.Errorf("scalapack: grid %d×%d too large for %d blocks of %d",
			grid.Pr, grid.Pc, (n+nb-1)/nb, nb)
	}
	if opts.ChargeCosts {
		p.SetActivity(CoreActivity)
		defer p.SetActivity(1)
	}
	st, err := newPdState(p, c, a, nil, grid, me, nb)
	if err != nil {
		return nil, err
	}
	st.charge = opts.ChargeCosts
	for k0 := 0; k0 < n; k0 += nb {
		if err := st.panelStep(k0); err != nil {
			return nil, fmt.Errorf("scalapack: panel at %d: %w", k0, err)
		}
	}
	return &Factorization{st: st}, nil
}

// N returns the order of the factorised matrix.
func (f *Factorization) N() int { return f.st.n }

// Pivots returns the recorded row interchanges in elimination order.
func (f *Factorization) Pivots() [][2]int {
	out := make([][2]int, len(f.st.pivots))
	copy(out, f.st.pivots)
	return out
}

// Solve computes x with A·x = b using the stored factors (pdgetrs):
// pivot replay, distributed blocked forward substitution with the
// unit-lower factor, then the shared back substitution. Every rank of the
// factorisation's communicator calls collectively with the same b.
func (f *Factorization) Solve(p *mpi.Proc, b []float64) ([]float64, error) {
	st := f.st
	if len(b) != st.n {
		return nil, fmt.Errorf("scalapack: rhs length %d, want %d", len(b), st.n)
	}
	if st.charge {
		p.SetActivity(CoreActivity)
		defer p.SetActivity(1)
	}
	// Local copy of b for my process row, then pivot replay in
	// elimination order (P·b).
	local := make([]float64, len(st.myRows))
	for li, gi := range st.myRows {
		local[li] = b[gi]
	}
	saved := st.b
	savedCarry := st.carryB
	st.b, st.carryB = local, true
	defer func() { st.b, st.carryB = saved, savedCarry }()
	for _, pv := range st.pivots {
		if pv[0] == pv[1] {
			continue
		}
		if err := st.swapB(pv[0], pv[1]); err != nil {
			return nil, err
		}
	}
	y, err := st.forwardSubstitute()
	if err != nil {
		return nil, err
	}
	return st.backSubstitute(func(g, _ int) float64 { return y[g] })
}

// forwardSubstitute solves L·y = P·b block row by block row from the top
// (unit-diagonal L below the diagonal of the factored matrix),
// broadcasting each solved segment to the whole grid.
func (st *pdState) forwardSubstitute() ([]float64, error) {
	n, nb := st.n, st.nb
	y := make([]float64, n)
	nBlocks := (n + nb - 1) / nb
	for bi := 0; bi < nBlocks; bi++ {
		r0 := bi * nb
		r1 := r0 + nb
		if r1 > n {
			r1 = n
		}
		kw := r1 - r0
		prI := bi % st.grid.Pr
		pcI := bi % st.grid.Pc
		solver := st.grid.Rank(prI, pcI)

		if st.pr == prI {
			// Partial sums over my leading columns (strictly below-diagonal
			// L entries live where global col < global row).
			s := make([]float64, kw)
			for t := 0; t < kw; t++ {
				li, _ := st.localRow(r0 + t)
				row := st.a.Row(li)
				for lj, gj := range st.myCols {
					if gj < r0 {
						s[t] += row[lj] * y[gj]
					}
				}
			}
			st.chargeFlops(float64(2 * kw * len(st.myCols)))
			total, err := st.p.AllreduceSum(st.rowComm, s)
			if err != nil {
				return nil, err
			}
			if st.pc == pcI {
				seg := make([]float64, kw+1) // status + solution
				for t := 0; t < kw; t++ {
					li, _ := st.localRow(r0 + t)
					row := st.a.Row(li)
					v := st.b[li] - total[t]
					for u := 0; u < t; u++ {
						lu, ok := st.localCol(r0 + u)
						if !ok {
							return nil, fmt.Errorf("scalapack: L diagonal col %d not local", r0+u)
						}
						v -= row[lu] * seg[u+1]
					}
					seg[t+1] = v // unit diagonal
				}
				st.chargeFlops(float64(kw * kw))
				got, err := st.p.Bcast(st.c, solver, seg)
				if err != nil {
					return nil, err
				}
				copy(y[r0:r1], got[1:])
				continue
			}
		}
		got, err := st.p.Bcast(st.c, solver, nil)
		if err != nil {
			return nil, err
		}
		if len(got) != kw+1 {
			return nil, fmt.Errorf("scalapack: forward payload %d, want %d", len(got), kw+1)
		}
		copy(y[r0:r1], got[1:])
	}
	return y, nil
}
