package scalapack

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func diagMatrix(vals ...float64) *mat.Dense {
	n := len(vals)
	m := mat.New(n, n)
	for i, v := range vals {
		m.Set(i, i, v)
	}
	return m
}

func TestPowerIterationDiagonal(t *testing.T) {
	a := diagMatrix(1, -2, 7, 3)
	r, err := PowerIteration(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-7) > 1e-8 {
		t.Fatalf("dominant eigenvalue = %g, want 7", r.Value)
	}
	// The eigenvector concentrates on coordinate 2.
	if math.Abs(math.Abs(r.Vector[2])-1) > 1e-6 {
		t.Fatalf("eigenvector = %v", r.Vector)
	}
	if r.Residual > 1e-8 {
		t.Fatalf("residual %g", r.Residual)
	}
}

func TestPowerIterationSymmetric(t *testing.T) {
	// A = [[2 1][1 2]]: eigenvalues 3 and 1, dominant vector (1,1)/√2.
	a, _ := mat.NewFromData(2, 2, []float64{2, 1, 1, 2})
	r, err := PowerIteration(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-3) > 1e-8 {
		t.Fatalf("eigenvalue = %g, want 3", r.Value)
	}
	if math.Abs(math.Abs(r.Vector[0])-math.Sqrt(0.5)) > 1e-6 {
		t.Fatalf("eigenvector = %v", r.Vector)
	}
}

func TestInverseIterationNearShift(t *testing.T) {
	a := diagMatrix(1, 4, 10)
	for _, tc := range []struct{ shift, want float64 }{
		{0.5, 1}, {3.7, 4}, {9, 10},
	} {
		r, err := InverseIteration(a, tc.shift, 0, 0)
		if err != nil {
			t.Fatalf("shift %g: %v", tc.shift, err)
		}
		if math.Abs(r.Value-tc.want) > 1e-8 {
			t.Fatalf("shift %g: eigenvalue %g, want %g", tc.shift, r.Value, tc.want)
		}
	}
}

func TestInverseIterationSPD(t *testing.T) {
	// The SPD generator's smallest eigenvalue is ≥ n by construction
	// (MᵀM + n·I); inverse iteration near 0 finds it, and the pair must
	// satisfy the eigen equation.
	a := mat.NewSPD(8, 3)
	r, err := InverseIteration(a, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value < 8 {
		t.Fatalf("smallest SPD eigenvalue %g below the n·I floor", r.Value)
	}
	if r.Residual > 1e-7*(1+r.Value) {
		t.Fatalf("residual %g", r.Residual)
	}
	// Consistency: the dominant eigenvalue bounds it from above.
	dom, err := PowerIteration(a, 5000, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if dom.Value < r.Value {
		t.Fatalf("dominant %g below smallest %g", dom.Value, r.Value)
	}
}

func TestEigenValidation(t *testing.T) {
	if _, err := PowerIteration(mat.New(2, 3), 0, 0); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := InverseIteration(mat.New(0, 0), 0, 0, 0); err == nil {
		t.Error("empty matrix accepted")
	}
	// Shifting exactly onto an eigenvalue makes the factorisation singular.
	a := diagMatrix(2, 5)
	if _, err := InverseIteration(a, 2, 0, 0); err == nil {
		t.Error("singular shift accepted")
	}
	// Rotation matrix: complex eigenvalues, power iteration must fail
	// rather than claim convergence.
	rot, _ := mat.NewFromData(2, 2, []float64{0, -1, 1, 0})
	if _, err := PowerIteration(rot, 50, 1e-12); err == nil {
		t.Error("complex spectrum accepted")
	}
}
