package scalapack

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Dgbsv solves the banded system A·x = b by band LU with partial pivoting
// (LAPACK's DGBSV) — the banded capability §2.2 lists alongside dense
// systems. Row interchanges widen the upper band by up to kl fill
// diagonals, so the working storage holds kl+ku+1+kl bands; the
// factorisation touches O(n·kl·(kl+ku)) entries instead of O(n³).
func Dgbsv(a *mat.Banded, b []float64) ([]float64, error) {
	n := a.N()
	if len(b) != n {
		return nil, fmt.Errorf("scalapack: dgbsv rhs length %d, want %d", len(b), n)
	}
	kl, ku := a.KL(), a.KU()
	// Working band width: kl below, ku+kl above (pivot fill).
	kuw := ku + kl
	width := kl + kuw + 1
	// work[i][j-i+kl] for j ∈ [i−kl, i+kuw].
	work := make([]float64, n*width)
	at := func(i, j int) float64 { return work[i*width+(j-i+kl)] }
	set := func(i, j int, v float64) { work[i*width+(j-i+kl)] = v }
	for i := 0; i < n; i++ {
		lo, hi := i-kl, i+ku
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		for j := lo; j <= hi; j++ {
			set(i, j, a.At(i, j))
		}
	}
	x := mat.VecClone(b)

	for k := 0; k < n; k++ {
		// Pivot search within the column's band reach (rows k..k+kl).
		last := k + kl
		if last >= n {
			last = n - 1
		}
		p, pv := k, math.Abs(at(k, k))
		for i := k + 1; i <= last; i++ {
			if v := math.Abs(at(i, k)); v > pv {
				p, pv = i, v
			}
		}
		if pv == 0 {
			return nil, fmt.Errorf("%w: band pivot column %d", ErrSingular, k)
		}
		if p != k {
			// Swap rows k and p over their shared in-band column range.
			hi := p + kuw
			if hi >= n {
				hi = n - 1
			}
			for j := k; j <= hi; j++ {
				// Row k's working band reaches k+kuw ≥ p+kuw ≥ j? Row k
				// reaches k+kuw; with p ≤ k+kl, p+kuw ≤ k+kl+kuw; entries
				// beyond k+kuw on row k are structurally zero fill slots —
				// guard both sides.
				vk, vp := 0.0, 0.0
				if j <= k+kuw {
					vk = at(k, j)
				}
				if j <= p+kuw && j >= p-kl {
					vp = at(p, j)
				}
				if j <= k+kuw {
					set(k, j, vp)
				}
				if j <= p+kuw && j >= p-kl {
					set(p, j, vk)
				}
			}
			x[k], x[p] = x[p], x[k]
		}
		piv := at(k, k)
		hiCol := k + kuw
		if hiCol >= n {
			hiCol = n - 1
		}
		for i := k + 1; i <= last; i++ {
			l := at(i, k) / piv
			if l == 0 {
				continue
			}
			set(i, k, 0)
			for j := k + 1; j <= hiCol && j <= i+kuw; j++ {
				set(i, j, at(i, j)-l*at(k, j))
			}
			x[i] -= l * x[k]
		}
	}
	// Back substitution over the widened band.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		hi := i + kuw
		if hi >= n {
			hi = n - 1
		}
		for j := i + 1; j <= hi; j++ {
			s -= at(i, j) * x[j]
		}
		d := at(i, i)
		if d == 0 {
			return nil, fmt.Errorf("%w: zero band U diagonal %d", ErrSingular, i)
		}
		x[i] = s / d
	}
	return x, nil
}
