package scalapack

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// LU is a stepwise sequential LU factorisation with partial pivoting —
// the column-at-a-time view of Dgetrf, exposed so instrumentation (power
// tracing, progress reporting) can interleave with the elimination the
// way ime.Table does for the Inhibition Method.
type LU struct {
	a    *mat.Dense
	ipiv []int
	k    int
}

// NewLU starts a factorisation of a copy of a.
func NewLU(a *mat.Dense) (*LU, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("scalapack: stepped LU needs a square matrix, got %d×%d", n, a.Cols())
	}
	return &LU{a: a.Clone(), ipiv: make([]int, n)}, nil
}

// N returns the order.
func (lu *LU) N() int { return lu.a.Rows() }

// Remaining returns how many elimination columns are left.
func (lu *LU) Remaining() int { return lu.a.Rows() - lu.k }

// StepFlops returns the arithmetic cost of the next Step — what a power
// tracer charges before calling it.
func (lu *LU) StepFlops() float64 {
	r := float64(lu.a.Rows() - lu.k - 1)
	if r < 0 {
		return 0
	}
	return 2*r*r + 2*r
}

// Step eliminates one column.
func (lu *LU) Step() error {
	n := lu.a.Rows()
	if lu.k >= n {
		return errors.New("scalapack: factorisation already complete")
	}
	k := lu.k
	p, pv := k, math.Abs(lu.a.At(k, k))
	for i := k + 1; i < n; i++ {
		if v := math.Abs(lu.a.At(i, k)); v > pv {
			p, pv = i, v
		}
	}
	if pv == 0 {
		return fmt.Errorf("%w: pivot column %d", ErrSingular, k)
	}
	lu.ipiv[k] = p
	lu.a.SwapRows(k, p)
	akk := lu.a.At(k, k)
	rowK := lu.a.Row(k)
	for i := k + 1; i < n; i++ {
		row := lu.a.Row(i)
		l := row[k] / akk
		row[k] = l
		if l != 0 {
			for j := k + 1; j < n; j++ {
				row[j] -= l * rowK[j]
			}
		}
	}
	lu.k++
	return nil
}

// Factors returns the packed LU matrix and pivots after completion.
func (lu *LU) Factors() (*mat.Dense, []int, error) {
	if lu.k != lu.a.Rows() {
		return nil, nil, fmt.Errorf("scalapack: %d columns remain", lu.Remaining())
	}
	return lu.a, lu.ipiv, nil
}

// Solve finishes any remaining steps and solves A·x = b.
func (lu *LU) Solve(b []float64) ([]float64, error) {
	for lu.Remaining() > 0 {
		if err := lu.Step(); err != nil {
			return nil, err
		}
	}
	packed, ipiv, err := lu.Factors()
	if err != nil {
		return nil, err
	}
	return Dgetrs(packed, ipiv, b)
}
