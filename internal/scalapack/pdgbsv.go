package scalapack

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/mpi"
)

// Pdgbsv solves a diagonally dominant banded system A·x = b in parallel
// over ScaLAPACK's "block data distribution for banded matrices" (§2.2),
// using the truncated-SPIKE scheme:
//
//  1. each rank owns a contiguous block of rows and factorises its local
//     band without pivoting (safe: diagonal dominance is inherited by the
//     diagonal blocks);
//  2. it solves for the local right-hand side and for the coupling "spike"
//     columns that reach into the neighbouring blocks;
//  3. the spike tips form a small reduced system in the blocks' top/bottom
//     unknowns, gathered at the root, solved densely and broadcast;
//  4. each rank recovers its interior unknowns locally.
//
// Every rank passes the same matrix and right-hand side and calls
// collectively; all ranks return the full solution.
func Pdgbsv(p *mpi.Proc, c *mpi.Comm, a *mat.Banded, b []float64) ([]float64, error) {
	n := a.N()
	if len(b) != n {
		return nil, fmt.Errorf("scalapack: pdgbsv rhs length %d, want %d", len(b), n)
	}
	me, err := c.Rank(p)
	if err != nil {
		return nil, err
	}
	ranks := c.Size()
	kl, ku := a.KL(), a.KU()
	minBlock := kl + ku + 1
	if n/ranks < minBlock {
		return nil, fmt.Errorf("scalapack: pdgbsv needs blocks of at least %d rows, %d ranks give %d",
			minBlock, ranks, n/ranks)
	}
	lo, hi := blockRange(n, ranks, me)
	m := hi - lo

	// Local band factorisation (no pivoting: diagonally dominant).
	f, err := factorBandNoPivot(a, lo, hi)
	if err != nil {
		return nil, err
	}

	// Local solves: right-hand side and the spike columns.
	g := f.solve(sliceRange(b, lo, hi))
	// W spans the kl columns coupling to the previous block, V the ku
	// columns coupling to the next.
	w := make([][]float64, 0, kl)
	if me > 0 {
		for t := 0; t < kl; t++ {
			col := make([]float64, m)
			// Coupling column: global column lo−kl+t feeds rows lo..lo+kl−1.
			gcol := lo - kl + t
			for i := lo; i < lo+kl && i < hi; i++ {
				if gcol >= i-kl && gcol >= 0 {
					col[i-lo] = a.At(i, gcol)
				}
			}
			w = append(w, f.solve(col))
		}
	}
	v := make([][]float64, 0, ku)
	if me < ranks-1 {
		for t := 0; t < ku; t++ {
			col := make([]float64, m)
			gcol := hi + t
			for i := hi - ku; i < hi; i++ {
				if i >= lo && gcol <= i+ku && gcol < n {
					col[i-lo] = a.At(i, gcol)
				}
			}
			v = append(v, f.solve(col))
		}
	}

	// Gather the spike tips and g tips at the root. The tips that matter
	// are the rows other blocks couple to: the TOP ku rows (consumed by
	// the previous block's V spike) and the BOTTOM kl rows (consumed by
	// the next block's W spike). Each tip row carries [g | W(kl) | V(ku)].
	tipRows := func(idx int) []float64 {
		row := make([]float64, 0, 1+kl+ku)
		row = append(row, g[idx])
		for t := 0; t < kl; t++ {
			if me > 0 {
				row = append(row, w[t][idx])
			} else {
				row = append(row, 0)
			}
		}
		for t := 0; t < ku; t++ {
			if me < ranks-1 {
				row = append(row, v[t][idx])
			} else {
				row = append(row, 0)
			}
		}
		return row
	}
	payload := make([]float64, 0, (kl+ku)*(1+kl+ku))
	for i := 0; i < ku; i++ {
		payload = append(payload, tipRows(i)...)
	}
	for i := m - kl; i < m; i++ {
		payload = append(payload, tipRows(i)...)
	}
	parts, err := p.Gather(c, 0, payload)
	if err != nil {
		return nil, err
	}

	// Root: assemble and solve the reduced system in the tip unknowns
	// z = [top_0 (ku) | bot_0 (kl) | top_1 | bot_1 | …].
	var tips []float64
	if me == 0 {
		tips, err = solveReduced(parts, ranks, kl, ku)
		if err != nil {
			return nil, err
		}
	}
	tips, err = p.Bcast(c, 0, tips)
	if err != nil {
		return nil, err
	}
	per := kl + ku

	// Local recovery: x_j = g − W·bot_{j−1} − V·top_{j+1}.
	x := make([]float64, n)
	local := mat.VecClone(g)
	if me > 0 {
		for t := 0; t < kl; t++ {
			coupling := tips[(me-1)*per+ku+t]
			mat.Axpy(-coupling, w[t], local)
		}
	}
	if me < ranks-1 {
		for t := 0; t < ku; t++ {
			coupling := tips[(me+1)*per+t]
			mat.Axpy(-coupling, v[t], local)
		}
	}
	copy(x[lo:hi], local)

	// Share the pieces so every rank returns the full vector.
	all, err := p.Allgather(c, paddedBlock(x[lo:hi], n, ranks))
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, n)
	for r := 0; r < ranks; r++ {
		rlo, rhi := blockRange(n, ranks, r)
		out = append(out, all[r][:rhi-rlo]...)
	}
	return out, nil
}

// blockRange mirrors ime.BlockRange for contiguous row blocks.
func blockRange(n, ranks, r int) (int, int) {
	base := n / ranks
	rem := n % ranks
	if r < rem {
		lo := r * (base + 1)
		return lo, lo + base + 1
	}
	lo := rem*(base+1) + (r-rem)*base
	return lo, lo + base
}

// paddedBlock pads a block to the maximum block size so Allgather sees
// uniform lengths.
func paddedBlock(x []float64, n, ranks int) []float64 {
	max := n/ranks + 1
	out := make([]float64, max)
	copy(out, x)
	return out
}

func sliceRange(b []float64, lo, hi int) []float64 {
	out := make([]float64, hi-lo)
	copy(out, b[lo:hi])
	return out
}

// solveReduced assembles the tip system at the root and solves it densely.
// parts[r] holds, for block r, ku top rows then kl bottom rows, each row
// being [g, W(kl), V(ku)]; the unknown layout is z = [top_r (ku),
// bot_r (kl)] per block. Each tip equation reads
// z + W·bot_{r−1} + V·top_{r+1} = g.
func solveReduced(parts [][]float64, ranks, kl, ku int) ([]float64, error) {
	per := kl + ku
	nRed := ranks * per
	red := mat.New(nRed, nRed)
	rhs := make([]float64, nRed)
	rowLen := 1 + kl + ku
	for r := 0; r < ranks; r++ {
		part := parts[r]
		if len(part) != per*rowLen {
			return nil, fmt.Errorf("scalapack: reduced payload of rank %d has %d entries, want %d",
				r, len(part), per*rowLen)
		}
		for i := 0; i < per; i++ {
			row := part[i*rowLen : (i+1)*rowLen]
			gi := r*per + i
			red.Set(gi, gi, 1)
			rhs[gi] = row[0]
			// W couples to the previous block's bottom-kl unknowns …
			if r > 0 {
				for t := 0; t < kl; t++ {
					col := (r-1)*per + ku + t
					red.Set(gi, col, red.At(gi, col)+row[1+t])
				}
			}
			// … V to the next block's top-ku unknowns.
			if r < ranks-1 {
				for t := 0; t < ku; t++ {
					col := (r+1)*per + t
					red.Set(gi, col, red.At(gi, col)+row[1+kl+t])
				}
			}
		}
	}
	return Dgesv(&mat.System{A: red, B: rhs})
}

// bandFactor is an in-place band LU without pivoting over a row range of a
// global banded matrix.
type bandFactor struct {
	m, kl, ku int
	width     int
	data      []float64 // row-major working band
	mult      []float64 // multipliers, row-major m×kl (l for rows below)
}

func factorBandNoPivot(a *mat.Banded, lo, hi int) (*bandFactor, error) {
	kl, ku := a.KL(), a.KU()
	m := hi - lo
	f := &bandFactor{m: m, kl: kl, ku: ku, width: kl + ku + 1}
	f.data = make([]float64, m*f.width)
	f.mult = make([]float64, m*kl)
	at := func(i, j int) float64 { return f.data[i*f.width+(j-i+kl)] }
	set := func(i, j int, v float64) { f.data[i*f.width+(j-i+kl)] = v }
	for i := 0; i < m; i++ {
		glo, ghi := lo+i-kl, lo+i+ku
		for gj := glo; gj <= ghi; gj++ {
			if gj < lo || gj >= hi {
				continue
			}
			set(i, gj-lo, a.At(lo+i, gj))
		}
	}
	for k := 0; k < m; k++ {
		piv := at(k, k)
		if math.Abs(piv) < 1e-300 {
			return nil, fmt.Errorf("%w: local band pivot %d", ErrSingular, k)
		}
		last := k + kl
		if last >= m {
			last = m - 1
		}
		hiCol := k + ku
		if hiCol >= m {
			hiCol = m - 1
		}
		for i := k + 1; i <= last; i++ {
			l := at(i, k) / piv
			f.mult[i*f.kl+(i-k-1)] = l
			set(i, k, 0)
			if l == 0 {
				continue
			}
			for j := k + 1; j <= hiCol && j <= i+ku; j++ {
				set(i, j, at(i, j)-l*at(k, j))
			}
		}
	}
	return f, nil
}

// solve runs forward elimination with the stored multipliers and back
// substitution; rhs is copied.
func (f *bandFactor) solve(rhs []float64) []float64 {
	x := mat.VecClone(rhs)
	at := func(i, j int) float64 { return f.data[i*f.width+(j-i+f.kl)] }
	for k := 0; k < f.m; k++ {
		last := k + f.kl
		if last >= f.m {
			last = f.m - 1
		}
		for i := k + 1; i <= last; i++ {
			x[i] -= f.mult[i*f.kl+(i-k-1)] * x[k]
		}
	}
	for i := f.m - 1; i >= 0; i-- {
		s := x[i]
		hi := i + f.ku
		if hi >= f.m {
			hi = f.m - 1
		}
		for j := i + 1; j <= hi; j++ {
			s -= at(i, j) * x[j]
		}
		x[i] = s / at(i, i)
	}
	return x
}
