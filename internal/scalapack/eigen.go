package scalapack

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Eigenvalue support (§2.2 lists "eigenvalue problems" among the library's
// capabilities): dominant eigenpairs by power iteration and eigenvalues
// near a shift by inverse iteration, the latter reusing the LU machinery
// (factor once, iterate with Dgetrs).

// EigenResult is one converged eigenpair.
type EigenResult struct {
	Value      float64
	Vector     []float64
	Iterations int
	// Residual is ‖A·v − λ·v‖₂ at convergence.
	Residual float64
}

const defaultEigTol = 1e-10

// PowerIteration approximates the dominant eigenpair of a. It fails when
// the iteration does not converge within maxIter (e.g. complex or tied
// dominant eigenvalues).
func PowerIteration(a *mat.Dense, maxIter int, tol float64) (*EigenResult, error) {
	n := a.Rows()
	if a.Cols() != n || n == 0 {
		return nil, fmt.Errorf("scalapack: power iteration needs a non-empty square matrix")
	}
	if tol <= 0 {
		tol = defaultEigTol
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	v := make([]float64, n)
	for i := range v {
		// Deterministic non-degenerate start.
		v[i] = 1 + float64(i%7)/10
	}
	normalize(v)
	var lambda float64
	for it := 1; it <= maxIter; it++ {
		w := a.MulVec(v)
		lambda = mat.Dot(v, w)
		nw := mat.TwoNorm(w)
		if nw == 0 {
			return nil, fmt.Errorf("scalapack: power iteration hit the null space")
		}
		mat.Scale(1/nw, w)
		// Convergence: residual of the Rayleigh pair.
		res := eigResidual(a, w, lambda)
		if res < tol*(1+math.Abs(lambda)) {
			return &EigenResult{Value: lambda, Vector: w, Iterations: it, Residual: res}, nil
		}
		v = w
	}
	return nil, fmt.Errorf("scalapack: power iteration did not converge in %d iterations", maxIter)
}

// InverseIteration approximates the eigenpair closest to shift by factoring
// (A − shift·I) once and iterating solves.
func InverseIteration(a *mat.Dense, shift float64, maxIter int, tol float64) (*EigenResult, error) {
	n := a.Rows()
	if a.Cols() != n || n == 0 {
		return nil, fmt.Errorf("scalapack: inverse iteration needs a non-empty square matrix")
	}
	if tol <= 0 {
		tol = defaultEigTol
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	shifted := a.Clone()
	for i := 0; i < n; i++ {
		shifted.Set(i, i, shifted.At(i, i)-shift)
	}
	lu := shifted.Clone()
	ipiv, err := Dgetrf(lu)
	if err != nil {
		return nil, fmt.Errorf("scalapack: shift %g is (numerically) an eigenvalue: %w", shift, err)
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 + float64(i%5)/10
	}
	normalize(v)
	for it := 1; it <= maxIter; it++ {
		w, err := Dgetrs(lu, ipiv, v)
		if err != nil {
			return nil, err
		}
		nw := mat.TwoNorm(w)
		if nw == 0 {
			return nil, fmt.Errorf("scalapack: inverse iteration collapsed")
		}
		mat.Scale(1/nw, w)
		lambda := mat.Dot(w, a.MulVec(w))
		res := eigResidual(a, w, lambda)
		if res < tol*(1+math.Abs(lambda)) {
			return &EigenResult{Value: lambda, Vector: w, Iterations: it, Residual: res}, nil
		}
		v = w
	}
	return nil, fmt.Errorf("scalapack: inverse iteration did not converge in %d iterations", maxIter)
}

func normalize(v []float64) {
	if n := mat.TwoNorm(v); n > 0 {
		mat.Scale(1/n, v)
	}
}

func eigResidual(a *mat.Dense, v []float64, lambda float64) float64 {
	av := a.MulVec(v)
	r := make([]float64, len(v))
	for i := range r {
		r[i] = av[i] - lambda*v[i]
	}
	return mat.TwoNorm(r)
}
