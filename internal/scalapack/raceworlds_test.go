package scalapack

import (
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/mpi"
)

// TestConcurrentWorldsPdgetrf factorises and solves in several worlds at
// once. The blocked trailing-update GEMM fans out on the process-wide
// worker pool and the transport buffers cycle through the shared mpi pool,
// so under -race this pins both against cross-world interference.
func TestConcurrentWorldsPdgetrf(t *testing.T) {
	const worlds = 4
	var wg sync.WaitGroup
	errs := make([]error, worlds)
	for wi := 0; wi < worlds; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			sys := mat.NewRandomSystem(40, int64(200+wi))
			w, err := mpi.NewWorld(4, mpi.Options{})
			if err != nil {
				errs[wi] = err
				return
			}
			errs[wi] = w.Run(func(p *mpi.Proc) error {
				f, err := Pdgetrf(p, p.World(), sys.A.Clone(), ParallelOptions{BlockSize: 8})
				if err != nil {
					return err
				}
				x, err := f.Solve(p, sys.B)
				if err != nil {
					return err
				}
				if rr := mat.RelativeResidual(sys.A, x, sys.B); rr > 1e-12 {
					return &residualError{rr}
				}
				return nil
			})
		}(wi)
	}
	wg.Wait()
	for wi, err := range errs {
		if err != nil {
			t.Fatalf("world %d: %v", wi, err)
		}
	}
}

type residualError struct{ rr float64 }

func (e *residualError) Error() string {
	return "relative residual too large"
}
