package scalapack

import (
	"testing"
	"testing/quick"
)

func TestNewGridShapes(t *testing.T) {
	cases := []struct{ p, pr, pc int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {12, 3, 4},
		{144, 12, 12}, {576, 24, 24}, {1296, 36, 36},
	}
	for _, c := range cases {
		g, err := NewGrid(c.p)
		if err != nil {
			t.Fatal(err)
		}
		if g.Pr != c.pr || g.Pc != c.pc {
			t.Errorf("NewGrid(%d) = %d×%d, want %d×%d", c.p, g.Pr, g.Pc, c.pr, c.pc)
		}
	}
	if _, err := NewGrid(0); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestGridCoordsRoundTrip(t *testing.T) {
	g, _ := NewGrid(12)
	for r := 0; r < 12; r++ {
		pr, pc, err := g.Coords(r)
		if err != nil {
			t.Fatal(err)
		}
		if g.Rank(pr, pc) != r {
			t.Fatalf("coords round trip broke at %d", r)
		}
	}
	if _, _, err := g.Coords(12); err == nil {
		t.Error("out-of-grid rank accepted")
	}
}

// TestNumrocPartition: the per-process counts must sum to n and agree with
// the owner map.
func TestNumrocPartition(t *testing.T) {
	f := func(nRaw uint16, nbRaw, npRaw uint8) bool {
		n := int(nRaw)%500 + 1
		nb := int(nbRaw)%16 + 1
		np := int(npRaw)%8 + 1
		counts := make([]int, np)
		for g := 0; g < n; g++ {
			owner, local := OwnerAndLocal(g, nb, np)
			if owner < 0 || owner >= np {
				return false
			}
			if GlobalIndex(local, nb, owner, np) != g {
				return false
			}
			counts[owner]++
		}
		total := 0
		for p := 0; p < np; p++ {
			if counts[p] != Numroc(n, nb, p, np) {
				return false
			}
			total += counts[p]
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNumrocEdgeCases(t *testing.T) {
	if Numroc(0, 4, 0, 2) != 0 {
		t.Error("empty dimension")
	}
	if Numroc(10, 4, 5, 2) != 0 {
		t.Error("invalid process index should own nothing")
	}
	// n=10, nb=4, np=2: blocks [0-3][4-7][8-9] → p0: 4+2=6, p1: 4.
	if Numroc(10, 4, 0, 2) != 6 || Numroc(10, 4, 1, 2) != 4 {
		t.Errorf("Numroc(10,4,·,2) = %d,%d want 6,4", Numroc(10, 4, 0, 2), Numroc(10, 4, 1, 2))
	}
}
