package scalapack

import (
	"math"
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/mpi"
)

func runPdgbsv(t *testing.T, band *mat.Banded, b []float64, ranks int) []float64 {
	t.Helper()
	w, err := mpi.NewWorld(ranks, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var x []float64
	err = w.Run(func(p *mpi.Proc) error {
		sol, err := Pdgbsv(p, p.World(), band, b)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			mu.Lock()
			x = sol
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestPdgbsvMatchesSequential(t *testing.T) {
	for _, tc := range []struct{ n, kl, ku, ranks int }{
		{40, 1, 1, 1},
		{40, 1, 1, 4},
		{60, 2, 3, 4},
		{61, 3, 2, 5}, // uneven blocks, kl > ku
		{80, 4, 4, 6},
		{50, 0, 2, 3}, // upper triangular band
		{50, 2, 0, 3}, // lower triangular band
	} {
		band, err := mat.NewBandedDiagonallyDominant(tc.n, tc.kl, tc.ku, int64(tc.n+tc.ranks))
		if err != nil {
			t.Fatal(err)
		}
		rhs := make([]float64, tc.n)
		for i := range rhs {
			rhs[i] = float64((i*7)%11) - 5
		}
		want, err := Dgbsv(band, rhs)
		if err != nil {
			t.Fatal(err)
		}
		got := runPdgbsv(t, band, rhs, tc.ranks)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("%+v: x[%d] = %g, sequential %g", tc, i, got[i], want[i])
			}
		}
		if rr := mat.RelativeResidual(band.Dense(), got, rhs); rr > 1e-11 {
			t.Fatalf("%+v: residual %g", tc, rr)
		}
	}
}

func TestPdgbsvAllRanksGetSolution(t *testing.T) {
	band, err := mat.NewBandedDiagonallyDominant(48, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rhs := band.MulVec(make([]float64, 48))
	for i := range rhs {
		rhs[i] = 1
	}
	w, err := mpi.NewWorld(4, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sols := make([][]float64, 4)
	err = w.Run(func(p *mpi.Proc) error {
		x, err := Pdgbsv(p, p.World(), band, rhs)
		if err != nil {
			return err
		}
		sols[p.Rank()] = x
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		for i := range sols[0] {
			if sols[r][i] != sols[0][i] {
				t.Fatalf("rank %d differs at %d", r, i)
			}
		}
	}
}

func TestPdgbsvValidation(t *testing.T) {
	band, err := mat.NewBandedDiagonallyDominant(12, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(4, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) error {
		// Blocks of 3 rows < kl+ku+1 = 5: must be rejected.
		if _, err := Pdgbsv(p, p.World(), band, make([]float64, 12)); err == nil {
			return errString("undersized blocks accepted")
		}
		if _, err := Pdgbsv(p, p.World(), band, make([]float64, 3)); err == nil {
			return errString("short rhs accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPdgbsvLargeTridiagonal(t *testing.T) {
	// A 2000-unknown tridiagonal Poisson-style system over 8 ranks.
	n := 2000
	band, err := mat.NewBanded(n, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		band.Set(i, i, 2.5)
		if i > 0 {
			band.Set(i, i-1, -1)
		}
		if i < n-1 {
			band.Set(i, i+1, -1)
		}
	}
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = math.Sin(float64(i) / 50)
	}
	got := runPdgbsv(t, band, band.MulVec(x0), 8)
	for i := range x0 {
		if math.Abs(got[i]-x0[i]) > 1e-9 {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], x0[i])
		}
	}
}
