package scalapack

import (
	"math"
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/rapl"
)

func runPdgesv(t *testing.T, sys *mat.System, ranks int, opts ParallelOptions) ([]float64, *mpi.World) {
	t.Helper()
	w, err := mpi.NewWorld(ranks, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var x0 []float64
	err = w.Run(func(p *mpi.Proc) error {
		x, err := Pdgesv(p, p.World(), sys, opts)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			mu.Lock()
			x0 = x
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return x0, w
}

func TestPdgesvMatchesSequential(t *testing.T) {
	for _, tc := range []struct{ n, ranks, nb int }{
		{16, 1, 4},  // degenerate 1×1 grid
		{16, 2, 4},  // 1×2 grid
		{16, 4, 4},  // 2×2 grid
		{20, 4, 4},  // ragged final block
		{23, 4, 4},  // very ragged
		{24, 6, 4},  // 2×3 grid
		{30, 9, 5},  // 3×3 grid
		{32, 4, 16}, // exactly one block per grid dimension
		{16, 4, 8},  // two blocks per grid dimension
	} {
		sys := mat.NewRandomSystem(tc.n, int64(tc.n*7+tc.ranks))
		want, err := Dgesv(sys)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := runPdgesv(t, sys, tc.ranks, ParallelOptions{BlockSize: tc.nb})
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%+v: x[%d] = %g, sequential %g", tc, i, got[i], want[i])
			}
		}
		if rr := mat.RelativeResidual(sys.A, got, sys.B); rr > 1e-12 {
			t.Fatalf("%+v: residual %g", tc, rr)
		}
	}
}

func TestPdgesvAllRanksGetSolution(t *testing.T) {
	sys := mat.NewRandomSystem(18, 5)
	w, err := mpi.NewWorld(6, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sols := make([][]float64, 6)
	err = w.Run(func(p *mpi.Proc) error {
		x, err := Pdgesv(p, p.World(), sys, ParallelOptions{BlockSize: 4})
		if err != nil {
			return err
		}
		sols[p.Rank()] = x
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 6; r++ {
		for i := range sols[0] {
			if sols[r][i] != sols[0][i] {
				t.Fatalf("rank %d solution differs at %d", r, i)
			}
		}
	}
}

func TestPdgesvPivotingMatters(t *testing.T) {
	// A matrix that breaks unpivoted elimination: zero on the diagonal
	// until a swap happens. IMe would reject it; pdgesv must solve it.
	a, _ := mat.NewFromData(4, 4, []float64{
		0, 2, 0, 1,
		2, 0, 1, 0,
		0, 1, 0, 2,
		1, 0, 2, 0,
	})
	x0 := []float64{1, -2, 3, -4}
	sys := &mat.System{A: a, B: a.MulVec(x0)}
	got, _ := runPdgesv(t, sys, 4, ParallelOptions{BlockSize: 2})
	for i := range x0 {
		if math.Abs(got[i]-x0[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", got, x0)
		}
	}
}

func TestPdgesvSingularAbortsAllRanks(t *testing.T) {
	a, _ := mat.NewFromData(4, 4, []float64{
		1, 2, 1, 2,
		2, 4, 2, 4, // dependent row: singular
		1, 1, 1, 1,
		2, 1, 2, 1,
	})
	sys := &mat.System{A: a, B: []float64{1, 2, 3, 4}}
	w, err := mpi.NewWorld(4, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	errCount := 0
	err = w.Run(func(p *mpi.Proc) error {
		if _, err := Pdgesv(p, p.World(), sys, ParallelOptions{BlockSize: 2}); err != nil {
			mu.Lock()
			errCount++
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if errCount != 4 {
		t.Fatalf("%d ranks saw the singularity, want all 4 (no deadlock)", errCount)
	}
}

func TestPdgesvChargesEnergy(t *testing.T) {
	sys := mat.NewRandomSystem(32, 2)
	_, w := runPdgesv(t, sys, 4, ParallelOptions{BlockSize: 8, ChargeCosts: true})
	if w.MaxClock() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if w.Nodes()[0].ExactEnergy(rapl.PKG0) <= 0 {
		t.Fatal("no energy charged")
	}
}

func TestPdgesvGeneratesTraffic(t *testing.T) {
	sys := mat.NewRandomSystem(24, 8)
	_, w := runPdgesv(t, sys, 4, ParallelOptions{BlockSize: 4})
	msgs, vol := w.Traffic()
	if msgs == 0 || vol == 0 {
		t.Fatal("distributed solve exchanged no messages")
	}
}

func TestPdgesvRejectsOversizedGrid(t *testing.T) {
	sys := mat.NewRandomSystem(4, 1)
	w, err := mpi.NewWorld(9, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) error {
		if _, err := Pdgesv(p, p.World(), sys, ParallelOptions{BlockSize: 4}); err == nil {
			return errString("3×3 grid over 1 block accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

type errString string

func (e errString) Error() string { return string(e) }

func TestTotalFlopsLeadingTerm(t *testing.T) {
	n := 1000.0
	if r := TotalFlops(1000) / (2.0 / 3.0 * n * n * n); r < 1 || r > 1.01 {
		t.Fatalf("TotalFlops ratio to 2/3·n³ = %g", r)
	}
}
