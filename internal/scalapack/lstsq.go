package scalapack

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Least-squares support (§2.2 lists "least squares problems" among the
// library's capabilities): Householder QR factorisation and the DGELS-style
// driver minimising ‖A·x − b‖₂ for full-rank overdetermined systems.

// QR holds a Householder factorisation A = Q·R of an m×n matrix (m ≥ n):
// R in the upper triangle, the reflector vectors below the diagonal, and
// the scalar factors tau.
type QR struct {
	qr  *mat.Dense
	tau []float64
}

// Dgeqrf computes the Householder QR of a (m ≥ n), leaving a untouched.
func Dgeqrf(a *mat.Dense) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("scalapack: dgeqrf needs m ≥ n, got %d×%d", m, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("scalapack: dgeqrf on empty matrix")
	}
	qr := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Householder vector annihilating column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			v := qr.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, fmt.Errorf("%w: QR column %d is zero", ErrSingular, k)
		}
		alpha := qr.At(k, k)
		if alpha > 0 {
			norm = -norm
		}
		// v = x − norm·e₁, normalised so v[k] = 1; tau = (norm−alpha)/norm.
		v0 := alpha - norm
		tau[k] = -v0 / norm
		inv := 1 / v0
		for i := k + 1; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)*inv)
		}
		qr.Set(k, k, norm)
		// Apply the reflector to the trailing columns:
		// A ← (I − tau·v·vᵀ)·A with v = [1, qr[k+1..m][k]].
		for j := k + 1; j < n; j++ {
			s := qr.At(k, j)
			for i := k + 1; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s *= tau[k]
			qr.Set(k, j, qr.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)-s*qr.At(i, k))
			}
		}
	}
	return &QR{qr: qr, tau: tau}, nil
}

// applyQT overwrites b with Qᵀ·b.
func (f *QR) applyQT(b []float64) {
	m, n := f.qr.Rows(), f.qr.Cols()
	for k := 0; k < n; k++ {
		s := b[k]
		for i := k + 1; i < m; i++ {
			s += f.qr.At(i, k) * b[i]
		}
		s *= f.tau[k]
		b[k] -= s
		for i := k + 1; i < m; i++ {
			b[i] -= s * f.qr.At(i, k)
		}
	}
}

// Solve returns the least-squares solution min‖A·x − b‖₂ plus the residual
// norm, for the factorised A.
func (f *QR) Solve(b []float64) (x []float64, residual float64, err error) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m {
		return nil, 0, fmt.Errorf("scalapack: rhs length %d, want %d", len(b), m)
	}
	c := mat.VecClone(b)
	f.applyQT(c)
	x = make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := c[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		d := f.qr.At(i, i)
		if d == 0 {
			return nil, 0, fmt.Errorf("%w: zero R diagonal %d", ErrSingular, i)
		}
		x[i] = s / d
	}
	var rr float64
	for i := n; i < m; i++ {
		rr += c[i] * c[i]
	}
	return x, math.Sqrt(rr), nil
}

// R returns the n×n upper-triangular factor.
func (f *QR) R() *mat.Dense {
	n := f.qr.Cols()
	r := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// Dgels solves the full-rank least-squares problem in one call.
func Dgels(a *mat.Dense, b []float64) ([]float64, error) {
	f, err := Dgeqrf(a)
	if err != nil {
		return nil, err
	}
	x, _, err := f.Solve(b)
	return x, err
}
