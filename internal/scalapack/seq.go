package scalapack

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// ErrSingular reports a numerically singular matrix (zero pivot column
// during partial pivoting).
var ErrSingular = errors.New("scalapack: matrix is numerically singular")

// Dgetrf computes an LU factorisation with partial pivoting in place:
// A = P·L·U with unit-diagonal L stored below the diagonal. ipiv[k] is the
// row swapped with row k at step k (LAPACK convention, 0-based).
func Dgetrf(a *mat.Dense) (ipiv []int, err error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("scalapack: dgetrf needs a square matrix, got %d×%d", n, a.Cols())
	}
	ipiv = make([]int, n)
	for k := 0; k < n; k++ {
		// Partial pivoting: the largest |A[i][k]|, i ≥ k, moves to the
		// diagonal (§2.2: swap rows so A(i,i) is the largest in its column).
		p, pv := k, math.Abs(a.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a.At(i, k)); v > pv {
				p, pv = i, v
			}
		}
		if pv == 0 {
			return nil, fmt.Errorf("%w: pivot column %d", ErrSingular, k)
		}
		ipiv[k] = p
		a.SwapRows(k, p)
		akk := a.At(k, k)
		rowK := a.Row(k)
		for i := k + 1; i < n; i++ {
			row := a.Row(i)
			l := row[k] / akk
			row[k] = l
			if l != 0 {
				for j := k + 1; j < n; j++ {
					row[j] -= l * rowK[j]
				}
			}
		}
	}
	return ipiv, nil
}

// Dgetrs solves A·x = b given the Dgetrf output (LU and ipiv).
func Dgetrs(lu *mat.Dense, ipiv []int, b []float64) ([]float64, error) {
	n := lu.Rows()
	if len(ipiv) != n || len(b) != n {
		return nil, fmt.Errorf("scalapack: dgetrs size mismatch: n=%d ipiv=%d b=%d", n, len(ipiv), len(b))
	}
	x := mat.VecClone(b)
	// Apply the row permutation.
	for k := 0; k < n; k++ {
		if p := ipiv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := lu.Row(i)
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			return nil, fmt.Errorf("%w: zero U diagonal %d", ErrSingular, i)
		}
		x[i] = s / d
	}
	return x, nil
}

// Dgesv solves A·x = b by Gaussian elimination with partial pivoting,
// leaving the inputs untouched — the sequential baseline of the study.
func Dgesv(sys *mat.System) ([]float64, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	lu := sys.A.Clone()
	ipiv, err := Dgetrf(lu)
	if err != nil {
		return nil, err
	}
	return Dgetrs(lu, ipiv, sys.B)
}
