package core

import (
	"fmt"
	"math"

	"repro/internal/perfmodel"
	"repro/internal/report"
	"repro/internal/store"
)

// RepStats summarises repeated runs of one experiment, mirroring the
// paper's methodology of "ten repetitions for each job ... to achieve
// realistic values for comparison" (§5.1).
type RepStats struct {
	Experiment Experiment
	Reps       int

	MeanDurationS, MinDurationS, MaxDurationS float64
	MeanJ, MinJ, MaxJ                         float64
}

// SpreadJ is the relative energy spread (max−min)/mean.
func (r RepStats) SpreadJ() float64 {
	if r.MeanJ == 0 {
		return 0
	}
	return (r.MaxJ - r.MinJ) / r.MeanJ
}

// RunRepeatedAnalytic models reps repetitions of an experiment under the
// given machine variability, each with a distinct deterministic noise
// seed, and folds them into statistics.
func RunRepeatedAnalytic(e Experiment, prm perfmodel.Params, reps int, variability float64) (RepStats, error) {
	if reps <= 0 {
		return RepStats{}, fmt.Errorf("core: repetition count %d must be positive", reps)
	}
	st := RepStats{
		Experiment:   e,
		Reps:         reps,
		MinDurationS: math.Inf(1),
		MinJ:         math.Inf(1),
	}
	for r := 0; r < reps; r++ {
		p := prm
		p.NodeVariability = variability
		p.NoiseSeed = int64(r + 1)
		m, err := RunAnalytic(e, p)
		if err != nil {
			return RepStats{}, err
		}
		st.MeanDurationS += m.DurationS / float64(reps)
		st.MeanJ += m.TotalJ / float64(reps)
		if m.DurationS < st.MinDurationS {
			st.MinDurationS = m.DurationS
		}
		if m.DurationS > st.MaxDurationS {
			st.MaxDurationS = m.DurationS
		}
		if m.TotalJ < st.MinJ {
			st.MinJ = m.TotalJ
		}
		if m.TotalJ > st.MaxJ {
			st.MaxJ = m.TotalJ
		}
	}
	return st, nil
}

// RepetitionStudy renders repetition statistics for both algorithms at a
// set of grid cells — the repeatability context §5.3 asks readers to keep
// in mind when interpreting mild differences.
func RepetitionStudy(cells []SweepKey, prm perfmodel.Params, reps int, variability float64) (*report.Table, error) {
	t, _, err := RepetitionStudyStored(cells, prm, reps, variability, nil)
	return t, err
}

// RepetitionStudyStored is RepetitionStudy with each repetition memoized
// in the experiment store; computed counts the repetitions that ran.
func RepetitionStudyStored(cells []SweepKey, prm perfmodel.Params, reps int, variability float64, est *store.Store) (*report.Table, int, error) {
	t := &report.Table{
		Title: fmt.Sprintf("Repeatability: %d repetitions, ±%.0f%% machine variability", reps, variability*100),
		Headers: []string{"alg", "n", "ranks",
			"mean s", "min s", "max s", "mean J", "spread %"},
	}
	computed := 0
	for _, cell := range cells {
		e := Experiment{Algorithm: cell.Algorithm, N: cell.N, Ranks: cell.Ranks, Placement: cell.Placement}
		st, ran, err := RunRepeatedAnalyticStored(e, prm, reps, variability, est)
		if err != nil {
			return nil, computed, err
		}
		computed += ran
		t.Add(cell.Algorithm.String(), cell.N, cell.Ranks,
			st.MeanDurationS, st.MinDurationS, st.MaxDurationS,
			st.MeanJ, st.SpreadJ()*100)
	}
	return t, computed, nil
}
