package core

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/store"
)

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestAnalyticStoredExactRoundTrip pins the byte-identity contract at
// its root: a warm hit must reconstruct exactly the Measurement the
// cold computation produced — every float64 bit included — because all
// downstream artifacts (figure tables, advisor bodies) are formatted
// from these numbers.
func TestAnalyticStoredExactRoundTrip(t *testing.T) {
	st := openStore(t)
	e := Experiment{Algorithm: perfmodel.ScaLAPACK, N: 8640, Ranks: 144, Placement: cluster.FullLoad}
	prm := perfmodel.Params{Overlap: true}

	cold, computed, err := RunAnalyticStored(e, prm, st)
	if err != nil {
		t.Fatal(err)
	}
	if !computed {
		t.Fatal("first run on an empty store must compute")
	}
	direct, err := RunAnalytic(e, prm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, direct) {
		t.Fatalf("stored cold run diverged from plain RunAnalytic:\n got %+v\nwant %+v", cold, direct)
	}

	warm, computed, err := RunAnalyticStored(e, prm, st)
	if err != nil {
		t.Fatal(err)
	}
	if computed {
		t.Fatal("second run must hit the store")
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("warm reconstruction diverged from the cold computation:\n got %+v\nwant %+v", warm, cold)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d records, want 1", st.Len())
	}
}

// TestAnalyticIdentityFoldsBlockSizeOverride pins that the key mirrors
// RunAnalytic's parameter resolution: the experiment-level BlockSize
// override and the params-level block size are one experiment.
func TestAnalyticIdentityFoldsBlockSizeOverride(t *testing.T) {
	e := Experiment{Algorithm: perfmodel.ScaLAPACK, N: 128, Ranks: 4, Placement: cluster.FullLoad}
	viaExperiment := e
	viaExperiment.BlockSize = 32
	idExp := AnalyticCellIdentity(viaExperiment, perfmodel.Params{})
	idPrm := AnalyticCellIdentity(e, perfmodel.Params{BlockSize: 32})
	kExp, _, err := store.KeyFor(idExp)
	if err != nil {
		t.Fatal(err)
	}
	kPrm, _, err := store.KeyFor(idPrm)
	if err != nil {
		t.Fatal(err)
	}
	if kExp != kPrm {
		t.Fatalf("BlockSize spellings split the identity: %.12s… vs %.12s…", kExp, kPrm)
	}
	kDefault, _, err := store.KeyFor(AnalyticCellIdentity(e, perfmodel.Params{}))
	if err != nil {
		t.Fatal(err)
	}
	if kDefault == kExp {
		t.Fatal("nb=32 collides with the default block size")
	}
}

// TestAnalyticSeedIrrelevantToIdentity: the analytic engine never reads
// the input seed, so two experiments differing only in Seed are one cell.
func TestAnalyticSeedIrrelevantToIdentity(t *testing.T) {
	e := Experiment{Algorithm: perfmodel.IMe, N: 128, Ranks: 4, Placement: cluster.FullLoad}
	e2 := e
	e2.Seed = 99
	k1, _, err := store.KeyFor(AnalyticCellIdentity(e, perfmodel.Params{}))
	if err != nil {
		t.Fatal(err)
	}
	k2, _, err := store.KeyFor(AnalyticCellIdentity(e2, perfmodel.Params{}))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("analytic identity depends on the input seed it never reads")
	}
}

// TestEngineSeparatesIdentity: the same cell coordinates under the
// monitored engine and the analytic engine are different experiments —
// exact numerics vs modelled schedule must never alias.
func TestEngineSeparatesIdentity(t *testing.T) {
	e := Experiment{Algorithm: perfmodel.IMe, N: 96, Ranks: 8, Placement: cluster.FullLoad, Seed: 3}
	ka, _, err := store.KeyFor(AnalyticCellIdentity(e, perfmodel.Params{}))
	if err != nil {
		t.Fatal(err)
	}
	km, _, err := store.KeyFor(MonitoredCellIdentity(e))
	if err != nil {
		t.Fatal(err)
	}
	if ka == km {
		t.Fatal("analytic and monitored identities alias")
	}
}

// TestMonitoredStoredRoundTrip runs the real solver once and replays it
// from the store, including the residual only the monitored engine has.
func TestMonitoredStoredRoundTrip(t *testing.T) {
	st := openStore(t)
	e := Experiment{Algorithm: perfmodel.IMe, N: 96, Ranks: 24,
		Placement: cluster.HalfLoadOneSocket, Seed: 3, BlockSize: 8}

	cold, computed, err := RunMonitoredStored(e, st)
	if err != nil {
		t.Fatal(err)
	}
	if !computed {
		t.Fatal("first monitored run must compute")
	}
	if cold.Residual <= 0 {
		t.Fatalf("monitored run has residual %g, want positive", cold.Residual)
	}
	warm, computed, err := RunMonitoredStored(e, st)
	if err != nil {
		t.Fatal(err)
	}
	if computed {
		t.Fatal("second monitored run must hit the store")
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("warm monitored reconstruction diverged:\n got %+v\nwant %+v", warm, cold)
	}

	// Seed and phase are part of the monitored identity.
	e2 := e
	e2.Seed = 4
	if _, computed, err = RunMonitoredStored(e2, st); err != nil {
		t.Fatal(err)
	} else if !computed {
		t.Fatal("different input seed must be a different monitored experiment")
	}
}

// TestSweepStoredMatchesParallel: the stored sweep — cold then warm —
// must reproduce NewSweepParallel's measurements exactly, and the warm
// pass must compute nothing.
func TestSweepStoredMatchesParallel(t *testing.T) {
	st := openStore(t)
	prm := perfmodel.Params{Overlap: true}
	r := grid.New(4)

	base, err := NewSweepParallel(prm, r)
	if err != nil {
		t.Fatal(err)
	}
	cold, computed, err := NewSweepStored(prm, r, st)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(SweepKeys()); computed != want {
		t.Fatalf("cold sweep computed %d cells, want %d", computed, want)
	}
	if !reflect.DeepEqual(cold.Measurements, base.Measurements) {
		t.Fatal("cold stored sweep diverged from the storeless sweep")
	}
	warm, computed, err := NewSweepStored(prm, r, st)
	if err != nil {
		t.Fatal(err)
	}
	if computed != 0 {
		t.Fatalf("warm sweep computed %d cells, want 0", computed)
	}
	if !reflect.DeepEqual(warm.Measurements, base.Measurements) {
		t.Fatal("warm stored sweep diverged from the storeless sweep")
	}
}

// TestDecodeCellInvertsIdentity: enumerating store records must recover
// the experiments that produced them (the server's warm path).
func TestDecodeCellInvertsIdentity(t *testing.T) {
	st := openStore(t)
	e := Experiment{Algorithm: perfmodel.ScaLAPACK, N: 17280, Ranks: 576, Placement: cluster.HalfLoadTwoSockets}
	m, _, err := RunAnalyticStored(e, perfmodel.Params{Overlap: true}, st)
	if err != nil {
		t.Fatal(err)
	}
	keys := st.Keys()
	if len(keys) != 1 {
		t.Fatalf("store holds %d keys, want 1", len(keys))
	}
	rec, ok, err := st.Get(keys[0])
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	id, res, err := DecodeCell(rec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := id.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	if back != e {
		t.Fatalf("identity round trip: got %+v, want %+v", back, e)
	}
	if id.Model == nil || id.Model.Model == "" {
		t.Fatal("analytic cell identity is missing its model version stamp")
	}
	m2, err := CellMeasurement(back, res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m2, m) {
		t.Fatalf("decoded measurement diverged:\n got %+v\nwant %+v", m2, m)
	}
}

// TestResilientStoredRoundTrip memoizes the expensive tier: a resilient
// run with crashes, replayed exactly from the store.
func TestResilientStoredRoundTrip(t *testing.T) {
	st := openStore(t)
	e := resilientExperiment(perfmodel.IMe)
	probe, err := RunResilient(e, ResilienceOptions{MTBF: faultFreeMTBF, Seed: 5, Storage: testStorage()})
	if err != nil {
		t.Fatal(err)
	}
	ro := ResilienceOptions{MTBF: probe.BaselineDurationS / 4, Seed: 5, Storage: testStorage()}

	cold, computed, err := RunResilientStored(e, ro, st)
	if err != nil {
		t.Fatal(err)
	}
	if !computed {
		t.Fatal("first resilient run must compute")
	}
	if cold.Crashes == 0 {
		t.Fatalf("MTBF %g drew no crashes; the round trip would not cover the faulted fields", ro.MTBF)
	}
	warm, computed, err := RunResilientStored(e, ro, st)
	if err != nil {
		t.Fatal(err)
	}
	if computed {
		t.Fatal("second resilient run must hit the store")
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("warm resilient reconstruction diverged:\n got %+v\nwant %+v", warm, cold)
	}

	// A different fault seed is a different experiment.
	ro2 := ro
	ro2.Seed = 6
	if _, computed, err = RunResilientStored(e, ro2, st); err != nil {
		t.Fatal(err)
	} else if !computed {
		t.Fatal("different fault seed must be a different resilience experiment")
	}
}

// TestRepeatedAnalyticStoredMatches: stats folded from stored cells must
// equal the storeless fold bit-for-bit (same accumulation order, exact
// per-cell round trips).
func TestRepeatedAnalyticStoredMatches(t *testing.T) {
	st := openStore(t)
	e := Experiment{Algorithm: perfmodel.IMe, N: 8640, Ranks: 144, Placement: cluster.FullLoad}
	prm := perfmodel.Params{Overlap: true}

	base, err := RunRepeatedAnalytic(e, prm, 5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cold, computed, err := RunRepeatedAnalyticStored(e, prm, 5, 0.05, st)
	if err != nil {
		t.Fatal(err)
	}
	if computed != 5 {
		t.Fatalf("cold repetitions computed %d cells, want 5", computed)
	}
	if !reflect.DeepEqual(cold, base) {
		t.Fatalf("cold stored stats diverged:\n got %+v\nwant %+v", cold, base)
	}
	warm, computed, err := RunRepeatedAnalyticStored(e, prm, 5, 0.05, st)
	if err != nil {
		t.Fatal(err)
	}
	if computed != 0 {
		t.Fatalf("warm repetitions computed %d cells, want 0", computed)
	}
	if !reflect.DeepEqual(warm, base) {
		t.Fatalf("warm stored stats diverged:\n got %+v\nwant %+v", warm, base)
	}
}
