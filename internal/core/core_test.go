package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/perfmodel"
	"repro/internal/rapl"
)

func TestRunAnalyticProducesMeasurement(t *testing.T) {
	e := Experiment{
		Algorithm: perfmodel.ScaLAPACK,
		N:         8640,
		Ranks:     144,
		Placement: cluster.FullLoad,
	}
	m, err := RunAnalytic(e, perfmodel.Params{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Engine != "analytic" {
		t.Fatalf("engine = %q", m.Engine)
	}
	if m.DurationS <= 0 || m.TotalJ <= 0 {
		t.Fatalf("degenerate measurement %+v", m)
	}
	if m.AvgPowerW() <= 0 || m.DramPowerW() <= 0 {
		t.Fatal("power accessors broken")
	}
	if m.Config.Nodes != 3 {
		t.Fatalf("config nodes = %d, want 3", m.Config.Nodes)
	}
}

func TestRunAnalyticValidation(t *testing.T) {
	if _, err := RunAnalytic(Experiment{Algorithm: perfmodel.IMe, N: 0, Ranks: 144,
		Placement: cluster.FullLoad}, perfmodel.Params{}); err == nil {
		t.Error("zero order accepted")
	}
	if _, err := RunAnalytic(Experiment{Algorithm: perfmodel.IMe, N: 100, Ranks: 7,
		Placement: cluster.FullLoad}, perfmodel.Params{}); err == nil {
		t.Error("invalid rank count accepted")
	}
}

func TestRunMonitoredBothAlgorithms(t *testing.T) {
	for _, alg := range perfmodel.Algorithms() {
		e := Experiment{
			Algorithm: alg,
			N:         384,
			Ranks:     48, // one full-load node
			Placement: cluster.FullLoad,
			Seed:      7,
			BlockSize: 16,
		}
		m, err := RunMonitored(e)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if m.Engine != "monitored" {
			t.Fatalf("engine = %q", m.Engine)
		}
		if m.Residual > 1e-10 {
			t.Fatalf("%v: residual %g — solver broken under monitoring", alg, m.Residual)
		}
		if m.DurationS <= 0 {
			t.Fatalf("%v: no duration measured", alg)
		}
		if m.TotalJ <= 0 {
			t.Fatalf("%v: no energy measured", alg)
		}
		for _, d := range rapl.Domains() {
			if m.EnergyJ[d] < 0 {
				t.Fatalf("%v: negative energy in %v", alg, d)
			}
		}
		// Both sockets loaded under full load: PKG1 energy present.
		if m.EnergyJ[rapl.PKG1] <= 0 {
			t.Fatalf("%v: socket 1 shows no energy under full load", alg)
		}
	}
}

func TestRunMonitoredHalfLoadPlacements(t *testing.T) {
	// The monitored engine must honour the socket placements end to end:
	// one-socket jobs show the busy/idle package asymmetry, two-socket
	// jobs stay near-symmetric.
	base := Experiment{
		Algorithm: perfmodel.IMe,
		N:         384,
		Ranks:     24, // one half-load node
		Seed:      11,
	}
	one := base
	one.Placement = cluster.HalfLoadOneSocket
	mOne, err := RunMonitored(one)
	if err != nil {
		t.Fatal(err)
	}
	if mOne.Config.RanksSocket1 != 0 {
		t.Fatalf("one-socket config %+v", mOne.Config)
	}
	p0 := mOne.EnergyJ[rapl.PKG0]
	p1 := mOne.EnergyJ[rapl.PKG1]
	if p1 >= p0 {
		t.Fatalf("idle socket energy %.3f J not below busy %.3f J", p1, p0)
	}
	if frac := p1 / p0; frac < 0.3 || frac > 0.6 {
		t.Fatalf("idle/busy fraction %.2f outside the §5.3 band", frac)
	}
	// DRAM asymmetry too: traffic lands on socket 0 only.
	if mOne.EnergyJ[rapl.DRAM0] <= mOne.EnergyJ[rapl.DRAM1] {
		t.Fatal("DRAM energy should skew to the busy socket")
	}

	two := base
	two.Placement = cluster.HalfLoadTwoSockets
	mTwo, err := RunMonitored(two)
	if err != nil {
		t.Fatal(err)
	}
	q0 := mTwo.EnergyJ[rapl.PKG0]
	q1 := mTwo.EnergyJ[rapl.PKG1]
	if q1 >= q0 {
		t.Fatal("socket 0 should edge out socket 1 (OS noise) at equal load")
	}
	if ratio := q1 / q0; ratio < 0.9 {
		t.Fatalf("two-socket split too asymmetric: %.2f", ratio)
	}
}

func TestRunMonitoredPhases(t *testing.T) {
	base := Experiment{
		Algorithm: perfmodel.IMe,
		N:         384,
		Ranks:     48,
		Placement: cluster.FullLoad,
		Seed:      3,
	}
	general := base
	general.Phase = PhaseGeneral
	compute := base
	compute.Phase = PhaseCompute
	g, err := RunMonitored(general)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunMonitored(compute)
	if err != nil {
		t.Fatal(err)
	}
	// The general window includes allocation, so it is at least as long
	// and at least as energetic — but not dramatically so (§5.2: "the
	// data … do not exhibit significant differences").
	if g.DurationS < c.DurationS {
		t.Fatalf("general %.4fs shorter than compute %.4fs", g.DurationS, c.DurationS)
	}
	if g.TotalJ < c.TotalJ {
		t.Fatalf("general %.1f J below compute %.1f J", g.TotalJ, c.TotalJ)
	}
	if g.TotalJ > 2*c.TotalJ {
		t.Fatalf("allocation dominates energy (%.1f vs %.1f J); phases should be close", g.TotalJ, c.TotalJ)
	}
	if PhaseGeneral.String() != "general" || PhaseCompute.String() != "compute" {
		t.Fatal("phase names drifted")
	}
}

func TestRunMonitoredValidation(t *testing.T) {
	if _, err := RunMonitored(Experiment{
		Algorithm: perfmodel.IMe, N: 10, Ranks: 48, Placement: cluster.FullLoad,
	}); err == nil {
		t.Error("ranks > order accepted")
	}
	if _, err := RunMonitored(Experiment{
		Algorithm: perfmodel.Algorithm(9), N: 384, Ranks: 48, Placement: cluster.FullLoad,
	}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
