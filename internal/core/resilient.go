package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/ime"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/report"
	"repro/internal/scalapack"
	"repro/internal/store"
)

// Resilience experiments: what does surviving faults cost each solver?
//
// The paper motivates IMe by its "integrated low-cost multiple fault
// tolerance, which is more efficient than the checkpoint/restart
// technique usually applied in Gaussian Elimination" ([7]) — but never
// prices that claim in joules. RunResilient does: it executes either
// solver under an MTBF-parameterised crash schedule with its native
// recovery mechanism — IMe recovers lost ranks in place from its checksum
// rows; ScaLAPACK replays from periodic in-memory checkpoints
// (internal/ckpt) after the engine aborts the crashed world — verifies
// the recovered solution against the fault-free run, and reports the
// recovery energy on top of the fault-free baseline. Sweeping the MTBF
// locates the crossover where IMe's cheap per-crash recovery beats
// ScaLAPACK's lower baseline energy.

// ResilienceOptions parametrises a resilient run.
type ResilienceOptions struct {
	// MTBF is the mean time between rank crashes across the world, in
	// virtual seconds. The crash horizon is the fault-free makespan, so
	// MTBF values around that makespan yield O(1) crashes per run.
	MTBF float64
	// Seed drives the crash schedule (independent of the input seed).
	Seed int64
	// MaxCrashes bounds the schedule (fault.DefaultMaxCrashes when 0).
	MaxCrashes int
	// CheckpointEvery is ScaLAPACK's checkpoint period in panel steps
	// (default 2).
	CheckpointEvery int
	// Detect is the failure-detection timeout survivors charge before a
	// crashed world aborts (fault.DefaultDetectTimeout when 0). Scale it
	// down with the makespan for small reference runs.
	Detect float64
	// Storage prices ScaLAPACK's checkpoint writes and restore reads
	// (ckpt.DefaultCostModel when zero).
	Storage ckpt.CostModel
}

// ResilientMeasurement is the outcome of one resilient execution.
type ResilientMeasurement struct {
	Experiment Experiment
	MTBF       float64

	// Fault-free reference run with the resilience machinery armed
	// (checksum rows for IMe, periodic checkpoints for ScaLAPACK) but no
	// faults injected.
	BaselineDurationS float64
	BaselineJ         float64

	// Faulted run, summed across restart attempts for checkpoint/restart.
	DurationS float64
	TotalJ    float64

	// Crashes scheduled within the horizon; Recoveries are IMe in-place
	// checksum recoveries, Restarts are ScaLAPACK world restarts.
	Crashes    int
	Recoveries int
	Restarts   int
	// CheckpointWrites counts per-rank snapshot writes (ScaLAPACK only).
	CheckpointWrites int

	// RecoveryJ is the energy the faults cost: TotalJ − BaselineJ.
	RecoveryJ float64
	// MaxRelDiff is the largest relative deviation of the recovered
	// solution from the fault-free one; Residual its relative residual.
	MaxRelDiff float64
	Residual   float64
}

// solutionTolerance bounds the acceptable deviation of a recovered
// solution from the fault-free one. ScaLAPACK restarts replay identical
// arithmetic (exact match); IMe's Vandermonde reconstruction re-derives
// lost rows, so recovered runs may differ at rounding level.
const solutionTolerance = 1e-8

// RunResilient executes the experiment's solver under an MTBF crash
// schedule with its native recovery mechanism and verifies the recovered
// solution against the fault-free run.
func RunResilient(e Experiment, ro ResilienceOptions) (ResilientMeasurement, error) {
	cfg, err := e.resolveConfig(cluster.MarconiA3())
	if err != nil {
		return ResilientMeasurement{}, err
	}
	if e.Ranks > e.N {
		return ResilientMeasurement{}, fmt.Errorf("core: %d ranks exceed order %d", e.Ranks, e.N)
	}
	if ro.MTBF < 0 {
		return ResilientMeasurement{}, fmt.Errorf("core: negative MTBF %g", ro.MTBF)
	}
	if ro.CheckpointEvery <= 0 {
		ro.CheckpointEvery = 2
	}
	if ro.Storage == (ckpt.CostModel{}) {
		ro.Storage = ckpt.DefaultCostModel()
	}
	sys := mat.CachedSystem(e.N, e.Seed)
	rm := ResilientMeasurement{Experiment: e, MTBF: ro.MTBF}

	// Fault-free baseline with the resilience machinery armed. Its
	// makespan is the crash horizon; for IMe its trace maps crash times to
	// elimination levels. The baseline's checkpoint store is discarded —
	// restarts must only resume from checkpoints the faulted run wrote.
	baseStore, err := ckpt.NewStore(e.Ranks)
	if err != nil {
		return rm, err
	}
	xref, spans, err := resilientSolve(e, cfg, sys, &rm.BaselineDurationS, &rm.BaselineJ,
		nil, nil, 1, baseStore.Plan(ro.CheckpointEvery, ro.Storage), e.Algorithm == perfmodel.IMe)
	if err != nil {
		return rm, fmt.Errorf("core: fault-free baseline: %w", err)
	}

	// The crash schedule: exponential inter-arrivals over the fault-free
	// makespan. Rank 0 is protected for both solvers (IMe's master owns
	// the irreplaceable auxiliary vector h; keeping the victim sets
	// identical keeps the comparison honest).
	sched := fault.MTBFSchedule(ro.Seed, ro.MTBF, rm.BaselineDurationS, e.Ranks, ro.MaxCrashes, 0)
	rm.Crashes = len(sched.Events)

	var x []float64
	switch e.Algorithm {
	case perfmodel.IMe:
		x, err = runResilientIMe(e, cfg, sys, sched, spans, &rm)
	case perfmodel.ScaLAPACK:
		x, err = runResilientScalapack(e, cfg, sys, sched, ro, &rm)
	default:
		return rm, fmt.Errorf("core: unknown algorithm %v", e.Algorithm)
	}
	if err != nil {
		return rm, err
	}

	rm.RecoveryJ = rm.TotalJ - rm.BaselineJ
	// A crash-free run re-executes a world identical to the baseline, so
	// any nonzero difference here is floating-point summation jitter
	// (energy totals are deterministic to ~1e-9 relative, not bit-exact —
	// goroutine scheduling can reorder the charge accumulation). Snap it
	// to the exact zero the identical workloads imply, so the artifact
	// bytes don't depend on scheduling.
	if rm.Crashes == 0 {
		rm.RecoveryJ = 0
	}
	rm.Residual = mat.RelativeResidual(sys.A, x, sys.B)
	for i := range x {
		d := math.Abs(x[i] - xref[i])
		if m := math.Abs(xref[i]); m > 1 {
			d /= m
		}
		if d > rm.MaxRelDiff {
			rm.MaxRelDiff = d
		}
	}
	if rm.MaxRelDiff > solutionTolerance {
		return rm, fmt.Errorf("core: recovered solution deviates from the fault-free run by %g (tolerance %g)",
			rm.MaxRelDiff, solutionTolerance)
	}
	return rm, nil
}

// resilientSolve runs one world to completion (or failure): the shared
// execution step of the baseline, the IMe fault run and each ScaLAPACK
// restart attempt. It adds the world's makespan and energy to the given
// sums — a crashed world's partial work is charged in full — and returns
// rank 0's solution and, when traced, the recorded spans.
func resilientSolve(e Experiment, cfg cluster.Config, sys *mat.System,
	durS, totalJ *float64, inj *fault.Injector, imeSched *fault.Schedule,
	imeSets int, plan *scalapack.CheckpointPlan, traced bool) ([]float64, []mpi.Span, error) {

	w, err := mpi.NewWorld(e.Ranks, mpi.Options{Config: &cfg, Fault: inj})
	if err != nil {
		return nil, nil, err
	}
	if traced {
		w.EnableTracing()
	}
	var mu sync.Mutex
	var x []float64
	err = w.Run(func(p *mpi.Proc) error {
		var got []float64
		var serr error
		switch e.Algorithm {
		case perfmodel.IMe:
			got, serr = ime.SolveParallel(p, p.World(), sys, ime.ParallelOptions{
				ChargeCosts:    true,
				Checksum:       true,
				ChecksumSets:   imeSets,
				InjectSchedule: imeSched,
			})
		case perfmodel.ScaLAPACK:
			got, serr = scalapack.Pdgesv(p, p.World(), sys, scalapack.ParallelOptions{
				BlockSize:   e.BlockSize,
				ChargeCosts: true,
				Checkpoint:  plan,
			})
		default:
			serr = fmt.Errorf("core: unknown algorithm %v", e.Algorithm)
		}
		if serr != nil {
			return serr
		}
		if p.Rank() == 0 {
			mu.Lock()
			x = got
			mu.Unlock()
		}
		return nil
	})
	*durS += w.MaxClock()
	*totalJ += w.TotalEnergyJ()
	if err != nil {
		return nil, nil, err
	}
	var spans []mpi.Span
	if traced {
		spans = w.Spans()
	}
	return x, spans, nil
}

// runResilientIMe maps the schedule's crash times onto elimination levels
// via the baseline trace and solves once with solver-level injection: a
// crashed rank's table blocks are wiped and rebuilt in place from the
// checksum rows, so the world never aborts.
func runResilientIMe(e Experiment, cfg cluster.Config, sys *mat.System,
	sched fault.Schedule, spans []mpi.Span, rm *ResilientMeasurement) ([]float64, error) {

	levels, err := crashLevels(sched, spans)
	if err != nil {
		return nil, err
	}
	sets := 1
	var events []fault.Event
	for _, lv := range sortedLevelsDesc(levels) {
		ranks := levels[lv]
		if len(ranks) > sets {
			sets = len(ranks)
		}
		events = append(events, fault.Event{Level: lv, Ranks: ranks})
		rm.Recoveries++
	}
	var imeSched *fault.Schedule
	if len(events) > 0 {
		imeSched = &fault.Schedule{Seed: sched.Seed, Events: events}
	}
	x, _, err := resilientSolve(e, cfg, sys, &rm.DurationS, &rm.TotalJ,
		nil, imeSched, sets, nil, false)
	return x, err
}

// crashLevels converts crash times into a level → victim-rank map using
// the master's per-level phase spans from the fault-free trace. A crash
// inside level l's span (or anywhere before it) wipes the victims right
// before level l is processed; crashes after the last level's end cost
// nothing (the factorisation is already complete).
func crashLevels(sched fault.Schedule, spans []mpi.Span) (map[int][]int, error) {
	type window struct {
		level int
		end   float64
	}
	var wins []window
	for _, s := range spans {
		if s.Rank == 0 && s.Kind == "phase" && s.Name == "elimination-level" {
			wins = append(wins, window{level: s.Level, end: s.End})
		}
	}
	if len(wins) == 0 {
		if len(sched.Events) == 0 {
			return nil, nil
		}
		return nil, fmt.Errorf("core: baseline trace has no elimination-level spans")
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i].end < wins[j].end })
	levels := make(map[int][]int)
	for _, ev := range sched.Events {
		if ev.Level > 0 {
			continue
		}
		lv := 0
		for _, wn := range wins {
			if ev.Time < wn.end {
				lv = wn.level
				break
			}
		}
		if lv == 0 {
			continue // crash after the last level: nothing left to lose
		}
		for _, r := range ev.Ranks {
			if !containsInt(levels[lv], r) {
				levels[lv] = append(levels[lv], r)
			}
		}
	}
	for _, rs := range levels {
		sort.Ints(rs)
	}
	return levels, nil
}

// sortedLevelsDesc orders levels the way IMe processes them: n … 1.
func sortedLevelsDesc(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(keys)))
	return keys
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// runResilientScalapack executes the attempt loop: each attempt runs
// under the (shifted) crash injector; a crashed world's virtual time and
// energy are charged in full, then the next attempt resumes from the
// newest complete checkpoint generation with the already-fired events
// dropped from the schedule.
func runResilientScalapack(e Experiment, cfg cluster.Config, sys *mat.System,
	sched fault.Schedule, ro ResilienceOptions, rm *ResilientMeasurement) ([]float64, error) {

	store, err := ckpt.NewStore(e.Ranks)
	if err != nil {
		return nil, err
	}
	plan := store.Plan(ro.CheckpointEvery, ro.Storage)
	inj, err := fault.New(fault.Config{Seed: sched.Seed, Events: sched.Events,
		DetectTimeout: ro.Detect}, e.Ranks)
	if err != nil {
		return nil, err
	}
	maxAttempts := len(sched.Events) + 1
	for attempt := 0; attempt < maxAttempts; attempt++ {
		before := rm.DurationS
		x, _, err := resilientSolve(e, cfg, sys, &rm.DurationS, &rm.TotalJ,
			inj, nil, 1, plan, false)
		if err == nil {
			writes, _ := store.Stats()
			rm.CheckpointWrites = writes
			return x, nil
		}
		if !errors.Is(err, mpi.ErrRankFailed) {
			return nil, err
		}
		rm.Restarts++
		// The failed attempt consumed virtual time; surviving events move
		// earlier by exactly that much for the next attempt.
		inj, err = inj.Shifted(rm.DurationS - before)
		if err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("core: restart budget (%d attempts) exhausted under MTBF %g", maxAttempts, ro.MTBF)
}

// ResiliencePoint pairs both solvers' resilient measurements at one MTBF.
type ResiliencePoint struct {
	MTBF      float64
	IMe       ResilientMeasurement
	ScaLAPACK ResilientMeasurement
}

// Winner names the solver with the lower faulted total energy.
func (p ResiliencePoint) Winner() perfmodel.Algorithm {
	if p.IMe.TotalJ < p.ScaLAPACK.TotalJ {
		return perfmodel.IMe
	}
	return perfmodel.ScaLAPACK
}

// ResilienceStudy runs both solvers across an MTBF sweep under identical
// crash schedules (same seed, same protected set). The experiment's
// Algorithm field is ignored.
func ResilienceStudy(e Experiment, mtbfs []float64, ro ResilienceOptions) ([]ResiliencePoint, error) {
	pts := make([]ResiliencePoint, 0, len(mtbfs))
	for _, mtbf := range mtbfs {
		o := ro
		o.MTBF = mtbf
		pt := ResiliencePoint{MTBF: mtbf}
		var err error
		ei := e
		ei.Algorithm = perfmodel.IMe
		if pt.IMe, err = RunResilient(ei, o); err != nil {
			return nil, fmt.Errorf("core: resilience study, ime at mtbf %g: %w", mtbf, err)
		}
		es := e
		es.Algorithm = perfmodel.ScaLAPACK
		if pt.ScaLAPACK, err = RunResilient(es, o); err != nil {
			return nil, fmt.Errorf("core: resilience study, scalapack at mtbf %g: %w", mtbf, err)
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// CrossoverMTBF locates the boundary where the total-energy winner flips
// between adjacent sweep points, returning the bracketing MTBFs. ok is
// false when every point has the same winner.
func CrossoverMTBF(pts []ResiliencePoint) (lo, hi float64, ok bool) {
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Winner() != pts[i].Winner() {
			return pts[i-1].MTBF, pts[i].MTBF, true
		}
	}
	return 0, 0, false
}

// ResilienceArtifact runs the MTBF sweep at the monitored reference scale
// (n=96, 24 ranks, half-load one socket) and renders it as a report table
// — lsbench's -faults artifact. A positive mtbf narrows the sweep to that
// single point; otherwise the sweep brackets the fault-free makespan from
// crash-every-eighth to effectively-never. The checkpoint storage latency
// is scaled to the reference runs' millisecond makespans (the production
// default's 1 ms per snapshot would dwarf a 5 ms job).
func ResilienceArtifact(mtbf float64, seed int64) (*report.Table, error) {
	t, _, err := ResilienceArtifactStored(mtbf, seed, nil)
	return t, err
}

// ResilienceSweepStored derives the artifact's MTBF sweep points with
// store-backed memoization. The MTBF probe (the never-crash ScaLAPACK
// baseline that anchors the sweep) is itself a stored resilience run, so
// a warm store re-derives the exact same sweep points without executing
// any world. computed counts the resilient executions that actually ran.
func ResilienceSweepStored(mtbf float64, seed int64, est *store.Store) ([]ResiliencePoint, int, error) {
	e := Experiment{N: 96, Ranks: 24, Placement: cluster.HalfLoadOneSocket, Seed: 7, BlockSize: 8}
	ro := ResilienceOptions{Seed: seed,
		Storage: ckpt.CostModel{BandwidthBps: 2e9, LatencyS: 1e-6}}
	computed := 0
	var mtbfs []float64
	if mtbf > 0 {
		mtbfs = []float64{mtbf}
	} else {
		es := e
		es.Algorithm = perfmodel.ScaLAPACK
		probe, ran, err := RunResilientStored(es, ResilienceOptions{MTBF: neverMTBF, Seed: seed, Storage: ro.Storage}, est)
		if err != nil {
			return nil, 0, err
		}
		if ran {
			computed++
		}
		base := probe.BaselineDurationS
		mtbfs = []float64{base / 8, base / 4, base, 4 * base, neverMTBF}
	}
	pts, ran, err := ResilienceStudyStored(e, mtbfs, ro, est)
	computed += ran
	return pts, computed, err
}

// ResilienceArtifactStored is ResilienceArtifact with store-backed
// memoization; computed counts the resilient executions that ran.
func ResilienceArtifactStored(mtbf float64, seed int64, est *store.Store) (*report.Table, int, error) {
	pts, computed, err := ResilienceSweepStored(mtbf, seed, est)
	if err != nil {
		return nil, computed, err
	}
	title := "Recovery energy vs MTBF (n=96, 24 ranks, seed-driven crash schedule)"
	if lo, hi, ok := CrossoverMTBF(pts); ok {
		title += fmt.Sprintf(" — winner flips between MTBF %.3g s and %.3g s", lo, hi)
	}
	t := &report.Table{
		Title: title,
		Headers: []string{"mtbf_s", "crashes", "ime_total_j", "ime_recovery_j",
			"scalapack_total_j", "scalapack_recovery_j", "restarts", "ckpt_writes", "winner"},
	}
	for _, p := range pts {
		t.Add(p.MTBF, p.IMe.Crashes, p.IMe.TotalJ, p.IMe.RecoveryJ,
			p.ScaLAPACK.TotalJ, p.ScaLAPACK.RecoveryJ, p.ScaLAPACK.Restarts,
			p.ScaLAPACK.CheckpointWrites, p.Winner().String())
	}
	return t, computed, nil
}

// neverMTBF stands in for "no crashes" in sweeps and artifacts: far
// beyond any reference-scale makespan.
const neverMTBF = 1e9

// WriteResilienceTable renders the sweep as the EXPERIMENTS.md-style
// recovery-energy table.
func WriteResilienceTable(w io.Writer, pts []ResiliencePoint) error {
	if _, err := fmt.Fprintf(w, "| MTBF (s) | crashes | IMe total (J) | IMe recovery (J) | ScaLAPACK total (J) | ScaLAPACK recovery (J) | restarts | winner |\n|---:|---:|---:|---:|---:|---:|---:|:---|\n"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "| %.4g | %d | %.6g | %.4g | %.6g | %.4g | %d | %s |\n",
			p.MTBF, p.IMe.Crashes, p.IMe.TotalJ, p.IMe.RecoveryJ,
			p.ScaLAPACK.TotalJ, p.ScaLAPACK.RecoveryJ, p.ScaLAPACK.Restarts,
			p.Winner()); err != nil {
			return err
		}
	}
	return nil
}
