package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/perfmodel"
	"repro/internal/rapl"
	"repro/internal/store"
)

// Store-backed execution: every engine gains a *Stored variant that
// consults the content-addressed experiment store before computing — a
// hit reconstructs the result from the persisted record (byte-identical
// downstream: float64 JSON round-trips exactly and the Config is
// re-derived from the experiment), a miss computes and appends. The
// typed identities live here, next to the engines that define what makes
// two runs "the same experiment"; internal/store stays generic.

// Record kinds written by this package.
const (
	// CellKind records one grid-cell Measurement (analytic or monitored).
	CellKind = "cell"
	// ResilienceKind records one RunResilient outcome.
	ResilienceKind = "resilience"
)

// MonitoredEngineVersion stamps the simulated-MPI execution semantics —
// solver numerics, the monitoring framework's accounting, and the
// RAPL/power simulation the monitored engine integrates energy with.
// Bump it whenever a monitored run's outputs change for an identical
// Experiment, so stored monitored cells are never served stale.
const MonitoredEngineVersion = "simulated-mpi/v1"

// ResilienceEngineVersion stamps RunResilient's semantics: the crash
// scheduling, both recovery mechanisms, and the charging rules. It
// extends MonitoredEngineVersion (which covers the underlying solver
// worlds) rather than replacing it.
const ResilienceEngineVersion = "resilience/v1"

// CellIdentity is the canonical store identity of one experiment cell.
// It is what "the same experiment" means persistently: engine, cell
// coordinates, and — per engine — either the full versioned analytic
// model identity or the monitored engine's inputs and version. Fields
// irrelevant to an engine are omitted so spelling variants collapse (an
// analytic run ignores the input seed; keying on it would split one
// experiment across many records).
type CellIdentity struct {
	Schema    int    `json:"schema"`
	Kind      string `json:"kind"`
	Engine    string `json:"engine"`
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	Ranks     int    `json:"ranks"`
	Placement string `json:"placement"`
	// Seed, Phase, BlockSize and EngineVersion identify monitored runs
	// (the analytic engine folds BlockSize into Model.Params).
	Seed          int64  `json:"seed,omitempty"`
	Phase         string `json:"phase,omitempty"`
	BlockSize     int    `json:"block_size,omitempty"`
	EngineVersion string `json:"engine_version,omitempty"`
	// Model is the versioned analytic identity (analytic cells only).
	Model *perfmodel.CanonicalIdentity `json:"model,omitempty"`
}

// CellResult is the persisted payload of one Measurement. EnergyJ is
// keyed by RAPL domain name (JSON object keys sort deterministically).
type CellResult struct {
	DurationS float64            `json:"duration_s"`
	EnergyJ   map[string]float64 `json:"energy_j"`
	TotalJ    float64            `json:"total_j"`
	Residual  float64            `json:"residual,omitempty"`
	Engine    string             `json:"engine"`
}

// AnalyticCellIdentity returns the store identity of RunAnalytic(e, prm).
// It mirrors RunAnalytic's parameter resolution exactly: the experiment's
// BlockSize override is folded into the params before normalization, so
// Experiment{BlockSize: 64} and Params{BlockSize: 64} are one key.
func AnalyticCellIdentity(e Experiment, prm perfmodel.Params) CellIdentity {
	if e.BlockSize > 0 {
		prm.BlockSize = e.BlockSize
	}
	model := prm.CanonicalIdentity()
	return CellIdentity{
		Schema:    store.SchemaVersion,
		Kind:      CellKind,
		Engine:    "analytic",
		Algorithm: e.Algorithm.String(),
		N:         e.N,
		Ranks:     e.Ranks,
		Placement: e.Placement.String(),
		Model:     &model,
	}
}

// MonitoredCellIdentity returns the store identity of RunMonitored(e).
func MonitoredCellIdentity(e Experiment) CellIdentity {
	return CellIdentity{
		Schema:        store.SchemaVersion,
		Kind:          CellKind,
		Engine:        "monitored",
		Algorithm:     e.Algorithm.String(),
		N:             e.N,
		Ranks:         e.Ranks,
		Placement:     e.Placement.String(),
		Seed:          e.Seed,
		Phase:         e.Phase.String(),
		BlockSize:     e.BlockSize,
		EngineVersion: MonitoredEngineVersion,
	}
}

// cellResultOf converts a Measurement into its persisted payload.
func cellResultOf(m Measurement) CellResult {
	res := CellResult{
		DurationS: m.DurationS,
		EnergyJ:   make(map[string]float64, len(m.EnergyJ)),
		TotalJ:    m.TotalJ,
		Residual:  m.Residual,
		Engine:    m.Engine,
	}
	for d, j := range m.EnergyJ {
		res.EnergyJ[d.String()] = j
	}
	return res
}

// CellMeasurement reconstructs the Measurement a stored cell recorded,
// re-deriving the cluster Config from the experiment. The reconstruction
// is exact: every persisted number is a float64 that JSON round-trips
// bit-for-bit, so downstream tables and response bodies are
// byte-identical to the originally computed ones.
func CellMeasurement(e Experiment, res CellResult) (Measurement, error) {
	cfg, err := e.resolveConfig(cluster.MarconiA3())
	if err != nil {
		return Measurement{}, err
	}
	m := Measurement{
		Experiment: e,
		Config:     cfg,
		DurationS:  res.DurationS,
		TotalJ:     res.TotalJ,
		EnergyJ:    make(map[rapl.Domain]float64, len(res.EnergyJ)),
		Residual:   res.Residual,
		Engine:     res.Engine,
	}
	for _, d := range rapl.Domains() {
		if j, ok := res.EnergyJ[d.String()]; ok {
			m.EnergyJ[d] = j
		}
	}
	return m, nil
}

// DecodeCell unpacks a CellKind record. The server's warm-from-store
// path uses it to rebuild response bodies without recomputing.
func DecodeCell(rec store.Record) (CellIdentity, CellResult, error) {
	if rec.Kind != CellKind {
		return CellIdentity{}, CellResult{}, fmt.Errorf("core: record %.12s… has kind %q, want %q", rec.Key, rec.Kind, CellKind)
	}
	var id CellIdentity
	if err := json.Unmarshal(rec.Identity, &id); err != nil {
		return CellIdentity{}, CellResult{}, fmt.Errorf("core: decode cell identity: %w", err)
	}
	var res CellResult
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		return CellIdentity{}, CellResult{}, fmt.Errorf("core: decode cell result: %w", err)
	}
	return id, res, nil
}

// Experiment converts a decoded identity back into the experiment it
// keys, for consumers that enumerate store records rather than arriving
// with an Experiment in hand.
func (id CellIdentity) Experiment() (Experiment, error) {
	alg, err := perfmodel.ParseAlgorithm(id.Algorithm)
	if err != nil {
		return Experiment{}, err
	}
	pl, err := cluster.ParsePlacement(id.Placement)
	if err != nil {
		return Experiment{}, err
	}
	e := Experiment{Algorithm: alg, N: id.N, Ranks: id.Ranks, Placement: pl,
		Seed: id.Seed, BlockSize: id.BlockSize}
	if id.Phase == PhaseCompute.String() {
		e.Phase = PhaseCompute
	}
	return e, nil
}

// LookupAnalyticCell serves RunAnalytic(e, prm) from the store without
// ever computing; ok is false on a miss (or a nil store). Campaign
// budget gates and strict from-store artifact emission build on it.
func LookupAnalyticCell(st *store.Store, e Experiment, prm perfmodel.Params) (Measurement, bool, error) {
	if st == nil {
		return Measurement{}, false, nil
	}
	return lookupCell(st, AnalyticCellIdentity(e, prm), e)
}

// LookupMonitoredCell serves RunMonitored(e) from the store without
// executing; ok is false on a miss (or a nil store).
func LookupMonitoredCell(st *store.Store, e Experiment) (Measurement, bool, error) {
	if st == nil {
		return Measurement{}, false, nil
	}
	return lookupCell(st, MonitoredCellIdentity(e), e)
}

// lookupCell serves a cell from the store; ok is false on a miss. The
// caller arrives with the identity in hand, so only the result payload
// is decoded — this is the hot path of every warm run.
func lookupCell(st *store.Store, id CellIdentity, e Experiment) (Measurement, bool, error) {
	key, _, err := store.KeyFor(id)
	if err != nil {
		return Measurement{}, false, err
	}
	rec, ok, err := st.Get(key)
	if err != nil || !ok {
		return Measurement{}, false, err
	}
	if rec.Kind != CellKind {
		return Measurement{}, false, fmt.Errorf("core: record %.12s… has kind %q, want %q", rec.Key, rec.Kind, CellKind)
	}
	var res CellResult
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		return Measurement{}, false, fmt.Errorf("core: decode cell result: %w", err)
	}
	m, err := CellMeasurement(e, res)
	if err != nil {
		return Measurement{}, false, err
	}
	return m, true, nil
}

// appendCell persists a computed measurement under its identity.
func appendCell(st *store.Store, id CellIdentity, m Measurement) error {
	rec, err := store.NewRecord(CellKind, id, cellResultOf(m))
	if err != nil {
		return err
	}
	_, err = st.Append(rec)
	return err
}

// RunAnalyticStored is RunAnalytic with store-backed memoization: a hit
// skips the model entirely, a miss computes and appends. computed
// reports whether the model actually ran. A nil store degrades to plain
// RunAnalytic.
func RunAnalyticStored(e Experiment, prm perfmodel.Params, st *store.Store) (m Measurement, computed bool, err error) {
	if st == nil {
		m, err = RunAnalytic(e, prm)
		return m, true, err
	}
	id := AnalyticCellIdentity(e, prm)
	if m, ok, err := lookupCell(st, id, e); err != nil || ok {
		return m, false, err
	}
	m, err = RunAnalytic(e, prm)
	if err != nil {
		return Measurement{}, true, err
	}
	return m, true, appendCell(st, id, m)
}

// RunMonitoredStored is RunMonitored with store-backed memoization.
func RunMonitoredStored(e Experiment, st *store.Store) (m Measurement, computed bool, err error) {
	if st == nil {
		m, err = RunMonitored(e)
		return m, true, err
	}
	id := MonitoredCellIdentity(e)
	if m, ok, err := lookupCell(st, id, e); err != nil || ok {
		return m, false, err
	}
	m, err = RunMonitored(e)
	if err != nil {
		return Measurement{}, true, err
	}
	return m, true, appendCell(st, id, m)
}

// ResilienceIdentity is the canonical store identity of one RunResilient
// execution: the experiment, the full fault schedule parameterisation
// (MTBF, crash seed, bounds), the checkpoint plan, and the engine
// versions whose semantics the outcome depends on. Defaults are resolved
// before keying so spelling variants collapse.
type ResilienceIdentity struct {
	Schema        int     `json:"schema"`
	Kind          string  `json:"kind"`
	EngineVersion string  `json:"engine_version"`
	Monitored     string  `json:"monitored_version"`
	Algorithm     string  `json:"algorithm"`
	N             int     `json:"n"`
	Ranks         int     `json:"ranks"`
	Placement     string  `json:"placement"`
	InputSeed     int64   `json:"input_seed"`
	BlockSize     int     `json:"block_size,omitempty"`
	MTBF          float64 `json:"mtbf_s"`
	FaultSeed     int64   `json:"fault_seed"`
	MaxCrashes    int     `json:"max_crashes,omitempty"`
	CheckpointEvery int   `json:"checkpoint_every"`
	DetectS       float64 `json:"detect_s,omitempty"`
	StorageBps    float64 `json:"storage_bandwidth_bps"`
	StorageLatS   float64 `json:"storage_latency_s"`
}

// resilienceIdentityOf mirrors RunResilient's default resolution.
func resilienceIdentityOf(e Experiment, ro ResilienceOptions) ResilienceIdentity {
	if ro.CheckpointEvery <= 0 {
		ro.CheckpointEvery = 2
	}
	if ro.Storage == (ckpt.CostModel{}) {
		ro.Storage = ckpt.DefaultCostModel()
	}
	return ResilienceIdentity{
		Schema:          store.SchemaVersion,
		Kind:            ResilienceKind,
		EngineVersion:   ResilienceEngineVersion,
		Monitored:       MonitoredEngineVersion,
		Algorithm:       e.Algorithm.String(),
		N:               e.N,
		Ranks:           e.Ranks,
		Placement:       e.Placement.String(),
		InputSeed:       e.Seed,
		BlockSize:       e.BlockSize,
		MTBF:            ro.MTBF,
		FaultSeed:       ro.Seed,
		MaxCrashes:      ro.MaxCrashes,
		CheckpointEvery: ro.CheckpointEvery,
		DetectS:         ro.Detect,
		StorageBps:      ro.Storage.BandwidthBps,
		StorageLatS:     ro.Storage.LatencyS,
	}
}

// resilienceResult is the persisted payload of one ResilientMeasurement
// (the Experiment is carried by the identity, not the payload).
type resilienceResult struct {
	BaselineDurationS float64 `json:"baseline_duration_s"`
	BaselineJ         float64 `json:"baseline_j"`
	DurationS         float64 `json:"duration_s"`
	TotalJ            float64 `json:"total_j"`
	Crashes           int     `json:"crashes"`
	Recoveries        int     `json:"recoveries"`
	Restarts          int     `json:"restarts"`
	CheckpointWrites  int     `json:"checkpoint_writes"`
	RecoveryJ         float64 `json:"recovery_j"`
	MaxRelDiff        float64 `json:"max_rel_diff"`
	Residual          float64 `json:"residual"`
}

// RunResilientStored is RunResilient with store-backed memoization —
// the expensive tier of the paper campaign (each run executes multiple
// solver worlds), and therefore the tier where memoization pays most.
func RunResilientStored(e Experiment, ro ResilienceOptions, st *store.Store) (rm ResilientMeasurement, computed bool, err error) {
	if st == nil {
		rm, err = RunResilient(e, ro)
		return rm, true, err
	}
	id := resilienceIdentityOf(e, ro)
	key, _, err := store.KeyFor(id)
	if err != nil {
		return ResilientMeasurement{}, false, err
	}
	if rec, ok, err := st.Get(key); err != nil {
		return ResilientMeasurement{}, false, err
	} else if ok {
		var res resilienceResult
		if err := json.Unmarshal(rec.Result, &res); err != nil {
			return ResilientMeasurement{}, false, fmt.Errorf("core: decode resilience result: %w", err)
		}
		return ResilientMeasurement{
			Experiment:        e,
			MTBF:              ro.MTBF,
			BaselineDurationS: res.BaselineDurationS,
			BaselineJ:         res.BaselineJ,
			DurationS:         res.DurationS,
			TotalJ:            res.TotalJ,
			Crashes:           res.Crashes,
			Recoveries:        res.Recoveries,
			Restarts:          res.Restarts,
			CheckpointWrites:  res.CheckpointWrites,
			RecoveryJ:         res.RecoveryJ,
			MaxRelDiff:        res.MaxRelDiff,
			Residual:          res.Residual,
		}, false, nil
	}
	rm, err = RunResilient(e, ro)
	if err != nil {
		return ResilientMeasurement{}, true, err
	}
	rec, err := store.NewRecord(ResilienceKind, id, resilienceResult{
		BaselineDurationS: rm.BaselineDurationS,
		BaselineJ:         rm.BaselineJ,
		DurationS:         rm.DurationS,
		TotalJ:            rm.TotalJ,
		Crashes:           rm.Crashes,
		Recoveries:        rm.Recoveries,
		Restarts:          rm.Restarts,
		CheckpointWrites:  rm.CheckpointWrites,
		RecoveryJ:         rm.RecoveryJ,
		MaxRelDiff:        rm.MaxRelDiff,
		Residual:          rm.Residual,
	})
	if err != nil {
		return rm, true, err
	}
	_, err = st.Append(rec)
	return rm, true, err
}

// ResilienceStudyStored is ResilienceStudy with store-backed memoization;
// computed counts the runs that actually executed.
func ResilienceStudyStored(e Experiment, mtbfs []float64, ro ResilienceOptions, st *store.Store) ([]ResiliencePoint, int, error) {
	computed := 0
	pts := make([]ResiliencePoint, 0, len(mtbfs))
	for _, mtbf := range mtbfs {
		o := ro
		o.MTBF = mtbf
		pt := ResiliencePoint{MTBF: mtbf}
		var err error
		var ran bool
		ei := e
		ei.Algorithm = perfmodel.IMe
		if pt.IMe, ran, err = RunResilientStored(ei, o, st); err != nil {
			return nil, computed, fmt.Errorf("core: resilience study, ime at mtbf %g: %w", mtbf, err)
		} else if ran {
			computed++
		}
		es := e
		es.Algorithm = perfmodel.ScaLAPACK
		if pt.ScaLAPACK, ran, err = RunResilientStored(es, o, st); err != nil {
			return nil, computed, fmt.Errorf("core: resilience study, scalapack at mtbf %g: %w", mtbf, err)
		} else if ran {
			computed++
		}
		pts = append(pts, pt)
	}
	return pts, computed, nil
}

// RunRepeatedAnalyticStored is RunRepeatedAnalytic with each repetition
// memoized as its own cell (repetitions differ only in their noise seed,
// which is part of the analytic identity).
func RunRepeatedAnalyticStored(e Experiment, prm perfmodel.Params, reps int, variability float64, st *store.Store) (RepStats, int, error) {
	if st == nil {
		stats, err := RunRepeatedAnalytic(e, prm, reps, variability)
		return stats, reps, err
	}
	computed := 0
	stats := RepStats{Experiment: e, Reps: reps}
	if reps <= 0 {
		return RepStats{}, 0, fmt.Errorf("core: repetition count %d must be positive", reps)
	}
	first := true
	for r := 0; r < reps; r++ {
		p := prm
		p.NodeVariability = variability
		p.NoiseSeed = int64(r + 1)
		m, ran, err := RunAnalyticStored(e, p, st)
		if err != nil {
			return RepStats{}, computed, err
		}
		if ran {
			computed++
		}
		stats.MeanDurationS += m.DurationS / float64(reps)
		stats.MeanJ += m.TotalJ / float64(reps)
		if first || m.DurationS < stats.MinDurationS {
			stats.MinDurationS = m.DurationS
		}
		if m.DurationS > stats.MaxDurationS {
			stats.MaxDurationS = m.DurationS
		}
		if first || m.TotalJ < stats.MinJ {
			stats.MinJ = m.TotalJ
		}
		if m.TotalJ > stats.MaxJ {
			stats.MaxJ = m.TotalJ
		}
		first = false
	}
	return stats, computed, nil
}

// RecommendStored is Recommend with store-backed memoization of the two
// solver cells; computed counts the evaluations that ran (0, 1 or 2).
// The verdict goes through Rank, the same single ranking function the
// compute path uses, so a store-served recommendation can never differ
// from a freshly computed one.
func RecommendStored(n, ranks int, placement cluster.Placement, objective Objective, prm perfmodel.Params, est *store.Store) (Recommendation, int, error) {
	computed := 0
	imeM, ran, err := RunAnalyticStored(Experiment{
		Algorithm: perfmodel.IMe, N: n, Ranks: ranks, Placement: placement,
	}, prm, est)
	if err != nil {
		return Recommendation{Objective: objective}, computed, err
	}
	if ran {
		computed++
	}
	geM, ran, err := RunAnalyticStored(Experiment{
		Algorithm: perfmodel.ScaLAPACK, N: n, Ranks: ranks, Placement: placement,
	}, prm, est)
	if err != nil {
		return Recommendation{Objective: objective}, computed, err
	}
	if ran {
		computed++
	}
	rec, err := Rank(imeM, geM, objective)
	return rec, computed, err
}
