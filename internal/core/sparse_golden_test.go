package core_test

// Golden pinning of the sparse advisor's device verdicts across the
// sparse grid, mirroring advisor_golden_test.go: every matrix recipe ×
// algorithm under all three objectives at the serving default. The grid
// must exhibit both verdicts — at least one cell each for the
// accelerated and the CPU-only placement — or the device axis carries no
// information and the advisor extension is vacuous.
//
// Regenerate with:
//
//	go test ./internal/core -run TestSparseAdvisorGolden -update-goldens
//
// against a known-good model, never together with a model change.

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sparse"
)

type sparseAdvisorGoldenRow struct {
	Algorithm string  `json:"algorithm"`
	Matrix    string  `json:"matrix"`
	N         int     `json:"n"`
	Band      int     `json:"band,omitempty"`
	Density   float64 `json:"density,omitempty"`
	Cond      float64 `json:"cond"`
	Objective string  `json:"objective"`
	Best      string  `json:"best"`
	Margin    float64 `json:"margin"`
}

const sparseAdvisorGoldenPath = "testdata/sparse_advisor_golden.json"

func computeSparseAdvisorGolden(t *testing.T) []sparseAdvisorGoldenRow {
	t.Helper()
	prm := perfmodel.Params{}
	var rows []sparseAdvisorGoldenRow
	for _, spec := range core.SparseSweepSpecs() {
		for _, a := range sparse.Algorithms() {
			for _, obj := range core.Objectives() {
				rec, err := core.RecommendSparse(a, spec, core.SparseSweepRanks, cluster.FullLoad, obj, prm)
				if err != nil {
					t.Fatalf("RecommendSparse(%v, %s, %v): %v", a, spec.Label(), obj, err)
				}
				rows = append(rows, sparseAdvisorGoldenRow{
					Algorithm: a.String(), Matrix: spec.Kind.String(), N: spec.N,
					Band: spec.Band, Density: spec.Density, Cond: spec.Cond,
					Objective: obj.String(), Best: rec.Best.String(), Margin: rec.Margin,
				})
			}
		}
	}
	return rows
}

func TestSparseAdvisorGolden(t *testing.T) {
	got := computeSparseAdvisorGolden(t)
	seen := map[string]bool{}
	for _, r := range got {
		seen[r.Best] = true
	}
	if !seen[cluster.DeviceCPU.String()] || !seen[cluster.DeviceAccel.String()] {
		t.Fatalf("sparse grid verdicts are one-sided (%v): the device axis carries no information", seen)
	}
	if *updateGoldens {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sparseAdvisorGoldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d rows to %s", len(got), sparseAdvisorGoldenPath)
		return
	}
	b, err := os.ReadFile(sparseAdvisorGoldenPath)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update-goldens): %v", err)
	}
	var want []sparseAdvisorGoldenRow
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("grid has %d verdicts, golden has %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Algorithm != w.Algorithm || g.Matrix != w.Matrix || g.N != w.N ||
			g.Cond != w.Cond || g.Objective != w.Objective {
			t.Fatalf("row %d is %+v, golden is %+v: grid enumeration changed", i, g, w)
		}
		if g.Best != w.Best {
			t.Errorf("%s %s n=%d cond=%g %s: recommends %s, golden %s (margin %.4f vs %.4f)",
				g.Algorithm, g.Matrix, g.N, g.Cond, g.Objective, g.Best, w.Best, g.Margin, w.Margin)
			continue
		}
		if diff := math.Abs(g.Margin - w.Margin); diff > marginTol*math.Max(math.Abs(w.Margin), 1) {
			t.Errorf("%s %s n=%d cond=%g %s: margin %.17g, golden %.17g",
				g.Algorithm, g.Matrix, g.N, g.Cond, g.Objective, g.Margin, w.Margin)
		}
	}
}
