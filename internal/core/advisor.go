package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/perfmodel"
)

// The advisor is the paper's motivating use case made executable: "Being
// aware of these results, programmers could take informed decisions to
// augment the energy efficiency of linear systems resolutions" (§1). Given
// a job shape, it models both solvers and recommends one under a chosen
// objective.

// Objective selects what the advisor optimises.
type Objective int

const (
	// MinEnergy picks the lower total energy (the green choice).
	MinEnergy Objective = iota
	// MinTime picks the shorter duration.
	MinTime
	// MaxEfficiency picks the higher flops-per-watt (the Green500 metric).
	MaxEfficiency
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MinEnergy:
		return "min-energy"
	case MinTime:
		return "min-time"
	case MaxEfficiency:
		return "max-gflops-per-watt"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Objectives lists all advisor objectives.
func Objectives() []Objective {
	return []Objective{MinEnergy, MinTime, MaxEfficiency}
}

// ParseObjective is the inverse of Objective.String, for request-driven
// callers (the advisor service) that receive objectives as text.
func ParseObjective(s string) (Objective, error) {
	for _, o := range Objectives() {
		if s == o.String() {
			return o, nil
		}
	}
	return 0, fmt.Errorf("core: unknown objective %q (want min-energy, min-time or max-gflops-per-watt)", s)
}

// Recommendation is the advisor's verdict for one job shape.
type Recommendation struct {
	Objective Objective
	Best      perfmodel.Algorithm
	IMe       Measurement
	ScaLAPACK Measurement
	// Margin is how much better the winner is on the objective metric
	// (e.g. 0.35 = 35% less energy / less time / more efficiency).
	Margin float64
}

// Recommend models both solvers for the job shape and picks a winner.
func Recommend(n, ranks int, placement cluster.Placement, objective Objective, prm perfmodel.Params) (Recommendation, error) {
	imeM, err := RunAnalytic(Experiment{
		Algorithm: perfmodel.IMe, N: n, Ranks: ranks, Placement: placement,
	}, prm)
	if err != nil {
		return Recommendation{Objective: objective}, err
	}
	geM, err := RunAnalytic(Experiment{
		Algorithm: perfmodel.ScaLAPACK, N: n, Ranks: ranks, Placement: placement,
	}, prm)
	if err != nil {
		return Recommendation{Objective: objective}, err
	}
	return Rank(imeM, geM, objective)
}

// Rank picks the winner between two measurements of the same job shape —
// one per solver — under the objective. Both the analytic path
// (Recommend) and the learned-surrogate serving path rank through this
// single function, so a fast path can never apply different verdict
// logic, only different measurements.
func Rank(imeM, geM Measurement, objective Objective) (Recommendation, error) {
	rec := Recommendation{Objective: objective, IMe: imeM, ScaLAPACK: geM}
	var ime, ge float64
	switch objective {
	case MinEnergy:
		ime, ge = rec.IMe.TotalJ, rec.ScaLAPACK.TotalJ
	case MinTime:
		ime, ge = rec.IMe.DurationS, rec.ScaLAPACK.DurationS
	case MaxEfficiency:
		// Invert so "smaller wins" below.
		ime, ge = 1/rec.IMe.GFlopsPerWatt(), 1/rec.ScaLAPACK.GFlopsPerWatt()
	default:
		return rec, fmt.Errorf("core: unknown objective %v", objective)
	}
	if ime < ge {
		rec.Best = perfmodel.IMe
		rec.Margin = 1 - ime/ge
	} else {
		rec.Best = perfmodel.ScaLAPACK
		rec.Margin = 1 - ge/ime
	}
	return rec, nil
}
