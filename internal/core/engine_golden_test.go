package core_test

// Golden pinning of the executable simulated-MPI engine. The sparse-
// matching/tree-barrier engine rework must preserve every deterministic
// output bit-for-bit: virtual clocks (built from per-rank advances and
// max-merges), message traffic (integers), and the distributed numerics.
// Model energies accumulate across rank goroutines in scheduling order, so
// they are pinned to a tight relative tolerance instead of exactly.
//
// Regenerate the goldens with:
//
//	go test ./internal/core -run TestEngineGolden -update-goldens
//
// against a known-good engine, and never together with an engine change.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ime"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/rapl"
	"repro/internal/scalapack"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/engine_golden.json from the current engine")

// goldenRow is one scenario's pinned outputs. Zero-valued fields are
// omitted from the JSON and skipped on comparison.
type goldenRow struct {
	MaxClock  float64 `json:"max_clock,omitempty"`
	Messages  int64   `json:"messages,omitempty"`
	Volume    int64   `json:"volume,omitempty"`
	XSum      float64 `json:"x_sum,omitempty"`
	X0        float64 `json:"x0,omitempty"`
	DurationS float64 `json:"duration_s,omitempty"`
	Residual  float64 `json:"residual,omitempty"`
	TotalJ    float64 `json:"total_j,omitempty"`
	Node0PkgJ float64 `json:"node0_pkg_j,omitempty"`
}

// energyTol is the relative tolerance for pinned energies: the additive
// power model is deterministic, but busy-second accumulation order across
// rank goroutines varies run to run at float-rounding level.
const energyTol = 1e-9

const goldenPath = "testdata/engine_golden.json"

// solveWorld runs one distributed solve on a fresh world and returns the
// pinned outputs.
func solveWorld(t *testing.T, ranks, n int, seed int64, run func(p *mpi.Proc, sys *mat.System) ([]float64, error)) goldenRow {
	t.Helper()
	sys := mat.NewRandomSystem(n, seed)
	w, err := mpi.NewWorld(ranks, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var x []float64
	err = w.Run(func(p *mpi.Proc) error {
		got, err := run(p, sys)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			mu.Lock()
			x = got
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	msgs, vol := w.Traffic()
	node := w.Nodes()[0]
	return goldenRow{
		MaxClock:  w.MaxClock(),
		Messages:  msgs,
		Volume:    vol,
		XSum:      sum,
		X0:        x[0],
		Node0PkgJ: node.ExactEnergy(rapl.PKG0) + node.ExactEnergy(rapl.PKG1),
	}
}

// engineGoldens computes every pinned scenario on the current engine.
func engineGoldens(t *testing.T) map[string]goldenRow {
	t.Helper()
	rows := map[string]goldenRow{}

	rows["ime-sync-n96-r8"] = solveWorld(t, 8, 96, 42, func(p *mpi.Proc, sys *mat.System) ([]float64, error) {
		return ime.SolveParallel(p, p.World(), sys, ime.ParallelOptions{ChargeCosts: true})
	})
	// The overlapped variant leans on out-of-tag-order lookahead, pinning
	// the unexpected-message stash semantics.
	rows["ime-overlap-n120-r6"] = solveWorld(t, 6, 120, 7, func(p *mpi.Proc, sys *mat.System) ([]float64, error) {
		return ime.SolveParallel(p, p.World(), sys, ime.ParallelOptions{ChargeCosts: true, Overlap: true})
	})
	rows["scalapack-n96-r8-nb16"] = solveWorld(t, 8, 96, 43, func(p *mpi.Proc, sys *mat.System) ([]float64, error) {
		return scalapack.Pdgesv(p, p.World(), sys, scalapack.ParallelOptions{BlockSize: 16, ChargeCosts: true})
	})

	// A monitored experiment exercises comm splits, node barriers and the
	// PAPI/RAPL read path end to end.
	m, err := core.RunMonitored(core.Experiment{
		Algorithm: perfmodel.IMe,
		N:         96,
		Ranks:     24,
		Placement: cluster.HalfLoadTwoSockets,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows["monitored-ime-n96-r24"] = goldenRow{
		DurationS: m.DurationS,
		Residual:  m.Residual,
		TotalJ:    m.TotalJ,
	}
	return rows
}

func TestEngineGolden(t *testing.T) {
	got := engineGoldens(t)
	if *updateGoldens {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing goldens (run with -update-goldens on a known-good engine): %v", err)
	}
	var want map[string]goldenRow
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("scenario %s missing from harness", name)
			continue
		}
		exact := func(field string, gv, wv float64) {
			if gv != wv {
				t.Errorf("%s: %s = %v, golden %v (must be bit-identical)", name, field, gv, wv)
			}
		}
		exact("max_clock", g.MaxClock, w.MaxClock)
		exact("messages", float64(g.Messages), float64(w.Messages))
		exact("volume", float64(g.Volume), float64(w.Volume))
		exact("x_sum", g.XSum, w.XSum)
		exact("x0", g.X0, w.X0)
		exact("duration_s", g.DurationS, w.DurationS)
		exact("residual", g.Residual, w.Residual)
		within := func(field string, gv, wv float64) {
			if wv == 0 {
				exact(field, gv, wv)
				return
			}
			if r := math.Abs(gv-wv) / math.Abs(wv); r > energyTol {
				t.Errorf("%s: %s = %v, golden %v (relative error %g > %g)", name, field, gv, wv, r, energyTol)
			}
		}
		within("total_j", g.TotalJ, w.TotalJ)
		within("node0_pkg_j", g.Node0PkgJ, w.Node0PkgJ)
	}
	if len(got) != len(want) {
		t.Errorf("harness has %d scenarios, goldens %d", len(got), len(want))
	}
	_ = fmt.Sprintf // keep fmt for future debugging aids
}
