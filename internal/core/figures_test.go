package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/perfmodel"
)

func newSweep(t *testing.T) *Sweep {
	t.Helper()
	s, err := NewSweep(perfmodel.Params{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSweepCoversFullGrid(t *testing.T) {
	s := newSweep(t)
	want := 4 * 3 * 3 * 2
	if len(s.Measurements) != want {
		t.Fatalf("sweep has %d cells, want %d", len(s.Measurements), want)
	}
	if _, err := s.Get(perfmodel.IMe, 8640, 144, cluster.FullLoad); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(perfmodel.IMe, 1, 1, cluster.FullLoad); err == nil {
		t.Fatal("missing cell lookup did not error")
	}
}

func TestTable1Rendering(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("Table 1 has %d rows, want 9", len(tab.Rows))
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"144", "576", "1296", "48", "27"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered Table 1 missing %q", want)
		}
	}
}

func TestFigureTablesComplete(t *testing.T) {
	s := newSweep(t)
	cases := map[string]struct {
		rows int
		tab  interface {
			Render(w *bytes.Buffer) error
		}
	}{}
	_ = cases
	f3 := s.Figure3()
	if len(f3.Rows) != 2*4*3 {
		t.Errorf("figure 3 has %d rows", len(f3.Rows))
	}
	f4 := s.Figure4()
	if len(f4.Rows) != 3*4 {
		t.Errorf("figure 4 has %d rows", len(f4.Rows))
	}
	f5 := s.Figure5()
	if len(f5.Rows) != 4*3 {
		t.Errorf("figure 5 has %d rows", len(f5.Rows))
	}
	f6 := s.Figure6()
	if len(f6.Rows) != 3*4 {
		t.Errorf("figure 6 has %d rows", len(f6.Rows))
	}
	f7 := s.Figure7()
	if len(f7.Rows) != 4*3 {
		t.Errorf("figure 7 has %d rows", len(f7.Rows))
	}
	// Figure 5 winner column must include both algorithms (the crossover).
	var buf bytes.Buffer
	if err := f5.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "IMe") || !strings.Contains(out, "ScaLAPACK") {
		t.Fatal("figure 5 lost its crossover")
	}
}

func TestSocketBreakdownTable(t *testing.T) {
	s := newSweep(t)
	tab, err := s.SocketBreakdown(17280, 144)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("socket table has %d rows, want 6", len(tab.Rows))
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "half-load-1-socket") {
		t.Fatal("placement names missing")
	}
	if _, err := s.SocketBreakdown(5, 7); err == nil {
		t.Fatal("invalid cell accepted")
	}
}

func TestDurationBreakdown(t *testing.T) {
	tab, err := DurationBreakdown(perfmodel.Params{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("%d rows, want 12", len(tab.Rows))
	}
	// The crossover mechanism: at every cell ScaLAPACK's exposed-comm
	// share (col 7) must exceed IMe's (col 4) — pivoting cannot hide.
	for _, row := range tab.Rows {
		var imePct, gePct float64
		if _, err := fmt.Sscanf(row[4], "%g", &imePct); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscanf(row[7], "%g", &gePct); err != nil {
			t.Fatal(err)
		}
		if gePct <= imePct {
			t.Errorf("n=%s ranks=%s: ScaLAPACK comm share %.1f%% not above IMe %.1f%%",
				row[0], row[1], gePct, imePct)
		}
	}
}

func TestSlurmLeakStudy(t *testing.T) {
	tab, err := SlurmLeakStudy(perfmodel.ScaLAPACK, 17280, 144,
		[]float64{0, 0.25, 0.5}, perfmodel.Params{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tab.Rows))
	}
	// The pkg1/pkg0 ratio must rise monotonically with the leak fraction.
	var prev float64 = -1
	for _, row := range tab.Rows {
		var ratio float64
		if _, err := fmt.Sscanf(row[4], "%g", &ratio); err != nil {
			t.Fatal(err)
		}
		if ratio <= prev {
			t.Fatalf("leak %s: pkg1/pkg0 %g not above previous %g", row[0], ratio, prev)
		}
		prev = ratio
	}
	if _, err := SlurmLeakStudy(perfmodel.IMe, 100, 7, []float64{0}, perfmodel.Params{}); err == nil {
		t.Fatal("invalid rank count accepted")
	}
}

func TestMessageAccountingTable(t *testing.T) {
	tab, err := MessageAccounting([][2]int{{24, 4}, {30, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(tab.Rows))
	}
	// Counted and closed-form columns must agree exactly.
	for _, row := range tab.Rows {
		if row[2] != row[3] {
			t.Errorf("message count %s != closed form %s", row[2], row[3])
		}
		if row[4] != row[5] {
			t.Errorf("volume %s != closed form %s", row[4], row[5])
		}
	}
}
