package core

import (
	"fmt"
	"sync"

	"repro/internal/ime"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/report"
	"repro/internal/scalapack"
)

// Ablation studies for the design choices DESIGN.md calls out, run on the
// exact engine so they measure the real distributed executions.

// AblationCase is one (order, rank count) point.
type AblationCase struct {
	N, Ranks int
}

// OverlapAblation compares the synchronous and overlapped IMe variants:
// same arithmetic, different communication schedule. The overlap is the
// mechanism behind IMe's strong scaling in the analytic model; this table
// shows it on real executions.
func OverlapAblation(cases []AblationCase) (*report.Table, error) {
	t := &report.Table{
		Title: "Ablation: IMe synchronous vs overlapped communication (exact engine)",
		Headers: []string{"n", "ranks",
			"sync s", "overlap s", "speedup", "sync msgs", "overlap msgs"},
	}
	for _, c := range cases {
		syncT, syncM, err := runIMeVariant(c, false)
		if err != nil {
			return nil, fmt.Errorf("core: ablation %+v sync: %w", c, err)
		}
		overT, overM, err := runIMeVariant(c, true)
		if err != nil {
			return nil, fmt.Errorf("core: ablation %+v overlap: %w", c, err)
		}
		t.Add(c.N, c.Ranks, syncT, overT, syncT/overT, syncM, overM)
	}
	return t, nil
}

func runIMeVariant(c AblationCase, overlap bool) (makespan float64, msgs int64, err error) {
	sys := mat.CachedSystem(c.N, int64(c.N))
	w, err := mpi.NewWorld(c.Ranks, mpi.Options{})
	if err != nil {
		return 0, 0, err
	}
	err = w.Run(func(p *mpi.Proc) error {
		_, err := ime.SolveParallel(p, p.World(), sys, ime.ParallelOptions{
			ChargeCosts: true, Overlap: overlap,
		})
		return err
	})
	if err != nil {
		return 0, 0, err
	}
	m, _ := w.Traffic()
	return w.MaxClock(), m, nil
}

// BlockSizeAblation sweeps ScaLAPACK's nb on the exact engine: small
// blocks expose more pivoting latency per column of panel, large blocks
// serialise more panel work — the classic pdgetrf trade-off.
func BlockSizeAblation(n, ranks int, blockSizes []int) (*report.Table, error) {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: ScaLAPACK block size nb, n=%d ranks=%d (exact engine)", n, ranks),
		Headers: []string{"nb", "makespan s", "messages", "volume"},
	}
	sys := mat.CachedSystem(n, int64(n))
	var mu sync.Mutex
	for _, nb := range blockSizes {
		w, err := mpi.NewWorld(ranks, mpi.Options{})
		if err != nil {
			return nil, err
		}
		err = w.Run(func(p *mpi.Proc) error {
			x, err := scalapack.Pdgesv(p, p.World(), sys, scalapack.ParallelOptions{
				BlockSize: nb, ChargeCosts: true,
			})
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				if rr := mat.RelativeResidual(sys.A, x, sys.B); rr > 1e-9 {
					mu.Lock()
					defer mu.Unlock()
					return fmt.Errorf("nb=%d: residual %g", nb, rr)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		msgs, vol := w.Traffic()
		t.Add(nb, w.MaxClock(), msgs, vol)
	}
	return t, nil
}
