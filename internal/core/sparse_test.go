package core

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/sparse"
)

func sparseTestExperiment(dev cluster.Device) SparseExperiment {
	return SparseExperiment{
		Algorithm: sparse.CG, Kind: sparse.Banded, N: 131072, Ranks: 144,
		Placement: cluster.FullLoad, Device: dev,
		Band: 256, Cond: 1e4, Seed: SparseSweepSeed,
	}
}

// TestSparseAnalyticStoredExactRoundTrip extends the byte-identity
// contract to sparse cells, including the accelerator energy domain,
// which lives outside rapl.Domains() and must still round-trip.
func TestSparseAnalyticStoredExactRoundTrip(t *testing.T) {
	for _, dev := range cluster.Devices() {
		st := openStore(t)
		e := sparseTestExperiment(dev)
		prm := perfmodel.Params{}

		cold, computed, err := RunSparseAnalyticStored(e, prm, st)
		if err != nil {
			t.Fatal(err)
		}
		if !computed {
			t.Fatal("first run on an empty store must compute")
		}
		direct, err := RunSparseAnalytic(e, prm)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, direct) {
			t.Fatalf("%s: stored cold run diverged from plain RunSparseAnalytic:\n got %+v\nwant %+v", dev, cold, direct)
		}
		warm, computed, err := RunSparseAnalyticStored(e, prm, st)
		if err != nil {
			t.Fatal(err)
		}
		if computed {
			t.Fatal("second run must hit the store")
		}
		if !reflect.DeepEqual(warm, cold) {
			t.Fatalf("%s: warm reconstruction diverged:\n got %+v\nwant %+v", dev, warm, cold)
		}
	}
}

// TestSparseIdentityRoundTrip pins that a decoded identity reconstructs
// the experiment that keyed it — what campaign artifact emission walks.
func TestSparseIdentityRoundTrip(t *testing.T) {
	e := sparseTestExperiment(cluster.DeviceAccel)
	id := SparseAnalyticCellIdentity(e, perfmodel.Params{})
	back, err := id.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	// The analytic identity deliberately drops the seed (the model never
	// reads it); everything else must survive.
	e.Seed = 0
	if back != e {
		t.Fatalf("identity round-trip: got %+v, want %+v", back, e)
	}
}

// TestSparseDeviceSplitsIdentity pins that the device axis keys separate
// cells — the advisor depends on both coexisting in one store.
func TestSparseDeviceSplitsIdentity(t *testing.T) {
	st := openStore(t)
	prm := perfmodel.Params{}
	for _, dev := range cluster.Devices() {
		if _, _, err := RunSparseAnalyticStored(sparseTestExperiment(dev), prm, st); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 2 {
		t.Fatalf("store holds %d records, want one per device (2)", st.Len())
	}
}

// TestSparseSweepDeterministicAcrossWorkers pins the -j byte-identity
// contract at the measurement level: serial cold, parallel cold, and
// parallel warm sweeps must agree exactly.
func TestSparseSweepDeterministicAcrossWorkers(t *testing.T) {
	prm := perfmodel.Params{}
	serial, computed, err := NewSparseSweepStored(prm, grid.New(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if computed != len(SparseSweepKeys()) {
		t.Fatalf("storeless sweep computed %d cells, want %d", computed, len(SparseSweepKeys()))
	}
	st := openStore(t)
	parallel, _, err := NewSparseSweepStored(prm, grid.New(8), st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Measurements, parallel.Measurements) {
		t.Fatal("parallel sweep diverged from serial sweep")
	}
	warm, computed, err := NewSparseSweepStored(prm, grid.New(8), st)
	if err != nil {
		t.Fatal(err)
	}
	if computed != 0 {
		t.Fatalf("warm sweep recomputed %d cells", computed)
	}
	if !reflect.DeepEqual(serial.Measurements, warm.Measurements) {
		t.Fatal("warm sweep diverged from cold sweep")
	}
}

// TestSparseMonitoredCrossChecksAnalytic executes the real distributed
// solver under the monitoring framework and sanity-checks it against the
// analytic engine's iteration model: same solver, same condition target,
// so the executed iteration count must land near the model's estimate
// and the solve must actually be accurate.
func TestSparseMonitoredCrossChecksAnalytic(t *testing.T) {
	e := SparseExperiment{
		Algorithm: sparse.CG, Kind: sparse.Banded, N: 2048, Ranks: 48,
		Placement: cluster.FullLoad, Device: cluster.DeviceCPU,
		Band: 16, Cond: 100, Seed: 5,
	}
	m, err := RunSparseMonitored(e)
	if err != nil {
		t.Fatal(err)
	}
	if m.Residual > 1e-9 {
		t.Fatalf("monitored solve residual %g", m.Residual)
	}
	if m.DurationS <= 0 || m.TotalJ <= 0 {
		t.Fatalf("degenerate monitored measurement %+v", m)
	}
	est := sparse.EstIters(e.Algorithm, e.Cond, e.N)
	if m.Iters < est/4 || m.Iters > est*4 {
		t.Fatalf("executed %d iterations, model estimates %d — model and solver disagree wildly", m.Iters, est)
	}
	// Memoization: monitored sparse cells round-trip too.
	st := openStore(t)
	cold, computed, err := RunSparseMonitoredStored(e, st)
	if err != nil || !computed {
		t.Fatalf("cold monitored stored run: computed=%v err=%v", computed, err)
	}
	warm, computed, err := RunSparseMonitoredStored(e, st)
	if err != nil || computed {
		t.Fatalf("warm monitored stored run: computed=%v err=%v", computed, err)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("monitored warm reconstruction diverged")
	}
}

// TestSparseMonitoredRejectsAccel pins that the executable engine never
// pretends to run accelerated kernels.
func TestSparseMonitoredRejectsAccel(t *testing.T) {
	e := sparseTestExperiment(cluster.DeviceAccel)
	if _, err := RunSparseMonitored(e); err == nil {
		t.Fatal("monitored engine accepted an accelerated experiment")
	}
}

// TestRankSparseObjectives exercises every objective through RankSparse
// on one shape where the devices disagree by construction.
func TestRankSparseObjectives(t *testing.T) {
	prm := perfmodel.Params{}
	big := sparse.Spec{Kind: sparse.Banded, N: 1048576, Band: 256, Cond: 1e4, Seed: SparseSweepSeed}
	small := sparse.Spec{Kind: sparse.Banded, N: 16384, Band: 256, Cond: 1e2, Seed: SparseSweepSeed}
	recBig, err := RecommendSparse(sparse.CG, big, SparseSweepRanks, cluster.FullLoad, MinEnergy, prm)
	if err != nil {
		t.Fatal(err)
	}
	if recBig.Best != cluster.DeviceAccel {
		t.Fatalf("big solve: best %s, want accel", recBig.Best)
	}
	recSmall, err := RecommendSparse(sparse.CG, small, SparseSweepRanks, cluster.FullLoad, MinEnergy, prm)
	if err != nil {
		t.Fatal(err)
	}
	if recSmall.Best != cluster.DeviceCPU {
		t.Fatalf("small solve: best %s, want cpu", recSmall.Best)
	}
	for _, obj := range Objectives() {
		rec, err := RecommendSparse(sparse.BiCGSTAB, big, SparseSweepRanks, cluster.FullLoad, obj, prm)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Margin < 0 || rec.Margin >= 1 {
			t.Fatalf("%s: margin %g outside [0,1)", obj, rec.Margin)
		}
	}
}

// TestRecommendSparseStoredAgreesWithCompute pins that a store-served
// sparse recommendation can never differ from a freshly computed one.
func TestRecommendSparseStoredAgreesWithCompute(t *testing.T) {
	prm := perfmodel.Params{}
	spec := sparse.Spec{Kind: sparse.Random, N: 131072, Density: 1e-3, Cond: 1e4, Seed: SparseSweepSeed}
	st := openStore(t)
	cold, computed, err := RecommendSparseStored(sparse.CG, spec, SparseSweepRanks, cluster.FullLoad, MinTime, prm, st)
	if err != nil {
		t.Fatal(err)
	}
	if computed != 2 {
		t.Fatalf("cold recommend computed %d cells, want 2", computed)
	}
	warm, computed, err := RecommendSparseStored(sparse.CG, spec, SparseSweepRanks, cluster.FullLoad, MinTime, prm, st)
	if err != nil {
		t.Fatal(err)
	}
	if computed != 0 {
		t.Fatalf("warm recommend computed %d cells", computed)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("warm recommendation diverged from cold")
	}
	direct, err := RecommendSparse(sparse.CG, spec, SparseSweepRanks, cluster.FullLoad, MinTime, prm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, cold) {
		t.Fatal("storeless recommendation diverged from stored")
	}
}
