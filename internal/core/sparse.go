package core

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/mat"
	"repro/internal/monitor"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/rapl"
	"repro/internal/sparse"
	"repro/internal/store"
)

// Sparse workloads through the same experiment machinery as the dense
// grid: a SparseExperiment resolves to a cluster Config (heterogeneous
// when the device is an accelerator), runs through an analytic or a
// monitored engine, and persists under a typed store identity so the
// store-threaded runners (campaign, lsbench, advisord) work unchanged.

// SparseExperiment is one job specification of the sparse evaluation
// grid. Band applies to banded matrices, Density to random ones; the
// unused axis stays zero and is omitted from the store identity.
type SparseExperiment struct {
	Algorithm sparse.Algorithm
	Kind      sparse.Kind
	N         int
	Ranks     int
	Placement cluster.Placement
	// Device selects where the memory-bound kernels run.
	Device  cluster.Device
	Band    int
	Density float64
	Cond    float64
	Seed    int64
}

// Spec returns the matrix recipe of the experiment.
func (e SparseExperiment) Spec() sparse.Spec {
	return sparse.Spec{Kind: e.Kind, N: e.N, Band: e.Band, Density: e.Density, Cond: e.Cond, Seed: e.Seed}
}

// resolveSparseConfig validates the experiment against the machine that
// matches its device: accelerated runs need the heterogeneous variant.
func (e SparseExperiment) resolveSparseConfig() (cluster.Config, error) {
	if e.N <= 0 {
		return cluster.Config{}, fmt.Errorf("core: order %d must be positive", e.N)
	}
	spec := cluster.MarconiA3()
	if e.Device == cluster.DeviceAccel {
		spec = cluster.MarconiA3Accel()
	}
	return cluster.NewConfig(e.Ranks, e.Placement, spec)
}

// SparseMeasurement is the outcome of one sparse experiment.
type SparseMeasurement struct {
	Experiment SparseExperiment
	Config     cluster.Config
	DurationS  float64
	TotalJ     float64
	EnergyJ    map[rapl.Domain]float64
	// Iters is the solver iteration count (modelled or executed).
	Iters int
	// Residual is the true relative residual of the computed solution
	// (monitored engine only; 0 for analytic runs).
	Residual float64
	Engine   string
}

// AvgPowerW is the measurement's average power.
func (m SparseMeasurement) AvgPowerW() float64 {
	if m.DurationS <= 0 {
		return 0
	}
	return m.TotalJ / m.DurationS
}

// AlgorithmFlops returns the arithmetic work of the measured solve.
func (m SparseMeasurement) AlgorithmFlops() float64 {
	return sparse.WorkFlops(m.Experiment.Algorithm, m.Experiment.Spec(), m.Iters)
}

// GFlopsPerWatt is the Green500 efficiency metric over the iterative
// solve's actual work.
func (m SparseMeasurement) GFlopsPerWatt() float64 {
	if m.TotalJ <= 0 {
		return 0
	}
	return m.AlgorithmFlops() / m.TotalJ / 1e9
}

// RunSparseAnalytic models the sparse experiment at paper scale on its
// device.
func RunSparseAnalytic(e SparseExperiment, prm perfmodel.Params) (SparseMeasurement, error) {
	cfg, err := e.resolveSparseConfig()
	if err != nil {
		return SparseMeasurement{}, err
	}
	res, err := sparse.Model(e.Algorithm, e.Spec(), cfg, e.Device, prm)
	if err != nil {
		return SparseMeasurement{}, err
	}
	return SparseMeasurement{
		Experiment: e,
		Config:     cfg,
		DurationS:  res.DurationS,
		TotalJ:     res.TotalJ,
		EnergyJ:    res.EnergyJ,
		Iters:      res.Iters,
		Engine:     "sparse-analytic",
	}, nil
}

// RunSparseMonitored executes the distributed iterative solver on the
// simulated cluster under the §4 monitoring framework — real numerics,
// counters read through PAPI/RAPL. CPU-only: accelerated kernels exist
// only in the analytic engine, so a Device of accel is rejected rather
// than silently modelled.
func RunSparseMonitored(e SparseExperiment) (SparseMeasurement, error) {
	if e.Device != cluster.DeviceCPU {
		return SparseMeasurement{}, fmt.Errorf("core: monitored sparse runs are CPU-only (device %s is analytic-only)", e.Device)
	}
	cfg, err := e.resolveSparseConfig()
	if err != nil {
		return SparseMeasurement{}, err
	}
	if e.Ranks > e.N {
		return SparseMeasurement{}, fmt.Errorf("core: %d ranks exceed order %d", e.Ranks, e.N)
	}
	spec := e.Spec()
	if err := spec.Validate(); err != nil {
		return SparseMeasurement{}, err
	}
	w, err := mpi.NewWorld(e.Ranks, mpi.Options{Config: &cfg})
	if err != nil {
		return SparseMeasurement{}, err
	}
	var mu sync.Mutex
	var reports []monitor.NodeReport
	var iters int
	var residual float64
	err = w.Run(func(p *mpi.Proc) error {
		s, err := monitor.Setup(p, p.World())
		if err != nil {
			return err
		}
		if err := s.StartMonitoring(); err != nil {
			return err
		}
		sol, err := sparse.Solve(p, e.Algorithm, spec, sparse.Options{ChargeCosts: true})
		if err != nil {
			return err
		}
		rep, err := s.StopMonitoring()
		if err != nil {
			return err
		}
		all, err := monitor.CollectReports(p, p.World(), rep)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			a, err := spec.Matrix()
			if err != nil {
				return err
			}
			b := spec.RHS()
			r := a.MulVec(sol.X)
			for i := range r {
				r[i] -= b[i]
			}
			mu.Lock()
			reports = all
			iters = sol.Iters
			residual = mat.TwoNorm(r) / mat.TwoNorm(b)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return SparseMeasurement{}, err
	}
	sum := monitor.Summarize(reports)
	m := SparseMeasurement{
		Experiment: e,
		Config:     cfg,
		DurationS:  sum.DurationS,
		TotalJ:     sum.TotalJ,
		EnergyJ:    make(map[rapl.Domain]float64, 4),
		Iters:      iters,
		Residual:   residual,
		Engine:     "sparse-monitored",
	}
	for _, d := range rapl.Domains() {
		m.EnergyJ[d] = sum.ByEvent["powercap:::"+d.String()]
	}
	return m, nil
}

// SparseCellKind records one sparse-grid SparseMeasurement.
const SparseCellKind = "sparse-cell"

// SparseMonitoredEngineVersion stamps the executable sparse engine: the
// solver numerics, the halo plan, the kernel charging constants and the
// monitoring framework's accounting.
const SparseMonitoredEngineVersion = "sparse-simulated-mpi/v1"

// SparseCellIdentity is the canonical store identity of one sparse cell:
// the sparse coordinates (matrix kind, structure axis, condition target,
// device) plus per-engine version stamps. The analytic engine ignores
// the input seed (its iteration model depends only on the condition
// target), so Seed keys monitored cells only.
type SparseCellIdentity struct {
	Schema    int    `json:"schema"`
	Kind      string `json:"kind"`
	Engine    string `json:"engine"`
	Algorithm string `json:"algorithm"`
	Matrix    string `json:"matrix"`
	N         int    `json:"n"`
	Ranks     int    `json:"ranks"`
	Placement string `json:"placement"`
	Device    string `json:"device"`
	Band      int    `json:"band,omitempty"`
	Density   float64 `json:"density,omitempty"`
	Cond      float64 `json:"cond"`
	Seed      int64   `json:"seed,omitempty"`
	// EngineVersion stamps the engine semantics (sparse.ModelVersion for
	// analytic cells, SparseMonitoredEngineVersion for monitored ones).
	EngineVersion string `json:"engine_version"`
	// Model is the versioned cost/calibration identity (analytic only).
	Model *perfmodel.CanonicalIdentity `json:"model,omitempty"`
	// Accel pins the accelerator profile the cell was modelled against
	// (accelerated cells only) — a different device profile is a
	// different experiment.
	Accel *cluster.AcceleratorSpec `json:"accel,omitempty"`
}

// SparseAnalyticCellIdentity returns the store identity of
// RunSparseAnalytic(e, prm).
func SparseAnalyticCellIdentity(e SparseExperiment, prm perfmodel.Params) SparseCellIdentity {
	model := prm.CanonicalIdentity()
	id := SparseCellIdentity{
		Schema:        store.SchemaVersion,
		Kind:          SparseCellKind,
		Engine:        "sparse-analytic",
		Algorithm:     e.Algorithm.String(),
		Matrix:        e.Kind.String(),
		N:             e.N,
		Ranks:         e.Ranks,
		Placement:     e.Placement.String(),
		Device:        e.Device.String(),
		Band:          e.Band,
		Density:       e.Density,
		Cond:          e.Cond,
		EngineVersion: sparse.ModelVersion,
		Model:         &model,
	}
	if e.Device == cluster.DeviceAccel {
		id.Accel = cluster.MarconiA3Accel().Accel
	}
	return id
}

// SparseMonitoredCellIdentity returns the store identity of
// RunSparseMonitored(e).
func SparseMonitoredCellIdentity(e SparseExperiment) SparseCellIdentity {
	return SparseCellIdentity{
		Schema:        store.SchemaVersion,
		Kind:          SparseCellKind,
		Engine:        "sparse-monitored",
		Algorithm:     e.Algorithm.String(),
		Matrix:        e.Kind.String(),
		N:             e.N,
		Ranks:         e.Ranks,
		Placement:     e.Placement.String(),
		Device:        e.Device.String(),
		Band:          e.Band,
		Density:       e.Density,
		Cond:          e.Cond,
		Seed:          e.Seed,
		EngineVersion: SparseMonitoredEngineVersion,
	}
}

// SparseCellResult is the persisted payload of one SparseMeasurement.
type SparseCellResult struct {
	DurationS float64            `json:"duration_s"`
	EnergyJ   map[string]float64 `json:"energy_j"`
	TotalJ    float64            `json:"total_j"`
	Iters     int                `json:"iters"`
	Residual  float64            `json:"residual,omitempty"`
	Engine    string             `json:"engine"`
}

func sparseCellResultOf(m SparseMeasurement) SparseCellResult {
	res := SparseCellResult{
		DurationS: m.DurationS,
		EnergyJ:   make(map[string]float64, len(m.EnergyJ)),
		TotalJ:    m.TotalJ,
		Iters:     m.Iters,
		Residual:  m.Residual,
		Engine:    m.Engine,
	}
	for d, j := range m.EnergyJ {
		res.EnergyJ[d.String()] = j
	}
	return res
}

// SparseCellMeasurement reconstructs the SparseMeasurement a stored cell
// recorded. Exact for the same reason CellMeasurement is: every
// persisted number JSON round-trips bit-for-bit, and the Config is
// re-derived from the experiment.
func SparseCellMeasurement(e SparseExperiment, res SparseCellResult) (SparseMeasurement, error) {
	cfg, err := e.resolveSparseConfig()
	if err != nil {
		return SparseMeasurement{}, err
	}
	m := SparseMeasurement{
		Experiment: e,
		Config:     cfg,
		DurationS:  res.DurationS,
		TotalJ:     res.TotalJ,
		EnergyJ:    make(map[rapl.Domain]float64, len(res.EnergyJ)),
		Iters:      res.Iters,
		Residual:   res.Residual,
		Engine:     res.Engine,
	}
	for _, d := range append(rapl.Domains(), rapl.Accel) {
		if j, ok := res.EnergyJ[d.String()]; ok {
			m.EnergyJ[d] = j
		}
	}
	return m, nil
}

// DecodeSparseCell unpacks a SparseCellKind record for consumers that
// enumerate store records (campaign artifacts).
func DecodeSparseCell(rec store.Record) (SparseCellIdentity, SparseCellResult, error) {
	if rec.Kind != SparseCellKind {
		return SparseCellIdentity{}, SparseCellResult{}, fmt.Errorf("core: record %.12s… has kind %q, want %q", rec.Key, rec.Kind, SparseCellKind)
	}
	var id SparseCellIdentity
	if err := json.Unmarshal(rec.Identity, &id); err != nil {
		return SparseCellIdentity{}, SparseCellResult{}, fmt.Errorf("core: decode sparse cell identity: %w", err)
	}
	var res SparseCellResult
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		return SparseCellIdentity{}, SparseCellResult{}, fmt.Errorf("core: decode sparse cell result: %w", err)
	}
	return id, res, nil
}

// Experiment converts a decoded sparse identity back into the experiment
// it keys.
func (id SparseCellIdentity) Experiment() (SparseExperiment, error) {
	alg, err := sparse.ParseAlgorithm(id.Algorithm)
	if err != nil {
		return SparseExperiment{}, err
	}
	kind, err := sparse.ParseKind(id.Matrix)
	if err != nil {
		return SparseExperiment{}, err
	}
	pl, err := cluster.ParsePlacement(id.Placement)
	if err != nil {
		return SparseExperiment{}, err
	}
	dev, err := cluster.ParseDevice(id.Device)
	if err != nil {
		return SparseExperiment{}, err
	}
	return SparseExperiment{
		Algorithm: alg, Kind: kind, N: id.N, Ranks: id.Ranks, Placement: pl,
		Device: dev, Band: id.Band, Density: id.Density, Cond: id.Cond, Seed: id.Seed,
	}, nil
}

// lookupSparseCell serves a sparse cell from the store; ok is false on a
// miss.
func lookupSparseCell(st *store.Store, id SparseCellIdentity, e SparseExperiment) (SparseMeasurement, bool, error) {
	key, _, err := store.KeyFor(id)
	if err != nil {
		return SparseMeasurement{}, false, err
	}
	rec, ok, err := st.Get(key)
	if err != nil || !ok {
		return SparseMeasurement{}, false, err
	}
	if rec.Kind != SparseCellKind {
		return SparseMeasurement{}, false, fmt.Errorf("core: record %.12s… has kind %q, want %q", rec.Key, rec.Kind, SparseCellKind)
	}
	var res SparseCellResult
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		return SparseMeasurement{}, false, fmt.Errorf("core: decode sparse cell result: %w", err)
	}
	m, err := SparseCellMeasurement(e, res)
	if err != nil {
		return SparseMeasurement{}, false, err
	}
	return m, true, nil
}

func appendSparseCell(st *store.Store, id SparseCellIdentity, m SparseMeasurement) error {
	rec, err := store.NewRecord(SparseCellKind, id, sparseCellResultOf(m))
	if err != nil {
		return err
	}
	_, err = st.Append(rec)
	return err
}

// LookupSparseAnalyticCell serves RunSparseAnalytic(e, prm) from the
// store without computing; ok is false on a miss (or a nil store).
// Campaign strict from-store artifact emission builds on it.
func LookupSparseAnalyticCell(st *store.Store, e SparseExperiment, prm perfmodel.Params) (SparseMeasurement, bool, error) {
	if st == nil {
		return SparseMeasurement{}, false, nil
	}
	return lookupSparseCell(st, SparseAnalyticCellIdentity(e, prm), e)
}

// RunSparseAnalyticStored is RunSparseAnalytic with store-backed
// memoization; computed reports whether the model actually ran. A nil
// store degrades to plain RunSparseAnalytic.
func RunSparseAnalyticStored(e SparseExperiment, prm perfmodel.Params, st *store.Store) (m SparseMeasurement, computed bool, err error) {
	if st == nil {
		m, err = RunSparseAnalytic(e, prm)
		return m, true, err
	}
	id := SparseAnalyticCellIdentity(e, prm)
	if m, ok, err := lookupSparseCell(st, id, e); err != nil || ok {
		return m, false, err
	}
	m, err = RunSparseAnalytic(e, prm)
	if err != nil {
		return SparseMeasurement{}, true, err
	}
	return m, true, appendSparseCell(st, id, m)
}

// RunSparseMonitoredStored is RunSparseMonitored with store-backed
// memoization.
func RunSparseMonitoredStored(e SparseExperiment, st *store.Store) (m SparseMeasurement, computed bool, err error) {
	if st == nil {
		m, err = RunSparseMonitored(e)
		return m, true, err
	}
	id := SparseMonitoredCellIdentity(e)
	if m, ok, err := lookupSparseCell(st, id, e); err != nil || ok {
		return m, false, err
	}
	m, err = RunSparseMonitored(e)
	if err != nil {
		return SparseMeasurement{}, true, err
	}
	return m, true, appendSparseCell(st, id, m)
}
