package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/perfmodel"
)

func TestRunRepeatedAnalyticStats(t *testing.T) {
	e := Experiment{
		Algorithm: perfmodel.ScaLAPACK,
		N:         17280,
		Ranks:     144,
		Placement: cluster.FullLoad,
	}
	base, err := RunAnalytic(e, perfmodel.Params{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunRepeatedAnalytic(e, perfmodel.Params{Overlap: true}, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reps != 10 {
		t.Fatalf("reps = %d", st.Reps)
	}
	if st.MinJ > st.MeanJ || st.MeanJ > st.MaxJ {
		t.Fatalf("ordering broke: min %g mean %g max %g", st.MinJ, st.MeanJ, st.MaxJ)
	}
	if st.MinJ == st.MaxJ {
		t.Fatal("variability produced identical repetitions")
	}
	// Mean within the variability band of the noise-free run.
	if math.Abs(st.MeanJ-base.TotalJ)/base.TotalJ > 0.10 {
		t.Fatalf("mean %g drifted from noise-free %g", st.MeanJ, base.TotalJ)
	}
	// Spread bounded by roughly twice the per-run variability of both
	// duration and power.
	if st.SpreadJ() > 0.25 {
		t.Fatalf("energy spread %.1f%% too large for ±5%% variability", st.SpreadJ()*100)
	}
	if st.MinDurationS >= st.MaxDurationS {
		t.Fatal("durations show no spread")
	}
}

func TestRunRepeatedDeterministic(t *testing.T) {
	e := Experiment{
		Algorithm: perfmodel.IMe,
		N:         8640,
		Ranks:     144,
		Placement: cluster.FullLoad,
	}
	a, err := RunRepeatedAnalytic(e, perfmodel.Params{Overlap: true}, 5, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRepeatedAnalytic(e, perfmodel.Params{Overlap: true}, 5, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanJ != b.MeanJ || a.MaxDurationS != b.MaxDurationS {
		t.Fatal("repetition study not reproducible")
	}
	if _, err := RunRepeatedAnalytic(e, perfmodel.Params{}, 0, 0.1); err == nil {
		t.Fatal("zero repetitions accepted")
	}
}

func TestRepetitionStudyTable(t *testing.T) {
	cells := []SweepKey{
		{Algorithm: perfmodel.IMe, N: 8640, Ranks: 144, Placement: cluster.FullLoad},
		{Algorithm: perfmodel.ScaLAPACK, N: 8640, Ranks: 144, Placement: cluster.FullLoad},
	}
	tab, err := RepetitionStudy(cells, perfmodel.Params{Overlap: true}, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(tab.Rows))
	}
}

func TestZeroVariabilityReproducesExactly(t *testing.T) {
	e := Experiment{
		Algorithm: perfmodel.IMe,
		N:         8640,
		Ranks:     144,
		Placement: cluster.FullLoad,
	}
	st, err := RunRepeatedAnalytic(e, perfmodel.Params{Overlap: true}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.MinJ != st.MaxJ || st.MinDurationS != st.MaxDurationS {
		t.Fatal("zero variability must give identical repetitions")
	}
}
