package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/report"
	"repro/internal/sparse"
	"repro/internal/store"
)

// The sparse advisor and its evaluation grid. Where the dense advisor
// ranks IMe vs ScaLAPACK for a job shape, the sparse advisor ranks the
// device axis — the same memory-bound solve on CPU cores vs on the
// node's accelerators — which is the genuinely non-obvious placement
// decision for iterative workloads: accelerators win big solves on
// bandwidth, CPU-only placements win small ones on idle power and
// transfer latency.

// SparseRecommendation is the advisor's verdict for one sparse shape.
type SparseRecommendation struct {
	Objective Objective
	// Best names the winning device.
	Best  cluster.Device
	CPU   SparseMeasurement
	Accel SparseMeasurement
	// Margin is how much better the winner is on the objective metric.
	Margin float64
}

// RankSparse picks the winner between the CPU and accelerated
// measurements of one sparse shape under the objective. Every serving
// path ranks through this single function, mirroring Rank for the dense
// advisor.
func RankSparse(cpuM, accelM SparseMeasurement, objective Objective) (SparseRecommendation, error) {
	rec := SparseRecommendation{Objective: objective, CPU: cpuM, Accel: accelM}
	var cpu, acc float64
	switch objective {
	case MinEnergy:
		cpu, acc = cpuM.TotalJ, accelM.TotalJ
	case MinTime:
		cpu, acc = cpuM.DurationS, accelM.DurationS
	case MaxEfficiency:
		// Invert so "smaller wins" below.
		cpu, acc = 1/cpuM.GFlopsPerWatt(), 1/accelM.GFlopsPerWatt()
	default:
		return rec, fmt.Errorf("core: unknown objective %v", objective)
	}
	if cpu < acc {
		rec.Best = cluster.DeviceCPU
		rec.Margin = 1 - cpu/acc
	} else {
		rec.Best = cluster.DeviceAccel
		rec.Margin = 1 - acc/cpu
	}
	return rec, nil
}

// RecommendSparse models the sparse shape on both devices and picks a
// winner under the objective.
func RecommendSparse(alg sparse.Algorithm, mspec sparse.Spec, ranks int, placement cluster.Placement, objective Objective, prm perfmodel.Params) (SparseRecommendation, error) {
	rec, _, err := RecommendSparseStored(alg, mspec, ranks, placement, objective, prm, nil)
	return rec, err
}

// RecommendSparseStored is RecommendSparse with store-backed memoization
// of the two device cells; computed counts the evaluations that ran.
func RecommendSparseStored(alg sparse.Algorithm, mspec sparse.Spec, ranks int, placement cluster.Placement, objective Objective, prm perfmodel.Params, st *store.Store) (SparseRecommendation, int, error) {
	base := SparseExperiment{
		Algorithm: alg, Kind: mspec.Kind, N: mspec.N, Ranks: ranks, Placement: placement,
		Band: mspec.Band, Density: mspec.Density, Cond: mspec.Cond, Seed: mspec.Seed,
	}
	computed := 0
	eCPU := base
	eCPU.Device = cluster.DeviceCPU
	cpuM, ran, err := RunSparseAnalyticStored(eCPU, prm, st)
	if err != nil {
		return SparseRecommendation{Objective: objective}, computed, err
	}
	if ran {
		computed++
	}
	eAcc := base
	eAcc.Device = cluster.DeviceAccel
	accM, ran, err := RunSparseAnalyticStored(eAcc, prm, st)
	if err != nil {
		return SparseRecommendation{Objective: objective}, computed, err
	}
	if ran {
		computed++
	}
	rec, err := RankSparse(cpuM, accM, objective)
	return rec, computed, err
}

// SparseSweepRanks is the rank count of the sparse evaluation grid: the
// paper's smallest full-load deployment (3 nodes).
const SparseSweepRanks = 144

// SparseSweepSeed generates every grid system deterministically.
const SparseSweepSeed = 7

// SparseSweepKey identifies one cell of the sparse evaluation grid.
type SparseSweepKey struct {
	Algorithm sparse.Algorithm
	Device    cluster.Device
	Spec      sparse.Spec
}

// SparseSweepSpecs enumerates the matrix recipes of the grid: banded
// stencils at three orders and random patterns at two densities, each at
// a benign and an ill condition target.
func SparseSweepSpecs() []sparse.Spec {
	var specs []sparse.Spec
	for _, cond := range []float64{1e2, 1e4} {
		for _, n := range []int{16384, 131072, 1048576} {
			specs = append(specs, sparse.Spec{
				Kind: sparse.Banded, N: n, Band: 256, Cond: cond, Seed: SparseSweepSeed,
			})
		}
		for _, density := range []float64{1e-4, 1e-3} {
			for _, n := range []int{16384, 131072, 1048576} {
				specs = append(specs, sparse.Spec{
					Kind: sparse.Random, N: n, Density: density, Cond: cond, Seed: SparseSweepSeed,
				})
			}
		}
	}
	return specs
}

// SparseSweepKeys enumerates the grid cells in canonical order:
// 2 algorithms × 2 devices × 18 matrix recipes = 72 cells.
func SparseSweepKeys() []SparseSweepKey {
	var keys []SparseSweepKey
	for _, spec := range SparseSweepSpecs() {
		for _, alg := range sparse.Algorithms() {
			for _, dev := range cluster.Devices() {
				keys = append(keys, SparseSweepKey{Algorithm: alg, Device: dev, Spec: spec})
			}
		}
	}
	return keys
}

// SparseSweep holds the full sparse evaluation grid.
type SparseSweep struct {
	Params       perfmodel.Params
	Measurements map[SparseSweepKey]SparseMeasurement
}

// NewSparseSweepStored runs the sparse grid with store-backed
// memoization under the runner's worker budget. Like NewSweepStored, the
// returned measurements are identical for every (store, worker budget)
// combination; computed counts the cells that ran the model.
func NewSparseSweepStored(prm perfmodel.Params, r *grid.Runner, st *store.Store) (*SparseSweep, int, error) {
	keys := SparseSweepKeys()
	type cell struct {
		m        SparseMeasurement
		computed bool
	}
	cells, err := grid.Map(r, len(keys), func(i int) (cell, error) {
		k := keys[i]
		e := SparseExperiment{
			Algorithm: k.Algorithm, Kind: k.Spec.Kind, N: k.Spec.N,
			Ranks: SparseSweepRanks, Placement: cluster.FullLoad, Device: k.Device,
			Band: k.Spec.Band, Density: k.Spec.Density, Cond: k.Spec.Cond, Seed: k.Spec.Seed,
		}
		m, computed, err := RunSparseAnalyticStored(e, prm, st)
		if err != nil {
			return cell{}, fmt.Errorf("core: sparse sweep cell %v/%s/%s: %w", k.Algorithm, k.Device, k.Spec.Label(), err)
		}
		return cell{m: m, computed: computed}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	s := &SparseSweep{Params: prm, Measurements: make(map[SparseSweepKey]SparseMeasurement, len(keys))}
	computed := 0
	for i, k := range keys {
		s.Measurements[k] = cells[i].m
		if cells[i].computed {
			computed++
		}
	}
	return s, computed, nil
}

// Get returns one cell, failing loudly on a missing key.
func (s *SparseSweep) Get(alg sparse.Algorithm, dev cluster.Device, spec sparse.Spec) (SparseMeasurement, error) {
	m, ok := s.Measurements[SparseSweepKey{Algorithm: alg, Device: dev, Spec: spec}]
	if !ok {
		return SparseMeasurement{}, fmt.Errorf("core: sparse sweep has no cell %v/%s/%s", alg, dev, spec.Label())
	}
	return m, nil
}

// SparseFigure renders the sparse CPU-vs-accelerator comparison: one row
// per (algorithm, matrix recipe) with both devices' energy and duration
// and the min-energy verdict — the sparse counterpart of Figures 4–7.
func (s *SparseSweep) SparseFigure() (*report.Table, error) {
	t := &report.Table{
		Title: fmt.Sprintf("Sparse workloads: CPU vs accelerator, %d ranks full load", SparseSweepRanks),
		Headers: []string{"alg", "matrix", "n", "cond", "iters",
			"cpu J", "accel J", "cpu s", "accel s", "best (min-energy)", "margin %"},
	}
	for _, spec := range SparseSweepSpecs() {
		for _, alg := range sparse.Algorithms() {
			cpu, err := s.Get(alg, cluster.DeviceCPU, spec)
			if err != nil {
				return nil, err
			}
			acc, err := s.Get(alg, cluster.DeviceAccel, spec)
			if err != nil {
				return nil, err
			}
			rec, err := RankSparse(cpu, acc, MinEnergy)
			if err != nil {
				return nil, err
			}
			t.Add(alg.String(), spec.Kind.String(), spec.N, spec.Cond, cpu.Iters,
				cpu.TotalJ, acc.TotalJ, cpu.DurationS, acc.DurationS,
				rec.Best.String(), 100*rec.Margin)
		}
	}
	return t, nil
}
