package core_test

// Golden pinning of the advisor's verdicts across the paper grid: every
// PaperMatrixDims × PaperRankCounts cell under all three objectives at
// the serving default (full load, overlap on). The advisor is now served
// over HTTP by internal/server, so a serving-layer or model refactor
// that silently changes advice — not just energies — must trip a test.
//
// Regenerate with:
//
//	go test ./internal/core -run TestAdvisorGolden -update-goldens
//
// against a known-good model, never together with a model change.

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
)

// advisorGoldenRow pins one (shape, objective) verdict.
type advisorGoldenRow struct {
	N         int     `json:"n"`
	Ranks     int     `json:"ranks"`
	Objective string  `json:"objective"`
	Best      string  `json:"best"`
	Margin    float64 `json:"margin"`
}

const advisorGoldenPath = "testdata/advisor_golden.json"

// marginTol is the relative tolerance on pinned margins; verdicts are
// exact. The analytic model is pure float64 arithmetic, but margins are
// ratios of large energies, so allow rounding-level drift.
const marginTol = 1e-12

func computeAdvisorGolden(t *testing.T) []advisorGoldenRow {
	t.Helper()
	prm := perfmodel.Params{Overlap: true}
	var rows []advisorGoldenRow
	for _, n := range cluster.PaperMatrixDims() {
		for _, ranks := range cluster.PaperRankCounts() {
			for _, obj := range core.Objectives() {
				rec, err := core.Recommend(n, ranks, cluster.FullLoad, obj, prm)
				if err != nil {
					t.Fatalf("Recommend(%d, %d, %v): %v", n, ranks, obj, err)
				}
				rows = append(rows, advisorGoldenRow{
					N: n, Ranks: ranks, Objective: obj.String(),
					Best: rec.Best.String(), Margin: rec.Margin,
				})
			}
		}
	}
	return rows
}

func TestAdvisorGolden(t *testing.T) {
	got := computeAdvisorGolden(t)
	if *updateGoldens {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(advisorGoldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d rows to %s", len(got), advisorGoldenPath)
		return
	}
	b, err := os.ReadFile(advisorGoldenPath)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update-goldens): %v", err)
	}
	var want []advisorGoldenRow
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("grid has %d verdicts, golden has %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.N != w.N || g.Ranks != w.Ranks || g.Objective != w.Objective {
			t.Fatalf("row %d is (%d, %d, %s), golden is (%d, %d, %s): grid enumeration changed",
				i, g.N, g.Ranks, g.Objective, w.N, w.Ranks, w.Objective)
		}
		if g.Best != w.Best {
			t.Errorf("n=%d ranks=%d %s: recommends %s, golden %s (margin %.4f vs %.4f)",
				g.N, g.Ranks, g.Objective, g.Best, w.Best, g.Margin, w.Margin)
			continue
		}
		if diff := math.Abs(g.Margin - w.Margin); diff > marginTol*math.Max(math.Abs(w.Margin), 1) {
			t.Errorf("n=%d ranks=%d %s: margin %.17g, golden %.17g",
				g.N, g.Ranks, g.Objective, g.Margin, w.Margin)
		}
	}
}
