package core

import (
	"strconv"
	"testing"
)

func TestOverlapAblationSpeedup(t *testing.T) {
	tab, err := OverlapAblation([]AblationCase{{N: 48, Ranks: 4}, {N: 96, Ranks: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		speedup, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if speedup <= 1 {
			t.Errorf("n=%s ranks=%s: overlap speedup %s not above 1", row[0], row[1], row[4])
		}
		syncMsgs, _ := strconv.Atoi(row[5])
		overMsgs, _ := strconv.Atoi(row[6])
		if overMsgs >= syncMsgs {
			t.Errorf("n=%s: overlapped variant should exchange fewer messages", row[0])
		}
	}
}

func TestBlockSizeAblation(t *testing.T) {
	tab, err := BlockSizeAblation(96, 4, []int{4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tab.Rows))
	}
	// Larger blocks mean fewer panels and fewer messages.
	prev := int(^uint(0) >> 1)
	for _, row := range tab.Rows {
		msgs, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		if msgs >= prev {
			t.Errorf("nb=%s: messages %d not below %d", row[0], msgs, prev)
		}
		prev = msgs
	}
}
