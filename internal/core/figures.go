package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/ime"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/rapl"
	"repro/internal/report"
	"repro/internal/slurm"
	"repro/internal/store"
)

// SweepKey identifies one cell of the evaluation grid.
type SweepKey struct {
	Algorithm perfmodel.Algorithm
	N         int
	Ranks     int
	Placement cluster.Placement
}

// Sweep holds the full evaluation grid: every matrix dimension × rank
// count × placement × algorithm of §5.1, modelled analytically.
type Sweep struct {
	Params       perfmodel.Params
	Measurements map[SweepKey]Measurement
}

// SweepKeys enumerates the grid cells in canonical order.
func SweepKeys() []SweepKey {
	var keys []SweepKey
	for _, n := range cluster.PaperMatrixDims() {
		for _, ranks := range cluster.PaperRankCounts() {
			for _, pl := range cluster.Placements() {
				for _, alg := range perfmodel.Algorithms() {
					keys = append(keys, SweepKey{alg, n, ranks, pl})
				}
			}
		}
	}
	return keys
}

// NewSweep runs the whole grid (72 cells) under the default worker budget.
func NewSweep(prm perfmodel.Params) (*Sweep, error) {
	return NewSweepParallel(prm, grid.New(0))
}

// NewSweepParallel runs the grid cells concurrently under the runner's
// worker budget. Cells are independent analytic evaluations, so the sweep
// is identical to a serial loop for every budget.
func NewSweepParallel(prm perfmodel.Params, r *grid.Runner) (*Sweep, error) {
	s, _, err := NewSweepStored(prm, r, nil)
	return s, err
}

// NewSweepStored is NewSweepParallel with store-backed memoization:
// each cell consults the experiment store before dispatching the model
// and appends what it computes. The returned measurements are identical
// for every (store, worker budget) combination — a store hit
// reconstructs the exact measurement the compute path would produce —
// which is what lets lsbench's figure artifacts stay byte-identical
// across serial, parallel, cold-store and warm-store runs. computed
// counts the cells that actually ran the model (0 on a fully warm
// store). A nil store always computes.
func NewSweepStored(prm perfmodel.Params, r *grid.Runner, st *store.Store) (*Sweep, int, error) {
	keys := SweepKeys()
	type cell struct {
		m        Measurement
		computed bool
	}
	cells, err := grid.Map(r, len(keys), func(i int) (cell, error) {
		k := keys[i]
		e := Experiment{Algorithm: k.Algorithm, N: k.N, Ranks: k.Ranks, Placement: k.Placement}
		m, computed, err := RunAnalyticStored(e, prm, st)
		if err != nil {
			return cell{}, fmt.Errorf("core: sweep cell %v/%d/%d/%v: %w", k.Algorithm, k.N, k.Ranks, k.Placement, err)
		}
		return cell{m: m, computed: computed}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	s := &Sweep{Params: prm, Measurements: make(map[SweepKey]Measurement, len(keys))}
	computed := 0
	for i, k := range keys {
		s.Measurements[k] = cells[i].m
		if cells[i].computed {
			computed++
		}
	}
	return s, computed, nil
}

// Get returns one cell, failing loudly on a missing key.
func (s *Sweep) Get(alg perfmodel.Algorithm, n, ranks int, pl cluster.Placement) (Measurement, error) {
	m, ok := s.Measurements[SweepKey{alg, n, ranks, pl}]
	if !ok {
		return Measurement{}, fmt.Errorf("core: sweep has no cell %v/%d/%d/%v", alg, n, ranks, pl)
	}
	return m, nil
}

// mustGet is Get for internal table builders over a complete sweep.
func (s *Sweep) mustGet(alg perfmodel.Algorithm, n, ranks int, pl cluster.Placement) Measurement {
	m, err := s.Get(alg, n, ranks, pl)
	if err != nil {
		panic(err)
	}
	return m
}

// Table1 renders the paper's Table 1 (test configurations).
func Table1() (*report.Table, error) {
	rows, err := cluster.Table1(cluster.MarconiA3())
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Table 1: test configurations for nodes, ranks and sockets",
		Headers: []string{"Ranks", "Nodes", "Ranks/Node", "Sockets", "Ranks socket0", "Ranks socket1"},
	}
	for _, c := range rows {
		t.Add(c.Ranks, c.Nodes, c.RanksPerNode, c.SocketsUsed, c.RanksSocket0, c.RanksSocket1)
	}
	return t, nil
}

// Figure3 renders the full- vs half-loaded-processor energy comparison.
func (s *Sweep) Figure3() *report.Table {
	t := &report.Table{
		Title: "Figure 3: energy [J], full-loaded vs half-loaded processors",
		Headers: []string{"alg", "n", "ranks",
			"full-load J", "half-1-socket J", "half-2-sockets J"},
	}
	for _, alg := range perfmodel.Algorithms() {
		for _, n := range cluster.PaperMatrixDims() {
			for _, ranks := range cluster.PaperRankCounts() {
				t.Add(alg.String(), n, ranks,
					s.mustGet(alg, n, ranks, cluster.FullLoad).TotalJ,
					s.mustGet(alg, n, ranks, cluster.HalfLoadOneSocket).TotalJ,
					s.mustGet(alg, n, ranks, cluster.HalfLoadTwoSockets).TotalJ)
			}
		}
	}
	return t
}

// Figure4 renders energy and duration against the matrix dimension at
// fixed rank counts (full-load deployments on 3/12/27 nodes).
func (s *Sweep) Figure4() *report.Table {
	t := &report.Table{
		Title: "Figure 4: energy and duration vs matrix dimension at fixed ranks (48 cores/node)",
		Headers: []string{"ranks", "n",
			"IMe J", "ScaLAPACK J", "IMe s", "ScaLAPACK s"},
	}
	for _, ranks := range cluster.PaperRankCounts() {
		for _, n := range cluster.PaperMatrixDims() {
			ime := s.mustGet(perfmodel.IMe, n, ranks, cluster.FullLoad)
			ge := s.mustGet(perfmodel.ScaLAPACK, n, ranks, cluster.FullLoad)
			t.Add(ranks, n, ime.TotalJ, ge.TotalJ, ime.DurationS, ge.DurationS)
		}
	}
	return t
}

// Figure5 renders energy and duration against the rank count at fixed
// matrix dimensions — the strong-scaling view with the IMe/ScaLAPACK
// crossover.
func (s *Sweep) Figure5() *report.Table {
	t := &report.Table{
		Title: "Figure 5: energy and duration vs ranks at fixed matrix dimension",
		Headers: []string{"n", "ranks",
			"IMe J", "ScaLAPACK J", "IMe s", "ScaLAPACK s", "faster"},
	}
	for _, n := range cluster.PaperMatrixDims() {
		for _, ranks := range cluster.PaperRankCounts() {
			ime := s.mustGet(perfmodel.IMe, n, ranks, cluster.FullLoad)
			ge := s.mustGet(perfmodel.ScaLAPACK, n, ranks, cluster.FullLoad)
			faster := "ScaLAPACK"
			if ime.DurationS < ge.DurationS {
				faster = "IMe"
			}
			t.Add(n, ranks, ime.TotalJ, ge.TotalJ, ime.DurationS, ge.DurationS, faster)
		}
	}
	return t
}

// Figure6 renders energy and average power against the matrix dimension
// at fixed rank counts; power stays nearly flat and IMe draws 12–18% more.
func (s *Sweep) Figure6() *report.Table {
	t := &report.Table{
		Title: "Figure 6: energy and power vs matrix dimension at fixed ranks",
		Headers: []string{"ranks", "n",
			"IMe J", "ScaLAPACK J", "IMe W", "ScaLAPACK W", "power gap %"},
	}
	for _, ranks := range cluster.PaperRankCounts() {
		for _, n := range cluster.PaperMatrixDims() {
			ime := s.mustGet(perfmodel.IMe, n, ranks, cluster.FullLoad)
			ge := s.mustGet(perfmodel.ScaLAPACK, n, ranks, cluster.FullLoad)
			gap := 100 * (ime.AvgPowerW()/ge.AvgPowerW() - 1)
			t.Add(ranks, n, ime.TotalJ, ge.TotalJ, ime.AvgPowerW(), ge.AvgPowerW(), gap)
		}
	}
	return t
}

// Figure7 renders energy and average power against the rank count at
// fixed matrix dimensions; power follows the deployed ranks.
func (s *Sweep) Figure7() *report.Table {
	t := &report.Table{
		Title: "Figure 7: energy and power vs ranks at fixed matrix dimension",
		Headers: []string{"n", "ranks",
			"IMe J", "ScaLAPACK J", "IMe W", "ScaLAPACK W"},
	}
	for _, n := range cluster.PaperMatrixDims() {
		for _, ranks := range cluster.PaperRankCounts() {
			ime := s.mustGet(perfmodel.IMe, n, ranks, cluster.FullLoad)
			ge := s.mustGet(perfmodel.ScaLAPACK, n, ranks, cluster.FullLoad)
			t.Add(n, ranks, ime.TotalJ, ge.TotalJ, ime.AvgPowerW(), ge.AvgPowerW())
		}
	}
	return t
}

// SocketBreakdown renders §5.3's per-package observations for the
// half-load placements at one rank count.
func (s *Sweep) SocketBreakdown(n, ranks int) (*report.Table, error) {
	t := &report.Table{
		Title: fmt.Sprintf("Section 5.3: per-socket energy breakdown, n=%d ranks=%d [J]", n, ranks),
		Headers: []string{"alg", "placement",
			"PKG0 J", "PKG1 J", "DRAM0 J", "DRAM1 J", "pkg1/pkg0"},
	}
	for _, alg := range perfmodel.Algorithms() {
		for _, pl := range cluster.Placements() {
			m, err := s.Get(alg, n, ranks, pl)
			if err != nil {
				return nil, err
			}
			p0 := m.EnergyJ[rapl.PKG0]
			p1 := m.EnergyJ[rapl.PKG1]
			t.Add(alg.String(), pl.String(), p0, p1,
				m.EnergyJ[rapl.DRAM0], m.EnergyJ[rapl.DRAM1], p1/p0)
		}
	}
	return t, nil
}

// DurationBreakdown renders each full-load cell's critical path split into
// compute and exposed communication — the mechanism behind the Fig. 5
// crossover: ScaLAPACK's exposed share is its per-column pivoting chain,
// IMe's shrinks with overlap.
func DurationBreakdown(prm perfmodel.Params) (*report.Table, error) {
	t := &report.Table{
		Title: "Duration breakdown: compute vs exposed communication (full load)",
		Headers: []string{"n", "ranks",
			"IMe comp s", "IMe comm s", "IMe comm %",
			"GE comp s", "GE comm s", "GE comm %"},
	}
	for _, n := range cluster.PaperMatrixDims() {
		for _, ranks := range cluster.PaperRankCounts() {
			cfg, err := cluster.NewConfig(ranks, cluster.FullLoad, cluster.MarconiA3())
			if err != nil {
				return nil, err
			}
			im, err := perfmodel.Run(perfmodel.IMe, n, cfg, prm)
			if err != nil {
				return nil, err
			}
			ge, err := perfmodel.Run(perfmodel.ScaLAPACK, n, cfg, prm)
			if err != nil {
				return nil, err
			}
			t.Add(n, ranks,
				im.ComputeS, im.ExposedCommS, 100*im.ExposedCommS/im.DurationS,
				ge.ComputeS, ge.ExposedCommS, 100*ge.ExposedCommS/ge.DurationS)
		}
	}
	return t, nil
}

// SlurmLeakStudy quantifies §5.3's hypothesis that the anomalous socket-1
// energy in one-socket deployments came from imperfect Slurm socket
// pinning: it models the one-socket placement under increasing pinning
// leak fractions and reports the per-package energy split. Leak 0 shows
// what idle+OS power alone explains; larger leaks show what escaped ranks
// would add.
func SlurmLeakStudy(alg perfmodel.Algorithm, n, ranks int, leaks []float64, prm perfmodel.Params) (*report.Table, error) {
	t := &report.Table{
		Title: fmt.Sprintf("Section 5.3: Slurm socket-pinning leak study, %v n=%d ranks=%d", alg, n, ranks),
		Headers: []string{"leak frac", "ranks s0/s1",
			"PKG0 J", "PKG1 J", "pkg1/pkg0", "total J"},
	}
	sched, err := slurm.NewScheduler(cluster.MarconiA3())
	if err != nil {
		return nil, err
	}
	for _, leak := range leaks {
		alloc, err := sched.Submit(slurm.JobSpec{
			Name:               "leak-study",
			Ranks:              ranks,
			Placement:          cluster.HalfLoadOneSocket,
			LeakySocketPinning: leak,
		})
		if err != nil {
			return nil, err
		}
		res, err := perfmodel.Run(alg, n, alloc.Config, prm)
		if err != nil {
			return nil, err
		}
		p0, p1 := res.EnergyJ[rapl.PKG0], res.EnergyJ[rapl.PKG1]
		t.Add(leak,
			fmt.Sprintf("%d/%d", alloc.Config.RanksSocket0, alloc.Config.RanksSocket1),
			p0, p1, p1/p0, res.TotalJ)
		if err := sched.Release(alloc.JobID); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MessageAccounting renders the §2.1 traffic validation: counted traffic
// from a real distributed IMe run against this implementation's closed
// forms and the paper's published M_IMeP/V_IMeP.
func MessageAccounting(cases [][2]int) (*report.Table, error) {
	t := &report.Table{
		Title: "Section 2.1: IMeP message accounting (counted vs closed forms)",
		Headers: []string{"n", "ranks", "msgs counted", "msgs closed-form",
			"volume counted", "volume closed-form", "paper M_IMeP", "paper V_IMeP"},
	}
	for _, c := range cases {
		n, ranks := c[0], c[1]
		sys := mat.CachedSystem(n, int64(n))
		w, err := mpi.NewWorld(ranks, mpi.Options{})
		if err != nil {
			return nil, err
		}
		if err := w.Run(func(p *mpi.Proc) error {
			_, err := ime.SolveParallel(p, p.World(), sys, ime.ParallelOptions{})
			return err
		}); err != nil {
			return nil, err
		}
		msgs, vol := w.Traffic()
		t.Add(n, ranks, msgs, ime.ExpectedMessages(n, ranks),
			vol, ime.ExpectedVolume(n, ranks),
			ime.PaperMessageCount(n, ranks), ime.PaperMessageVolume(n, ranks))
	}
	return t, nil
}
