package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/perfmodel"
)

// resilientExperiment is the shared small-order job of the resilience
// tests: big enough for several panels/levels, small enough to run both
// solvers across an MTBF sweep in test time.
func resilientExperiment(alg perfmodel.Algorithm) Experiment {
	return Experiment{Algorithm: alg, N: 96, Ranks: 24,
		Placement: cluster.HalfLoadOneSocket, Seed: 7, BlockSize: 8}
}

// faultFreeMTBF is far beyond any small-order makespan: zero crashes.
const faultFreeMTBF = 1e9

// testStorage scales checkpoint storage latency to the microsecond-class
// makespans of the toy orders above; the production default's 1 ms
// per-snapshot latency would dominate a 5 ms run and drown the solvers'
// energy ordering the crossover test pins.
func testStorage() ckpt.CostModel {
	return ckpt.CostModel{BandwidthBps: 2e9, LatencyS: 1e-6}
}

func TestResilientFaultFreeMatchesBaseline(t *testing.T) {
	for _, alg := range []perfmodel.Algorithm{perfmodel.IMe, perfmodel.ScaLAPACK} {
		rm, err := RunResilient(resilientExperiment(alg), ResilienceOptions{MTBF: faultFreeMTBF, Seed: 1, Storage: testStorage()})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if rm.Crashes != 0 || rm.Restarts != 0 || rm.Recoveries != 0 {
			t.Fatalf("%v: MTBF %g scheduled faults: %+v", alg, faultFreeMTBF, rm)
		}
		if rm.DurationS != rm.BaselineDurationS {
			t.Fatalf("%v: fault-free run took %g, baseline %g", alg, rm.DurationS, rm.BaselineDurationS)
		}
		if rel := math.Abs(rm.RecoveryJ) / rm.BaselineJ; rel > 1e-9 {
			t.Fatalf("%v: fault-free recovery energy %g J (rel %g)", alg, rm.RecoveryJ, rel)
		}
		if rm.MaxRelDiff != 0 {
			t.Fatalf("%v: fault-free run changed the solution by %g", alg, rm.MaxRelDiff)
		}
	}
}

// crashyOptions picks an MTBF a fraction of the known small-order
// makespan so the deterministic schedule contains at least one crash.
func crashyOptions(t *testing.T, alg perfmodel.Algorithm) (ResilienceOptions, ResilientMeasurement) {
	t.Helper()
	probe, err := RunResilient(resilientExperiment(alg), ResilienceOptions{MTBF: faultFreeMTBF, Seed: 1, Storage: testStorage()})
	if err != nil {
		t.Fatal(err)
	}
	ro := ResilienceOptions{MTBF: probe.BaselineDurationS / 4, Seed: 5, Storage: testStorage()}
	rm, err := RunResilient(resilientExperiment(alg), ro)
	if err != nil {
		t.Fatalf("%v under MTBF %g: %v", alg, ro.MTBF, err)
	}
	if rm.Crashes == 0 {
		t.Fatalf("%v: MTBF %g over horizon %g drew no crashes; pick another seed",
			alg, ro.MTBF, rm.BaselineDurationS)
	}
	return ro, rm
}

func TestResilientIMeRecoversInPlace(t *testing.T) {
	_, rm := crashyOptions(t, perfmodel.IMe)
	if rm.Recoveries == 0 {
		t.Fatalf("crashes scheduled (%d) but no checksum recoveries ran", rm.Crashes)
	}
	if rm.Restarts != 0 || rm.CheckpointWrites != 0 {
		t.Fatalf("IMe must recover in place, got %d restarts / %d checkpoint writes",
			rm.Restarts, rm.CheckpointWrites)
	}
	if rm.RecoveryJ <= 0 {
		t.Fatalf("recovery must cost energy, got %g J", rm.RecoveryJ)
	}
	if rm.DurationS <= rm.BaselineDurationS {
		t.Fatalf("recovery must cost time: %g vs baseline %g", rm.DurationS, rm.BaselineDurationS)
	}
}

func TestResilientScalapackRestartsFromCheckpoint(t *testing.T) {
	_, rm := crashyOptions(t, perfmodel.ScaLAPACK)
	if rm.Restarts == 0 {
		t.Fatalf("crashes scheduled (%d) but no restarts ran", rm.Crashes)
	}
	if rm.CheckpointWrites == 0 {
		t.Fatal("checkpointed run recorded no snapshot writes")
	}
	if rm.RecoveryJ <= 0 {
		t.Fatalf("replayed work must cost energy, got %g J", rm.RecoveryJ)
	}
	if rm.DurationS <= rm.BaselineDurationS {
		t.Fatalf("restarts must cost time: %g vs baseline %g", rm.DurationS, rm.BaselineDurationS)
	}
}

// TestResilientDeterminism pins satellite guarantee: the same seed yields
// bit-identical schedules and virtual clocks, and energies equal to
// accumulation-order rounding (1e-9 relative), across repeated runs.
func TestResilientDeterminism(t *testing.T) {
	for _, alg := range []perfmodel.Algorithm{perfmodel.IMe, perfmodel.ScaLAPACK} {
		ro, first := crashyOptions(t, alg)
		again, err := RunResilient(resilientExperiment(alg), ro)
		if err != nil {
			t.Fatal(err)
		}
		if first.Crashes != again.Crashes || first.Restarts != again.Restarts ||
			first.Recoveries != again.Recoveries || first.CheckpointWrites != again.CheckpointWrites {
			t.Fatalf("%v: fault counts diverged across runs: %+v vs %+v", alg, first, again)
		}
		if first.DurationS != again.DurationS || first.BaselineDurationS != again.BaselineDurationS {
			t.Fatalf("%v: virtual clocks diverged: %.17g vs %.17g", alg, first.DurationS, again.DurationS)
		}
		if rel := math.Abs(first.TotalJ-again.TotalJ) / first.TotalJ; rel > 1e-9 {
			t.Fatalf("%v: energies diverged beyond rounding: %.17g vs %.17g", alg, first.TotalJ, again.TotalJ)
		}
		if first.MaxRelDiff != again.MaxRelDiff || first.Residual != again.Residual {
			t.Fatalf("%v: solutions diverged across runs", alg)
		}
	}
}

// TestResilienceStudyCrossoverShape pins the headline claim: under
// frequent crashes IMe's in-place checksum recovery undercuts ScaLAPACK's
// restart replays, while under rare crashes ScaLAPACK's lower baseline
// energy wins — so the sweep has a crossover.
func TestResilienceStudyCrossoverShape(t *testing.T) {
	probe, err := RunResilient(resilientExperiment(perfmodel.ScaLAPACK),
		ResilienceOptions{MTBF: faultFreeMTBF, Seed: 1, Storage: testStorage()})
	if err != nil {
		t.Fatal(err)
	}
	base := probe.BaselineDurationS
	mtbfs := []float64{base / 8, base / 4, base, 4 * base, faultFreeMTBF}
	pts, err := ResilienceStudy(resilientExperiment(0), mtbfs, ResilienceOptions{Seed: 5, Storage: testStorage()})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(mtbfs) {
		t.Fatalf("study returned %d points, want %d", len(pts), len(mtbfs))
	}
	if w := pts[0].Winner(); w != perfmodel.IMe {
		t.Fatalf("at MTBF %g (frequent crashes) winner = %v, want IMe (IMe %g J vs ScaLAPACK %g J)",
			pts[0].MTBF, w, pts[0].IMe.TotalJ, pts[0].ScaLAPACK.TotalJ)
	}
	last := pts[len(pts)-1]
	if w := last.Winner(); w != perfmodel.ScaLAPACK {
		t.Fatalf("at MTBF %g (no crashes) winner = %v, want ScaLAPACK (IMe %g J vs ScaLAPACK %g J)",
			last.MTBF, w, last.IMe.TotalJ, last.ScaLAPACK.TotalJ)
	}
	lo, hi, ok := CrossoverMTBF(pts)
	if !ok {
		t.Fatal("no crossover located across the sweep")
	}
	t.Logf("crossover between MTBF %g and %g", lo, hi)

	var sb strings.Builder
	if err := WriteResilienceTable(&sb, pts); err != nil {
		t.Fatal(err)
	}
	table := sb.String()
	if !strings.Contains(table, "| MTBF (s) |") || strings.Count(table, "\n") != len(pts)+2 {
		t.Fatalf("malformed resilience table:\n%s", table)
	}

	// Study determinism: re-rendering from a fresh sweep is byte-identical.
	pts2, err := ResilienceStudy(resilientExperiment(0), mtbfs, ResilienceOptions{Seed: 5, Storage: testStorage()})
	if err != nil {
		t.Fatal(err)
	}
	var sb2 strings.Builder
	if err := WriteResilienceTable(&sb2, pts2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != table {
		t.Fatalf("resilience table not deterministic:\n%s\nvs\n%s", table, sb2.String())
	}
}
