// Package core orchestrates the paper's experiments end to end: it binds
// the cluster model, the two solvers, the white-box monitoring framework
// and the analytic engine into Experiment specifications and Measurement
// results — the "testing framework" of §4 that "automatically collects and
// stores results in a human-readable format".
//
// Two engines execute an Experiment:
//
//   - RunMonitored executes the real distributed solver on the simulated
//     cluster under the monitoring framework (exact numerics, counters
//     read through PAPI/RAPL). Feasible for small orders; used by tests,
//     examples and the overhead study.
//   - RunAnalytic replays the solver's schedule through internal/perfmodel
//     at paper scale; used by the figure benchmarks.
package core

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/cluster"
	"repro/internal/ime"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/monitor"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/rapl"
	"repro/internal/scalapack"
)

// Phase selects what the monitoring window covers (§5.1: the algorithm is
// divided into matrix allocation and execution; the paper monitors both
// the general execution and the computation phase alone).
type Phase int

const (
	// PhaseGeneral monitors allocation + solve + deallocation.
	PhaseGeneral Phase = iota
	// PhaseCompute monitors the solver execution only.
	PhaseCompute
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	if p == PhaseCompute {
		return "compute"
	}
	return "general"
}

// Experiment is one job specification of the evaluation grid.
type Experiment struct {
	Algorithm perfmodel.Algorithm
	N         int
	Ranks     int
	Placement cluster.Placement
	// Seed generates the input system deterministically (the paper loads
	// fixed inputs from file for repeatability).
	Seed int64
	// Phase selects the monitored window (monitored engine only).
	Phase Phase
	// BlockSize is ScaLAPACK's nb (default when 0).
	BlockSize int
}

// Measurement is the outcome of one executed or modelled experiment.
type Measurement struct {
	Experiment Experiment
	Config     cluster.Config
	DurationS  float64
	TotalJ     float64
	EnergyJ    map[rapl.Domain]float64
	// Residual is the relative residual of the computed solution
	// (monitored engine only; 0 for analytic runs).
	Residual float64
	// Engine names which engine produced the measurement.
	Engine string
}

// AvgPowerW is the measurement's average power.
func (m Measurement) AvgPowerW() float64 {
	if m.DurationS <= 0 {
		return 0
	}
	return m.TotalJ / m.DurationS
}

// DramPowerW is the measurement's average DRAM power.
func (m Measurement) DramPowerW() float64 {
	if m.DurationS <= 0 {
		return 0
	}
	return (m.EnergyJ[rapl.DRAM0] + m.EnergyJ[rapl.DRAM1]) / m.DurationS
}

// AlgorithmFlops returns the arithmetic work of the experiment's solver.
func (m Measurement) AlgorithmFlops() float64 {
	if m.Experiment.Algorithm == perfmodel.IMe {
		return ime.TotalFlops(m.Experiment.N)
	}
	return scalapack.TotalFlops(m.Experiment.N)
}

// GFlopsPerWatt is the Green500 efficiency metric the paper's introduction
// frames the study with ("the Green 500 lists the world's most
// energy-efficient supercomputers, based on floating point operations per
// second per watt"). Note it favours ScaLAPACK twice over: fewer flops AND
// less energy.
func (m Measurement) GFlopsPerWatt() float64 {
	if m.TotalJ <= 0 {
		return 0
	}
	// flops/s ÷ W = flops/J.
	return m.AlgorithmFlops() / m.TotalJ / 1e9
}

// resolveConfig validates the experiment against the machine.
func (e Experiment) resolveConfig(spec *cluster.MachineSpec) (cluster.Config, error) {
	if e.N <= 0 {
		return cluster.Config{}, fmt.Errorf("core: order %d must be positive", e.N)
	}
	return cluster.NewConfig(e.Ranks, e.Placement, spec)
}

// RunAnalytic models the experiment at paper scale.
func RunAnalytic(e Experiment, prm perfmodel.Params) (Measurement, error) {
	cfg, err := e.resolveConfig(cluster.MarconiA3())
	if err != nil {
		return Measurement{}, err
	}
	if e.BlockSize > 0 {
		prm.BlockSize = e.BlockSize
	}
	res, err := perfmodel.Run(e.Algorithm, e.N, cfg, prm)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Experiment: e,
		Config:     cfg,
		DurationS:  res.DurationS,
		TotalJ:     res.TotalJ,
		EnergyJ:    res.EnergyJ,
		Engine:     "analytic",
	}, nil
}

// allocationBandwidth models first-touch page population during matrix
// allocation (bytes/second per rank) for the monitored engine's general
// phase.
const allocationBandwidth = 4e9

// Instrumentation requests optional observability artifacts from a
// monitored run. Both writers are optional; a nil writer disables that
// artifact and its collection entirely, so an empty Instrumentation is
// byte-identical to the uninstrumented path.
type Instrumentation struct {
	// TraceW receives the Perfetto/Chrome trace JSON (span timeline plus
	// RAPL power counter tracks).
	TraceW io.Writer
	// MetricsW receives the Prometheus text exposition of the run's
	// metrics registry (MPI traffic, per-rank activity, solver and kernel
	// pool series, RAPL energy counters).
	MetricsW io.Writer
}

// RunMonitored executes the experiment on the simulated cluster: real
// distributed numerics under the §4 monitoring framework. The system is
// generated from the experiment seed (standing in for the paper's input
// files). Feasible for small N and rank counts.
func RunMonitored(e Experiment) (Measurement, error) {
	m, _, err := RunMonitoredInstrumented(e, Instrumentation{})
	return m, err
}

// RunMonitoredInstrumented is RunMonitored with the telemetry layer
// switched on: it additionally streams the requested artifacts and, when
// tracing is enabled, returns the critical-path analysis of the recorded
// spans. Collection is passive — simulated durations, energies and the
// solution are identical to RunMonitored's.
func RunMonitoredInstrumented(e Experiment, inst Instrumentation) (Measurement, *mpi.TraceStats, error) {
	cfg, err := e.resolveConfig(cluster.MarconiA3())
	if err != nil {
		return Measurement{}, nil, err
	}
	if e.Ranks > e.N {
		return Measurement{}, nil, fmt.Errorf("core: %d ranks exceed order %d", e.Ranks, e.N)
	}
	sys := mat.CachedSystem(e.N, e.Seed)
	w, err := mpi.NewWorld(e.Ranks, mpi.Options{Config: &cfg})
	if err != nil {
		return Measurement{}, nil, err
	}
	if inst.TraceW != nil {
		w.EnableTracing()
	}
	if inst.MetricsW != nil {
		kernel.EnableMetrics(w.EnableMetrics())
		// The pool instruments are process-global; detach them so later
		// runs don't keep feeding this run's registry.
		defer kernel.EnableMetrics(nil)
	}

	var mu sync.Mutex
	var reports []monitor.NodeReport
	var residual float64
	err = w.Run(func(p *mpi.Proc) error {
		s, err := monitor.Setup(p, p.World())
		if err != nil {
			return err
		}
		if e.Phase == PhaseGeneral {
			if err := s.StartMonitoring(); err != nil {
				return err
			}
		}
		// Matrix allocation: first touch of this rank's table share.
		share := allocationShareBytes(e, p)
		p.Compute(share/allocationBandwidth, share)
		if e.Phase == PhaseCompute {
			if err := s.StartMonitoring(); err != nil {
				return err
			}
		}
		x, err := solve(p, e, sys)
		if err != nil {
			return err
		}
		rep, err := s.StopMonitoring()
		if err != nil {
			return err
		}
		all, err := monitor.CollectReports(p, p.World(), rep)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			mu.Lock()
			reports = all
			residual = mat.RelativeResidual(sys.A, x, sys.B)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return Measurement{}, nil, err
	}

	sum := monitor.Summarize(reports)
	m := Measurement{
		Experiment: e,
		Config:     cfg,
		DurationS:  sum.DurationS,
		TotalJ:     sum.TotalJ,
		EnergyJ:    make(map[rapl.Domain]float64, 4),
		Residual:   residual,
		Engine:     "monitored",
	}
	for _, d := range rapl.Domains() {
		m.EnergyJ[d] = sum.ByEvent["powercap:::"+d.String()]
	}

	var ts *mpi.TraceStats
	if inst.TraceW != nil {
		if err := w.WriteChromeTrace(inst.TraceW); err != nil {
			return Measurement{}, nil, fmt.Errorf("core: write trace: %w", err)
		}
		ts, err = mpi.AnalyzeSpans(w.Spans())
		if err != nil {
			return Measurement{}, nil, fmt.Errorf("core: analyze trace: %w", err)
		}
	}
	if inst.MetricsW != nil {
		w.SnapshotEnergyMetrics()
		if err := w.MetricsRegistry().WritePrometheus(inst.MetricsW); err != nil {
			return Measurement{}, nil, fmt.Errorf("core: write metrics: %w", err)
		}
	}
	return m, ts, nil
}

// allocationShareBytes is the table memory one rank first-touches.
func allocationShareBytes(e Experiment, p *mpi.Proc) float64 {
	n := float64(e.N)
	perRank := n * n * mpi.Float64Bytes / float64(e.Ranks)
	if e.Algorithm == perfmodel.IMe {
		// IMe's table is n×2n (the paper's 2n² term of m_o).
		perRank *= 2
	}
	_ = p
	return perRank
}

// solve dispatches to the experiment's algorithm.
func solve(p *mpi.Proc, e Experiment, sys *mat.System) ([]float64, error) {
	switch e.Algorithm {
	case perfmodel.IMe:
		return ime.SolveParallel(p, p.World(), sys, ime.ParallelOptions{ChargeCosts: true})
	case perfmodel.ScaLAPACK:
		return scalapack.Pdgesv(p, p.World(), sys, scalapack.ParallelOptions{
			BlockSize:   e.BlockSize,
			ChargeCosts: true,
		})
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", e.Algorithm)
	}
}
