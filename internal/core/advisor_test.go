package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/perfmodel"
)

func TestRecommendMinTimeFollowsCrossover(t *testing.T) {
	prm := perfmodel.Params{Overlap: true}
	// Dense deployment: ScaLAPACK is the faster choice.
	dense, err := Recommend(34560, 144, cluster.FullLoad, MinTime, prm)
	if err != nil {
		t.Fatal(err)
	}
	if dense.Best != perfmodel.ScaLAPACK {
		t.Fatalf("dense min-time pick = %v", dense.Best)
	}
	if dense.Margin <= 0 || dense.Margin >= 1 {
		t.Fatalf("margin = %g", dense.Margin)
	}
	// Distributed small problem: IMe wins on time.
	distr, err := Recommend(8640, 1296, cluster.FullLoad, MinTime, prm)
	if err != nil {
		t.Fatal(err)
	}
	if distr.Best != perfmodel.IMe {
		t.Fatalf("distributed min-time pick = %v", distr.Best)
	}
}

func TestRecommendMinEnergyPrefersScalapackWhenDense(t *testing.T) {
	rec, err := Recommend(25920, 144, cluster.FullLoad, MinEnergy, perfmodel.Params{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best != perfmodel.ScaLAPACK {
		t.Fatalf("dense min-energy pick = %v", rec.Best)
	}
	// The margin should land near the paper's 50–60% energy gap.
	if rec.Margin < 0.4 || rec.Margin > 0.65 {
		t.Fatalf("energy margin = %.0f%%", rec.Margin*100)
	}
}

func TestRecommendMaxEfficiency(t *testing.T) {
	// ScaLAPACK does fewer flops AND uses less energy in dense cells, so
	// on flops/W the verdict can differ from raw energy only when IMe's
	// extra flops outweigh its energy penalty; verify the metric is
	// computed and consistent.
	rec, err := Recommend(17280, 144, cluster.FullLoad, MaxEfficiency, perfmodel.Params{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.IMe.GFlopsPerWatt() <= 0 || rec.ScaLAPACK.GFlopsPerWatt() <= 0 {
		t.Fatal("efficiency metric not computed")
	}
	want := perfmodel.ScaLAPACK
	if rec.IMe.GFlopsPerWatt() > rec.ScaLAPACK.GFlopsPerWatt() {
		want = perfmodel.IMe
	}
	if rec.Best != want {
		t.Fatalf("efficiency pick %v, metrics say %v", rec.Best, want)
	}
}

func TestRecommendValidation(t *testing.T) {
	if _, err := Recommend(100, 7, cluster.FullLoad, MinEnergy, perfmodel.Params{}); err == nil {
		t.Fatal("invalid shape accepted")
	}
	if _, err := Recommend(8640, 144, cluster.FullLoad, Objective(9), perfmodel.Params{}); err == nil {
		t.Fatal("unknown objective accepted")
	}
	if MinEnergy.String() != "min-energy" || Objective(9).String() == "" {
		t.Fatal("objective names broken")
	}
}
