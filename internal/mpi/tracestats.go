package mpi

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/report"
)

// RankStats is one rank's activity breakdown over a recorded trace.
// Seconds are virtual; only primitive spans (compute, send, recv, wait)
// contribute, so nested collective/phase wrappers are not double-counted.
type RankStats struct {
	Rank     int
	ComputeS float64 // compute spans
	CommS    float64 // send + recv overhead spans
	WaitS    float64 // busy-wait spans (blocked on messages or barriers)
	IdleS    float64 // makespan minus everything attributed above
}

// Busy returns the attributed (non-idle) seconds.
func (r *RankStats) Busy() float64 { return r.ComputeS + r.CommS + r.WaitS }

// TraceStats is the result of AnalyzeSpans: per-rank breakdowns plus the
// critical path through the virtual-time DAG.
type TraceStats struct {
	Ranks    []RankStats
	Makespan float64

	// CriticalS is the accumulated cost of the critical path: the longest
	// chain of compute/communication spans linked by program order within
	// a rank and by matched send→recv pairs across ranks. Wait spans are
	// traversable at zero cost (a rank blocked on a message is not doing
	// work the path has to account for), so CriticalS ≤ Makespan and the
	// gap is synchronisation slack.
	CriticalS        float64
	CriticalComputeS float64
	CriticalCommS    float64
	// CriticalSpans counts the costed spans on the path and CriticalHops
	// how many times the path crosses ranks over a message edge.
	CriticalSpans int
	CriticalHops  int
}

// msgKey identifies one FIFO message stream for send→recv matching.
type msgKey struct {
	src, dst, tag int
}

// AnalyzeSpans computes per-rank breakdowns and the critical path of a
// recorded trace (World.Spans or ReadChromeTrace output). Only primitive
// spans participate; collective and phase wrapper spans are ignored.
func AnalyzeSpans(spans []Span) (*TraceStats, error) {
	// Primitive spans in global time order (stable keeps per-rank program
	// order for identical starts, e.g. zero-overhead cost models).
	var prim []Span
	maxRank := -1
	makespan := 0.0
	for _, s := range spans {
		if s.End > makespan {
			makespan = s.End
		}
		if s.Rank > maxRank {
			maxRank = s.Rank
		}
		switch s.Kind {
		case "compute", "send", "recv", "wait":
			prim = append(prim, s)
		}
	}
	if len(prim) == 0 {
		return nil, fmt.Errorf("mpi: no primitive spans to analyze")
	}
	sort.SliceStable(prim, func(i, j int) bool {
		if prim[i].Start != prim[j].Start {
			return prim[i].Start < prim[j].Start
		}
		return prim[i].End < prim[j].End
	})

	stats := make([]RankStats, maxRank+1)
	for r := range stats {
		stats[r].Rank = r
	}
	for _, s := range prim {
		d := s.End - s.Start
		switch s.Kind {
		case "compute":
			stats[s.Rank].ComputeS += d
		case "send", "recv":
			stats[s.Rank].CommS += d
		case "wait":
			stats[s.Rank].WaitS += d
		}
	}
	for r := range stats {
		idle := makespan - stats[r].Busy()
		if idle < 0 {
			idle = 0
		}
		stats[r].IdleS = idle
	}

	// Longest path over the DAG: program-order edges chain each rank's
	// spans; message edges link the i-th send on a (src,dst,tag) stream to
	// the i-th recv (the runtime delivers per-stream FIFO). prim is sorted
	// by start time and every edge points forward in time, so a single
	// left-to-right sweep is a topological traversal.
	sends := make(map[msgKey][]int) // span indices of unmatched sends
	recvd := make(map[msgKey]int)   // recvs consumed per stream
	dist := make([]float64, len(prim))
	lastOfRank := make([]int, maxRank+1)
	for r := range lastOfRank {
		lastOfRank[r] = -1
	}
	pred := make([]int, len(prim))
	for i, s := range prim {
		switch s.Kind {
		case "send":
			k := msgKey{src: s.Rank, dst: s.Peer, tag: s.Tag}
			sends[k] = append(sends[k], i)
		case "recv":
			// Sends precede their recvs in time, so the matching send has
			// already been indexed when the sweep reaches the recv.
		}
		cost := s.End - s.Start
		if s.Kind == "wait" {
			cost = 0
		}
		best, from := 0.0, -1
		if p := lastOfRank[s.Rank]; p >= 0 && dist[p] > best {
			best, from = dist[p], p
		}
		if s.Kind == "recv" {
			k := msgKey{src: s.Peer, dst: s.Rank, tag: s.Tag}
			idx := recvd[k]
			if q := sends[k]; idx < len(q) {
				if d := dist[q[idx]]; d > best {
					best, from = d, q[idx]
				}
				recvd[k] = idx + 1
			}
		}
		dist[i] = best + cost
		pred[i] = from
		lastOfRank[s.Rank] = i
	}

	out := &TraceStats{Ranks: stats, Makespan: makespan}
	end := 0
	for i := range dist {
		if dist[i] > dist[end] {
			end = i
		}
	}
	for i := end; i >= 0; i = pred[i] {
		s := prim[i]
		switch s.Kind {
		case "compute":
			out.CriticalComputeS += s.End - s.Start
			out.CriticalSpans++
		case "send", "recv":
			out.CriticalCommS += s.End - s.Start
			out.CriticalSpans++
		}
		if p := pred[i]; p >= 0 && prim[p].Rank != s.Rank {
			out.CriticalHops++
		}
	}
	out.CriticalS = dist[end]
	return out, nil
}

// pct formats v as a percentage of total.
func pct(v, total float64) string {
	if total <= 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*v/total)
}

// WriteReport renders the per-rank breakdown and critical-path summary as
// aligned text tables (the cmd/tracestats output, also surfaced by the
// benchmark tools' -trace flags).
func (st *TraceStats) WriteReport(w io.Writer) error {
	t := &report.Table{
		Title:   "Per-rank activity (virtual seconds)",
		Headers: []string{"rank", "compute", "comm", "wait", "idle", "compute%", "comm%", "wait%"},
	}
	for _, r := range st.Ranks {
		t.Add(r.Rank, r.ComputeS, r.CommS, r.WaitS, r.IdleS,
			pct(r.ComputeS, st.Makespan), pct(r.CommS, st.Makespan), pct(r.WaitS, st.Makespan))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	c := &report.Table{
		Title:   "Critical path (virtual-time DAG)",
		Headers: []string{"makespan_s", "critical_s", "critical%", "compute_s", "comm_s", "spans", "rank_hops"},
	}
	c.Add(st.Makespan, st.CriticalS, pct(st.CriticalS, st.Makespan),
		st.CriticalComputeS, st.CriticalCommS, st.CriticalSpans, st.CriticalHops)
	return c.Render(w)
}

// WriteCSV emits the per-rank breakdown as CSV (machine-readable
// counterpart of WriteReport; the critical-path summary rides along as a
// second table).
func (st *TraceStats) WriteCSV(w io.Writer) error {
	t := &report.Table{
		Headers: []string{"rank", "compute_s", "comm_s", "wait_s", "idle_s"},
	}
	for _, r := range st.Ranks {
		t.Add(r.Rank, r.ComputeS, r.CommS, r.WaitS, r.IdleS)
	}
	if err := t.CSV(w); err != nil {
		return err
	}
	c := &report.Table{
		Headers: []string{"makespan_s", "critical_s", "critical_compute_s", "critical_comm_s", "critical_spans", "rank_hops"},
	}
	c.Add(st.Makespan, st.CriticalS, st.CriticalComputeS, st.CriticalCommS, st.CriticalSpans, st.CriticalHops)
	return c.CSV(w)
}
