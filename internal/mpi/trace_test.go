package mpi

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testSpec is a tiny machine (2 sockets × 2 cores) so multi-node traces
// stay small: HalfLoadTwoSockets packs 2 ranks per node.
func testSpec(totalNodes int) *cluster.MachineSpec {
	return &cluster.MachineSpec{
		Name:           "test-machine",
		TotalNodes:     totalNodes,
		SocketsPerNode: 2,
		CoresPerSocket: 2,
		MemPerNodeGB:   8,
		ClockGHz:       2.0,
		PeakNodeGFlops: 100,
	}
}

func TestTracingRecordsSpans(t *testing.T) {
	w := newTestWorld(t, 2)
	w.EnableTracing()
	err := w.Run(func(p *Proc) error {
		c := p.World()
		p.Compute(0.5, 0)
		if p.Rank() == 0 {
			return p.Send(c, 1, 7, []float64{1, 2, 3})
		}
		_, err := p.Recv(c, 0, 7)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	spans := w.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	kinds := map[string]int{}
	makespan := w.MaxClock()
	for _, s := range spans {
		kinds[s.Kind]++
		if s.Start < 0 || s.End > makespan+1e-12 || s.End <= s.Start {
			t.Fatalf("span %+v outside [0, %g]", s, makespan)
		}
		if s.Rank < 0 || s.Rank > 1 {
			t.Fatalf("span rank %d", s.Rank)
		}
		switch s.Kind {
		case "send":
			if s.Peer != 1 || s.Tag != 7 || s.Bytes != 3*8 {
				t.Fatalf("send span missing metadata: %+v", s)
			}
		case "recv":
			if s.Peer != 0 || s.Tag != 7 || s.Bytes != 3*8 {
				t.Fatalf("recv span missing metadata: %+v", s)
			}
		}
	}
	for _, want := range []string{"compute", "send", "recv"} {
		if kinds[want] == 0 {
			t.Errorf("no %q spans recorded (%v)", want, kinds)
		}
	}
	// Spans sorted by (rank, start).
	for i := 1; i < len(spans); i++ {
		a, b := spans[i-1], spans[i]
		if a.Rank > b.Rank || (a.Rank == b.Rank && a.Start > b.Start) {
			t.Fatal("spans not sorted")
		}
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		p.Compute(0.1, 0)
		ph := p.BeginPhase("noop", -1)
		p.EndPhase(ph)
		p.MarkInstant("nothing")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Spans() != nil {
		t.Fatal("spans recorded without EnableTracing")
	}
	if w.CounterSamples() != nil {
		t.Fatal("counter samples recorded without EnableTracing")
	}
	var buf bytes.Buffer
	if err := w.WriteChromeTrace(&buf); err == nil {
		t.Fatal("chrome trace without tracing accepted")
	}
}

func TestCollectiveAndPhaseSpans(t *testing.T) {
	w := newTestWorld(t, 4)
	w.EnableTracing()
	err := w.Run(func(p *Proc) error {
		c := p.World()
		ph := p.BeginPhase("elimination-level", 3)
		if _, err := p.Bcast(c, 0, []float64{1, 2}); err != nil {
			return err
		}
		p.Compute(0.01, 0)
		p.EndPhase(ph)
		if _, err := p.AllreduceSum(c, []float64{1}); err != nil {
			return err
		}
		return p.Barrier(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	var phase *Span
	for _, s := range w.Spans() {
		s := s
		byName[s.Kind+"/"+s.Name]++
		if s.Kind == "phase" && phase == nil {
			phase = &s
		}
	}
	for _, want := range []string{"collective/bcast", "collective/allreduce", "collective/barrier", "phase/elimination-level"} {
		if byName[want] == 0 {
			t.Errorf("no %q span (have %v)", want, byName)
		}
	}
	if phase == nil || phase.Level != 3 {
		t.Fatalf("phase span missing level: %+v", phase)
	}
	if got := phase.DisplayName(); got != "elimination-level 3" {
		t.Fatalf("DisplayName = %q", got)
	}
}

func TestCounterSamplesRecorded(t *testing.T) {
	cfg, err := cluster.NewConfig(4, cluster.HalfLoadTwoSockets, testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(4, Options{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	w.EnableTracing()
	err = w.Run(func(p *Proc) error {
		for i := 0; i < 5; i++ {
			p.Compute(0.01, 1e6)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := w.CounterSamples()
	perNode := map[int]int{}
	for i, s := range samples {
		perNode[s.Node]++
		if i > 0 && samples[i-1].Node == s.Node {
			if s.Time <= samples[i-1].Time {
				t.Fatalf("samples not time-sorted: %+v after %+v", s, samples[i-1])
			}
			for d := range s.Joules {
				if s.Joules[d] < samples[i-1].Joules[d] {
					t.Fatalf("energy decreased in domain %d: %+v -> %+v", d, samples[i-1], s)
				}
			}
		}
	}
	// 2 nodes, ≥ baseline + final sample each, plus interval samples over
	// the 50 ms of activity.
	for node := 0; node < 2; node++ {
		if perNode[node] < 3 {
			t.Fatalf("node %d has %d samples, want ≥ 3", node, perNode[node])
		}
	}
}

// traceDoc mirrors the exported trace object for assertions.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTrace(t *testing.T) {
	// Two nodes so the per-node pid split is observable.
	cfg, err := cluster.NewConfig(4, cluster.HalfLoadTwoSockets, testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(4, Options{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	w.EnableTracing()
	err = w.Run(func(p *Proc) error {
		p.Compute(0.01*float64(p.Rank()+1), 1e5)
		return p.Barrier(p.World())
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	var threadNames, spans, counters int
	pids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threadNames++
			}
		case "X":
			spans++
			pids[e.Pid] = true
			if e.Dur <= 0 {
				t.Fatalf("bad span event %+v", e)
			}
		case "C":
			counters++
			if _, ok := e.Args["W"]; !ok {
				t.Fatalf("counter event without W arg: %+v", e)
			}
		}
	}
	if threadNames != 4 {
		t.Fatalf("thread_name metadata for %d ranks, want 4", threadNames)
	}
	if spans == 0 || counters == 0 {
		t.Fatalf("spans=%d counters=%d, want both > 0", spans, counters)
	}
	// Ranks 0-1 live on node 0, ranks 2-3 on node 1: two process rows.
	if !pids[0] || !pids[1] {
		t.Fatalf("span pids %v, want nodes 0 and 1", pids)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	w := newTestWorld(t, 2)
	w.EnableTracing()
	err := w.Run(func(p *Proc) error {
		c := p.World()
		ph := p.BeginPhase("panel", 2)
		p.Compute(0.02, 0)
		p.EndPhase(ph)
		if p.Rank() == 0 {
			return p.Send(c, 1, 5, make([]float64, 10))
		}
		_, err := p.Recv(c, 0, 5)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := w.Spans()
	if len(got) != len(want) {
		t.Fatalf("round trip produced %d spans, want %d", len(got), len(want))
	}
	for i := range want {
		a, b := want[i], got[i]
		if a.Rank != b.Rank || a.Kind != b.Kind || a.Name != b.Name ||
			a.Peer != b.Peer || a.Tag != b.Tag || a.Bytes != b.Bytes || a.Level != b.Level {
			t.Fatalf("span %d mismatch:\nwant %+v\ngot  %+v", i, a, b)
		}
		if diff := a.Start - b.Start; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("span %d start drifted: %g vs %g", i, a.Start, b.Start)
		}
	}
}

// TestPerfettoGolden pins the full Perfetto export of a deterministic
// two-rank scenario so format regressions show up as a diff.
func TestPerfettoGolden(t *testing.T) {
	w := newTestWorld(t, 2)
	w.EnableTracing()
	err := w.Run(func(p *Proc) error {
		c := p.World()
		ph := p.BeginPhase("elimination-level", 1)
		p.Compute(0.002, 1e5)
		var err error
		if p.Rank() == 0 {
			err = p.Send(c, 1, 3, []float64{1, 2, 3, 4})
		} else {
			_, err = p.Recv(c, 0, 3)
		}
		p.EndPhase(ph)
		if err != nil {
			return err
		}
		p.MarkInstant("checkpoint")
		return p.Barrier(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("perfetto export drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
