package mpi

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTracingRecordsSpans(t *testing.T) {
	w := newTestWorld(t, 2)
	w.EnableTracing()
	err := w.Run(func(p *Proc) error {
		c := p.World()
		p.Compute(0.5, 0)
		if p.Rank() == 0 {
			return p.Send(c, 1, 0, []float64{1, 2, 3})
		}
		_, err := p.Recv(c, 0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	spans := w.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	kinds := map[string]int{}
	makespan := w.MaxClock()
	for _, s := range spans {
		kinds[s.Kind]++
		if s.Start < 0 || s.End > makespan+1e-12 || s.End <= s.Start {
			t.Fatalf("span %+v outside [0, %g]", s, makespan)
		}
		if s.Rank < 0 || s.Rank > 1 {
			t.Fatalf("span rank %d", s.Rank)
		}
	}
	for _, want := range []string{"compute", "send", "recv"} {
		if kinds[want] == 0 {
			t.Errorf("no %q spans recorded (%v)", want, kinds)
		}
	}
	// Rank 1 received after rank 0's 0.5 s compute while it had long
	// finished its own — must show a wait span.
	if kinds["wait"] != 0 {
		// Both ranks compute 0.5 s, so arrival ≈ receive time; a wait span
		// may or may not appear. Either is fine — only ordering matters.
		_ = kinds
	}
	// Spans sorted by (rank, start).
	for i := 1; i < len(spans); i++ {
		a, b := spans[i-1], spans[i]
		if a.Rank > b.Rank || (a.Rank == b.Rank && a.Start > b.Start) {
			t.Fatal("spans not sorted")
		}
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		p.Compute(0.1, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Spans() != nil {
		t.Fatal("spans recorded without EnableTracing")
	}
	var buf bytes.Buffer
	if err := w.WriteChromeTrace(&buf); err == nil {
		t.Fatal("chrome trace without tracing accepted")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	w := newTestWorld(t, 3)
	w.EnableTracing()
	err := w.Run(func(p *Proc) error {
		p.Compute(0.01*float64(p.Rank()+1), 0)
		return p.Barrier(p.World())
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Tid  int     `json:"tid"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	for _, e := range events {
		if e.Ph != "X" || e.Dur <= 0 {
			t.Fatalf("bad event %+v", e)
		}
	}
}
