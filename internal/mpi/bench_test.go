package mpi

import "testing"

// benchmarkSendRecv drives a 2-rank ping stream through the runtime; the
// per-op cost is one Send plus one Recv. Comparing the three variants
// bounds what the telemetry layer adds to the message path — with both
// disabled the only added work is two nil pointer checks, which should be
// within noise (< 2 ns/op) of the pre-telemetry runtime.
func benchmarkSendRecv(b *testing.B, metrics, tracing bool) {
	w, err := NewWorld(2, Options{})
	if err != nil {
		b.Fatal(err)
	}
	if metrics {
		w.EnableMetrics()
	}
	if tracing {
		w.EnableTracing()
	}
	payload := make([]float64, 64)
	b.ResetTimer()
	err = w.Run(func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				if err := p.Send(c, 1, 1, payload); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < b.N; i++ {
			buf, err := p.Recv(c, 0, 1)
			if err != nil {
				return err
			}
			p.Recycle(buf)
		}
		return nil
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSendRecvTelemetryOff(b *testing.B) { benchmarkSendRecv(b, false, false) }
func BenchmarkSendRecvMetricsOn(b *testing.B)    { benchmarkSendRecv(b, true, false) }
func BenchmarkSendRecvTracingOn(b *testing.B)    { benchmarkSendRecv(b, false, true) }
