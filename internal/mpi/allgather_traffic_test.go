package mpi

import (
	"fmt"
	"testing"
)

// TestAllgatherBruckTraffic pins the message accounting of the Bruck
// all-gather: every rank sends exactly one message per round, so the world
// total is size·TreeDepth(size) messages carrying size·(size−1)·per
// elements. The M_IMeP / V_IMeP validation suite depends on collective
// message counts staying put, so any change here must be deliberate.
func TestAllgatherBruckTraffic(t *testing.T) {
	for _, size := range []int{2, 3, 4, 6, 8, 9, 16} {
		for _, per := range []int{1, 3} {
			w := newTestWorld(t, size)
			err := w.Run(func(p *Proc) error {
				data := make([]float64, per)
				for i := range data {
					data[i] = float64(p.Rank()*per + i)
				}
				all, err := p.Allgather(p.World(), data)
				if err != nil {
					return err
				}
				for r := 0; r < size; r++ {
					for i := 0; i < per; i++ {
						if all[r][i] != float64(r*per+i) {
							return fmt.Errorf("rank %d sees %v from %d", p.Rank(), all[r], r)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("size %d per %d: %v", size, per, err)
			}
			msgs, vol := w.Traffic()
			wantMsgs := int64(size * TreeDepth(size))
			wantVol := int64(size * (size - 1) * per)
			if msgs != wantMsgs || vol != wantVol {
				t.Errorf("size %d per %d: traffic = %d msgs / %d elems, want %d/%d",
					size, per, msgs, vol, wantMsgs, wantVol)
			}
		}
	}
}

// TestAllgatherBruckUnequalContributions pins the equal-length requirement:
// Bruck forwards concatenated blocks, so ragged contributions must fail
// loudly rather than deliver torn payloads.
func TestAllgatherBruckUnequalContributions(t *testing.T) {
	w := newTestWorld(t, 4)
	err := w.Run(func(p *Proc) error {
		data := make([]float64, 1+p.Rank()%2)
		_, err := p.Allgather(p.World(), data)
		return err
	})
	if err == nil {
		t.Fatal("ragged allgather succeeded; want length-mismatch error")
	}
}

// TestCommSplitTrafficComposed pins that CommSplit still rides the
// composed gather+bcast exchange — 2(n−1) messages of 2 and 2n elements —
// because the monitored experiments' virtual times and energies are pinned
// against that shape (engine goldens in internal/core).
func TestCommSplitTrafficComposed(t *testing.T) {
	const size = 6
	w := newTestWorld(t, size)
	err := w.Run(func(p *Proc) error {
		sub, err := p.CommSplit(p.World(), p.Rank()%2, 0)
		if err != nil {
			return err
		}
		if sub.Size() != size/2 {
			return fmt.Errorf("split group size %d, want %d", sub.Size(), size/2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, vol := w.Traffic()
	wantMsgs := int64(2 * (size - 1))
	wantVol := int64((size - 1) * 2 * (size + 1)) // (n−1)·2 gathered + (n−1)·2n broadcast
	if msgs != wantMsgs || vol != wantVol {
		t.Errorf("comm_split traffic = %d msgs / %d elems, want %d/%d", msgs, vol, wantMsgs, wantVol)
	}
}
