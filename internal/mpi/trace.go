package mpi

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/rapl"
)

// Span is one recorded interval of a rank's virtual timeline.
//
// Kind identifies the primitive ("compute", "wait", "send", "recv") or a
// wrapper ("collective" around a whole collective call, "phase" around an
// algorithm phase, "mark" for zero-length instants). Wrapper spans nest
// around the primitives they contain; analysis passes that sum time must
// use primitives only.
type Span struct {
	Rank  int
	Kind  string
	Name  string // collective or phase name; "" for primitives
	Start float64
	End   float64
	Peer  int   // world rank of the remote side; -1 when not a message
	Tag   int   // message tag; meaningless when Peer < 0
	Bytes int64 // payload bytes; 0 when not a message
	Level int   // solver level / panel index; -1 when not attributed
}

// DisplayName is the span's row label in trace viewers: the phase or
// collective name (with the solver level appended when attributed), else
// the primitive kind.
func (s *Span) DisplayName() string {
	if s.Name == "" {
		return s.Kind
	}
	if s.Level >= 0 {
		return fmt.Sprintf("%s %d", s.Name, s.Level)
	}
	return s.Name
}

// CounterSample is one reading of a node's per-domain RAPL energy on the
// virtual timeline, recorded while tracing is enabled. Joules follow the
// rapl.Domains() order (PKG0, PKG1, DRAM0, DRAM1).
type CounterSample struct {
	Node   int
	Time   float64
	Joules [4]float64
}

// counterSampleInterval is the minimum virtual-time spacing between two
// recorded energy samples of one node — matched to the simulated RAPL
// refresh so the counter track has hardware-plausible resolution.
const counterSampleInterval = 1e-3

// tracer collects spans and RAPL counter samples when tracing is enabled.
type tracer struct {
	mu      sync.Mutex
	spans   []Span
	samples []CounterSample
	// lastSample[node] is the virtual time of the node's latest energy
	// sample. Guarded by the world's per-node mutex (all writers of a
	// node's entry hold nodeMu[node]), not by mu.
	lastSample []float64
}

func (tr *tracer) add(s Span) {
	tr.mu.Lock()
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
}

// sampleLocked records a node's energy state at time now if the sampling
// interval has elapsed. Caller holds nodeMu[node].
func (tr *tracer) sampleLocked(node int, n *rapl.Node, now float64) {
	if now < tr.lastSample[node]+counterSampleInterval {
		return
	}
	tr.lastSample[node] = now
	s := CounterSample{Node: node, Time: now}
	for i, d := range rapl.Domains() {
		s.Joules[i] = n.ExactEnergy(d)
	}
	tr.mu.Lock()
	tr.samples = append(tr.samples, s)
	tr.mu.Unlock()
}

// EnableTracing switches on span recording (and RAPL counter sampling) for
// all subsequent operations. Call before Run. Recording is passive: it
// never changes virtual time, energy or numerics.
func (w *World) EnableTracing() {
	tr := &tracer{lastSample: make([]float64, len(w.nodes))}
	// A t=0 baseline sample per node anchors the counter tracks.
	for i, n := range w.nodes {
		tr.lastSample[i] = 0
		s := CounterSample{Node: i, Time: 0}
		for j, d := range rapl.Domains() {
			s.Joules[j] = n.ExactEnergy(d)
		}
		tr.samples = append(tr.samples, s)
	}
	w.trace = tr
}

// TracingEnabled reports whether EnableTracing was called.
func (w *World) TracingEnabled() bool { return w.trace != nil }

// Spans returns the recorded spans sorted by (rank, start). Empty without
// EnableTracing.
func (w *World) Spans() []Span {
	if w.trace == nil {
		return nil
	}
	w.trace.mu.Lock()
	out := make([]Span, len(w.trace.spans))
	copy(out, w.trace.spans)
	w.trace.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		// Wrappers started at the same instant as their first primitive
		// sort first (they end later), keeping nesting well-formed.
		return out[i].End > out[j].End
	})
	return out
}

// CounterSamples returns the recorded RAPL energy samples sorted by
// (node, time), with one final sample per node appended at the node's
// current clock. Call after Run.
func (w *World) CounterSamples() []CounterSample {
	if w.trace == nil {
		return nil
	}
	for i, n := range w.nodes {
		w.nodeMu[i].Lock()
		if now := n.Now(); now > w.trace.lastSample[i] {
			w.trace.lastSample[i] = now
			s := CounterSample{Node: i, Time: now}
			for j, d := range rapl.Domains() {
				s.Joules[j] = n.ExactEnergy(d)
			}
			w.trace.mu.Lock()
			w.trace.samples = append(w.trace.samples, s)
			w.trace.mu.Unlock()
		}
		w.nodeMu[i].Unlock()
	}
	w.trace.mu.Lock()
	out := make([]CounterSample, len(w.trace.samples))
	copy(out, w.trace.samples)
	w.trace.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Time < out[j].Time
	})
	return out
}

// record captures one unattributed span if tracing is on.
func (p *Proc) record(kind string, start, end float64) {
	if p.w.trace == nil || end <= start {
		return
	}
	p.w.trace.add(Span{Rank: p.rank, Kind: kind, Start: start, End: end, Peer: -1, Tag: -1, Level: -1})
}

// recordMsg captures one message-side span (send or recv) with its peer,
// tag and payload size.
func (p *Proc) recordMsg(kind string, start, end float64, peer, tag int, elems int) {
	if p.w.trace == nil || end <= start {
		return
	}
	p.w.trace.add(Span{
		Rank: p.rank, Kind: kind, Start: start, End: end,
		Peer: peer, Tag: tag, Bytes: int64(elems) * int64(Float64Bytes), Level: -1,
	})
}

// recordCollective captures a wrapper span around one whole collective
// call (its sends, recvs and waits nest inside it).
func (p *Proc) recordCollective(name string, start float64, elems int) {
	if p.w.trace == nil || p.clock <= start {
		return
	}
	p.w.trace.add(Span{
		Rank: p.rank, Kind: "collective", Name: name, Start: start, End: p.clock,
		Peer: -1, Tag: -1, Bytes: int64(elems) * int64(Float64Bytes), Level: -1,
	})
}

// Phase is an open hierarchical span started by BeginPhase. The zero value
// (tracing disabled) is inert.
type Phase struct {
	name  string
	level int
	start float64
	on    bool
}

// BeginPhase opens a named algorithm phase on this rank's timeline, e.g.
// "panel" or "elimination-level" with the level as attribute (use a
// negative level for unattributed phases). Phases nest: any spans recorded
// before the matching EndPhase render inside it. Free when tracing is off.
func (p *Proc) BeginPhase(name string, level int) Phase {
	if p.w.trace == nil {
		return Phase{}
	}
	return Phase{name: name, level: level, start: p.clock, on: true}
}

// EndPhase closes a phase opened by BeginPhase.
func (p *Proc) EndPhase(ph Phase) {
	if !ph.on || p.w.trace == nil || p.clock <= ph.start {
		return
	}
	p.w.trace.add(Span{
		Rank: p.rank, Kind: "phase", Name: ph.name, Level: ph.level,
		Start: ph.start, End: p.clock, Peer: -1, Tag: -1,
	})
}

// MarkInstant drops a named zero-length marker at the rank's current
// virtual time (rendered as an instant event in trace viewers).
func (p *Proc) MarkInstant(name string) {
	if p.w.trace == nil {
		return
	}
	p.w.trace.add(Span{
		Rank: p.rank, Kind: "mark", Name: name,
		Start: p.clock, End: p.clock, Peer: -1, Tag: -1, Level: -1,
	})
}

// chromeEvent is one entry of the Chrome/Perfetto trace-event format.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace object: Perfetto and chrome://tracing
// both require the {"traceEvents": [...]} envelope for object-format
// traces.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace emits the recorded spans and RAPL counter tracks as a
// Chrome trace-event JSON object (load it in ui.perfetto.dev or
// chrome://tracing). Each cluster node is one process row (pid = node id,
// named via process_name metadata), each rank one named thread inside its
// node, and each RAPL domain one per-node counter track carrying the
// node's power in watts computed between consecutive energy samples.
// Timestamps are microseconds of virtual time.
func (w *World) WriteChromeTrace(out io.Writer) error {
	spans := w.Spans()
	if spans == nil {
		return fmt.Errorf("mpi: tracing was not enabled")
	}
	events := make([]chromeEvent, 0, 2*len(spans))
	// Process and thread naming metadata: one process per node, one thread
	// per rank, sorted the way the cluster is laid out.
	for node := range w.nodes {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: node,
			Args: map[string]any{"name": fmt.Sprintf("node %d", node)},
		}, chromeEvent{
			Name: "process_sort_index", Ph: "M", Pid: node,
			Args: map[string]any{"sort_index": node},
		})
	}
	for rank := 0; rank < w.size; rank++ {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: w.nodeOf(rank), Tid: rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
		}, chromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: w.nodeOf(rank), Tid: rank,
			Args: map[string]any{"sort_index": rank},
		})
	}
	for _, s := range spans {
		e := chromeEvent{
			Name: s.DisplayName(),
			Ph:   "X",
			Ts:   s.Start * 1e6,
			Dur:  (s.End - s.Start) * 1e6,
			Pid:  w.nodeOf(s.Rank),
			Tid:  s.Rank,
			Cat:  s.Kind,
			Args: map[string]any{"kind": s.Kind},
		}
		if s.Kind == "mark" {
			e.Ph = "i"
			e.Dur = 0
			e.Args["s"] = "t" // thread-scoped instant
		}
		if s.Peer >= 0 {
			e.Args["peer"] = s.Peer
			e.Args["tag"] = s.Tag
		}
		if s.Bytes > 0 {
			e.Args["bytes"] = s.Bytes
		}
		if s.Level >= 0 {
			e.Args["level"] = s.Level
		}
		if s.Name != "" {
			e.Args["name"] = s.Name
		}
		events = append(events, e)
	}
	// RAPL counter tracks: per-node, per-domain power between consecutive
	// samples, stepwise at the earlier sample's timestamp.
	samples := w.CounterSamples()
	for i := 1; i < len(samples); i++ {
		prev, cur := samples[i-1], samples[i]
		if cur.Node != prev.Node || cur.Time <= prev.Time {
			continue
		}
		dt := cur.Time - prev.Time
		for j, d := range rapl.Domains() {
			events = append(events, chromeEvent{
				Name: d.String() + " W",
				Ph:   "C",
				Ts:   prev.Time * 1e6,
				Pid:  cur.Node,
				Args: map[string]any{"W": (cur.Joules[j] - prev.Joules[j]) / dt},
			})
		}
	}
	enc := json.NewEncoder(out)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ReadChromeTrace parses a trace written by WriteChromeTrace back into
// spans — the inverse used by cmd/tracestats to analyse a capture without
// access to the live World. Metadata and counter events are skipped.
func ReadChromeTrace(r io.Reader) ([]Span, error) {
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Tid  int             `json:"tid"`
			Cat  string          `json:"cat"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("mpi: invalid chrome trace: %w", err)
	}
	if doc.TraceEvents == nil {
		return nil, fmt.Errorf("mpi: chrome trace has no traceEvents array")
	}
	var spans []Span
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		s := Span{
			Rank:  e.Tid,
			Kind:  e.Cat,
			Start: e.Ts / 1e6,
			End:   (e.Ts + e.Dur) / 1e6,
			Peer:  -1,
			Tag:   -1,
			Level: -1,
		}
		if len(e.Args) > 0 {
			var args struct {
				Kind  *string `json:"kind"`
				Name  *string `json:"name"`
				Peer  *int    `json:"peer"`
				Tag   *int    `json:"tag"`
				Bytes *int64  `json:"bytes"`
				Level *int    `json:"level"`
			}
			if err := json.Unmarshal(e.Args, &args); err != nil {
				return nil, fmt.Errorf("mpi: invalid span args: %w", err)
			}
			if args.Kind != nil {
				s.Kind = *args.Kind
			}
			if args.Name != nil {
				s.Name = *args.Name
			}
			if args.Peer != nil {
				s.Peer = *args.Peer
			}
			if args.Tag != nil {
				s.Tag = *args.Tag
			}
			if args.Bytes != nil {
				s.Bytes = *args.Bytes
			}
			if args.Level != nil {
				s.Level = *args.Level
			}
		}
		if s.Kind == "" {
			s.Kind = e.Name
		}
		spans = append(spans, s)
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Rank != spans[j].Rank {
			return spans[i].Rank < spans[j].Rank
		}
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].End > spans[j].End
	})
	return spans, nil
}
