package mpi

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Span is one recorded interval of a rank's virtual timeline.
type Span struct {
	Rank  int
	Kind  string // "compute", "wait", "send", "recv"
	Start float64
	End   float64
}

// tracer collects spans when tracing is enabled.
type tracer struct {
	mu    sync.Mutex
	spans []Span
}

func (tr *tracer) add(s Span) {
	tr.mu.Lock()
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
}

// EnableTracing switches on span recording for all subsequent operations.
// Call before Run.
func (w *World) EnableTracing() {
	w.trace = &tracer{}
}

// Spans returns the recorded spans sorted by (rank, start). Empty without
// EnableTracing.
func (w *World) Spans() []Span {
	if w.trace == nil {
		return nil
	}
	w.trace.mu.Lock()
	out := make([]Span, len(w.trace.spans))
	copy(out, w.trace.spans)
	w.trace.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// record captures one span if tracing is on.
func (p *Proc) record(kind string, start, end float64) {
	if p.w.trace == nil || end <= start {
		return
	}
	p.w.trace.add(Span{Rank: p.rank, Kind: kind, Start: start, End: end})
}

// WriteChromeTrace emits the recorded spans as a Chrome trace-event JSON
// array (load it in chrome://tracing or Perfetto): one complete event per
// span, one row per rank, timestamps in microseconds of virtual time.
func (w *World) WriteChromeTrace(out io.Writer) error {
	type event struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	}
	spans := w.Spans()
	if spans == nil {
		return fmt.Errorf("mpi: tracing was not enabled")
	}
	events := make([]event, 0, len(spans))
	for _, s := range spans {
		events = append(events, event{
			Name: s.Kind,
			Ph:   "X",
			Ts:   s.Start * 1e6,
			Dur:  (s.End - s.Start) * 1e6,
			Pid:  0,
			Tid:  s.Rank,
		})
	}
	enc := json.NewEncoder(out)
	return enc.Encode(events)
}
