package mpi

import "fmt"

// Send transmits data to rank dst of communicator c with a user tag
// (tag ≥ 0; negative tags are reserved for collectives). The payload is
// copied, preserving distributed-memory semantics. Send is buffered-eager:
// it blocks only when the (src→dst) stream is mailboxDepth messages deep.
func (p *Proc) Send(c *Comm, dst, tag int, data []float64) error {
	if tag < 0 {
		return fmt.Errorf("mpi: rank %d: user tag %d must be non-negative", p.rank, tag)
	}
	return p.send(c, dst, tag, data)
}

func (p *Proc) send(c *Comm, dst, tag int, data []float64) error {
	// The copy preserving distributed-memory semantics draws on the
	// shared buffer pool instead of allocating per message.
	cp := GetBuf(len(data))
	copy(cp, data)
	return p.sendOwned(c, dst, tag, cp)
}

// SendNoCopy transmits like Send but transfers ownership of data to the
// runtime: no copy is made, and the caller must not read or write the
// slice afterwards. Use it for payloads built fresh for a single
// destination; reused scratch buffers must go through Send.
func (p *Proc) SendNoCopy(c *Comm, dst, tag int, data []float64) error {
	if tag < 0 {
		return fmt.Errorf("mpi: rank %d: user tag %d must be non-negative", p.rank, tag)
	}
	return p.sendOwned(c, dst, tag, data)
}

// sendOwned enqueues data, whose ownership passes to the receiver.
func (p *Proc) sendOwned(c *Comm, dst, tag int, data []float64) error {
	wdst, err := c.worldRank(dst)
	if err != nil {
		return err
	}
	if wdst == p.rank {
		return fmt.Errorf("mpi: rank %d: send to self is not supported; use local data", p.rank)
	}
	// The sender pays CPU overhead; the payload then flies for the wire
	// time determined by locality.
	sendStart := p.clock
	p.advanceBusy(p.w.cost.SendOverhead, 0)
	// Fault injection perturbs the send deterministically: k dropped
	// transmissions cost the sender k extra overheads plus the backed-off
	// retransmission timeouts (the payload leaves late but is never lost),
	// and link jitter stretches the flight time.
	var lateBy float64
	if f := p.w.flt; f != nil {
		seq := p.nextTxSeq(wdst)
		if k := f.Drops(p.rank, wdst, seq); k > 0 {
			p.advanceBusy(float64(k)*p.w.cost.SendOverhead, 0)
			lateBy += f.RetransmitWait(k)
			if m := p.w.metrics; m != nil {
				m.faultRetransmits.Add(float64(k))
			}
		}
		if d := f.Delay(p.rank, wdst, seq); d > 0 {
			lateBy += d
			if m := p.w.metrics; m != nil {
				m.faultDelayS.Add(d)
			}
		}
	}
	p.recordMsg("send", sendStart, p.clock, wdst, tag, len(data))
	bytes := float64(len(data)) * Float64Bytes
	arrive := p.clock + lateBy + p.w.cost.Wire(p.w.sameNode(p.rank, wdst), bytes)
	p.w.countTraffic(p.rank, len(data))
	if m := p.w.metrics; m != nil {
		m.messages.Inc()
		m.bytes.Add(bytes)
	}
	p.txStream(wdst).put(message{tag: tag, data: data, arriveAt: arrive})
	return nil
}

// Recv receives the message with the given tag from rank src of
// communicator c. As in MPI, messages from the same sender with the same
// tag arrive in order, but messages with *different* tags may be consumed
// out of stream order: non-matching messages are stashed until a matching
// Recv claims them. This is what lets lookahead protocols (e.g. the
// overlapped IMe) interleave early pivot sends with per-level traffic.
func (p *Proc) Recv(c *Comm, src, tag int) ([]float64, error) {
	if tag < 0 {
		return nil, fmt.Errorf("mpi: rank %d: user tag %d must be non-negative", p.rank, tag)
	}
	return p.recv(c, src, tag)
}

// stashLimit bounds unexpected-message buffering per sender; exceeding it
// means the program's send/recv tag sequences diverged for good.
const stashLimit = 1 << 16

func (p *Proc) recv(c *Comm, src, tag int) ([]float64, error) {
	wsrc, err := c.worldRank(src)
	if err != nil {
		return nil, err
	}
	if wsrc == p.rank {
		return nil, fmt.Errorf("mpi: rank %d: recv from self is not supported", p.rank)
	}
	// A previously stashed message with this tag matches first (it was
	// sent earlier than anything still queued in the stream).
	if sl := p.stash[wsrc]; sl != nil {
		if msg, ok := sl.claim(tag); ok {
			p.waitUntil(msg.arriveAt)
			rs := p.clock
			p.advanceBusy(p.w.cost.RecvOverhead, 0)
			p.recordMsg("recv", rs, p.clock, wsrc, tag, len(msg.data))
			if m := p.w.metrics; m != nil {
				m.recvs.Inc()
			}
			return msg.data, nil
		}
	}
	in := p.rxStream(wsrc)
	for {
		msg, ok := in.take()
		if !ok {
			// The sender died and everything it sent before dying has been
			// drained: the matching message will never come.
			return nil, p.peerFailed(wsrc)
		}
		if msg.tag == tag {
			p.waitUntil(msg.arriveAt)
			rs := p.clock
			p.advanceBusy(p.w.cost.RecvOverhead, 0)
			p.recordMsg("recv", rs, p.clock, wsrc, tag, len(msg.data))
			if m := p.w.metrics; m != nil {
				m.recvs.Inc()
			}
			return msg.data, nil
		}
		sl := p.stash[wsrc]
		if sl == nil {
			if p.stash == nil {
				p.stash = make(map[int]*stashList)
			}
			sl = &stashList{}
			p.stash[wsrc] = sl
		}
		if sl.count >= stashLimit {
			return nil, fmt.Errorf("mpi: rank %d: %d unexpected messages from world rank %d while waiting for tag %d (first stashed tag %d)",
				p.rank, stashLimit, wsrc, tag, sl.head.msg.tag)
		}
		sl.push(msg)
	}
}
