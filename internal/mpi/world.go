// Package mpi simulates the Message Passing Interface runtime the paper's
// software runs on: a fixed-size world of ranks (goroutines), point-to-point
// messaging, binomial-tree collectives, barriers, and the communicator
// machinery — in particular MPI_Comm_split_type(MPI_COMM_TYPE_SHARED),
// which the monitoring framework uses to group the ranks of each node.
//
// Beyond functional semantics the runtime maintains:
//
//   - a deterministic per-rank *virtual clock* advanced by compute and
//     communication costs (CostModel), so durations are reproducible and
//     can represent cluster-scale executions;
//   - per-world traffic accounting (message count and float64 volume),
//     used to validate the paper's M_IMeP / V_IMeP closed forms;
//   - energy accounting: rank activity is charged to the simulated RAPL
//     node hosting the rank (internal/rapl), which the PAPI layer reads.
//
// The engine is built to execute the paper's full deployments (Table 1,
// up to 1296 ranks): message matching is sparse and lazy (mailbox.go),
// barriers disseminate without a global serialization point (comm.go),
// and the per-send counters are striped, so world setup is O(size) and
// the hot paths contend only on genuinely shared state.
package mpi

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/power"
	"repro/internal/rapl"
)

// Options configures a World.
type Options struct {
	// Config places ranks on nodes/sockets. When nil, all ranks share one
	// synthetic node on socket 0 (convenient for algorithm-only tests).
	Config *cluster.Config
	// Cost is the communication cost model; zero value means defaults.
	Cost CostModel
	// Calibration is the node power model; zero value means Skylake8160.
	Calibration power.Calibration
	// Fault is the fault-injection plane: a deterministic, seed-driven
	// schedule of message delay/jitter, drops with bounded retransmission,
	// straggler ranks and hard rank crashes (internal/fault). Nil injects
	// nothing and leaves every output byte-identical.
	Fault *fault.Injector
}

// rankLoc is a rank's precomputed placement, resolved once at world
// construction so the per-operation accounting path never re-derives it.
type rankLoc struct {
	node   int32
	socket int32
}

// trafficStripes is the stripe count of the traffic counters (power of
// two). Sends stripe by sender rank, so concurrent senders hit different
// cache lines instead of one global lock.
const trafficStripes = 64

// trafficStripe is one padded stripe of the message/volume counters. The
// padding keeps adjacent stripes out of each other's cache lines.
type trafficStripe struct {
	messages atomic.Int64
	volume   atomic.Int64
	_        [48]byte
}

// nodeLock is a padded mutex so the per-node accounting locks of adjacent
// nodes never share a cache line.
type nodeLock struct {
	sync.Mutex
	_ [56]byte
}

// World is one simulated MPI job.
type World struct {
	size  int
	cost  CostModel
	cfg   *cluster.Config
	loc   []rankLoc
	nodes []*rapl.Node
	// nodeMu serialises accounting into each shared rapl.Node, including
	// its monotone clock.
	nodeMu []nodeLock
	// mail[dst] is the destination rank's sparse matcher; per-(src,dst)
	// streams are created lazily on first use (mailbox.go).
	mail []mailShard

	traffic [trafficStripes]trafficStripe

	comms commRegistry

	// trace records per-rank spans when EnableTracing was called.
	trace *tracer
	// metrics feeds the telemetry registry when EnableMetrics was called.
	metrics *worldMetrics

	// flt is the fault injector (nil injects nothing); fail is the always-
	// present registry of dead ranks (failure.go) — a rank aborting with
	// its own error marks it even without an injector, so peers blocked on
	// the dead rank unblock instead of deadlocking; detect is the virtual
	// failure-detection timeout charged to live ranks.
	flt    *fault.Injector
	fail   *failureBoard
	detect float64
}

type message struct {
	tag      int
	data     []float64
	arriveAt float64 // virtual time the payload lands at the receiver
}

// NewWorld builds a world of size ranks. Construction is O(size): no
// per-pair state is allocated until a pair actually communicates.
func NewWorld(size int, opts Options) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size %d must be positive", size)
	}
	cost := opts.Cost
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	cal := opts.Calibration
	if cal == (power.Calibration{}) {
		cal = power.Skylake8160()
	}
	if opts.Config != nil && opts.Config.Ranks != size {
		return nil, fmt.Errorf("mpi: config has %d ranks, world has %d", opts.Config.Ranks, size)
	}
	w := &World{size: size, cost: cost, cfg: opts.Config}
	w.fail = newFailureBoard()
	w.detect = fault.DefaultDetectTimeout
	if opts.Fault != nil {
		if opts.Fault.Size() != size {
			return nil, fmt.Errorf("mpi: fault injector built for %d ranks, world has %d", opts.Fault.Size(), size)
		}
		w.flt = opts.Fault
		w.detect = opts.Fault.DetectTimeout()
	}
	nNodes := 1
	if w.cfg != nil {
		nNodes = w.cfg.Nodes
	}
	w.nodes = make([]*rapl.Node, nNodes)
	w.nodeMu = make([]nodeLock, nNodes)
	for i := range w.nodes {
		n, err := rapl.NewNode(i, cal)
		if err != nil {
			return nil, err
		}
		w.nodes[i] = n
	}
	w.loc = make([]rankLoc, size)
	if w.cfg != nil {
		for r := range w.loc {
			l, err := w.cfg.RankLocation(r)
			if err != nil {
				return nil, fmt.Errorf("mpi: rank %d has no placement: %w", r, err)
			}
			w.loc[r] = rankLoc{node: int32(l.Node), socket: int32(l.Socket)}
		}
	}
	w.mail = make([]mailShard, size)
	return w, nil
}

// Size returns the world size.
func (w *World) Size() int { return w.size }

// Nodes exposes the simulated RAPL nodes (one per cluster node) for the
// monitoring layer and for post-run energy inspection.
func (w *World) Nodes() []*rapl.Node { return w.nodes }

// Node returns the RAPL node hosting a world rank.
func (w *World) Node(rank int) *rapl.Node { return w.nodes[w.nodeOf(rank)] }

// location maps a world rank to (node, socket) through the table resolved
// at construction.
func (w *World) location(rank int) (node, socket int) {
	l := w.loc[rank]
	return int(l.node), int(l.socket)
}

func (w *World) nodeOf(rank int) int { return int(w.loc[rank].node) }

// sameNode reports whether two world ranks share a node.
func (w *World) sameNode(a, b int) bool { return w.loc[a].node == w.loc[b].node }

// countTraffic records one message of n float64 elements sent by rank.
// Counters are striped by sender, so the aggregate is exact while
// concurrent senders stay off each other's cache lines.
func (w *World) countTraffic(rank, elements int) {
	s := &w.traffic[rank&(trafficStripes-1)]
	s.messages.Add(1)
	s.volume.Add(int64(elements))
}

// Traffic returns the total messages and float64 volume exchanged so far.
func (w *World) Traffic() (messages, volume int64) {
	for i := range w.traffic {
		messages += w.traffic[i].messages.Load()
		volume += w.traffic[i].volume.Load()
	}
	return messages, volume
}

// ResetTraffic zeroes the traffic counters (used to separate phases; call
// it at a quiescent point, not concurrently with in-flight sends).
func (w *World) ResetTraffic() {
	for i := range w.traffic {
		w.traffic[i].messages.Store(0)
		w.traffic[i].volume.Store(0)
	}
}

// capSlowdown returns the compute-time stretch a socket's power cap
// imposes, given the placement's active-core count on that socket.
func (w *World) capSlowdown(node, socket int) float64 {
	cores := 1
	if w.cfg != nil {
		cores = w.cfg.ActiveCores(socket)
	}
	w.nodeMu[node].Lock()
	defer w.nodeMu[node].Unlock()
	return w.nodes[node].SlowdownUnderCap(socket, cores)
}

// chargeNode accounts busy core-seconds and memory traffic for a rank and
// advances its node's RAPL clock to the rank's virtual time.
func (w *World) chargeNode(rank int, busySeconds, bytes, clock float64) {
	node, socket := w.location(rank)
	w.nodeMu[node].Lock()
	defer w.nodeMu[node].Unlock()
	n := w.nodes[node]
	if busySeconds > 0 {
		if err := n.AccountBusy(socket, busySeconds); err != nil {
			panic(err) // inputs validated by callers; a failure is a bug
		}
	}
	if bytes > 0 {
		if err := n.AccountBytes(socket, bytes); err != nil {
			panic(err)
		}
	}
	if clock > n.Now() {
		if err := n.SetTime(clock); err != nil {
			panic(err)
		}
	}
	if w.trace != nil {
		// Sample the node's energy counters onto the trace's virtual
		// timeline (throttled to the RAPL refresh period).
		w.trace.sampleLocked(node, n, n.Now())
	}
}

// Run executes body once per rank, concurrently, and blocks until every
// rank returns. A panicking rank is converted into an error naming the
// rank, so a bug in one rank fails the job instead of crashing the test
// binary. A rank that returns an error or panics is marked on the failure
// board, which unblocks peers waiting on it (they get ErrRankFailed
// instead of deadlocking); fault-injected crashes unwind via crashPanic
// and surface the same way. Of the collected errors a root cause (one not
// merely reporting a dead peer) is preferred.
func (w *World) Run(body func(p *Proc) error) error {
	world := newWorldComm(w)
	errs := make(chan error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := &Proc{w: w, rank: rank, world: world, crashAt: math.Inf(1), dilation: 1}
			if f := w.flt; f != nil {
				p.crashAt = f.CrashTime(rank)
				p.dilation = f.Dilation(rank)
			}
			defer func() {
				if rec := recover(); rec != nil {
					if cp, ok := rec.(crashPanic); ok {
						errs <- fmt.Errorf("mpi: rank %d crashed at t=%.9gs: %w", cp.rank, cp.t, ErrRankFailed)
						return
					}
					w.markFailed(rank, p.clock, failAborted)
					errs <- fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
				}
			}()
			if err := body(p); err != nil {
				w.markFailed(rank, p.clock, failAborted)
				errs <- fmt.Errorf("mpi: rank %d: %w", rank, err)
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	var first error
	for err := range errs {
		if first == nil || (errors.Is(first, ErrRankFailed) && !errors.Is(err, ErrRankFailed)) {
			first = err
		}
	}
	return first
}

// Failed reports whether a rank is dead (crashed or aborted) and the
// virtual time it died.
func (w *World) Failed(rank int) (t float64, dead bool) {
	info, ok := w.fail.get(rank)
	return info.t, ok
}

// FailedRanks returns the dead ranks in ascending order.
func (w *World) FailedRanks() []int {
	w.fail.mu.Lock()
	out := make([]int, 0, len(w.fail.failed))
	for r := range w.fail.failed {
		out = append(out, r)
	}
	w.fail.mu.Unlock()
	sort.Ints(out)
	return out
}

// TotalEnergyJ sums the exact model energy of every monitored RAPL domain
// across all nodes — the job's total energy, including what dead ranks
// consumed before failing.
func (w *World) TotalEnergyJ() float64 {
	var e float64
	for i, n := range w.nodes {
		w.nodeMu[i].Lock()
		for _, d := range rapl.Domains() {
			e += n.ExactEnergy(d)
		}
		w.nodeMu[i].Unlock()
	}
	return e
}

// MaxClock returns the largest virtual time any node observed — the job's
// makespan.
func (w *World) MaxClock() float64 {
	var mx float64
	for i := range w.nodes {
		w.nodeMu[i].Lock()
		if t := w.nodes[i].Now(); t > mx {
			mx = t
		}
		w.nodeMu[i].Unlock()
	}
	return mx
}
