package mpi

import (
	"fmt"

	"repro/internal/rapl"
)

// Proc is one rank's handle on the world. It is confined to the goroutine
// Run started for that rank; none of its methods are safe for concurrent
// use by other goroutines.
type Proc struct {
	w     *World
	rank  int
	clock float64
	world *Comm
	// seq numbers collective calls per communicator; MPI requires all
	// members to issue collectives in the same order, which makes the
	// local counters agree and serve as matching tags.
	seq map[*Comm]int
	// barGen counts Barrier generations per communicator; all members
	// agree on it for the same reason they agree on seq.
	barGen map[*Comm]uint64
	// tx/rx cache the sparse streams this rank has touched, so steady-
	// state messaging skips the destination shard's lock (mailbox.go).
	tx map[int]*stream
	rx map[int]*stream
	// stash buffers messages received out of tag order, per sending
	// world rank (MPI unexpected-message queue).
	stash map[int]*stashList
	// activity scales the dynamic core power charged while computing
	// (1.0 = nominal). Solvers set it to their algorithm's activity factor
	// so IMe's saturated streaming pipelines draw more power per busy
	// second than ScaLAPACK's blocked kernels, as the paper measured.
	activity float64
	// crashAt is the virtual time the fault plane kills this rank (+Inf
	// when never); the first clock advance crossing it dies (failure.go).
	crashAt float64
	// dilation stretches this rank's compute time when the injector marks
	// it a straggler (1.0 = healthy).
	dilation float64
	// txSeq numbers sends per destination so the injector's per-message
	// delay/drop draws are pure functions of (seed, src, dst, seq).
	txSeq map[int]int
}

// Rank returns the world rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.w.size }

// World returns the world communicator (MPI_COMM_WORLD).
func (p *Proc) World() *Comm { return p.world }

// Clock returns the rank's current virtual time in seconds.
func (p *Proc) Clock() float64 { return p.clock }

// Location returns the node and socket hosting this rank.
func (p *Proc) Location() (node, socket int) { return p.w.location(p.rank) }

// RaplNode returns the simulated RAPL interface of the node hosting this
// rank — what the monitoring rank of each node reads energy from.
func (p *Proc) RaplNode() *rapl.Node { return p.w.Node(p.rank) }

// advanceBusy moves the virtual clock forward by dt seconds of busy CPU
// time (compute, messaging overhead, or busy-wait — MPI implementations
// poll), charging the node's package energy accordingly.
func (p *Proc) advanceBusy(dt, bytes float64) {
	if dt < 0 {
		panic(fmt.Sprintf("mpi: rank %d: negative time advance %g", p.rank, dt))
	}
	if p.clock+dt > p.crashAt {
		p.advanceToCrash(dt, bytes) // charges the partial advance, then unwinds
	}
	p.clock += dt
	p.w.chargeNode(p.rank, dt, bytes, p.clock)
}

// waitUntil models busy-waiting until virtual time t (no-op if t has
// passed). The waiting core polls, so the wait is charged as busy time —
// this is why the paper's synchronization barriers cost energy, not just
// wall time. The clock is assigned t exactly (not incremented by the
// difference) so ranks leaving a barrier agree bit-for-bit.
func (p *Proc) waitUntil(t float64) {
	if t > p.crashAt {
		p.advanceToCrash(t-p.clock, 0) // busy-polls up to the crash, then unwinds
	}
	if t > p.clock {
		start := p.clock
		dt := t - p.clock
		p.clock = t
		p.w.chargeNode(p.rank, dt, 0, p.clock)
		p.record("wait", start, t)
		if m := p.w.metrics; m != nil {
			m.waitS[p.rank].Add(dt)
		}
	}
}

// SetActivity sets the dynamic-power activity factor applied to Compute
// time (f ≤ 0 resets to nominal 1.0). Communication overheads and
// busy-waits always charge at nominal activity.
func (p *Proc) SetActivity(f float64) {
	if f <= 0 {
		f = 1
	}
	p.activity = f
}

// Compute advances the rank's clock by seconds of computation that moved
// bytes of data through the memory hierarchy (charged to the socket's
// DRAM domain). The busy core-seconds charged are scaled by the activity
// factor set via SetActivity. A RAPL package power cap on the hosting
// socket (rapl.Node.SetPowerLimit) stretches the compute time by the
// frequency-scaling slowdown, exactly as PL1 throttling does.
func (p *Proc) Compute(seconds, bytes float64) {
	if seconds < 0 || bytes < 0 {
		panic(fmt.Sprintf("mpi: rank %d: negative compute cost (%g s, %g B)", p.rank, seconds, bytes))
	}
	act := p.activity
	if act == 0 {
		act = 1
	}
	node, socket := p.w.location(p.rank)
	if slow := p.w.capSlowdown(node, socket); slow > 1 {
		seconds *= slow
	}
	if p.dilation > 1 {
		// Straggler injection: the rank computes slower, so the same work
		// takes longer and burns more busy-core energy.
		seconds *= p.dilation
	}
	if p.clock+seconds > p.crashAt {
		p.advanceToCrash(seconds, bytes)
	}
	start := p.clock
	p.clock += seconds
	p.w.chargeNode(p.rank, seconds*act, bytes, p.clock)
	p.record("compute", start, p.clock)
	if m := p.w.metrics; m != nil {
		m.computeS[p.rank].Add(seconds)
	}
}

// ComputeFlops charges flops of work executed at rate flops/second moving
// bytes through memory.
func (p *Proc) ComputeFlops(flops, rate, bytes float64) {
	if rate <= 0 {
		panic(fmt.Sprintf("mpi: rank %d: non-positive flop rate %g", p.rank, rate))
	}
	p.Compute(flops/rate, bytes)
}

// nextTxSeq returns the per-destination sequence number of the next send.
// Per-rank program order makes it deterministic, which makes the fault
// injector's per-message draws deterministic too.
func (p *Proc) nextTxSeq(dst int) int {
	if p.txSeq == nil {
		p.txSeq = make(map[int]int, 8)
	}
	s := p.txSeq[dst]
	p.txSeq[dst] = s + 1
	return s
}

// nextSeq returns the sequence number of the next collective on c.
func (p *Proc) nextSeq(c *Comm) int {
	if p.seq == nil {
		p.seq = make(map[*Comm]int)
	}
	s := p.seq[c]
	p.seq[c] = s + 1
	return s
}

// nextBarGen returns the generation of the next Barrier call on c. It is
// counted apart from nextSeq so barriers don't perturb collective tags.
func (p *Proc) nextBarGen(c *Comm) uint64 {
	if p.barGen == nil {
		p.barGen = make(map[*Comm]uint64)
	}
	g := p.barGen[c]
	p.barGen[c] = g + 1
	return g
}
