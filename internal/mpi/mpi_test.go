package mpi

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/rapl"
)

func newTestWorld(t *testing.T, size int) *World {
	t.Helper()
	w, err := NewWorld(size, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, Options{}); err == nil {
		t.Error("zero-size world accepted")
	}
	if _, err := NewWorld(-3, Options{}); err == nil {
		t.Error("negative world accepted")
	}
	cfg, _ := cluster.NewConfig(48, cluster.FullLoad, cluster.MarconiA3())
	if _, err := NewWorld(47, Options{Config: &cfg}); err == nil {
		t.Error("config/world size mismatch accepted")
	}
	bad := DefaultCostModel()
	bad.BandwidthInter = 0
	if _, err := NewWorld(2, Options{Cost: bad}); err == nil {
		t.Error("invalid cost model accepted")
	}
}

func TestCostModelValidate(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
	m := DefaultCostModel()
	m.LatencyInter = -1
	if err := m.Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestTreeDepth(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1296: 11}
	for p, want := range cases {
		if got := TreeDepth(p); got != want {
			t.Errorf("TreeDepth(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		c := p.World()
		switch p.Rank() {
		case 0:
			return p.Send(c, 1, 7, []float64{1, 2, 3})
		case 1:
			got, err := p.Recv(c, 0, 7)
			if err != nil {
				return err
			}
			if len(got) != 3 || got[2] != 3 {
				return fmt.Errorf("payload corrupted: %v", got)
			}
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, vol := w.Traffic()
	if msgs != 1 || vol != 3 {
		t.Fatalf("traffic = %d msgs / %d elems, want 1/3", msgs, vol)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			buf := []float64{1}
			if err := p.Send(c, 1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // mutate after send; receiver must not see it
			return nil
		}
		got, err := p.Recv(c, 0, 0)
		if err != nil {
			return err
		}
		if got[0] != 1 {
			return fmt.Errorf("distributed-memory copy violated: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOutOfOrderTagMatching(t *testing.T) {
	// MPI semantics: messages match by (source, tag); different tags may
	// be received out of send order, with non-matching messages stashed.
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			if err := p.Send(c, 1, 1, []float64{100}); err != nil {
				return err
			}
			if err := p.Send(c, 1, 2, []float64{200}); err != nil {
				return err
			}
			return p.Send(c, 1, 1, []float64{101})
		}
		// Claim tag 2 first, then the two tag-1 messages in send order.
		b, err := p.Recv(c, 0, 2)
		if err != nil {
			return err
		}
		a1, err := p.Recv(c, 0, 1)
		if err != nil {
			return err
		}
		a2, err := p.Recv(c, 0, 1)
		if err != nil {
			return err
		}
		if b[0] != 200 || a1[0] != 100 || a2[0] != 101 {
			return fmt.Errorf("matching broke: %v %v %v", b, a1, a2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfAndInvalidRanks(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		c := p.World()
		if p.Rank() != 0 {
			return nil
		}
		if err := p.Send(c, 0, 0, nil); err == nil {
			return errors.New("send-to-self accepted")
		}
		if err := p.Send(c, 5, 0, nil); err == nil {
			return errors.New("out-of-range dst accepted")
		}
		if err := p.Send(c, 1, -1, nil); err == nil {
			return errors.New("negative user tag accepted")
		}
		if _, err := p.Recv(c, -1, 0); err == nil {
			return errors.New("out-of-range src accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanicsAndErrors(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1 panicked") {
		t.Fatalf("panic not propagated: %v", err)
	}
	w2 := newTestWorld(t, 2)
	err = w2.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			return errors.New("deliberate")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestBcastAllSizesAndRoots(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16} {
		for root := 0; root < size; root += 1 + size/3 {
			w := newTestWorld(t, size)
			payload := []float64{42, float64(root)}
			err := w.Run(func(p *Proc) error {
				var in []float64
				me, _ := p.World().Rank(p)
				if me == root {
					in = payload
				}
				got, err := p.Bcast(p.World(), root, in)
				if err != nil {
					return err
				}
				if len(got) != 2 || got[0] != 42 || got[1] != float64(root) {
					return fmt.Errorf("rank %d got %v", me, got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("size %d root %d: %v", size, root, err)
			}
			msgs, vol := w.Traffic()
			if msgs != int64(size-1) || vol != int64(2*(size-1)) {
				t.Fatalf("size %d root %d: traffic %d/%d, want %d/%d",
					size, root, msgs, vol, size-1, 2*(size-1))
			}
		}
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		_, err := p.Bcast(p.World(), 9, nil)
		if err == nil {
			return errors.New("invalid root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	const size = 5
	w := newTestWorld(t, size)
	err := w.Run(func(p *Proc) error {
		// Variable-length contributions: rank r sends r+1 copies of r.
		data := make([]float64, p.Rank()+1)
		for i := range data {
			data[i] = float64(p.Rank())
		}
		parts, err := p.Gather(p.World(), 2, data)
		if err != nil {
			return err
		}
		if p.Rank() != 2 {
			if parts != nil {
				return errors.New("non-root received gather data")
			}
			return nil
		}
		for r, part := range parts {
			if len(part) != r+1 || part[0] != float64(r) {
				return fmt.Errorf("root got %v from rank %d", part, r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, _ := w.Traffic()
	if msgs != size-1 {
		t.Fatalf("gather used %d messages, want %d", msgs, size-1)
	}
}

func TestAllgather(t *testing.T) {
	const size = 6
	w := newTestWorld(t, size)
	err := w.Run(func(p *Proc) error {
		all, err := p.Allgather(p.World(), []float64{float64(p.Rank() * 10)})
		if err != nil {
			return err
		}
		for r := 0; r < size; r++ {
			if all[r][0] != float64(r*10) {
				return fmt.Errorf("rank %d sees %v at %d", p.Rank(), all[r], r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 9} {
		w := newTestWorld(t, size)
		err := w.Run(func(p *Proc) error {
			got, err := p.AllreduceSum(p.World(), []float64{1, float64(p.Rank())})
			if err != nil {
				return err
			}
			wantSum := float64(size * (size - 1) / 2)
			if got[0] != float64(size) || got[1] != wantSum {
				return fmt.Errorf("rank %d: sum %v, want [%d %g]", p.Rank(), got, size, wantSum)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestAllreduceMaxLocQuick(t *testing.T) {
	f := func(seed uint16) bool {
		size := int(seed%7) + 2
		vals := make([]float64, size)
		s := uint64(seed) + 1
		for i := range vals {
			s = s*6364136223846793005 + 1442695040888963407
			vals[i] = float64(s%1000) / 10
		}
		wantVal, wantIdx := vals[0], 0
		for i, v := range vals {
			if v > wantVal {
				wantVal, wantIdx = v, i
			}
		}
		w, err := NewWorld(size, Options{})
		if err != nil {
			return false
		}
		ok := true
		var mu sync.Mutex
		err = w.Run(func(p *Proc) error {
			v, idx, err := p.AllreduceMaxLoc(p.World(), vals[p.Rank()], p.Rank())
			if err != nil {
				return err
			}
			if v != wantVal || idx != wantIdx {
				mu.Lock()
				ok = false
				mu.Unlock()
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierMergesClocks(t *testing.T) {
	const size = 4
	w := newTestWorld(t, size)
	clocks := make([]float64, size)
	err := w.Run(func(p *Proc) error {
		// Each rank computes a different amount before the barrier.
		p.Compute(float64(p.Rank()+1), 0)
		if err := p.Barrier(p.World()); err != nil {
			return err
		}
		clocks[p.Rank()] = p.Clock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < size; r++ {
		if clocks[r] != clocks[0] {
			t.Fatalf("clocks diverge after barrier: %v", clocks)
		}
	}
	if clocks[0] < 4 {
		t.Fatalf("barrier released before slowest rank: %v", clocks)
	}
}

func TestBarrierReusable(t *testing.T) {
	w := newTestWorld(t, 3)
	err := w.Run(func(p *Proc) error {
		prev := p.Clock()
		for i := 0; i < 10; i++ {
			p.Compute(0.001*float64(p.Rank()+1), 0)
			if err := p.Barrier(p.World()); err != nil {
				return err
			}
			if p.Clock() <= prev {
				return fmt.Errorf("clock not monotone across barriers")
			}
			prev = p.Clock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeMessageDelay(t *testing.T) {
	w := newTestWorld(t, 2)
	cost := DefaultCostModel()
	err := w.Run(func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			p.Compute(1.0, 0) // sender works 1 s first
			return p.Send(c, 1, 0, make([]float64, 1000))
		}
		got, err := p.Recv(c, 0, 0)
		if err != nil {
			return err
		}
		_ = got
		// Receiver idles at clock 0; message lands after the sender's 1 s
		// plus overhead plus wire time for 8000 bytes on-node.
		want := 1.0 + cost.SendOverhead + cost.Wire(true, 8000) + cost.RecvOverhead
		if math.Abs(p.Clock()-want) > 1e-12 {
			return fmt.Errorf("receiver clock %g, want %g", p.Clock(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputeChargesEnergy(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		p.Compute(5, 1e6)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	node := w.Nodes()[0]
	if node.Now() < 5 {
		t.Fatalf("node time %g, want ≥ 5", node.Now())
	}
	if e := node.ExactEnergy(rapl.PKG0); e <= 0 {
		t.Fatal("no package energy accumulated")
	}
	if e := node.ExactEnergy(rapl.DRAM0); e <= node.ExactEnergy(rapl.DRAM1) {
		t.Fatal("DRAM traffic not charged to socket 0")
	}
	if w.MaxClock() < 5 {
		t.Fatalf("MaxClock = %g", w.MaxClock())
	}
}

func TestPowerCapStretchesCompute(t *testing.T) {
	cfg, err := cluster.NewConfig(48, cluster.FullLoad, cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(capW float64) float64 {
		w, err := NewWorld(48, Options{Config: &cfg})
		if err != nil {
			t.Fatal(err)
		}
		if capW > 0 {
			for s := 0; s < 2; s++ {
				if err := w.Nodes()[0].SetPowerLimit(s, capW); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Run(func(p *Proc) error {
			p.Compute(1, 0)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxClock()
	}
	base := runWith(0)
	capped := runWith(110)
	tighter := runWith(90)
	if capped <= base {
		t.Fatalf("110 W cap did not stretch compute: %g vs %g", capped, base)
	}
	if tighter <= capped {
		t.Fatalf("90 W cap not slower than 110 W: %g vs %g", tighter, capped)
	}
	if slack := runWith(400); slack != base {
		t.Fatalf("slack cap changed makespan: %g vs %g", slack, base)
	}
}

func TestCommSplitGroups(t *testing.T) {
	const size = 6
	w := newTestWorld(t, size)
	err := w.Run(func(p *Proc) error {
		// Even/odd split, ordered by descending world rank via key.
		sub, err := p.CommSplit(p.World(), p.Rank()%2, -p.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != size/2 {
			return fmt.Errorf("subcomm size %d, want %d", sub.Size(), size/2)
		}
		me, err := sub.Rank(p)
		if err != nil {
			return err
		}
		// Descending keys: highest world rank gets comm rank 0.
		wr := sub.WorldRanks()
		for i := 1; i < len(wr); i++ {
			if wr[i] >= wr[i-1] {
				return fmt.Errorf("split ordering wrong: %v", wr)
			}
		}
		// The subcomm must be usable for collectives.
		got, err := p.AllreduceSum(sub, []float64{1})
		if err != nil {
			return err
		}
		if got[0] != float64(size/2) {
			return fmt.Errorf("subcomm allreduce = %v", got)
		}
		_ = me
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSplitUndefinedColor(t *testing.T) {
	w := newTestWorld(t, 4)
	err := w.Run(func(p *Proc) error {
		color := 0
		if p.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub, err := p.CommSplit(p.World(), color, 0)
		if err != nil {
			return err
		}
		if p.Rank() == 3 {
			if sub != nil {
				return errors.New("undefined color should get nil comm")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("subcomm size %d, want 3", sub.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSplitTypeShared(t *testing.T) {
	cfg, err := cluster.NewConfig(96, cluster.FullLoad, cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(96, Options{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		nodeComm, err := p.CommSplitTypeShared(p.World())
		if err != nil {
			return err
		}
		if nodeComm.Size() != 48 {
			return fmt.Errorf("node comm size %d, want 48", nodeComm.Size())
		}
		myNode, _ := p.Location()
		for _, wr := range nodeComm.WorldRanks() {
			if wr/48 != myNode {
				return fmt.Errorf("rank %d grouped with foreign node rank %d", p.Rank(), wr)
			}
		}
		// The paper designates the highest rank of each node as monitoring
		// rank; verify it is identifiable.
		wrs := nodeComm.WorldRanks()
		if wrs[len(wrs)-1] != (myNode+1)*48-1 {
			return fmt.Errorf("highest rank of node %d is %d", myNode, wrs[len(wrs)-1])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Nodes()) != 2 {
		t.Fatalf("world has %d rapl nodes, want 2", len(w.Nodes()))
	}
}

func TestNonMemberOperationsFail(t *testing.T) {
	w := newTestWorld(t, 4)
	err := w.Run(func(p *Proc) error {
		sub, err := p.CommSplit(p.World(), p.Rank()%2, 0)
		if err != nil {
			return err
		}
		other := p.Rank() % 2
		_ = other
		if p.Rank()%2 == 0 {
			// Even ranks try to use… their own comm is fine; construct a
			// membership error by using the odd comm is impossible from
			// here, so check Rank() on world instead.
			if _, err := sub.Rank(p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastTimeScalesLogarithmically(t *testing.T) {
	cost := DefaultCostModel()
	t16 := cost.BcastTime(16, 800)
	t256 := cost.BcastTime(256, 800)
	if r := t256 / t16; math.Abs(r-2) > 1e-9 {
		t.Fatalf("bcast 256/16 ratio = %g, want 2 (log scaling)", r)
	}
	if cost.BcastTime(1, 800) != 0 {
		t.Fatal("single-rank bcast must be free")
	}
	if cost.AllreduceTime(16, 8) != 2*cost.BcastTime(16, 8) {
		t.Fatal("allreduce model must be two tree passes")
	}
}

func TestComputeValidation(t *testing.T) {
	w := newTestWorld(t, 1)
	err := w.Run(func(p *Proc) error {
		defer func() { recover() }()
		p.Compute(-1, 0)
		return errors.New("negative compute accepted")
	})
	if err != nil {
		t.Fatal(err)
	}
	w2 := newTestWorld(t, 1)
	err = w2.Run(func(p *Proc) error {
		defer func() { recover() }()
		p.ComputeFlops(10, 0, 0)
		return errors.New("zero rate accepted")
	})
	if err != nil {
		t.Fatal(err)
	}
}
