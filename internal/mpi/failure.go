package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// Failure semantics. When the fault plane (internal/fault, wired through
// Options.Fault) crashes a rank, or a rank aborts with an error or panic
// of its own, the rest of the world must find out instead of deadlocking:
// a Recv, Barrier or collective involving the dead rank returns an error
// wrapping ErrRankFailed on every live rank, after charging the busy-wait
// up to the (deterministic) failure time plus the configured detection
// timeout. The machinery has three parts:
//
//   - the failureBoard: the world's registry of dead ranks. Marking a
//     rank closes (and replaces) a broadcast channel so blocked channel
//     waiters — the dissemination barrier — can re-check.
//   - stream poisoning: every (src→dst) message stream touching the dead
//     rank is marked, waking blocked senders (whose puts become discards)
//     and receivers (who drain what was sent before the failure, then
//     fail).
//   - the crash panic: a rank whose own virtual clock crosses its
//     scheduled crash time charges time and energy up to the crash,
//     marks the board, and unwinds via panic; World.Run converts the
//     unwind into an ErrRankFailed error for that rank.
//
// With no injector and no errors none of this is reachable, and every
// output stays byte-identical.

// ErrRankFailed is the sentinel wrapped by every failure-induced error:
// the crashed rank's own abort, and the error any live rank gets from an
// operation that can no longer complete because a participant is dead.
var ErrRankFailed = errors.New("rank failed")

// failKind distinguishes injected crashes from ranks that aborted with
// their own error or panic; both poison the world identically.
type failKind int

const (
	failCrashed failKind = iota
	failAborted
)

func (k failKind) String() string {
	if k == failCrashed {
		return "crashed"
	}
	return "aborted"
}

// failInfo is one dead rank's record: the virtual time it died, which is
// deterministic, so the detection charges on live ranks are too.
type failInfo struct {
	t    float64
	kind failKind
}

// failureBoard is the world's shared registry of dead ranks.
type failureBoard struct {
	mu     sync.Mutex
	ch     chan struct{} // closed and replaced on every new failure
	failed map[int]failInfo
}

func newFailureBoard() *failureBoard {
	return &failureBoard{ch: make(chan struct{})}
}

// mark records a failure; the first marking wins and returns true.
func (b *failureBoard) mark(rank int, t float64, kind failKind) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.failed[rank]; ok {
		return false
	}
	if b.failed == nil {
		b.failed = make(map[int]failInfo)
	}
	b.failed[rank] = failInfo{t: t, kind: kind}
	close(b.ch)
	b.ch = make(chan struct{})
	return true
}

// get returns the failure record of a rank.
func (b *failureBoard) get(rank int) (failInfo, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	info, ok := b.failed[rank]
	return info, ok
}

// watch returns a channel closed at the next failure (or already closed
// if one raced the caller). Re-fetch after every wake.
func (b *failureBoard) watch() <-chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ch
}

// anyOf returns the failed member of the communicator index with the
// earliest failure time (ties to the lowest rank), so concurrent failures
// yield the same answer regardless of map iteration order.
func (b *failureBoard) anyOf(index map[int]int) (int, failInfo, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	best, bestInfo, found := -1, failInfo{}, false
	for r, info := range b.failed {
		if _, ok := index[r]; !ok {
			continue
		}
		if !found || info.t < bestInfo.t || (info.t == bestInfo.t && r < best) {
			best, bestInfo, found = r, info, true
		}
	}
	return best, bestInfo, found
}

// markFailed records the death of a rank and poisons its streams so every
// blocked peer wakes. Idempotent.
func (w *World) markFailed(rank int, t float64, kind failKind) {
	if !w.fail.mark(rank, t, kind) {
		return
	}
	// rank as destination: senders blocked on backpressure resume and
	// their future puts discard.
	sh := &w.mail[rank]
	sh.mu.Lock()
	for _, s := range sh.streams {
		s.markDstDead()
	}
	sh.mu.Unlock()
	// rank as source: receivers drain what was already sent, then fail.
	for d := range w.mail {
		if d == rank {
			continue
		}
		dsh := &w.mail[d]
		dsh.mu.Lock()
		s := dsh.streams[rank]
		dsh.mu.Unlock()
		if s != nil {
			s.markSrcDead()
		}
	}
}

// crashPanic carries a fault-injected crash up the rank's stack;
// World.Run converts it into an ErrRankFailed error.
type crashPanic struct {
	rank int
	t    float64
}

// die marks this rank crashed at its current clock and unwinds. The
// caller has already charged time and energy up to the crash.
func (p *Proc) die() {
	p.w.markFailed(p.rank, p.clock, failCrashed)
	if p.w.trace != nil {
		p.MarkInstant("rank-crashed")
	}
	if m := p.w.metrics; m != nil {
		m.faultCrashes.Inc()
	}
	panic(crashPanic{rank: p.rank, t: p.clock})
}

// advanceToCrash charges the partial advance up to the crash time (busy
// seconds at nominal activity, plus the pro-rated memory traffic of the
// interrupted operation) and dies. dt is the full advance that crossed
// the crash time.
func (p *Proc) advanceToCrash(dt, bytes float64) {
	dtc := p.crashAt - p.clock
	if dtc > 0 {
		frac := 1.0
		if dt > 0 {
			frac = dtc / dt
		}
		p.clock = p.crashAt
		p.w.chargeNode(p.rank, dtc, bytes*frac, p.clock)
	}
	p.die()
}

// peerFailed charges the deterministic failure-detection wait (the dead
// rank's failure time plus the detection timeout) and returns the typed
// error for an operation involving a dead peer.
func (p *Proc) peerFailed(peer int) error {
	info, ok := p.w.fail.get(peer)
	if !ok {
		// A poisoned stream implies a board entry; defensive fallback.
		info = failInfo{t: p.clock, kind: failAborted}
	}
	return p.commFailed(peer, info)
}

// commFailed charges the detection wait and builds the ErrRankFailed
// error for a known-dead peer.
func (p *Proc) commFailed(peer int, info failInfo) error {
	p.waitUntil(info.t + p.w.detect)
	if m := p.w.metrics; m != nil {
		m.faultDetections.Inc()
	}
	return fmt.Errorf("mpi: rank %d: world rank %d %s at t=%.9gs: %w",
		p.rank, peer, info.kind, info.t, ErrRankFailed)
}
