package mpi

import (
	"fmt"
	"sort"
	"sync"
)

// Comm is a communicator: an ordered group of world ranks. A single Comm
// value is shared by all member goroutines (its barrier state synchronises
// them); per-rank views are expressed by passing the Proc to operations.
type Comm struct {
	w     *World
	id    int
	ranks []int       // world ranks in comm-rank order
	index map[int]int // world rank → comm rank
	bar   commBarrier
}

func newWorldComm(w *World) *Comm {
	ranks := make([]int, w.size)
	for i := range ranks {
		ranks[i] = i
	}
	return newComm(w, 0, ranks)
}

func newComm(w *World, id int, ranks []int) *Comm {
	c := &Comm{w: w, id: id, ranks: ranks, index: make(map[int]int, len(ranks))}
	for i, r := range ranks {
		c.index[r] = i
	}
	return c
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// Rank returns p's rank within c, or an error when p is not a member.
func (c *Comm) Rank(p *Proc) (int, error) {
	r, ok := c.index[p.rank]
	if !ok {
		return 0, fmt.Errorf("mpi: world rank %d is not in communicator %d", p.rank, c.id)
	}
	return r, nil
}

// WorldRanks returns the members in comm-rank order.
func (c *Comm) WorldRanks() []int {
	out := make([]int, len(c.ranks))
	copy(out, c.ranks)
	return out
}

// worldRank translates a comm rank to a world rank.
func (c *Comm) worldRank(commRank int) (int, error) {
	if commRank < 0 || commRank >= len(c.ranks) {
		return 0, fmt.Errorf("mpi: comm rank %d out of range [0,%d)", commRank, len(c.ranks))
	}
	return c.ranks[commRank], nil
}

// commBarrier is a reusable dissemination barrier that also merges virtual
// clocks: every participant leaves at max(arrival clocks) + barrier cost.
//
// The first engine funnelled every participant through one mutex/condvar,
// which serialises all ranks of the world communicator at every barrier.
// The dissemination scheme (Hensgen–Finkel–Manber) runs ceil(log2 n)
// rounds; in round k, comm rank i passes its running clock maximum to rank
// (i+2^k) mod n and merges the one arriving from (i−2^k) mod n. After the
// last round every rank holds the exact global maximum — the same release
// value the central barrier computed, bit for bit, with no shared hot
// spot. Slot channels have capacity 1 and come in two generation-parity
// sets: a rank can be at most one generation ahead of any rank it signals
// (finishing generation g+1 transitively requires everyone to have
// finished g), so same-parity reuse can never mix generations.
type commBarrier struct {
	once   sync.Once
	rounds int
	// slots[gen&1][round*size + receiver] carries one partial maximum.
	slots [2][]chan float64
}

func (b *commBarrier) init(size int) {
	b.once.Do(func() {
		b.rounds = TreeDepth(size)
		for par := range b.slots {
			slots := make([]chan float64, b.rounds*size)
			for i := range slots {
				slots[i] = make(chan float64, 1)
			}
			b.slots[par] = slots
		}
	})
}

// Barrier synchronises all members of c (MPI_Barrier). The released clock
// is the same for every rank; waiting is charged as busy polling.
func (p *Proc) Barrier(c *Comm) error {
	me, err := c.Rank(p)
	if err != nil {
		return err
	}
	if m := p.w.metrics; m != nil {
		m.barriers.Inc()
	}
	start := p.clock
	size := len(c.ranks)
	maxClock := p.clock
	if size > 1 {
		b := &c.bar
		b.init(size)
		slots := b.slots[p.nextBarGen(c)&1]
		for k, step := 0, 1; k < b.rounds; k, step = k+1, step<<1 {
			if err := p.slotSend(c, slots[k*size+(me+step)%size], maxClock); err != nil {
				return err
			}
			v, err := p.slotRecv(c, slots[k*size+me])
			if err != nil {
				return err
			}
			if v > maxClock {
				maxClock = v
			}
		}
	}
	p.waitUntil(maxClock + p.w.cost.BarrierTime(size))
	p.recordCollective("barrier", start, 0)
	return nil
}

// slotSend delivers one dissemination-round value, giving up when a
// communicator member is dead: a dead rank never drains its slots, so a
// blocked barrier send could otherwise wait forever. The channel is always
// probed before (and after) consulting the failure board, so a slot value
// that is actually available wins over a concurrent failure — the outcome
// depends only on whether the peer reached this round in program order,
// not on goroutine scheduling.
func (p *Proc) slotSend(c *Comm, ch chan float64, v float64) error {
	for {
		select {
		case ch <- v:
			return nil
		default:
		}
		fw := p.w.fail.watch()
		if r, info, ok := p.w.fail.anyOf(c.index); ok {
			select {
			case ch <- v:
				return nil
			default:
			}
			return p.commFailed(r, info)
		}
		select {
		case ch <- v:
			return nil
		case <-fw:
		}
	}
}

// slotRecv is slotSend's receiving half: it takes the round's merged clock
// or reports the (deterministically chosen) dead member.
func (p *Proc) slotRecv(c *Comm, ch chan float64) (float64, error) {
	for {
		select {
		case v := <-ch:
			return v, nil
		default:
		}
		fw := p.w.fail.watch()
		if r, info, ok := p.w.fail.anyOf(c.index); ok {
			select {
			case v := <-ch:
				return v, nil
			default:
			}
			return 0, p.commFailed(r, info)
		}
		select {
		case v := <-ch:
			return v, nil
		case <-fw:
		}
	}
}

// splitKey identifies one split group so that exactly one Comm is created
// per group and shared by its members.
type splitKey struct {
	parent int
	seq    int
	color  int
}

// commRegistry hands out shared Comm instances for splits: the first
// member of a group to arrive creates the communicator, the rest share it.
type commRegistry struct {
	mu     sync.Mutex
	nextID int
	comms  map[splitKey]*Comm
}

func (w *World) sharedComm(key splitKey, ranks []int) *Comm {
	reg := &w.comms
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.comms == nil {
		reg.nextID = 1
		reg.comms = make(map[splitKey]*Comm)
	}
	if c, ok := reg.comms[key]; ok {
		return c
	}
	c := newComm(w, reg.nextID, ranks)
	reg.nextID++
	reg.comms[key] = c
	return c
}

// CommSplit partitions c by color, ordering each new communicator by key
// then by current rank (MPI_Comm_split). Ranks passing color < 0
// (MPI_UNDEFINED) receive nil.
func (p *Proc) CommSplit(c *Comm, color, key int) (*Comm, error) {
	if _, err := c.Rank(p); err != nil {
		return nil, err
	}
	seq := p.nextSeq(c)
	p.countCollective(opSplit)
	start := p.clock
	// Exchange (color, key) pairs; the payload rides the normal collective
	// machinery so its cost is accounted like real MPI_Comm_split traffic.
	all, err := p.allgather(c, seq, []float64{float64(color), float64(key)})
	p.recordCollective("comm_split", start, 2*c.Size())
	if err != nil {
		return nil, err
	}
	if color < 0 {
		return nil, nil
	}
	type member struct{ key, commRank int }
	var members []member
	for r := 0; r < c.Size(); r++ {
		if int(all[r][0]) == color {
			members = append(members, member{key: int(all[r][1]), commRank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].commRank < members[j].commRank
	})
	ranks := make([]int, len(members))
	for i, m := range members {
		ranks[i] = c.ranks[m.commRank]
	}
	return p.w.sharedComm(splitKey{parent: c.id, seq: seq, color: color}, ranks), nil
}

// CommSplitTypeShared groups the ranks that share a node, the analog of
// MPI_Comm_split_type(MPI_COMM_TYPE_SHARED) the paper's framework uses to
// build its per-node communicators (§4).
func (p *Proc) CommSplitTypeShared(c *Comm) (*Comm, error) {
	node, _ := p.w.location(p.rank)
	return p.CommSplit(c, node, 0)
}
