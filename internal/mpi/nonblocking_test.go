package mpi

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

func TestIsendWaitRoundTrip(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			req, err := p.Isend(c, 1, 5, []float64{1, 2})
			if err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if !req.Done() {
				return errors.New("send request not done after Wait")
			}
			return nil
		}
		req, err := p.Irecv(c, 0, 5)
		if err != nil {
			return err
		}
		got, err := req.Wait()
		if err != nil {
			return err
		}
		if len(got) != 2 || got[1] != 2 {
			return fmt.Errorf("payload %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvOverlapHidesLatency(t *testing.T) {
	// The receiver posts the receive, computes long enough to cover the
	// message flight, then waits: its clock must show only the compute
	// time plus the receive overhead — the latency is hidden.
	w := newTestWorld(t, 2)
	cost := DefaultCostModel()
	err := w.Run(func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			return p.Send(c, 1, 3, []float64{7})
		}
		req, err := p.Irecv(c, 0, 3)
		if err != nil {
			return err
		}
		p.Compute(1.0, 0) // long overlap window
		if _, err := req.Wait(); err != nil {
			return err
		}
		want := 1.0 + cost.RecvOverhead // message arrived long ago
		if math.Abs(p.Clock()-want) > 1e-12 {
			return fmt.Errorf("clock %g, want %g (latency not hidden)", p.Clock(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestMisuse(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			req, err := p.Isend(c, 1, 1, []float64{1})
			if err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if _, err := req.Wait(); err == nil {
				return errors.New("double Wait accepted")
			}
			if _, err := p.Isend(c, 1, -2, nil); err == nil {
				return errors.New("negative tag Isend accepted")
			}
			if _, err := p.Irecv(c, 9, 0); err == nil {
				return errors.New("out-of-range Irecv accepted")
			}
			var nilReq *Request
			if _, err := nilReq.Wait(); err == nil {
				return errors.New("nil request Wait accepted")
			}
			return nil
		}
		_, err := p.Recv(c, 0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAll(t *testing.T) {
	w := newTestWorld(t, 3)
	err := w.Run(func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			var reqs []*Request
			for dst := 1; dst < 3; dst++ {
				r, err := p.Isend(c, dst, 2, []float64{float64(dst)})
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			return WaitAll(reqs)
		}
		got, err := p.Recv(c, 0, 2)
		if err != nil {
			return err
		}
		if got[0] != float64(p.Rank()) {
			return fmt.Errorf("rank %d got %v", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		c := p.World()
		partner := 1 - p.Rank()
		got, err := p.Sendrecv(c, partner, 9, []float64{float64(p.Rank() + 10)})
		if err != nil {
			return err
		}
		if got[0] != float64(partner+10) {
			return fmt.Errorf("rank %d exchanged %v", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, _ := w.Traffic()
	if msgs != 2 {
		t.Fatalf("exchange used %d messages, want 2", msgs)
	}
}

func TestScatter(t *testing.T) {
	const size = 5
	w := newTestWorld(t, size)
	err := w.Run(func(p *Proc) error {
		var chunks [][]float64
		if p.Rank() == 2 {
			chunks = make([][]float64, size)
			for i := range chunks {
				chunks[i] = []float64{float64(i * 100)}
			}
		}
		got, err := p.Scatter(p.World(), 2, chunks)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != float64(p.Rank()*100) {
			return fmt.Errorf("rank %d got %v", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, _ := w.Traffic()
	if msgs != size-1 {
		t.Fatalf("scatter used %d messages, want %d", msgs, size-1)
	}
}

func TestScatterValidation(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() != 0 {
			return nil
		}
		if _, err := p.Scatter(p.World(), 9, nil); err == nil {
			return errors.New("bad root accepted")
		}
		if _, err := p.Scatter(p.World(), 0, [][]float64{{1}}); err == nil {
			return errors.New("short chunk list accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < size; root += 2 {
			w := newTestWorld(t, size)
			err := w.Run(func(p *Proc) error {
				got, err := p.ReduceSum(p.World(), root, []float64{1, float64(p.Rank())})
				if err != nil {
					return err
				}
				me, _ := p.World().Rank(p)
				if me != root {
					if got != nil {
						return errors.New("non-root received reduce result")
					}
					return nil
				}
				wantSum := float64(size * (size - 1) / 2)
				if got[0] != float64(size) || got[1] != wantSum {
					return fmt.Errorf("root got %v, want [%d %g]", got, size, wantSum)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("size %d root %d: %v", size, root, err)
			}
			msgs, _ := w.Traffic()
			if msgs != int64(size-1) {
				t.Fatalf("size %d: reduce used %d messages, want %d", size, msgs, size-1)
			}
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	const size = 6
	w := newTestWorld(t, size)
	err := w.Run(func(p *Proc) error {
		v := float64(p.Rank())
		mx, err := p.AllreduceMax(p.World(), []float64{v, -v})
		if err != nil {
			return err
		}
		if mx[0] != size-1 || mx[1] != 0 {
			return fmt.Errorf("max = %v", mx)
		}
		mn, err := p.AllreduceMin(p.World(), []float64{v, -v})
		if err != nil {
			return err
		}
		if mn[0] != 0 || mn[1] != -(size-1) {
			return fmt.Errorf("min = %v", mn)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const size = 5
	w := newTestWorld(t, size)
	err := w.Run(func(p *Proc) error {
		// Rank r sends to rank d a chunk of d+1 copies of 10r+d.
		chunks := make([][]float64, size)
		for d := range chunks {
			chunk := make([]float64, d+1)
			for i := range chunk {
				chunk[i] = float64(10*p.Rank() + d)
			}
			chunks[d] = chunk
		}
		got, err := p.Alltoall(p.World(), chunks)
		if err != nil {
			return err
		}
		me := p.Rank()
		for s := 0; s < size; s++ {
			if len(got[s]) != me+1 {
				return fmt.Errorf("from %d: %d elements, want %d", s, len(got[s]), me+1)
			}
			if got[s][0] != float64(10*s+me) {
				return fmt.Errorf("from %d: %v", s, got[s])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, _ := w.Traffic()
	if msgs != size*(size-1) {
		t.Fatalf("alltoall used %d messages, want %d", msgs, size*(size-1))
	}
}

func TestAlltoallValidation(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() != 0 {
			return nil
		}
		if _, err := p.Alltoall(p.World(), [][]float64{{1}}); err == nil {
			return errors.New("short chunk list accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSumValidation(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) error {
		c := p.World()
		if _, err := p.ReduceSum(c, 5, []float64{1}); err == nil {
			return errors.New("bad root accepted")
		}
		// Mismatched lengths between ranks.
		data := []float64{1}
		if p.Rank() == 1 {
			data = []float64{1, 2}
		}
		_, err := p.ReduceSum(c, 0, data)
		if p.Rank() == 0 && err == nil {
			return errors.New("length mismatch accepted at root")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
