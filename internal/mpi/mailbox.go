package mpi

import "sync"

// Sparse message matching.
//
// The first engine preallocated a dense size² matrix of depth-64 channels
// at world construction — ~1.7 million channels (gigabytes of buffer
// space) for the paper's 1296-rank deployments, almost all of which a
// solver never touches: IMe and ScaLAPACK communicate along broadcast
// trees, rows, and columns, so the active pair set is O(size·log size).
// Following the skeletonised-MPI simulators (SST/macro, SimGrid/SMPI),
// matching state is now lazy and sparse:
//
//   - each destination rank owns one mailShard: a small lock plus a map of
//     per-source streams, created on first use (lock-per-destination-
//     shard). World construction is O(size).
//   - a stream is the FIFO queue of one (src → dst) ordered message
//     sequence: an intrusive singly-linked list of pooled nodes guarded by
//     its own mutex, so two unrelated pairs never contend.
//   - Procs cache the streams they touch, so steady-state messaging takes
//     only the stream's own lock — the shard lock is hit once per pair.
//
// Tag matching (the unexpected-message stash with lookahead) stays at the
// receiver exactly as before; a stream preserves FIFO-per-(src,tag) by
// preserving FIFO per source outright.

// mailboxDepth bounds eager buffering per rank pair; senders block beyond
// it (standard buffered-send backpressure), exactly like the depth the
// dense engine gave its channels.
const mailboxDepth = 64

// msgNode is one pooled list node carrying a queued message, shared
// between in-flight streams and the receiver-side stash.
type msgNode struct {
	msg  message
	next *msgNode
}

// msgNodePool recycles list nodes across streams, stashes, ranks and
// worlds, keeping the per-message path allocation-free.
var msgNodePool = sync.Pool{New: func() any { return new(msgNode) }}

// stream carries the ordered messages of one (src → dst) pair. The dead
// flags are set when the fault plane kills an endpoint (failure.go):
// srcDead means no more messages will ever arrive (the receiver drains
// the queue, then take reports failure); dstDead means nobody will ever
// read again (puts discard instead of blocking on backpressure).
type stream struct {
	mu      sync.Mutex
	sendOK  sync.Cond // space available (count < mailboxDepth)
	recvOK  sync.Cond // message available
	head    *msgNode
	tail    *msgNode
	count   int
	srcDead bool
	dstDead bool
}

func newStream() *stream {
	s := &stream{}
	s.sendOK.L = &s.mu
	s.recvOK.L = &s.mu
	return s
}

// put enqueues msg, blocking while the stream is mailboxDepth deep. A
// message for a dead destination is discarded (its buffer recycled), so
// senders never block on a rank that will not drain its mailbox.
func (s *stream) put(msg message) {
	n := msgNodePool.Get().(*msgNode)
	n.msg = msg
	n.next = nil
	s.mu.Lock()
	for s.count >= mailboxDepth && !s.dstDead {
		s.sendOK.Wait()
	}
	if s.dstDead {
		s.mu.Unlock()
		*n = msgNode{}
		msgNodePool.Put(n)
		PutBuf(msg.data)
		return
	}
	if s.tail == nil {
		s.head = n
	} else {
		s.tail.next = n
	}
	s.tail = n
	s.count++
	s.mu.Unlock()
	s.recvOK.Signal()
}

// take dequeues the oldest message, blocking until one is available. The
// backing node is recycled before returning. When the source is dead and
// the queue drained, take reports failure instead of blocking forever:
// messages handed to the fabric before the crash are still delivered.
func (s *stream) take() (message, bool) {
	s.mu.Lock()
	for s.count == 0 && !s.srcDead {
		s.recvOK.Wait()
	}
	if s.count == 0 {
		s.mu.Unlock()
		return message{}, false
	}
	n := s.head
	s.head = n.next
	if s.head == nil {
		s.tail = nil
	}
	s.count--
	s.mu.Unlock()
	s.sendOK.Signal()
	msg := n.msg
	*n = msgNode{}
	msgNodePool.Put(n)
	return msg, true
}

// markSrcDead wakes receivers: after draining the queue they fail.
func (s *stream) markSrcDead() {
	s.mu.Lock()
	s.srcDead = true
	s.mu.Unlock()
	s.recvOK.Broadcast()
}

// markDstDead wakes blocked senders; their puts turn into discards.
func (s *stream) markDstDead() {
	s.mu.Lock()
	s.dstDead = true
	s.mu.Unlock()
	s.sendOK.Broadcast()
}

// mailShard is one destination rank's matcher: the lazily populated set of
// incoming streams, keyed by source world rank.
type mailShard struct {
	mu      sync.Mutex
	streams map[int]*stream
}

// stream returns the (src → dst) stream, creating it on first use. A
// stream created after an endpoint already died is born poisoned, so the
// failure board and lazy creation can never race a peer into a deadlock.
func (w *World) stream(dst, src int) *stream {
	sh := &w.mail[dst]
	sh.mu.Lock()
	s := sh.streams[src]
	created := s == nil
	if created {
		if sh.streams == nil {
			sh.streams = make(map[int]*stream, 8)
		}
		s = newStream()
		sh.streams[src] = s
	}
	sh.mu.Unlock()
	if created {
		if _, dead := w.fail.get(src); dead {
			s.markSrcDead()
		}
		if _, dead := w.fail.get(dst); dead {
			s.markDstDead()
		}
	}
	return s
}

// txStream returns this rank's cached outgoing stream to world rank dst.
func (p *Proc) txStream(dst int) *stream {
	if s := p.tx[dst]; s != nil {
		return s
	}
	s := p.w.stream(dst, p.rank)
	if p.tx == nil {
		p.tx = make(map[int]*stream, 8)
	}
	p.tx[dst] = s
	return s
}

// rxStream returns this rank's cached incoming stream from world rank src.
func (p *Proc) rxStream(src int) *stream {
	if s := p.rx[src]; s != nil {
		return s
	}
	s := p.w.stream(p.rank, src)
	if p.rx == nil {
		p.rx = make(map[int]*stream, 8)
	}
	p.rx[src] = s
	return s
}

// stashList is the receiver's unexpected-message queue for one source: an
// ordered singly-linked list of pooled nodes. Claiming a matched message
// unlinks its node in place (no tail copying, unlike the earlier slice
// remove, which was quadratic under deep lookahead) and recycles it.
type stashList struct {
	head  *msgNode
	tail  *msgNode
	count int
}

// push appends a message at the tail (arrival order).
func (l *stashList) push(msg message) {
	n := msgNodePool.Get().(*msgNode)
	n.msg = msg
	n.next = nil
	if l.tail == nil {
		l.head = n
	} else {
		l.tail.next = n
	}
	l.tail = n
	l.count++
}

// claim removes and returns the earliest message with the given tag.
func (l *stashList) claim(tag int) (message, bool) {
	var prev *msgNode
	for n := l.head; n != nil; prev, n = n, n.next {
		if n.msg.tag != tag {
			continue
		}
		if prev == nil {
			l.head = n.next
		} else {
			prev.next = n.next
		}
		if l.tail == n {
			l.tail = prev
		}
		l.count--
		msg := n.msg
		*n = msgNode{}
		msgNodePool.Put(n)
		return msg, true
	}
	return message{}, false
}
