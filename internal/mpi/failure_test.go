package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// failWatchdog runs f and fails the test if it has not returned within the
// deadline — the fault plane's contract is that a crashed rank never
// deadlocks the world, and a hung test under -race would otherwise burn
// the whole package timeout.
func failWatchdog(t *testing.T, d time.Duration, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("world deadlocked: no return within %v", d)
		return nil
	}
}

// crashWorld builds a world whose victim rank crashes at crashT.
func crashWorld(t *testing.T, size, victim int, crashT float64) *World {
	t.Helper()
	inj, err := fault.New(fault.Config{
		Seed:   1,
		Events: []fault.Event{{Time: crashT, Ranks: []int{victim}}},
	}, size)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(size, Options{Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestRecvFromCrashedRankFails pins the point-to-point half of the
// failure contract: every live rank blocked on a Recv from the victim
// gets ErrRankFailed (no deadlock), charged out to the deterministic
// detection time, while payloads handed to the fabric before the crash
// are still delivered.
func TestRecvFromCrashedRankFails(t *testing.T) {
	const size, victim, crashT = 6, 2, 0.5
	w := crashWorld(t, size, victim, crashT)

	var mu sync.Mutex
	rankErr := make(map[int]error, size)
	err := failWatchdog(t, 60*time.Second, func() error {
		return w.Run(func(p *Proc) error {
			c := p.World()
			var err error
			if p.Rank() == victim {
				// Send one message before the crash, then compute across
				// the crash time and die mid-operation.
				err = p.Send(c, 0, 7, []float64{42})
				if err == nil {
					p.Compute(2*crashT, 0)
					err = fmt.Errorf("victim survived its crash time")
				}
			} else {
				if p.Rank() == 0 {
					// The pre-crash payload must still arrive.
					var data []float64
					data, err = p.Recv(c, victim, 7)
					if err == nil && (len(data) != 1 || data[0] != 42) {
						err = fmt.Errorf("pre-crash payload corrupted: %v", data)
					}
					if err != nil {
						mu.Lock()
						rankErr[0] = err
						mu.Unlock()
						return err
					}
				}
				// This message was never sent: the stream drains, then fails.
				_, err = p.Recv(c, victim, 8)
			}
			mu.Lock()
			rankErr[p.Rank()] = err
			mu.Unlock()
			return err
		})
	})
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("Run returned %v, want ErrRankFailed", err)
	}
	for r := 0; r < size; r++ {
		if r == victim {
			continue
		}
		if !errors.Is(rankErr[r], ErrRankFailed) {
			t.Errorf("live rank %d got %v, want ErrRankFailed", r, rankErr[r])
		}
	}
	if ft, dead := w.Failed(victim); !dead || ft != crashT {
		t.Errorf("victim failure record = (%v, %v), want (%v, true)", ft, dead, crashT)
	}
	// Every live rank aborted with ErrRankFailed, so the board records the
	// whole world: the crash itself plus the abort cascade it triggered.
	if got := w.FailedRanks(); len(got) != size {
		t.Errorf("FailedRanks() = %v, want all %d ranks (crash + abort cascade)", got, size)
	}
	if e := w.TotalEnergyJ(); e <= 0 {
		t.Errorf("no energy charged up to the failure: %g J", e)
	}
	if mc := w.MaxClock(); mc < crashT {
		t.Errorf("makespan %g predates the crash at %g", mc, crashT)
	}
}

// TestBarrierWithCrashedRankFails pins the barrier half: a dissemination
// barrier with a dead member returns ErrRankFailed on every live rank
// instead of blocking in its slot channels.
func TestBarrierWithCrashedRankFails(t *testing.T) {
	const size, victim, crashT = 8, 3, 0.25
	w := crashWorld(t, size, victim, crashT)

	var mu sync.Mutex
	rankErr := make(map[int]error, size)
	err := failWatchdog(t, 60*time.Second, func() error {
		return w.Run(func(p *Proc) error {
			if p.Rank() == victim {
				p.Compute(2*crashT, 0)
				return fmt.Errorf("victim survived its crash time")
			}
			err := p.Barrier(p.World())
			mu.Lock()
			rankErr[p.Rank()] = err
			mu.Unlock()
			return err
		})
	})
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("Run returned %v, want ErrRankFailed", err)
	}
	for r := 0; r < size; r++ {
		if r == victim {
			continue
		}
		if !errors.Is(rankErr[r], ErrRankFailed) {
			t.Errorf("live rank %d got %v, want ErrRankFailed", r, rankErr[r])
		}
	}
}

// TestAllgatherWithCrashedRankFails pins the collective half: the Bruck
// allgather over a world with a dead member fails on every live rank,
// directly (a recv from the victim) or through the abort cascade (a peer
// that already failed).
func TestAllgatherWithCrashedRankFails(t *testing.T) {
	const size, victim, crashT = 8, 5, 0.25
	w := crashWorld(t, size, victim, crashT)

	var mu sync.Mutex
	rankErr := make(map[int]error, size)
	err := failWatchdog(t, 60*time.Second, func() error {
		return w.Run(func(p *Proc) error {
			if p.Rank() == victim {
				p.Compute(2*crashT, 0)
				return fmt.Errorf("victim survived its crash time")
			}
			_, err := p.Allgather(p.World(), []float64{float64(p.Rank())})
			mu.Lock()
			rankErr[p.Rank()] = err
			mu.Unlock()
			return err
		})
	})
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("Run returned %v, want ErrRankFailed", err)
	}
	for r := 0; r < size; r++ {
		if r == victim {
			continue
		}
		if !errors.Is(rankErr[r], ErrRankFailed) {
			t.Errorf("live rank %d got %v, want ErrRankFailed", r, rankErr[r])
		}
	}
}

// TestAbortCascadeWithoutInjector pins the always-on half of the failure
// plane: even with no injector, a rank that returns an error unblocks
// peers waiting on it, and Run prefers the root-cause error over the
// ErrRankFailed cascade it triggered.
func TestAbortCascadeWithoutInjector(t *testing.T) {
	const size = 4
	w, err := NewWorld(size, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rootCause := errors.New("application failure on rank 1")
	runErr := failWatchdog(t, 60*time.Second, func() error {
		return w.Run(func(p *Proc) error {
			if p.Rank() == 1 {
				return rootCause
			}
			// Blocks forever unless the abort cascade wakes it.
			_, err := p.Recv(p.World(), 1, 3)
			return err
		})
	})
	if !errors.Is(runErr, rootCause) {
		t.Fatalf("Run returned %v, want the root cause %v", runErr, rootCause)
	}
	if errors.Is(runErr, ErrRankFailed) {
		t.Fatalf("root-cause error was displaced by the cascade: %v", runErr)
	}
}

// TestCrashedWorldDeterministic pins engine-level determinism under
// injection: the same seed yields identical failure records and final
// clocks across runs, and total energy equal to 1e-9 relative (the
// accumulation order across goroutines is not fixed).
func TestCrashedWorldDeterministic(t *testing.T) {
	run := func() (clock float64, energy float64, failT float64) {
		const size, victim = 6, 2
		w := crashWorld(t, size, victim, 0.4)
		_ = failWatchdog(t, 60*time.Second, func() error {
			return w.Run(func(p *Proc) error {
				if p.Rank() == victim {
					p.Compute(1.0, 64)
					return nil
				}
				if err := p.Barrier(p.World()); err != nil {
					return err
				}
				return nil
			})
		})
		ft, _ := w.Failed(victim)
		return w.MaxClock(), w.TotalEnergyJ(), ft
	}
	c1, e1, f1 := run()
	c2, e2, f2 := run()
	if c1 != c2 {
		t.Errorf("final clocks differ across identical runs: %.17g vs %.17g", c1, c2)
	}
	if f1 != f2 {
		t.Errorf("failure times differ across identical runs: %.17g vs %.17g", f1, f2)
	}
	if rel := math.Abs(e1-e2) / math.Max(e1, 1); rel > 1e-9 {
		t.Errorf("energies differ beyond tolerance: %.17g vs %.17g", e1, e2)
	}
}

// TestInactiveInjectorIsFreeOfSideEffects pins the byte-identity
// requirement at the engine level: a zero-config injector must leave
// clocks, traffic and energy exactly identical to a nil one.
func TestInactiveInjectorIsFreeOfSideEffects(t *testing.T) {
	run := func(withInjector bool) (clock, energy float64, msgs, vol int64) {
		opts := Options{}
		if withInjector {
			inj, err := fault.New(fault.Config{Seed: 99}, 4)
			if err != nil {
				t.Fatal(err)
			}
			if inj.Active() {
				t.Fatal("zero-config injector reports active")
			}
			opts.Fault = inj
		}
		w, err := NewWorld(4, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(p *Proc) error {
			p.Compute(1e-3, 4096)
			if p.Rank()%2 == 0 {
				if err := p.Send(p.World(), p.Rank()+1, 1, []float64{1, 2, 3}); err != nil {
					return err
				}
			} else {
				if _, err := p.Recv(p.World(), p.Rank()-1, 1); err != nil {
					return err
				}
			}
			return p.Barrier(p.World())
		}); err != nil {
			t.Fatal(err)
		}
		m, v := w.Traffic()
		return w.MaxClock(), w.TotalEnergyJ(), m, v
	}
	c1, e1, m1, v1 := run(false)
	c2, e2, m2, v2 := run(true)
	if c1 != c2 || e1 != e2 || m1 != m2 || v1 != v2 {
		t.Errorf("inactive injector perturbed the run: clock %.17g vs %.17g, energy %.17g vs %.17g, traffic (%d,%d) vs (%d,%d)",
			c1, c2, e1, e2, m1, v1, m2, v2)
	}
}
