package mpi

import (
	"math"
	"testing"
)

func TestAnalyzeSpansSynthetic(t *testing.T) {
	// Rank 0: compute 1s, send (0.1s); rank 1: wait 1.2s, recv (0.1s),
	// compute 2s. Critical path = compute0 + send + recv + compute1 = 3.2s
	// (the wait is traversed free). Makespan = 3.4s (rank 1 ends at
	// 1.2+0.1+2 = 3.3s... use explicit numbers).
	spans := []Span{
		{Rank: 0, Kind: "compute", Start: 0, End: 1, Peer: -1, Tag: -1},
		{Rank: 0, Kind: "send", Start: 1, End: 1.1, Peer: 1, Tag: 9},
		{Rank: 1, Kind: "wait", Start: 0, End: 1.2, Peer: -1, Tag: -1},
		{Rank: 1, Kind: "recv", Start: 1.2, End: 1.3, Peer: 0, Tag: 9},
		{Rank: 1, Kind: "compute", Start: 1.3, End: 3.3, Peer: -1, Tag: -1},
		// Wrapper spans must not be double-counted.
		{Rank: 1, Kind: "collective", Name: "bcast", Start: 0, End: 1.3, Peer: -1, Tag: -1},
		{Rank: 0, Kind: "phase", Name: "panel", Start: 0, End: 1.1, Peer: -1, Tag: -1},
	}
	st, err := AnalyzeSpans(spans)
	if err != nil {
		t.Fatal(err)
	}
	if st.Makespan != 3.3 {
		t.Fatalf("makespan %g, want 3.3", st.Makespan)
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(st.Ranks[0].ComputeS, 1) || !approx(st.Ranks[0].CommS, 0.1) || !approx(st.Ranks[0].WaitS, 0) {
		t.Fatalf("rank 0 breakdown %+v", st.Ranks[0])
	}
	if !approx(st.Ranks[1].ComputeS, 2) || !approx(st.Ranks[1].CommS, 0.1) || !approx(st.Ranks[1].WaitS, 1.2) {
		t.Fatalf("rank 1 breakdown %+v", st.Ranks[1])
	}
	if !approx(st.Ranks[1].IdleS, 0) || !approx(st.Ranks[0].IdleS, 3.3-1.1) {
		t.Fatalf("idle %g / %g", st.Ranks[0].IdleS, st.Ranks[1].IdleS)
	}
	if !approx(st.CriticalS, 3.2) {
		t.Fatalf("critical path %g, want 3.2", st.CriticalS)
	}
	if !approx(st.CriticalComputeS, 3) || !approx(st.CriticalCommS, 0.2) {
		t.Fatalf("critical breakdown compute %g comm %g", st.CriticalComputeS, st.CriticalCommS)
	}
	if st.CriticalSpans != 4 || st.CriticalHops != 1 {
		t.Fatalf("critical spans %d hops %d, want 4 and 1", st.CriticalSpans, st.CriticalHops)
	}
}

func TestAnalyzeSpansFromWorld(t *testing.T) {
	w := newTestWorld(t, 4)
	w.EnableTracing()
	err := w.Run(func(p *Proc) error {
		c := p.World()
		p.Compute(0.01*float64(p.Rank()+1), 0)
		if _, err := p.AllreduceSum(c, []float64{1}); err != nil {
			return err
		}
		p.Compute(0.02, 0)
		return p.Barrier(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := AnalyzeSpans(w.Spans())
	if err != nil {
		t.Fatal(err)
	}
	makespan := w.MaxClock()
	if math.Abs(st.Makespan-makespan) > 1e-12 {
		t.Fatalf("makespan %g, want %g", st.Makespan, makespan)
	}
	if st.CriticalS <= 0 || st.CriticalS > makespan+1e-12 {
		t.Fatalf("critical path %g outside (0, %g]", st.CriticalS, makespan)
	}
	if len(st.Ranks) != 4 {
		t.Fatalf("%d rank rows, want 4", len(st.Ranks))
	}
	for _, r := range st.Ranks {
		if r.Busy()+r.IdleS > makespan+1e-9 {
			t.Fatalf("rank %d over-attributed: %+v (makespan %g)", r.Rank, r, makespan)
		}
		if r.ComputeS < 0.03-1e-12 {
			t.Fatalf("rank %d compute %g, want ≥ 0.03", r.Rank, r.ComputeS)
		}
	}
	// The slowest pre-allreduce compute chain (rank 3: 0.04s) plus the
	// final 0.02s compute must lie under the critical path.
	if st.CriticalComputeS < 0.06-1e-12 {
		t.Fatalf("critical compute %g, want ≥ 0.06", st.CriticalComputeS)
	}
}

func TestAnalyzeSpansEmpty(t *testing.T) {
	if _, err := AnalyzeSpans(nil); err == nil {
		t.Fatal("empty span list accepted")
	}
	if _, err := AnalyzeSpans([]Span{{Kind: "phase", Start: 0, End: 1}}); err == nil {
		t.Fatal("wrapper-only span list accepted")
	}
}
