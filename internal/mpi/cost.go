package mpi

import "fmt"

// CostModel parametrises the virtual-time cost of communication with a
// Hockney-style α–β model, distinguishing intra-node (shared-memory) from
// inter-node (OmniPath) transfers, plus fixed CPU overheads at the
// endpoints (the o of LogP).
//
// Defaults approximate Marconi A3's Intel OmniPath fabric (100 Gbit/s,
// ~1 µs MPI latency) and shared-memory transport within a node.
type CostModel struct {
	// LatencyIntra and LatencyInter are the one-way message latencies in
	// seconds (the α term).
	LatencyIntra float64
	LatencyInter float64
	// BandwidthIntra and BandwidthInter are sustained point-to-point
	// bandwidths in bytes/second (1/β).
	BandwidthIntra float64
	BandwidthInter float64
	// SendOverhead and RecvOverhead are the CPU time consumed at the
	// endpoints per message, independent of size.
	SendOverhead float64
	RecvOverhead float64
}

// CostModelVersion stamps the *semantics* of the communication cost
// model — which terms exist and how Wire/BcastTime/AllreduceTime compose
// them. The concrete constants travel inside the CostModel value itself,
// so persistent caches keyed on a normalized parameter set already see
// constant changes; this stamp covers changes the numbers cannot express
// (a new term, a different collective algorithm). Bump it whenever such a
// change would make previously stored results stale.
const CostModelVersion = "hockney-logp/v1"

// DefaultCostModel returns the OmniPath-calibrated model used throughout
// the reproduction.
func DefaultCostModel() CostModel {
	return CostModel{
		LatencyIntra:   4e-7,   // 0.4 µs shared memory
		LatencyInter:   2.2e-6, // loaded OmniPath MPI latency
		BandwidthIntra: 8e9,    // 8 GB/s per pair through shared memory
		BandwidthInter: 10e9,   // ~80 Gbit/s effective of the 100 Gbit link
		SendOverhead:   2.5e-7,
		RecvOverhead:   2.5e-7,
	}
}

// Validate reports an error for non-physical parameters.
func (c CostModel) Validate() error {
	if c.LatencyIntra < 0 || c.LatencyInter < 0 || c.SendOverhead < 0 || c.RecvOverhead < 0 {
		return fmt.Errorf("mpi: negative latency/overhead in cost model %+v", c)
	}
	if c.BandwidthIntra <= 0 || c.BandwidthInter <= 0 {
		return fmt.Errorf("mpi: non-positive bandwidth in cost model %+v", c)
	}
	return nil
}

// Wire returns the in-flight time of a message of size bytes between two
// ranks, which depends on whether they share a node.
func (c CostModel) Wire(sameNode bool, bytes float64) float64 {
	if sameNode {
		return c.LatencyIntra + bytes/c.BandwidthIntra
	}
	return c.LatencyInter + bytes/c.BandwidthInter
}

// TreeDepth returns ceil(log2(p)), the stage count of binomial-tree
// collectives over p ranks.
func TreeDepth(p int) int {
	if p <= 1 {
		return 0
	}
	d := 0
	for v := p - 1; v > 0; v >>= 1 {
		d++
	}
	return d
}

// BcastTime estimates a binomial-tree broadcast of size bytes over p ranks
// assuming worst-case (inter-node) hops — the analytic engine's collective
// model.
func (c CostModel) BcastTime(p int, bytes float64) float64 {
	return float64(TreeDepth(p)) * (c.SendOverhead + c.Wire(false, bytes) + c.RecvOverhead)
}

// AllreduceTime estimates a small-payload allreduce (reduce+broadcast
// binomial trees) over p ranks.
func (c CostModel) AllreduceTime(p int, bytes float64) float64 {
	return 2 * c.BcastTime(p, bytes)
}

// BarrierTime estimates a dissemination barrier over p ranks.
func (c CostModel) BarrierTime(p int) float64 {
	return float64(TreeDepth(p)) * (c.SendOverhead + c.Wire(false, 0) + c.RecvOverhead)
}

// Float64Bytes is the wire size of one float64 element.
const Float64Bytes = 8
