package mpi

import (
	"math/bits"
	"sync"
)

// Payload buffer pool. Every simulated message used to allocate a fresh
// copy of its payload; at one h-broadcast plus one pivot broadcast plus
// one gather per level, a single solve produced O(n²) garbage per rank.
// The pool recycles transport buffers across levels, worlds and ranks:
// send-side copies draw from it, and consumers that know a received
// buffer is dead hand it back via Proc.Recycle.
//
// Buffers are kept in power-of-two size classes so a recycled buffer can
// serve any request up to its capacity. sync.Pool keeps the whole scheme
// race-free and lets the GC drain it under memory pressure.

// maxPoolClass bounds pooled capacity at 1<<maxPoolClass float64 elements
// (8 MiB); larger payloads go straight to the allocator and the GC.
const maxPoolClass = 20

var bufPools [maxPoolClass + 1]sync.Pool

// GetBuf returns a length-n buffer, reusing pooled storage of n's size
// class when available. Contents are unspecified; callers must overwrite
// every element before reading.
func GetBuf(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c > maxPoolClass {
		return make([]float64, n)
	}
	if v := bufPools[c].Get(); v != nil {
		return v.([]float64)[:n]
	}
	return make([]float64, n, 1<<c)
}

// PutBuf hands a buffer back to the pool. The caller must hold the only
// live reference — in particular, never recycle a sub-slice of a buffer
// whose other parts are still in use — and must not touch buf afterwards.
// Buffers of any origin and capacity are accepted; oversized ones are
// dropped to the GC.
func PutBuf(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	c := bits.Len(uint(cap(buf))) - 1 // floor(log2 cap): cap ≥ 1<<c serves class c
	if c > maxPoolClass {
		return
	}
	bufPools[c].Put(buf[:0:cap(buf)])
}

// Recycle returns a received payload (or a collective's result) to the
// shared buffer pool once this rank is done with it. Recycling is an
// optional optimisation: buffers that are simply dropped are garbage
// collected as before. Only recycle a whole buffer you own exclusively.
func (p *Proc) Recycle(buf []float64) { PutBuf(buf) }
