package mpi

import (
	"strconv"

	"repro/internal/rapl"
	"repro/internal/telemetry"
)

// worldMetrics holds the pre-resolved instruments the runtime's hot paths
// feed. A nil *worldMetrics (the default) disables everything behind a
// single pointer check; with metrics enabled, updates are atomic adds on
// instruments resolved once at EnableMetrics time — no map lookups on the
// message path.
type worldMetrics struct {
	reg *telemetry.Registry

	messages *telemetry.Counter // point-to-point sends (collective stages included)
	bytes    *telemetry.Counter // payload bytes of those sends
	recvs    *telemetry.Counter

	collectives [opAlltoall + 1]*telemetry.Counter // indexed by opcode
	barriers    *telemetry.Counter

	// Per-rank activity accounting (index = world rank).
	computeS []*telemetry.Counter
	waitS    []*telemetry.Counter

	// Fault-plane accounting (failure.go, p2p.go).
	faultCrashes     *telemetry.Counter // ranks killed by the injector
	faultDetections  *telemetry.Counter // ErrRankFailed returns on live ranks
	faultRetransmits *telemetry.Counter // dropped transmissions retried
	faultDelayS      *telemetry.Counter // injected link-jitter seconds

	// lastEnergy[node][domain] is the energy already snapshotted into the
	// rapl counters, so SnapshotEnergyMetrics adds exact deltas.
	lastEnergy [][4]float64
}

// collectiveName maps an opcode to its exposition label.
func collectiveName(op int) string {
	switch op {
	case opBcast:
		return "bcast"
	case opGather:
		return "gather"
	case opAllgather:
		return "allgather"
	case opAllreduce:
		return "allreduce"
	case opSplit:
		return "comm_split"
	case opScatter:
		return "scatter"
	case opReduce:
		return "reduce"
	case opAlltoall:
		return "alltoall"
	default:
		return "unknown"
	}
}

// EnableMetrics switches on metrics collection for the world and returns
// the registry the instrumentation feeds (solvers and the kernel pool can
// register their own series on it). Call before Run; idempotent.
// Collection is passive — virtual time, energy and numerics are unchanged.
func (w *World) EnableMetrics() *telemetry.Registry {
	if w.metrics != nil {
		return w.metrics.reg
	}
	reg := telemetry.NewRegistry()
	m := &worldMetrics{reg: reg}
	m.messages = reg.Counter("mpi_messages_total", "point-to-point messages sent (collective tree stages included)")
	m.bytes = reg.Counter("mpi_message_bytes_total", "payload bytes of point-to-point messages")
	m.recvs = reg.Counter("mpi_recvs_total", "messages received")
	for op := opBcast; op <= opAlltoall; op++ {
		m.collectives[op] = reg.Counter("mpi_collectives_total", "collective operations by type", "op", collectiveName(op))
	}
	m.barriers = reg.Counter("mpi_barriers_total", "barrier synchronisations entered")
	m.faultCrashes = reg.Counter("mpi_fault_crashes_total", "ranks killed by the fault injector")
	m.faultDetections = reg.Counter("mpi_fault_detections_total", "operations that returned ErrRankFailed on live ranks")
	m.faultRetransmits = reg.Counter("mpi_fault_retransmits_total", "dropped transmissions retried by senders")
	m.faultDelayS = reg.Counter("mpi_fault_delay_seconds_total", "injected link-jitter seconds added to message flight time")
	m.computeS = make([]*telemetry.Counter, w.size)
	m.waitS = make([]*telemetry.Counter, w.size)
	for r := 0; r < w.size; r++ {
		rank := strconv.Itoa(r)
		m.computeS[r] = reg.Counter("mpi_compute_seconds_total", "virtual compute seconds by rank", "rank", rank)
		m.waitS[r] = reg.Counter("mpi_wait_seconds_total", "virtual busy-wait seconds by rank", "rank", rank)
	}
	m.lastEnergy = make([][4]float64, len(w.nodes))
	w.metrics = m
	return reg
}

// MetricsRegistry returns the registry EnableMetrics created, or nil when
// metrics are disabled.
func (w *World) MetricsRegistry() *telemetry.Registry {
	if w.metrics == nil {
		return nil
	}
	return w.metrics.reg
}

// Metrics returns the world's registry from a rank's context (nil when
// disabled) so solvers can register their own instruments.
func (p *Proc) Metrics() *telemetry.Registry {
	if p.w.metrics == nil {
		return nil
	}
	return p.w.metrics.reg
}

// SnapshotEnergyMetrics folds the current per-node, per-domain RAPL model
// energy into rapl_energy_joules_total counters — the registry-side
// counterpart of the trace's counter tracks. Safe to call repeatedly (it
// adds exact deltas); call at least once after Run so the exposition
// carries final energies. No-op when metrics are disabled.
func (w *World) SnapshotEnergyMetrics() {
	m := w.metrics
	if m == nil {
		return
	}
	for i, n := range w.nodes {
		node := strconv.Itoa(i)
		w.nodeMu[i].Lock()
		var now [4]float64
		for j, d := range rapl.Domains() {
			now[j] = n.ExactEnergy(d)
		}
		w.nodeMu[i].Unlock()
		for j, d := range rapl.Domains() {
			m.reg.Counter("rapl_energy_joules_total",
				"accumulated RAPL model energy by node and domain",
				"node", node, "domain", d.String()).Add(now[j] - m.lastEnergy[i][j])
			m.lastEnergy[i][j] = now[j]
		}
	}
}
