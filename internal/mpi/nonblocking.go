package mpi

import "fmt"

// Request is a handle on an outstanding non-blocking operation, completed
// by Wait. The zero value is invalid; requests come from Isend and Irecv.
type Request struct {
	p        *Proc
	c        *Comm
	peer     int // comm rank of the remote side
	tag      int
	isRecv   bool
	done     bool
	received []float64
}

// Isend starts a buffered non-blocking send (MPI_Isend with eager
// semantics): the payload is copied and enqueued immediately, and the
// sender is charged its send overhead now. Wait completes trivially.
func (p *Proc) Isend(c *Comm, dst, tag int, data []float64) (*Request, error) {
	if tag < 0 {
		return nil, fmt.Errorf("mpi: rank %d: user tag %d must be non-negative", p.rank, tag)
	}
	if err := p.send(c, dst, tag, data); err != nil {
		return nil, err
	}
	return &Request{p: p, c: c, peer: dst, tag: tag}, nil
}

// Irecv posts a non-blocking receive. No time is charged until Wait,
// which is where the rank actually consumes the message — overlapping
// computation issued between Irecv and Wait therefore hides the message
// latency, exactly the overlap the IMe literature exploits.
func (p *Proc) Irecv(c *Comm, src, tag int) (*Request, error) {
	if tag < 0 {
		return nil, fmt.Errorf("mpi: rank %d: user tag %d must be non-negative", p.rank, tag)
	}
	if _, err := c.worldRank(src); err != nil {
		return nil, err
	}
	return &Request{p: p, c: c, peer: src, tag: tag, isRecv: true}, nil
}

// Wait completes the request. For receives it returns the payload; for
// sends it returns nil. Waiting twice is an error.
func (r *Request) Wait() ([]float64, error) {
	if r == nil || r.p == nil {
		return nil, fmt.Errorf("mpi: wait on invalid request")
	}
	if r.done {
		return nil, fmt.Errorf("mpi: rank %d: request already completed", r.p.rank)
	}
	r.done = true
	if !r.isRecv {
		return nil, nil
	}
	data, err := r.p.recv(r.c, r.peer, r.tag)
	if err != nil {
		return nil, err
	}
	r.received = data
	return data, nil
}

// Done reports whether the request has been completed by Wait.
func (r *Request) Done() bool { return r != nil && r.done }

// WaitAll completes every request in order, returning the first error.
func WaitAll(reqs []*Request) error {
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Sendrecv performs a paired exchange with a partner rank (MPI_Sendrecv):
// both sides send and receive with the same tag, without deadlock
// regardless of call order thanks to buffered sends. Returns the partner's
// payload.
func (p *Proc) Sendrecv(c *Comm, partner, tag int, data []float64) ([]float64, error) {
	if tag < 0 {
		return nil, fmt.Errorf("mpi: rank %d: user tag %d must be non-negative", p.rank, tag)
	}
	if err := p.send(c, partner, tag, data); err != nil {
		return nil, err
	}
	return p.recv(c, partner, tag)
}
