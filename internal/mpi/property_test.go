package mpi

import (
	"fmt"
	"testing"
	"testing/quick"
)

// Property tests over the runtime's core invariants.

// TestCollectiveSequenceProperty runs a random sequence of collectives on
// a random-size world and checks every result against a local golden
// computation plus clock monotonicity.
func TestCollectiveSequenceProperty(t *testing.T) {
	f := func(seedRaw uint32) bool {
		seed := uint64(seedRaw)
		next := func() uint64 {
			seed = seed*6364136223846793005 + 1442695040888963407
			return seed >> 33
		}
		size := int(next()%6) + 2
		nOps := int(next()%8) + 2
		type op struct {
			kind int
			root int
			val  float64
		}
		ops := make([]op, nOps)
		for i := range ops {
			ops[i] = op{
				kind: int(next() % 4),
				root: int(next()) % size,
				val:  float64(next()%1000) / 10,
			}
		}
		w, err := NewWorld(size, Options{})
		if err != nil {
			return false
		}
		err = w.Run(func(p *Proc) error {
			prevClock := p.Clock()
			for i, o := range ops {
				switch o.kind {
				case 0: // bcast from root
					var in []float64
					me, _ := p.World().Rank(p)
					if me == o.root {
						in = []float64{o.val}
					}
					got, err := p.Bcast(p.World(), o.root, in)
					if err != nil {
						return err
					}
					if got[0] != o.val {
						return fmt.Errorf("op %d: bcast %v, want %v", i, got, o.val)
					}
				case 1: // allreduce sum of ranks
					got, err := p.AllreduceSum(p.World(), []float64{float64(p.Rank())})
					if err != nil {
						return err
					}
					if got[0] != float64(size*(size-1)/2) {
						return fmt.Errorf("op %d: sum %v", i, got)
					}
				case 2: // barrier
					if err := p.Barrier(p.World()); err != nil {
						return err
					}
				case 3: // allgather of own rank
					all, err := p.Allgather(p.World(), []float64{float64(p.Rank())})
					if err != nil {
						return err
					}
					for r := 0; r < size; r++ {
						if all[r][0] != float64(r) {
							return fmt.Errorf("op %d: allgather %v", i, all)
						}
					}
				}
				if p.Clock() < prevClock {
					return fmt.Errorf("op %d: clock went backwards", i)
				}
				prevClock = p.Clock()
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTrafficConservationProperty checks that the world's counted volume
// equals the sum of payload elements over all sends, for random rings.
func TestTrafficConservationProperty(t *testing.T) {
	f := func(sizeRaw, lenRaw uint8) bool {
		size := int(sizeRaw%6) + 2
		payload := int(lenRaw%50) + 1
		w, err := NewWorld(size, Options{})
		if err != nil {
			return false
		}
		err = w.Run(func(p *Proc) error {
			// Ring: send to the next rank, receive from the previous.
			c := p.World()
			next := (p.Rank() + 1) % size
			prev := (p.Rank() - 1 + size) % size
			if err := p.Send(c, next, 1, make([]float64, payload)); err != nil {
				return err
			}
			_, err := p.Recv(c, prev, 1)
			return err
		})
		if err != nil {
			return false
		}
		msgs, vol := w.Traffic()
		return msgs == int64(size) && vol == int64(size*payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestBarrierClockAgreementProperty: after a barrier, every member's clock
// is identical regardless of prior skew.
func TestBarrierClockAgreementProperty(t *testing.T) {
	f := func(sizeRaw uint8, skewRaw uint16) bool {
		size := int(sizeRaw%7) + 2
		w, err := NewWorld(size, Options{})
		if err != nil {
			return false
		}
		clocks := make([]float64, size)
		err = w.Run(func(p *Proc) error {
			p.Compute(float64((p.Rank()*int(skewRaw))%97)/1000, 0)
			if err := p.Barrier(p.World()); err != nil {
				return err
			}
			clocks[p.Rank()] = p.Clock()
			return nil
		})
		if err != nil {
			return false
		}
		for r := 1; r < size; r++ {
			if clocks[r] != clocks[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
