package mpi

import "fmt"

// Collective opcodes, encoded into reserved negative tags so collective
// traffic can never collide with user point-to-point tags.
const (
	opBcast = iota + 1
	opGather
	opAllgather
	opAllreduce
	opSplit
	opScatter
	opReduce
	opAlltoall
)

// ctag builds the reserved tag of one stage of one collective call.
func ctag(seq, op, stage int) int { return -((seq<<8 | op<<4 | stage) + 1) }

// countCollective bumps the per-type collective counter when metrics are
// enabled. One predictable branch when they are not.
func (p *Proc) countCollective(op int) {
	if m := p.w.metrics; m != nil {
		m.collectives[op].Inc()
	}
}

// Bcast broadcasts data from comm rank root over a binomial tree
// (MPI_Bcast). Root passes the payload; everyone receives a privately
// owned copy of it as the return value (including root). Exactly Size-1
// messages of len(data) elements are counted, matching the per-broadcast
// message accounting of the paper's M_IMeP formula.
//
// The returned buffer may come from the shared pool; callers that are
// done with it can hand it back with Proc.Recycle.
func (p *Proc) Bcast(c *Comm, root int, data []float64) ([]float64, error) {
	me, err := c.Rank(p)
	if err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("mpi: bcast root %d out of range [0,%d)", root, c.Size())
	}
	seq := p.nextSeq(c)
	p.countCollective(opBcast)
	start := p.clock
	out, err := p.bcast(c, root, me, ctag(seq, opBcast, 0), data)
	p.recordCollective("bcast", start, len(out))
	return out, err
}

// bcast is the tag-explicit binomial broadcast used by Bcast and by the
// composite collectives.
func (p *Proc) bcast(c *Comm, root, me, tag int, data []float64) ([]float64, error) {
	size := c.Size()
	rel := (me - root + size) % size
	// Receive phase: a non-root rank receives exactly once, from the
	// member that differs in rel's lowest set bit; the root falls through
	// with mask at the first power of two covering the communicator.
	received := false
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := (rel - mask + root) % size
			got, err := p.recv(c, src, tag)
			if err != nil {
				return nil, err
			}
			data = got
			received = true
			break
		}
		mask <<= 1
	}
	// Send phase: forward to the subtrees below the bit we received on.
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < size {
			dst := (rel + mask + root) % size
			if err := p.send(c, dst, tag, data); err != nil {
				return nil, err
			}
		}
	}
	if received {
		// The received payload is already a privately owned buffer (the
		// sender copied it); return it without another copy.
		return data, nil
	}
	// Root: return a pooled private copy so the caller's slice and the
	// result never alias.
	out := GetBuf(len(data))
	copy(out, data)
	return out, nil
}

// Gather collects each member's payload at comm rank root (MPI_Gatherv
// flavour: contributions may differ in length). The result, indexed by
// comm rank, is returned at root; other ranks get nil.
func (p *Proc) Gather(c *Comm, root int, data []float64) ([][]float64, error) {
	me, err := c.Rank(p)
	if err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("mpi: gather root %d out of range [0,%d)", root, c.Size())
	}
	seq := p.nextSeq(c)
	p.countCollective(opGather)
	start := p.clock
	out, err := p.gather(c, root, me, ctag(seq, opGather, 0), data)
	p.recordCollective("gather", start, len(data))
	return out, err
}

func (p *Proc) gather(c *Comm, root, me, tag int, data []float64) ([][]float64, error) {
	if me != root {
		return nil, p.send(c, root, tag, data)
	}
	out := make([][]float64, c.Size())
	own := GetBuf(len(data))
	copy(own, data)
	out[me] = own
	for src := 0; src < c.Size(); src++ {
		if src == root {
			continue
		}
		got, err := p.recv(c, src, tag)
		if err != nil {
			return nil, err
		}
		out[src] = got
	}
	return out, nil
}

// Allgather gathers equal-length contributions from every member and
// delivers the full, comm-rank-indexed set to all of them, using Bruck's
// algorithm: ceil(log2 n) rounds in which every rank forwards the doubling
// prefix of blocks it has collected so far. Compared to the gather+bcast
// composition it replaces, no rank is a serial hot spot (the old root
// received n−1 messages back to back) and the total volume drops from
// (n−1)(n+1)·len(data) to n(n−1)·len(data); every rank sends exactly
// TreeDepth(n) messages.
func (p *Proc) Allgather(c *Comm, data []float64) ([][]float64, error) {
	if _, err := c.Rank(p); err != nil {
		return nil, err
	}
	seq := p.nextSeq(c)
	p.countCollective(opAllgather)
	start := p.clock
	out, err := p.allgatherBruck(c, seq, data)
	p.recordCollective("allgather", start, len(data)*c.Size())
	return out, err
}

// allgatherBruck runs the Bruck all-gather. After round k, block i of tmp
// holds the contribution of comm rank (me+i) mod n for i < 2^(k+1); the
// final rotation restores comm-rank indexing.
func (p *Proc) allgatherBruck(c *Comm, seq int, data []float64) ([][]float64, error) {
	me, err := c.Rank(p)
	if err != nil {
		return nil, err
	}
	size := c.Size()
	per := len(data)
	tmp := GetBuf(size * per)
	copy(tmp[:per], data)
	for k, step := 0, 1; step < size; k, step = k+1, step<<1 {
		cnt := step
		if size-step < cnt {
			cnt = size - step
		}
		tag := ctag(seq, opAllgather, k)
		if err := p.send(c, (me-step+size)%size, tag, tmp[:cnt*per]); err != nil {
			return nil, err
		}
		got, err := p.recv(c, (me+step)%size, tag)
		if err != nil {
			return nil, err
		}
		if len(got) != cnt*per {
			return nil, fmt.Errorf("mpi: allgather length mismatch: received %d elements in round %d, want %d (contributions must be equal length)",
				len(got), k, cnt*per)
		}
		copy(tmp[step*per:], got)
		PutBuf(got)
	}
	out := make([][]float64, size)
	for i := 0; i < size; i++ {
		out[(me+i)%size] = tmp[i*per : (i+1)*per]
	}
	return out, nil
}

func (p *Proc) allgather(c *Comm, seq int, data []float64) ([][]float64, error) {
	me, err := c.Rank(p)
	if err != nil {
		return nil, err
	}
	per := len(data)
	parts, err := p.gather(c, 0, me, ctag(seq, opAllgather, 0), data)
	if err != nil {
		return nil, err
	}
	var flat []float64
	if me == 0 {
		flat = make([]float64, 0, per*c.Size())
		for r, part := range parts {
			if len(part) != per {
				return nil, fmt.Errorf("mpi: allgather length mismatch: rank %d sent %d, want %d", r, len(part), per)
			}
			flat = append(flat, part...)
		}
	}
	flat, err = p.bcast(c, 0, me, ctag(seq, opAllgather, 1), flat)
	if err != nil {
		return nil, err
	}
	if len(flat) != per*c.Size() {
		return nil, fmt.Errorf("mpi: allgather received %d elements, want %d", len(flat), per*c.Size())
	}
	out := make([][]float64, c.Size())
	for r := range out {
		out[r] = flat[r*per : (r+1)*per]
	}
	return out, nil
}

// AllreduceSum element-wise sums equal-length vectors across the
// communicator and returns the total to every member.
func (p *Proc) AllreduceSum(c *Comm, data []float64) ([]float64, error) {
	return p.allreduce(c, data, func(acc, in []float64) error {
		if len(in) != len(acc) {
			return fmt.Errorf("mpi: allreduce length mismatch: %d vs %d", len(in), len(acc))
		}
		for i, v := range in {
			acc[i] += v
		}
		return nil
	})
}

// AllreduceMaxLoc implements MPI_MAXLOC over (value, index) pairs: every
// member receives the maximum value and the lowest index attaining it —
// the reduction ScaLAPACK's partial pivoting performs per column.
func (p *Proc) AllreduceMaxLoc(c *Comm, value float64, index int) (float64, int, error) {
	out, err := p.allreduce(c, []float64{value, float64(index)}, func(acc, in []float64) error {
		if in[0] > acc[0] || (in[0] == acc[0] && in[1] < acc[1]) {
			acc[0], acc[1] = in[0], in[1]
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return out[0], int(out[1]), nil
}

// Scatter distributes chunks[i] from comm rank root to comm rank i
// (MPI_Scatterv flavour: chunks may differ in length). Non-root ranks pass
// nil chunks; every rank receives its own chunk (root's by local copy).
func (p *Proc) Scatter(c *Comm, root int, chunks [][]float64) ([]float64, error) {
	me, err := c.Rank(p)
	if err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("mpi: scatter root %d out of range [0,%d)", root, c.Size())
	}
	seq := p.nextSeq(c)
	p.countCollective(opScatter)
	start := p.clock
	defer func() { p.recordCollective("scatter", start, 0) }()
	tag := ctag(seq, opScatter, 0)
	if me == root {
		if len(chunks) != c.Size() {
			return nil, fmt.Errorf("mpi: scatter got %d chunks for %d ranks", len(chunks), c.Size())
		}
		for dst := 0; dst < c.Size(); dst++ {
			if dst == root {
				continue
			}
			if err := p.send(c, dst, tag, chunks[dst]); err != nil {
				return nil, err
			}
		}
		own := GetBuf(len(chunks[root]))
		copy(own, chunks[root])
		return own, nil
	}
	return p.recv(c, root, tag)
}

// ReduceSum element-wise sums equal-length vectors at comm rank root via a
// binomial reduction tree (MPI_Reduce with MPI_SUM). Root receives the
// total; everyone else gets nil.
func (p *Proc) ReduceSum(c *Comm, root int, data []float64) ([]float64, error) {
	me, err := c.Rank(p)
	if err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("mpi: reduce root %d out of range [0,%d)", root, c.Size())
	}
	seq := p.nextSeq(c)
	p.countCollective(opReduce)
	start := p.clock
	defer func() { p.recordCollective("reduce", start, len(data)) }()
	tag := ctag(seq, opReduce, 0)
	size := c.Size()
	rel := (me - root + size) % size
	acc := make([]float64, len(data))
	copy(acc, data)
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			dst := (rel - mask + root) % size
			return nil, p.send(c, dst, tag, acc)
		}
		if rel+mask < size {
			src := (rel + mask + root) % size
			in, err := p.recv(c, src, tag)
			if err != nil {
				return nil, err
			}
			if len(in) != len(acc) {
				return nil, fmt.Errorf("mpi: reduce length mismatch: %d vs %d", len(in), len(acc))
			}
			for i, v := range in {
				acc[i] += v
			}
		}
	}
	return acc, nil
}

// AllreduceMax element-wise maximises equal-length vectors across the
// communicator.
func (p *Proc) AllreduceMax(c *Comm, data []float64) ([]float64, error) {
	return p.allreduce(c, data, func(acc, in []float64) error {
		if len(in) != len(acc) {
			return fmt.Errorf("mpi: allreduce length mismatch: %d vs %d", len(in), len(acc))
		}
		for i, v := range in {
			if v > acc[i] {
				acc[i] = v
			}
		}
		return nil
	})
}

// AllreduceMin element-wise minimises equal-length vectors across the
// communicator.
func (p *Proc) AllreduceMin(c *Comm, data []float64) ([]float64, error) {
	return p.allreduce(c, data, func(acc, in []float64) error {
		if len(in) != len(acc) {
			return fmt.Errorf("mpi: allreduce length mismatch: %d vs %d", len(in), len(acc))
		}
		for i, v := range in {
			if v < acc[i] {
				acc[i] = v
			}
		}
		return nil
	})
}

// Alltoall delivers chunks[d] of this rank to comm rank d and returns the
// chunks addressed to this rank, indexed by sender (MPI_Alltoallv flavour:
// chunk lengths may vary). Implemented pairwise with buffered sends.
func (p *Proc) Alltoall(c *Comm, chunks [][]float64) ([][]float64, error) {
	me, err := c.Rank(p)
	if err != nil {
		return nil, err
	}
	if len(chunks) != c.Size() {
		return nil, fmt.Errorf("mpi: alltoall got %d chunks for %d ranks", len(chunks), c.Size())
	}
	seq := p.nextSeq(c)
	p.countCollective(opAlltoall)
	start := p.clock
	defer func() { p.recordCollective("alltoall", start, 0) }()
	tag := ctag(seq, opAlltoall, 0)
	size := c.Size()
	out := make([][]float64, size)
	own := make([]float64, len(chunks[me]))
	copy(own, chunks[me])
	out[me] = own
	// Send everything eagerly, then drain: buffered channels prevent
	// deadlock and the pairwise order keeps streams matched.
	for d := 0; d < size; d++ {
		if d == me {
			continue
		}
		if err := p.send(c, d, tag, chunks[d]); err != nil {
			return nil, err
		}
	}
	for s := 0; s < size; s++ {
		if s == me {
			continue
		}
		got, err := p.recv(c, s, tag)
		if err != nil {
			return nil, err
		}
		out[s] = got
	}
	return out, nil
}

// allreduce runs a binomial reduction to comm rank 0 with the given
// combiner, then broadcasts the result.
func (p *Proc) allreduce(c *Comm, data []float64, combine func(acc, in []float64) error) ([]float64, error) {
	me, err := c.Rank(p)
	if err != nil {
		return nil, err
	}
	seq := p.nextSeq(c)
	p.countCollective(opAllreduce)
	start := p.clock
	defer func() { p.recordCollective("allreduce", start, len(data)) }()
	size := c.Size()
	acc := make([]float64, len(data))
	copy(acc, data)
	for mask := 1; mask < size; mask <<= 1 {
		if me&mask != 0 {
			if err := p.send(c, me-mask, ctag(seq, opAllreduce, 0), acc); err != nil {
				return nil, err
			}
			break
		}
		if me+mask < size {
			in, err := p.recv(c, me+mask, ctag(seq, opAllreduce, 0))
			if err != nil {
				return nil, err
			}
			if err := combine(acc, in); err != nil {
				return nil, err
			}
		}
	}
	return p.bcast(c, 0, me, ctag(seq, opAllreduce, 1), acc)
}
