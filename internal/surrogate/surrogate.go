// Package surrogate is the advisor's learned fast path: an interpolating
// predictor that answers "how long, how many joules" in O(µs) instead of
// replaying a solver schedule level by level (the O(n) loops of
// internal/perfmodel) or running a simulated-MPI world. EfiMon (PAPERS.md)
// makes the case for predicting granular power from cheap observable
// features rather than measuring; this package is that idea applied to the
// serving stack, so a cache miss on /v1/recommend no longer costs a model
// replay.
//
// Shape of the model, and why:
//
//   - Algorithm, placement class, communication overlap and rank count are
//     categorical features: rank counts are discrete machine configurations
//     (placement-divisible node multiples), not a continuum, and the exact
//     model's dependence on them is non-smooth (process-grid factorisation,
//     tree depths). One model per (algorithm, placement, overlap, ranks)
//     tuple sidesteps all of that.
//   - Matrix order n is the continuous axis. Per tuple the predictor stores
//     natural cubic splines in x = ln n over log-spaced knots (the paper's
//     §5.1 orders are always knots), fitted to internal/perfmodel runs via
//     internal/grid. Interpolation — not regression — means on-knot queries
//     reproduce the exact model to float rounding, which is what keeps the
//     advisor's recommended solver byte-identical across the paper grid.
//   - Targets are the schedule-replay seconds (compute, exposed
//     communication) in log space, each first divided by an O(1) work-shape
//     feature (feature.go) that carries the target's non-smooth part: IMe's
//     compute jumps by 1/rows at every multiple of ranks (rows-per-rank
//     staircase) and its exposed comm shifts a hinge crossing there, while
//     the residual ratios are smooth. Energy is NOT a learned target:
//     predicted times feed perfmodel.ResultFromTimes, so surrogate energies
//     inherit the exact power calibration and carry only the time error.
//
// The error envelope is pinned twice in tests: max relative error of
// duration and total energy against internal/perfmodel over on- and
// off-knot validation points (surrogate_test.go), and agreement with the
// executable simulated-MPI engine within the same band the analytic model
// itself is held to (crosscheck). Queries outside the envelope — unknown
// rank count, n outside the knot range, non-default cost/calibration/block
// size, power caps, single-node shapes — are simply not predicted; the
// caller falls back to the exact path.
package surrogate

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/scalapack"
)

// Version is the coefficient-table schema version this package reads.
// Bump it together with any change to the table layout or the feature
// definitions; Load rejects mismatched tables so a stale committed table
// can never silently serve wrong predictions.
const Version = "surrogate-v1"

//go:embed testdata/coeffs.json
var embeddedTable []byte

// Table is the serialized form of a trained predictor, committed to
// testdata/coeffs.json and regenerated with:
//
//	go test ./internal/surrogate -run TestTrain -update-surrogate
type Table struct {
	Version string `json:"version"`
	// Spec names the machine the models were trained for.
	Spec string `json:"spec"`
	// MaxRelErrDuration / MaxRelErrEnergy are the worst relative errors
	// observed against perfmodel over the training-time validation sweep
	// (off-knot log-uniform points plus rows-per-rank staircase edges).
	// They are recorded for provenance; the pinned envelope lives in
	// surrogate_test.go and must hold with headroom over these.
	MaxRelErrDuration float64      `json:"max_rel_err_duration"`
	MaxRelErrEnergy   float64      `json:"max_rel_err_energy"`
	Models            []TableModel `json:"models"`
}

// TableModel is one (algorithm, placement, overlap, ranks) tuple's knots.
type TableModel struct {
	Algorithm string `json:"algorithm"`
	Placement string `json:"placement"`
	Overlap   bool   `json:"overlap"`
	Ranks     int    `json:"ranks"`
	// Ns are the knot matrix orders (ascending). LnCompute holds
	// ln(computeS / feature(n)) and LnComm ln(exposedCommS /
	// commFeature(n)) at each knot, where the features are the
	// algorithm's O(1) work-shape divisors (see feature.go).
	Ns        []int     `json:"ns"`
	LnCompute []float64 `json:"ln_compute"`
	LnComm    []float64 `json:"ln_comm"`
}

// modelKey addresses one trained tuple.
type modelKey struct {
	alg     perfmodel.Algorithm
	pl      cluster.Placement
	overlap bool
	ranks   int
}

// model is one loaded tuple: splines over x = ln n.
type model struct {
	nLo, nHi int
	compute  spline
	comm     spline
}

// Predictor answers eligible queries from the trained table. Construct
// with Load or Default; safe for concurrent use (read-only after load).
type Predictor struct {
	version string
	models  map[modelKey]*model
}

// Load parses and validates a serialized table.
func Load(data []byte) (*Predictor, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("surrogate: parse table: %w", err)
	}
	if t.Version != Version {
		return nil, fmt.Errorf("surrogate: table version %q, want %q (regenerate with -update-surrogate)", t.Version, Version)
	}
	p := &Predictor{version: t.Version, models: make(map[modelKey]*model, len(t.Models))}
	for i, tm := range t.Models {
		alg, err := perfmodel.ParseAlgorithm(tm.Algorithm)
		if err != nil {
			return nil, fmt.Errorf("surrogate: model %d: %w", i, err)
		}
		pl, err := cluster.ParsePlacement(tm.Placement)
		if err != nil {
			return nil, fmt.Errorf("surrogate: model %d: %w", i, err)
		}
		k := len(tm.Ns)
		if k < 2 || len(tm.LnCompute) != k || len(tm.LnComm) != k {
			return nil, fmt.Errorf("surrogate: model %d (%s/%s/r%d): %d knots, %d/%d targets",
				i, tm.Algorithm, tm.Placement, tm.Ranks, k, len(tm.LnCompute), len(tm.LnComm))
		}
		xs := make([]float64, k)
		for j, n := range tm.Ns {
			if n <= 0 || (j > 0 && n <= tm.Ns[j-1]) {
				return nil, fmt.Errorf("surrogate: model %d: knot orders not strictly increasing at %d", i, j)
			}
			xs[j] = math.Log(float64(n))
		}
		key := modelKey{alg: alg, pl: pl, overlap: tm.Overlap, ranks: tm.Ranks}
		if _, dup := p.models[key]; dup {
			return nil, fmt.Errorf("surrogate: duplicate model %s/%s/overlap=%t/r%d", tm.Algorithm, tm.Placement, tm.Overlap, tm.Ranks)
		}
		p.models[key] = &model{
			nLo:     tm.Ns[0],
			nHi:     tm.Ns[k-1],
			compute: newSpline(xs, tm.LnCompute),
			comm:    newSpline(xs, tm.LnComm),
		}
	}
	if len(p.models) == 0 {
		return nil, fmt.Errorf("surrogate: table has no models")
	}
	return p, nil
}

var (
	defaultOnce sync.Once
	defaultPred *Predictor
	defaultErr  error
)

// Default returns the predictor loaded from the embedded committed table.
// The table is validated once; every caller shares the same instance.
func Default() (*Predictor, error) {
	defaultOnce.Do(func() { defaultPred, defaultErr = Load(embeddedTable) })
	return defaultPred, defaultErr
}

// Version returns the loaded table's schema version.
func (p *Predictor) Version() string { return p.version }

// Models returns the number of trained (algorithm, placement, overlap,
// ranks) tuples.
func (p *Predictor) Models() int { return len(p.models) }

// eligibleParams reports whether prm matches the trained defaults: the
// default cost model and calibration, the default block size, no power
// cap and no machine-variability jitter. Overlap both ways is trained.
func eligibleParams(prm perfmodel.Params) bool {
	norm := prm.Normalized()
	return norm.Cost == mpi.DefaultCostModel() &&
		norm.Calibration == power.Skylake8160() &&
		norm.BlockSize == scalapack.DefaultBlockSize &&
		norm.PowerCapW == 0 &&
		norm.NodeVariability == 0
}

// Predict returns the surrogate's Result for the query, or ok=false when
// the query is outside the envelope (the caller must then take the exact
// path). A true return is a full perfmodel-shaped Result: interpolated
// schedule seconds pushed through the exact power integration.
func (p *Predictor) Predict(alg perfmodel.Algorithm, n int, cfg cluster.Config, prm perfmodel.Params) (perfmodel.Result, bool) {
	if p == nil || n <= 0 || cfg.Ranks <= 0 || cfg.Nodes < 2 {
		return perfmodel.Result{}, false
	}
	if cfg.Spec == nil || *cfg.Spec != *cluster.MarconiA3() {
		return perfmodel.Result{}, false
	}
	if !eligibleParams(prm) {
		return perfmodel.Result{}, false
	}
	norm := prm.Normalized()
	m := p.models[modelKey{alg: alg, pl: cfg.Placement, overlap: norm.Overlap, ranks: cfg.Ranks}]
	if m == nil || n < m.nLo || n > m.nHi {
		return perfmodel.Result{}, false
	}
	x := math.Log(float64(n))
	computeS := math.Exp(m.compute.eval(x)) * feature(alg, n, cfg.Ranks)
	commS := math.Exp(m.comm.eval(x)) * commFeature(alg, n, cfg.Ranks, norm.Overlap)
	return perfmodel.ResultFromTimes(alg, n, cfg, norm, computeS, commS), true
}
