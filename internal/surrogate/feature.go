package surrogate

import (
	"math"

	"repro/internal/ime"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
)

// Work-shape features. A feature is an O(1) function of the request that
// carries the non-smooth part of a training target, so the spline only has
// to interpolate what is actually smooth in ln n. The compute feature
// divides out IMe's rows-per-rank staircase; the communication feature goes
// further and reduces IMe's whole exposed-comm schedule to closed form —
// every per-level term is linear in the level index, so the n-iteration
// replay collapses to arithmetic series plus one hinge crossing. The spline
// over ln(exposedComm/feature) then fits a ratio that is 1 up to float
// rounding, which is what removes the staircase kinks (the hinge crossing
// shifts at every multiple of ranks) that a smooth interpolant cannot
// track. ScaLAPACK's exposed comm is dominated by per-panel trailing sums
// that are smooth in n, so its feature stays 1 and the spline does the
// work.

// rowsPerRank is the IMe work-shape feature: the widest block of the
// block row distribution, ceil(n/ranks). It is the exact staircase factor
// of the model's per-level update cost, known in O(1) from the request.
func rowsPerRank(n, ranks int) float64 {
	return float64((n + ranks - 1) / ranks)
}

// feature returns the algorithm's compute divisor.
func feature(alg perfmodel.Algorithm, n, ranks int) float64 {
	if alg == perfmodel.IMe {
		return rowsPerRank(n, ranks)
	}
	return 1
}

// commFeature returns the algorithm's exposed-communication divisor.
func commFeature(alg perfmodel.Algorithm, n, ranks int, overlap bool) float64 {
	if alg == perfmodel.IMe {
		return imeExposedComm(n, ranks, overlap)
	}
	return 1
}

// imeExposedComm reproduces perfmodel's IMe exposed-communication replay in
// closed form. The serving envelope pins everything that would otherwise be
// a parameter: multi-node placement (inter-node wire), the default cost
// model, no power cap (capStretch = 1). Per level l = n…1 the model charges
// a pivot broadcast linear in l against an update linear in l, so the sum
// is two arithmetic series — with Overlap, truncated at the hinge level
// where the pipelined broadcast first hides behind the update.
func imeExposedComm(n, ranks int, overlap bool) float64 {
	cost := mpi.DefaultCostModel()
	d := float64(mpi.TreeDepth(ranks))
	perHop := cost.SendOverhead + cost.RecvOverhead
	wire0 := cost.LatencyInter
	bw := cost.BandwidthInter
	nf := float64(n)
	maxRows := rowsPerRank(n, ranks)

	if overlap {
		// Pipelined broadcast: d·(perHop+wire0) + bytes/bw.
		a := d * (perHop + wire0)
		b := mpi.Float64Bytes / bw
		// Init (h + initial column) and final solution broadcasts.
		total := 3 * (a + nf*mpi.Float64Bytes/bw)
		// Exposed pivot broadcast at level l: max(0, c + s·l) with
		// c = a + b (the l+1 payload's constant part) and slope
		// s = b − α, α the per-level update seconds 3·maxRows/rate.
		c := a + b
		s := b - 3*maxRows/ime.EffFlopsPerCore
		if s >= 0 {
			return total + nf*c + s*nf*(nf+1)/2
		}
		// Largest level still exposed: c + s·l > 0 ⇔ l < c/(−s).
		l := math.Floor(c / -s)
		if c+s*l <= 0 {
			l--
		}
		if l > nf {
			l = nf
		}
		if l > 0 {
			total += l*c + s*l*(l+1)/2
		}
		return total
	}

	// Store-and-forward broadcast: d·(perHop + wire0 + bytes/bw).
	hop := perHop + wire0
	// Init and final broadcasts of n floats.
	total := 3 * d * (hop + nf*mpi.Float64Bytes/bw)
	// Per level: h broadcast and flat gather are l-independent…
	hB := d * (hop + nf*mpi.Float64Bytes/bw)
	g := float64(ranks-1)*perHop + wire0 + (nf-maxRows)*mpi.Float64Bytes/bw
	total += nf * (hB + g)
	// …and the pivot broadcast of l+1 floats sums over Σ(l+1) = n(n+3)/2.
	total += d*nf*hop + d*mpi.Float64Bytes/bw*nf*(nf+3)/2
	return total
}
