package surrogate

import "sort"

// spline is a natural cubic spline through strictly increasing knots: the
// interpolant passes through every training point exactly (the property
// that keeps the surrogate byte-faithful to the model's ranking on the
// paper grid) and is C² between them, so off-grid queries ride a smooth
// local cubic instead of a global polynomial's oscillations.
type spline struct {
	xs, ys []float64
	m      []float64 // second derivatives at the knots (natural: m[0]=m[k-1]=0)
}

// newSpline fits a natural cubic spline. xs must be strictly increasing
// with len(xs) == len(ys) >= 2 (validated by the table loader).
func newSpline(xs, ys []float64) spline {
	k := len(xs)
	m := make([]float64, k)
	if k < 3 {
		return spline{xs: xs, ys: ys, m: m} // degenerates to the chord
	}
	// Thomas algorithm on the tridiagonal natural-spline system.
	c := make([]float64, k) // scratch: modified super-diagonal
	d := make([]float64, k) // scratch: modified RHS
	for i := 1; i < k-1; i++ {
		h0, h1 := xs[i]-xs[i-1], xs[i+1]-xs[i]
		rhs := 6 * ((ys[i+1]-ys[i])/h1 - (ys[i]-ys[i-1])/h0)
		diag := 2 * (h0 + h1)
		if i > 1 {
			diag -= h0 * c[i-1]
			rhs -= h0 * d[i-1]
		}
		c[i] = h1 / diag
		d[i] = rhs / diag
	}
	for i := k - 2; i >= 1; i-- {
		m[i] = d[i] - c[i]*m[i+1]
	}
	return spline{xs: xs, ys: ys, m: m}
}

// eval interpolates at x, which the caller keeps inside [xs[0], xs[k-1]]
// (the envelope check guarantees it; clamping here is belt and braces).
func (s spline) eval(x float64) float64 {
	k := len(s.xs)
	if x <= s.xs[0] {
		x = s.xs[0]
	} else if x >= s.xs[k-1] {
		x = s.xs[k-1]
	}
	// First knot > x bounds the owning interval.
	j := sort.SearchFloat64s(s.xs, x)
	if j > 0 && (j == k || s.xs[j] != x) {
		j--
	}
	if j >= k-1 {
		j = k - 2
	}
	h := s.xs[j+1] - s.xs[j]
	a := (s.xs[j+1] - x) / h
	b := (x - s.xs[j]) / h
	return a*s.ys[j] + b*s.ys[j+1] +
		((a*a*a-a)*s.m[j]+(b*b*b-b)*s.m[j+1])*h*h/6
}
