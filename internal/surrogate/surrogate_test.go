package surrogate

// Pinning of the learned fast path. Three properties matter, in order:
//
//  1. The error envelope: worst-case relative duration/energy error
//     against internal/perfmodel over off-knot validation points stays
//     under pinned bounds (envelopeDuration/envelopeEnergy). The serving
//     layer relies on this — an in-envelope query is answered by the
//     surrogate with no exact-path verification.
//  2. Paper-grid faithfulness: the §5.1 orders are spline knots, so the
//     surrogate reproduces the exact model there to float rounding and
//     the advisor's recommended solver never changes on the grid.
//  3. Honest fallback: anything the table was not trained for is
//     refused, not extrapolated.
//
// Regenerate the committed table with:
//
//	go test ./internal/surrogate -run TestTrainedTable -update-surrogate
//
// against a known-good perfmodel, never together with a model change.

import (
	"flag"
	"math"
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/ime"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/rapl"
)

var updateSurrogate = flag.Bool("update-surrogate", false, "retrain testdata/coeffs.json from the current perfmodel")

// The pinned error envelope: the serving layer's out-of-envelope rule is
// domain-based (Predict refuses), so every in-envelope answer must obey
// these bounds. The committed table's recorded worst case (full
// validation sweep at training time) stays well under them; the test
// re-measures a deterministic subset independently.
const (
	envelopeDuration = 0.02
	envelopeEnergy   = 0.02
)

const tablePath = "testdata/coeffs.json"

func loadDefault(t *testing.T) *Predictor {
	t.Helper()
	p, err := Default()
	if err != nil {
		t.Fatalf("load embedded table (regenerate with -update-surrogate): %v", err)
	}
	return p
}

// TestTrainedTable regenerates the table under -update-surrogate;
// otherwise it validates the committed table's recorded envelope and
// re-measures a validation subset against the live perfmodel.
func TestTrainedTable(t *testing.T) {
	r := grid.New(0)
	if *updateSurrogate {
		table, err := Train(r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MarshalTable(table)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tablePath, b, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("trained %d models; full-sweep max rel err: duration %.3e, energy %.3e",
			len(table.Models), table.MaxRelErrDuration, table.MaxRelErrEnergy)
		if table.MaxRelErrDuration > envelopeDuration || table.MaxRelErrEnergy > envelopeEnergy {
			t.Fatalf("trained table exceeds the pinned envelope (%g/%g): raise knot density or tighten the domain",
				envelopeDuration, envelopeEnergy)
		}
		return
	}

	p := loadDefault(t)
	if p.Models() == 0 {
		t.Fatal("table has no models")
	}
	// Re-measure a deterministic subset (every 7th model) independently
	// of the numbers recorded in the table.
	maxDur, maxEnergy, err := Validate(p, r, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("validation subset max rel err: duration %.3e, energy %.3e", maxDur, maxEnergy)
	if maxDur > envelopeDuration {
		t.Errorf("duration error %.3e exceeds pinned envelope %g", maxDur, envelopeDuration)
	}
	if maxEnergy > envelopeEnergy {
		t.Errorf("energy error %.3e exceeds pinned envelope %g", maxEnergy, envelopeEnergy)
	}
}

// TestPaperGridInterpolatesExactly pins property 2: every §5.1 grid cell
// is a knot, so the surrogate agrees with perfmodel to float rounding —
// not merely within the envelope — at the shapes the paper (and the
// advisor goldens) are built on.
func TestPaperGridInterpolatesExactly(t *testing.T) {
	p := loadDefault(t)
	const tol = 1e-9
	for _, overlap := range []bool{true, false} {
		prm := perfmodel.Params{Overlap: overlap}
		for _, k := range core.SweepKeys() {
			cfg, err := cluster.NewConfig(k.Ranks, k.Placement, cluster.MarconiA3())
			if err != nil {
				t.Fatal(err)
			}
			got, ok := p.Predict(k.Algorithm, k.N, cfg, prm)
			if !ok {
				t.Fatalf("%v/%v/r%d/n%d overlap=%t: paper cell out of envelope", k.Algorithm, k.Placement, k.Ranks, k.N, overlap)
			}
			want, err := perfmodel.Run(k.Algorithm, k.N, cfg, prm)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(got.DurationS-want.DurationS) / want.DurationS; d > tol {
				t.Errorf("%v/%v/r%d/n%d overlap=%t: duration off by %.2e (knot should interpolate)",
					k.Algorithm, k.Placement, k.Ranks, k.N, overlap, d)
			}
			if d := math.Abs(got.TotalJ-want.TotalJ) / want.TotalJ; d > tol {
				t.Errorf("%v/%v/r%d/n%d overlap=%t: energy off by %.2e", k.Algorithm, k.Placement, k.Ranks, k.N, overlap, d)
			}
		}
	}
}

// TestAdvisorVerdictsUnchanged pins the acceptance criterion: ranking
// surrogate measurements through core.Rank recommends the same solver as
// the exact advisor for every paper-grid shape × placement × objective.
func TestAdvisorVerdictsUnchanged(t *testing.T) {
	p := loadDefault(t)
	prm := perfmodel.Params{Overlap: true}
	for _, n := range cluster.PaperMatrixDims() {
		for _, ranks := range cluster.PaperRankCounts() {
			for _, pl := range cluster.Placements() {
				cfg, err := cluster.NewConfig(ranks, pl, cluster.MarconiA3())
				if err != nil {
					t.Fatal(err)
				}
				meas := func(alg perfmodel.Algorithm) core.Measurement {
					res, ok := p.Predict(alg, n, cfg, prm)
					if !ok {
						t.Fatalf("%v/%v/r%d/n%d: out of envelope", alg, pl, ranks, n)
					}
					return core.Measurement{
						Experiment: core.Experiment{Algorithm: alg, N: n, Ranks: ranks, Placement: pl},
						Config:     cfg,
						DurationS:  res.DurationS,
						TotalJ:     res.TotalJ,
						EnergyJ:    res.EnergyJ,
						Engine:     "surrogate",
					}
				}
				imeM, geM := meas(perfmodel.IMe), meas(perfmodel.ScaLAPACK)
				for _, obj := range core.Objectives() {
					got, err := core.Rank(imeM, geM, obj)
					if err != nil {
						t.Fatal(err)
					}
					want, err := core.Recommend(n, ranks, pl, obj, prm)
					if err != nil {
						t.Fatal(err)
					}
					if got.Best != want.Best {
						t.Errorf("n=%d ranks=%d %v %v: surrogate recommends %v, exact %v",
							n, ranks, pl, obj, got.Best, want.Best)
					}
					if d := math.Abs(got.Margin - want.Margin); d > 1e-9 {
						t.Errorf("n=%d ranks=%d %v %v: margin drift %.2e", n, ranks, pl, obj, d)
					}
				}
			}
		}
	}
}

// TestFallbackOutOfEnvelope pins property 3: every untrained direction is
// refused rather than extrapolated.
func TestFallbackOutOfEnvelope(t *testing.T) {
	p := loadDefault(t)
	base, err := cluster.NewConfig(144, cluster.FullLoad, cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Predict(perfmodel.IMe, 8640, base, perfmodel.Params{Overlap: true}); !ok {
		t.Fatal("baseline paper cell should be in envelope")
	}
	singleNode, err := cluster.NewConfig(48, cluster.FullLoad, cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	offRanks, err := cluster.NewConfig(336, cluster.FullLoad, cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	broadwell, err := cluster.NewConfig(96, cluster.FullLoad, cluster.BroadwellEP())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		alg  perfmodel.Algorithm
		n    int
		cfg  cluster.Config
		prm  perfmodel.Params
	}{
		{"power cap", perfmodel.IMe, 8640, base, perfmodel.Params{Overlap: true, PowerCapW: 120}},
		{"non-default block size", perfmodel.ScaLAPACK, 8640, base, perfmodel.Params{Overlap: true, BlockSize: 32}},
		{"node variability", perfmodel.IMe, 8640, base, perfmodel.Params{Overlap: true, NodeVariability: 0.05}},
		{"n below range", perfmodel.IMe, 400, base, perfmodel.Params{Overlap: true}},
		{"n above range", perfmodel.IMe, nHiGlobal + 1, base, perfmodel.Params{Overlap: true}},
		{"single node", perfmodel.IMe, 8640, singleNode, perfmodel.Params{Overlap: true}},
		{"untrained rank count", perfmodel.IMe, 8640, offRanks, perfmodel.Params{Overlap: true}},
		{"different machine", perfmodel.IMe, 8640, broadwell, perfmodel.Params{Overlap: true}},
	}
	for _, tc := range cases {
		if _, ok := p.Predict(tc.alg, tc.n, tc.cfg, tc.prm); ok {
			t.Errorf("%s: predicted out-of-envelope query (must fall back to exact)", tc.name)
		}
	}
}

// TestSurrogateMatchesEngine holds the surrogate to the executable
// simulated-MPI engine at a multi-node shape inside the envelope — the
// same style of cross-validation perfmodel itself is held to (the engine
// is synchronous, so Overlap=false). The shape is two full-loaded nodes at
// twelve matrix rows per rank; the tolerances mirror the perfmodel
// 576-rank crosscheck band (×2.5), inside which the analytic
// broadcast-chain bound is documented conservative against the engine's
// pipelined trees.
func TestSurrogateMatchesEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("executable engine solve at n=1152 is seconds of real numerics")
	}
	p := loadDefault(t)
	const n, ranks = 1152, 96
	cfg, err := cluster.NewConfig(ranks, cluster.FullLoad, cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	res, ok := p.Predict(perfmodel.IMe, n, cfg, perfmodel.Params{Overlap: false})
	if !ok {
		t.Fatalf("n=%d r=%d out of envelope", n, ranks)
	}

	sys := mat.CachedSystem(n, int64(n))
	w, err := mpi.NewWorld(ranks, mpi.Options{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(proc *mpi.Proc) error {
		_, err := ime.SolveParallel(proc, proc.World(), sys, ime.ParallelOptions{ChargeCosts: true})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	checkRatio := func(name string, got, want, tol float64) {
		t.Helper()
		r := got / want
		if r < 1/tol || r > tol {
			t.Errorf("%s: surrogate %g vs engine %g (ratio %.2f, tolerance ×%.1f)", name, got, want, r, tol)
		}
	}
	checkRatio("duration", res.DurationS, w.MaxClock(), 2.5)
	var engineJ float64
	for _, node := range w.Nodes() {
		for _, d := range rapl.Domains() {
			engineJ += node.ExactEnergy(d)
		}
	}
	checkRatio("energy", res.TotalJ, engineJ, 2.5)
}

// BenchmarkPredict pins the fast path's reason to exist: a full surrogate
// answer (two spline evaluations + exact power integration) costs
// microseconds, against the O(n)-loop schedule replay it replaces.
func BenchmarkPredict(b *testing.B) {
	p, err := Default()
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := cluster.NewConfig(576, cluster.FullLoad, cluster.MarconiA3())
	if err != nil {
		b.Fatal(err)
	}
	prm := perfmodel.Params{Overlap: true}
	b.Run("surrogate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := p.Predict(perfmodel.ScaLAPACK, 17281, cfg, prm); !ok {
				b.Fatal("out of envelope")
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := perfmodel.Run(perfmodel.ScaLAPACK, 17281, cfg, prm); err != nil {
				b.Fatal(err)
			}
		}
	})
}
