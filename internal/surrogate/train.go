package surrogate

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/perfmodel"
)

// Training-grid geometry. The knot range per rank count starts at
// nLoFactor·ranks — below that the rows-per-rank staircase dominates the
// schedule and the paper never operates there (its tightest shape is
// n/ranks ≈ 6.7) — and tops out at twice the paper's largest order so the
// load generator's upward jitter stays in envelope.
const (
	nLoMin    = 480
	nLoFactor = 4
	nHiGlobal = 69120 // 2 × 34560
	knotCount = 32
)

// trainRanks enumerates the rank counts trained per placement: every
// placement-divisible multi-node count the serving grid plausibly sees,
// paper counts included.
func trainRanks(pl cluster.Placement) []int {
	switch pl {
	case cluster.FullLoad:
		// Multiples of 48 (ranks per node), 2..27 nodes.
		return []int{96, 144, 192, 240, 288, 384, 480, 576, 672, 768, 960, 1152, 1296}
	default:
		// Half-load placements: multiples of 24, 2..54 nodes.
		return []int{48, 72, 96, 120, 144, 192, 240, 288, 384, 480, 576, 720, 864, 1008, 1152, 1296}
	}
}

// knotOrders returns the ascending knot orders for one rank count:
// log-spaced across [max(nLoMin, nLoFactor·ranks), nHiGlobal] with the
// paper's §5.1 orders spliced in exactly, so the committed table
// interpolates — does not approximate — the grid the golden advisor
// verdicts are pinned on.
func knotOrders(ranks int) []int {
	lo := nLoMin
	if f := nLoFactor * ranks; f > lo {
		lo = f
	}
	hi := nHiGlobal
	set := make(map[int]bool, knotCount+4)
	llo, lhi := math.Log(float64(lo)), math.Log(float64(hi))
	for i := 0; i < knotCount; i++ {
		n := int(math.Round(math.Exp(llo + (lhi-llo)*float64(i)/float64(knotCount-1))))
		set[n] = true
	}
	for _, n := range cluster.PaperMatrixDims() {
		if n >= lo && n <= hi {
			set[n] = true
		}
	}
	out := make([]int, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Train fits the full table against internal/perfmodel, evaluating knot
// cells concurrently under the runner's budget, then validates it on
// off-knot points and records the observed worst-case envelope.
func Train(r *grid.Runner) (*Table, error) {
	type cell struct {
		mi, ki int // model index, knot index
	}
	var models []TableModel
	var cells []cell
	for _, pl := range cluster.Placements() {
		for _, ranks := range trainRanks(pl) {
			ns := knotOrders(ranks)
			for _, alg := range perfmodel.Algorithms() {
				for _, overlap := range []bool{true, false} {
					mi := len(models)
					models = append(models, TableModel{
						Algorithm: alg.String(),
						Placement: pl.String(),
						Overlap:   overlap,
						Ranks:     ranks,
						Ns:        ns,
						LnCompute: make([]float64, len(ns)),
						LnComm:    make([]float64, len(ns)),
					})
					for ki := range ns {
						cells = append(cells, cell{mi, ki})
					}
				}
			}
		}
	}

	type target struct{ lnCompute, lnComm float64 }
	targets, err := grid.Map(r, len(cells), func(i int) (target, error) {
		c := cells[i]
		tm := &models[c.mi]
		alg, _ := perfmodel.ParseAlgorithm(tm.Algorithm)
		pl, _ := cluster.ParsePlacement(tm.Placement)
		n := tm.Ns[c.ki]
		cfg, err := cluster.NewConfig(tm.Ranks, pl, cluster.MarconiA3())
		if err != nil {
			return target{}, err
		}
		res, err := perfmodel.Run(alg, n, cfg, perfmodel.Params{Overlap: tm.Overlap})
		if err != nil {
			return target{}, fmt.Errorf("train %s/%s/r%d/n%d: %w", tm.Algorithm, tm.Placement, tm.Ranks, n, err)
		}
		comp := res.ComputeS / feature(alg, n, tm.Ranks)
		comm := res.ExposedCommS / commFeature(alg, n, tm.Ranks, tm.Overlap)
		if comp <= 0 || comm <= 0 {
			return target{}, fmt.Errorf("train %s/%s/r%d/n%d: non-positive target (%g, %g)",
				tm.Algorithm, tm.Placement, tm.Ranks, n, comp, comm)
		}
		return target{lnCompute: math.Log(comp), lnComm: math.Log(comm)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		models[c.mi].LnCompute[c.ki] = targets[i].lnCompute
		models[c.mi].LnComm[c.ki] = targets[i].lnComm
	}

	t := &Table{Version: Version, Spec: cluster.MarconiA3().Name, Models: models}
	p, err := Load(mustMarshal(t))
	if err != nil {
		return nil, err
	}
	maxDur, maxEnergy, err := Validate(p, r, 1)
	if err != nil {
		return nil, err
	}
	t.MaxRelErrDuration = maxDur
	t.MaxRelErrEnergy = maxEnergy
	return t, nil
}

// MarshalTable renders the table in the canonical committed form.
func MarshalTable(t *Table) ([]byte, error) {
	b, err := json.MarshalIndent(t, "", " ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// mustMarshal round-trips the table through its wire form so Train
// validates exactly what will be committed.
func mustMarshal(t *Table) []byte {
	b, err := MarshalTable(t)
	if err != nil {
		panic(err)
	}
	return b
}

// ValidationPoint is one off-knot probe of the trained predictor.
type ValidationPoint struct {
	Algorithm perfmodel.Algorithm
	Placement cluster.Placement
	Overlap   bool
	Ranks     int
	N         int
}

// ValidationPoints enumerates the off-knot probe set for every stride-th
// model: geometric midpoints between adjacent knots (worst case for an
// interpolant) plus the rows-per-rank staircase edges k·ranks and
// k·ranks+1 nearest each midpoint (worst case for the comm target, which
// jumps there while the spline is smooth). stride 1 probes everything;
// tests use a larger stride to stay fast.
func ValidationPoints(p *Predictor, stride int) []ValidationPoint {
	if stride < 1 {
		stride = 1
	}
	var pts []ValidationPoint
	i := 0
	for _, pl := range cluster.Placements() {
		for _, ranks := range trainRanks(pl) {
			ns := knotOrders(ranks)
			for _, alg := range perfmodel.Algorithms() {
				for _, overlap := range []bool{true, false} {
					i++
					if (i-1)%stride != 0 {
						continue
					}
					seen := map[int]bool{}
					add := func(n int) {
						if n > ns[0] && n < ns[len(ns)-1] && !seen[n] {
							seen[n] = true
							pts = append(pts, ValidationPoint{alg, pl, overlap, ranks, n})
						}
					}
					for j := 0; j+1 < len(ns); j++ {
						mid := int(math.Round(math.Sqrt(float64(ns[j]) * float64(ns[j+1]))))
						add(mid)
						k := mid / ranks
						add(k * ranks)
						add(k*ranks + 1)
					}
				}
			}
		}
	}
	return pts
}

// Validate measures the predictor's worst relative duration and total-
// energy error against perfmodel over the off-knot probe set, in parallel
// under the runner's budget.
func Validate(p *Predictor, r *grid.Runner, stride int) (maxRelDur, maxRelEnergy float64, err error) {
	pts := ValidationPoints(p, stride)
	type errs struct{ dur, energy float64 }
	out, err := grid.Map(r, len(pts), func(i int) (errs, error) {
		pt := pts[i]
		cfg, err := cluster.NewConfig(pt.Ranks, pt.Placement, cluster.MarconiA3())
		if err != nil {
			return errs{}, err
		}
		prm := perfmodel.Params{Overlap: pt.Overlap}
		got, ok := p.Predict(pt.Algorithm, pt.N, cfg, prm)
		if !ok {
			return errs{}, fmt.Errorf("validate %v/%v/r%d/n%d: out of envelope", pt.Algorithm, pt.Placement, pt.Ranks, pt.N)
		}
		want, err := perfmodel.Run(pt.Algorithm, pt.N, cfg, prm)
		if err != nil {
			return errs{}, err
		}
		return errs{
			dur:    math.Abs(got.DurationS-want.DurationS) / want.DurationS,
			energy: math.Abs(got.TotalJ-want.TotalJ) / want.TotalJ,
		}, nil
	})
	if err != nil {
		return 0, 0, err
	}
	for _, e := range out {
		maxRelDur = math.Max(maxRelDur, e.dur)
		maxRelEnergy = math.Max(maxRelEnergy, e.energy)
	}
	return maxRelDur, maxRelEnergy, nil
}
