// Package rapl simulates Intel's Running Average Power Limit interface for
// one node: the non-architectural Model Specific Registers that expose
// per-package and per-DRAM energy counters, the unit register that scales
// them, and the package power-limit registers.
//
// The simulation reproduces the properties the paper's monitoring stack
// depends on (§2.3):
//
//   - energy counters are 32-bit and wrap;
//   - raw counter values are expressed in energy-status units read from
//     MSR_RAPL_POWER_UNIT (1/2^ESU joules, ESU = 14 ⇒ ~61 µJ);
//   - counters update approximately once a millisecond, with per-package
//     jitter, so two reads less than a millisecond apart may see the same
//     value;
//   - MSR access requires the (simulated) msr driver to be enabled and
//     readable, otherwise reads fail the way /dev/cpu/*/msr does.
//
// Energy itself comes from the additive power model in internal/power,
// driven by per-rank activity accounting over virtual time.
package rapl

import (
	"fmt"
	"math"

	"repro/internal/power"
)

// MSR addresses (Intel SDM, server RAPL).
const (
	MSRRaplPowerUnit    = 0x606
	MSRPkgPowerLimit    = 0x610
	MSRPkgEnergyStatus  = 0x611
	MSRDramEnergyStatus = 0x619
	MSRPP0EnergyStatus  = 0x639
)

// ESU is the simulated energy-status-unit exponent: raw counter units are
// 1/2^ESU joules.
const ESU = 14

// EnergyUnit is the joule value of one raw counter unit.
const EnergyUnit = 1.0 / (1 << ESU)

// counterUpdatePeriod is the nominal RAPL refresh interval (seconds).
const counterUpdatePeriod = 1e-3

// Domain identifies one energy measurement domain of a node.
type Domain int

// The four domains the paper monitors (§4: "CPU packages 0 and 1, as well
// as DRAM 0 and 1"), plus the PP0 (core) sub-domains.
const (
	PKG0 Domain = iota
	PKG1
	DRAM0
	DRAM1
	PP00
	PP01
	// Accel is the node-level accelerator energy domain (NVML-style, one
	// aggregate counter for the node's accelerators). It is analytic-only:
	// like the PP0 sub-domains it is excluded from Domains(), so dense
	// measurements and their stored bytes never see it; the sparse model
	// (internal/sparse) charges it directly.
	Accel
	numDomains
)

// Domains lists the externally meaningful domains in display order.
func Domains() []Domain { return []Domain{PKG0, PKG1, DRAM0, DRAM1} }

// String implements fmt.Stringer using the paper's naming.
func (d Domain) String() string {
	switch d {
	case PKG0:
		return "PACKAGE_ENERGY:PACKAGE0"
	case PKG1:
		return "PACKAGE_ENERGY:PACKAGE1"
	case DRAM0:
		return "DRAM_ENERGY:PACKAGE0"
	case DRAM1:
		return "DRAM_ENERGY:PACKAGE1"
	case PP00:
		return "PP0_ENERGY:PACKAGE0"
	case PP01:
		return "PP0_ENERGY:PACKAGE1"
	case Accel:
		return "ACCEL_ENERGY:NODE"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// Socket returns the package index a domain belongs to. The node-level
// Accel domain is conventionally attributed to socket 0 (the PCIe root
// complex side); it never appears in the per-socket MSR surface.
func (d Domain) Socket() int {
	switch d {
	case PKG0, DRAM0, PP00, Accel:
		return 0
	default:
		return 1
	}
}

// socketState accumulates the activity that determines a socket's energy.
type socketState struct {
	busyCoreSeconds float64 // Σ over ranks of virtual busy time
	bytes           float64 // memory traffic attributed to this socket
	powerLimit      float64 // watts; 0 means uncapped
}

// Node simulates the RAPL MSRs of one two-socket node.
type Node struct {
	cal power.Calibration
	// now is the node's view of virtual time, in seconds since job start.
	now     float64
	sockets [2]socketState
	// snapshots hold the counter values visible through the MSRs; they
	// refresh when virtual time crosses an update boundary, modelling the
	// ~1 ms counter granularity. Because the simulation accounts activity
	// in coarse retroactive lumps (a rank charges a whole compute call at
	// once), fresh accounting also marks the snapshot dirty so the next
	// time advance refreshes it — otherwise a reading could miss
	// arbitrarily much just-charged energy, which real hardware's
	// continuous integration never does.
	snapshotTime [2]float64
	snapshot     [numDomains]uint32
	dirty        [2]bool
	// driverEnabled gates MSR access like the Linux msr module.
	driverEnabled bool
	nodeID        int
}

// NewNode returns a node with zeroed counters and the msr driver enabled.
func NewNode(id int, cal power.Calibration) (*Node, error) {
	if err := cal.Validate(); err != nil {
		return nil, err
	}
	n := &Node{cal: cal, driverEnabled: true, nodeID: id}
	n.refresh(0)
	n.refresh(1)
	return n, nil
}

// SetDriverEnabled simulates loading/unloading the msr kernel module.
func (n *Node) SetDriverEnabled(on bool) { n.driverEnabled = on }

// AccountBusy adds coreSeconds of rank activity to a socket. Negative
// accounting is rejected.
func (n *Node) AccountBusy(socket int, coreSeconds float64) error {
	if socket < 0 || socket > 1 {
		return fmt.Errorf("rapl: socket %d out of range", socket)
	}
	if coreSeconds < 0 || math.IsNaN(coreSeconds) {
		return fmt.Errorf("rapl: invalid busy time %g", coreSeconds)
	}
	n.sockets[socket].busyCoreSeconds += coreSeconds
	n.dirty[socket] = true
	return nil
}

// AccountBytes attributes memory traffic to a socket's DRAM domain.
func (n *Node) AccountBytes(socket int, bytes float64) error {
	if socket < 0 || socket > 1 {
		return fmt.Errorf("rapl: socket %d out of range", socket)
	}
	if bytes < 0 || math.IsNaN(bytes) {
		return fmt.Errorf("rapl: invalid byte count %g", bytes)
	}
	n.sockets[socket].bytes += bytes
	n.dirty[socket] = true
	return nil
}

// SetTime advances the node's virtual clock. Time must be monotone; the
// counter snapshots refresh when an update period has elapsed since the
// previous refresh of that package (with deterministic per-package jitter).
func (n *Node) SetTime(t float64) error {
	if t < n.now {
		return fmt.Errorf("rapl: time went backwards: %g < %g", t, n.now)
	}
	n.now = t
	for s := 0; s < 2; s++ {
		if t-n.snapshotTime[s] >= n.updatePeriod(s) || (n.dirty[s] && t > n.snapshotTime[s]) {
			n.refresh(s)
		}
	}
	return nil
}

// updatePeriod returns the jittered refresh interval of a package: the
// nominal 1 ms skewed by up to ±10% deterministically per (node, socket).
func (n *Node) updatePeriod(socket int) float64 {
	h := uint64(n.nodeID)*2654435761 + uint64(socket)*40503 + 12345
	h ^= h >> 33
	jitter := (float64(h%2001)/1000 - 1) * 0.1 // in [-0.1, +0.1]
	return counterUpdatePeriod * (1 + jitter)
}

// refresh snapshots the raw counters of one package at the current time.
func (n *Node) refresh(socket int) {
	n.snapshotTime[socket] = n.now
	n.dirty[socket] = false
	for _, d := range []Domain{PKG0, PKG1, DRAM0, DRAM1, PP00, PP01} {
		if d.Socket() != socket {
			continue
		}
		j := n.energyJoules(d)
		n.snapshot[d] = uint32(uint64(j/EnergyUnit) & 0xFFFFFFFF)
	}
}

// energyJoules computes the exact accumulated energy of a domain from the
// additive power model.
func (n *Node) energyJoules(d Domain) float64 {
	s := d.Socket()
	st := n.sockets[s]
	switch d {
	case PKG0, PKG1:
		return n.cal.PkgEnergy(n.now, st.busyCoreSeconds, s)
	case DRAM0, DRAM1:
		return n.cal.DramEnergy(n.now, st.bytes)
	case PP00, PP01:
		// PP0 (cores only) excludes the uncore share of idle power; model
		// it as the dynamic core energy plus a quarter of the idle term.
		return n.cal.CoreActive*st.busyCoreSeconds + 0.25*n.cal.PkgIdle*n.now
	default:
		return 0
	}
}

// ExactEnergy exposes the un-quantized model energy for tests and for the
// analytic engine's cross-checks.
func (n *Node) ExactEnergy(d Domain) float64 { return n.energyJoules(d) }

// Now returns the node's current virtual time.
func (n *Node) Now() float64 { return n.now }

// ReadMSR reads a simulated MSR for the given socket. It fails when the
// msr driver is disabled, mirroring EPERM on real systems.
func (n *Node) ReadMSR(socket int, addr uint32) (uint64, error) {
	if !n.driverEnabled {
		return 0, fmt.Errorf("rapl: msr driver disabled (node %d): permission denied", n.nodeID)
	}
	if socket < 0 || socket > 1 {
		return 0, fmt.Errorf("rapl: socket %d out of range", socket)
	}
	switch addr {
	case MSRRaplPowerUnit:
		// Bits 12:8 hold the energy-status-unit exponent (SDM layout);
		// power unit (3:0) and time unit (19:16) use SDM defaults.
		return 0x3<<0 | ESU<<8 | 0xA<<16, nil
	case MSRPkgEnergyStatus:
		return uint64(n.snapshot[PKG0+Domain(socket)]), nil
	case MSRDramEnergyStatus:
		return uint64(n.snapshot[DRAM0+Domain(socket)]), nil
	case MSRPP0EnergyStatus:
		return uint64(n.snapshot[PP00+Domain(socket)]), nil
	case MSRPkgPowerLimit:
		lim := n.sockets[socket].powerLimit
		if lim == 0 {
			return 0, nil
		}
		// PL1 in 1/8 W units, enable bit 15.
		return uint64(lim*8)&0x7FFF | 1<<15, nil
	default:
		return 0, fmt.Errorf("rapl: unsupported MSR %#x", addr)
	}
}

// WriteMSR writes a simulated MSR. Only the package power-limit register is
// writable, as on real hardware from userspace tooling.
func (n *Node) WriteMSR(socket int, addr uint32, value uint64) error {
	if !n.driverEnabled {
		return fmt.Errorf("rapl: msr driver disabled (node %d): permission denied", n.nodeID)
	}
	if socket < 0 || socket > 1 {
		return fmt.Errorf("rapl: socket %d out of range", socket)
	}
	if addr != MSRPkgPowerLimit {
		return fmt.Errorf("rapl: MSR %#x is read-only", addr)
	}
	if value&(1<<15) == 0 {
		n.sockets[socket].powerLimit = 0
		return nil
	}
	n.sockets[socket].powerLimit = float64(value&0x7FFF) / 8
	return nil
}

// SetPowerLimit sets PL1 for a package in watts (0 disables the cap).
// It is the high-level form of writing MSRPkgPowerLimit.
func (n *Node) SetPowerLimit(socket int, watts float64) error {
	if socket < 0 || socket > 1 {
		return fmt.Errorf("rapl: socket %d out of range", socket)
	}
	if watts < 0 {
		return fmt.Errorf("rapl: negative power limit %g", watts)
	}
	n.sockets[socket].powerLimit = watts
	return nil
}

// PowerLimit returns the PL1 cap of a package (0 = uncapped).
func (n *Node) PowerLimit(socket int) float64 {
	if socket < 0 || socket > 1 {
		return 0
	}
	return n.sockets[socket].powerLimit
}

// SlowdownUnderCap returns the compute-time stretch factor a package
// suffers when running activeCores busy cores under its PL1 cap. The model
// assumes dynamic power scales linearly with frequency near the base clock
// (voltage held), so meeting the cap scales frequency — and therefore
// compute time — by the ratio of dynamic budgets. Idle power cannot be
// capped away; a cap at or below idle yields the maximum slowdown the
// model supports (clamped, with the cap effectively raised to idle+ε).
func (n *Node) SlowdownUnderCap(socket, activeCores int) float64 {
	if socket < 0 || socket > 1 {
		return 1
	}
	return n.cal.SlowdownUnderCap(n.sockets[socket].powerLimit, activeCores, socket)
}

// CounterDelta computes the energy in joules between two raw 32-bit
// counter readings, handling wrap-around exactly once (the monitoring
// layer reads far more often than the ~100 s wrap horizon at TDP).
func CounterDelta(before, after uint32) float64 {
	return float64(after-before) * EnergyUnit // uint32 arithmetic wraps naturally
}

// WrapHorizon returns the time in seconds after which a domain counter
// wraps at the given sustained power — a documentation aid used by tests
// to show reads are frequent enough.
func WrapHorizon(watts float64) float64 {
	if watts <= 0 {
		return math.Inf(1)
	}
	return float64(math.MaxUint32) * EnergyUnit / watts
}
