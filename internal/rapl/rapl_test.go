package rapl

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/power"
)

func newTestNode(t *testing.T) *Node {
	t.Helper()
	n, err := NewNode(0, power.Skylake8160())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNodeRejectsBadCalibration(t *testing.T) {
	if _, err := NewNode(0, power.Calibration{}); err == nil {
		t.Fatal("invalid calibration accepted")
	}
}

func TestUnitRegister(t *testing.T) {
	n := newTestNode(t)
	v, err := n.ReadMSR(0, MSRRaplPowerUnit)
	if err != nil {
		t.Fatal(err)
	}
	esu := (v >> 8) & 0x1F
	if esu != ESU {
		t.Fatalf("ESU field = %d, want %d", esu, ESU)
	}
	if got := 1.0 / float64(int(1)<<esu); got != EnergyUnit {
		t.Fatalf("unit mismatch: %g != %g", got, EnergyUnit)
	}
}

func TestIdleEnergyAccumulates(t *testing.T) {
	n := newTestNode(t)
	if err := n.SetTime(10); err != nil {
		t.Fatal(err)
	}
	cal := power.Skylake8160()
	wantPkg1 := cal.PkgEnergy(10, 0, 1)
	if got := n.ExactEnergy(PKG1); math.Abs(got-wantPkg1) > 1e-9 {
		t.Fatalf("idle PKG1 energy = %g, want %g", got, wantPkg1)
	}
	// Socket 0 must include OS noise.
	if n.ExactEnergy(PKG0) <= n.ExactEnergy(PKG1) {
		t.Fatal("PKG0 should exceed PKG1 when both idle (OS noise)")
	}
}

func TestBusyAccountingRaisesEnergy(t *testing.T) {
	n := newTestNode(t)
	if err := n.AccountBusy(1, 24*5); err != nil {
		t.Fatal(err)
	}
	if err := n.SetTime(5); err != nil {
		t.Fatal(err)
	}
	cal := power.Skylake8160()
	want := cal.PkgEnergy(5, 120, 1)
	if got := n.ExactEnergy(PKG1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("busy PKG1 energy = %g, want %g", got, want)
	}
}

func TestBytesAccountingRaisesDram(t *testing.T) {
	n := newTestNode(t)
	if err := n.AccountBytes(0, 1e9); err != nil {
		t.Fatal(err)
	}
	if err := n.SetTime(1); err != nil {
		t.Fatal(err)
	}
	base := n.ExactEnergy(DRAM1) // no traffic on socket 1
	with := n.ExactEnergy(DRAM0)
	if with <= base {
		t.Fatal("DRAM0 with traffic must exceed idle DRAM1")
	}
}

func TestAccountingValidation(t *testing.T) {
	n := newTestNode(t)
	if err := n.AccountBusy(2, 1); err == nil {
		t.Error("socket 2 accepted")
	}
	if err := n.AccountBusy(0, -1); err == nil {
		t.Error("negative busy time accepted")
	}
	if err := n.AccountBytes(0, math.NaN()); err == nil {
		t.Error("NaN bytes accepted")
	}
	if err := n.SetTime(5); err != nil {
		t.Fatal(err)
	}
	if err := n.SetTime(4); err == nil {
		t.Error("time allowed to go backwards")
	}
}

func TestCounterGranularity(t *testing.T) {
	// Two reads within the same ~1 ms update window must see the same
	// snapshot even though exact energy advanced.
	n := newTestNode(t)
	if err := n.SetTime(1.0); err != nil { // force a refresh
		t.Fatal(err)
	}
	v1, err := n.ReadMSR(0, MSRPkgEnergyStatus)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetTime(1.0 + 1e-5); err != nil { // 10 µs later
		t.Fatal(err)
	}
	v2, err := n.ReadMSR(0, MSRPkgEnergyStatus)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("counter advanced within an update period: %d → %d", v1, v2)
	}
	if err := n.SetTime(1.01); err != nil { // well past the period
		t.Fatal(err)
	}
	v3, err := n.ReadMSR(0, MSRPkgEnergyStatus)
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Fatal("counter failed to advance after an update period")
	}
}

func TestCounterMatchesExactEnergyWithinResolution(t *testing.T) {
	n := newTestNode(t)
	if err := n.AccountBusy(0, 48); err != nil {
		t.Fatal(err)
	}
	if err := n.SetTime(2); err != nil {
		t.Fatal(err)
	}
	raw, err := n.ReadMSR(0, MSRPkgEnergyStatus)
	if err != nil {
		t.Fatal(err)
	}
	exact := n.ExactEnergy(PKG0)
	got := float64(raw) * EnergyUnit
	// Snapshot can lag by up to one update period of power plus one unit.
	maxLag := power.Skylake8160().PkgPower(48, 0)*2e-3 + EnergyUnit
	if math.Abs(got-exact) > maxLag {
		t.Fatalf("counter %g J vs exact %g J differ by more than %g", got, exact, maxLag)
	}
}

func TestCounterDeltaWrap(t *testing.T) {
	if got := CounterDelta(10, 20); math.Abs(got-10*EnergyUnit) > 1e-15 {
		t.Fatalf("simple delta = %g", got)
	}
	// Wrap: before near max, after small.
	before := uint32(math.MaxUint32 - 5)
	after := uint32(10)
	if got := CounterDelta(before, after); math.Abs(got-16*EnergyUnit) > 1e-12 {
		t.Fatalf("wrapped delta = %g, want %g", got, 16*EnergyUnit)
	}
}

func TestCounterDeltaWrapQuick(t *testing.T) {
	f := func(before uint32, adv uint16) bool {
		after := before + uint32(adv)
		return math.Abs(CounterDelta(before, after)-float64(adv)*EnergyUnit) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWrapHorizonPlausible(t *testing.T) {
	// At TDP a package counter must last minutes, not milliseconds —
	// justifying reads at start/stop only for the paper's job lengths.
	h := WrapHorizon(150)
	if h < 60 || h > 1e5 {
		t.Fatalf("wrap horizon at 150 W = %g s, implausible", h)
	}
	if !math.IsInf(WrapHorizon(0), 1) {
		t.Fatal("zero power must never wrap")
	}
}

func TestDriverGate(t *testing.T) {
	n := newTestNode(t)
	n.SetDriverEnabled(false)
	if _, err := n.ReadMSR(0, MSRPkgEnergyStatus); err == nil {
		t.Fatal("read allowed with driver disabled")
	}
	if err := n.WriteMSR(0, MSRPkgPowerLimit, 1<<15); err == nil {
		t.Fatal("write allowed with driver disabled")
	}
	n.SetDriverEnabled(true)
	if _, err := n.ReadMSR(0, MSRPkgEnergyStatus); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownMSR(t *testing.T) {
	n := newTestNode(t)
	if _, err := n.ReadMSR(0, 0xDEAD); err == nil {
		t.Fatal("unknown MSR read accepted")
	}
	if err := n.WriteMSR(0, MSRPkgEnergyStatus, 1); err == nil {
		t.Fatal("write to read-only MSR accepted")
	}
}

func TestPowerLimitRoundTrip(t *testing.T) {
	n := newTestNode(t)
	if err := n.SetPowerLimit(1, 100); err != nil {
		t.Fatal(err)
	}
	raw, err := n.ReadMSR(1, MSRPkgPowerLimit)
	if err != nil {
		t.Fatal(err)
	}
	if raw&(1<<15) == 0 {
		t.Fatal("enable bit not set")
	}
	if got := float64(raw&0x7FFF) / 8; got != 100 {
		t.Fatalf("PL1 = %g, want 100", got)
	}
	// Write through the MSR path too.
	if err := n.WriteMSR(1, MSRPkgPowerLimit, uint64(80*8)|1<<15); err != nil {
		t.Fatal(err)
	}
	if n.PowerLimit(1) != 80 {
		t.Fatalf("PowerLimit = %g, want 80", n.PowerLimit(1))
	}
	// Clearing the enable bit removes the cap.
	if err := n.WriteMSR(1, MSRPkgPowerLimit, 0); err != nil {
		t.Fatal(err)
	}
	if n.PowerLimit(1) != 0 {
		t.Fatal("cap not cleared")
	}
	if err := n.SetPowerLimit(0, -5); err == nil {
		t.Fatal("negative cap accepted")
	}
}

func TestSlowdownUnderCap(t *testing.T) {
	n := newTestNode(t)
	// Uncapped: no slowdown.
	if s := n.SlowdownUnderCap(0, 24); s != 1 {
		t.Fatalf("uncapped slowdown = %g", s)
	}
	cal := power.Skylake8160()
	full := cal.PkgPower(24, 0)
	// Cap above demand: no slowdown.
	if err := n.SetPowerLimit(0, full+10); err != nil {
		t.Fatal(err)
	}
	if s := n.SlowdownUnderCap(0, 24); s != 1 {
		t.Fatalf("slack cap slowdown = %g", s)
	}
	// Cap at 75% of demand: slowdown > 1 and monotone in cap tightness.
	if err := n.SetPowerLimit(0, 0.75*full); err != nil {
		t.Fatal(err)
	}
	s75 := n.SlowdownUnderCap(0, 24)
	if s75 <= 1 {
		t.Fatalf("tight cap slowdown = %g, want > 1", s75)
	}
	if err := n.SetPowerLimit(0, 0.6*full); err != nil {
		t.Fatal(err)
	}
	if s60 := n.SlowdownUnderCap(0, 24); s60 <= s75 {
		t.Fatalf("tighter cap must slow more: %g <= %g", s60, s75)
	}
	// Cap below idle: clamps to the maximum slowdown instead of exploding.
	if err := n.SetPowerLimit(0, 1); err != nil {
		t.Fatal(err)
	}
	if s := n.SlowdownUnderCap(0, 24); s != 8 {
		t.Fatalf("sub-idle cap slowdown = %g, want clamp 8", s)
	}
}

func TestDomainStringsAndSockets(t *testing.T) {
	if PKG0.String() != "PACKAGE_ENERGY:PACKAGE0" || DRAM1.String() != "DRAM_ENERGY:PACKAGE1" {
		t.Fatal("domain names drifted from the powercap naming")
	}
	if PKG0.Socket() != 0 || DRAM1.Socket() != 1 || PP00.Socket() != 0 {
		t.Fatal("domain→socket mapping wrong")
	}
	if len(Domains()) != 4 {
		t.Fatal("Domains() must list the four monitored domains")
	}
}

func TestPP0BelowPackage(t *testing.T) {
	n := newTestNode(t)
	if err := n.AccountBusy(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := n.SetTime(10); err != nil {
		t.Fatal(err)
	}
	if n.ExactEnergy(PP00) >= n.ExactEnergy(PKG0) {
		t.Fatal("PP0 (cores) must be below full package energy")
	}
}
