package mat

import (
	"testing"
	"testing/quick"
)

func TestBandedShapeValidation(t *testing.T) {
	if _, err := NewBanded(0, 0, 0); err == nil {
		t.Error("zero order accepted")
	}
	if _, err := NewBanded(4, 4, 0); err == nil {
		t.Error("kl ≥ n accepted")
	}
	if _, err := NewBanded(4, 0, -1); err == nil {
		t.Error("negative ku accepted")
	}
}

func TestBandedAtSet(t *testing.T) {
	b, err := NewBanded(5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Set(2, 1, -3) // subdiagonal
	b.Set(2, 4, 7)  // second superdiagonal
	if b.At(2, 1) != -3 || b.At(2, 4) != 7 {
		t.Fatal("round trip failed")
	}
	if b.At(0, 4) != 0 {
		t.Fatal("out-of-band read should be zero")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-band write accepted")
			}
		}()
		b.Set(0, 4, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-bounds read accepted")
			}
		}()
		b.At(5, 0)
	}()
}

func TestBandedDenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%20+20) % 20
		if n < 3 {
			n = 3
		}
		kl := int(seed>>8) % 3
		if kl < 0 {
			kl = -kl
		}
		ku := int(seed>>16) % 3
		if ku < 0 {
			ku = -ku
		}
		b, err := NewBandedDiagonallyDominant(n, kl, ku, seed)
		if err != nil {
			return false
		}
		dense := b.Dense()
		back, err := BandedFromDense(dense, kl, ku)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if back.At(i, j) != b.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBandedFromDenseRejectsOutOfBand(t *testing.T) {
	a := New(4, 4)
	a.Set(0, 3, 5) // outside a kl=1, ku=1 band
	if _, err := BandedFromDense(a, 1, 1); err == nil {
		t.Fatal("out-of-band entry accepted")
	}
	if _, err := BandedFromDense(New(2, 3), 1, 1); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestBandedMulVecMatchesDense(t *testing.T) {
	b, err := NewBandedDiagonallyDominant(12, 2, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 12)
	for i := range x {
		x[i] = float64(i) - 5.5
	}
	got := b.MulVec(x)
	want := b.Dense().MulVec(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec[%d] = %g, dense %g", i, got[i], want[i])
		}
	}
}
