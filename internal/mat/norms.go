package mat

import "math"

// MaxNorm returns the element-wise max-abs norm of m.
func MaxNorm(m *Dense) float64 {
	var mx float64
	for i := 0; i < m.Rows(); i++ {
		for _, v := range m.Row(i) {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
	}
	return mx
}

// InfOpNorm returns the operator infinity norm (max absolute row sum).
func InfOpNorm(m *Dense) float64 {
	var mx float64
	for i := 0; i < m.Rows(); i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Residual returns ||A·x − b||_inf.
func Residual(a *Dense, x, b []float64) float64 {
	ax := a.MulVec(x)
	var mx float64
	for i, v := range ax {
		if d := math.Abs(v - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// RelativeResidual returns ||A·x − b||_inf / (||A||_inf · ||x||_inf + ||b||_inf),
// the standard backward-error-style check for a computed solution. It
// returns 0 for an empty system.
func RelativeResidual(a *Dense, x, b []float64) float64 {
	den := InfOpNorm(a)*InfNorm(x) + InfNorm(b)
	if den == 0 {
		return 0
	}
	return Residual(a, x, b) / den
}
