// Package mat provides dense matrices and vectors with contiguous storage,
// deterministic generators, file I/O and the norms needed to validate
// linear-system solvers.
//
// The paper stores coefficient matrices contiguously ("matrices allocation
// is tested in a contiguous form") and loads input systems from file so
// repeated measurements see identical data; this package reproduces both
// behaviours.
package mat

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/kernel"
)

// Dense is a dense row-major matrix with contiguous backing storage.
// The zero value is an empty matrix; use New or NewFromData to build one.
type Dense struct {
	rows, cols int
	// stride is the distance in elements between vertically adjacent
	// elements. For matrices created by New it equals cols; views created
	// by Slice may have a larger stride over shared storage.
	stride int
	data   []float64
}

// New returns a zeroed r×c matrix backed by a single contiguous allocation.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, stride: c, data: make([]float64, r*c)}
}

// NewFromData wraps data (row-major, len r*c) without copying.
func NewFromData(r, c int, data []float64) (*Dense, error) {
	if r < 0 || c < 0 {
		return nil, fmt.Errorf("mat: negative dimension %d×%d", r, c)
	}
	if len(data) != r*c {
		return nil, fmt.Errorf("mat: data length %d does not match %d×%d", len(data), r, c)
	}
	return &Dense{rows: r, cols: c, stride: c, data: data}, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Stride returns the row stride of the backing storage.
func (m *Dense) Stride() int { return m.stride }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.stride+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.stride+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of bounds %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns a slice aliasing row i. Mutating the slice mutates the matrix.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of bounds %d×%d", i, m.rows, m.cols))
	}
	return m.data[i*m.stride : i*m.stride+m.cols]
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	return m.CopyColInto(make([]float64, m.rows), j)
}

// CopyColInto copies column j into dst (len must equal Rows) and returns
// dst. Hot loops use it to read columns without allocating; the walk is a
// single strided pointer advance rather than a multiply per row.
func (m *Dense) CopyColInto(dst []float64, j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of bounds %d×%d", j, m.rows, m.cols))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("mat: CopyColInto length %d != rows %d", len(dst), m.rows))
	}
	idx := j
	for i := range dst {
		dst[i] = m.data[idx]
		idx += m.stride
	}
	return dst
}

// SetCol overwrites column j with v (len must equal Rows).
func (m *Dense) SetCol(j int, v []float64) {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of bounds %d×%d", j, m.rows, m.cols))
	}
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d != rows %d", len(v), m.rows))
	}
	idx := j
	for _, x := range v {
		m.data[idx] = x
		idx += m.stride
	}
}

// Data returns the backing slice when the matrix is contiguous
// (stride == cols); it errors for strided views.
func (m *Dense) Data() ([]float64, error) {
	if m.stride != m.cols {
		return nil, errors.New("mat: matrix is a strided view, not contiguous")
	}
	return m.data, nil
}

// Raw returns the backing slice starting at element (0,0) together with
// the row stride, for strided-kernel consumers (internal/kernel). The
// slice aliases the matrix; it works for views as well as owned storage.
func (m *Dense) Raw() (data []float64, stride int) { return m.data, m.stride }

// Clone returns a deep, contiguous copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// Slice returns a view of the rectangle [r0,r1)×[c0,c1) sharing storage
// with m.
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("mat: bad slice [%d:%d,%d:%d] of %d×%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	return &Dense{
		rows:   r1 - r0,
		cols:   c1 - c0,
		stride: m.stride,
		data:   m.data[r0*m.stride+c0 : (r1-1)*m.stride+c1],
	}
}

// SwapRows exchanges rows i and k in place.
func (m *Dense) SwapRows(i, k int) {
	if i == k {
		return
	}
	ri, rk := m.Row(i), m.Row(k)
	for j := range ri {
		ri[j], rk[j] = rk[j], ri[j]
	}
}

// MulVec returns A·x for x of length Cols. Rows fan out across the
// process-wide kernel pool with an unrolled dot product.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mat: MulVec length %d != cols %d", len(x), m.cols))
	}
	y := make([]float64, m.rows)
	kernel.MatVec(m.rows, m.cols, m.data, m.stride, x, y)
	return y
}

// Mul returns the matrix product A·B, computed by the cache-blocked
// multicore GEMM in internal/kernel.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %d×%d · %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	kernel.Gemm(m.rows, b.cols, m.cols, 1, m.data, m.stride, b.data, b.stride, out.data, out.stride)
	return out
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Dense) Transpose() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*out.stride+i] = v
		}
	}
	return out
}

// EqualApprox reports whether m and b have the same shape and all elements
// within tol of each other.
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		ra, rb := m.Row(i), b.Row(i)
		for j := range ra {
			if math.Abs(ra[j]-rb[j]) > tol {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	if m.rows > maxShow || m.cols > maxShow {
		return fmt.Sprintf("Dense{%d×%d}", m.rows, m.cols)
	}
	s := ""
	for i := 0; i < m.rows; i++ {
		s += fmt.Sprintf("%v\n", m.Row(i))
	}
	return s
}
