package mat

import (
	"fmt"
	"math/rand"
)

// Banded is an n×n band matrix with kl subdiagonals and ku superdiagonals,
// stored compactly: row i holds its in-band entries for columns
// i−kl … i+ku contiguously (width kl+ku+1). ScaLAPACK pairs its dense
// block-cyclic distribution with "a block data distribution for banded
// matrices" (§2.2); this is the sequential banded substrate.
type Banded struct {
	n, kl, ku int
	data      []float64 // row-major, n × (kl+ku+1)
}

// NewBanded returns a zeroed band matrix.
func NewBanded(n, kl, ku int) (*Banded, error) {
	if n <= 0 || kl < 0 || ku < 0 || kl >= n || ku >= n {
		return nil, fmt.Errorf("mat: invalid band shape n=%d kl=%d ku=%d", n, kl, ku)
	}
	return &Banded{n: n, kl: kl, ku: ku, data: make([]float64, n*(kl+ku+1))}, nil
}

// N returns the order; KL and KU the band widths.
func (b *Banded) N() int  { return b.n }
func (b *Banded) KL() int { return b.kl }
func (b *Banded) KU() int { return b.ku }

// inBand reports whether (i, j) lies inside the band.
func (b *Banded) inBand(i, j int) bool {
	return j >= i-b.kl && j <= i+b.ku
}

func (b *Banded) index(i, j int) int {
	return i*(b.kl+b.ku+1) + (j - i + b.kl)
}

// At returns A[i][j]; out-of-band entries inside the matrix are zero.
func (b *Banded) At(i, j int) float64 {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("mat: banded index (%d,%d) out of bounds %d", i, j, b.n))
	}
	if !b.inBand(i, j) {
		return 0
	}
	return b.data[b.index(i, j)]
}

// Set assigns A[i][j]; writing outside the band panics.
func (b *Banded) Set(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("mat: banded index (%d,%d) out of bounds %d", i, j, b.n))
	}
	if !b.inBand(i, j) {
		panic(fmt.Sprintf("mat: (%d,%d) outside band kl=%d ku=%d", i, j, b.kl, b.ku))
	}
	b.data[b.index(i, j)] = v
}

// Dense expands the band matrix to dense form.
func (b *Banded) Dense() *Dense {
	out := New(b.n, b.n)
	for i := 0; i < b.n; i++ {
		lo, hi := i-b.kl, i+b.ku
		if lo < 0 {
			lo = 0
		}
		if hi >= b.n {
			hi = b.n - 1
		}
		for j := lo; j <= hi; j++ {
			out.Set(i, j, b.data[b.index(i, j)])
		}
	}
	return out
}

// BandedFromDense compresses a dense matrix that is zero outside the band.
func BandedFromDense(a *Dense, kl, ku int) (*Banded, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("mat: banded source must be square, got %d×%d", n, a.Cols())
	}
	b, err := NewBanded(n, kl, ku)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		row := a.Row(i)
		for j, v := range row {
			if b.inBand(i, j) {
				if v != 0 {
					b.Set(i, j, v)
				}
				continue
			}
			if v != 0 {
				return nil, fmt.Errorf("mat: entry (%d,%d)=%g outside band kl=%d ku=%d", i, j, v, kl, ku)
			}
		}
	}
	return b, nil
}

// MulVec returns A·x touching only in-band entries.
func (b *Banded) MulVec(x []float64) []float64 {
	if len(x) != b.n {
		panic(fmt.Sprintf("mat: banded MulVec length %d != %d", len(x), b.n))
	}
	y := make([]float64, b.n)
	for i := 0; i < b.n; i++ {
		lo, hi := i-b.kl, i+b.ku
		if lo < 0 {
			lo = 0
		}
		if hi >= b.n {
			hi = b.n - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += b.data[b.index(i, j)] * x[j]
		}
		y[i] = s
	}
	return y
}

// NewBandedDiagonallyDominant generates a deterministic, strictly
// diagonally dominant band matrix.
func NewBandedDiagonallyDominant(n, kl, ku int, seed int64) (*Banded, error) {
	b, err := NewBanded(n, kl, ku)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		lo, hi := i-kl, i+ku
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		var off float64
		for j := lo; j <= hi; j++ {
			if j == i {
				continue
			}
			v := rng.Float64()*2 - 1
			b.Set(i, j, v)
			if v < 0 {
				off -= v
			} else {
				off += v
			}
		}
		b.Set(i, i, off+1+rng.Float64())
	}
	return b, nil
}
