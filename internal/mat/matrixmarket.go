package mat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MatrixMarket interchange support: the NIST coordinate and array formats
// most sparse/dense matrix collections ship in, so inputs produced by
// other toolchains can drive the solvers directly.
//
// Supported headers:
//
//	%%MatrixMarket matrix coordinate real general
//	%%MatrixMarket matrix array real general
//
// Coordinate entries are 1-based (i j value); the array format stores
// column-major values.

// WriteMatrixMarket writes m in coordinate format, skipping zeros.
func WriteMatrixMarket(w io.Writer, m *Dense) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	nnz := 0
	for i := 0; i < m.Rows(); i++ {
		for _, v := range m.Row(i) {
			if v != 0 {
				nnz++
			}
		}
	}
	fmt.Fprintf(bw, "%d %d %d\n", m.Rows(), m.Cols(), nnz)
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for j, v := range row {
			if v != 0 {
				fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, v)
			}
		}
	}
	return bw.Flush()
}

// nextMMLine returns the next non-empty, non-comment line (MatrixMarket
// comments start with %).
func nextMMLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// ReadMatrixMarket parses the coordinate or array real general formats
// into a dense matrix.
func ReadMatrixMarket(r io.Reader) (*Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("mat: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("mat: bad MatrixMarket header %q", sc.Text())
	}
	layout, valType, symmetry := header[2], header[3], header[4]
	if valType != "real" && valType != "integer" {
		return nil, fmt.Errorf("mat: unsupported MatrixMarket value type %q", valType)
	}
	if symmetry != "general" {
		return nil, fmt.Errorf("mat: unsupported MatrixMarket symmetry %q", symmetry)
	}

	sizeLine, err := nextMMLine(sc)
	if err != nil {
		return nil, fmt.Errorf("mat: reading size line: %w", err)
	}
	sizes := strings.Fields(sizeLine)

	switch layout {
	case "coordinate":
		if len(sizes) != 3 {
			return nil, fmt.Errorf("mat: coordinate size line %q", sizeLine)
		}
		rows, err1 := strconv.Atoi(sizes[0])
		cols, err2 := strconv.Atoi(sizes[1])
		nnz, err3 := strconv.Atoi(sizes[2])
		if err1 != nil || err2 != nil || err3 != nil || rows <= 0 || cols <= 0 || nnz < 0 {
			return nil, fmt.Errorf("mat: bad coordinate sizes %q", sizeLine)
		}
		m := New(rows, cols)
		for k := 0; k < nnz; k++ {
			line, err := nextMMLine(sc)
			if err != nil {
				return nil, fmt.Errorf("mat: entry %d: %w", k, err)
			}
			f := strings.Fields(line)
			if len(f) != 3 {
				return nil, fmt.Errorf("mat: entry %d has %d fields", k, len(f))
			}
			i, err1 := strconv.Atoi(f[0])
			j, err2 := strconv.Atoi(f[1])
			v, err3 := strconv.ParseFloat(f[2], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("mat: entry %d malformed: %q", k, line)
			}
			if i < 1 || i > rows || j < 1 || j > cols {
				return nil, fmt.Errorf("mat: entry %d index (%d,%d) outside %d×%d", k, i, j, rows, cols)
			}
			m.Set(i-1, j-1, v)
		}
		return m, nil
	case "array":
		if len(sizes) != 2 {
			return nil, fmt.Errorf("mat: array size line %q", sizeLine)
		}
		rows, err1 := strconv.Atoi(sizes[0])
		cols, err2 := strconv.Atoi(sizes[1])
		if err1 != nil || err2 != nil || rows <= 0 || cols <= 0 {
			return nil, fmt.Errorf("mat: bad array sizes %q", sizeLine)
		}
		m := New(rows, cols)
		// Column-major values.
		for j := 0; j < cols; j++ {
			for i := 0; i < rows; i++ {
				line, err := nextMMLine(sc)
				if err != nil {
					return nil, fmt.Errorf("mat: array value (%d,%d): %w", i, j, err)
				}
				v, err := strconv.ParseFloat(strings.TrimSpace(line), 64)
				if err != nil {
					return nil, fmt.Errorf("mat: array value (%d,%d): %w", i, j, err)
				}
				m.Set(i, j, v)
			}
		}
		return m, nil
	default:
		return nil, fmt.Errorf("mat: unsupported MatrixMarket layout %q", layout)
	}
}
