package mat

import (
	"sync"
	"sync/atomic"
	"testing"
)

// coldSeed hands out a fresh seed per test invocation so repeated runs
// in one process (-count=N) each start from a cold key.
var coldSeed atomic.Int64

// TestCachedSystemMatchesFreshGeneration pins the memoised instance to
// the direct constructor.
func TestCachedSystemMatchesFreshGeneration(t *testing.T) {
	got := CachedSystem(17, 42)
	want := NewRandomSystem(17, 42)
	if got.A.Rows() != want.A.Rows() || got.A.Cols() != want.A.Cols() {
		t.Fatalf("cached system shape %dx%d, want %dx%d", got.A.Rows(), got.A.Cols(), want.A.Rows(), want.A.Cols())
	}
	for i := range want.B {
		if got.B[i] != want.B[i] {
			t.Fatalf("B[%d] = %g, want %g", i, got.B[i], want.B[i])
		}
	}
	if CachedSystem(17, 42) != got {
		t.Fatal("repeat lookup returned a different instance")
	}
}

// TestCachedSystemColdKeySingleFlight races many goroutines on a cold
// key: all must observe the same instance and the build must run exactly
// once (run under -race in CI).
func TestCachedSystemColdKeySingleFlight(t *testing.T) {
	const goroutines = 64
	seed := 987654321 + coldSeed.Add(1)
	before := sysGenerations.Load()

	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		gate  = make(chan struct{})
		got   [goroutines]*System
	)
	start.Add(goroutines)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer done.Done()
			start.Done()
			<-gate // maximise the cold-key collision
			got[i] = CachedSystem(23, seed)
		}(i)
	}
	start.Wait()
	close(gate)
	done.Wait()

	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d got a different instance", i)
		}
	}
	if n := sysGenerations.Load() - before; n != 1 {
		t.Fatalf("cold key generated %d times, want exactly 1", n)
	}
}
