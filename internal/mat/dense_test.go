package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %d×%d, want 3×4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("New not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewFromData(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m, err := NewFromData(2, 3, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	if _, err := NewFromData(2, 2, d); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(5, 5)
	m.Set(2, 3, 7.5)
	if got := m.At(2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	m := New(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.Row(5) },
		func() { m.Col(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRowAliases(t *testing.T) {
	m := New(2, 2)
	m.Row(0)[1] = 42
	if m.At(0, 1) != 42 {
		t.Fatal("Row does not alias backing storage")
	}
}

func TestColAndSetCol(t *testing.T) {
	m := New(3, 2)
	m.SetCol(1, []float64{1, 2, 3})
	got := m.Col(1)
	for i, want := range []float64{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("Col(1)[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewDiagonallyDominant(4, 1)
	c := m.Clone()
	c.Set(0, 0, -999)
	if m.At(0, 0) == -999 {
		t.Fatal("Clone shares storage with original")
	}
	if !m.EqualApprox(m.Clone(), 0) {
		t.Fatal("Clone not equal to original")
	}
}

func TestSliceView(t *testing.T) {
	m := New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	v := m.Slice(1, 3, 1, 4)
	if v.Rows() != 2 || v.Cols() != 3 {
		t.Fatalf("slice shape %d×%d, want 2×3", v.Rows(), v.Cols())
	}
	if v.At(0, 0) != 11 || v.At(1, 2) != 23 {
		t.Fatalf("slice content wrong: %v %v", v.At(0, 0), v.At(1, 2))
	}
	v.Set(0, 0, -1)
	if m.At(1, 1) != -1 {
		t.Fatal("Slice must share storage")
	}
	if _, err := v.Data(); err == nil && v.Stride() != v.Cols() {
		t.Fatal("Data must refuse strided views")
	}
}

func TestSwapRows(t *testing.T) {
	m := New(2, 3)
	m.SetCol(0, []float64{1, 2})
	m.SwapRows(0, 1)
	if m.At(0, 0) != 2 || m.At(1, 0) != 1 {
		t.Fatal("SwapRows failed")
	}
	m.SwapRows(1, 1) // no-op must not panic
}

func TestMulVec(t *testing.T) {
	m, _ := NewFromData(2, 2, []float64{1, 2, 3, 4})
	y := m.MulVec([]float64{5, 6})
	if y[0] != 17 || y[1] != 39 {
		t.Fatalf("MulVec = %v, want [17 39]", y)
	}
}

func TestMulIdentity(t *testing.T) {
	m := NewDiagonallyDominant(6, 3)
	p := m.Mul(Identity(6))
	if !p.EqualApprox(m, 1e-14) {
		t.Fatal("A·I != A")
	}
	p = Identity(6).Mul(m)
	if !p.EqualApprox(m, 1e-14) {
		t.Fatal("I·A != A")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatal("transpose shape wrong")
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatal("transpose content wrong")
	}
	if !m.Transpose().Transpose().EqualApprox(m, 0) {
		t.Fatal("double transpose != original")
	}
}

func TestTransposeInvolutionQuick(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%7) + 2
		if n < 0 {
			n = -n
		}
		m := NewDiagonallyDominant(n, seed)
		return m.Transpose().Transpose().EqualApprox(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecLinearityQuick(t *testing.T) {
	// A(x+y) == Ax + Ay within roundoff.
	f := func(seed int64) bool {
		n := int(abs64(seed)%8) + 2
		m := NewDiagonallyDominant(n, seed)
		sysa := NewRandomSystem(n, seed+1)
		sysb := NewRandomSystem(n, seed+2)
		x, y := sysa.X, sysb.X
		sum := make([]float64, n)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		lhs := m.MulVec(sum)
		ax, ay := m.MulVec(x), m.MulVec(y)
		for i := range lhs {
			if math.Abs(lhs[i]-(ax[i]+ay[i])) > 1e-9*(1+math.Abs(lhs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		if v == math.MinInt64 {
			return math.MaxInt64
		}
		return -v
	}
	return v
}

func TestEqualApproxShapes(t *testing.T) {
	if New(2, 3).EqualApprox(New(3, 2), 1) {
		t.Fatal("different shapes must not be equal")
	}
}

func TestStringElision(t *testing.T) {
	small := New(2, 2)
	if small.String() == "" {
		t.Fatal("small matrix should render")
	}
	big := New(20, 20)
	if got := big.String(); got != "Dense{20×20}" {
		t.Fatalf("big matrix render = %q", got)
	}
}

func TestCopyColIntoStridedView(t *testing.T) {
	m := New(5, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	v := m.Slice(1, 4, 2, 5) // 3×3 view, stride 5 ≠ cols 3
	dst := make([]float64, 3)
	got := v.CopyColInto(dst, 1)
	if &got[0] != &dst[0] {
		t.Fatal("CopyColInto must return dst")
	}
	for i, want := range []float64{13, 23, 33} {
		if got[i] != want {
			t.Fatalf("col[%d] = %v, want %v", i, got[i], want)
		}
	}
	v.SetCol(0, []float64{-1, -2, -3})
	if m.At(1, 2) != -1 || m.At(3, 2) != -3 {
		t.Fatal("SetCol on a view must write through the stride")
	}
	if m.At(1, 1) != 11 || m.At(1, 3) != 13 {
		t.Fatal("SetCol on a view must not touch neighbouring columns")
	}
}

// TestMulMatchesNaive pins the blocked-kernel wiring of Mul: odd shapes
// (tail rows/cols, k spanning kernel panels) against the scalar triple
// loop, including strided views of both operands.
func TestMulMatchesNaive(t *testing.T) {
	const m, k, n = 37, 61, 29
	a := New(m, k)
	b := New(k, n)
	s := uint64(42)
	fill := func(d *Dense) {
		for i := 0; i < d.Rows(); i++ {
			row := d.Row(i)
			for j := range row {
				s = s*6364136223846793005 + 1442695040888963407
				row[j] = float64(int64(s>>33)%1000-500) / 256
			}
		}
	}
	fill(a)
	fill(b)
	want := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for t := 0; t < k; t++ {
				sum += a.At(i, t) * b.At(t, j)
			}
			want.Set(i, j, sum)
		}
	}
	if got := a.Mul(b); !got.EqualApprox(want, 1e-12) {
		t.Fatal("Mul deviates from the naive product")
	}
	// Strided views: interior blocks of padded parents.
	ap := New(m+4, k+4)
	bp := New(k+4, n+4)
	for i := 0; i < m; i++ {
		copy(ap.Slice(2, m+2, 2, k+2).Row(i), a.Row(i))
	}
	for i := 0; i < k; i++ {
		copy(bp.Slice(1, k+1, 3, n+3).Row(i), b.Row(i))
	}
	got := ap.Slice(2, m+2, 2, k+2).Mul(bp.Slice(1, k+1, 3, n+3))
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("Mul on strided views deviates from the naive product")
	}
}
