package mat

import (
	"math"
	"testing"
)

func TestVectorOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %v", got)
	}
	z := VecClone(y)
	Axpy(2, x, z)
	if z[0] != 6 || z[1] != -1 || z[2] != 12 {
		t.Fatalf("Axpy = %v", z)
	}
	Scale(0.5, z)
	if z[0] != 3 {
		t.Fatalf("Scale = %v", z)
	}
	if got := InfNorm(y); got != 6 {
		t.Fatalf("InfNorm = %v", got)
	}
	if got := TwoNorm([]float64{3, 4}); got != 5 {
		t.Fatalf("TwoNorm = %v", got)
	}
	d := Sub(x, y)
	if d[0] != -3 || d[1] != 7 || d[2] != -3 {
		t.Fatalf("Sub = %v", d)
	}
}

func TestVectorOpsMismatchedLengthsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { Dot([]float64{1}, []float64{1, 2}) },
		func() { Axpy(1, []float64{1}, []float64{1, 2}) },
		func() { Sub([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNorms(t *testing.T) {
	m, _ := NewFromData(2, 2, []float64{1, -7, 3, 2})
	if got := MaxNorm(m); got != 7 {
		t.Fatalf("MaxNorm = %v", got)
	}
	if got := InfOpNorm(m); got != 8 {
		t.Fatalf("InfOpNorm = %v", got)
	}
}

func TestResidualZeroForExactSolution(t *testing.T) {
	s := NewRandomSystem(15, 4)
	if r := Residual(s.A, s.X, s.B); r > 1e-10 {
		t.Fatalf("residual of exact solution = %g", r)
	}
	if rr := RelativeResidual(s.A, s.X, s.B); rr > 1e-14 {
		t.Fatalf("relative residual = %g", rr)
	}
}

func TestResidualDetectsWrongSolution(t *testing.T) {
	s := NewRandomSystem(10, 8)
	bad := VecClone(s.X)
	bad[3] += 1
	if r := Residual(s.A, bad, s.B); r < 0.1 {
		t.Fatalf("residual of perturbed solution too small: %g", r)
	}
}

func TestRelativeResidualEmptySystem(t *testing.T) {
	a := New(0, 0)
	if rr := RelativeResidual(a, nil, nil); rr != 0 {
		t.Fatalf("empty system relative residual = %g, want 0", rr)
	}
}

func TestInfNormEmpty(t *testing.T) {
	if InfNorm(nil) != 0 {
		t.Fatal("InfNorm(nil) != 0")
	}
	if !math.IsInf(1/InfNorm([]float64{0})+math.Inf(1), 1) {
		// trivially true; keeps math import honest in minimal builds
		t.Skip()
	}
}
