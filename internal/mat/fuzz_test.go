package mat

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSystemText hardens the text parser: arbitrary input must either
// parse into a valid system or return an error — never panic, never
// produce an inconsistent System. (go test runs the seed corpus; go test
// -fuzz explores further.)
func FuzzReadSystemText(f *testing.F) {
	f.Add("2\n2 0 2\n0 2 4\n")
	f.Add("# comment\n1\n5 10\n")
	f.Add("")
	f.Add("abc")
	f.Add("3\n1 2 3\n")
	f.Add("1\nNaN Inf\n")
	f.Add("1\n1e309 0\n")
	f.Add("-5\n")
	f.Add("2\n1 2 3 4\n5 6 7 8\n9\n")
	f.Fuzz(func(t *testing.T, input string) {
		sys, err := ReadSystemText(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := sys.Validate(); verr != nil {
			t.Fatalf("parser returned inconsistent system: %v", verr)
		}
		// Round trip: what we parsed must serialise and re-parse equal.
		var buf bytes.Buffer
		if err := WriteSystemText(&buf, sys); err != nil {
			t.Fatalf("reserialise: %v", err)
		}
		again, err := ReadSystemText(&buf)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if again.N() != sys.N() {
			t.Fatalf("round trip changed order %d → %d", sys.N(), again.N())
		}
	})
}

// FuzzReadSystemBinary hardens the binary parser the same way.
func FuzzReadSystemBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteSystemBinary(&seed, NewRandomSystem(3, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("LSYS"))
	f.Add([]byte("XXXX123456789"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		sys, err := ReadSystemBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if verr := sys.Validate(); verr != nil {
			t.Fatalf("parser returned inconsistent system: %v", verr)
		}
	})
}
