package mat

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%10+10) % 10
		if n < 2 {
			n = 2
		}
		m := NewDiagonallyDominant(n, seed)
		m.Set(0, 1, 0) // ensure at least one structural zero is skipped
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			return false
		}
		got, err := ReadMatrixMarket(&buf)
		if err != nil {
			return false
		}
		return got.EqualApprox(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMarketCoordinateParsing(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 2.5
2 2 -1
3 3 4
1 3 7
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 2.5 || m.At(1, 1) != -1 || m.At(0, 2) != 7 || m.At(1, 0) != 0 {
		t.Fatalf("parsed matrix wrong: %v", m)
	}
}

func TestMatrixMarketArrayParsing(t *testing.T) {
	// Column-major: [[1 3] [2 4]].
	in := `%%MatrixMarket matrix array real general
2 2
1
2
3
4
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 0) != 2 || m.At(0, 1) != 3 || m.At(1, 1) != 4 {
		t.Fatalf("array layout wrong: %v", m)
	}
}

func TestMatrixMarketRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "hello\n1 1 1\n",
		"symmetric":       "%%MatrixMarket matrix coordinate real symmetric\n1 1 1\n1 1 1\n",
		"complex":         "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1\n",
		"bad layout":      "%%MatrixMarket matrix weird real general\n1 1\n1\n",
		"oob index":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 5\n",
		"missing entries": "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 5\n",
		"bad value":       "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 x\n",
		"short array":     "%%MatrixMarket matrix array real general\n2 2\n1\n2\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
