package mat

import (
	"fmt"
	"math/rand"
)

// System is a linear system A·x = b together with (optionally) the exact
// solution used to generate b, for verification.
type System struct {
	A *Dense
	B []float64
	// X is the generating solution, or nil when unknown (e.g. loaded from a
	// file written by an external producer).
	X []float64
}

// N returns the order of the system.
func (s *System) N() int { return s.A.Rows() }

// Validate checks structural consistency of the system.
func (s *System) Validate() error {
	if s.A == nil {
		return fmt.Errorf("mat: system has nil matrix")
	}
	if s.A.Rows() != s.A.Cols() {
		return fmt.Errorf("mat: system matrix is %d×%d, want square", s.A.Rows(), s.A.Cols())
	}
	if len(s.B) != s.A.Rows() {
		return fmt.Errorf("mat: rhs length %d != order %d", len(s.B), s.A.Rows())
	}
	if s.X != nil && len(s.X) != s.A.Rows() {
		return fmt.Errorf("mat: solution length %d != order %d", len(s.X), s.A.Rows())
	}
	return nil
}

// NewDiagonallyDominant returns a deterministic, strictly diagonally
// dominant n×n matrix seeded by seed. Diagonal dominance keeps both IMe
// (which divides by diagonal entries) and unpivoted elimination numerically
// safe, and mirrors the well-conditioned inputs the paper loads from file.
func NewDiagonallyDominant(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := New(n, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		var off float64
		for j := range row {
			if j == i {
				continue
			}
			v := rng.Float64()*2 - 1 // in (-1, 1)
			row[j] = v
			if v < 0 {
				off -= v
			} else {
				off += v
			}
		}
		// Strictly dominant: |a_ii| > Σ|a_ij| with margin.
		row[i] = off + 1 + rng.Float64()
	}
	return m
}

// NewRandomSystem builds a diagonally dominant system of order n with a
// known random solution vector, deterministically from seed.
func NewRandomSystem(n int, seed int64) *System {
	a := NewDiagonallyDominant(n, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*10 - 5
	}
	return &System{A: a, B: a.MulVec(x), X: x}
}

// NewSPD returns a deterministic symmetric positive-definite matrix,
// built as Mᵀ·M + n·I from a random M.
func NewSPD(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := New(n, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.Float64()*2 - 1
		}
	}
	spd := m.Transpose().Mul(m)
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n))
	}
	return spd
}
