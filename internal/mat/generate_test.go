package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiagonallyDominantProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(abs64(seed)%20) + 2
		m := NewDiagonallyDominant(n, seed)
		for i := 0; i < n; i++ {
			var off float64
			row := m.Row(i)
			for j, v := range row {
				if j != i {
					off += math.Abs(v)
				}
			}
			if math.Abs(row[i]) <= off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := NewDiagonallyDominant(10, 42)
	b := NewDiagonallyDominant(10, 42)
	if !a.EqualApprox(b, 0) {
		t.Fatal("same seed must give identical matrices")
	}
	c := NewDiagonallyDominant(10, 43)
	if a.EqualApprox(c, 0) {
		t.Fatal("different seeds should give different matrices")
	}
}

func TestRandomSystemConsistent(t *testing.T) {
	s := NewRandomSystem(12, 7)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// b was generated as A·x, so residual of the generating solution is ~0.
	if r := RelativeResidual(s.A, s.X, s.B); r > 1e-14 {
		t.Fatalf("generating solution residual %g too large", r)
	}
}

func TestSPDSymmetric(t *testing.T) {
	m := NewSPD(8, 9)
	if !m.EqualApprox(m.Transpose(), 1e-12) {
		t.Fatal("SPD matrix not symmetric")
	}
	// Positive definite ⇒ positive diagonal and xᵀAx > 0 for a probe x.
	x := make([]float64, 8)
	for i := range x {
		x[i] = float64(i) - 3.5
	}
	if q := Dot(x, m.MulVec(x)); q <= 0 {
		t.Fatalf("xᵀAx = %g, want > 0", q)
	}
}

func TestSystemValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		sys  System
	}{
		{"nil matrix", System{B: []float64{1}}},
		{"non-square", System{A: New(2, 3), B: []float64{1, 2}}},
		{"rhs length", System{A: New(2, 2), B: []float64{1}}},
		{"sol length", System{A: New(2, 2), B: []float64{1, 2}, X: []float64{1}}},
	}
	for _, tc := range cases {
		if err := tc.sys.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
