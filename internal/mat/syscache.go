package mat

import "sync"

// sysCache memoises CachedSystem results. Generating a random system is
// O(n²) work and O(n²) memory; the experiment grid asks for the same
// (n, seed) cell from many concurrent runners, and solvers treat System
// as read-only, so one shared instance serves them all.
var sysCache sync.Map // sysKey → *System

type sysKey struct {
	n    int
	seed int64
}

// CachedSystem returns the NewRandomSystem(n, seed) instance, generating
// it at most once per process. Callers must treat the returned system —
// including A's backing storage, B, and X — as immutable; every solver in
// this repository already does (they copy what they factor). Callers that
// need private mutable state should use NewRandomSystem directly.
func CachedSystem(n int, seed int64) *System {
	key := sysKey{n: n, seed: seed}
	if v, ok := sysCache.Load(key); ok {
		return v.(*System)
	}
	// Concurrent first requests may both generate; LoadOrStore keeps one,
	// which is fine — generation is deterministic, so the copies are equal.
	v, _ := sysCache.LoadOrStore(key, NewRandomSystem(n, seed))
	return v.(*System)
}
