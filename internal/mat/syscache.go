package mat

import (
	"sync"
	"sync/atomic"
)

// sysCache memoises CachedSystem results. Generating a random system is
// O(n²) work and O(n²) memory; the experiment grid asks for the same
// (n, seed) cell from many concurrent runners, and solvers treat System
// as read-only, so one shared instance serves them all.
var sysCache sync.Map // sysKey → *sysEntry

type sysKey struct {
	n    int
	seed int64
}

// sysEntry single-flights generation: the entry is published to the map
// before the system exists, and the Once makes exactly one caller build
// it while latecomers block until it is ready.
type sysEntry struct {
	once sync.Once
	sys  *System
}

// sysGenerations counts cold-key builds; tests assert racing first
// requests cost one generation, not one per caller.
var sysGenerations atomic.Int64

// CachedSystem returns the NewRandomSystem(n, seed) instance, generating
// it at most once per process — concurrent first requests for the same
// key share a single generation (the losers wait rather than redoing the
// O(n²) build). Callers must treat the returned system — including A's
// backing storage, B, and X — as immutable; every solver in this
// repository already does (they copy what they factor). Callers that
// need private mutable state should use NewRandomSystem directly.
func CachedSystem(n int, seed int64) *System {
	key := sysKey{n: n, seed: seed}
	v, ok := sysCache.Load(key)
	if !ok {
		v, _ = sysCache.LoadOrStore(key, &sysEntry{})
	}
	e := v.(*sysEntry)
	e.once.Do(func() {
		sysGenerations.Add(1)
		e.sys = NewRandomSystem(n, seed)
	})
	return e.sys
}
