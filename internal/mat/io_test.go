package mat

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	s := NewRandomSystem(9, 3)
	var buf bytes.Buffer
	if err := WriteSystemText(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSystemText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.A.EqualApprox(s.A, 0) {
		t.Fatal("matrix changed through text round trip")
	}
	for i := range s.B {
		if got.B[i] != s.B[i] {
			t.Fatalf("rhs[%d] changed: %v != %v", i, got.B[i], s.B[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := NewRandomSystem(11, 5)
	// Poke in values that stress the encoding.
	s.A.Set(0, 1, math.Copysign(0, -1))
	s.A.Set(1, 0, math.SmallestNonzeroFloat64)
	s.B[0] = math.MaxFloat64
	var buf bytes.Buffer
	if err := WriteSystemBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSystemBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.A.EqualApprox(s.A, 0) {
		t.Fatal("matrix changed through binary round trip")
	}
	if got.B[0] != s.B[0] {
		t.Fatal("rhs changed through binary round trip")
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	s := NewRandomSystem(4, 1)
	var buf bytes.Buffer
	if err := WriteSystemBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := ReadSystemBinary(bytes.NewReader(raw[:len(raw)-4])); err == nil {
		t.Fatal("expected error on truncated payload")
	}
	bad := append([]byte("XXXX"), raw[4:]...)
	if _, err := ReadSystemBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad order":    "abc\n",
		"zero order":   "0\n",
		"short row":    "2\n1 2 3\n",
		"bad element":  "1\nnope 1\n",
		"missing rows": "3\n1 0 0 1\n",
	}
	for name, in := range cases {
		if _, err := ReadSystemText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestTextSkipsComments(t *testing.T) {
	in := "# header\n\n2\n# row comment\n2 0 2\n0 2 4\n"
	s, err := ReadSystemText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 2 || s.B[1] != 4 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestSaveLoadSystemFiles(t *testing.T) {
	dir := t.TempDir()
	s := NewRandomSystem(6, 2)
	for _, name := range []string{"sys.txt", "sys.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveSystem(path, s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadSystem(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.A.EqualApprox(s.A, 0) {
			t.Fatalf("%s: matrix not preserved", name)
		}
	}
	if _, err := LoadSystem(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		n := int(abs64(seed)%6) + 1
		s := NewRandomSystem(n, seed)
		var buf bytes.Buffer
		if err := WriteSystemBinary(&buf, s); err != nil {
			return false
		}
		got, err := ReadSystemBinary(&buf)
		if err != nil {
			return false
		}
		if !got.A.EqualApprox(s.A, 0) {
			return false
		}
		for i := range s.B {
			if got.B[i] != s.B[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
