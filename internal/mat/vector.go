package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y ← a·x + y in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale computes x ← a·x in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// VecClone returns a copy of x.
func VecClone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// InfNorm returns max|x_i|, or 0 for an empty vector.
func InfNorm(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// TwoNorm returns the Euclidean norm of x.
func TwoNorm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sub returns x - y as a new vector.
func Sub(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Sub length mismatch %d != %d", len(x), len(y)))
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}
