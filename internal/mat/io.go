package mat

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// The system file formats. The paper loads input systems from file "to
// ensure consistent input data for repetitive measurements"; we provide a
// human-readable text format and a compact binary one.
//
// Text format:
//
//	# optional comment lines
//	n
//	a11 a12 ... a1n b1
//	...
//	an1 an2 ... ann bn
//
// Binary format: magic "LSYS", uint32 version, uint64 n, then n*n float64
// (row-major A) and n float64 (b), all little-endian.

const (
	binaryMagic   = "LSYS"
	binaryVersion = 1
)

// WriteSystemText writes s in the text format.
func WriteSystemText(w io.Writer, s *System) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	n := s.N()
	fmt.Fprintf(bw, "# linear system A·x = b, order %d\n%d\n", n, n)
	for i := 0; i < n; i++ {
		row := s.A.Row(i)
		for _, v := range row {
			fmt.Fprintf(bw, "%.17g ", v)
		}
		fmt.Fprintf(bw, "%.17g\n", s.B[i])
	}
	return bw.Flush()
}

// ReadSystemText parses the text format.
func ReadSystemText(r io.Reader) (*System, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	line, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("mat: reading order: %w", err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("mat: bad order line %q", line)
	}
	a := New(n, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("mat: reading row %d: %w", i, err)
		}
		fields := strings.Fields(line)
		if len(fields) != n+1 {
			return nil, fmt.Errorf("mat: row %d has %d fields, want %d", i, len(fields), n+1)
		}
		row := a.Row(i)
		for j := 0; j < n; j++ {
			v, err := strconv.ParseFloat(fields[j], 64)
			if err != nil {
				return nil, fmt.Errorf("mat: row %d col %d: %w", i, j, err)
			}
			row[j] = v
		}
		bv, err := strconv.ParseFloat(fields[n], 64)
		if err != nil {
			return nil, fmt.Errorf("mat: row %d rhs: %w", i, err)
		}
		b[i] = bv
	}
	return &System{A: a, B: b}, nil
}

func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// WriteSystemBinary writes s in the binary format.
func WriteSystemBinary(w io.Writer, s *System) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(binaryVersion)); err != nil {
		return err
	}
	n := s.N()
	if err := binary.Write(bw, binary.LittleEndian, uint64(n)); err != nil {
		return err
	}
	buf := make([]byte, 8)
	writeF := func(v float64) error {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		_, err := bw.Write(buf)
		return err
	}
	for i := 0; i < n; i++ {
		for _, v := range s.A.Row(i) {
			if err := writeF(v); err != nil {
				return err
			}
		}
	}
	for _, v := range s.B {
		if err := writeF(v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSystemBinary parses the binary format.
func ReadSystemBinary(r io.Reader) (*System, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("mat: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("mat: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("mat: unsupported version %d", version)
	}
	var n64 uint64
	if err := binary.Read(br, binary.LittleEndian, &n64); err != nil {
		return nil, err
	}
	if n64 == 0 || n64 > 1<<20 {
		return nil, fmt.Errorf("mat: implausible order %d", n64)
	}
	n := int(n64)
	a := New(n, n)
	b := make([]float64, n)
	buf := make([]byte, 8)
	readF := func() (float64, error) {
		if _, err := io.ReadFull(br, buf); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf)), nil
	}
	for i := 0; i < n; i++ {
		row := a.Row(i)
		for j := range row {
			v, err := readF()
			if err != nil {
				return nil, fmt.Errorf("mat: reading A(%d,%d): %w", i, j, err)
			}
			row[j] = v
		}
	}
	for i := range b {
		v, err := readF()
		if err != nil {
			return nil, fmt.Errorf("mat: reading b(%d): %w", i, err)
		}
		b[i] = v
	}
	return &System{A: a, B: b}, nil
}

// SaveSystem writes s to path, choosing binary when the name ends in .bin,
// text otherwise.
func SaveSystem(path string, s *System) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		if err := WriteSystemBinary(f, s); err != nil {
			return err
		}
	} else if err := WriteSystemText(f, s); err != nil {
		return err
	}
	return f.Close()
}

// LoadSystem reads a system from path, sniffing binary vs. text by magic.
func LoadSystem(path string) (*System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(4)
	if err == nil && string(head) == binaryMagic {
		return ReadSystemBinary(br)
	}
	return ReadSystemText(br)
}
