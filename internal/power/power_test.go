package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSkylakeCalibrationValid(t *testing.T) {
	if err := Skylake8160().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsImplausible(t *testing.T) {
	cases := []Calibration{
		{},                                     // all zero
		{PkgIdle: -1, CoreActive: 1, TDP: 100}, // negative idle
		{PkgIdle: 50, CoreActive: 1, TDP: 100, DramPerByte: -1},
		{PkgIdle: 200, CoreActive: 1, TDP: 100}, // idle > TDP
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestFullLoadNearTDP anchors the calibration: 24 active cores must draw
// within a few percent of the Xeon 8160's 150 W TDP.
func TestFullLoadNearTDP(t *testing.T) {
	c := Skylake8160()
	p := c.FullLoadPkgPower(24, 1)
	if math.Abs(p-c.TDP)/c.TDP > 0.05 {
		t.Fatalf("full-load package power %.1f W not within 5%% of TDP %.1f W", p, c.TDP)
	}
}

// TestIdleSocketFraction reproduces §5.3: the nominally idle socket
// consumes 40–50% of the fully busy one ("the energy consumption of one
// socket is 50-60% lower than the other").
func TestIdleSocketFraction(t *testing.T) {
	c := Skylake8160()
	busy := c.PkgPower(24, 0) // socket 0 busy, hosts OS
	idle := c.PkgPower(0, 1)  // socket 1 idle
	frac := idle / busy
	if frac < 0.38 || frac > 0.52 {
		t.Fatalf("idle/busy socket power fraction = %.2f, want 0.40–0.50", frac)
	}
}

// TestSocketZeroNoise reproduces the paper's observation that package 0
// consistently consumes more than package 1 at equal load.
func TestSocketZeroNoise(t *testing.T) {
	c := Skylake8160()
	if c.PkgPower(12, 0) <= c.PkgPower(12, 1) {
		t.Fatal("socket 0 must draw more than socket 1 at equal load")
	}
}

func TestPkgEnergyMatchesPowerIntegral(t *testing.T) {
	c := Skylake8160()
	// Constant activity: k cores busy for the whole interval ⇒ energy must
	// equal power × time exactly.
	f := func(coresRaw uint8, secondsRaw uint8) bool {
		cores := int(coresRaw % 25)
		secs := float64(secondsRaw%100) + 1
		for socket := 0; socket < 2; socket++ {
			e := c.PkgEnergy(secs, float64(cores)*secs, socket)
			p := c.PkgPower(cores, socket)
			if math.Abs(e-p*secs) > 1e-9*e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPkgEnergyAdditive(t *testing.T) {
	// Splitting an interval must not change total energy.
	c := Skylake8160()
	f := func(aRaw, bRaw uint8) bool {
		a, b := float64(aRaw)+1, float64(bRaw)+1
		busyA, busyB := a*3, b*7
		whole := c.PkgEnergy(a+b, busyA+busyB, 0)
		parts := c.PkgEnergy(a, busyA, 0) + c.PkgEnergy(b, busyB, 0)
		return math.Abs(whole-parts) <= 1e-9*whole
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDramEnergyMonotoneInTraffic(t *testing.T) {
	c := Skylake8160()
	lo := c.DramEnergy(10, 1e9)
	hi := c.DramEnergy(10, 2e9)
	if hi <= lo {
		t.Fatal("more traffic must cost more DRAM energy")
	}
	if c.DramEnergy(10, 0) != c.DramIdle*10 {
		t.Fatal("zero traffic must cost exactly idle energy")
	}
}

func TestDramPowerAtStreamBandwidth(t *testing.T) {
	// At ~100 GB/s sustained (six DDR4-2666 channels), the DRAM domain
	// should draw a plausible 40–80 W.
	c := Skylake8160()
	p := c.DramPower(100e9)
	if p < 30 || p > 90 {
		t.Fatalf("DRAM power at 100 GB/s = %.1f W, implausible", p)
	}
}

func TestUncorePowerQuadratic(t *testing.T) {
	c := Skylake8160()
	full := c.UncorePower(24, 24)
	if full != c.UncoreLoad {
		t.Fatalf("full-socket uncore = %g, want %g", full, c.UncoreLoad)
	}
	half := c.UncorePower(12, 24)
	if half >= full/2 {
		t.Fatalf("uncore not superlinear: 12 cores %g vs 24 cores %g", half, full)
	}
	// Packing beats splitting: 24 on one socket > 12+12 across two.
	if c.UncorePower(24, 24) <= 2*c.UncorePower(12, 24) {
		t.Fatal("one packed socket should draw more uncore than a 12+12 split")
	}
	if c.UncorePower(0, 24) != 0 || c.UncorePower(5, 0) != 0 {
		t.Fatal("degenerate uncore inputs should be free")
	}
}

// TestFullVsHalfLoadEnergy reproduces the headline of Fig. 3 at the model
// level: running 2T core-seconds of work as 48 cores on 1 node for T
// seconds consumes less package energy than 24 cores on 2 nodes for T
// seconds, because the second node pays idle+noise power too.
func TestFullVsHalfLoadEnergy(t *testing.T) {
	c := Skylake8160()
	T := 100.0
	full := c.PkgEnergy(T, 24*T, 0) + c.PkgEnergy(T, 24*T, 1)    // one node, both sockets busy
	half := 2 * (c.PkgEnergy(T, 24*T, 0) + c.PkgEnergy(T, 0, 1)) // two nodes, socket 0 busy
	if full >= half {
		t.Fatalf("full-load energy %.0f J should beat half-load %.0f J", full, half)
	}
}
