// Package power models the electrical behaviour of one cluster node:
// per-package (socket) CPU power and per-DRAM-domain power, calibrated for
// the Intel Xeon 8160 "Skylake" nodes of Marconi A3.
//
// The model is deliberately *additive* so that energy can be integrated
// exactly from per-rank accounting without a global event queue:
//
//	E_pkg(t)  = P_pkgIdle·t + P_osNoise·t·[socket 0] + P_coreActive·Σ busyCoreSeconds
//	E_dram(t) = P_dramIdle·t + E_perByte·bytesTouched
//
// where busyCoreSeconds sums, over the ranks pinned to the socket, the
// virtual time each rank spent computing or communicating, and
// bytesTouched sums the memory traffic those ranks generated.
//
// Every constant is a modelling decision, not a measurement; see
// Calibration for rationale. Absolute joules therefore differ from the
// paper's, but the relative effects the paper reports (full-load vs
// half-load, socket-0 vs socket-1 imbalance, IMe vs ScaLAPACK power gaps)
// are reproduced because they depend only on ratios of these terms.
package power

import "fmt"

// CalibrationVersion stamps the semantics of the additive power model —
// the integration formulas above, not the constants (those travel inside
// the Calibration value and change cache identities by themselves). Bump
// it when the model form changes in a way the numbers cannot express, so
// persistent result stores never serve energies integrated under an older
// model.
const CalibrationVersion = "additive/v1"

// Calibration bundles the electrical constants of one node type. All
// powers are watts, energies joules, traffic bytes.
type Calibration struct {
	// PkgIdle is the power one package draws with zero active ranks but the
	// uncore (mesh, LLC, memory controllers) clocked up, as it is whenever
	// the node hosts a job. Measured Skylake-SP idle-package values with
	// active uncore sit between 40 and 70 W; the paper observed that the
	// nominally idle socket of one-socket placements still consumed 40–50%
	// of the busy one, which pins this constant near 0.4 × TDP.
	PkgIdle float64
	// CoreActive is the incremental power of one core running HPC code at
	// full utilisation (includes its slice of load-dependent uncore power).
	// Chosen so that 24 active cores + idle power ≈ the 150 W TDP.
	CoreActive float64
	// OSNoise is the extra socket-0 power from OS housekeeping, kernel
	// threads and interrupt handling, which Slurm does not migrate away.
	// This is why the paper saw package 0 consistently above package 1.
	OSNoise float64
	// TDP is the package thermal design power (for power-capping and
	// sanity checks).
	TDP float64
	// DramIdle is the background power of one socket's DRAM domain
	// (refresh + PLL for 6 channels of DDR4-2666).
	DramIdle float64
	// DramPerByte is the dynamic DRAM energy per byte moved (J/B).
	// DDR4 activation+IO costs sit around 40–80 pJ/bit ⇒ ~60 pJ/B·8 ≈
	// 0.5 nJ/B at the low end of the literature once channel overheads are
	// included. We use 0.55 nJ/B.
	DramPerByte float64
	// UncoreLoad is the mesh/LLC power at full socket occupancy beyond
	// the linear per-core term. Interconnect utilisation grows roughly
	// quadratically with the number of communicating cores, which is why
	// packing 24 ranks on one socket draws slightly more than 12+12 across
	// two — the "slight differences" the paper saw between its half-load
	// placements (Fig. 3).
	UncoreLoad float64
}

// Skylake8160 returns the calibration used throughout the reproduction.
// The derived full-load package power is PkgIdle + 24·CoreActive ≈ 149 W,
// within 1% of the 150 W TDP of the Xeon 8160.
func Skylake8160() Calibration {
	return Calibration{
		PkgIdle:     66.0,
		CoreActive:  3.4,
		OSNoise:     4.5,
		TDP:         150.0,
		DramIdle:    9.0,
		DramPerByte: 0.55e-9,
		UncoreLoad:  3.0,
	}
}

// BroadwellEP returns a calibration for the alternative 16-core Xeon
// E5-2697A v4 socket (TDP 145 W) — the portability demonstration's node
// type. Full load: 52 + 16·5.7 ≈ 143 W.
func BroadwellEP() Calibration {
	return Calibration{
		PkgIdle:     52.0,
		CoreActive:  5.7,
		OSNoise:     4.0,
		TDP:         145.0,
		DramIdle:    8.0,
		DramPerByte: 0.60e-9,
		UncoreLoad:  2.5,
	}
}

// Validate reports an error when the calibration is physically implausible.
func (c Calibration) Validate() error {
	switch {
	case c.PkgIdle <= 0 || c.CoreActive <= 0 || c.TDP <= 0:
		return fmt.Errorf("power: non-positive package constants: %+v", c)
	case c.OSNoise < 0 || c.DramIdle < 0 || c.DramPerByte < 0 || c.UncoreLoad < 0:
		return fmt.Errorf("power: negative auxiliary constants: %+v", c)
	case c.PkgIdle >= c.TDP:
		return fmt.Errorf("power: idle power %.1f W exceeds TDP %.1f W", c.PkgIdle, c.TDP)
	}
	return nil
}

// PkgPower returns the instantaneous power of a package hosting
// activeCores busy cores. socket selects whether the OS-noise term applies
// (socket 0 hosts the OS).
func (c Calibration) PkgPower(activeCores int, socket int) float64 {
	p := c.PkgIdle + float64(activeCores)*c.CoreActive
	if socket == 0 {
		p += c.OSNoise
	}
	return p
}

// PkgEnergy integrates package energy over an interval of elapsed seconds
// during which the socket's ranks accumulated busyCoreSeconds of activity.
func (c Calibration) PkgEnergy(elapsed, busyCoreSeconds float64, socket int) float64 {
	e := c.PkgIdle*elapsed + c.CoreActive*busyCoreSeconds
	if socket == 0 {
		e += c.OSNoise * elapsed
	}
	return e
}

// DramPower returns the instantaneous DRAM-domain power at the given
// sustained traffic (bytes/second).
func (c Calibration) DramPower(bytesPerSecond float64) float64 {
	return c.DramIdle + c.DramPerByte*bytesPerSecond
}

// DramEnergy integrates DRAM-domain energy over elapsed seconds during
// which bytes of traffic hit the domain.
func (c Calibration) DramEnergy(elapsed float64, bytes float64) float64 {
	return c.DramIdle*elapsed + c.DramPerByte*bytes
}

// FullLoadPkgPower returns the package power with every core of a
// coresPerSocket-core socket active — a sanity anchor against TDP.
func (c Calibration) FullLoadPkgPower(coresPerSocket, socket int) float64 {
	return c.PkgPower(coresPerSocket, socket)
}

// UncorePower returns the occupancy-dependent mesh/LLC power of a socket
// running activeCores of coresPerSocket cores: UncoreLoad scaled by the
// square of the occupancy fraction.
func (c Calibration) UncorePower(activeCores, coresPerSocket int) float64 {
	if coresPerSocket <= 0 || activeCores <= 0 {
		return 0
	}
	f := float64(activeCores) / float64(coresPerSocket)
	return c.UncoreLoad * f * f
}

// MaxCapSlowdown bounds how far RAPL frequency scaling can stretch
// execution under a package power cap.
const MaxCapSlowdown = 8.0

// SlowdownUnderCap returns the compute-time stretch factor a package
// suffers when running activeCores busy cores under a PL1 cap of limit
// watts (0 = uncapped). Dynamic power is modelled linear in frequency near
// the base clock, so meeting the cap scales frequency — and compute time —
// by the ratio of dynamic budgets; idle power cannot be capped away, so a
// cap at or below idle clamps at MaxCapSlowdown.
func (c Calibration) SlowdownUnderCap(limit float64, activeCores, socket int) float64 {
	if limit <= 0 {
		return 1
	}
	uncapped := c.PkgPower(activeCores, socket)
	if uncapped <= limit {
		return 1
	}
	idle := c.PkgPower(0, socket)
	budget := limit - idle
	need := uncapped - idle
	if budget <= need/MaxCapSlowdown {
		return MaxCapSlowdown
	}
	return need / budget
}
