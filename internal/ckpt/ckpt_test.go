package ckpt

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/scalapack"
)

func snap(k0 int) scalapack.PanelSnapshot {
	return scalapack.PanelSnapshot{K0: k0, A: mat.New(2, 2), B: []float64{1, 2}}
}

func TestStoreCompleteGenerationsOnly(t *testing.T) {
	s, err := NewStore(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Latest(); ok {
		t.Fatal("empty store reports a complete generation")
	}
	// Generation 8: all three ranks → complete.
	for r := 0; r < 3; r++ {
		s.Save(r, snap(8))
	}
	// Generation 16: torn (rank 2 crashed mid-checkpoint).
	s.Save(0, snap(16))
	s.Save(1, snap(16))
	k0, ok := s.Latest()
	if !ok || k0 != 8 {
		t.Fatalf("Latest() = (%d, %v), want the complete generation (8, true)", k0, ok)
	}
	got, ok := s.Resume(1)
	if !ok || got.K0 != 8 {
		t.Fatalf("Resume(1) = (K0=%d, %v), want snapshot of generation 8", got.K0, ok)
	}
	if gens := s.Generations(); len(gens) != 2 || gens[0] != 8 || gens[1] != 16 {
		t.Fatalf("Generations() = %v, want [8 16]", gens)
	}
	if w, b := s.Stats(); w != 5 || b <= 0 {
		t.Fatalf("Stats() = (%d, %g), want 5 writes of positive volume", w, b)
	}
	// Completing generation 16 moves the restart point forward.
	s.Save(2, snap(16))
	if k0, _ := s.Latest(); k0 != 16 {
		t.Fatalf("Latest() = %d after completing generation 16", k0)
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{BandwidthBps: 1e9, LatencyS: 1e-3}
	if got, want := m.Seconds(1e9), 1.001; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Seconds(1 GB) = %g, want %g", got, want)
	}
	if got := (CostModel{LatencyS: 5e-4}).Seconds(1e12); got != 5e-4 {
		t.Fatalf("zero bandwidth must charge latency only, got %g", got)
	}
	if _, err := NewStore(0); err == nil {
		t.Fatal("zero-size store accepted")
	}
}

// TestCheckpointRestartReplaysRun drives the whole path end to end: a
// checkpointed Pdgesv run fills the store, a second run resumes from the
// last complete generation and must reproduce the uncheckpointed solution
// exactly, while paying extra virtual time for the snapshot traffic.
func TestCheckpointRestartReplaysRun(t *testing.T) {
	const (
		n     = 48
		ranks = 4
		nb    = 8
	)
	sys := mat.NewRandomSystem(n, 3)
	solve := func(plan *scalapack.CheckpointPlan) ([]float64, float64) {
		w, err := mpi.NewWorld(ranks, mpi.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var x []float64
		err = w.Run(func(p *mpi.Proc) error {
			got, err := scalapack.Pdgesv(p, p.World(), sys, scalapack.ParallelOptions{
				BlockSize:   nb,
				ChargeCosts: true,
				Checkpoint:  plan,
			})
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				x = got
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return x, w.MaxClock()
	}

	ref, refClock := solve(nil)

	store, err := NewStore(ranks)
	if err != nil {
		t.Fatal(err)
	}
	plan := store.Plan(2, DefaultCostModel())
	first, ckptClock := solve(plan)
	for i := range ref {
		if ref[i] != first[i] {
			t.Fatalf("checkpointing perturbed the solution at %d: %g vs %g", i, first[i], ref[i])
		}
	}
	if ckptClock <= refClock {
		t.Fatalf("checkpoint traffic must cost virtual time: %g vs baseline %g", ckptClock, refClock)
	}
	k0, ok := store.Latest()
	if !ok || k0 <= 0 {
		t.Fatalf("no complete generation after a checkpointed run (k0=%d ok=%v)", k0, ok)
	}

	// Restart: resumes mid-factorisation and still lands on the same x.
	restarted, _ := solve(plan)
	for i := range ref {
		if ref[i] != restarted[i] {
			t.Fatalf("restarted run diverged at %d: %g vs %g", i, restarted[i], ref[i])
		}
	}
}

func TestPlanRejectsNothing(t *testing.T) {
	// A store Resume on an unknown rank of a complete generation must
	// report absence, not a zero snapshot a solver would try to restore.
	s, err := NewStore(1)
	if err != nil {
		t.Fatal(err)
	}
	s.Save(0, snap(4))
	if _, ok := s.Resume(7); ok {
		t.Fatal("Resume invented a snapshot for an unknown rank")
	}
	if _, err := NewStore(-1); err == nil {
		t.Fatal("negative store size accepted")
	}
}
