// Package ckpt is the in-memory checkpoint store behind ScaLAPACK's
// checkpoint/restart resilience path. The paper's IMe reference [7] frames
// IMe's checksum recovery against "the checkpoint/restart technique
// usually applied in Gaussian Elimination"; this package supplies that
// baseline: per-rank panel snapshots grouped into generations, of which
// only complete ones (every rank present) are restartable — a crash
// mid-checkpoint must not leave a torn restart state. The virtual cost of
// writing and reading snapshots is charged through a bandwidth/latency
// cost model, so checkpoint overhead shows up in the energy accounting
// exactly like the paper's other costs.
package ckpt

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/scalapack"
)

// CostModel prices one snapshot write or read: a fixed per-operation
// latency plus the payload over the storage bandwidth. The defaults model
// a node-local burst buffer, fast enough that checkpointing is cheap but
// not free.
type CostModel struct {
	// BandwidthBps is the stable-storage bandwidth in bytes/second.
	BandwidthBps float64
	// LatencyS is the fixed per-snapshot latency in seconds.
	LatencyS float64
}

// DefaultCostModel returns burst-buffer-class storage: 2 GB/s per rank
// and 1 ms of per-snapshot latency.
func DefaultCostModel() CostModel {
	return CostModel{BandwidthBps: 2e9, LatencyS: 1e-3}
}

// Seconds returns the virtual time one rank spends moving a snapshot of
// the given size.
func (m CostModel) Seconds(bytes float64) float64 {
	s := m.LatencyS
	if m.BandwidthBps > 0 {
		s += bytes / m.BandwidthBps
	}
	return s
}

// Store holds the checkpoint generations of one job. A generation is
// keyed by its resume column K0; it becomes restartable only once all
// ranks have saved into it. Safe for concurrent use by world ranks.
type Store struct {
	mu   sync.Mutex
	size int
	gens map[int]map[int]scalapack.PanelSnapshot // K0 → rank → snapshot

	writes int
	bytes  float64
}

// NewStore builds a store for a world of size ranks.
func NewStore(size int) (*Store, error) {
	if size <= 0 {
		return nil, fmt.Errorf("ckpt: world size %d must be positive", size)
	}
	return &Store{size: size, gens: make(map[int]map[int]scalapack.PanelSnapshot)}, nil
}

// Save records one rank's snapshot into the generation its K0 names.
func (s *Store) Save(rank int, snap scalapack.PanelSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gens[snap.K0]
	if g == nil {
		g = make(map[int]scalapack.PanelSnapshot, s.size)
		s.gens[snap.K0] = g
	}
	g[rank] = snap
	s.writes++
	s.bytes += snap.Bytes()
}

// latestCompleteLocked returns the highest K0 with all ranks present.
func (s *Store) latestCompleteLocked() (int, bool) {
	best, found := 0, false
	for k0, g := range s.gens {
		if len(g) == s.size && (!found || k0 > best) {
			best, found = k0, true
		}
	}
	return best, found
}

// Latest returns the resume column of the newest complete generation.
func (s *Store) Latest() (k0 int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latestCompleteLocked()
}

// Resume yields a rank's snapshot from the newest complete generation —
// the Plan hook a restarted solver calls. Incomplete generations (a crash
// landed mid-checkpoint) are never offered.
func (s *Store) Resume(rank int) (scalapack.PanelSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k0, ok := s.latestCompleteLocked()
	if !ok {
		return scalapack.PanelSnapshot{}, false
	}
	snap, ok := s.gens[k0][rank]
	return snap, ok
}

// Generations lists the stored resume columns in ascending order, marking
// nothing about completeness — diagnostics only.
func (s *Store) Generations() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.gens))
	for k0 := range s.gens {
		out = append(out, k0)
	}
	sort.Ints(out)
	return out
}

// Stats reports how many snapshot writes the store has absorbed and their
// total payload bytes — the raw material of the wasted-work accounting.
func (s *Store) Stats() (writes int, bytes float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes, s.bytes
}

// Plan wires the store and a cost model into a solver checkpoint plan
// with the given period (in panel steps).
func (s *Store) Plan(every int, cost CostModel) *scalapack.CheckpointPlan {
	return &scalapack.CheckpointPlan{
		Every:  every,
		Cost:   func(bytes float64, _ bool) float64 { return cost.Seconds(bytes) },
		Save:   s.Save,
		Resume: s.Resume,
	}
}
