package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	t.Add("alpha", 1234.5678)
	t.Add("b", 0.001234)
	t.Add("mid", 42.42)
	t.Add("zero", 0.0)
	t.Add("int", 7)
	return t
}

func TestRenderAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator line = %q", lines[2])
	}
	if len(lines) != 3+5 {
		t.Fatalf("%d lines, want 8:\n%s", len(lines), out)
	}
	// Column alignment: every data line's second column starts at the
	// same offset.
	idx := strings.Index(lines[3], "1235")
	if idx < 0 {
		t.Fatalf("big float misformatted: %q", lines[3])
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		1234.567: "1235",
		42.42:    "42.4",
		0.5:      "0.500",
		0.001234: "0.00123",
		-2000:    "-2000",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "# demo" {
		t.Fatalf("csv comment = %q", lines[0])
	}
	if lines[1] != "name,value" {
		t.Fatalf("csv header = %q", lines[1])
	}
	if len(lines) != 7 {
		t.Fatalf("%d csv lines, want 7", len(lines))
	}
}

func TestMarkdown(t *testing.T) {
	var buf bytes.Buffer
	tab := &Table{Title: "md demo", Headers: []string{"a", "b"}}
	tab.Add("x|y", 1.5)
	if err := tab.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"### md demo",
		"| a | b |",
		"| --- | --- |",
		"| x\\|y | 1.500 |", // pipes escaped
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEmptyTable(t *testing.T) {
	var buf bytes.Buffer
	empty := &Table{Headers: []string{"a"}}
	if err := empty.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a") {
		t.Fatal("headers missing")
	}
}
