// Package report renders experiment results as aligned text tables and
// CSV — the human-readable output the paper's testing framework stores
// for later review.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row, stringifying each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders measurements compactly: big numbers without noise,
// small ones with enough precision.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Markdown writes the table as a GitHub-flavoured Markdown table, with
// the title as a heading — the format EXPERIMENTS.md embeds.
func (t *Table) Markdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	row := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | "))
		return err
	}
	if err := row(t.Headers); err != nil {
		return err
	}
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	if err := row(seps); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as RFC-4180 CSV (headers first).
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if t.Title != "" {
		if err := cw.Write([]string{"# " + t.Title}); err != nil {
			return err
		}
	}
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
