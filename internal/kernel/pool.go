// Package kernel provides the cache-blocked, multicore float64 compute
// kernels the solvers' hot loops run on: a tiled rank-k update / GEMM,
// fused row-AXPY, scaled copy, dot products and a matrix-vector product,
// plus a process-wide worker pool sized by GOMAXPROCS that fans heavy
// updates out across real cores.
//
// The kernels change *wall-clock* time only. Simulated virtual time and
// energy are charged analytically (ime.LevelFlops, scalapack flop counts)
// by the callers, so every figure and duration the reproduction reports is
// unaffected by how fast the real hardware executes the arithmetic — see
// DESIGN.md, "Real parallelism vs. virtual time".
package kernel

import (
	"runtime"
	"sync"
)

// pool is the process-wide worker pool. All simulated MPI ranks share it:
// each rank is a goroutine, and whichever ranks are executing a heavy
// kernel at the same moment compete for the same physical cores, exactly
// as co-scheduled processes on a node would.
var (
	poolOnce    sync.Once
	poolWorkers int
	poolJobs    chan func()
)

func startPool() {
	poolWorkers = runtime.GOMAXPROCS(0)
	if poolWorkers <= 1 {
		return
	}
	// A deep buffer lets many ranks enqueue chunks without blocking each
	// other; workers never block on other jobs, so the pool cannot
	// deadlock.
	poolJobs = make(chan func(), 4*poolWorkers)
	for i := 0; i < poolWorkers; i++ {
		go func() {
			for job := range poolJobs {
				job()
			}
		}()
	}
}

// Workers returns the size of the process-wide pool (GOMAXPROCS at first
// use).
func Workers() int {
	poolOnce.Do(startPool)
	if poolWorkers < 1 {
		return 1
	}
	return poolWorkers
}

// ParallelFor executes fn over the index range [0,n), split into at most
// Workers() contiguous spans of at least grain indices each. The calling
// goroutine runs the last span itself and waits for the rest, so the call
// returns only when the whole range is done. Ranges smaller than two
// grains run inline with no synchronisation at all.
//
// fn must be safe to run concurrently on disjoint spans; spans never
// overlap and cover [0,n) exactly once.
func ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	poolOnce.Do(startPool)
	if grain < 1 {
		grain = 1
	}
	spans := n / grain
	if spans > poolWorkers {
		spans = poolWorkers
	}
	m := metrics.Load()
	if spans <= 1 || poolJobs == nil {
		if m != nil {
			m.calls.Inc()
			m.inline.Inc()
			m.tiles.Inc()
			m.spanLen.Observe(float64(n))
		}
		fn(0, n)
		return
	}
	if m != nil {
		m.calls.Inc()
		m.tiles.Add(float64(spans))
		m.queue.Set(float64(len(poolJobs) + spans - 1))
	}
	var wg sync.WaitGroup
	span := n / spans
	rem := n % spans
	lo := 0
	for s := 0; s < spans-1; s++ {
		sz := span
		if s < rem {
			sz++
		}
		l, h := lo, lo+sz
		lo = h
		wg.Add(1)
		if m != nil {
			m.spanLen.Observe(float64(sz))
			poolJobs <- func() {
				defer wg.Done()
				m.active.Add(1)
				fn(l, h)
				m.active.Add(-1)
			}
		} else {
			poolJobs <- func() {
				defer wg.Done()
				fn(l, h)
			}
		}
	}
	if m != nil {
		m.spanLen.Observe(float64(n - lo))
	}
	fn(lo, n)
	wg.Wait()
}
