package kernel

// Blocking parameters. The micro-kernel computes a 4×4 register tile; the
// k dimension is processed in panels of kc so the accumulating tile stays
// in registers while the A block (mc×kc) stays L2-resident and the 4-wide
// B panel (kc×4, 8 KiB) stays L1-resident across an entire block of rows.
const (
	mr = 4   // micro-tile rows
	nr = 4   // micro-tile cols
	kc = 256 // k panel depth
	mc = 128 // row block height kept hot per k panel
)

// gemmGrain is the minimum number of C rows per worker span; below it the
// fan-out overhead outweighs the arithmetic.
const gemmGrain = 16

// Gemm computes C += alpha·A·B with row-major strided operands: A is m×k
// with leading dimension lda, B is k×n with ldb, C is m×n with ldc. Rows
// fan out across the process-wide worker pool; each C element is written
// by exactly one worker, so the call is race-free. Within one k panel the
// products are accumulated in ascending k order.
func Gemm(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if m <= 0 || n <= 0 || k <= 0 || alpha == 0 {
		return
	}
	grain := gemmGrain
	if n < nr { // narrow updates parallelise poorly
		grain = 4 * gemmGrain
	}
	ParallelFor(m, grain, func(lo, hi int) {
		gemmSpan(lo, hi, n, k, alpha, a, lda, b, ldb, c, ldc)
	})
}

// gemmSpan runs the blocked update for C rows [rlo,rhi).
func gemmSpan(rlo, rhi, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for k0 := 0; k0 < k; k0 += kc {
		k1 := k0 + kc
		if k1 > k {
			k1 = k
		}
		for i0 := rlo; i0 < rhi; i0 += mc {
			i1 := i0 + mc
			if i1 > rhi {
				i1 = rhi
			}
			for j0 := 0; j0 < n; j0 += nr {
				if j0+nr <= n {
					i := i0
					for ; i+mr <= i1; i += mr {
						micro4x4(k0, k1, alpha, a, lda, i, b, ldb, j0, c, ldc)
					}
					for ; i < i1; i++ {
						micro1x4(k0, k1, alpha, a, lda, i, b, ldb, j0, c, ldc)
					}
				} else {
					gemmTail(i0, i1, j0, n, k0, k1, alpha, a, lda, b, ldb, c, ldc)
				}
			}
		}
	}
}

// micro4x4 accumulates the 4×4 tile C[i:i+4, j:j+4] += alpha·A[i:i+4, k0:k1]·B[k0:k1, j:j+4]
// in sixteen register accumulators.
func micro4x4(k0, k1 int, alpha float64, a []float64, lda, i int, b []float64, ldb, j int, c []float64, ldc int) {
	a0 := a[i*lda+k0 : i*lda+k1]
	a1 := a[(i+1)*lda+k0 : (i+1)*lda+k1]
	a2 := a[(i+2)*lda+k0 : (i+2)*lda+k1]
	a3 := a[(i+3)*lda+k0 : (i+3)*lda+k1]
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	bi := k0*ldb + j
	for kk := range a0 {
		brow := b[bi : bi+4 : bi+4]
		b0, b1, b2, b3 := brow[0], brow[1], brow[2], brow[3]
		av := a0[kk]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = a1[kk]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = a2[kk]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = a3[kk]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
		bi += ldb
	}
	ci := i*ldc + j
	crow := c[ci : ci+4 : ci+4]
	crow[0] += alpha * c00
	crow[1] += alpha * c01
	crow[2] += alpha * c02
	crow[3] += alpha * c03
	ci += ldc
	crow = c[ci : ci+4 : ci+4]
	crow[0] += alpha * c10
	crow[1] += alpha * c11
	crow[2] += alpha * c12
	crow[3] += alpha * c13
	ci += ldc
	crow = c[ci : ci+4 : ci+4]
	crow[0] += alpha * c20
	crow[1] += alpha * c21
	crow[2] += alpha * c22
	crow[3] += alpha * c23
	ci += ldc
	crow = c[ci : ci+4 : ci+4]
	crow[0] += alpha * c30
	crow[1] += alpha * c31
	crow[2] += alpha * c32
	crow[3] += alpha * c33
}

// micro1x4 handles a single leftover row against a full-width B tile.
func micro1x4(k0, k1 int, alpha float64, a []float64, lda, i int, b []float64, ldb, j int, c []float64, ldc int) {
	arow := a[i*lda+k0 : i*lda+k1]
	var c0, c1, c2, c3 float64
	bi := k0*ldb + j
	for kk := range arow {
		brow := b[bi : bi+4 : bi+4]
		av := arow[kk]
		c0 += av * brow[0]
		c1 += av * brow[1]
		c2 += av * brow[2]
		c3 += av * brow[3]
		bi += ldb
	}
	crow := c[i*ldc+j : i*ldc+j+4 : i*ldc+j+4]
	crow[0] += alpha * c0
	crow[1] += alpha * c1
	crow[2] += alpha * c2
	crow[3] += alpha * c3
}

// gemmTail covers the narrow rightmost column strip with plain dots.
func gemmTail(i0, i1, j0, j1, k0, k1 int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := i0; i < i1; i++ {
		arow := a[i*lda+k0 : i*lda+k1]
		for j := j0; j < j1; j++ {
			var s float64
			bi := k0*ldb + j
			for kk := range arow {
				s += arow[kk] * b[bi]
				bi += ldb
			}
			c[i*ldc+j] += alpha * s
		}
	}
}

// GemmScalar is the naive triple-loop reference (C += alpha·A·B, ascending
// k accumulation). It is what the seed solvers effectively ran and is kept
// as the golden reference for equivalence tests and speedup benchmarks.
func GemmScalar(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += a[i*lda+kk] * b[kk*ldb+j]
			}
			c[i*ldc+j] += alpha * s
		}
	}
}

// MatVec computes y = A·x for row-major A (m×n, leading dimension lda),
// fanning rows across the pool. Each row's dot is accumulated in strictly
// ascending order, so every y[i] is bit-identical to the scalar loop —
// callers (and the banded matrices) rely on that reproducibility.
func MatVec(m, n int, a []float64, lda int, x, y []float64) {
	ParallelFor(m, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = DotSerial(a[i*lda:i*lda+n], x)
		}
	})
}

// Dot returns Σ x[i]·y[i] with four partial accumulators (unrolled; the
// accumulation order differs from a plain ascending loop, so use DotSerial
// where bit-reproducibility against a scalar reference is required).
func Dot(x, y []float64) float64 {
	if len(x) > len(y) {
		x = x[:len(y)]
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xr := x[i : i+4 : i+4]
		yr := y[i : i+4 : i+4]
		s0 += xr[0] * yr[0]
		s1 += xr[1] * yr[1]
		s2 += xr[2] * yr[2]
		s3 += xr[3] * yr[3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// DotSerial returns Σ x[i]·y[i] in strictly ascending order — the scalar
// reference accumulation.
func DotSerial(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y[i] += alpha·x[i] element-wise over min(len(x), len(y))
// entries. Each element is updated independently (one multiply, one add),
// so the result is bit-identical to the plain loop regardless of
// unrolling — this is the fused row-AXPY of the IMe fundamental formula.
func Axpy(alpha float64, x, y []float64) {
	if len(x) > len(y) {
		x = x[:len(y)]
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xr := x[i : i+4 : i+4]
		yr := y[i : i+4 : i+4]
		yr[0] += alpha * xr[0]
		yr[1] += alpha * xr[1]
		yr[2] += alpha * xr[2]
		yr[3] += alpha * xr[3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place, element-wise — the pivot-row
// normalisation of both solvers. Bit-identical to the plain loop.
func Scale(alpha float64, x []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xr := x[i : i+4 : i+4]
		xr[0] *= alpha
		xr[1] *= alpha
		xr[2] *= alpha
		xr[3] *= alpha
	}
	for ; i < len(x); i++ {
		x[i] *= alpha
	}
}

// ScaledCopy sets dst[i] = alpha·src[i] over min(len(src), len(dst))
// entries — the diagonal-scaling copy of the solvers' table
// initialisation. Bit-identical to the plain loop.
func ScaledCopy(alpha float64, src, dst []float64) {
	if len(src) > len(dst) {
		src = src[:len(dst)]
	}
	i := 0
	for ; i+4 <= len(src); i += 4 {
		sr := src[i : i+4 : i+4]
		dr := dst[i : i+4 : i+4]
		dr[0] = alpha * sr[0]
		dr[1] = alpha * sr[1]
		dr[2] = alpha * sr[2]
		dr[3] = alpha * sr[3]
	}
	for ; i < len(src); i++ {
		dst[i] = alpha * src[i]
	}
}
