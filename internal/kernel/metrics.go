package kernel

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// poolMetrics is the instrument set the worker pool reports into. It is
// resolved once in EnableMetrics so the hot path does no registry lookups.
type poolMetrics struct {
	calls   *telemetry.Counter // ParallelFor invocations
	inline  *telemetry.Counter // invocations that ran without the pool
	tiles   *telemetry.Counter // work spans (tiles) executed
	queue   *telemetry.Gauge   // jobs buffered in the pool channel
	active  *telemetry.Gauge   // workers currently running a job
	spanLen *telemetry.Histogram
}

// metrics is nil until EnableMetrics; the disabled fast path is a single
// atomic pointer load.
var metrics atomic.Pointer[poolMetrics]

// EnableMetrics registers the worker-pool instruments with reg and turns
// pool instrumentation on process-wide. Safe to call more than once; the
// latest registry wins.
func EnableMetrics(reg *telemetry.Registry) {
	if reg == nil {
		metrics.Store(nil)
		return
	}
	m := &poolMetrics{
		calls:  reg.Counter("kernel_parallel_for_total", "ParallelFor invocations."),
		inline: reg.Counter("kernel_parallel_for_inline_total", "ParallelFor invocations executed inline (range too small for the pool)."),
		tiles:  reg.Counter("kernel_pool_tiles_total", "Work spans (tiles) executed by the kernel worker pool, including the caller's own span."),
		queue:  reg.Gauge("kernel_pool_queue_depth", "Jobs buffered in the pool channel, sampled at enqueue time."),
		active: reg.Gauge("kernel_pool_active_workers", "Pool workers currently executing a job (caller's inline span excluded)."),
		spanLen: reg.Histogram("kernel_pool_span_indices", "Indices per work span handed to one worker.",
			[]float64{64, 256, 1024, 4096, 16384, 65536}),
	}
	reg.Gauge("kernel_pool_workers", "Size of the process-wide worker pool.").Set(float64(Workers()))
	metrics.Store(m)
}
