package kernel

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// TestGemmMatchesScalar checks the blocked multicore GEMM against the
// naive triple-loop reference within 1e-12 relative error, across shapes
// that exercise every tail path (odd m, odd n, k crossing the kc panel
// boundary, strided C).
func TestGemmMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ m, n, k int }{
		{1, 1, 1}, {3, 5, 7}, {4, 4, 4}, {5, 4, 9}, {17, 13, 300},
		{64, 64, 64}, {33, 2, 257}, {2, 33, 300}, {70, 70, 520},
	} {
		a := randSlice(rng, tc.m*tc.k)
		b := randSlice(rng, tc.k*tc.n)
		got := randSlice(rng, tc.m*tc.n)
		want := append([]float64(nil), got...)
		for _, alpha := range []float64{1, -1, 0.5} {
			Gemm(tc.m, tc.n, tc.k, alpha, a, tc.k, b, tc.n, got, tc.n)
			GemmScalar(tc.m, tc.n, tc.k, alpha, a, tc.k, b, tc.n, want, tc.n)
			for i := range got {
				if diff := math.Abs(got[i] - want[i]); diff > 1e-12*(1+math.Abs(want[i])) {
					t.Fatalf("m=%d n=%d k=%d alpha=%g: C[%d] = %g, scalar %g",
						tc.m, tc.n, tc.k, alpha, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGemmStrided checks that the kernels honour leading dimensions larger
// than the logical width (matrix views).
func TestGemmStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n, k := 9, 7, 11
	lda, ldb, ldc := k+3, n+2, n+5
	a := randSlice(rng, m*lda)
	b := randSlice(rng, k*ldb)
	got := randSlice(rng, m*ldc)
	want := append([]float64(nil), got...)
	Gemm(m, n, k, -1, a, lda, b, ldb, got, ldc)
	GemmScalar(m, n, k, -1, a, lda, b, ldb, want, ldc)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("strided C[%d] = %g, scalar %g", i, got[i], want[i])
		}
	}
	// Padding columns outside the logical view must be untouched.
	for i := 0; i < m; i++ {
		for j := n; j < ldc; j++ {
			if got[i*ldc+j] != want[i*ldc+j] {
				t.Fatalf("padding (%d,%d) was modified", i, j)
			}
		}
	}
}

// TestGemmSinglePanelBitIdentical: for k ≤ kc the blocked kernel
// accumulates in the same ascending-k order as the scalar reference and
// applies alpha the same way, so full-tile results are bit-identical.
func TestGemmSinglePanelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n, k := 16, 16, 64 // multiples of the tile: no tail paths
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	got := make([]float64, m*n)
	want := make([]float64, m*n)
	Gemm(m, n, k, -1, a, k, b, n, got, n)
	GemmScalar(m, n, k, -1, a, k, b, n, want, n)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %x, scalar %x (not bit-identical)", i, got[i], want[i])
		}
	}
}

func TestAxpyBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 3, 4, 7, 129} {
		x := randSlice(rng, n)
		got := randSlice(rng, n)
		want := append([]float64(nil), got...)
		m := rng.NormFloat64()
		Axpy(-m, x, got)
		for i := range want {
			want[i] -= m * x[i]
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: y[%d] = %x, reference %x", n, i, got[i], want[i])
			}
		}
	}
}

func TestScaledCopyBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 5, 64, 101} {
		src := randSlice(rng, n)
		got := make([]float64, n)
		alpha := rng.NormFloat64()
		ScaledCopy(alpha, src, got)
		for i := range got {
			if want := alpha * src[i]; got[i] != want {
				t.Fatalf("n=%d: dst[%d] = %x, want %x", n, i, got[i], want)
			}
		}
	}
}

func TestDotMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 4, 7, 1024} {
		x, y := randSlice(rng, n), randSlice(rng, n)
		want := DotSerial(x, y)
		if got := Dot(x, y); math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("n=%d: dot %g, serial %g", n, got, want)
		}
	}
}

func TestMatVecMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, n := 37, 53
	a := randSlice(rng, m*n)
	x := randSlice(rng, n)
	y := make([]float64, m)
	MatVec(m, n, a, n, x, y)
	for i := 0; i < m; i++ {
		want := DotSerial(a[i*n:(i+1)*n], x)
		if math.Abs(y[i]-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("y[%d] = %g, reference %g", i, y[i], want)
		}
	}
}

// TestParallelForCoversRangeExactlyOnce drives the pool from several
// goroutines at once; every index must be visited exactly once per call.
func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000, 4097} {
		counts := make([]int32, n)
		ParallelFor(n, 3, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("bad span [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

// TestGemmConcurrentCallers runs many GEMMs through the shared pool
// concurrently (as simulated MPI ranks do) and checks each result — this
// is the kernel-level race test backing the -race CI job.
func TestGemmConcurrentCallers(t *testing.T) {
	const callers = 8
	const m, n, k = 40, 40, 96
	rng := rand.New(rand.NewSource(8))
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	want := make([]float64, m*n)
	GemmScalar(m, n, k, 1, a, k, b, n, want, n)
	done := make(chan error, callers)
	for g := 0; g < callers; g++ {
		go func() {
			got := make([]float64, m*n)
			Gemm(m, n, k, 1, a, k, b, n, got, n)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
					done <- errIndex(i)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < callers; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errIndex int

func (e errIndex) Error() string { return "concurrent GEMM diverged" }
