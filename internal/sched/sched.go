// Package sched is the energy-aware multi-tenant batch scheduler: many
// concurrent jobs on a shared simulated fleet of Marconi A3 nodes. It
// turns the paper's one-job-at-a-time measurements into the system-level
// setting its machine actually runs — a Slurm-managed cluster where
// site-wide energy accounting and a power budget decide what starts
// (the EAR-style fleet view of the CEEC experience report).
//
// The scheduler is a virtual-time discrete-event simulation:
//
//   - a priority + FCFS job queue with EASY backfill: the head job holds
//     a reservation (the earliest instant enough nodes AND power free
//     up), and later jobs may jump it only when they cannot delay it;
//   - per-job placement policy via the advisor stack: each job's
//     feasible (algorithm, placement) shapes are priced by the learned
//     surrogate (in-envelope) or the exact analytic model, and the shape
//     optimising the job's objective is chosen;
//   - a cluster-wide power budget that admission-controls starts using
//     the predicted average draw of running jobs, so the instantaneous
//     fleet power never exceeds the budget;
//   - per-job energy accounting charged from the RAPL-calibrated model,
//     including the wasted energy of crashed attempts;
//   - the fault plane composed in: an MTBF schedule crashes running
//     jobs, which are requeued with Shifted() schedules (the PR-5
//     checkpoint/restart charging rule: virtual time and energy are
//     charged up to the failure).
//
// Determinism is load-bearing: candidate predictions are precomputed on
// the worker pool in index order (grid.Map), the event loop is serial
// with totally ordered events, and every float is accumulated in a fixed
// order — so the same seed and workload produce byte-identical reports,
// accounting and Perfetto timelines at any -j and across process
// restarts resuming from the experiment store.
package sched

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/slurm"
	"repro/internal/store"
	"repro/internal/surrogate"
	"repro/internal/telemetry"
)

// Policy selects the scheduling discipline.
type Policy int

const (
	// EnergyAware is the full scheduler: advisor-chosen shapes per the
	// job's objective, EASY backfill, power-budget admission control.
	EnergyAware Policy = iota
	// FCFSBaseline is the energy-oblivious yardstick: every job takes
	// its fastest shape, the queue is plain first-come-first-served
	// (no backfill), objectives are ignored. The power budget — a site
	// constraint, not a policy choice — still gates starts when set.
	FCFSBaseline
)

func (p Policy) String() string {
	if p == FCFSBaseline {
		return "fcfs"
	}
	return "energy-aware"
}

// ParsePolicy is the inverse of Policy.String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "energy-aware":
		return EnergyAware, nil
	case "fcfs":
		return FCFSBaseline, nil
	}
	return 0, fmt.Errorf("sched: unknown policy %q (want energy-aware or fcfs)", s)
}

// Config sizes the simulated fleet and selects the policy. The zero
// value schedules the full Marconi A3 fleet, energy-aware, unbudgeted,
// fault-free.
type Config struct {
	// Nodes is the fleet size (default: the full Marconi A3, 3188).
	Nodes int
	// PowerBudgetW caps the instantaneous fleet power (sum of running
	// jobs' predicted average draw). <= 0 means unlimited.
	PowerBudgetW float64
	// Policy selects energy-aware scheduling or the FCFS baseline.
	Policy Policy
	// MTBF enables the fault plane: mean time between rank crashes
	// within each running job's world, in virtual seconds (the PR-5
	// resilience semantics). 0 disables crashes.
	MTBF float64
	// FaultSeed drives the per-job crash schedules (with Workload.Seed
	// fixed, varying FaultSeed varies only the faults).
	FaultSeed int64
	// MaxRequeues bounds crash-driven requeues per job (default 32).
	MaxRequeues int
	// Workers is the candidate-prediction worker budget (default
	// GOMAXPROCS). It affects wall time only, never the schedule.
	Workers int
	// Surrogate, when non-nil, prices in-envelope candidates in O(µs).
	Surrogate *surrogate.Predictor
	// Store, when non-nil, memoizes exact candidate predictions in the
	// experiment store: a restarted fleet resumes them for free and
	// byte-identically.
	Store *store.Store
	// Registry, when non-nil, receives fleet gauges and counters.
	Registry *telemetry.Registry
	// Trace builds the Perfetto fleet timeline (one track per node).
	Trace bool
}

// Outcome is one simulated fleet execution.
type Outcome struct {
	Report *Report
	// Trace is the per-node fleet timeline (nil unless Config.Trace).
	Trace *telemetry.Trace
	// StoreHits/StoreComputed count candidate predictions resolved from
	// vs appended to the experiment store. They live outside the Report
	// so a store-resuming rerun stays byte-identical.
	StoreHits     int
	StoreComputed int
}

// jobState tracks one job through the event loop.
type jobState struct {
	parsedJob
	idx      int
	cand     candidate
	queueS   float64 // current queue-entry time (submit, or requeue after crash)
	startS   float64 // first attempt start
	attStart float64 // current attempt start
	endS     float64
	energyJ  float64
	wastedJ  float64
	attempts int
	crashes  int
	started  bool
	done     bool
	failed   bool
	curCrash bool
	curEndS  float64 // scheduled end of the current attempt
	inj      *fault.Injector
	alloc    *slurm.Allocation
	backfill bool
}

// attemptRec feeds the per-node Perfetto timeline.
type attemptRec struct {
	jobIdx  int
	attempt int
	startS  float64
	endS    float64
	crashed bool
	nodes   []int
}

// event kinds: attempt ends free resources before same-instant arrivals
// queue, so a completion's nodes are visible to a job submitted at the
// exact same virtual instant.
const (
	evEnd = iota
	evArrive
)

type event struct {
	t    float64
	kind int
	job  int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].job < h[j].job
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// sim is the event-loop state.
type sim struct {
	cfg       Config
	pred      *predictor
	jobs      []*jobState
	fleet     *slurm.Scheduler
	events    eventHeap
	queue     []*jobState
	running   map[int]*jobState // idx -> running job
	attempts  []attemptRec
	backfills int

	// integrals
	prevT       float64
	busyNodes   int
	nodeSeconds float64
	strandedJs  float64 // ∫(budget - power)dt while jobs queued
	peakPowerW  float64
	series      []PowerPoint
}

// Simulate runs the workload to completion and returns the fleet report
// (and timeline). It is a pure function of (cfg minus Workers/Registry/
// Trace, workload): same inputs, byte-identical outputs.
func Simulate(cfg Config, w Workload) (*Outcome, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = cluster.MarconiA3().TotalNodes
	}
	if cfg.MaxRequeues <= 0 {
		cfg.MaxRequeues = 32
	}
	if len(w.Jobs) == 0 {
		return nil, fmt.Errorf("sched: empty workload")
	}

	// Parse and validate every job up front.
	parsed := make([]parsedJob, len(w.Jobs))
	for i, spec := range w.Jobs {
		p, err := parseJob(i, spec)
		if err != nil {
			return nil, err
		}
		parsed[i] = p
	}

	// Price every job's candidate shapes on the worker pool. Results
	// come back in index order regardless of -j.
	pred := newPredictor(cfg.Surrogate, cfg.Store)
	cands, err := predictAll(grid.New(cfg.Workers), pred, parsed, cfg.Nodes, cfg.PowerBudgetW)
	if err != nil {
		return nil, err
	}

	// The fleet allocator: a Marconi A3 machine resized to the fleet.
	spec := *cluster.MarconiA3()
	spec.TotalNodes = cfg.Nodes
	fleet, err := slurm.NewScheduler(&spec)
	if err != nil {
		return nil, err
	}

	s := &sim{cfg: cfg, pred: pred, fleet: fleet, running: make(map[int]*jobState)}
	for i := range parsed {
		j := &jobState{parsedJob: parsed[i], idx: i, cand: pick(cands[i], parsed[i].obj, cfg.Policy == FCFSBaseline)}
		s.jobs = append(s.jobs, j)
		heap.Push(&s.events, event{t: j.spec.SubmitS, kind: evArrive, job: i})
	}

	// The event loop: drain all events at one instant, then run a
	// scheduling pass at that instant.
	for s.events.Len() > 0 {
		t := s.events[0].t
		s.advanceTo(t)
		for s.events.Len() > 0 && s.events[0].t == t {
			ev := heap.Pop(&s.events).(event)
			j := s.jobs[ev.job]
			switch ev.kind {
			case evArrive:
				j.queueS = t
				s.queue = append(s.queue, j)
			case evEnd:
				if j.curCrash {
					if err := s.crash(j, t); err != nil {
						return nil, err
					}
				} else {
					if err := s.complete(j, t); err != nil {
						return nil, err
					}
				}
			}
		}
		if err := s.schedulePass(t); err != nil {
			return nil, err
		}
		s.recordPower(t)
	}

	return s.outcome(w)
}

// advanceTo integrates the interval [prevT, t): node-seconds for
// utilisation and stranded power (unused budget headroom while jobs
// were waiting).
func (s *sim) advanceTo(t float64) {
	dt := t - s.prevT
	if dt > 0 {
		s.nodeSeconds += float64(s.busyNodes) * dt
		if s.cfg.PowerBudgetW > 0 && len(s.queue) > 0 {
			s.strandedJs += (s.cfg.PowerBudgetW - s.powerSum()) * dt
		}
	}
	s.prevT = t
}

// powerSum is the instantaneous fleet power: the predicted average draw
// of every running job, summed in ascending job order so the float
// accumulation is identical on every run.
func (s *sim) powerSum() float64 {
	idxs := make([]int, 0, len(s.running))
	for i := range s.running {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var p float64
	for _, i := range idxs {
		p += s.running[i].cand.powerW
	}
	return p
}

// fits reports whether the job can start now: enough idle nodes and
// enough power headroom under the budget.
func (s *sim) fits(j *jobState) bool {
	if j.cand.nodes > s.fleet.FreeNodes() {
		return false
	}
	if s.cfg.PowerBudgetW > 0 && s.powerSum()+j.cand.powerW > s.cfg.PowerBudgetW {
		return false
	}
	return true
}

// queueLess orders the wait queue: higher priority first, then FCFS by
// queue-entry time, then submission order.
func queueLess(a, b *jobState) bool {
	if a.spec.Priority != b.spec.Priority {
		return a.spec.Priority > b.spec.Priority
	}
	if a.queueS != b.queueS {
		return a.queueS < b.queueS
	}
	return a.idx < b.idx
}

// schedulePass starts every job the policy admits at instant t.
func (s *sim) schedulePass(t float64) error {
	sort.Slice(s.queue, func(i, k int) bool { return queueLess(s.queue[i], s.queue[k]) })

	// FCFS prefix: start head jobs while they fit.
	for len(s.queue) > 0 && s.fits(s.queue[0]) {
		if err := s.start(s.queue[0], t, false); err != nil {
			return err
		}
		s.queue = s.queue[1:]
	}
	if len(s.queue) == 0 || s.cfg.Policy == FCFSBaseline {
		return nil
	}

	// EASY backfill: the blocked head holds a reservation at the
	// earliest instant enough nodes AND power free up; later jobs may
	// start now only if they cannot delay it — they finish before the
	// reservation, or they fit inside the slack that remains at the
	// reservation even with the head job started.
	head := s.queue[0]
	shadowT, extraNodes, extraPowerW := s.reservation(head, t)
	for i := 1; i < len(s.queue); {
		j := s.queue[i]
		if !s.fits(j) {
			i++
			continue
		}
		endJ := t + s.attemptSpan(j)
		finishesFirst := endJ <= shadowT
		fitsSlack := j.cand.nodes <= extraNodes &&
			(s.cfg.PowerBudgetW <= 0 || j.cand.powerW <= extraPowerW)
		if !finishesFirst && !fitsSlack {
			i++
			continue
		}
		if err := s.start(j, t, true); err != nil {
			return err
		}
		if !finishesFirst {
			extraNodes -= j.cand.nodes
			extraPowerW -= j.cand.powerW
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
	}
	return nil
}

// reservation computes the head job's shadow time: walk running jobs'
// end events in time order, accumulating freed nodes and power, until
// the head fits. Returns the shadow instant and the node/power slack
// left at that instant after reserving the head.
func (s *sim) reservation(head *jobState, t float64) (shadowT float64, extraNodes int, extraPowerW float64) {
	type rel struct {
		endS   float64
		idx    int
		nodes  int
		powerW float64
	}
	rels := make([]rel, 0, len(s.running))
	for i, j := range s.running {
		rels = append(rels, rel{endS: j.curEndS, idx: i, nodes: j.cand.nodes, powerW: j.cand.powerW})
	}
	sort.Slice(rels, func(a, b int) bool {
		if rels[a].endS != rels[b].endS {
			return rels[a].endS < rels[b].endS
		}
		return rels[a].idx < rels[b].idx
	})
	avail := s.fleet.FreeNodes()
	pw := s.powerSum()
	for _, r := range rels {
		avail += r.nodes
		pw -= r.powerW
		if avail >= head.cand.nodes && (s.cfg.PowerBudgetW <= 0 || s.cfg.PowerBudgetW-pw >= head.cand.powerW) {
			extraPowerW = s.cfg.PowerBudgetW - pw - head.cand.powerW
			return r.endS, avail - head.cand.nodes, extraPowerW
		}
	}
	// Unreachable when the head was validated feasible on an idle
	// fleet; treat as "no reservation": everything may backfill.
	return inf(), s.cfg.Nodes, s.cfg.PowerBudgetW
}

func inf() float64 { return 1e308 }

// attemptSpan is the virtual length the job's NEXT attempt would run if
// started now: its predicted duration, cut short by the first pending
// crash in its fault schedule.
func (s *sim) attemptSpan(j *jobState) float64 {
	if s.cfg.MTBF <= 0 {
		return j.cand.durationS
	}
	inj := j.inj
	if inj == nil {
		// Not started yet: the schedule it would get on start.
		var err error
		inj, err = s.newInjector(j)
		if err != nil {
			return j.cand.durationS
		}
	}
	if ct := firstCrash(inj); ct > 0 && ct < j.cand.durationS {
		return ct
	}
	return j.cand.durationS
}

// newInjector builds the job's fault schedule: seeded from the
// workload's fault seed and the job index, over the job's world size,
// bounded by its predicted duration.
func (s *sim) newInjector(j *jobState) (*fault.Injector, error) {
	return fault.New(fault.Config{
		Seed:    jobFaultSeed(s.cfg.FaultSeed, j.idx),
		MTBF:    s.cfg.MTBF,
		Horizon: j.cand.durationS,
	}, j.spec.Ranks)
}

// firstCrash is the earliest crash instant in the schedule (0 = none).
func firstCrash(inj *fault.Injector) float64 {
	first := 0.0
	for _, ev := range inj.Events() {
		if first == 0 || ev.Time < first {
			first = ev.Time
		}
	}
	return first
}

// start grants nodes and schedules the attempt's end (or crash).
func (s *sim) start(j *jobState, t float64, backfilled bool) error {
	alloc, err := s.fleet.Submit(slurm.JobSpec{Name: j.spec.Name, Ranks: j.spec.Ranks, Placement: j.cand.pl})
	if err != nil {
		return fmt.Errorf("sched: job %s: %w", j.spec.Name, err)
	}
	j.alloc = alloc
	j.attempts++
	j.attStart = t
	if !j.started {
		j.started = true
		j.startS = t
		j.backfill = backfilled
	}
	if backfilled {
		s.backfills++
	}
	if s.cfg.MTBF > 0 && j.inj == nil {
		if j.inj, err = s.newInjector(j); err != nil {
			return err
		}
	}
	end := t + j.cand.durationS
	j.curCrash = false
	if j.inj != nil {
		if ct := firstCrash(j.inj); ct > 0 && ct < j.cand.durationS {
			end = t + ct
			j.curCrash = true
		}
	}
	j.curEndS = end
	s.running[j.idx] = j
	s.busyNodes += j.cand.nodes
	if p := s.powerSum(); p > s.peakPowerW {
		s.peakPowerW = p
	}
	heap.Push(&s.events, event{t: end, kind: evEnd, job: j.idx})
	s.attempts = append(s.attempts, attemptRec{
		jobIdx: j.idx, attempt: j.attempts, startS: t, endS: end,
		crashed: j.curCrash, nodes: alloc.Nodes,
	})
	return nil
}

// stop releases the attempt's nodes and charges its energy.
func (s *sim) stop(j *jobState, t float64) error {
	if err := s.fleet.Release(j.alloc.JobID); err != nil {
		return err
	}
	delete(s.running, j.idx)
	s.busyNodes -= j.cand.nodes
	j.energyJ += j.cand.powerW * (t - j.attStart)
	j.alloc = nil
	return nil
}

// complete finishes the job.
func (s *sim) complete(j *jobState, t float64) error {
	if err := s.stop(j, t); err != nil {
		return err
	}
	j.endS = t
	j.done = true
	return nil
}

// crash requeues a crashed attempt with a Shifted() fault schedule: the
// events that fired are dropped, the rest move earlier — the same rule
// checkpoint/restart uses to map one absolute schedule onto successive
// restart segments. The failed attempt's energy is charged in full up
// to the failure (the PR-5 charging rule).
func (s *sim) crash(j *jobState, t float64) error {
	elapsed := t - j.attStart
	wasted := j.cand.powerW * elapsed
	if err := s.stop(j, t); err != nil {
		return err
	}
	j.wastedJ += wasted
	j.crashes++
	var err error
	if j.inj, err = j.inj.Shifted(elapsed); err != nil {
		return fmt.Errorf("sched: job %s: shift fault schedule: %w", j.spec.Name, err)
	}
	if j.attempts > s.cfg.MaxRequeues {
		j.endS = t
		j.failed = true
		return nil
	}
	j.queueS = t
	s.queue = append(s.queue, j)
	return nil
}

// recordPower appends a power-series point when the level changed.
func (s *sim) recordPower(t float64) {
	p := s.powerSum()
	if n := len(s.series); n > 0 && s.series[n-1].TimeS == t {
		s.series[n-1].PowerW = p
		s.series[n-1].NodesBusy = s.busyNodes
		s.series[n-1].Queued = len(s.queue)
		return
	}
	if n := len(s.series); n > 0 && s.series[n-1].PowerW == p &&
		s.series[n-1].NodesBusy == s.busyNodes && s.series[n-1].Queued == len(s.queue) {
		return
	}
	s.series = append(s.series, PowerPoint{TimeS: t, PowerW: p, NodesBusy: s.busyNodes, Queued: len(s.queue)})
}
