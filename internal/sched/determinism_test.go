package sched

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
	"repro/internal/surrogate"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata golden files")

// goldenWorkload is the reference fleet run the golden files pin: 48
// synthetic jobs on 128 nodes under a binding power budget with faults.
func goldenWorkload() (Config, Workload) {
	cfg := Config{
		Nodes:        128,
		PowerBudgetW: 30000,
		MTBF:         40,
		FaultSeed:    7,
		Trace:        true,
	}
	return cfg, Synthetic(2026, 48)
}

func marshalReport(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func traceBytes(t *testing.T, o *Outcome) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := o.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenFleetReport pins the canonical report and timeline bytes of
// the reference run. Any change to scheduling order, accounting, float
// summation order or JSON rendering shows up as a diff here.
func TestGoldenFleetReport(t *testing.T) {
	cfg, w := goldenWorkload()
	o, err := Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	repB := marshalReport(t, o.Report)
	trB := traceBytes(t, o)

	repPath := filepath.Join("testdata", "fleet_report.golden.json")
	trPath := filepath.Join("testdata", "fleet_trace.golden.json")
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(repPath, repB, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(trPath, trB, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantRep, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatalf("%v (run with -update-goldens to create)", err)
	}
	if !bytes.Equal(repB, wantRep) {
		t.Errorf("report drifted from golden %s (digest %s); run -update-goldens if intended",
			repPath, o.Report.ScheduleDigest)
	}
	wantTr, err := os.ReadFile(trPath)
	if err != nil {
		t.Fatalf("%v (run with -update-goldens to create)", err)
	}
	if !bytes.Equal(trB, wantTr) {
		t.Errorf("fleet timeline drifted from golden %s", trPath)
	}
}

// TestDeterminismAcrossWorkers: same seed and workload must produce
// byte-identical reports and timelines at every worker count.
func TestDeterminismAcrossWorkers(t *testing.T) {
	cfg, w := goldenWorkload()
	cfg.Workers = 1
	ref, err := Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	refRep := marshalReport(t, ref.Report)
	refTr := traceBytes(t, ref)
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		o, err := Simulate(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		if o.Report.ScheduleDigest != ref.Report.ScheduleDigest {
			t.Fatalf("-j %d digest %s != -j 1 digest %s", workers,
				o.Report.ScheduleDigest, ref.Report.ScheduleDigest)
		}
		if !bytes.Equal(marshalReport(t, o.Report), refRep) {
			t.Fatalf("-j %d report bytes differ from -j 1", workers)
		}
		if !bytes.Equal(traceBytes(t, o), refTr) {
			t.Fatalf("-j %d timeline bytes differ from -j 1", workers)
		}
		// Per-job energies agree to well under 1e-9 J (they are the same
		// floats, but assert the contract the issue states).
		for i := range o.Report.Jobs {
			d := o.Report.Jobs[i].EnergyJ - ref.Report.Jobs[i].EnergyJ
			if d > 1e-9 || d < -1e-9 {
				t.Fatalf("job %d energy differs by %g J", i, d)
			}
		}
	}
}

// TestDeterminismAcrossStoreRestart: a fleet resuming predictions from a
// warm experiment store produces byte-identical artifacts, computes
// nothing, and the store itself dedupes (same record count after).
func TestDeterminismAcrossStoreRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *store.Store {
		st, err := store.Open(filepath.Join(dir, "fleet.store"))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cfg, w := goldenWorkload()
	cfg.Workers = 1 // store appends happen on the worker pool; keep the cold pass serial

	cold := open()
	cfg.Store = cold
	first, err := Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if first.StoreComputed == 0 {
		t.Fatal("cold run computed nothing through the store")
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm := open()
	defer warm.Close()
	cfg.Store = warm
	cfg.Workers = 8 // resumed run may be parallel; results must not move
	second, err := Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if second.StoreComputed != 0 {
		t.Fatalf("warm run recomputed %d predictions", second.StoreComputed)
	}
	if second.StoreHits == 0 {
		t.Fatal("warm run resolved nothing from the store")
	}
	if !bytes.Equal(marshalReport(t, first.Report), marshalReport(t, second.Report)) {
		t.Fatal("store-resumed report bytes differ from cold run")
	}
	if !bytes.Equal(traceBytes(t, first), traceBytes(t, second)) {
		t.Fatal("store-resumed timeline bytes differ from cold run")
	}

	// No-store control: the store must never change results, only speed.
	cfg.Store = nil
	bare, err := Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalReport(t, bare.Report), marshalReport(t, first.Report)) {
		t.Fatal("store changed the schedule")
	}
}

// TestSurrogateDeterminism: the surrogate path is deterministic too —
// same seed, same bytes across worker counts (the surrogate changes
// WHICH shapes are picked vs the analytic chain, but never varies
// run-to-run).
func TestSurrogateDeterminism(t *testing.T) {
	sur, err := surrogate.Default()
	if err != nil {
		t.Fatal(err)
	}
	cfg, w := goldenWorkload()
	cfg.Surrogate = sur
	cfg.Workers = 1
	a, err := Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 6
	b, err := Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalReport(t, a.Report), marshalReport(t, b.Report)) {
		t.Fatal("surrogate-priced fleet is worker-count dependent")
	}
	if !bytes.Equal(traceBytes(t, a), traceBytes(t, b)) {
		t.Fatal("surrogate-priced timeline is worker-count dependent")
	}
}
