package sched

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
)

// maxOrder bounds accepted matrix orders, matching the serving layer.
const maxOrder = 1 << 20

// JobSpec is one submitted job: a linear-system solve plus batch
// metadata. Algorithm and Placement default to "auto" (the scheduler's
// placement policy decides per the job's objective); fixing either pins
// that axis and the policy optimises over the rest.
type JobSpec struct {
	Name     string  `json:"name"`
	Tenant   string  `json:"tenant,omitempty"`
	SubmitS  float64 `json:"submit_s"`
	Priority int     `json:"priority,omitempty"`
	// N is the matrix order, Ranks the MPI world size.
	N     int `json:"n"`
	Ranks int `json:"ranks"`
	// Algorithm: "", "auto", "IMe" or "ScaLAPACK".
	Algorithm string `json:"algorithm,omitempty"`
	// Placement: "", "auto", or a cluster placement name.
	Placement string `json:"placement,omitempty"`
	// Objective: "", or an advisor objective (min-energy, min-time,
	// max-gflops-per-watt). Empty means min-energy under the
	// energy-aware policy; the FCFS baseline ignores objectives.
	Objective string `json:"objective,omitempty"`
}

// Workload is a replayable job trace: the seed drives every
// pseudo-random decision (fault schedules), so one workload value is one
// deterministic fleet execution.
type Workload struct {
	Seed int64     `json:"seed"`
	Jobs []JobSpec `json:"jobs"`
}

// ParseWorkload decodes a workload file (strict JSON).
func ParseWorkload(r io.Reader) (Workload, error) {
	var w Workload
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return w, fmt.Errorf("sched: workload: %w", err)
	}
	return w, nil
}

// parsedJob is a validated JobSpec with its axes resolved.
type parsedJob struct {
	spec JobSpec
	// autoAlg/autoPl report whether the axis is free for the policy.
	autoAlg bool
	alg     perfmodel.Algorithm
	autoPl  bool
	pl      cluster.Placement
	obj     core.Objective
}

// parseJob validates one spec and resolves its axes. Defaults: tenant
// "default", name "job-<i>", objective min-energy.
func parseJob(i int, spec JobSpec) (parsedJob, error) {
	p := parsedJob{spec: spec}
	if p.spec.Name == "" {
		p.spec.Name = fmt.Sprintf("job-%03d", i+1)
	}
	if p.spec.Tenant == "" {
		p.spec.Tenant = "default"
	}
	if spec.N <= 0 || spec.N > maxOrder {
		return p, fmt.Errorf("sched: job %s: n: want 1..%d, got %d", p.spec.Name, maxOrder, spec.N)
	}
	if spec.Ranks <= 0 {
		return p, fmt.Errorf("sched: job %s: ranks: must be positive, got %d", p.spec.Name, spec.Ranks)
	}
	if spec.SubmitS < 0 || math.IsNaN(spec.SubmitS) || math.IsInf(spec.SubmitS, 0) {
		return p, fmt.Errorf("sched: job %s: submit_s: must be finite and non-negative", p.spec.Name)
	}
	switch spec.Algorithm {
	case "", "auto":
		p.autoAlg = true
	default:
		alg, err := perfmodel.ParseAlgorithm(spec.Algorithm)
		if err != nil {
			return p, fmt.Errorf("sched: job %s: %w", p.spec.Name, err)
		}
		p.alg = alg
	}
	switch spec.Placement {
	case "", "auto":
		p.autoPl = true
	default:
		pl, err := cluster.ParsePlacement(spec.Placement)
		if err != nil {
			return p, fmt.Errorf("sched: job %s: %w", p.spec.Name, err)
		}
		p.pl = pl
	}
	p.obj = core.MinEnergy
	if spec.Objective != "" {
		obj, err := core.ParseObjective(spec.Objective)
		if err != nil {
			return p, fmt.Errorf("sched: job %s: %w", p.spec.Name, err)
		}
		p.obj = obj
	}
	return p, nil
}

// splitmix64 is the deterministic generator behind the synthetic
// workload (the same finaliser the fault plane uses).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (s *splitmix64) u01() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

func (s *splitmix64) intn(n int) int {
	return int(s.next() % uint64(n))
}

// syntheticTenants are the multi-tenant mix of the generated trace.
var syntheticTenants = []string{"astro", "cfd", "materials", "ml"}

// Synthetic generates a deterministic multi-tenant workload over the
// paper grid: matrix orders from §5.1, the three paper rank counts,
// auto algorithm/placement, Poisson arrivals. Same (seed, jobs) ⇒ same
// workload, byte for byte.
func Synthetic(seed int64, jobs int) Workload {
	rng := splitmix64(seed)
	dims := cluster.PaperMatrixDims()
	rankCounts := cluster.PaperRankCounts()
	// Mostly green tenants with some latency-sensitive ones: min-time
	// jobs take the same shape the FCFS baseline would, so the fleet
	// energy saving comes from the min-energy majority.
	objectives := []string{"min-energy", "min-energy", "min-energy", "min-time"}
	const meanInterarrivalS = 4.0
	w := Workload{Seed: seed, Jobs: make([]JobSpec, 0, jobs)}
	t := 0.0
	for i := 0; i < jobs; i++ {
		// Exponential inter-arrival (Poisson process).
		t += -math.Log(1-rng.u01()) * meanInterarrivalS
		spec := JobSpec{
			Name:      fmt.Sprintf("job-%03d", i+1),
			Tenant:    syntheticTenants[rng.intn(len(syntheticTenants))],
			SubmitS:   t,
			Priority:  rng.intn(3),
			N:         dims[rng.intn(len(dims))],
			Ranks:     rankCounts[rng.intn(len(rankCounts))],
			Algorithm: "auto",
			Placement: "auto",
			Objective: objectives[rng.intn(len(objectives))],
		}
		w.Jobs = append(w.Jobs, spec)
	}
	return w
}

// jobFaultSeed derives the per-job fault-plane seed from the workload
// seed: splitmix-mixed so neighbouring jobs get unrelated schedules.
func jobFaultSeed(seed int64, jobIdx int) int64 {
	s := splitmix64(uint64(seed) ^ uint64(jobIdx+1)*0xA3EC647659359ACD)
	return int64(s.next() >> 1)
}
