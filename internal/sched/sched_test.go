package sched

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/surrogate"
)

// fleet64 is the small-fleet config most tests schedule onto.
func fleet64() Config { return Config{Nodes: 64} }

func simulate(t *testing.T, cfg Config, w Workload) *Report {
	t.Helper()
	o, err := Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	return o.Report
}

func TestEmptyAndInvalidWorkloads(t *testing.T) {
	if _, err := Simulate(fleet64(), Workload{}); err == nil {
		t.Fatal("empty workload accepted")
	}
	cases := []JobSpec{
		{N: 0, Ranks: 144},
		{N: 8640, Ranks: 0},
		{N: 8640, Ranks: 144, SubmitS: -1},
		{N: 8640, Ranks: 144, Algorithm: "quantum"},
		{N: 8640, Ranks: 144, Placement: "diagonal"},
		{N: 8640, Ranks: 144, Objective: "max-vibes"},
		{N: 8640, Ranks: 100, Algorithm: "IMe"}, // 100 not divisible by any per-node count
		{N: 8640, Ranks: 48 * 100},              // needs 100 nodes, fleet has 64
	}
	for i, spec := range cases {
		if _, err := Simulate(fleet64(), Workload{Jobs: []JobSpec{spec}}); err == nil {
			t.Errorf("case %d: invalid job %+v accepted", i, spec)
		}
	}
}

func TestSingleJobAccounting(t *testing.T) {
	w := Workload{Jobs: []JobSpec{{Name: "solo", N: 8640, Ranks: 144, SubmitS: 5}}}
	rep := simulate(t, fleet64(), w)
	j := rep.Jobs[0]
	if j.Status != "done" || j.Attempts != 1 || j.Crashes != 0 {
		t.Fatalf("job = %+v", j)
	}
	if j.StartS != 5 || j.WaitS != 0 {
		t.Fatalf("start=%g wait=%g, want immediate start at submit", j.StartS, j.WaitS)
	}
	if j.EndS != j.StartS+j.DurationS {
		t.Fatalf("end=%g, want start+duration=%g", j.EndS, j.StartS+j.DurationS)
	}
	// The charged energy is the predicted energy of the chosen shape.
	if diff := j.EnergyJ - j.AvgPowerW*j.DurationS; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("energy %g != power*duration %g", j.EnergyJ, j.AvgPowerW*j.DurationS)
	}
	if rep.TotalEnergyJ != j.EnergyJ || rep.MakespanS != j.EndS {
		t.Fatalf("report rollup: %+v", rep)
	}
}

// TestMinEnergyPicksCheapestShape pins the placement policy against the
// advisor: the chosen shape's energy must match core.Recommend's best.
func TestMinEnergyPicksCheapestShape(t *testing.T) {
	w := Workload{Jobs: []JobSpec{{N: 17280, Ranks: 576, Objective: "min-energy"}}}
	rep := simulate(t, fleet64(), w)
	j := rep.Jobs[0]

	// Cross-check against the analytic model over every feasible shape.
	prm := perfmodel.Params{Overlap: true}.Normalized()
	bestJ := 0.0
	for _, alg := range perfmodel.Algorithms() {
		for _, pl := range cluster.Placements() {
			m, err := core.RunAnalytic(core.Experiment{Algorithm: alg, N: 17280, Ranks: 576, Placement: pl}, prm)
			if err != nil {
				continue
			}
			if bestJ == 0 || m.TotalJ < bestJ {
				bestJ = m.TotalJ
			}
		}
	}
	if j.EnergyJ != bestJ {
		t.Fatalf("scheduler charged %g J, cheapest feasible shape is %g J", j.EnergyJ, bestJ)
	}
}

// TestFCFSBaselineTakesFastestShape pins the baseline's obliviousness:
// min-time shapes even for jobs asking for min-energy.
func TestFCFSBaselineTakesFastestShape(t *testing.T) {
	w := Workload{Jobs: []JobSpec{{N: 25920, Ranks: 576, Objective: "min-energy"}}}
	aware := simulate(t, Config{Nodes: 64}, w)
	base := simulate(t, Config{Nodes: 64, Policy: FCFSBaseline}, w)
	if base.Jobs[0].DurationS > aware.Jobs[0].DurationS {
		t.Fatalf("baseline picked a slower shape (%g s) than energy-aware (%g s)",
			base.Jobs[0].DurationS, aware.Jobs[0].DurationS)
	}
	if base.Jobs[0].EnergyJ < aware.Jobs[0].EnergyJ {
		t.Fatalf("baseline cheaper (%g J) than min-energy policy (%g J)",
			base.Jobs[0].EnergyJ, aware.Jobs[0].EnergyJ)
	}
	if base.Policy != "fcfs" || aware.Policy != "energy-aware" {
		t.Fatalf("policies = %q/%q", base.Policy, aware.Policy)
	}
}

// TestPowerBudgetNeverExceeded asserts the acceptance-criteria
// invariant: the instantaneous power series stays under the budget, and
// a binding budget actually delays work.
func TestPowerBudgetNeverExceeded(t *testing.T) {
	w := Synthetic(11, 60)
	free := simulate(t, Config{Nodes: 64}, w)
	budget := free.PeakPowerW * 0.5
	rep := simulate(t, Config{Nodes: 64, PowerBudgetW: budget}, w)
	if rep.PeakPowerW > budget {
		t.Fatalf("peak %g W exceeds budget %g W", rep.PeakPowerW, budget)
	}
	for _, p := range rep.PowerSeries {
		if p.PowerW > budget {
			t.Fatalf("power series point %+v exceeds budget %g W", p, budget)
		}
	}
	if rep.MakespanS <= free.MakespanS {
		t.Fatalf("halved budget did not stretch the makespan (%g vs %g)", rep.MakespanS, free.MakespanS)
	}
	if rep.MeanWaitS <= free.MeanWaitS {
		t.Fatalf("halved budget did not grow queue waits (%g vs %g)", rep.MeanWaitS, free.MeanWaitS)
	}
	// Total charged energy is budget-independent: same shapes, same
	// solves, only the timing moved.
	if rep.TotalEnergyJ != free.TotalEnergyJ {
		t.Fatalf("budget changed charged energy: %g vs %g", rep.TotalEnergyJ, free.TotalEnergyJ)
	}
	if rep.StrandedWh <= 0 {
		t.Fatal("binding budget reported no stranded power")
	}
}

// TestEASYBackfillRunsShortJobAhead builds the classic backfill shape:
// a wide job blocks the queue head while a short narrow job fits in the
// hole and cannot delay the head.
func TestEASYBackfillRunsShortJobAhead(t *testing.T) {
	// Fleet of 30: the running 576-rank job (12 nodes) leaves 18 free.
	// Head needs 27 (1296 ranks), so it must wait for the release.
	// The narrow 144-rank job (3 nodes) fits the hole; its duration is
	// far shorter than the wide job's remaining time.
	w := Workload{Jobs: []JobSpec{
		{Name: "running", N: 34560, Ranks: 576, SubmitS: 0},
		{Name: "wide", N: 8640, Ranks: 1296, SubmitS: 1},
		{Name: "narrow", N: 8640, Ranks: 144, SubmitS: 2, Objective: "min-time"},
	}}
	rep := simulate(t, Config{Nodes: 30}, w)
	byName := map[string]JobOutcome{}
	for _, j := range rep.Jobs {
		byName[j.Name] = j
	}
	if byName["wide"].StartS <= 1 {
		t.Fatalf("wide job was not blocked: %+v", byName["wide"])
	}
	if byName["narrow"].StartS != 2 || !byName["narrow"].Backfill {
		t.Fatalf("narrow job did not backfill at submit: %+v", byName["narrow"])
	}
	// EASY guarantee: the backfilled job did not delay the head — the
	// wide job starts exactly when the running job releases its nodes.
	if got, want := byName["wide"].StartS, byName["running"].EndS; got != want {
		t.Fatalf("wide started at %g, reservation was %g", got, want)
	}
	if rep.Backfills == 0 {
		t.Fatal("no backfills counted")
	}
	// The baseline, by contrast, keeps the narrow job behind the wide one.
	base := simulate(t, Config{Nodes: 30, Policy: FCFSBaseline}, w)
	for _, j := range base.Jobs {
		if j.Name == "narrow" && j.StartS < byName["wide"].StartS {
			t.Fatalf("FCFS baseline backfilled: %+v", j)
		}
	}
}

// TestPriorityOrdersQueue: a high-priority job submitted later jumps the
// queue (but never a running job).
func TestPriorityOrdersQueue(t *testing.T) {
	// Fleet of 12 nodes: each 576-rank job takes all of them, so jobs
	// serialize and the queue order is the start order.
	w := Workload{Jobs: []JobSpec{
		{Name: "first", N: 43200, Ranks: 576, SubmitS: 0},
		{Name: "low", N: 8640, Ranks: 576, SubmitS: 1, Priority: 0},
		{Name: "high", N: 8640, Ranks: 576, SubmitS: 2, Priority: 5},
	}}
	rep := simulate(t, Config{Nodes: 12}, w)
	byName := map[string]JobOutcome{}
	for _, j := range rep.Jobs {
		byName[j.Name] = j
	}
	if !(byName["high"].StartS < byName["low"].StartS) {
		t.Fatalf("priority ignored: high starts %g, low starts %g",
			byName["high"].StartS, byName["low"].StartS)
	}
}

// TestFaultPlaneRequeuesAndCharges: a tight MTBF crashes attempts; the
// scheduler requeues them and charges the wasted energy.
func TestFaultPlaneRequeuesAndCharges(t *testing.T) {
	w := Workload{Jobs: []JobSpec{
		{Name: "crashy", N: 34560, Ranks: 144, SubmitS: 0}, // ~25 s solve
	}}
	rep := simulate(t, Config{Nodes: 64, MTBF: 10, FaultSeed: 42}, w)
	j := rep.Jobs[0]
	if j.Crashes == 0 {
		t.Fatalf("MTBF 10s over a ~25s solve produced no crashes: %+v", j)
	}
	if j.Status != "done" {
		t.Fatalf("job did not eventually finish: %+v", j)
	}
	if j.Attempts != j.Crashes+1 {
		t.Fatalf("attempts %d != crashes %d + 1", j.Attempts, j.Crashes)
	}
	if j.WastedJ <= 0 {
		t.Fatal("crashed attempts charged no energy")
	}
	want := j.AvgPowerW*j.DurationS + j.WastedJ
	if diff := j.EnergyJ - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("energy %g != clean solve + waste %g", j.EnergyJ, want)
	}
	if j.EndS <= j.StartS+j.DurationS {
		t.Fatal("crashes did not stretch the completion time")
	}
	if rep.Crashes != j.Crashes || rep.Requeues != j.Crashes || rep.WastedEnergyJ != j.WastedJ {
		t.Fatalf("report rollup: crashes=%d requeues=%d wasted=%g", rep.Crashes, rep.Requeues, rep.WastedEnergyJ)
	}
	// Fault-free control: same workload, no MTBF — cheaper and faster.
	clean := simulate(t, Config{Nodes: 64}, w)
	if clean.TotalEnergyJ >= rep.TotalEnergyJ {
		t.Fatal("faults did not cost energy")
	}
}

// TestTenantAccountingSumsToTotal checks the per-tenant roll-up.
func TestTenantAccountingSumsToTotal(t *testing.T) {
	rep := simulate(t, fleet64(), Synthetic(3, 30))
	var sumJ float64
	var jobs int
	for _, tu := range rep.Tenants {
		sumJ += tu.EnergyJ
		jobs += tu.Jobs
		if tu.NodeSeconds <= 0 {
			t.Fatalf("tenant %s has no node-seconds", tu.Tenant)
		}
	}
	if jobs != len(rep.Jobs) {
		t.Fatalf("tenant job counts sum to %d, want %d", jobs, len(rep.Jobs))
	}
	if diff := sumJ - rep.TotalEnergyJ; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("tenant energy %g != total %g", sumJ, rep.TotalEnergyJ)
	}
}

// TestSurrogatePricesCandidates: with the surrogate attached, paper-grid
// shapes are priced by it (engine=surrogate) and the schedule remains a
// valid execution.
func TestSurrogatePricesCandidates(t *testing.T) {
	sur, err := surrogate.Default()
	if err != nil {
		t.Fatal(err)
	}
	w := Synthetic(5, 20)
	rep := simulate(t, Config{Nodes: 64, Surrogate: sur}, w)
	surrogateJobs := 0
	for _, j := range rep.Jobs {
		if j.Engine == "surrogate" {
			surrogateJobs++
		}
	}
	if surrogateJobs == 0 {
		t.Fatal("no job priced by the surrogate")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{EnergyAware, FCFSBaseline} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: %v %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestSyntheticIsDeterministicAndValid(t *testing.T) {
	a, b := Synthetic(9, 25), Synthetic(9, 25)
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
	prev := 0.0
	for _, j := range a.Jobs {
		if j.SubmitS < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = j.SubmitS
	}
	if c := Synthetic(10, 25); c.Jobs[0] == a.Jobs[0] && c.Jobs[1] == a.Jobs[1] {
		t.Fatal("different seeds produced the same trace")
	}
}

func TestParseWorkload(t *testing.T) {
	good := `{"seed": 3, "jobs": [{"name":"a","n":8640,"ranks":144}]}`
	w, err := ParseWorkload(strings.NewReader(good))
	if err != nil || w.Seed != 3 || len(w.Jobs) != 1 {
		t.Fatalf("parse: %v %+v", err, w)
	}
	if _, err := ParseWorkload(strings.NewReader(`{"jobs": [], "extra": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
