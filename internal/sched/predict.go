package sched

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/ime"
	"repro/internal/perfmodel"
	"repro/internal/scalapack"
	"repro/internal/store"
	"repro/internal/surrogate"
)

// candidate is one feasible (algorithm, placement) shape for a job with
// its predicted cost. Power is the attempt's average draw — the quantity
// the budget admission controller reasons in.
type candidate struct {
	alg       perfmodel.Algorithm
	pl        cluster.Placement
	n         int
	nodes     int
	durationS float64
	energyJ   float64
	powerW    float64
	engine    string // "surrogate" or "analytic"
}

// predictor resolves candidate predictions: surrogate when in-envelope,
// else the exact analytic model, optionally memoized through the
// experiment store (restarted fleets resume prediction-for-free and
// byte-identically).
type predictor struct {
	sur       *surrogate.Predictor
	st        *store.Store
	prm       perfmodel.Params
	storeHits atomic.Int64
	storeComp atomic.Int64
}

func newPredictor(sur *surrogate.Predictor, st *store.Store) *predictor {
	return &predictor{sur: sur, st: st, prm: perfmodel.Params{Overlap: true}.Normalized()}
}

// predict models one shape. ok=false means the shape is infeasible for
// this algorithm (e.g. an IMe rank count that is not a perfect square).
func (p *predictor) predict(alg perfmodel.Algorithm, n, ranks int, pl cluster.Placement) (candidate, bool) {
	cfg, err := cluster.NewConfig(ranks, pl, cluster.MarconiA3())
	if err != nil {
		return candidate{}, false
	}
	if p.sur != nil {
		if res, ok := p.sur.Predict(alg, n, cfg, p.prm); ok {
			return candidate{
				alg: alg, pl: pl, n: n, nodes: cfg.Nodes,
				durationS: res.DurationS, energyJ: res.TotalJ, powerW: res.AvgPowerW(),
				engine: "surrogate",
			}, true
		}
	}
	e := core.Experiment{Algorithm: alg, N: n, Ranks: ranks, Placement: pl}
	var m core.Measurement
	if p.st != nil {
		var computed bool
		m, computed, err = core.RunAnalyticStored(e, p.prm, p.st)
		if err == nil {
			if computed {
				p.storeComp.Add(1)
			} else {
				p.storeHits.Add(1)
			}
		}
	} else {
		m, err = core.RunAnalytic(e, p.prm)
	}
	if err != nil {
		return candidate{}, false
	}
	return candidate{
		alg: alg, pl: pl, n: n, nodes: cfg.Nodes,
		durationS: m.DurationS, energyJ: m.TotalJ, powerW: m.AvgPowerW(),
		engine: "analytic",
	}, true
}

// candidates enumerates the feasible shapes of one job in deterministic
// order (algorithms, then placements, in their canonical listing order),
// dropping shapes the fleet cannot host or the budget can never admit.
func (p *predictor) candidates(j parsedJob, fleetNodes int, budgetW float64) []candidate {
	algs := perfmodel.Algorithms()
	if !j.autoAlg {
		algs = []perfmodel.Algorithm{j.alg}
	}
	pls := cluster.Placements()
	if !j.autoPl {
		pls = []cluster.Placement{j.pl}
	}
	var out []candidate
	for _, alg := range algs {
		for _, pl := range pls {
			c, ok := p.predict(alg, j.spec.N, j.spec.Ranks, pl)
			if !ok || c.nodes > fleetNodes {
				continue
			}
			if budgetW > 0 && c.powerW > budgetW {
				continue // could never be admitted, even on an idle fleet
			}
			out = append(out, c)
		}
	}
	return out
}

// predictAll resolves every job's candidate set on the worker pool.
// grid.Map returns results in index order, so the table — and therefore
// every downstream scheduling decision — is identical at any -j.
func predictAll(r *grid.Runner, p *predictor, jobs []parsedJob, fleetNodes int, budgetW float64) ([][]candidate, error) {
	return grid.Map(r, len(jobs), func(i int) ([]candidate, error) {
		cands := p.candidates(jobs[i], fleetNodes, budgetW)
		if len(cands) == 0 {
			return nil, fmt.Errorf("sched: job %s: no feasible shape (n=%d ranks=%d alg=%s pl=%s) on %d nodes, budget %g W",
				jobs[i].spec.Name, jobs[i].spec.N, jobs[i].spec.Ranks,
				jobs[i].spec.Algorithm, jobs[i].spec.Placement, fleetNodes, budgetW)
		}
		return cands, nil
	})
}

// algFlops is the solver's arithmetic work — the numerator of the
// Green500-style efficiency objective.
func algFlops(alg perfmodel.Algorithm, n int) float64 {
	if alg == perfmodel.IMe {
		return ime.TotalFlops(n)
	}
	return scalapack.TotalFlops(n)
}

// pick selects the job's shape. The energy-aware policy optimises the
// job's objective; the FCFS baseline is energy-oblivious and always
// takes the fastest shape. Ties break toward lower energy, then lower
// duration, then enumeration order — all exact comparisons, so the
// choice is deterministic.
func pick(cands []candidate, obj core.Objective, baseline bool) candidate {
	if baseline {
		obj = core.MinTime
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if candidateLess(cands[i], cands[best], obj) {
			best = i
		}
	}
	return cands[best]
}

// candidateLess reports whether a beats b under the objective.
func candidateLess(a, b candidate, obj core.Objective) bool {
	switch obj {
	case core.MinTime:
		if a.durationS != b.durationS {
			return a.durationS < b.durationS
		}
		return a.energyJ < b.energyJ
	case core.MaxEfficiency:
		// flops per joule, higher is better: n is identical within one
		// job's candidate set but the algorithms differ in arithmetic
		// work (IMe does ~3x the flops of the LU factorisation).
		fa := algFlops(a.alg, a.n) / a.energyJ
		fb := algFlops(b.alg, b.n) / b.energyJ
		if fa != fb {
			return fa > fb
		}
		return a.energyJ < b.energyJ
	default: // MinEnergy
		if a.energyJ != b.energyJ {
			return a.energyJ < b.energyJ
		}
		return a.durationS < b.durationS
	}
}
