package sched

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// SchemaVersion versions the fleet report envelope.
const SchemaVersion = 1

// JobOutcome is one job's scheduling and accounting record.
type JobOutcome struct {
	ID        int     `json:"id"`
	Name      string  `json:"name"`
	Tenant    string  `json:"tenant"`
	Priority  int     `json:"priority"`
	N         int     `json:"n"`
	Ranks     int     `json:"ranks"`
	Algorithm string  `json:"algorithm"`
	Placement string  `json:"placement"`
	Nodes     int     `json:"nodes"`
	FirstNode int     `json:"first_node"`
	Engine    string  `json:"engine"` // prediction source: surrogate | analytic
	Status    string  `json:"status"` // done | failed
	Backfill  bool    `json:"backfilled"`
	SubmitS   float64 `json:"submit_s"`
	StartS    float64 `json:"start_s"`
	EndS      float64 `json:"end_s"`
	WaitS     float64 `json:"wait_s"`
	DurationS float64 `json:"duration_s"` // predicted solve duration per attempt
	AvgPowerW float64 `json:"avg_power_w"`
	EnergyJ   float64 `json:"energy_j"`        // total charged, incl. crashed attempts
	WastedJ   float64 `json:"wasted_energy_j"` // crashed-attempt share
	Attempts  int     `json:"attempts"`
	Crashes   int     `json:"crashes"`
}

// TenantUsage is the per-tenant accounting roll-up.
type TenantUsage struct {
	Tenant      string  `json:"tenant"`
	Jobs        int     `json:"jobs"`
	EnergyJ     float64 `json:"energy_j"`
	NodeSeconds float64 `json:"node_seconds"`
	MeanWaitS   float64 `json:"mean_wait_s"`
}

// PowerPoint is one step of the instantaneous fleet power series.
type PowerPoint struct {
	TimeS     float64 `json:"time_s"`
	PowerW    float64 `json:"power_w"`
	NodesBusy int     `json:"nodes_busy"`
	Queued    int     `json:"queued"`
}

// Report is the fleet execution record. Marshal renders it canonically;
// ScheduleDigest content-addresses the per-job schedule, so two runs
// agree iff their digests agree.
type Report struct {
	SchemaVersion  int           `json:"schema_version"`
	Policy         string        `json:"policy"`
	Seed           int64         `json:"seed"`
	Nodes          int           `json:"nodes"`
	PowerBudgetW   float64       `json:"power_budget_w"` // 0 = unlimited
	MTBFS          float64       `json:"mtbf_s"`         // 0 = fault-free
	MakespanS      float64       `json:"makespan_s"`
	TotalEnergyJ   float64       `json:"total_energy_j"`
	WastedEnergyJ  float64       `json:"wasted_energy_j"`
	PeakPowerW     float64       `json:"peak_power_w"`
	UtilizationPct float64       `json:"utilization_pct"`
	StrandedWh     float64       `json:"stranded_power_wh"`
	MeanWaitS      float64       `json:"mean_wait_s"`
	MaxWaitS       float64       `json:"max_wait_s"`
	Backfills      int           `json:"backfills"`
	Crashes        int           `json:"crashes"`
	Requeues       int           `json:"requeues"`
	Tenants        []TenantUsage `json:"tenants"`
	Jobs           []JobOutcome  `json:"jobs"`
	PowerSeries    []PowerPoint  `json:"power_series"`
	ScheduleDigest string        `json:"schedule_digest"`
}

// Marshal renders the canonical report body (the exact bytes golden
// tests and artifact diffs pin).
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// outcome assembles the report, digest, timeline and telemetry.
func (s *sim) outcome(w Workload) (*Outcome, error) {
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Policy:        s.cfg.Policy.String(),
		Seed:          w.Seed,
		Nodes:         s.cfg.Nodes,
		PowerBudgetW:  s.cfg.PowerBudgetW,
		MTBFS:         s.cfg.MTBF,
		PeakPowerW:    s.peakPowerW,
		Backfills:     s.backfills,
		PowerSeries:   s.series,
	}
	tenants := map[string]*TenantUsage{}
	for _, j := range s.jobs {
		status := "done"
		if j.failed {
			status = "failed"
		}
		out := JobOutcome{
			ID: j.idx + 1, Name: j.spec.Name, Tenant: j.spec.Tenant,
			Priority: j.spec.Priority, N: j.spec.N, Ranks: j.spec.Ranks,
			Algorithm: j.cand.alg.String(), Placement: j.cand.pl.String(),
			Nodes: j.cand.nodes, Engine: j.cand.engine, Status: status,
			Backfill: j.backfill, SubmitS: j.spec.SubmitS,
			StartS: j.startS, EndS: j.endS, WaitS: j.startS - j.spec.SubmitS,
			DurationS: j.cand.durationS, AvgPowerW: j.cand.powerW,
			EnergyJ: j.energyJ, WastedJ: j.wastedJ,
			Attempts: j.attempts, Crashes: j.crashes,
		}
		rep.Jobs = append(rep.Jobs, out)
		rep.TotalEnergyJ += j.energyJ
		rep.WastedEnergyJ += j.wastedJ
		rep.Crashes += j.crashes
		if j.crashes > 0 && !j.failed {
			rep.Requeues += j.crashes
		} else if j.failed && j.crashes > 0 {
			rep.Requeues += j.crashes - 1
		}
		if j.endS > rep.MakespanS {
			rep.MakespanS = j.endS
		}
		rep.MeanWaitS += out.WaitS
		if out.WaitS > rep.MaxWaitS {
			rep.MaxWaitS = out.WaitS
		}
		tu := tenants[j.spec.Tenant]
		if tu == nil {
			tu = &TenantUsage{Tenant: j.spec.Tenant}
			tenants[j.spec.Tenant] = tu
		}
		tu.Jobs++
		tu.EnergyJ += j.energyJ
		tu.MeanWaitS += out.WaitS
	}
	rep.MeanWaitS /= float64(len(s.jobs))
	// Per-attempt node-seconds, charged per tenant in attempt order.
	for _, a := range s.attempts {
		j := s.jobs[a.jobIdx]
		tenants[j.spec.Tenant].NodeSeconds += float64(len(a.nodes)) * (a.endS - a.startS)
	}
	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tu := tenants[name]
		tu.MeanWaitS /= float64(tu.Jobs)
		rep.Tenants = append(rep.Tenants, *tu)
	}
	if rep.MakespanS > 0 {
		rep.UtilizationPct = 100 * s.nodeSeconds / (float64(s.cfg.Nodes) * rep.MakespanS)
	}
	rep.StrandedWh = s.strandedJs / 3600

	// Full node-ID lists live in the timeline; the job table carries the
	// first node of the last (successful, for done jobs) block grant.
	for _, a := range s.attempts {
		rep.Jobs[a.jobIdx].FirstNode = a.nodes[0]
	}

	// The digest content-addresses the schedule: the canonical JSON of
	// the per-job outcomes, hashed the same way the experiment store
	// keys its records.
	digest, _, err := store.KeyFor(rep.Jobs)
	if err != nil {
		return nil, fmt.Errorf("sched: digest: %w", err)
	}
	rep.ScheduleDigest = digest

	o := &Outcome{Report: rep}
	if s.pred != nil {
		o.StoreHits = int(s.pred.storeHits.Load())
		o.StoreComputed = int(s.pred.storeComp.Load())
	}
	if s.cfg.Trace {
		o.Trace = s.buildTrace(digest)
	}
	s.publish(rep)
	return o, nil
}

// buildTrace renders the fleet timeline: one Perfetto track per node,
// one span per (attempt × node). The trace ID derives from the schedule
// digest, so identical schedules export identical traces.
func (s *sim) buildTrace(digest string) *telemetry.Trace {
	tr := telemetry.NewTrace(digest[:32])
	recs := make([]attemptRec, len(s.attempts))
	copy(recs, s.attempts)
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].startS != recs[j].startS {
			return recs[i].startS < recs[j].startS
		}
		if recs[i].jobIdx != recs[j].jobIdx {
			return recs[i].jobIdx < recs[j].jobIdx
		}
		return recs[i].attempt < recs[j].attempt
	})
	for _, a := range recs {
		j := s.jobs[a.jobIdx]
		name := j.spec.Name
		if a.attempt > 1 {
			name = fmt.Sprintf("%s (retry %d)", j.spec.Name, a.attempt-1)
		}
		for _, node := range a.nodes {
			tr.AddVirtualSpan(fmt.Sprintf("node-%04d", node), name, 0, a.startS, a.endS,
				telemetry.Attr{Key: "tenant", Value: j.spec.Tenant},
				telemetry.Attr{Key: "algorithm", Value: j.cand.alg.String()},
				telemetry.Attr{Key: "placement", Value: j.cand.pl.String()},
				telemetry.Attr{Key: "crashed", Value: a.crashed},
			)
		}
	}
	return tr
}

// publish mirrors the fleet roll-up into the registry (nil-safe).
func (s *sim) publish(rep *Report) {
	reg := s.cfg.Registry
	if reg == nil {
		return
	}
	reg.Gauge("fleet_nodes", "Simulated fleet size.").Set(float64(rep.Nodes))
	reg.Gauge("fleet_power_budget_w", "Configured fleet power budget (0 = unlimited).").Set(rep.PowerBudgetW)
	reg.Gauge("fleet_peak_power_w", "Peak instantaneous fleet power over the run.").Set(rep.PeakPowerW)
	reg.Gauge("fleet_makespan_s", "Virtual makespan of the workload.").Set(rep.MakespanS)
	reg.Gauge("fleet_utilization_pct", "Node-seconds busy over fleet capacity.").Set(rep.UtilizationPct)
	reg.Gauge("fleet_stranded_power_wh", "Unused budget headroom integrated while jobs queued.").Set(rep.StrandedWh)
	reg.Counter("fleet_backfills_total", "Jobs started ahead of the queue head by EASY backfill.").Add(float64(rep.Backfills))
	reg.Counter("fleet_crashes_total", "Job attempts killed by the fault plane.").Add(float64(rep.Crashes))
	waits := reg.Histogram("fleet_queue_wait_seconds", "Per-job wait from submission to first start.",
		[]float64{1, 10, 60, 300, 1800, 7200})
	for _, j := range rep.Jobs {
		waits.Observe(j.WaitS)
		status := j.Status
		reg.Counter("fleet_jobs_total", "Jobs by terminal status.", "status", status).Inc()
		reg.Counter("fleet_tenant_energy_joules_total", "Charged energy by tenant.", "tenant", j.Tenant).Add(j.EnergyJ)
	}
}
