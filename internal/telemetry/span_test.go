package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTraceSpansNestAndSort(t *testing.T) {
	tr := NewTrace("0123456789abcdef0123456789abcdef")
	if tr.ID() != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("trace id = %q", tr.ID())
	}
	root := tr.StartSpan("recommend", nil)
	child := tr.StartSpan("cache", root)
	child.SetAttr("hit", false)
	child.End()
	solve := tr.AddVirtualSpan("IMe", "solve", root.ID(), 0, 2.5, Attr{Key: "energy_j", Value: 100.0})
	tr.AddVirtualSpan("IMe", "compute", solve, 0, 2.0)
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	// Wall track sorts first (empty track name), wrappers before children.
	if spans[0].Name != "recommend" || spans[0].Track != "" || spans[0].Parent != 0 {
		t.Fatalf("first span = %+v, want the root", spans[0])
	}
	if spans[1].Name != "cache" || spans[1].Parent != spans[0].ID {
		t.Fatalf("second span = %+v, want cache under root", spans[1])
	}
	if spans[2].Track != "IMe" || spans[2].Name != "solve" || spans[2].DurUS != 2.5e6 {
		t.Fatalf("virtual span = %+v", spans[2])
	}
	if spans[3].Parent != spans[2].ID {
		t.Fatalf("virtual child not parented: %+v", spans[3])
	}
	if len(spans[2].Attrs) != 1 || spans[2].Attrs[0].Key != "energy_j" {
		t.Fatalf("virtual attrs = %+v", spans[2].Attrs)
	}
}

// TestTraceConcurrentSpans creates and ends spans from many goroutines;
// under -race this is the tracing plane's data-race test.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("")
	root := tr.StartSpan("root", nil)
	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.StartSpan(fmt.Sprintf("stage-%d", w), root)
				sp.SetAttr("i", i)
				sp.End()
				tr.AddVirtualSpan("model", "cell", root.ID(), float64(i), float64(i)+1)
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got, want := len(tr.Spans()), workers*perWorker*2+1; got != want {
		t.Fatalf("spans = %d, want %d", got, want)
	}
	// All span IDs are unique.
	seen := make(map[uint64]bool)
	for _, s := range tr.Spans() {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTrace("")
	h := tr.Traceparent()
	id, ok := ParseTraceparent(h)
	if !ok || id != tr.ID() {
		t.Fatalf("ParseTraceparent(%q) = %q, %v; want %q", h, id, ok, tr.ID())
	}
	for _, bad := range []string{
		"",
		"00-short-0000000000000001-01",
		"00-zzzz456789abcdef0123456789abcdef-0000000000000001-01",
		"00-00000000000000000000000000000000-0000000000000001-01", // all-zero trace id
		"00-0123456789abcdef0123456789abcdef-01",                  // missing field
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
	// Uppercase hex is normalised to lowercase per the W3C spec.
	id, ok = ParseTraceparent("00-0123456789ABCDEF0123456789ABCDEF-0000000000000001-01")
	if !ok || id != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("uppercase traceparent: %q, %v", id, ok)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 32 {
			t.Fatalf("trace id %q not 32 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

// TestWriteChromeTraceEnvelope pins the export format: the
// {"traceEvents":[...]} envelope with X events carrying span/parent IDs
// and attributes in args — the shape mpi.ReadChromeTrace parses (the
// cross-package parse test lives in internal/server, which may import
// both sides).
func TestWriteChromeTraceEnvelope(t *testing.T) {
	tr := NewTrace("deadbeefdeadbeefdeadbeefdeadbeef")
	root := tr.StartSpan("predict", nil)
	st := tr.StartSpan("compute", root)
	st.End()
	tr.AddVirtualSpan("ScaLAPACK", "solve", st.ID(), 0, 3.25, Attr{Key: "energy_j", Value: 42.0})
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Cat  string         `json:"cat"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	var xEvents, modelEvents int
	var sawEnergy bool
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		xEvents++
		if e.Cat == "model" {
			modelEvents++
			if e.Pid != pidModel {
				t.Fatalf("model span on pid %d", e.Pid)
			}
			if v, ok := e.Args["energy_j"].(float64); ok && v == 42.0 {
				sawEnergy = true
			}
			if e.Dur != 3.25e6 {
				t.Fatalf("model span dur = %g µs, want 3.25e6", e.Dur)
			}
		}
		if _, ok := e.Args["span"]; !ok {
			t.Fatalf("X event %q without span id", e.Name)
		}
	}
	if xEvents != 3 || modelEvents != 1 || !sawEnergy {
		t.Fatalf("xEvents=%d modelEvents=%d sawEnergy=%v", xEvents, modelEvents, sawEnergy)
	}
	if !strings.Contains(buf.String(), "serving deadbeefdeadbeefdeadbeefdeadbeef") {
		t.Fatal("process metadata does not name the trace")
	}
}

// TestChromeTraceThreadSortIndex: virtual tracks carry a sort index in
// track-name order, not first-span order, so fleet timelines render
// node-0000, node-0001, ... top to bottom.
func TestChromeTraceThreadSortIndex(t *testing.T) {
	tr := NewTrace("deadbeefdeadbeefdeadbeefdeadbeef")
	// First spans land on the tracks out of name order.
	tr.AddVirtualSpan("node-0002", "a", 0, 0, 1)
	tr.AddVirtualSpan("node-0000", "b", 0, 0, 1)
	tr.AddVirtualSpan("node-0001", "c", 0, 0, 1)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	tidName := map[int]string{}
	tidSort := map[int]float64{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" || e.Pid != pidModel {
			continue
		}
		switch e.Name {
		case "thread_name":
			tidName[e.Tid] = e.Args["name"].(string)
		case "thread_sort_index":
			tidSort[e.Tid] = e.Args["sort_index"].(float64)
		}
	}
	if len(tidName) != 3 || len(tidSort) != 3 {
		t.Fatalf("metadata: names=%v sorts=%v", tidName, tidSort)
	}
	for tid, name := range tidName {
		var want float64
		switch name {
		case "node-0000":
			want = 0
		case "node-0001":
			want = 1
		case "node-0002":
			want = 2
		default:
			t.Fatalf("unexpected track %q", name)
		}
		if tidSort[tid] != want {
			t.Fatalf("track %q sort_index = %g, want %g", name, tidSort[tid], want)
		}
	}
}

func TestNilTraceInert(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x", nil)
	sp.SetAttr("k", 1)
	sp.End()
	if tr.ID() != "" || tr.Spans() != nil || tr.AddVirtualSpan("t", "n", 0, 0, 1) != 0 {
		t.Fatal("nil trace not inert")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil trace export must error")
	}
}
