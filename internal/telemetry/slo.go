package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Service-level objectives and multi-window burn rates.
//
// An SLO declares, per request class, how fast and how available the
// service promises to be. The tracker counts every request against those
// promises (cumulative atomics — wait-free on the serving path) and
// keeps a bounded ring of periodic snapshots so it can answer the
// question cumulative counters cannot: "how fast are we burning the
// error budget *right now*, over the last 5 minutes / hour?" — the
// multi-window burn-rate alerting discipline of the SRE workbook.
//
// A burn rate of 1 means the budget is being spent exactly at the
// sustainable pace (it lasts precisely the SLO period); a rate of 14.4
// spends a 30-day budget in 50 hours — the canonical page threshold.

// SLO declares one request class's objectives. LatencyTarget is the
// fraction of requests that must finish within LatencyBoundS (e.g. 0.99
// within 5ms ⇒ "p99 ≤ 5ms"); AvailabilityTarget the fraction that must
// not fail with a 5xx.
type SLO struct {
	Name               string  `json:"name"`
	LatencyBoundS      float64 `json:"latency_bound_s"`
	LatencyTarget      float64 `json:"latency_target"`
	AvailabilityTarget float64 `json:"availability_target"`
}

// SLOWindow is one burn-rate lookback window.
type SLOWindow struct {
	Name  string
	Width time.Duration
}

// DefaultSLOWindows are the standard multi-window alerting lookbacks.
func DefaultSLOWindows() []SLOWindow {
	return []SLOWindow{
		{"5m", 5 * time.Minute},
		{"30m", 30 * time.Minute},
		{"1h", time.Hour},
		{"6h", 6 * time.Hour},
	}
}

// Burn-rate verdict thresholds: burning faster than sustainable flags
// the objective at-risk; the canonical page-level burn (a 30-day budget
// gone in ~2 days) flags a breach, as does cumulative non-compliance.
const (
	burnAtRisk = 1.0
	burnBreach = 14.4
)

// sloSnap is one ring entry: the cumulative counts at time t.
type sloSnap struct {
	t     time.Time
	total uint64
	slow  uint64
	bad   uint64
}

// sloState is one objective's live accounting.
type sloState struct {
	slo   SLO
	total atomic.Uint64 // all requests
	slow  atomic.Uint64 // latency > bound
	bad   atomic.Uint64 // 5xx responses
	ring  []sloSnap     // guarded by the tracker mutex
}

// SLOTracker counts requests against a set of objectives. Construct
// with NewSLOTracker; Record is safe for concurrent use and nil-safe.
type SLOTracker struct {
	byName    map[string]*sloState // immutable after construction
	order     []*sloState
	windows   []SLOWindow
	snapEvery time.Duration
	now       func() time.Time
	start     time.Time

	lastSnapNS atomic.Int64
	mu         sync.Mutex // guards the rings
}

// SLOTrackerOptions tunes NewSLOTracker; the zero value selects the
// default windows, a 5s snapshot cadence and the wall clock.
type SLOTrackerOptions struct {
	Windows   []SLOWindow
	SnapEvery time.Duration
	Now       func() time.Time
}

// NewSLOTracker returns a tracker for the given objectives.
func NewSLOTracker(objectives []SLO, opts SLOTrackerOptions) *SLOTracker {
	if opts.Windows == nil {
		opts.Windows = DefaultSLOWindows()
	}
	if opts.SnapEvery <= 0 {
		opts.SnapEvery = 5 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	t := &SLOTracker{
		byName:    make(map[string]*sloState, len(objectives)),
		windows:   opts.Windows,
		snapEvery: opts.SnapEvery,
		now:       opts.Now,
		start:     opts.Now(),
	}
	t.lastSnapNS.Store(t.start.UnixNano())
	for _, o := range objectives {
		st := &sloState{slo: o}
		t.byName[o.Name] = st
		t.order = append(t.order, st)
	}
	return t
}

// Record counts one finished request against the named objective;
// unknown names (request classes without an SLO) are ignored. The hot
// path is three atomic adds; ring snapshots amortise behind a CAS-gated
// cadence check.
func (t *SLOTracker) Record(name string, latencyS float64, code int) {
	if t == nil {
		return
	}
	st, ok := t.byName[name]
	if !ok {
		return
	}
	st.total.Add(1)
	if latencyS > st.slo.LatencyBoundS {
		st.slow.Add(1)
	}
	if code >= 500 {
		st.bad.Add(1)
	}
	t.maybeSnapshot()
}

// maybeSnapshot appends one ring entry per objective when the snapshot
// cadence has elapsed. The CAS elects exactly one snapshotter.
func (t *SLOTracker) maybeSnapshot() {
	now := t.now()
	last := t.lastSnapNS.Load()
	if now.UnixNano()-last < int64(t.snapEvery) {
		return
	}
	if !t.lastSnapNS.CompareAndSwap(last, now.UnixNano()) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	horizon := now.Add(-t.maxWindow() - t.snapEvery)
	for _, st := range t.order {
		st.ring = append(st.ring, sloSnap{
			t:     now,
			total: st.total.Load(),
			slow:  st.slow.Load(),
			bad:   st.bad.Load(),
		})
		// Prune entries older than any window can reach.
		cut := 0
		for cut < len(st.ring)-1 && st.ring[cut].t.Before(horizon) {
			cut++
		}
		if cut > 0 {
			st.ring = append(st.ring[:0], st.ring[cut:]...)
		}
	}
}

func (t *SLOTracker) maxWindow() time.Duration {
	var max time.Duration
	for _, w := range t.windows {
		if w.Width > max {
			max = w.Width
		}
	}
	return max
}

// SLOWindowReport is one lookback window's burn rates for one objective.
type SLOWindowReport struct {
	Window           string  `json:"window"`
	CoveredS         float64 `json:"covered_s"` // how much history backs the rate
	Requests         uint64  `json:"requests"`
	LatencyBurn      float64 `json:"latency_burn_rate"`
	AvailabilityBurn float64 `json:"availability_burn_rate"`
}

// SLOStatus is one objective's full report.
type SLOStatus struct {
	SLO
	Requests          uint64            `json:"requests"`
	LatencyCompliance float64           `json:"latency_compliance"` // cumulative fraction within bound
	Availability      float64           `json:"availability"`       // cumulative non-5xx fraction
	Verdict           string            `json:"verdict"`            // ok | at-risk | breach
	Windows           []SLOWindowReport `json:"windows"`
}

// SLOReport is the tracker's full serialisable state.
type SLOReport struct {
	Objectives []SLOStatus `json:"objectives"`
}

// Report computes cumulative compliance and per-window burn rates for
// every objective, in declaration order.
func (t *SLOTracker) Report() SLOReport {
	if t == nil {
		return SLOReport{Objectives: []SLOStatus{}}
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	rep := SLOReport{Objectives: make([]SLOStatus, 0, len(t.order))}
	for _, st := range t.order {
		head := sloSnap{t: now, total: st.total.Load(), slow: st.slow.Load(), bad: st.bad.Load()}
		status := SLOStatus{
			SLO:               st.slo,
			Requests:          head.total,
			LatencyCompliance: 1,
			Availability:      1,
			Verdict:           "ok",
		}
		if head.total > 0 {
			status.LatencyCompliance = 1 - float64(head.slow)/float64(head.total)
			status.Availability = 1 - float64(head.bad)/float64(head.total)
		}
		worstBurn := 0.0
		for _, w := range t.windows {
			base := t.baseFor(st, now, w.Width)
			wr := SLOWindowReport{
				Window:   w.Name,
				CoveredS: now.Sub(base.t).Seconds(),
				Requests: head.total - base.total,
			}
			if wr.Requests > 0 {
				slowFrac := float64(head.slow-base.slow) / float64(wr.Requests)
				badFrac := float64(head.bad-base.bad) / float64(wr.Requests)
				wr.LatencyBurn = burn(slowFrac, st.slo.LatencyTarget)
				wr.AvailabilityBurn = burn(badFrac, st.slo.AvailabilityTarget)
			}
			if wr.LatencyBurn > worstBurn {
				worstBurn = wr.LatencyBurn
			}
			if wr.AvailabilityBurn > worstBurn {
				worstBurn = wr.AvailabilityBurn
			}
			status.Windows = append(status.Windows, wr)
		}
		breached := head.total > 0 &&
			(status.LatencyCompliance < st.slo.LatencyTarget || status.Availability < st.slo.AvailabilityTarget)
		switch {
		case breached || worstBurn >= burnBreach:
			status.Verdict = "breach"
		case worstBurn > burnAtRisk:
			status.Verdict = "at-risk"
		}
		rep.Objectives = append(rep.Objectives, status)
	}
	return rep
}

// baseFor finds the newest snapshot at least width old (the window
// base); with no history that old it falls back to the oldest snapshot,
// or to the tracker's start (zero counts) when the ring is empty — the
// report's CoveredS exposes the shortfall.
func (t *SLOTracker) baseFor(st *sloState, now time.Time, width time.Duration) sloSnap {
	cutoff := now.Add(-width)
	base := sloSnap{t: t.start}
	for _, s := range st.ring {
		if s.t.After(cutoff) {
			break
		}
		base = s
	}
	return base
}

// burn converts a bad-event fraction into an error-budget burn rate.
func burn(badFrac, target float64) float64 {
	budget := 1 - target
	if budget <= 0 {
		if badFrac > 0 {
			return burnBreach
		}
		return 0
	}
	return badFrac / budget
}
