package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func pinnedClock() func() time.Time {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return t0 }
}

func TestLoggerLogfmtGolden(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LoggerOptions{Level: LevelDebug, Now: pinnedClock()})
	l.Info("request done", "endpoint", "recommend", "status", 200, "dur_s", 0.0025, "note", "two words")
	want := `ts=2026-08-08T12:00:00Z level=info msg="request done" endpoint=recommend status=200 dur_s=0.0025 note="two words"` + "\n"
	if buf.String() != want {
		t.Fatalf("logfmt line:\n got %q\nwant %q", buf.String(), want)
	}
}

func TestLoggerJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LoggerOptions{Level: LevelInfo, Format: LogJSON, Now: pinnedClock()})
	l.With("endpoint", "predict").Error("compute failed", "err", errors.New("boom"), "ok", false)
	want := `{"ts":"2026-08-08T12:00:00Z","level":"error","msg":"compute failed","endpoint":"predict","err":"boom","ok":false}` + "\n"
	if buf.String() != want {
		t.Fatalf("json line:\n got %q\nwant %q", buf.String(), want)
	}
	// And it is real JSON.
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("line not valid JSON: %v", err)
	}
}

func TestLoggerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LoggerOptions{Level: LevelWarn, Now: pinnedClock()})
	l.Debug("hidden")
	l.Info("hidden")
	l.Warn("shown")
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("lines = %d, want 1 (only warn):\n%s", n, buf.String())
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Fatal("Enabled gate wrong")
	}
}

func TestLoggerSampling(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LoggerOptions{Level: LevelDebug, Now: pinnedClock()}).Sampled(10)
	for i := 0; i < 100; i++ {
		l.Info("tick", "i", i)
	}
	if n := strings.Count(buf.String(), "\n"); n != 10 {
		t.Fatalf("sampled lines = %d, want 10", n)
	}
	// The very first record passes (quiet paths still surface).
	if !strings.Contains(strings.Split(buf.String(), "\n")[0], "i=0") {
		t.Fatalf("first record sampled away:\n%s", buf.String())
	}
	// Warn/Error bypass sampling entirely.
	buf.Reset()
	for i := 0; i < 5; i++ {
		l.Warn("bad", "i", i)
	}
	if n := strings.Count(buf.String(), "\n"); n != 5 {
		t.Fatalf("warn lines = %d, want 5 (never sampled)", n)
	}
}

func TestLoggerDanglingKey(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LoggerOptions{Now: pinnedClock()})
	l.Info("oops", "key")
	if !strings.Contains(buf.String(), `key=(MISSING)`) {
		t.Fatalf("dangling key not flagged: %s", buf.String())
	}
}

func TestLoggerConcurrentLinesIntact(t *testing.T) {
	var buf lockedBuffer
	l := NewLogger(&buf, LoggerOptions{Level: LevelDebug})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := l.With("worker", w)
			for i := 0; i < 50; i++ {
				child.Info("tick", "i", i)
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("lines = %d, want 400", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "ts=") || !strings.Contains(ln, " worker=") {
			t.Fatalf("interleaved/torn line: %q", ln)
		}
	}
}

func TestNilLoggerInert(t *testing.T) {
	var l *Logger
	l.Info("x")
	l.With("k", "v").Sampled(10).Error("y")
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	for _, s := range []string{"debug", "info", "warn", "error"} {
		lv, err := ParseLevel(s)
		if err != nil || lv.String() != s {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, lv, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted junk")
	}
	if f, err := ParseLogFormat("json"); err != nil || f != LogJSON {
		t.Fatalf("ParseLogFormat(json) = %v, %v", f, err)
	}
	if _, err := ParseLogFormat("xml"); err == nil {
		t.Fatal("ParseLogFormat accepted junk")
	}
}

// lockedBuffer makes bytes.Buffer safe for the concurrent test's reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
