// Package telemetry is the unified metrics layer of the reproduction: a
// lock-cheap registry of counters, gauges and fixed-bucket histograms with
// Prometheus-text and JSON exposition.
//
// The simulated MPI runtime, the compute-kernel pool, both solvers and the
// RAPL accounting all feed instruments from this package, which is what
// turns the aggregate energy figures of the paper's framework into
// attributable ones ("which loop, which message, which socket" — the
// phase-level attribution Simsek et al. and EfiMon argue for).
//
// Design constraints, in order:
//
//  1. Disabled telemetry must cost nothing on hot paths. Every instrument
//     method is nil-safe, so call sites keep a single predictable
//     nil-check branch and no allocation.
//  2. Updates are wait-free reads-modify-writes on atomics (CAS loops for
//     float accumulation), never a mutex: simulated ranks are goroutines
//     hammering shared counters from tight messaging loops.
//  3. Exposition is deterministic — series are sorted — so exports can be
//     golden-file tested and diffed across runs.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically non-decreasing float64 accumulator.
// All methods are nil-safe no-ops so disabled telemetry costs one branch.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Add accumulates v; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 || math.IsNaN(v) {
		return
	}
	addFloat(&c.bits, v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an instantaneous float64 value that can move both ways.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v (either sign).
func (g *Gauge) Add(v float64) {
	if g == nil || v == 0 || math.IsNaN(v) {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets with inclusive upper
// bounds (Prometheus `le` semantics) plus an implicit +Inf bucket. Each
// bucket additionally holds the latest exemplar recorded into it (an
// observation tagged with the trace ID that produced it), so a latency
// spike in the exposition links straight to a fetchable request trace.
type Histogram struct {
	bounds    []float64 // ascending upper bounds; immutable after creation
	buckets   []atomic.Uint64
	exemplars []atomic.Pointer[Exemplar]
	count     atomic.Uint64
	sumBits   atomic.Uint64
}

// Exemplar ties one observation to the trace that produced it
// (OpenMetrics exemplar semantics: the newest observation wins).
type Exemplar struct {
	Value   float64
	TraceID string
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bound ≥ v is the owning bucket; beyond all bounds → +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// ObserveWithExemplar records one sample and, when traceID is non-empty,
// stores it as the owning bucket's exemplar (lock-free pointer swap; the
// newest observation per bucket is kept).
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID})
	}
}

// Exemplars returns the per-bucket exemplars (last entry is the +Inf
// bucket); buckets that never saw a tagged observation are nil.
func (h *Histogram) Exemplars() []*Exemplar {
	if h == nil {
		return nil
	}
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns the per-bucket counts; the last entry is the +Inf
// bucket. Counts are non-cumulative.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// addFloat CAS-accumulates a float64 delta into bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// kind discriminates the instrument stored in a registry entry.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered series: a base name, an optional label set and
// exactly one instrument.
type entry struct {
	base   string
	labels string // rendered `k="v",…` sorted by key; "" when unlabelled
	help   string
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// key is the unique series identity.
func (e *entry) key() string { return e.base + "{" + e.labels + "}" }

// Registry holds named instruments. Creation takes a mutex; updates on the
// returned instruments never do. The zero value is not usable — call
// NewRegistry. A nil *Registry is safe: every constructor returns nil,
// which in turn makes the instrument methods no-ops, so a single registry
// pointer gates a whole instrumentation tree.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Counter returns the counter registered under name and the given label
// pairs (key, value, key, value, …), creating it on first use. Re-requests
// with the same identity return the same instrument; an identity collision
// with a different instrument kind panics (programmer error).
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	e := r.lookup(name, help, kindCounter, labelPairs)
	if e == nil {
		return nil
	}
	return e.c
}

// Gauge is the gauge counterpart of Counter.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	e := r.lookup(name, help, kindGauge, labelPairs)
	if e == nil {
		return nil
	}
	return e.g
}

// Histogram returns the histogram registered under name with the given
// ascending bucket upper bounds (a +Inf bucket is implicit). Bounds are
// fixed at first registration; later calls ignore the argument.
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookupLocked(name, help, kindHistogram, labelPairs)
	if e.h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		e.h = &Histogram{
			bounds:    b,
			buckets:   make([]atomic.Uint64, len(b)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
		}
	}
	return e.h
}

// lookup get-or-creates an entry under the registry lock.
func (r *Registry) lookup(name, help string, k kind, labelPairs []string) *entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookupLocked(name, help, k, labelPairs)
	switch k {
	case kindCounter:
		if e.c == nil {
			e.c = &Counter{}
		}
	case kindGauge:
		if e.g == nil {
			e.g = &Gauge{}
		}
	}
	return e
}

func (r *Registry) lookupLocked(name, help string, k kind, labelPairs []string) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	labels := renderLabels(labelPairs)
	key := name + "{" + labels + "}"
	if e, ok := r.entries[key]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("telemetry: %s already registered as %s, requested as %s", key, e.kind, k))
		}
		return e
	}
	e := &entry{base: name, labels: labels, help: help, kind: k}
	r.entries[key] = e
	return e
}

// snapshot returns the entries sorted by (base, labels) for exposition.
func (r *Registry) snapshot() []*entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].base != out[j].base {
			return out[i].base < out[j].base
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// validName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// renderLabels turns (k, v, k, v, …) pairs into a deterministic
// `k="v",…` fragment sorted by key.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label pair list %q", pairs))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		if !validName(pairs[i]) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", pairs[i]))
		}
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}
