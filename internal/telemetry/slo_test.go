package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock advances only when told to — pins burn-rate math.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testObjectives() []SLO {
	return []SLO{{
		Name:               "recommend",
		LatencyBoundS:      0.005,
		LatencyTarget:      0.99,
		AvailabilityTarget: 0.999,
	}}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSLOTrackerAllGood(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(testObjectives(), SLOTrackerOptions{Now: clk.Now, SnapEvery: time.Second})
	for i := 0; i < 100; i++ {
		tr.Record("recommend", 0.001, 200)
		clk.Advance(100 * time.Millisecond)
	}
	rep := tr.Report()
	if len(rep.Objectives) != 1 {
		t.Fatalf("objectives = %d", len(rep.Objectives))
	}
	o := rep.Objectives[0]
	if o.Requests != 100 || o.Verdict != "ok" || o.LatencyCompliance != 1 || o.Availability != 1 {
		t.Fatalf("status = %+v", o)
	}
	if len(o.Windows) != len(DefaultSLOWindows()) {
		t.Fatalf("windows = %d", len(o.Windows))
	}
	for _, w := range o.Windows {
		if w.LatencyBurn != 0 || w.AvailabilityBurn != 0 {
			t.Fatalf("burn nonzero on clean traffic: %+v", w)
		}
	}
}

func TestSLOTrackerBurnMath(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(testObjectives(), SLOTrackerOptions{Now: clk.Now, SnapEvery: time.Second})
	// 1000 requests over ~100s: 2% slow (2x the 1% latency budget),
	// 0.2% 5xx (2x the 0.1% availability budget).
	for i := 0; i < 1000; i++ {
		lat, code := 0.001, 200
		if i%50 == 0 { // 20 of 1000 = 2% slow
			lat = 0.05
		}
		if i%500 == 1 { // 2 of 1000 = 0.2% bad
			code = 500
		}
		tr.Record("recommend", lat, code)
		clk.Advance(100 * time.Millisecond)
	}
	o := tr.Report().Objectives[0]
	if !approx(o.LatencyCompliance, 0.98) {
		t.Fatalf("latency compliance = %v, want 0.98", o.LatencyCompliance)
	}
	if !approx(o.Availability, 0.998) {
		t.Fatalf("availability = %v, want 0.998", o.Availability)
	}
	// Cumulative compliance is below both targets → breach.
	if o.Verdict != "breach" {
		t.Fatalf("verdict = %q, want breach", o.Verdict)
	}
	// The 5m window covers all 100s of traffic: burn = badFrac/budget = 2.
	w := o.Windows[0]
	if w.Window != "5m" {
		t.Fatalf("first window = %q", w.Window)
	}
	if !approx(w.LatencyBurn, 2.0) {
		t.Fatalf("latency burn = %v, want 2.0", w.LatencyBurn)
	}
	if !approx(w.AvailabilityBurn, 2.0) {
		t.Fatalf("availability burn = %v, want 2.0", w.AvailabilityBurn)
	}
}

// TestSLOTrackerWindowIsolation drives a bad burst, then an hour of clean
// traffic: the short window must recover while the cumulative stats and
// long windows still see the burst.
func TestSLOTrackerWindowIsolation(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(testObjectives(), SLOTrackerOptions{Now: clk.Now, SnapEvery: time.Second})
	// Burst: 100 requests, all 5xx and slow, over 100s.
	for i := 0; i < 100; i++ {
		tr.Record("recommend", 1.0, 500)
		clk.Advance(time.Second)
	}
	// Recovery: 1h of clean traffic, one request per second.
	for i := 0; i < 3600; i++ {
		tr.Record("recommend", 0.001, 200)
		clk.Advance(time.Second)
	}
	o := tr.Report().Objectives[0]
	var w5m, w6h *SLOWindowReport
	for i := range o.Windows {
		switch o.Windows[i].Window {
		case "5m":
			w5m = &o.Windows[i]
		case "6h":
			w6h = &o.Windows[i]
		}
	}
	if w5m == nil || w6h == nil {
		t.Fatalf("windows missing: %+v", o.Windows)
	}
	if w5m.AvailabilityBurn != 0 || w5m.LatencyBurn != 0 {
		t.Fatalf("5m window still burning after recovery: %+v", *w5m)
	}
	if w6h.AvailabilityBurn == 0 {
		t.Fatalf("6h window forgot the burst: %+v", *w6h)
	}
	// Cumulative availability 3600/3700 ≈ 0.973 < 0.999 → breach verdict.
	if o.Verdict != "breach" {
		t.Fatalf("verdict = %q, want breach", o.Verdict)
	}
}

func TestSLOTrackerUnknownNameAndNil(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(testObjectives(), SLOTrackerOptions{Now: clk.Now})
	tr.Record("nope", 1, 500) // silently ignored
	if got := tr.Report().Objectives[0].Requests; got != 0 {
		t.Fatalf("unknown name recorded: %d", got)
	}
	var nilT *SLOTracker
	nilT.Record("recommend", 1, 500)
	rep := nilT.Report()
	if rep.Objectives == nil || len(rep.Objectives) != 0 {
		t.Fatalf("nil tracker report = %+v", rep)
	}
}

func TestSLOTrackerConcurrentRecord(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(testObjectives(), SLOTrackerOptions{Now: clk.Now, SnapEvery: time.Millisecond})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record("recommend", 0.001, 200)
				if i%10 == 0 {
					clk.Advance(time.Millisecond)
					tr.Report()
				}
			}
		}()
	}
	wg.Wait()
	if got := tr.Report().Objectives[0].Requests; got != 4000 {
		t.Fatalf("requests = %d, want 4000", got)
	}
}

func TestBurnEdgeCases(t *testing.T) {
	if burn(0.02, 0.99) != 2.0000000000000004 && !approx(burn(0.02, 0.99), 2) {
		t.Fatalf("burn(0.02, 0.99) = %v", burn(0.02, 0.99))
	}
	if burn(0, 1.0) != 0 {
		t.Fatalf("zero-budget clean burn = %v", burn(0, 1.0))
	}
	if burn(0.001, 1.0) != burnBreach {
		t.Fatalf("zero-budget dirty burn = %v", burn(0.001, 1.0))
	}
}
