package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestConcurrentIncrements hammers one counter, gauge and histogram from
// many goroutines; run under -race this doubles as the data-race test.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_ops_total", "ops")
	g := r.Gauge("t_inflight", "inflight")
	h := r.Histogram("t_latency_seconds", "latency", []float64{0.001, 0.01, 0.1})
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.005)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), float64(workers*perWorker); got != want {
		t.Fatalf("counter = %g, want %g", got, want)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %g, want 0", g.Value())
	}
	if got, want := h.Count(), uint64(workers*perWorker); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
	if got, want := h.Sum(), 0.005*workers*perWorker; math.Abs(got-want) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", got, want)
	}
}

// TestHistogramBucketBoundaries pins the `le` (inclusive upper bound)
// semantics, including values exactly on a boundary and beyond the last.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_sizes", "sizes", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1} // ≤1: {0.5, 1}; ≤2: {1.5, 2}; +Inf: {3}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 || h.Sum() != 8 {
		t.Fatalf("count/sum = %d/%g, want 5/8", h.Count(), h.Sum())
	}
}

func TestCounterMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "t")
	c.Add(2)
	c.Add(-5) // ignored
	c.Add(math.NaN())
	if c.Value() != 2 {
		t.Fatalf("counter = %g, want 2", c.Value())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_h", "", []float64{1})
	c.Inc()
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must be inert")
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_total", "t", "rank", "3")
	b := r.Counter("t_total", "t", "rank", "3")
	if a != b {
		t.Fatal("same identity returned distinct counters")
	}
	if r.Counter("t_total", "t", "rank", "4") == a {
		t.Fatal("distinct labels shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind collision did not panic")
		}
	}()
	r.Gauge("t_total", "t", "rank", "3")
}

// goldenRegistry builds the fixture shared by the exposition golden tests.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("mpi_messages_total", "point-to-point messages sent").Add(42)
	r.Counter("mpi_wait_seconds_total", "busy-wait seconds", "rank", "0").Add(0.25)
	r.Counter("mpi_wait_seconds_total", "busy-wait seconds", "rank", "1").Add(1.5)
	r.Gauge("kernel_pool_workers", "worker pool size").Set(8)
	h := r.Histogram("ime_level_seconds", "per-level duration", []float64{0.0001, 0.001, 0.01})
	h.Observe(0.00005)
	h.Observe(0.0005)
	h.Observe(0.5)
	r.Counter("rapl_energy_joules_total", "energy by domain",
		"node", "0", "domain", "PACKAGE_ENERGY:PACKAGE0").Add(12.5)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "registry.prom", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The export must be valid JSON before it is compared byte-for-byte.
	var doc struct {
		Metrics []map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.Metrics) != 6 {
		t.Fatalf("exported %d series, want 6", len(doc.Metrics))
	}
	checkGolden(t, "registry.json", buf.Bytes())
}
