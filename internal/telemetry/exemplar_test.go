package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_s", "request latency", []float64{0.01, 0.1})
	h.ObserveWithExemplar(0.005, "aaaa")
	h.ObserveWithExemplar(0.05, "bbbb")
	h.Observe(0.05) // untagged: must not displace the exemplar
	h.ObserveWithExemplar(5, "cccc")
	ex := h.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("exemplar slots = %d, want 3", len(ex))
	}
	if ex[0] == nil || ex[0].TraceID != "aaaa" || ex[0].Value != 0.005 {
		t.Fatalf("bucket 0 exemplar = %+v", ex[0])
	}
	if ex[1] == nil || ex[1].TraceID != "bbbb" {
		t.Fatalf("bucket 1 exemplar = %+v", ex[1])
	}
	if ex[2] == nil || ex[2].TraceID != "cccc" {
		t.Fatalf("+Inf exemplar = %+v", ex[2])
	}
	// Newest tagged observation wins.
	h.ObserveWithExemplar(0.003, "dddd")
	if got := h.Exemplars()[0].TraceID; got != "dddd" {
		t.Fatalf("bucket 0 exemplar after update = %q", got)
	}
	// Counts include both tagged and untagged observations.
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
}

func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_s", "latency", []float64{0.01})
	h.ObserveWithExemplar(0.002, "0123456789abcdef0123456789abcdef")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `req_s_bucket{le="0.01"} 1 # {trace_id="0123456789abcdef0123456789abcdef"} 0.002`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition missing exemplar suffix:\n%s", buf.String())
	}
	// Buckets without exemplars stay in the plain format.
	if !strings.Contains(buf.String(), `req_s_bucket{le="+Inf"} 1`+"\n") {
		t.Fatalf("+Inf bucket malformed:\n%s", buf.String())
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"trace_id": "0123456789abcdef0123456789abcdef"`) {
		t.Fatalf("JSON exposition missing exemplar:\n%s", buf.String())
	}
}

// TestExemplarConcurrentRecording hammers one histogram from many
// goroutines; under -race this is the exemplar plane's data-race test.
func TestExemplarConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_s", "latency", []float64{0.01, 0.1, 1})
	ids := []string{"aaaa", "bbbb", "cccc", "dddd"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveWithExemplar(float64(i%200)/100, ids[w%len(ids)])
				if i%100 == 0 {
					h.Exemplars()
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	for i, ex := range h.Exemplars() {
		if ex == nil {
			continue
		}
		found := false
		for _, id := range ids {
			if ex.TraceID == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("bucket %d exemplar has torn trace id %q", i, ex.TraceID)
		}
	}
	// Nil histogram stays inert.
	var nilH *Histogram
	nilH.ObserveWithExemplar(1, "x")
	if nilH.Exemplars() != nil {
		t.Fatal("nil histogram exemplars not nil")
	}
}
