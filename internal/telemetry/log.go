package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Structured leveled logging for the serving layer: key/value records
// rendered as logfmt or JSON, with per-request fields carried by child
// loggers (With) and 1-in-N sampling for high-QPS paths (Sampled). The
// same nil-safety contract as the rest of the package applies: a nil
// *Logger swallows everything with one branch, so call sites need no
// "is logging on" checks.

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel is the inverse of Level.String, for flag-driven callers.
func ParseLevel(s string) (Level, error) {
	for _, l := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError} {
		if s == l.String() {
			return l, nil
		}
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", s)
}

// LogFormat selects the record encoding.
type LogFormat int

const (
	// Logfmt renders `ts=... level=info msg="..." k=v` lines.
	Logfmt LogFormat = iota
	// LogJSON renders one JSON object per line.
	LogJSON
)

// ParseLogFormat maps the flag spellings "logfmt" and "json".
func ParseLogFormat(s string) (LogFormat, error) {
	switch s {
	case "logfmt":
		return Logfmt, nil
	case "json":
		return LogJSON, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown log format %q (want logfmt or json)", s)
	}
}

// logSink is the shared write end of a logger family: one mutex per
// destination, so With/Sampled children interleave whole lines.
type logSink struct {
	mu sync.Mutex
	w  io.Writer
}

// LoggerOptions configures NewLogger. The zero value selects logfmt at
// info level with wall-clock timestamps.
type LoggerOptions struct {
	Level  Level
	Format LogFormat
	// Now overrides the timestamp source (tests pin it for golden output).
	Now func() time.Time
}

// Logger is a leveled key/value logger. Construct with NewLogger; derive
// request-scoped children with With and sampled variants with Sampled.
// All methods are safe for concurrent use and nil-safe.
type Logger struct {
	sink   *logSink
	level  Level
	format LogFormat
	now    func() time.Time
	base   []Attr
	// Sampling state: every is the 1-in-N keep rate (0 = keep all);
	// the counter is shared by all clones of one Sampled call so the
	// rate holds across goroutines.
	every uint64
	seq   *atomic.Uint64
}

// NewLogger returns a logger writing to w.
func NewLogger(w io.Writer, opts LoggerOptions) *Logger {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Logger{
		sink:   &logSink{w: w},
		level:  opts.Level,
		format: opts.Format,
		now:    opts.Now,
	}
}

// With returns a child logger whose records carry the given key/value
// pairs (key, value, key, value, …) before the per-call fields.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	c := *l
	c.base = append(append([]Attr(nil), l.base...), pairs(kv)...)
	return &c
}

// Sampled returns a child that keeps 1 in every records at Debug and
// Info level (the first record always passes, so a quiet path still
// surfaces). Warn and Error records are never sampled away. every <= 1
// disables sampling.
func (l *Logger) Sampled(every int) *Logger {
	if l == nil || every <= 1 {
		return l
	}
	c := *l
	c.every = uint64(every)
	c.seq = &atomic.Uint64{}
	return &c
}

// Enabled reports whether records at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	if l.every > 1 && level < LevelWarn {
		// seq starts at 0 so the first record always passes.
		if l.seq.Add(1)%l.every != 1 {
			return
		}
	}
	attrs := pairs(kv)
	var b strings.Builder
	if l.format == LogJSON {
		b.WriteString(`{"ts":`)
		b.WriteString(strconv.Quote(l.now().UTC().Format(time.RFC3339Nano)))
		b.WriteString(`,"level":`)
		b.WriteString(strconv.Quote(level.String()))
		b.WriteString(`,"msg":`)
		b.WriteString(strconv.Quote(msg))
		for _, a := range l.base {
			writeJSONAttr(&b, a)
		}
		for _, a := range attrs {
			writeJSONAttr(&b, a)
		}
		b.WriteString("}\n")
	} else {
		b.WriteString("ts=")
		b.WriteString(l.now().UTC().Format(time.RFC3339Nano))
		b.WriteString(" level=")
		b.WriteString(level.String())
		b.WriteString(" msg=")
		b.WriteString(logfmtValue(msg))
		for _, a := range l.base {
			writeLogfmtAttr(&b, a)
		}
		for _, a := range attrs {
			writeLogfmtAttr(&b, a)
		}
		b.WriteByte('\n')
	}
	l.sink.mu.Lock()
	l.sink.w.Write([]byte(b.String()))
	l.sink.mu.Unlock()
}

// pairs folds a (key, value, …) argument list into attributes; a
// dangling key gets a "(MISSING)" value rather than a panic (logging
// must never take the request down).
func pairs(kv []any) []Attr {
	if len(kv) == 0 {
		return nil
	}
	attrs := make([]Attr, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		var v any = "(MISSING)"
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		attrs = append(attrs, Attr{Key: key, Value: v})
	}
	return attrs
}

func writeJSONAttr(b *strings.Builder, a Attr) {
	b.WriteByte(',')
	b.WriteString(strconv.Quote(a.Key))
	b.WriteByte(':')
	switch v := a.Value.(type) {
	case string:
		b.WriteString(strconv.Quote(v))
	case bool:
		b.WriteString(strconv.FormatBool(v))
	case int:
		b.WriteString(strconv.Itoa(v))
	case int64:
		b.WriteString(strconv.FormatInt(v, 10))
	case uint64:
		b.WriteString(strconv.FormatUint(v, 10))
	case float64:
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	case error:
		b.WriteString(strconv.Quote(v.Error()))
	default:
		b.WriteString(strconv.Quote(fmt.Sprint(v)))
	}
}

func writeLogfmtAttr(b *strings.Builder, a Attr) {
	b.WriteByte(' ')
	b.WriteString(a.Key)
	b.WriteByte('=')
	switch v := a.Value.(type) {
	case string:
		b.WriteString(logfmtValue(v))
	case bool:
		b.WriteString(strconv.FormatBool(v))
	case int:
		b.WriteString(strconv.Itoa(v))
	case int64:
		b.WriteString(strconv.FormatInt(v, 10))
	case uint64:
		b.WriteString(strconv.FormatUint(v, 10))
	case float64:
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	case error:
		b.WriteString(logfmtValue(v.Error()))
	default:
		b.WriteString(logfmtValue(fmt.Sprint(v)))
	}
}

// logfmtValue quotes a string only when it needs it.
func logfmtValue(s string) string {
	if s == "" {
		return `""`
	}
	for _, r := range s {
		if r == ' ' || r == '"' || r == '=' || r < 0x20 {
			return strconv.Quote(s)
		}
	}
	return s
}
