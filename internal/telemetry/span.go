package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Request-scoped tracing. Where the mpi tracer records a solver's
// *virtual-time* schedule, this file records the *wall-clock* life of one
// serving-layer request: a Trace is a bounded bag of spans assembled
// under a W3C-style trace ID, cheap enough to build on every request and
// exportable in the same Perfetto/Chrome format the engine traces use —
// so "why was this request slow" and "what did the modelled solver cost"
// are answered by one artifact.
//
// Concurrency: spans may be started, annotated and ended from any
// goroutine; the trace serialises appends under one mutex (requests
// record ~10 spans, so contention is nil). A nil *Trace and a nil *Span
// are inert, mirroring the registry instruments: one pointer gates the
// whole tracing plane.

// Attr is one span attribute (insertion-ordered key/value).
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanRecord is one finished span of a trace. Wall-clock spans live on
// the request track (Track == ""); model-time spans (virtual solver
// seconds) live on named tracks so the two time bases never share an
// axis. Times are microseconds from the trace anchor.
type SpanRecord struct {
	ID      uint64  `json:"id"`
	Parent  uint64  `json:"parent"` // 0 = root
	Name    string  `json:"name"`
	Track   string  `json:"track,omitempty"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	Attrs   []Attr  `json:"attrs,omitempty"`
}

// Trace is one request's span collection, identified by a 32-hex-digit
// W3C trace ID. Construct with NewTrace; methods are safe for concurrent
// use and nil-safe.
type Trace struct {
	id     string
	anchor time.Time
	now    func() time.Time

	mu     sync.Mutex
	nextID uint64
	spans  []SpanRecord
}

// NewTrace returns an empty trace anchored at the current wall clock. An
// empty id draws a fresh random trace ID.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	t := &Trace{id: id, now: time.Now}
	t.anchor = t.now()
	return t
}

// NewTraceID returns a random 16-byte trace ID in lowercase hex — the
// trace-id field of a W3C traceparent header.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; keep the trace
		// usable anyway with a constant sentinel ID.
		return "00000000000000000000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Span is an open wall-clock span. End it exactly once; SetAttr calls
// must happen before End. A span belongs to the goroutine that started
// it (the trace itself is what's shared).
type Span struct {
	tr     *Trace
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
}

// StartSpan opens a named wall-clock span, optionally under a parent.
func (t *Trace) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	var pid uint64
	if parent != nil {
		pid = parent.id
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tr: t, id: id, parent: pid, name: name, start: t.now()}
}

// ID returns the span's trace-local ID (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span and appends its record to the trace.
func (s *Span) End() {
	if s == nil || s.tr == nil {
		return
	}
	end := s.tr.now()
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: float64(s.start.Sub(s.tr.anchor)) / float64(time.Microsecond),
		DurUS:   float64(end.Sub(s.start)) / float64(time.Microsecond),
		Attrs:   s.attrs,
	}
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, rec)
	s.tr.mu.Unlock()
}

// AddVirtualSpan appends a finished model-time span on a named track
// (virtual solver seconds, not wall time), parented under parent (0 =
// root). It returns the new span's ID so virtual spans can nest.
func (t *Trace) AddVirtualSpan(track, name string, parent uint64, startS, endS float64, attrs ...Attr) uint64 {
	if t == nil || track == "" {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	t.spans = append(t.spans, SpanRecord{
		ID:      t.nextID,
		Parent:  parent,
		Name:    name,
		Track:   track,
		StartUS: startS * 1e6,
		DurUS:   (endS - startS) * 1e6,
		Attrs:   attrs,
	})
	return t.nextID
}

// Spans returns the recorded spans sorted by (track, start, -end): the
// wall-clock request track first, then the virtual tracks, each with
// wrappers before the primitives they contain.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		if out[i].StartUS != out[j].StartUS {
			return out[i].StartUS < out[j].StartUS
		}
		return out[i].DurUS > out[j].DurUS
	})
	return out
}

// --- W3C traceparent ---

// Traceparent renders the header advertising this trace: version 00, the
// trace ID, the root span as parent-id, sampled flag set.
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("00-%s-%016x-01", t.id, 1)
}

// ParseTraceparent extracts the trace ID from a W3C traceparent header
// (version-traceid-parentid-flags). It returns ok=false for anything
// malformed, letting callers fall back to a generated ID.
func ParseTraceparent(h string) (traceID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", false
	}
	id := strings.ToLower(parts[1])
	if _, err := hex.DecodeString(id); err != nil {
		return "", false
	}
	if id == strings.Repeat("0", 32) {
		return "", false
	}
	return id, true
}

// --- Perfetto export ---

// traceEvent is one entry of the Chrome trace-event format (kept local:
// internal/mpi imports this package, so the envelope is duplicated
// rather than shared).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Pids of the two processes a request trace renders as.
const (
	pidServing = 0 // wall-clock serving stages
	pidModel   = 1 // virtual-time modelled solver cost
)

// WriteChromeTrace emits the trace in the Chrome/Perfetto trace-event
// JSON format (the same {"traceEvents":[...]} envelope the engine's
// mpi.WriteChromeTrace uses, parseable by mpi.ReadChromeTrace): the
// serving stages as one wall-clock process, each virtual track as a
// named thread of a "modelled solver" process. Span and parent IDs ride
// in args so the hierarchy survives the export.
func (t *Trace) WriteChromeTrace(out io.Writer) error {
	if t == nil {
		return fmt.Errorf("telemetry: nil trace")
	}
	spans := t.Spans()
	events := make([]traceEvent, 0, len(spans)+8)
	events = append(events,
		traceEvent{Name: "process_name", Ph: "M", Pid: pidServing,
			Args: map[string]any{"name": "serving " + t.id}},
		traceEvent{Name: "process_sort_index", Ph: "M", Pid: pidServing,
			Args: map[string]any{"sort_index": pidServing}},
		traceEvent{Name: "thread_name", Ph: "M", Pid: pidServing, Tid: 0,
			Args: map[string]any{"name": "request"}},
	)
	// Stable thread IDs for the virtual tracks, in first-sorted order.
	trackTid := map[string]int{}
	for _, s := range spans {
		if s.Track == "" {
			continue
		}
		if _, ok := trackTid[s.Track]; !ok {
			tid := len(trackTid)
			trackTid[s.Track] = tid
			events = append(events,
				traceEvent{Name: "thread_name", Ph: "M", Pid: pidModel, Tid: tid,
					Args: map[string]any{"name": s.Track}},
			)
		}
	}
	// Sort tracks by name in the viewer regardless of first-span order
	// (fleet timelines name tracks node-0000, node-0001, ... — without
	// this they render in scheduling order, not node order).
	if len(trackTid) > 0 {
		names := make([]string, 0, len(trackTid))
		for name := range trackTid {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			events = append(events,
				traceEvent{Name: "thread_sort_index", Ph: "M", Pid: pidModel, Tid: trackTid[name],
					Args: map[string]any{"sort_index": i}},
			)
		}
	}
	if len(trackTid) > 0 {
		events = append(events,
			traceEvent{Name: "process_name", Ph: "M", Pid: pidModel,
				Args: map[string]any{"name": "modelled solver (virtual time)"}},
			traceEvent{Name: "process_sort_index", Ph: "M", Pid: pidModel,
				Args: map[string]any{"sort_index": pidModel}},
		)
	}
	for _, s := range spans {
		e := traceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   s.StartUS,
			Dur:  s.DurUS,
			Pid:  pidServing,
			Tid:  0,
			Cat:  "stage",
			Args: map[string]any{"kind": "stage", "name": s.Name, "span": s.ID, "parent": s.Parent},
		}
		if s.Track != "" {
			e.Pid = pidModel
			e.Tid = trackTid[s.Track]
			e.Cat = "model"
			e.Args["kind"] = "model"
			e.Args["track"] = s.Track
		}
		for _, a := range s.Attrs {
			e.Args[a.Key] = a.Value
		}
		events = append(events, e)
	}
	enc := json.NewEncoder(out)
	return enc.Encode(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"})
}
