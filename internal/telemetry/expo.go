package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// formatValue renders a float the way the Prometheus text format expects:
// shortest round-trip representation, `+Inf`/`-Inf` spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// series renders one exposition line: base name, merged label fragment
// (series labels plus any extra pairs, e.g. `le`), and value.
func series(w io.Writer, base, labels, extra, value string) {
	switch {
	case labels == "" && extra == "":
		fmt.Fprintf(w, "%s %s\n", base, value)
	case labels == "":
		fmt.Fprintf(w, "%s{%s} %s\n", base, extra, value)
	case extra == "":
		fmt.Fprintf(w, "%s{%s} %s\n", base, labels, value)
	default:
		fmt.Fprintf(w, "%s{%s,%s} %s\n", base, labels, extra, value)
	}
}

// WritePrometheus emits the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per metric family, then the
// series sorted by label set. Output is deterministic.
func (r *Registry) WritePrometheus(out io.Writer) error {
	w := bufio.NewWriter(out)
	var lastBase string
	for _, e := range r.snapshot() {
		if e.base != lastBase {
			if e.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", e.base, e.help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", e.base, e.kind)
			lastBase = e.base
		}
		switch e.kind {
		case kindCounter:
			series(w, e.base, e.labels, "", formatValue(e.c.Value()))
		case kindGauge:
			series(w, e.base, e.labels, "", formatValue(e.g.Value()))
		case kindHistogram:
			bounds := e.h.Bounds()
			counts := e.h.BucketCounts()
			exemplars := e.h.Exemplars()
			var cum uint64
			for i, c := range counts {
				cum += c
				le := "+Inf"
				if i < len(bounds) {
					le = formatValue(bounds[i])
				}
				value := strconv.FormatUint(cum, 10)
				// OpenMetrics-style exemplar suffix: the bucket's latest
				// tagged observation, linking the series to a request trace.
				if ex := exemplars[i]; ex != nil {
					value += fmt.Sprintf(" # {trace_id=%q} %s", ex.TraceID, formatValue(ex.Value))
				}
				series(w, e.base+"_bucket", e.labels, fmt.Sprintf("le=%q", le), value)
			}
			series(w, e.base+"_sum", e.labels, "", formatValue(e.h.Sum()))
			series(w, e.base+"_count", e.labels, "", strconv.FormatUint(e.h.Count(), 10))
		}
	}
	return w.Flush()
}

// jsonBucket is one histogram bucket in the JSON exposition.
type jsonBucket struct {
	LE       string        `json:"le"`
	Count    uint64        `json:"count"` // cumulative, like the text format
	Exemplar *jsonExemplar `json:"exemplar,omitempty"`
}

// jsonExemplar is a bucket's latest tagged observation.
type jsonExemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// jsonMetric is one series in the JSON exposition.
type jsonMetric struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Help    string            `json:"help,omitempty"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Buckets []jsonBucket      `json:"buckets,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
}

// WriteJSON emits the registry as a JSON document: a sorted array of
// series under "metrics". Deterministic, machine-readable counterpart of
// WritePrometheus.
func (r *Registry) WriteJSON(out io.Writer) error {
	metrics := make([]jsonMetric, 0)
	for _, e := range r.snapshot() {
		m := jsonMetric{Name: e.base, Type: e.kind.String(), Help: e.help, Labels: parseLabels(e.labels)}
		switch e.kind {
		case kindCounter:
			v := e.c.Value()
			m.Value = &v
		case kindGauge:
			v := e.g.Value()
			m.Value = &v
		case kindHistogram:
			bounds := e.h.Bounds()
			exemplars := e.h.Exemplars()
			var cum uint64
			for i, c := range e.h.BucketCounts() {
				cum += c
				le := "+Inf"
				if i < len(bounds) {
					le = formatValue(bounds[i])
				}
				b := jsonBucket{LE: le, Count: cum}
				if ex := exemplars[i]; ex != nil {
					b.Exemplar = &jsonExemplar{TraceID: ex.TraceID, Value: ex.Value}
				}
				m.Buckets = append(m.Buckets, b)
			}
			s := e.h.Sum()
			n := e.h.Count()
			m.Sum = &s
			m.Count = &n
		}
		metrics = append(metrics, m)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []jsonMetric `json:"metrics"`
	}{metrics})
}

// parseLabels splits a rendered `k="v",…` fragment back into a map for
// the JSON exposition.
func parseLabels(labels string) map[string]string {
	if labels == "" {
		return nil
	}
	out := make(map[string]string)
	rest := labels
	for rest != "" {
		eq := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '=' {
				eq = i
				break
			}
		}
		if eq < 0 || eq+1 >= len(rest) || rest[eq+1] != '"' {
			break
		}
		k := rest[:eq]
		v, tail, err := unquotePrefix(rest[eq+1:])
		if err != nil {
			break
		}
		out[k] = v
		rest = tail
		if rest != "" && rest[0] == ',' {
			rest = rest[1:]
		}
	}
	return out
}

// unquotePrefix unquotes the leading Go-quoted string of s and returns the
// remainder.
func unquotePrefix(s string) (string, string, error) {
	for i := 1; i < len(s); i++ {
		if s[i] == '"' && s[i-1] != '\\' {
			v, err := strconv.Unquote(s[:i+1])
			return v, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("telemetry: unterminated label value %q", s)
}
