// Package perfmodel is the analytic time/energy engine that replays the
// solvers' schedules at paper scale (n up to 34560, up to 1296 ranks) —
// sizes the executable simulated-MPI engine cannot reach in reasonable
// wall time. It shares every cost constant with the executable solvers
// (ime.EffFlopsPerCore, scalapack.DramBytesPerFlop, mpi.CostModel, the
// power calibration) and is cross-checked against them from 2 up to 576
// ranks in crosscheck_test.go.
//
// Modelling assumptions, each tied to an algorithmic property:
//
//   - IMe has no pivoting, so its data flow is fully predictable: the
//     per-level pivot-row broadcast pipelines with the fundamental-formula
//     update, and the h broadcast and last-row gather are off the critical
//     path (no rank's compute consumes them). With Overlap enabled the
//     exposed per-level cost is max(compute, pivot broadcast); the
//     executable engine is synchronous, so cross-checks run Overlap=false.
//   - ScaLAPACK's partial pivoting serialises one MAXLOC allreduce, a row
//     swap and a pivot-row broadcast per column — data-dependent work that
//     no lookahead can hide. The panel/update broadcasts do overlap with
//     the trailing GEMM when Overlap is enabled (pdgetrf lookahead).
//   - During a job every core is busy (computing or busy-polling MPI), so
//     package power follows the placement's active-core counts for the
//     whole duration; compute seconds are charged at the algorithm's
//     activity factor, poll time at nominal.
package perfmodel

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/power"
	"repro/internal/rapl"
	"repro/internal/scalapack"
)

// Algorithm selects the solver being modelled.
type Algorithm int

const (
	// IMe is the parallel Inhibition Method (IMeP).
	IMe Algorithm = iota
	// ScaLAPACK is block-cyclic Gaussian elimination with partial pivoting.
	ScaLAPACK
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case IMe:
		return "IMe"
	case ScaLAPACK:
		return "ScaLAPACK"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists both solvers in paper order.
func Algorithms() []Algorithm { return []Algorithm{IMe, ScaLAPACK} }

// ParseAlgorithm is the inverse of Algorithm.String (case-insensitive),
// for request-driven callers that receive algorithm names as text.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if strings.EqualFold(s, a.String()) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("perfmodel: unknown algorithm %q (want IMe or ScaLAPACK)", s)
}

// Params configures a model run.
type Params struct {
	// Cost is the communication model (DefaultCostModel if zero).
	Cost mpi.CostModel
	// Calibration is the node power model (Skylake8160 if zero).
	Calibration power.Calibration
	// Overlap enables communication/computation overlap (see package
	// comment). The figure benches enable it; cross-checks against the
	// synchronous executable engine disable it.
	Overlap bool
	// BlockSize is ScaLAPACK's nb (DefaultBlockSize if 0).
	BlockSize int
	// PowerCapW applies a RAPL PL1 cap to every package (0 = uncapped) —
	// the paper's future-work experiment.
	PowerCapW float64
	// NodeVariability models the run-to-run machine variation the paper
	// reports ("variations in the processors used for each execution,
	// thereby limiting the precision", §5.3): each run's duration and
	// power are scaled by deterministic factors in
	// [1−NodeVariability, 1+NodeVariability] drawn from NoiseSeed.
	// Zero (the default) keeps runs exactly reproducible.
	NodeVariability float64
	NoiseSeed       int64
}

// jitterFactors derives the run's time and power scale factors from the
// seed with a splitmix64 hash, so repetitions are deterministic.
func (prm Params) jitterFactors() (fTime, fPower float64) {
	if prm.NodeVariability <= 0 {
		return 1, 1
	}
	v := prm.NodeVariability
	if v > 0.5 {
		v = 0.5
	}
	next := func(x uint64) uint64 {
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return x ^ (x >> 31)
	}
	h1 := next(uint64(prm.NoiseSeed))
	h2 := next(h1)
	unit := func(h uint64) float64 { return float64(h%(1<<20))/float64(1<<20)*2 - 1 } // in [-1,1)
	return 1 + v*unit(h1), 1 + v*unit(h2)
}

// Normalized returns the params with every defaulted field resolved to
// its concrete value (cost model, calibration, block size). Two Params
// that normalize equal produce identical model outputs, which is what
// lets request-driven callers use the normalized value as a cache
// identity.
func (prm Params) Normalized() Params {
	prm.normalize()
	return prm
}

// ModelVersion stamps the analytic engine's schedule-replay semantics —
// the per-level/per-column critical-path formulas in ime_model.go and
// scalapack_model.go and the energy integration in energy.go. Bump it on
// any change that alters model outputs for identical Params, so results
// persisted across processes are never served across model changes.
const ModelVersion = "analytic/v1"

// CanonicalIdentity is the persistent cache identity of a Params value:
// the in-process Normalized identity extended with the version stamps of
// every versioned model input. Within one process Normalized alone is a
// sound cache key (the code cannot change under it); across processes and
// code revisions it is not — the same normalized parameters mean
// different results once a model formula, the cost-model semantics, the
// power-model semantics, or a learned coefficient table changes. A
// content-addressed store therefore keys on this struct's canonical JSON:
// equal spellings of a request collapse to one key, and any version bump
// yields a fresh key instead of a stale hit.
type CanonicalIdentity struct {
	// Params is the fully normalized parameter set, concrete constants
	// included (a calibration retune changes the identity by itself).
	Params Params `json:"params"`
	// Model is ModelVersion: the analytic schedule-replay semantics.
	Model string `json:"model"`
	// Cost is mpi.CostModelVersion: the communication-model semantics.
	Cost string `json:"cost"`
	// Calibration is power.CalibrationVersion: the power-model semantics.
	Calibration string `json:"calibration"`
	// Coefficients names the learned coefficient table a result was
	// derived from (surrogate.Predictor.Version()); empty for exact
	// analytic results. Exact and surrogate-derived results must never
	// share an identity, and retrained tables must never serve results
	// fitted by their predecessors.
	Coefficients string `json:"coefficients,omitempty"`
}

// CanonicalIdentity returns the versioned identity of an exact analytic
// evaluation under these params. Callers persisting surrogate-derived
// results set Coefficients to the predictor's table version themselves.
func (prm Params) CanonicalIdentity() CanonicalIdentity {
	return CanonicalIdentity{
		Params:      prm.Normalized(),
		Model:       ModelVersion,
		Cost:        mpi.CostModelVersion,
		Calibration: power.CalibrationVersion,
	}
}

func (prm *Params) normalize() {
	if prm.Cost == (mpi.CostModel{}) {
		prm.Cost = mpi.DefaultCostModel()
	}
	if prm.Calibration == (power.Calibration{}) {
		prm.Calibration = power.Skylake8160()
	}
	if prm.BlockSize <= 0 {
		prm.BlockSize = scalapack.DefaultBlockSize
	}
}

// Result is one modelled execution.
type Result struct {
	Algorithm Algorithm
	N         int
	Config    cluster.Config

	// DurationS is the modelled makespan; ComputeS and ExposedCommS are
	// its breakdown (per the critical-path rank).
	DurationS    float64
	ComputeS     float64
	ExposedCommS float64

	// Energy per RAPL domain summed over all nodes, in joules.
	EnergyJ map[rapl.Domain]float64
	// TotalJ sums the four monitored domains.
	TotalJ float64
}

// AvgPowerW is the whole-job average power.
func (r Result) AvgPowerW() float64 {
	if r.DurationS <= 0 {
		return 0
	}
	return r.TotalJ / r.DurationS
}

// PkgJ returns the package-domain energy.
func (r Result) PkgJ() float64 { return r.EnergyJ[rapl.PKG0] + r.EnergyJ[rapl.PKG1] }

// DramJ returns the DRAM-domain energy.
func (r Result) DramJ() float64 { return r.EnergyJ[rapl.DRAM0] + r.EnergyJ[rapl.DRAM1] }

// DramPowerW is the average DRAM power over the run.
func (r Result) DramPowerW() float64 {
	if r.DurationS <= 0 {
		return 0
	}
	return r.DramJ() / r.DurationS
}

// Run models one (algorithm, order, configuration) execution.
func Run(alg Algorithm, n int, cfg cluster.Config, prm Params) (Result, error) {
	prm.normalize()
	if n <= 0 {
		return Result{}, fmt.Errorf("perfmodel: order %d must be positive", n)
	}
	if cfg.Ranks <= 0 {
		return Result{}, fmt.Errorf("perfmodel: configuration has no ranks")
	}
	if err := prm.Cost.Validate(); err != nil {
		return Result{}, err
	}
	if err := prm.Calibration.Validate(); err != nil {
		return Result{}, err
	}

	// Power capping stretches compute via RAPL frequency scaling; the
	// worst-stretched socket of the placement governs the makespan.
	capStretch := 1.0
	if prm.PowerCapW > 0 {
		for s := 0; s < 2; s++ {
			if cores := cfg.ActiveCores(s); cores > 0 {
				if sl := prm.Calibration.SlowdownUnderCap(prm.PowerCapW, cores, s); sl > capStretch {
					capStretch = sl
				}
			}
		}
	}

	// Single-node jobs ride shared memory; multi-node jobs the fabric.
	intra := cfg.Nodes <= 1
	var t timeBreakdown
	var err error
	switch alg {
	case IMe:
		t, err = imeTime(n, cfg.Ranks, prm, intra, capStretch)
	case ScaLAPACK:
		t, err = scalapackTime(n, cfg.Ranks, prm, intra, capStretch)
	default:
		return Result{}, fmt.Errorf("perfmodel: unknown algorithm %v", alg)
	}
	if err != nil {
		return Result{}, err
	}
	return resultFromTimes(alg, n, cfg, prm, t, capStretch), nil
}

// ResultFromTimes assembles a full Result — energy integration, jitter,
// totals — from an externally supplied pre-jitter time breakdown, using
// the exact power model. This is the seam the learned surrogate plugs
// into: it predicts the schedule-replay seconds (the O(n) part of Run)
// and delegates the O(1) power integration here, so surrogate energies
// inherit the model's calibration exactly and only carry the time error.
func ResultFromTimes(alg Algorithm, n int, cfg cluster.Config, prm Params, computeS, exposedCommS float64) Result {
	prm.normalize()
	capStretch := 1.0
	if prm.PowerCapW > 0 {
		for s := 0; s < 2; s++ {
			if cores := cfg.ActiveCores(s); cores > 0 {
				if sl := prm.Calibration.SlowdownUnderCap(prm.PowerCapW, cores, s); sl > capStretch {
					capStretch = sl
				}
			}
		}
	}
	return resultFromTimes(alg, n, cfg, prm, timeBreakdown{compute: computeS, exposedComm: exposedCommS}, capStretch)
}

// resultFromTimes is the shared tail of Run and ResultFromTimes: machine
// variability jitter, then energy integration over the jittered schedule.
func resultFromTimes(alg Algorithm, n int, cfg cluster.Config, prm Params, t timeBreakdown, capStretch float64) Result {
	res := Result{
		Algorithm:    alg,
		N:            n,
		Config:       cfg,
		DurationS:    t.compute + t.exposedComm,
		ComputeS:     t.compute,
		ExposedCommS: t.exposedComm,
	}
	// Machine variability: a slower chip stretches everything; a hotter
	// one draws more power for the same schedule.
	fTime, fPower := prm.jitterFactors()
	res.DurationS *= fTime
	res.ComputeS *= fTime
	res.ExposedCommS *= fTime

	res.EnergyJ = energyFor(alg, n, cfg, prm, res.DurationS, res.ComputeS, capStretch)
	for _, d := range rapl.Domains() {
		res.EnergyJ[d] *= fPower
		res.TotalJ += res.EnergyJ[d]
	}
	return res
}

// timeBreakdown separates the critical path into compute and exposed
// communication seconds.
type timeBreakdown struct {
	compute     float64
	exposedComm float64
}
