package perfmodel

// These tests pin the calibrated model to the qualitative findings of the
// paper's evaluation (§5). They are the reproduction's contract: if a
// constant changes and a finding no longer holds, a test here fails.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/rapl"
)

func fullLoad(t *testing.T, ranks int) cluster.Config {
	t.Helper()
	cfg, err := cluster.NewConfig(ranks, cluster.FullLoad, cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func runOrDie(t *testing.T, alg Algorithm, n int, cfg cluster.Config, prm Params) Result {
	t.Helper()
	r, err := Run(alg, n, cfg, prm)
	if err != nil {
		t.Fatalf("%v n=%d %s: %v", alg, n, cfg.Label(), err)
	}
	return r
}

func paperGrid(t *testing.T) map[[2]int][2]Result {
	t.Helper()
	out := make(map[[2]int][2]Result)
	prm := Params{Overlap: true}
	for _, n := range cluster.PaperMatrixDims() {
		for _, ranks := range cluster.PaperRankCounts() {
			cfg := fullLoad(t, ranks)
			out[[2]int{n, ranks}] = [2]Result{
				runOrDie(t, IMe, n, cfg, prm),
				runOrDie(t, ScaLAPACK, n, cfg, prm),
			}
		}
	}
	return out
}

// TestFigure5Crossover pins the duration winners of Fig. 5: ScaLAPACK is
// faster in the dense computations, IMe in the distributed ones — the
// paper names 576 and 1296 ranks at n = 8640 and 17280. (25920, 1296) is
// borderline distributed and lands on IMe's side in our calibration; the
// paper does not report it explicitly.
func TestFigure5Crossover(t *testing.T) {
	grid := paperGrid(t)
	imeWins := map[[2]int]bool{
		{8640, 576}: true, {8640, 1296}: true,
		{17280, 576}: true, {17280, 1296}: true,
		{25920, 1296}: true,
	}
	for key, pair := range grid {
		ime, ge := pair[0], pair[1]
		gotIMe := ime.DurationS < ge.DurationS
		if gotIMe != imeWins[key] {
			t.Errorf("n=%d ranks=%d: IMe %.3fs vs ScaLAPACK %.3fs — faster=%v, want IMe-faster=%v",
				key[0], key[1], ime.DurationS, ge.DurationS, gotIMe, imeWins[key])
		}
	}
}

// TestDenseDurationRatio pins the ≈2× IMe/ScaLAPACK duration ratio on the
// densest deployment, consistent with §5.4's energy/power arithmetic.
func TestDenseDurationRatio(t *testing.T) {
	grid := paperGrid(t)
	pair := grid[[2]int{34560, 144}]
	ratio := pair[0].DurationS / pair[1].DurationS
	if ratio < 1.6 || ratio > 2.3 {
		t.Fatalf("dense IMe/ScaLAPACK duration ratio = %.2f, want ≈2", ratio)
	}
}

// TestFigure4EnergyAndTimeGrowWithMatrix pins Fig. 4: at fixed ranks, both
// energy and duration rise superlinearly with the matrix dimension.
func TestFigure4EnergyAndTimeGrowWithMatrix(t *testing.T) {
	grid := paperGrid(t)
	dims := cluster.PaperMatrixDims()
	for _, ranks := range cluster.PaperRankCounts() {
		for ai, alg := range Algorithms() {
			for i := 1; i < len(dims); i++ {
				prev := grid[[2]int{dims[i-1], ranks}][ai]
				cur := grid[[2]int{dims[i], ranks}][ai]
				if cur.DurationS <= prev.DurationS {
					t.Errorf("%v ranks=%d: duration not increasing %d→%d", alg, ranks, dims[i-1], dims[i])
				}
				if cur.TotalJ <= prev.TotalJ {
					t.Errorf("%v ranks=%d: energy not increasing %d→%d", alg, ranks, dims[i-1], dims[i])
				}
			}
			// Superlinear: dimension ×2 (8640→17280) must raise energy by
			// far more than ×2 on the compute-bound 144-rank deployment.
			if ranks == 144 {
				e1 := grid[[2]int{8640, 144}][ai].TotalJ
				e2 := grid[[2]int{17280, 144}][ai].TotalJ
				if e2/e1 < 3 {
					t.Errorf("%v: energy growth 8640→17280 = %.1f×, want superlinear (>3×)", alg, e2/e1)
				}
			}
		}
	}
}

// TestFigure5StrongScaling pins the strong-scalability claim: duration
// falls as ranks grow at fixed matrix size. The paper's smallest matrix
// flattens out at extreme rank counts (the distributed regime where
// communication dominates), so the strict check applies from 17280 up.
func TestFigure5StrongScaling(t *testing.T) {
	grid := paperGrid(t)
	ranks := cluster.PaperRankCounts()
	for _, n := range []int{17280, 25920, 34560} {
		for ai, alg := range Algorithms() {
			for i := 1; i < len(ranks); i++ {
				prev := grid[[2]int{n, ranks[i-1]}][ai]
				cur := grid[[2]int{n, ranks[i]}][ai]
				if cur.DurationS >= prev.DurationS {
					t.Errorf("%v n=%d: duration %d ranks (%.3f) not below %d ranks (%.3f)",
						alg, n, ranks[i], cur.DurationS, ranks[i-1], prev.DurationS)
				}
			}
		}
	}
}

// TestEnergyComparison pins §5.4: ScaLAPACK consumes less total energy in
// every dense cell, with the gap reaching the quoted 50–60% at the large
// matrices and narrowing as ranks grow and the matrix shrinks.
func TestEnergyComparison(t *testing.T) {
	grid := paperGrid(t)
	// Dense cells: all 144-rank cells and everything at n ≥ 25920 except
	// the borderline (25920,1296).
	dense := [][2]int{
		{8640, 144}, {17280, 144}, {25920, 144}, {34560, 144},
		{17280, 576}, {25920, 576}, {34560, 576}, {34560, 1296},
	}
	for _, key := range dense {
		pair := grid[key]
		if pair[1].TotalJ >= pair[0].TotalJ {
			t.Errorf("n=%d ranks=%d: ScaLAPACK energy %.0f J not below IMe %.0f J",
				key[0], key[1], pair[1].TotalJ, pair[0].TotalJ)
		}
	}
	// Headline gap 50–60% at the big compute-bound cells.
	for _, key := range [][2]int{{25920, 144}, {34560, 144}} {
		pair := grid[key]
		gap := 1 - pair[1].TotalJ/pair[0].TotalJ
		if gap < 0.45 || gap > 0.62 {
			t.Errorf("n=%d ranks=%d: energy gap %.0f%%, want ≈50–60%%", key[0], key[1], gap*100)
		}
	}
	// The gap decreases with more ranks at fixed n = 34560…
	g := func(key [2]int) float64 {
		pair := grid[key]
		return 1 - pair[1].TotalJ/pair[0].TotalJ
	}
	if !(g([2]int{34560, 144}) > g([2]int{34560, 576}) && g([2]int{34560, 576}) > g([2]int{34560, 1296})) {
		t.Error("energy gap does not decrease with rank count at n=34560")
	}
	// …and with smaller matrices at fixed 144 ranks.
	if !(g([2]int{34560, 144}) > g([2]int{8640, 144})) {
		t.Error("energy gap does not decrease with matrix size at 144 ranks")
	}
}

// TestFigure6PowerFlatAndGap pins Fig. 6: at fixed ranks, average power is
// nearly constant across matrix dimensions, and IMe draws 12–18% more
// power than ScaLAPACK.
func TestFigure6PowerFlatAndGap(t *testing.T) {
	grid := paperGrid(t)
	for _, ranks := range cluster.PaperRankCounts() {
		for ai, alg := range Algorithms() {
			lo, hi := 1e300, 0.0
			for _, n := range cluster.PaperMatrixDims() {
				p := grid[[2]int{n, ranks}][ai].AvgPowerW()
				if p < lo {
					lo = p
				}
				if p > hi {
					hi = p
				}
			}
			if hi/lo > 1.20 {
				t.Errorf("%v ranks=%d: power spans %.0f–%.0f W (%.0f%%), want nearly flat",
					alg, ranks, lo, hi, (hi/lo-1)*100)
			}
		}
		// Power gap: 12–18% in the compute-bound cells (the paper's
		// quoted band); the most communication-bound cell (8640, 1296)
		// sits below it because polling power is algorithm-independent.
		for _, n := range []int{17280, 25920, 34560} {
			pair := grid[[2]int{n, ranks}]
			gap := pair[0].AvgPowerW()/pair[1].AvgPowerW() - 1
			if gap < 0.10 || gap > 0.20 {
				t.Errorf("n=%d ranks=%d: power gap %.1f%%, want 12–18%%", n, ranks, gap*100)
			}
		}
	}
}

// TestFigure7PowerProportionalToRanks pins Fig. 7: at fixed matrix size,
// power follows the deployed rank count almost proportionally.
func TestFigure7PowerProportionalToRanks(t *testing.T) {
	grid := paperGrid(t)
	for _, n := range cluster.PaperMatrixDims() {
		for ai, alg := range Algorithms() {
			p144 := grid[[2]int{n, 144}][ai].AvgPowerW()
			p576 := grid[[2]int{n, 576}][ai].AvgPowerW()
			p1296 := grid[[2]int{n, 1296}][ai].AvgPowerW()
			if r := p576 / p144; r < 3.2 || r > 4.8 {
				t.Errorf("%v n=%d: power(576)/power(144) = %.2f, want ≈4", alg, n, r)
			}
			if r := p1296 / p144; r < 7.2 || r > 10.8 {
				t.Errorf("%v n=%d: power(1296)/power(144) = %.2f, want ≈9", alg, n, r)
			}
		}
	}
}

// TestDramPowerGap pins §5.4's DRAM observation: the IMe-vs-ScaLAPACK gap
// is much larger in the DRAM domain, around 42% at 144 ranks on the big
// matrix and larger in the distributed deployments.
func TestDramPowerGap(t *testing.T) {
	grid := paperGrid(t)
	pair := grid[[2]int{34560, 144}]
	gap := pair[0].DramPowerW()/pair[1].DramPowerW() - 1
	if gap < 0.35 || gap > 0.55 {
		t.Fatalf("DRAM power gap at (34560,144) = %.0f%%, want ≈42%%", gap*100)
	}
	for key, p := range grid {
		pkgGap := p[0].AvgPowerW()/p[1].AvgPowerW() - 1
		dramGap := p[0].DramPowerW()/p[1].DramPowerW() - 1
		if dramGap <= pkgGap {
			t.Errorf("n=%d ranks=%d: DRAM gap %.0f%% not above total gap %.0f%%",
				key[0], key[1], dramGap*100, pkgGap*100)
		}
	}
}

// TestFigure3FullVsHalfLoad pins Fig. 3: the full-load placement always
// consumes less energy than either half-load placement, and the two
// half-load variants are nearly indistinguishable.
func TestFigure3FullVsHalfLoad(t *testing.T) {
	prm := Params{Overlap: true}
	spec := cluster.MarconiA3()
	for _, n := range cluster.PaperMatrixDims() {
		for _, ranks := range cluster.PaperRankCounts() {
			for ai, alg := range Algorithms() {
				_ = ai
				byPlacement := map[cluster.Placement]Result{}
				for _, pl := range cluster.Placements() {
					cfg, err := cluster.NewConfig(ranks, pl, spec)
					if err != nil {
						t.Fatal(err)
					}
					byPlacement[pl] = runOrDie(t, alg, n, cfg, prm)
				}
				full := byPlacement[cluster.FullLoad].TotalJ
				one := byPlacement[cluster.HalfLoadOneSocket].TotalJ
				two := byPlacement[cluster.HalfLoadTwoSockets].TotalJ
				if full >= one || full >= two {
					t.Errorf("%v n=%d ranks=%d: full load %.0f J not below half loads %.0f/%.0f J",
						alg, n, ranks, full, one, two)
				}
				if diff := one/two - 1; diff < -0.05 || diff > 0.05 {
					t.Errorf("%v n=%d ranks=%d: one- vs two-socket differ by %.1f%%, want ≈equal",
						alg, n, ranks, diff*100)
				}
				// The packed socket's quadratic uncore load makes the
				// one-socket variant marginally more expensive.
				if one <= two {
					t.Errorf("%v n=%d ranks=%d: one-socket %.1f J not above two-socket %.1f J",
						alg, n, ranks, one, two)
				}
			}
		}
	}
}

// TestSocketImbalance pins §5.3: in the one-socket placement the idle
// socket still consumes 40–50% of the busy one (its measured energy is
// "50-60% lower than the other").
func TestSocketImbalance(t *testing.T) {
	cfg, err := cluster.NewConfig(144, cluster.HalfLoadOneSocket, cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	r := runOrDie(t, IMe, 17280, cfg, Params{Overlap: true})
	busy := r.EnergyJ[rapl.PKG0]
	idle := r.EnergyJ[rapl.PKG1]
	frac := idle / busy
	if frac < 0.38 || frac > 0.52 {
		t.Fatalf("idle/busy package energy = %.2f, want 0.40–0.50", frac)
	}
	// And package 0 exceeds package 1 at equal load (two-socket split).
	cfg2, err := cluster.NewConfig(144, cluster.HalfLoadTwoSockets, cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	r2 := runOrDie(t, IMe, 17280, cfg2, Params{Overlap: true})
	if r2.EnergyJ[rapl.PKG0] <= r2.EnergyJ[rapl.PKG1] {
		t.Fatal("package 0 should exceed package 1 at equal load")
	}
}

// TestPowerCapTradeoff exercises the paper's future-work experiment: a
// package power cap lowers average power but stretches execution, and a
// tighter cap stretches it more.
func TestPowerCapTradeoff(t *testing.T) {
	cfg := fullLoad(t, 144)
	base := runOrDie(t, ScaLAPACK, 17280, cfg, Params{Overlap: true})
	capped := runOrDie(t, ScaLAPACK, 17280, cfg, Params{Overlap: true, PowerCapW: 110})
	tighter := runOrDie(t, ScaLAPACK, 17280, cfg, Params{Overlap: true, PowerCapW: 90})
	if capped.DurationS <= base.DurationS {
		t.Fatal("capped run not slower")
	}
	if tighter.DurationS <= capped.DurationS {
		t.Fatal("tighter cap not slower")
	}
	if capped.AvgPowerW() >= base.AvgPowerW() {
		t.Fatal("capped run not lower power")
	}
	// A cap with slack changes nothing.
	slack := runOrDie(t, ScaLAPACK, 17280, cfg, Params{Overlap: true, PowerCapW: 500})
	if slack.DurationS != base.DurationS {
		t.Fatal("slack cap changed duration")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := fullLoad(t, 144)
	if _, err := Run(IMe, 0, cfg, Params{}); err == nil {
		t.Error("zero order accepted")
	}
	if _, err := Run(Algorithm(9), 100, cfg, Params{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Run(IMe, 10, cluster.Config{}, Params{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(IMe, 10, cfg, Params{}); err == nil {
		t.Error("ranks > order accepted")
	}
}

func TestResultAccessors(t *testing.T) {
	cfg := fullLoad(t, 144)
	r := runOrDie(t, IMe, 8640, cfg, Params{Overlap: true})
	if r.PkgJ() <= 0 || r.DramJ() <= 0 {
		t.Fatal("domain energies must be positive")
	}
	sum := r.PkgJ() + r.DramJ()
	if diff := sum/r.TotalJ - 1; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("domain sum %.1f != total %.1f", sum, r.TotalJ)
	}
	if r.AvgPowerW() <= 0 || r.DramPowerW() <= 0 {
		t.Fatal("powers must be positive")
	}
	if (Result{}).AvgPowerW() != 0 || (Result{}).DramPowerW() != 0 {
		t.Fatal("zero-duration result should have zero power")
	}
	if IMe.String() != "IMe" || ScaLAPACK.String() != "ScaLAPACK" || Algorithm(7).String() == "" {
		t.Fatal("Algorithm.String misbehaves")
	}
}
