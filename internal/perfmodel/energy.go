package perfmodel

import (
	"repro/internal/cluster"
	"repro/internal/ime"
	"repro/internal/rapl"
	"repro/internal/scalapack"
)

// energyFor integrates the power model over a modelled run. Every rank is
// busy for the whole duration (computing at the algorithm's activity
// factor, busy-polling MPI at nominal otherwise), so a socket's busy
// core-seconds follow directly from the placement's active-core counts.
// DRAM traffic is the algorithm's bytes-per-flop times the flops executed
// on the socket. A power cap clamps package power at max(cap, idle) — the
// cap stretched the duration via capStretch, so clamped power × longer
// time is how capping trades time for power.
func energyFor(alg Algorithm, n int, cfg cluster.Config, prm Params, duration, computeS float64, capStretch float64) map[rapl.Domain]float64 {
	cal := prm.Calibration
	var activity, bytesPerFlop, totalFlops float64
	switch alg {
	case IMe:
		activity = ime.CoreActivity
		bytesPerFlop = ime.DramBytesPerFlop
		totalFlops = ime.TotalFlops(n)
	default:
		activity = scalapack.CoreActivity
		bytesPerFlop = scalapack.DramBytesPerFlop
		totalFlops = scalapack.TotalFlops(n)
	}
	if computeS > duration {
		computeS = duration
	}
	flopsPerRank := totalFlops / float64(cfg.Ranks)
	pollS := duration - computeS

	out := make(map[rapl.Domain]float64, 4)
	pkgDomains := [2]rapl.Domain{rapl.PKG0, rapl.PKG1}
	dramDomains := [2]rapl.Domain{rapl.DRAM0, rapl.DRAM1}
	coresPerSocket := 24
	if cfg.Spec != nil {
		coresPerSocket = cfg.Spec.CoresPerSocket
	}
	for s := 0; s < 2; s++ {
		cores := cfg.ActiveCores(s)
		busy := float64(cores) * (computeS*activity + pollS)
		pkgJ := cal.PkgEnergy(duration, busy, s) +
			cal.UncorePower(cores, coresPerSocket)*duration
		if prm.PowerCapW > 0 {
			floor := cal.PkgPower(0, s)
			lim := prm.PowerCapW
			if lim < floor {
				lim = floor
			}
			if capped := lim * duration; capped < pkgJ {
				pkgJ = capped
			}
		}
		// DRAM: traffic of the ranks pinned to this socket. The idle
		// socket still refreshes its DIMMs (idle DRAM power applies).
		bytes := flopsPerRank * float64(cores) * bytesPerFlop
		dramJ := cal.DramEnergy(duration, bytes)
		out[pkgDomains[s]] += pkgJ * float64(cfg.Nodes)
		out[dramDomains[s]] += dramJ * float64(cfg.Nodes)
	}
	return out
}
