package perfmodel_test

// Cross-validation of the analytic engine against the executable
// simulated-MPI engine, from 2 up to the paper's 576-rank production
// deployment: the same cost constants drive both,
// so the analytic durations and energies must land near what the real
// distributed execution (with its synchronous store-and-forward
// collectives) accumulates. Overlap is disabled to match the synchronous
// executable engine.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/ime"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/rapl"
	"repro/internal/scalapack"
)

// singleNodeConfig builds a synthetic one-node placement with all ranks on
// socket 0, matching an mpi.World built without a cluster config.
func singleNodeConfig(ranks int) cluster.Config {
	return cluster.Config{
		Spec:         cluster.MarconiA3(),
		Placement:    cluster.HalfLoadOneSocket,
		Ranks:        ranks,
		Nodes:        1,
		RanksPerNode: ranks,
		SocketsUsed:  1,
		RanksSocket0: ranks,
	}
}

func ratioWithin(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want <= 0 {
		t.Fatalf("%s: non-positive reference %g", name, want)
	}
	r := got / want
	if r < 1/tol || r > tol {
		t.Errorf("%s: analytic %g vs executed %g (ratio %.2f, tolerance ×%.1f)", name, got, want, r, tol)
	}
}

func TestIMeAnalyticMatchesExecution(t *testing.T) {
	const n, ranks = 240, 8
	sys := mat.NewRandomSystem(n, 42)
	w, err := mpi.NewWorld(ranks, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) error {
		_, err := ime.SolveParallel(p, p.World(), sys, ime.ParallelOptions{ChargeCosts: true})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := perfmodel.Run(perfmodel.IMe, n, singleNodeConfig(ranks), perfmodel.Params{Overlap: false})
	if err != nil {
		t.Fatal(err)
	}
	ratioWithin(t, "IMe duration", res.DurationS, w.MaxClock(), 1.6)

	node := w.Nodes()[0]
	execJ := node.ExactEnergy(rapl.PKG0) + node.ExactEnergy(rapl.PKG1) +
		node.ExactEnergy(rapl.DRAM0) + node.ExactEnergy(rapl.DRAM1)
	ratioWithin(t, "IMe energy", res.TotalJ, execJ, 1.8)
}

func TestScalapackAnalyticMatchesExecution(t *testing.T) {
	const n, ranks, nb = 240, 4, 16
	sys := mat.NewRandomSystem(n, 43)
	w, err := mpi.NewWorld(ranks, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) error {
		_, err := scalapack.Pdgesv(p, p.World(), sys, scalapack.ParallelOptions{
			BlockSize: nb, ChargeCosts: true,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := perfmodel.Run(perfmodel.ScaLAPACK, n, singleNodeConfig(ranks), perfmodel.Params{
		Overlap: false, BlockSize: nb,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratioWithin(t, "ScaLAPACK duration", res.DurationS, w.MaxClock(), 2.0)

	node := w.Nodes()[0]
	execJ := node.ExactEnergy(rapl.PKG0) + node.ExactEnergy(rapl.PKG1) +
		node.ExactEnergy(rapl.DRAM0) + node.ExactEnergy(rapl.DRAM1)
	ratioWithin(t, "ScaLAPACK energy", res.TotalJ, execJ, 2.0)
}

// TestLargeScaleAnalyticMatchesExecution cross-checks the model at one of
// the paper's production deployments: 576 ranks (12 full-loaded nodes in
// Table 1), two matrix rows per rank. The sparse-matching engine executes
// this as an ordinary test — the previous dense engine made worlds this
// size impractical, which is why the cross-check used to stop at 12 ranks.
// Both engine cells (IMe and ScaLAPACK) run concurrently under one grid
// worker budget. Skipped with -short: the solve is real distributed
// numerics at n=1152.
func TestLargeScaleAnalyticMatchesExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("576-rank executable world; run without -short")
	}
	const n, ranks, nb = 1152, 576, 16
	sys := mat.CachedSystem(n, int64(n))
	// The real Table 1 deployment: 576 ranks full-loading 12 nodes. Both
	// engines see the same placement, so inter-node wire costs and idle
	// power are attributed identically.
	cfg, err := cluster.NewConfig(ranks, cluster.FullLoad, cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	runCell := func(solve func(p *mpi.Proc) error) func() (*mpi.World, error) {
		return func() (*mpi.World, error) {
			w, err := mpi.NewWorld(ranks, mpi.Options{Config: &cfg})
			if err != nil {
				return nil, err
			}
			if err := w.Run(solve); err != nil {
				return nil, err
			}
			return w, nil
		}
	}
	var imeW, geW *mpi.World
	r := grid.New(0)
	err = grid.Do(r,
		func() (err error) {
			imeW, err = runCell(func(p *mpi.Proc) error {
				_, err := ime.SolveParallel(p, p.World(), sys, ime.ParallelOptions{ChargeCosts: true})
				return err
			})()
			return err
		},
		func() (err error) {
			geW, err = runCell(func(p *mpi.Proc) error {
				_, err := scalapack.Pdgesv(p, p.World(), sys, scalapack.ParallelOptions{BlockSize: nb, ChargeCosts: true})
				return err
			})()
			return err
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	clusterEnergy := func(w *mpi.World) float64 {
		var total float64
		for _, node := range w.Nodes() {
			total += node.ExactEnergy(rapl.PKG0) + node.ExactEnergy(rapl.PKG1) +
				node.ExactEnergy(rapl.DRAM0) + node.ExactEnergy(rapl.DRAM1)
		}
		return total
	}

	// Tolerances are wider than the 8-rank checks above: at two matrix
	// rows per rank the cell is purely latency-bound, and the analytic
	// broadcast-chain bound is conservative against the executed engine's
	// pipelined trees (≈2.1× here) while staying well inside one order of
	// magnitude.
	res, err := perfmodel.Run(perfmodel.IMe, n, cfg, perfmodel.Params{Overlap: false})
	if err != nil {
		t.Fatal(err)
	}
	ratioWithin(t, "IMe 576-rank duration", res.DurationS, imeW.MaxClock(), 2.5)
	ratioWithin(t, "IMe 576-rank energy", res.TotalJ, clusterEnergy(imeW), 2.5)

	res, err = perfmodel.Run(perfmodel.ScaLAPACK, n, cfg, perfmodel.Params{Overlap: false, BlockSize: nb})
	if err != nil {
		t.Fatal(err)
	}
	ratioWithin(t, "ScaLAPACK 576-rank duration", res.DurationS, geW.MaxClock(), 2.5)
	ratioWithin(t, "ScaLAPACK 576-rank energy", res.TotalJ, clusterEnergy(geW), 2.5)
}

// TestAnalyticScalesAgainstExecution checks the model tracks the executed
// engine's *trend* as the rank count changes, not just one point.
func TestAnalyticScalesAgainstExecution(t *testing.T) {
	const n = 180
	sys := mat.NewRandomSystem(n, 44)
	exec := make(map[int]float64)
	model := make(map[int]float64)
	for _, ranks := range []int{2, 6, 12} {
		w, err := mpi.NewWorld(ranks, mpi.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(p *mpi.Proc) error {
			_, err := ime.SolveParallel(p, p.World(), sys, ime.ParallelOptions{ChargeCosts: true})
			return err
		}); err != nil {
			t.Fatal(err)
		}
		exec[ranks] = w.MaxClock()
		res, err := perfmodel.Run(perfmodel.IMe, n, singleNodeConfig(ranks), perfmodel.Params{Overlap: false})
		if err != nil {
			t.Fatal(err)
		}
		model[ranks] = res.DurationS
	}
	// Speedup from 2 to 12 ranks must agree within a factor of 2.
	execSpeedup := exec[2] / exec[12]
	modelSpeedup := model[2] / model[12]
	if r := modelSpeedup / execSpeedup; r < 0.5 || r > 2 {
		t.Fatalf("speedup mismatch: model %.2f× vs executed %.2f×", modelSpeedup, execSpeedup)
	}
}
