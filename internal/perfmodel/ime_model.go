package perfmodel

import (
	"fmt"

	"repro/internal/ime"
	"repro/internal/mpi"
)

// bcastTime models a binomial-tree broadcast over p ranks. The executable
// engine forwards whole payloads hop by hop (store-and-forward), which the
// non-overlap model mirrors for cross-checking; production MPI pipelines
// large payloads, which the paper-scale (Overlap) model uses.
func bcastTime(cost mpi.CostModel, p int, bytes float64, intra, pipelined bool) float64 {
	d := float64(mpi.TreeDepth(p))
	perHopCPU := cost.SendOverhead + cost.RecvOverhead
	if pipelined {
		return d*(perHopCPU+cost.Wire(intra, 0)) + bytes/bandwidth(cost, intra)
	}
	return d * (perHopCPU + cost.Wire(intra, bytes))
}

func bandwidth(cost mpi.CostModel, intra bool) float64 {
	if intra {
		return cost.BandwidthIntra
	}
	return cost.BandwidthInter
}

// allreduceTime models reduce-to-root plus broadcast (the executable
// engine's allreduce) for a small payload.
func allreduceTime(cost mpi.CostModel, p int, bytes float64, intra bool) float64 {
	return 2 * bcastTime(cost, p, bytes, intra, false)
}

// gatherTime models the flat gather to the master used by IMeP's last-row
// collection: slave sends overlap in flight, but the master pays a receive
// overhead per message plus the wire time of the aggregate payload.
func gatherTime(cost mpi.CostModel, p int, totalBytes float64, intra bool) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1)*(cost.SendOverhead+cost.RecvOverhead) +
		cost.Wire(intra, 0) + totalBytes/bandwidth(cost, intra)
}

// imeTime replays the IMeP schedule analytically. Per level l = n…1 the
// executable solver performs an h broadcast, a pivot-row broadcast, the
// fundamental-formula update on the widest block, and a flat gather of the
// modified last-row entries — see ime.SolveParallel. With Overlap, only
// the pivot-row broadcast stays on the critical path (pipelined against
// the update); h and the gather are consumed by no rank's compute.
func imeTime(n, ranks int, prm Params, intra bool, capStretch float64) (timeBreakdown, error) {
	if ranks > n {
		return timeBreakdown{}, fmt.Errorf("perfmodel: %d ranks exceed order %d", ranks, n)
	}
	cost := prm.Cost
	lo, hi := ime.BlockRange(n, ranks, 0)
	maxRows := hi - lo
	masterBytes := float64(n-maxRows) * mpi.Float64Bytes

	var t timeBreakdown
	// Init: h and initial-column broadcasts.
	t.exposedComm += 2 * bcastTime(cost, ranks, float64(n)*mpi.Float64Bytes, intra, prm.Overlap)
	for l := n; l >= 1; l-- {
		comp := ime.LevelFlops(n, l) * float64(maxRows) / float64(n) / ime.EffFlopsPerCore * capStretch
		t.compute += comp
		pivotB := bcastTime(cost, ranks, float64(l+1)*mpi.Float64Bytes, intra, prm.Overlap)
		if prm.Overlap {
			// Pipelined pivot broadcast: exposed only beyond the update.
			if pivotB > comp {
				t.exposedComm += pivotB - comp
			}
			continue
		}
		hB := bcastTime(cost, ranks, float64(n)*mpi.Float64Bytes, intra, false)
		g := gatherTime(cost, ranks, masterBytes, intra)
		t.exposedComm += hB + pivotB + g
	}
	// Final solution broadcast.
	t.exposedComm += bcastTime(cost, ranks, float64(n)*mpi.Float64Bytes, intra, prm.Overlap)
	return t, nil
}
