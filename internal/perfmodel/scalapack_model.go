package perfmodel

import (
	"repro/internal/mpi"
	"repro/internal/scalapack"
)

// scalapackTime replays the pdgesv schedule analytically, mirroring
// scalapack.Pdgesv panel by panel. The data-dependent pivoting chain —
// per-column MAXLOC allreduce, row swap, pivot-row broadcast — is always
// exposed; with Overlap the panel/update broadcasts and out-of-panel swaps
// hide behind the trailing GEMM (pdgetrf lookahead).
func scalapackTime(n, ranks int, prm Params, intra bool, capStretch float64) (timeBreakdown, error) {
	grid, err := scalapack.NewGrid(ranks)
	if err != nil {
		return timeBreakdown{}, err
	}
	cost := prm.Cost
	nb := prm.BlockSize
	if nb > n {
		nb = n
	}
	pr, pc := float64(grid.Pr), float64(grid.Pc)
	rate := scalapack.EffFlopsPerCore
	crossRow := 0.0 // fraction of pivots landing on another process row
	if grid.Pr > 1 {
		crossRow = (pr - 1) / pr
	}
	// swapOne is the critical-path cost of one paired row exchange: both
	// directions fly concurrently, so a partner pays its send overhead,
	// one wire time and one receive overhead (plus the peer's send).
	swapOne := func(bytes float64) float64 {
		return 2*cost.SendOverhead + cost.Wire(intra, bytes) + cost.RecvOverhead
	}

	var t timeBreakdown
	for k0 := 0; k0 < n; k0 += nb {
		kw := nb
		if k0+kw > n {
			kw = n - k0
		}
		k1 := k0 + kw
		rowsBelowPanel := float64(n-k0)/pr + 1 // local rows ≥ k0 (worst rank)
		colsTrail := float64(n-k1)/pc + 1      // local trailing columns

		// --- panel factorisation: the unhideable pivoting chain ---
		var panelComp, panelComm float64
		for j := k0; j < k1; j++ {
			rowsBelow := float64(n-j)/pr + 1
			// pivot scan (1 flop per scanned row) + elimination.
			panelComp += rowsBelow / rate
			panelComp += float64(2*(k1-j-1)+1) * rowsBelow / rate
			// MAXLOC allreduce over the process column.
			panelComm += allreduceTime(cost, grid.Pr, 2*mpi.Float64Bytes, intra)
			// Row swap inside the panel (cross-row with probability
			// (Pr−1)/Pr), then the pivot-row segment broadcast.
			panelComm += crossRow * swapOne(float64(k1-j)*mpi.Float64Bytes)
			panelComm += bcastTime(cost, grid.Pr, float64(k1-j)*mpi.Float64Bytes, intra, false)
		}
		t.compute += panelComp * capStretch
		t.exposedComm += panelComm

		// --- pivot list broadcast row-wise ---
		t.exposedComm += bcastTime(cost, grid.Pc, float64(kw+1)*mpi.Float64Bytes, intra, prm.Overlap)

		// --- hideable phase: swaps outside the panel, L/U broadcasts ---
		swapBytes := (float64(n-kw)/pc + 1) * mpi.Float64Bytes
		hideable := float64(kw) * crossRow * (swapOne(swapBytes) + swapOne(mpi.Float64Bytes))
		hideable += bcastTime(cost, grid.Pc, rowsBelowPanel*float64(kw)*mpi.Float64Bytes, intra, prm.Overlap)
		hideable += bcastTime(cost, grid.Pr, (float64(kw)*colsTrail+float64(kw))*mpi.Float64Bytes, intra, prm.Overlap)

		// --- compute: U row triangular solve + trailing GEMM ---
		uComp := (float64(kw*kw)*colsTrail + float64(kw*kw)) / rate
		rowsTrail := float64(n-k1)/pr + 1
		gemm := (2*float64(kw)*rowsTrail*colsTrail + 2*float64(kw)*rowsTrail) / rate
		comp := (uComp + gemm) * capStretch
		t.compute += comp
		if prm.Overlap {
			if hideable > comp {
				t.exposedComm += hideable - comp
			}
		} else {
			t.exposedComm += hideable
		}
	}

	// --- distributed blocked back substitution ---
	nBlocks := (n + nb - 1) / nb
	for bi := nBlocks - 1; bi >= 0; bi-- {
		kw := nb
		if bi == nBlocks-1 && n%nb != 0 {
			kw = n % nb
		}
		colsLocal := float64(n)/pc + 1
		t.compute += (2*float64(kw)*colsLocal + float64(kw*kw)) / rate * capStretch
		t.exposedComm += allreduceTime(cost, grid.Pc, float64(kw)*mpi.Float64Bytes, intra)
		t.exposedComm += bcastTime(cost, ranks, float64(kw+1)*mpi.Float64Bytes, intra, prm.Overlap)
	}
	return t, nil
}
