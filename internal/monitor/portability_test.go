package monitor

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/ime"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/power"
)

// TestPortabilityAlternateMachine runs the unmodified monitoring pipeline
// on a different node shape (2 × 16-core Broadwell-EP with its own power
// calibration) — the §4 portability requirement: the framework adapts
// through configuration alone.
func TestPortabilityAlternateMachine(t *testing.T) {
	spec := cluster.BroadwellEP()
	if spec.CoresPerNode() != 32 {
		t.Fatalf("Broadwell node has %d cores, want 32", spec.CoresPerNode())
	}
	cal := power.BroadwellEP()
	if err := cal.Validate(); err != nil {
		t.Fatal(err)
	}
	// Full load within 5% of the 145 W TDP, like the Skylake calibration.
	if p := cal.PkgPower(16, 1); p < 0.95*cal.TDP || p > 1.05*cal.TDP {
		t.Fatalf("Broadwell full-load power %.1f W vs TDP %.1f W", p, cal.TDP)
	}

	cfg, err := cluster.NewConfig(64, cluster.FullLoad, spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 2 || cfg.RanksSocket0 != 16 {
		t.Fatalf("unexpected config %+v", cfg)
	}
	w, err := mpi.NewWorld(64, mpi.Options{Config: &cfg, Calibration: cal})
	if err != nil {
		t.Fatal(err)
	}
	sys := mat.NewRandomSystem(128, 9)
	var mu sync.Mutex
	monitors := map[int]bool{}
	var reports []NodeReport
	err = w.Run(func(p *mpi.Proc) error {
		s, err := Setup(p, p.World())
		if err != nil {
			return err
		}
		if s.IsMonitor {
			mu.Lock()
			monitors[p.Rank()] = true
			mu.Unlock()
		}
		if err := s.StartMonitoring(); err != nil {
			return err
		}
		x, err := ime.SolveParallel(p, p.World(), sys, ime.ParallelOptions{ChargeCosts: true})
		if err != nil {
			return err
		}
		rep, err := s.StopMonitoring()
		if err != nil {
			return err
		}
		all, err := CollectReports(p, p.World(), rep)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if rr := mat.RelativeResidual(sys.A, x, sys.B); rr > 1e-10 {
				return errStr("solve failed on alternate machine")
			}
			mu.Lock()
			reports = all
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Monitoring ranks: the highest rank of each 32-rank node.
	if len(monitors) != 2 || !monitors[31] || !monitors[63] {
		t.Fatalf("monitoring ranks = %v, want {31, 63}", monitors)
	}
	if len(reports) != 2 {
		t.Fatalf("%d node reports, want 2", len(reports))
	}
	for _, r := range reports {
		if r.TotalJoules() <= 0 {
			t.Fatalf("node %d measured no energy on the alternate machine", r.Node)
		}
	}
}
