package monitor

import (
	"fmt"

	"repro/internal/mpi"
)

// RunBlackBox executes workload under the monitoring framework without the
// workload cooperating in any way — the black-box approach §4 requires the
// framework to accommodate alongside the white-box one. Setup, the node
// barriers, the PAPI start/stop and the report collection all happen
// around the opaque function; the workload itself needs no modification.
//
// All ranks of world call RunBlackBox collectively. The reports (one per
// node) are returned at world rank 0; everyone else gets nil.
//
// As with real MPI collectives, the error contract is collective too: a
// workload that fails on some ranks but keeps communicating on others
// leaves the job in an undefined state (the report gather cannot
// complete). Workloads should fail on all ranks or none — mpi.World.Run
// reports the failure either way.
func RunBlackBox(p *mpi.Proc, world *mpi.Comm, workload func(p *mpi.Proc) error) ([]NodeReport, error) {
	s, err := Setup(p, world)
	if err != nil {
		return nil, err
	}
	if err := s.StartMonitoring(); err != nil {
		return nil, err
	}
	workErr := workload(p)
	// Even a failed workload must complete the framework's own collective
	// protocol (stop barriers + report gather), or the surviving ranks
	// would deadlock waiting for this one.
	rep, stopErr := s.StopMonitoring()
	var reports []NodeReport
	var collectErr error
	if stopErr == nil {
		reports, collectErr = CollectReports(p, world, rep)
	}
	if workErr != nil {
		return nil, fmt.Errorf("monitor: black-box workload: %w", workErr)
	}
	if stopErr != nil {
		return nil, stopErr
	}
	return reports, collectErr
}
