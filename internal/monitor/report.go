package monitor

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/mpi"
	"repro/internal/papi"
)

// WriteNodeReport stores one processor's measurements in a human-readable
// file under dir (the paper's file_management: "it creates one file for
// each processor"). The file name embeds the node id.
func WriteNodeReport(dir string, r *NodeReport) (string, error) {
	if r == nil {
		return "", fmt.Errorf("monitor: nil report")
	}
	path := filepath.Join(dir, fmt.Sprintf("node%04d_energy.txt", r.Node))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# PAPI powercap energy report\n")
	fmt.Fprintf(w, "node: %d\n", r.Node)
	fmt.Fprintf(w, "elapsed_s: %.9f\n", r.ElapsedS)
	for i, name := range r.Events {
		fmt.Fprintf(w, "%s_uJ: %d\n", name, r.Microjoule[i])
	}
	fmt.Fprintf(w, "total_J: %.6f\n", r.TotalJoules())
	fmt.Fprintf(w, "avg_power_W: %.6f\n", r.AvgPowerW())
	if err := w.Flush(); err != nil {
		return "", err
	}
	return path, f.Close()
}

// CollectReports gathers every node's report at world rank 0. All ranks
// call it collectively; monitoring ranks pass their report, others nil.
// Rank 0 returns the reports sorted by node id; everyone else nil.
func CollectReports(p *mpi.Proc, world *mpi.Comm, r *NodeReport) ([]NodeReport, error) {
	var payload []float64
	if r != nil {
		payload = make([]float64, 0, 2+len(r.Microjoule))
		payload = append(payload, float64(r.Node), r.ElapsedS)
		for _, v := range r.Microjoule {
			payload = append(payload, float64(v))
		}
	}
	parts, err := p.Gather(world, 0, payload)
	if err != nil {
		return nil, err
	}
	if parts == nil {
		return nil, nil
	}
	names := papi.DefaultEventNames()
	var out []NodeReport
	for rank, part := range parts {
		if len(part) == 0 {
			continue
		}
		if len(part) != 2+len(names) {
			return nil, fmt.Errorf("monitor: rank %d sent %d report fields, want %d", rank, len(part), 2+len(names))
		}
		rep := NodeReport{
			Node:       int(part[0]),
			ElapsedS:   part[1],
			Events:     names,
			Microjoule: make([]int64, len(names)),
		}
		for i := range names {
			rep.Microjoule[i] = int64(part[2+i])
		}
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out, nil
}

// RunSummary aggregates the per-node reports of one monitored execution.
type RunSummary struct {
	Nodes int
	// DurationS is the longest monitored interval across nodes (the job's
	// monitored makespan).
	DurationS float64
	// TotalJ is the summed package+DRAM energy of all nodes.
	TotalJ float64
	// ByEvent sums each powercap event across nodes, in joules.
	ByEvent map[string]float64
}

// Summarize folds node reports into a run summary.
func Summarize(reports []NodeReport) RunSummary {
	s := RunSummary{ByEvent: make(map[string]float64)}
	for _, r := range reports {
		s.Nodes++
		if r.ElapsedS > s.DurationS {
			s.DurationS = r.ElapsedS
		}
		s.TotalJ += r.TotalJoules()
		for i, name := range r.Events {
			s.ByEvent[name] += float64(r.Microjoule[i]) / papi.MicrojoulesPerJoule
		}
	}
	return s
}

// AvgPowerW is the run's average total power.
func (s RunSummary) AvgPowerW() float64 {
	if s.DurationS <= 0 {
		return 0
	}
	return s.TotalJ / s.DurationS
}

// WriteRunSummary stores the aggregated run results in a human-readable
// file under dir and returns its path.
func WriteRunSummary(dir string, s RunSummary) (string, error) {
	path := filepath.Join(dir, "run_summary.txt")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# monitored run summary\n")
	fmt.Fprintf(w, "nodes: %d\n", s.Nodes)
	fmt.Fprintf(w, "duration_s: %.9f\n", s.DurationS)
	fmt.Fprintf(w, "total_J: %.6f\n", s.TotalJ)
	fmt.Fprintf(w, "avg_power_W: %.6f\n", s.AvgPowerW())
	names := make([]string, 0, len(s.ByEvent))
	for name := range s.ByEvent {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s_J: %.6f\n", name, s.ByEvent[name])
	}
	if err := w.Flush(); err != nil {
		return "", err
	}
	return path, f.Close()
}
