package monitor

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/papi"
)

// newClusterWorld builds a world of two full-load nodes (96 ranks).
func newClusterWorld(t *testing.T) *mpi.World {
	t.Helper()
	cfg, err := cluster.NewConfig(96, cluster.FullLoad, cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(96, mpi.Options{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMonitoringRankDesignation(t *testing.T) {
	w := newClusterWorld(t)
	var mu sync.Mutex
	monitors := map[int]bool{}
	err := w.Run(func(p *mpi.Proc) error {
		s, err := Setup(p, p.World())
		if err != nil {
			return err
		}
		if s.IsMonitor {
			mu.Lock()
			monitors[p.Rank()] = true
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Highest rank of each 48-rank node: 47 and 95.
	if len(monitors) != 2 || !monitors[47] || !monitors[95] {
		t.Fatalf("monitoring ranks = %v, want {47, 95}", monitors)
	}
}

func TestMonitoredRunMeasuresEnergy(t *testing.T) {
	w := newClusterWorld(t)
	var mu sync.Mutex
	var reports []NodeReport
	err := w.Run(func(p *mpi.Proc) error {
		s, err := Setup(p, p.World())
		if err != nil {
			return err
		}
		if err := s.StartMonitoring(); err != nil {
			return err
		}
		// The "solver part": every rank computes for 0.5 virtual seconds.
		p.Compute(0.5, 1e6)
		rep, err := s.StopMonitoring()
		if err != nil {
			return err
		}
		all, err := CollectReports(p, p.World(), rep)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			mu.Lock()
			reports = all
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d node reports, want 2", len(reports))
	}
	for _, r := range reports {
		if r.ElapsedS < 0.5 {
			t.Errorf("node %d elapsed %g < compute time", r.Node, r.ElapsedS)
		}
		if r.TotalJoules() <= 0 {
			t.Errorf("node %d measured no energy", r.Node)
		}
		if len(r.Events) != 4 || len(r.Microjoule) != 4 {
			t.Errorf("node %d has %d events", r.Node, len(r.Events))
		}
		if r.AvgPowerW() < 50 || r.AvgPowerW() > 500 {
			t.Errorf("node %d avg power %.1f W implausible", r.Node, r.AvgPowerW())
		}
	}
	sum := Summarize(reports)
	if sum.Nodes != 2 || sum.TotalJ <= 0 || sum.AvgPowerW() <= 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(sum.ByEvent) != 4 {
		t.Fatalf("summary has %d events", len(sum.ByEvent))
	}
	// PKG0 must exceed PKG1 (socket-0 OS noise).
	if sum.ByEvent["powercap:::PACKAGE_ENERGY:PACKAGE0"] <= sum.ByEvent["powercap:::PACKAGE_ENERGY:PACKAGE1"] {
		t.Fatal("PKG0 should exceed PKG1")
	}
}

func TestMonitoringSessionStateMachine(t *testing.T) {
	w := newClusterWorld(t)
	err := w.Run(func(p *mpi.Proc) error {
		s, err := Setup(p, p.World())
		if err != nil {
			return err
		}
		if _, err := s.StopMonitoring(); err == nil {
			return errStr("stop before start accepted")
		}
		if err := s.StartMonitoring(); err != nil {
			return err
		}
		if err := s.StartMonitoring(); err == nil {
			return errStr("double start accepted")
		}
		p.Compute(0.01, 0)
		if s.Elapsed() <= 0 {
			return errStr("Elapsed not advancing")
		}
		if _, err := s.StopMonitoring(); err != nil {
			return err
		}
		return nil
	})
	// Note: the double-start check happens after the first Start's world
	// barrier, so all ranks take the same path and no deadlock occurs.
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhaseMarks(t *testing.T) {
	w := newClusterWorld(t)
	err := w.Run(func(p *mpi.Proc) error {
		s, err := Setup(p, p.World())
		if err != nil {
			return err
		}
		if err := s.Mark("too-early"); err == nil {
			return errStr("mark before start accepted")
		}
		if err := s.StartMonitoring(); err != nil {
			return err
		}
		p.Compute(0.1, 1e5) // allocation phase
		if err := s.Mark("allocation"); err != nil {
			return err
		}
		p.Compute(0.4, 4e5) // solve phase
		if err := s.Mark("solve"); err != nil {
			return err
		}
		p.Compute(0.05, 0) // teardown → "final" phase
		rep, err := s.StopMonitoring()
		if err != nil {
			return err
		}
		marks := s.Marks()
		if !s.IsMonitor {
			if len(marks) != 0 {
				return errStr("non-monitor recorded marks")
			}
			return nil
		}
		if len(marks) != 2 || marks[0].Name != "allocation" || marks[1].Name != "solve" {
			return errStr("marks missing")
		}
		phases := PhaseDeltas(marks, rep)
		if len(phases) != 3 {
			return errStr("want 3 phase deltas")
		}
		// The solve phase (0.4 s) dominates allocation (0.1 s) ≈ 4×.
		if phases[1].AtS <= 3*phases[0].AtS {
			return errStr("phase durations wrong")
		}
		var allocJ, solveJ int64
		for i := range phases[0].Microjoule {
			allocJ += phases[0].Microjoule[i]
			solveJ += phases[1].Microjoule[i]
		}
		if solveJ <= allocJ {
			return errStr("solve phase should consume more than allocation")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMonitoringAddsSynchronizationOverhead(t *testing.T) {
	// The paper accepts "a slight overhead compromise due to
	// synchronization". Compare makespans of the same imbalanced workload
	// with and without the framework.
	work := func(p *mpi.Proc) {
		p.Compute(0.001*float64(p.Rank()%48+1), 0)
	}
	plain := newClusterWorld(t)
	if err := plain.Run(func(p *mpi.Proc) error {
		work(p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	monitored := newClusterWorld(t)
	if err := monitored.Run(func(p *mpi.Proc) error {
		s, err := Setup(p, p.World())
		if err != nil {
			return err
		}
		if err := s.StartMonitoring(); err != nil {
			return err
		}
		work(p)
		_, err = s.StopMonitoring()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if monitored.MaxClock() <= plain.MaxClock() {
		t.Fatalf("monitored %.6fs not above plain %.6fs", monitored.MaxClock(), plain.MaxClock())
	}
	// But the overhead must stay slight: well under 1% for this workload.
	if over := monitored.MaxClock()/plain.MaxClock() - 1; over > 0.01 {
		t.Fatalf("monitoring overhead %.2f%% too large", over*100)
	}
}

func TestWriteNodeReport(t *testing.T) {
	dir := t.TempDir()
	r := &NodeReport{
		Node:       3,
		ElapsedS:   1.5,
		Events:     papi.DefaultEventNames(),
		Microjoule: []int64{1000000, 900000, 200000, 150000},
	}
	path, err := WriteNodeReport(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "node0003_energy.txt" {
		t.Fatalf("file name %q", filepath.Base(path))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"node: 3",
		"elapsed_s: 1.5",
		"powercap:::PACKAGE_ENERGY:PACKAGE0_uJ: 1000000",
		"total_J: 2.25",
		"avg_power_W: 1.5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	if _, err := WriteNodeReport(dir, nil); err == nil {
		t.Fatal("nil report accepted")
	}
}

func TestWriteRunSummary(t *testing.T) {
	dir := t.TempDir()
	sum := RunSummary{
		Nodes:     2,
		DurationS: 1.25,
		TotalJ:    400,
		ByEvent: map[string]float64{
			"powercap:::PACKAGE_ENERGY:PACKAGE0": 250,
			"powercap:::DRAM_ENERGY:PACKAGE0":    150,
		},
	}
	path, err := WriteRunSummary(dir, sum)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"nodes: 2",
		"duration_s: 1.25",
		"total_J: 400",
		"avg_power_W: 320",
		"powercap:::DRAM_ENERGY:PACKAGE0_J: 150",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
}

func TestCollectReportsNonRootGetsNil(t *testing.T) {
	w := newClusterWorld(t)
	err := w.Run(func(p *mpi.Proc) error {
		s, err := Setup(p, p.World())
		if err != nil {
			return err
		}
		if err := s.StartMonitoring(); err != nil {
			return err
		}
		p.Compute(0.1, 0)
		rep, err := s.StopMonitoring()
		if err != nil {
			return err
		}
		all, err := CollectReports(p, p.World(), rep)
		if err != nil {
			return err
		}
		if p.Rank() != 0 && all != nil {
			return errStr("non-root received reports")
		}
		if p.Rank() == 0 && len(all) != 2 {
			return errStr("root did not get both reports")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

type errStr string

func (e errStr) Error() string { return string(e) }
