// Package monitor implements the paper's contribution: a white-box,
// modular energy-monitoring framework for MPI linear-system solvers (§4).
//
// The design follows the paper exactly:
//
//   - after MPI_Init, a per-node communicator is created with
//     MPI_Comm_split_type(MPI_COMM_TYPE_SHARED);
//   - the rank with the highest value in each node communicator is
//     designated the monitoring rank;
//   - monitoring starts and stops through a pair of function calls
//     (start_monitoring / end_monitoring in papi_monitoring.h), each
//     preceded by an MPI barrier over the node communicator so the
//     measurements align with the computation of every rank on the node;
//   - the monitoring ranks initialise PAPI, build an event set from the
//     powercap component's event names, and run their share of the solver
//     like every other rank;
//   - end_monitoring stops the counters and writes one human-readable
//     file per processor (file_management), then PAPI is torn down.
//
// The synchronization barriers are the framework's deliberate accuracy/
// overhead trade-off; BenchmarkMonitoringOverhead quantifies it.
package monitor

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/papi"
)

// Session is one rank's view of the monitoring framework for one run.
type Session struct {
	p *mpi.Proc
	// World is the communicator the job runs on.
	World *mpi.Comm
	// NodeComm groups the ranks sharing this rank's node.
	NodeComm *mpi.Comm
	// IsMonitor marks the designated monitoring rank of the node (the
	// highest rank in NodeComm).
	IsMonitor bool

	lib     *papi.Library
	events  *papi.EventSet
	names   []string
	started bool
	startAt float64
	marks   []PhaseMark
}

// Setup performs the communicator split and monitoring-rank designation.
// Every rank of world must call it collectively.
func Setup(p *mpi.Proc, world *mpi.Comm) (*Session, error) {
	nodeComm, err := p.CommSplitTypeShared(world)
	if err != nil {
		return nil, fmt.Errorf("monitor: node split: %w", err)
	}
	me, err := nodeComm.Rank(p)
	if err != nil {
		return nil, err
	}
	// "The process of selecting monitoring ranks involves designating the
	// rank with the highest value on each node as the monitoring rank."
	s := &Session{
		p:         p,
		World:     world,
		NodeComm:  nodeComm,
		IsMonitor: me == nodeComm.Size()-1,
	}
	return s, nil
}

// StartMonitoring synchronises the node and, on the monitoring rank,
// initialises PAPI and starts the powercap event counters
// (start_monitoring in the paper). All ranks of the node must call it.
func (s *Session) StartMonitoring() error {
	if s.started {
		return fmt.Errorf("monitor: already started")
	}
	// Node barrier: measurement start aligns with every local rank.
	if err := s.p.Barrier(s.NodeComm); err != nil {
		return err
	}
	if s.IsMonitor {
		lib, err := papi.Init(papi.Version, s.p.RaplNode())
		if err != nil {
			return fmt.Errorf("monitor: PWCAP_plot_init: %w", err)
		}
		if err := lib.ThreadInit(); err != nil {
			return err
		}
		es, err := lib.CreateEventSet()
		if err != nil {
			return err
		}
		// The event_names array: the full powercap set (§4).
		s.names = papi.DefaultEventNames()
		if err := es.AddNamedEvents(s.names); err != nil {
			return fmt.Errorf("monitor: papi_event_name_to_code: %w", err)
		}
		if err := es.Start(); err != nil { // PAPI_start_AND_time
			return fmt.Errorf("monitor: PAPI_start_AND_time: %w", err)
		}
		s.lib = lib
		s.events = es
	}
	s.startAt = s.p.Clock()
	s.started = true
	s.p.MarkInstant("monitor-start")
	// General execution synchronization before the solver phase (Fig. 2).
	return s.p.Barrier(s.World)
}

// NodeReport is the measurement of one node for one monitored phase.
type NodeReport struct {
	Node       int
	ElapsedS   float64
	Events     []string
	Microjoule []int64
}

// TotalJoules sums the package and DRAM energies of the node.
func (r *NodeReport) TotalJoules() float64 {
	var uj int64
	for _, v := range r.Microjoule {
		uj += v
	}
	return float64(uj) / papi.MicrojoulesPerJoule
}

// AvgPowerW is the node's average power over the monitored phase.
func (r *NodeReport) AvgPowerW() float64 {
	if r.ElapsedS <= 0 {
		return 0
	}
	return r.TotalJoules() / r.ElapsedS
}

// StopMonitoring synchronises the node, stops the counters on the
// monitoring rank and tears PAPI down (end_monitoring + PAPI_term). It
// returns the node's report on the monitoring rank and nil elsewhere.
// All ranks of the node must call it.
func (s *Session) StopMonitoring() (*NodeReport, error) {
	if !s.started {
		return nil, fmt.Errorf("monitor: not started")
	}
	// "Before stopping the whole monitoring, ranks that run on the same
	// node are synchronized to the MPI_Barrier()."
	if err := s.p.Barrier(s.NodeComm); err != nil {
		return nil, err
	}
	s.started = false
	s.p.MarkInstant("monitor-stop")
	var report *NodeReport
	if s.IsMonitor {
		values, elapsed, err := s.events.Stop() // PAPI_stop_AND_time
		if err != nil {
			return nil, fmt.Errorf("monitor: PAPI_stop_AND_time: %w", err)
		}
		node, _ := s.p.Location()
		report = &NodeReport{
			Node:       node,
			ElapsedS:   elapsed,
			Events:     s.names,
			Microjoule: values,
		}
		// PAPI_term: clean up and destroy the event set.
		if err := s.events.Cleanup(); err != nil {
			return nil, err
		}
		if err := s.events.Destroy(); err != nil {
			return nil, err
		}
		s.events = nil
		s.lib = nil
	}
	// Final world synchronization (Fig. 2) before MPI_Finalize.
	if err := s.p.Barrier(s.World); err != nil {
		return nil, err
	}
	return report, nil
}

// Elapsed returns the virtual seconds since StartMonitoring on this rank.
func (s *Session) Elapsed() float64 { return s.p.Clock() - s.startAt }

// PhaseMark is one named intermediate reading of a monitored run.
type PhaseMark struct {
	Name       string
	AtS        float64 // virtual time relative to StartMonitoring
	Microjoule []int64 // accumulated per event since StartMonitoring
}

// Mark records a named intermediate counter reading — the single-run
// alternative to the paper's separate general/compute monitored
// executions. Like StartMonitoring/StopMonitoring it is collective over
// the node: every rank of the node calls it, and the reading happens
// between two node barriers so no local rank can charge ahead into the
// next phase while the monitoring rank reads.
func (s *Session) Mark(name string) error {
	if !s.started {
		return fmt.Errorf("monitor: not started")
	}
	if err := s.p.Barrier(s.NodeComm); err != nil {
		return err
	}
	s.p.MarkInstant("mark: " + name)
	if s.IsMonitor {
		values, err := s.events.Read()
		if err != nil {
			return err
		}
		s.marks = append(s.marks, PhaseMark{
			Name:       name,
			AtS:        s.Elapsed(),
			Microjoule: values,
		})
	}
	return s.p.Barrier(s.NodeComm)
}

// Marks returns the recorded phase marks (monitoring rank only).
func (s *Session) Marks() []PhaseMark {
	out := make([]PhaseMark, len(s.marks))
	copy(out, s.marks)
	return out
}

// PhaseDeltas converts the marks plus the final report into per-phase
// energy intervals: phase i spans mark i−1 (or the start) to mark i, and a
// final phase spans the last mark to StopMonitoring.
func PhaseDeltas(marks []PhaseMark, final *NodeReport) []PhaseMark {
	var out []PhaseMark
	prev := PhaseMark{Microjoule: make([]int64, len(final.Microjoule))}
	for _, m := range marks {
		d := PhaseMark{Name: m.Name, AtS: m.AtS - prev.AtS, Microjoule: make([]int64, len(m.Microjoule))}
		for i := range m.Microjoule {
			d.Microjoule[i] = m.Microjoule[i] - prev.Microjoule[i]
		}
		out = append(out, d)
		prev = m
	}
	d := PhaseMark{Name: "final", AtS: final.ElapsedS - prev.AtS, Microjoule: make([]int64, len(final.Microjoule))}
	for i := range final.Microjoule {
		d.Microjoule[i] = final.Microjoule[i] - prev.Microjoule[i]
	}
	return append(out, d)
}
