package monitor

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/mpi"
)

func TestRunBlackBoxMeasuresOpaqueWorkload(t *testing.T) {
	w := newClusterWorld(t)
	var mu sync.Mutex
	var reports []NodeReport
	err := w.Run(func(p *mpi.Proc) error {
		all, err := RunBlackBox(p, p.World(), func(p *mpi.Proc) error {
			// An opaque workload: no monitoring hooks inside.
			p.Compute(0.25, 5e5)
			return p.Barrier(p.World())
		})
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			mu.Lock()
			reports = all
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d node reports, want 2", len(reports))
	}
	for _, r := range reports {
		if r.TotalJoules() <= 0 || r.ElapsedS < 0.25 {
			t.Fatalf("node %d: %.3f J over %.3f s", r.Node, r.TotalJoules(), r.ElapsedS)
		}
	}
}

func TestRunBlackBoxPropagatesWorkloadError(t *testing.T) {
	w := newClusterWorld(t)
	err := w.Run(func(p *mpi.Proc) error {
		_, err := RunBlackBox(p, p.World(), func(p *mpi.Proc) error {
			// Every rank fails identically, so the collective protocol
			// still completes and the error surfaces cleanly.
			return errStr("workload exploded")
		})
		if err == nil {
			return errStr("workload error swallowed")
		}
		if !strings.Contains(err.Error(), "workload exploded") {
			return errStr("wrong error: " + err.Error())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
