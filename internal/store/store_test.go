package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

type testIdentity struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
}

type testResult struct {
	Value float64 `json:"value"`
}

func mustRecord(t *testing.T, n int, v float64) Record {
	t.Helper()
	rec, err := NewRecord("test", testIdentity{Kind: "test", N: n}, testResult{Value: v})
	if err != nil {
		t.Fatalf("NewRecord: %v", err)
	}
	return rec
}

func TestKeyForDeterministic(t *testing.T) {
	k1, c1, err := KeyFor(testIdentity{Kind: "cell", N: 7})
	if err != nil {
		t.Fatal(err)
	}
	k2, c2, err := KeyFor(testIdentity{Kind: "cell", N: 7})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || string(c1) != string(c2) {
		t.Fatalf("identical identities diverged: %s vs %s", k1, k2)
	}
	k3, _, err := KeyFor(testIdentity{Kind: "cell", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatalf("distinct identities collided on %s", k1)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", k1)
	}
}

func TestAppendGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rec := mustRecord(t, 1, 3.5)
	added, err := s.Append(rec)
	if err != nil || !added {
		t.Fatalf("first append: added=%v err=%v", added, err)
	}
	got, ok, err := s.Get(rec.Key)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
	if s.Len() != 1 || s.Appended() != 1 {
		t.Fatalf("Len=%d Appended=%d, want 1/1", s.Len(), s.Appended())
	}
}

func TestAppendRejectsMismatchedKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rec := mustRecord(t, 1, 1)
	rec.Key = "0000000000000000000000000000000000000000000000000000000000000000"
	if _, err := s.Append(rec); err == nil {
		t.Fatal("append accepted a record whose key is not the digest of its identity")
	}
}

// TestRacingWritersAppendOnce is the satellite concurrency contract: many
// goroutines racing to append the same key leave exactly one record, with
// no data race (run under -race in CI).
func TestRacingWritersAppendOnce(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	addedCount := 0
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			added, err := s.Append(mustRecord(t, 42, 6.25))
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if added {
				mu.Lock()
				addedCount++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if addedCount != 1 {
		t.Fatalf("%d racing writers reported added, want exactly 1", addedCount)
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d records after race, want 1", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The on-disk log must also hold exactly one line.
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != 1 || reopened.Duplicates() != 0 {
		t.Fatalf("reopened: Len=%d Duplicates=%d, want 1/0", reopened.Len(), reopened.Duplicates())
	}
}

// TestCrossProcessDuplicateFirstWins models two processes appending the
// same key (each through its own Store handle): both lines land, the
// first is served, and Duplicates reports the redundancy.
func TestCrossProcessDuplicateFirstWins(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	first := mustRecord(t, 5, 1.0)
	second := mustRecord(t, 5, 2.0) // same identity, divergent payload
	if second.Key != first.Key {
		t.Fatalf("test setup: identities differ (%s vs %s)", first.Key, second.Key)
	}
	if added, err := a.Append(first); err != nil || !added {
		t.Fatalf("writer A: added=%v err=%v", added, err)
	}
	if added, err := b.Append(second); err != nil || !added {
		// B's handle has no knowledge of A's write, so it appends too.
		t.Fatalf("writer B: added=%v err=%v", added, err)
	}
	a.Close()
	b.Close()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 1 || s.Duplicates() != 1 {
		t.Fatalf("Len=%d Duplicates=%d, want 1/1", s.Len(), s.Duplicates())
	}
	got, ok, err := s.Get(first.Key)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	var res testResult
	if err := json.Unmarshal(got.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Value != 1.0 {
		t.Fatalf("first-wins violated: served value %g, want the first writer's 1.0", res.Value)
	}
}

// TestTornTailSkipped kills a writer mid-line: Open must skip the torn
// tail, count it, and keep appending cleanly after it.
func TestTornTailSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(mustRecord(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a kill mid-append: a truncated JSON fragment with no newline.
	log := filepath.Join(dir, logName)
	f, err := os.OpenFile(log, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"deadbeef","kind":"test","ide`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 || s2.Corrupt() != 1 {
		t.Fatalf("Len=%d Corrupt=%d, want 1/1", s2.Len(), s2.Corrupt())
	}
	// The torn record's cell is recomputed and appended after the tail; the
	// fresh line must parse on the next open. (Appending after a torn tail
	// without a separating newline would corrupt the new record too, so
	// Open-after-crash rewrites nothing but the test asserts recovery works
	// end to end: append, close, reopen, read back.)
	rec := mustRecord(t, 2, 2)
	if added, err := s2.Append(rec); err != nil || !added {
		t.Fatalf("append after torn tail: added=%v err=%v", added, err)
	}
	s2.Close()

	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if !s3.Has(rec.Key) {
		t.Fatal("record appended after a torn tail was lost on reopen")
	}
}

func TestDigestOrderIndependent(t *testing.T) {
	recs := []Record{mustRecord(t, 1, 1), mustRecord(t, 2, 2), mustRecord(t, 3, 3)}

	build := func(order []int) string {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for _, i := range order {
			if _, err := s.Append(recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		return s.Digest()
	}
	if d1, d2 := build([]int{0, 1, 2}), build([]int{2, 0, 1}); d1 != d2 {
		t.Fatalf("digest depends on append order: %s vs %s", d1, d2)
	}
	if d1, d3 := build([]int{0, 1, 2}), build([]int{0, 1}); d1 == d3 {
		t.Fatal("digest ignores membership")
	}
}

// TestAppendOnly asserts the core invariant directly: appends never
// shrink the log, and prior bytes are never rewritten.
func TestAppendOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	log := filepath.Join(dir, logName)

	var prev []byte
	for i := 0; i < 10; i++ {
		if _, err := s.Append(mustRecord(t, i, float64(i))); err != nil {
			t.Fatal(err)
		}
		cur, err := os.ReadFile(log)
		if err != nil {
			t.Fatal(err)
		}
		if len(cur) < len(prev) {
			t.Fatalf("log shrank from %d to %d bytes", len(prev), len(cur))
		}
		if string(cur[:len(prev)]) != string(prev) {
			t.Fatalf("append %d rewrote earlier bytes", i)
		}
		prev = cur
	}
}

func TestOpenMissingDirCreates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "store")
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open should create missing directories: %v", err)
	}
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, logName)); err != nil {
		t.Fatalf("log file missing: %v", err)
	}
}

func TestManyRecordsReload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if added, err := s.Append(mustRecord(t, i, float64(i)*1.5)); err != nil || !added {
			t.Fatalf("append %d: added=%v err=%v", i, added, err)
		}
	}
	digest := s.Digest()
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("reloaded %d records, want %d", s2.Len(), n)
	}
	if s2.Digest() != digest {
		t.Fatalf("digest changed across reload: %s vs %s", s2.Digest(), digest)
	}
	for i := 0; i < n; i++ {
		key, _, err := KeyFor(testIdentity{Kind: "test", N: i})
		if err != nil {
			t.Fatal(err)
		}
		rec, ok, err := s2.Get(key)
		if err != nil || !ok {
			t.Fatalf("record %d missing after reload (ok=%v err=%v)", i, ok, err)
		}
		var res testResult
		if err := json.Unmarshal(rec.Result, &res); err != nil {
			t.Fatal(err)
		}
		if want := float64(i) * 1.5; res.Value != want {
			t.Fatalf("record %d: value %g, want %g", i, res.Value, want)
		}
	}
}

func TestConcurrentDistinctWriters(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			added, err := s.Append(mustRecord(t, i, float64(i)))
			if err != nil {
				errs <- err
				return
			}
			if !added {
				errs <- fmt.Errorf("distinct record %d reported duplicate", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s.Len() != n {
		t.Fatalf("Len=%d, want %d", s.Len(), n)
	}
}
