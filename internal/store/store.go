// Package store is the append-only, content-addressed experiment store:
// the persistent substrate under every sweep, campaign and advisor
// process, so that no experiment cell is ever computed twice.
//
// Each result is one JSON record on one line of records.ndjson, keyed by
// the SHA-256 digest of the canonical JSON encoding of its identity —
// the fully normalized request (perfmodel.Params.Normalized plus the
// cell coordinates, engine, fault schedule and checkpoint plan) extended
// with the version stamps of every versioned model input. Two spellings
// of the same request collapse to one key; any code or coefficient
// version bump yields a fresh key, so a store can never serve a stale
// result across model changes — the old records simply stop matching.
//
// Invariants:
//
//   - Append-only: a record, once written, is never rewritten or
//     truncated. Regeneration under new code appends under a new key.
//     The only file operations are O_APPEND writes of whole lines.
//   - First-wins reads: if concurrent *processes* append the same key
//     (in-process racers are deduplicated under the store mutex), the
//     earliest line is the one served — and since records are
//     deterministic functions of their identity, the racers' lines are
//     byte-identical anyway. Duplicates() exposes the redundancy.
//   - Torn tails are tolerated: a process killed mid-append leaves at
//     most one unparseable trailing line, which Open skips (and counts
//     in Corrupt()); the cell is simply recomputed and re-appended.
//
// The convention follows the asterisk repo's investigation pipeline:
// results are append-only JSON — never overwrite a prior run.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// SchemaVersion is the record envelope schema; identities embed it so a
// future envelope change cannot alias old keys.
const SchemaVersion = 1

// logName is the single append-only log inside a store directory.
const logName = "records.ndjson"

// Record is one stored result. Identity holds the canonical JSON bytes
// the Key digests; Result the engine's output. The store does not
// interpret either — typed identity/result structs live with the engines
// that own them (internal/core).
type Record struct {
	Key      string          `json:"key"`
	Kind     string          `json:"kind"`
	Identity json.RawMessage `json:"identity"`
	Result   json.RawMessage `json:"result"`
}

// KeyFor returns the content address of an identity value: the SHA-256
// hex digest of its canonical JSON encoding (encoding/json is
// deterministic: struct fields in declaration order, map keys sorted).
// The returned bytes are the exact encoding that was digested; records
// must embed them unmodified.
func KeyFor(identity any) (key string, canonical []byte, err error) {
	canonical, err = json.Marshal(identity)
	if err != nil {
		return "", nil, fmt.Errorf("store: marshal identity: %w", err)
	}
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:]), canonical, nil
}

// NewRecord assembles a record: it canonicalizes the identity, digests
// it into the key, and marshals the result payload.
func NewRecord(kind string, identity any, result any) (Record, error) {
	key, idBytes, err := KeyFor(identity)
	if err != nil {
		return Record{}, err
	}
	res, err := json.Marshal(result)
	if err != nil {
		return Record{}, fmt.Errorf("store: marshal result: %w", err)
	}
	return Record{Key: key, Kind: kind, Identity: idBytes, Result: res}, nil
}

// Store is an open experiment store. All methods are safe for concurrent
// use; concurrent appends from *other processes* on the same directory
// are also safe (O_APPEND line writes) and deduplicated first-wins at
// the next Open.
type Store struct {
	mu  sync.Mutex
	dir string
	f   *os.File
	// index maps key → parsed record (first occurrence wins). Records are
	// decoded once — at load or append — so lookups are a map read; this
	// is what makes a warm campaign run (hundreds of Gets, zero computes)
	// two orders of magnitude faster than a cold one. Callers must treat
	// the returned Identity/Result bytes as read-only.
	index      map[string]Record
	order      []string // keys in append order (stable Keys/provenance)
	duplicates int
	corrupt    int
	appended   int
}

// Open opens (creating if needed) the store rooted at dir and indexes
// every parseable record line.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open log: %w", err)
	}
	s := &Store{dir: dir, f: f, index: make(map[string]Record)}
	if err := s.load(path); err != nil {
		f.Close()
		return nil, err
	}
	// A writer killed mid-append leaves the log without a trailing newline;
	// sealing it with one (an append, never a rewrite) keeps the torn
	// fragment isolated from the records written after it.
	if err := s.sealTornTail(path); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// sealTornTail appends a newline when the log is non-empty and does not
// end with one, so subsequent appends start on a fresh line.
func (s *Store) sealTornTail(path string) error {
	r, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: reopen log: %w", err)
	}
	defer r.Close()
	st, err := r.Stat()
	if err != nil {
		return fmt.Errorf("store: stat log: %w", err)
	}
	if st.Size() == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := r.ReadAt(last, st.Size()-1); err != nil {
		return fmt.Errorf("store: read log tail: %w", err)
	}
	if last[0] != '\n' {
		if _, err := s.f.Write([]byte{'\n'}); err != nil {
			return fmt.Errorf("store: seal torn tail: %w", err)
		}
	}
	return nil
}

// load indexes the existing log. Unparseable lines (a torn tail from a
// killed writer) are counted and skipped: the records they would have
// held are recomputed by the next campaign run.
func (s *Store) load(path string) error {
	r, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: read log: %w", err)
	}
	defer r.Close()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			s.corrupt++
			continue
		}
		if _, ok := s.index[rec.Key]; ok {
			s.duplicates++
			continue
		}
		s.index[rec.Key] = rec
		s.order = append(s.order, rec.Key)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: scan log: %w", err)
	}
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Has reports whether a record for key is present.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Get returns the record for key, if present. The record's raw
// Identity/Result bytes are shared with the index — read-only.
func (s *Store) Get(key string) (Record, bool, error) {
	s.mu.Lock()
	rec, ok := s.index[key]
	s.mu.Unlock()
	return rec, ok, nil
}

// Append persists a record. It verifies the key is the digest of the
// identity bytes (a mismatched record would poison every future lookup),
// deduplicates against the in-process index, and writes one line with a
// single O_APPEND write. added is false when the key was already stored
// — the existing record wins and the new one is discarded, which is the
// append-only analogue of "never overwrite a prior run".
func (s *Store) Append(rec Record) (added bool, err error) {
	sum := sha256.Sum256(rec.Identity)
	if want := hex.EncodeToString(sum[:]); rec.Key != want {
		return false, fmt.Errorf("store: record key %.12s… is not the digest of its identity (%.12s…)", rec.Key, want)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return false, fmt.Errorf("store: marshal record: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[rec.Key]; ok {
		return false, nil
	}
	if _, err := s.f.Write(line); err != nil {
		return false, fmt.Errorf("store: append: %w", err)
	}
	s.index[rec.Key] = rec
	s.order = append(s.order, rec.Key)
	s.appended++
	return true, nil
}

// Len returns the number of distinct keys stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Appended returns how many records this handle has written.
func (s *Store) Appended() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// Duplicates returns how many on-disk lines repeated an already-indexed
// key at Open (cross-process races; first line won).
func (s *Store) Duplicates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.duplicates
}

// Corrupt returns how many unparseable lines Open skipped (torn tails
// from killed writers).
func (s *Store) Corrupt() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}

// Keys returns every stored key in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	keys := make([]string, len(s.order))
	copy(keys, s.order)
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Digest returns the content digest of the whole store: the SHA-256 of
// the sorted key list. Two stores holding the same cells — regardless of
// append order, duplicates or torn tails — share a digest, which is what
// provenance headers pin artifacts to.
func (s *Store) Digest() string {
	h := sha256.New()
	for _, k := range s.Keys() {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Close releases the log handle. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
