package store_test

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/scalapack"
	"repro/internal/store"
)

// keyOf digests a Params' canonical identity the way every store
// consumer does.
func keyOf(t *testing.T, id perfmodel.CanonicalIdentity) string {
	t.Helper()
	key, _, err := store.KeyFor(id)
	if err != nil {
		t.Fatalf("KeyFor: %v", err)
	}
	return key
}

// TestSpellingVariantsCollapseToOneKey pins the satellite contract: every
// way of spelling the *same* request — zero values, explicit defaults,
// mixtures — maps to a single store key.
func TestSpellingVariantsCollapseToOneKey(t *testing.T) {
	variants := map[string]perfmodel.Params{
		"zero":                 {},
		"explicit block size":  {BlockSize: scalapack.DefaultBlockSize},
		"explicit cost model":  {Cost: mpi.DefaultCostModel()},
		"explicit calibration": {Calibration: power.Skylake8160()},
		"all explicit": {
			Cost:        mpi.DefaultCostModel(),
			Calibration: power.Skylake8160(),
			BlockSize:   scalapack.DefaultBlockSize,
		},
	}
	want := keyOf(t, perfmodel.Params{}.CanonicalIdentity())
	for name, prm := range variants {
		if got := keyOf(t, prm.CanonicalIdentity()); got != want {
			t.Errorf("spelling %q produced key %.12s…, want %.12s… (all variants must collapse)", name, got, want)
		}
	}
}

// TestDistinctRequestsGetDistinctKeys guards against over-normalization:
// parameters that change model output must change the key.
func TestDistinctRequestsGetDistinctKeys(t *testing.T) {
	base := keyOf(t, perfmodel.Params{}.CanonicalIdentity())
	distinct := map[string]perfmodel.Params{
		"overlap":        {Overlap: true},
		"block size 32":  {BlockSize: 32},
		"power cap":      {PowerCapW: 120},
		"variability":    {NodeVariability: 0.05, NoiseSeed: 3},
		"noise seed":     {NodeVariability: 0.05, NoiseSeed: 4},
		"retuned cost":   {Cost: func() mpi.CostModel { c := mpi.DefaultCostModel(); c.LatencyInter *= 2; return c }()},
		"retuned powers": {Calibration: func() power.Calibration { c := power.Skylake8160(); c.PkgIdle += 1; return c }()},
	}
	seen := map[string]string{"(default)": base}
	for name, prm := range distinct {
		key := keyOf(t, prm.CanonicalIdentity())
		for prior, pk := range seen {
			if key == pk {
				t.Errorf("distinct requests %q and %q share key %.12s…", name, prior, key)
			}
		}
		seen[name] = key
	}
}

// TestVersionBumpsYieldFreshKeys pins the no-stale-cross-version-hits
// contract: bumping any version stamp — model semantics, cost-model
// semantics, calibration semantics, or a learned coefficient table —
// must move the identity to a fresh key.
func TestVersionBumpsYieldFreshKeys(t *testing.T) {
	base := perfmodel.Params{}.CanonicalIdentity()
	baseKey := keyOf(t, base)

	bump := func(mutate func(*perfmodel.CanonicalIdentity)) perfmodel.CanonicalIdentity {
		id := base
		mutate(&id)
		return id
	}
	bumps := map[string]perfmodel.CanonicalIdentity{
		"model version":       bump(func(id *perfmodel.CanonicalIdentity) { id.Model = "analytic/v2" }),
		"cost model version":  bump(func(id *perfmodel.CanonicalIdentity) { id.Cost = "hockney-logp/v2" }),
		"calibration version": bump(func(id *perfmodel.CanonicalIdentity) { id.Calibration = "additive/v2" }),
		"coefficient table":   bump(func(id *perfmodel.CanonicalIdentity) { id.Coefficients = "surrogate/v1" }),
	}
	seen := map[string]string{"(current)": baseKey}
	for name, id := range bumps {
		key := keyOf(t, id)
		for prior, pk := range seen {
			if key == pk {
				t.Errorf("version bump %q did not change the key (collides with %s: %.12s…)", name, prior, key)
			}
		}
		seen[name] = key
	}
}

// TestCurrentVersionStampsPinned pins the stamps' current values: any
// code change that bumps them will fail here, forcing the author to
// acknowledge that every previously stored record goes stale.
func TestCurrentVersionStampsPinned(t *testing.T) {
	id := perfmodel.Params{}.CanonicalIdentity()
	if id.Model != "analytic/v1" {
		t.Errorf("ModelVersion = %q; bumping it invalidates all stored analytic results — intended?", id.Model)
	}
	if id.Cost != "hockney-logp/v1" {
		t.Errorf("CostModelVersion = %q; bumping it invalidates all stored results — intended?", id.Cost)
	}
	if id.Calibration != "additive/v1" {
		t.Errorf("CalibrationVersion = %q; bumping it invalidates all stored results — intended?", id.Calibration)
	}
	if id.Coefficients != "" {
		t.Errorf("exact analytic identity has Coefficients = %q, want empty", id.Coefficients)
	}
}
