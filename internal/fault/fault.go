// Package fault is the deterministic fault-injection plane of the
// simulated cluster: a seed-driven schedule of message delay/jitter,
// message drops with bounded retransmission, straggler ranks and hard
// rank crashes. The paper's motivation for studying IMe at all is its
// "integrated low-cost multiple fault tolerance" (§1, ref [7]); this
// package makes that resilience trade-off measurable by letting the
// engine charge the virtual time and node energy that failures, recovery
// collectives and checkpoint/restart cost.
//
// Every decision is a pure function of (seed, identifiers): per-message
// choices hash (src, dst, per-pair sequence number), per-rank choices
// hash the rank. Nothing depends on wall-clock time or goroutine
// scheduling, so a schedule replays bit-identically across runs and
// across -j N parallel sweeps. The package deliberately imports nothing
// from the engine; internal/mpi consumes an *Injector through
// mpi.Options.
package fault

import (
	"fmt"
	"math"
)

// Config parametrises an Injector. The zero value injects nothing.
type Config struct {
	// Seed drives every pseudo-random decision.
	Seed int64

	// MTBF is the mean time between rank crashes across the whole world,
	// in virtual seconds (exponential inter-arrival). 0 disables
	// MTBF-driven crashes; explicit Events still apply.
	MTBF float64
	// Horizon bounds MTBF-driven crash times (no crashes are scheduled
	// past it). Required when MTBF > 0.
	Horizon float64
	// MaxCrashes bounds the number of MTBF-driven crash events
	// (DefaultMaxCrashes when 0).
	MaxCrashes int
	// Protected lists world ranks that never crash (e.g. IMe's master,
	// which owns the irreplaceable auxiliary vector h).
	Protected []int
	// Events are explicit crash events, merged with the MTBF draws.
	// Events with Level > 0 are solver-level faults and are ignored by
	// the engine injector (see Schedule).
	Events []Event

	// DetectTimeout is the failure-detection latency: a live rank blocked
	// on a crashed peer charges busy-wait up to crashTime+DetectTimeout
	// before its operation returns ErrRankFailed
	// (DefaultDetectTimeout when 0).
	DetectTimeout float64

	// DelayProb adds jitter: with this probability a message's in-flight
	// time is extended by a uniform draw from (0, DelayMax].
	DelayProb float64
	DelayMax  float64

	// DropProb is the per-transmission loss probability. A dropped
	// transmission is retransmitted after RetransmitTimeout, backing off
	// by RetransmitBackoff per retry, at most MaxRetransmits times; the
	// sender pays one send overhead per retry and the payload arrives
	// late. Retransmission is bounded, so drops cost time and energy but
	// never lose a message.
	DropProb          float64
	MaxRetransmits    int
	RetransmitTimeout float64
	RetransmitBackoff float64

	// StragglerFrac dilates the compute time of roughly this fraction of
	// ranks by StragglerFactor (≥ 1) — the slow-node scenario.
	StragglerFrac   float64
	StragglerFactor float64
}

// Defaults applied by New for zero-valued knobs.
const (
	DefaultMaxCrashes        = 16
	DefaultDetectTimeout     = 1e-3 // 1 ms failure-detection latency
	DefaultMaxRetransmits    = 4
	DefaultRetransmitTimeout = 1e-4 // 100 µs retransmission timer
	DefaultRetransmitBackoff = 2.0
)

// Validate reports an error for non-physical parameters.
func (c Config) Validate() error {
	if c.MTBF < 0 || c.Horizon < 0 || c.DetectTimeout < 0 {
		return fmt.Errorf("fault: negative time parameter in %+v", c)
	}
	if c.MTBF > 0 && c.Horizon <= 0 {
		return fmt.Errorf("fault: MTBF %g needs a positive horizon", c.MTBF)
	}
	if c.DelayProb < 0 || c.DelayProb > 1 || c.DropProb < 0 || c.DropProb > 1 || c.StragglerFrac < 0 || c.StragglerFrac > 1 {
		return fmt.Errorf("fault: probability out of [0,1] in %+v", c)
	}
	if c.DelayProb > 0 && c.DelayMax <= 0 {
		return fmt.Errorf("fault: DelayProb %g needs a positive DelayMax", c.DelayProb)
	}
	if c.StragglerFrac > 0 && c.StragglerFactor < 1 {
		return fmt.Errorf("fault: straggler factor %g must be ≥ 1", c.StragglerFactor)
	}
	if c.MaxRetransmits < 0 || c.RetransmitTimeout < 0 || c.RetransmitBackoff < 0 {
		return fmt.Errorf("fault: negative retransmission parameter in %+v", c)
	}
	for _, ev := range c.Events {
		if ev.Time < 0 {
			return fmt.Errorf("fault: event at negative time %g", ev.Time)
		}
	}
	return nil
}

// Injector is a compiled fault schedule for one world. All methods are
// pure and safe for concurrent use.
type Injector struct {
	cfg      Config
	size     int
	seed     uint64
	crashAt  []float64 // per world rank; +Inf = never
	dilation []float64 // per world rank compute-time multiplier
	events   []Event   // resolved engine-level crash events, by time
	hasDelay bool
	hasDrop  bool
}

// New compiles cfg for a world of size ranks: MTBF crash times are drawn,
// explicit events merged, and the per-rank straggler set resolved. The
// result is immutable.
func New(cfg Config, size int) (*Injector, error) {
	if size <= 0 {
		return nil, fmt.Errorf("fault: world size %d must be positive", size)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxCrashes == 0 {
		cfg.MaxCrashes = DefaultMaxCrashes
	}
	if cfg.DetectTimeout == 0 {
		cfg.DetectTimeout = DefaultDetectTimeout
	}
	if cfg.MaxRetransmits == 0 {
		cfg.MaxRetransmits = DefaultMaxRetransmits
	}
	if cfg.RetransmitTimeout == 0 {
		cfg.RetransmitTimeout = DefaultRetransmitTimeout
	}
	if cfg.RetransmitBackoff == 0 {
		cfg.RetransmitBackoff = DefaultRetransmitBackoff
	}
	in := &Injector{
		cfg:      cfg,
		size:     size,
		seed:     mix(uint64(cfg.Seed)),
		hasDelay: cfg.DelayProb > 0,
		hasDrop:  cfg.DropProb > 0,
	}
	events := append([]Event(nil), engineEvents(cfg.Events)...)
	if cfg.MTBF > 0 {
		drawn := MTBFSchedule(cfg.Seed, cfg.MTBF, cfg.Horizon, size, cfg.MaxCrashes, cfg.Protected...)
		events = append(events, drawn.Events...)
	}
	sortEvents(events)
	in.events = events
	in.crashAt = make([]float64, size)
	for r := range in.crashAt {
		in.crashAt[r] = math.Inf(1)
	}
	for _, ev := range events {
		for _, r := range ev.Ranks {
			if r < 0 || r >= size {
				return nil, fmt.Errorf("fault: crash rank %d out of range [0,%d)", r, size)
			}
			if ev.Time < in.crashAt[r] {
				in.crashAt[r] = ev.Time
			}
		}
	}
	if cfg.StragglerFrac > 0 {
		in.dilation = make([]float64, size)
		for r := range in.dilation {
			in.dilation[r] = 1
			if in.u01(kindStraggler, uint64(r), 0, 0) < cfg.StragglerFrac {
				in.dilation[r] = cfg.StragglerFactor
			}
		}
	}
	return in, nil
}

// decision kinds, folded into the hash so the random streams of different
// fault classes never alias.
const (
	kindStraggler = iota + 1
	kindDelayGate
	kindDelayAmount
	kindDrop
)

// u01 returns the deterministic uniform(0,1) draw of one decision.
func (in *Injector) u01(kind int, a, b, c uint64) float64 {
	h := in.seed
	h = mix(h ^ uint64(kind))
	h = mix(h ^ a)
	h = mix(h ^ b<<1)
	h = mix(h ^ c<<2)
	return float64(h>>11) / (1 << 53)
}

// CrashTime returns the virtual time at which rank crashes (+Inf when it
// never does).
func (in *Injector) CrashTime(rank int) float64 {
	if in == nil || rank < 0 || rank >= len(in.crashAt) {
		return math.Inf(1)
	}
	return in.crashAt[rank]
}

// Events returns the resolved engine-level crash events in time order.
func (in *Injector) Events() []Event {
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// DetectTimeout is the failure-detection latency survivors charge.
func (in *Injector) DetectTimeout() float64 { return in.cfg.DetectTimeout }

// Size returns the world size the injector was compiled for.
func (in *Injector) Size() int { return in.size }

// Dilation returns the compute-time multiplier of a rank (1 when it is
// not a straggler).
func (in *Injector) Dilation(rank int) float64 {
	if in == nil || in.dilation == nil {
		return 1
	}
	return in.dilation[rank]
}

// Delay returns the extra in-flight delay of the seq-th message from src
// to dst (0 for most messages).
func (in *Injector) Delay(src, dst, seq int) float64 {
	if !in.hasDelay {
		return 0
	}
	if in.u01(kindDelayGate, uint64(src), uint64(dst), uint64(seq)) >= in.cfg.DelayProb {
		return 0
	}
	return in.u01(kindDelayAmount, uint64(src), uint64(dst), uint64(seq)) * in.cfg.DelayMax
}

// Drops returns how many transmissions of the seq-th (src → dst) message
// are lost before one goes through, bounded by MaxRetransmits: the sender
// retransmits after the (backed-off) timeout and pays a send overhead per
// retry, so drops cost virtual time and energy but never lose payloads.
func (in *Injector) Drops(src, dst, seq int) int {
	if !in.hasDrop {
		return 0
	}
	k := 0
	for k < in.cfg.MaxRetransmits &&
		in.u01(kindDrop, uint64(src), uint64(dst), uint64(seq)<<8|uint64(k)) < in.cfg.DropProb {
		k++
	}
	return k
}

// RetransmitWait returns the total timeout a sender waits through for k
// dropped transmissions (exponential backoff), plus per-try costs.
func (in *Injector) RetransmitWait(k int) float64 {
	wait, to := 0.0, in.cfg.RetransmitTimeout
	for i := 0; i < k; i++ {
		wait += to
		to *= in.cfg.RetransmitBackoff
	}
	return wait
}

// Active reports whether the injector can perturb anything at all.
func (in *Injector) Active() bool {
	return in != nil && (len(in.events) > 0 || in.hasDelay || in.hasDrop || in.dilation != nil)
}

// Shifted returns an injector whose crash events are moved dt seconds
// earlier, dropping events that have already fired — how checkpoint/
// restart maps one absolute schedule onto successive restart segments,
// each of which starts its virtual clock at zero. Message-level and
// straggler decisions are unchanged.
func (in *Injector) Shifted(dt float64) (*Injector, error) {
	cfg := in.cfg
	cfg.MTBF = 0 // events below already include the MTBF draws
	cfg.Events = nil
	for _, ev := range in.events {
		if ev.Time-dt <= 0 {
			continue
		}
		cfg.Events = append(cfg.Events, Event{Time: ev.Time - dt, Ranks: ev.Ranks})
	}
	return New(cfg, in.size)
}

// mix is the splitmix64 finaliser — the deterministic hash behind every
// injection decision.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
