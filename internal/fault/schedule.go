package fault

import (
	"math"
	"sort"
)

// Event is one fault of the schedule: Ranks fail together. Engine-level
// events fire at virtual Time; solver-level consumers (IMe's checksum
// recovery, which survives a crash in place instead of aborting the job)
// schedule by elimination Level instead. An event carries one or the
// other: Level > 0 marks a solver-level event, which the engine injector
// ignores.
type Event struct {
	Time  float64 `json:"time,omitempty"`
	Level int     `json:"level,omitempty"`
	Ranks []int   `json:"ranks"`
}

// Schedule is a deterministic ordered list of fault events — the common
// currency between the MTBF generator, the engine injector, the
// solver-level recovery paths and the resilience experiments.
type Schedule struct {
	Seed   int64   `json:"seed"`
	Events []Event `json:"events"`
}

// engineEvents filters out solver-level (Level > 0) events.
func engineEvents(events []Event) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Level > 0 {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// sortEvents orders events by time, then first rank, for determinism.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		ri, rj := -1, -1
		if len(events[i].Ranks) > 0 {
			ri = events[i].Ranks[0]
		}
		if len(events[j].Ranks) > 0 {
			rj = events[j].Ranks[0]
		}
		return ri < rj
	})
}

// MTBFSchedule draws a crash schedule: inter-arrival times are
// exponential with mean mtbf, victims are uniform over the non-protected
// ranks, and generation stops at the horizon or after maxCrashes events
// (whichever first). The same (seed, mtbf, horizon, size) always yields
// the same schedule, bit for bit.
func MTBFSchedule(seed int64, mtbf, horizon float64, size, maxCrashes int, protected ...int) Schedule {
	s := Schedule{Seed: seed}
	if mtbf <= 0 || horizon <= 0 || size <= 0 {
		return s
	}
	if maxCrashes <= 0 {
		maxCrashes = DefaultMaxCrashes
	}
	excluded := make(map[int]bool, len(protected))
	for _, r := range protected {
		excluded[r] = true
	}
	var victims []int
	for r := 0; r < size; r++ {
		if !excluded[r] {
			victims = append(victims, r)
		}
	}
	if len(victims) == 0 {
		return s
	}
	// One splitmix64 stream drives the whole draw sequence.
	state := mix(uint64(seed) ^ 0x5ca1ab1e)
	next := func() uint64 {
		state = mix(state)
		return state
	}
	u01 := func() float64 { return float64(next()>>11) / (1 << 53) }
	t := 0.0
	for len(s.Events) < maxCrashes {
		u := u01()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		t += -mtbf * math.Log(u)
		if t > horizon {
			break
		}
		victim := victims[int(next()%uint64(len(victims)))]
		s.Events = append(s.Events, Event{Time: t, Ranks: []int{victim}})
	}
	return s
}
