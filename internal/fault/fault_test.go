package fault

import (
	"math"
	"reflect"
	"testing"
)

func TestMTBFScheduleDeterministic(t *testing.T) {
	a := MTBFSchedule(7, 0.05, 1.0, 24, 8, 0)
	b := MTBFSchedule(7, 0.05, 1.0, 24, 8, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%+v\n%+v", a, b)
	}
	if len(a.Events) == 0 {
		t.Fatalf("mtbf far below horizon drew no crashes")
	}
	last := 0.0
	for _, ev := range a.Events {
		if ev.Time <= last {
			t.Fatalf("events not strictly increasing in time: %+v", a.Events)
		}
		last = ev.Time
		if ev.Time > 1.0 {
			t.Fatalf("event past horizon: %+v", ev)
		}
		for _, r := range ev.Ranks {
			if r == 0 {
				t.Fatalf("protected rank 0 crashed: %+v", ev)
			}
			if r < 0 || r >= 24 {
				t.Fatalf("victim out of range: %+v", ev)
			}
		}
	}
	c := MTBFSchedule(8, 0.05, 1.0, 24, 8, 0)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestMTBFScheduleBounds(t *testing.T) {
	s := MTBFSchedule(3, 0.001, 100, 16, 5, 0)
	if len(s.Events) != 5 {
		t.Fatalf("MaxCrashes not honoured: got %d events", len(s.Events))
	}
	if got := MTBFSchedule(3, 0, 1, 16, 5); len(got.Events) != 0 {
		t.Fatalf("zero MTBF drew events: %+v", got.Events)
	}
	// All ranks protected: nothing to crash.
	if got := MTBFSchedule(3, 0.01, 1, 2, 5, 0, 1); len(got.Events) != 0 {
		t.Fatalf("fully protected world drew events: %+v", got.Events)
	}
}

func TestInjectorDeterministicDecisions(t *testing.T) {
	cfg := Config{
		Seed:            42,
		MTBF:            0.1,
		Horizon:         2,
		Protected:       []int{0},
		DelayProb:       0.3,
		DelayMax:        1e-4,
		DropProb:        0.2,
		StragglerFrac:   0.25,
		StragglerFactor: 1.5,
	}
	a, err := New(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatalf("same config produced different crash events")
	}
	var delays, drops, stragglers int
	for src := 0; src < 32; src++ {
		if a.Dilation(src) != b.Dilation(src) {
			t.Fatalf("dilation of rank %d differs across injectors", src)
		}
		if a.Dilation(src) > 1 {
			stragglers++
		}
		for seq := 0; seq < 64; seq++ {
			dst := (src + 1 + seq) % 32
			if d1, d2 := a.Delay(src, dst, seq), b.Delay(src, dst, seq); d1 != d2 {
				t.Fatalf("delay(%d,%d,%d) nondeterministic: %g vs %g", src, dst, seq, d1, d2)
			} else if d1 > 0 {
				delays++
				if d1 > cfg.DelayMax {
					t.Fatalf("delay %g exceeds max %g", d1, cfg.DelayMax)
				}
			}
			if k1, k2 := a.Drops(src, dst, seq), b.Drops(src, dst, seq); k1 != k2 {
				t.Fatalf("drops(%d,%d,%d) nondeterministic: %d vs %d", src, dst, seq, k1, k2)
			} else if k1 > 0 {
				drops++
				if k1 > DefaultMaxRetransmits {
					t.Fatalf("drop count %d exceeds retransmission bound", k1)
				}
			}
		}
	}
	if delays == 0 || drops == 0 || stragglers == 0 {
		t.Fatalf("injection classes inactive: delays=%d drops=%d stragglers=%d", delays, drops, stragglers)
	}
}

func TestInjectorCrashTimes(t *testing.T) {
	in, err := New(Config{Events: []Event{
		{Time: 0.5, Ranks: []int{3}},
		{Time: 0.2, Ranks: []int{3, 5}},
		{Level: 7, Ranks: []int{1}}, // solver-level: engine ignores it
	}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.CrashTime(3); got != 0.2 {
		t.Fatalf("rank 3 crash time %g, want earliest event 0.2", got)
	}
	if got := in.CrashTime(5); got != 0.2 {
		t.Fatalf("rank 5 crash time %g, want 0.2", got)
	}
	if got := in.CrashTime(1); !math.IsInf(got, 1) {
		t.Fatalf("solver-level event leaked into engine crash times: %g", got)
	}
	if got := in.CrashTime(0); !math.IsInf(got, 1) {
		t.Fatalf("uncrashed rank has finite crash time %g", got)
	}
	if !in.Active() {
		t.Fatalf("injector with crash events reports inactive")
	}
}

func TestInjectorShifted(t *testing.T) {
	in, err := New(Config{Events: []Event{
		{Time: 0.1, Ranks: []int{1}},
		{Time: 0.4, Ranks: []int{2}},
	}, DetectTimeout: 5e-3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := in.Shifted(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.CrashTime(1); !math.IsInf(got, 1) {
		t.Fatalf("already-fired event survived the shift: %g", got)
	}
	if got := sh.CrashTime(2); math.Abs(got-0.15) > 1e-15 {
		t.Fatalf("shifted crash time %g, want 0.15", got)
	}
	if sh.DetectTimeout() != in.DetectTimeout() {
		t.Fatalf("shift lost the detection timeout")
	}
}

func TestRetransmitWaitBackoff(t *testing.T) {
	in, err := New(Config{DropProb: 0.1, RetransmitTimeout: 1e-4, RetransmitBackoff: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := in.RetransmitWait(3), 1e-4+2e-4+4e-4; math.Abs(got-want) > 1e-18 {
		t.Fatalf("backoff wait %g, want %g", got, want)
	}
	if in.RetransmitWait(0) != 0 {
		t.Fatalf("zero drops should wait nothing")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MTBF: 0.1},                   // missing horizon
		{DelayProb: 0.5},              // missing delay max
		{DropProb: 2},                 // probability out of range
		{StragglerFrac: 0.5},          // factor below 1
		{Events: []Event{{Time: -1}}}, // negative event time
		{MTBF: -1, Horizon: 1},        // negative mtbf
		{DetectTimeout: -1},           // negative timeout
		{RetransmitTimeout: -1, DropProb: 0.1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly: %+v", i, cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate: %v", err)
	}
	if _, err := New(Config{Events: []Event{{Time: 1, Ranks: []int{9}}}}, 4); err == nil {
		t.Fatalf("out-of-range crash rank accepted")
	}
}
