// Package grid runs independent experiment cells concurrently under one
// global worker budget.
//
// The paper's evaluation is a grid: every (solver, matrix dimension,
// ranks, placement) combination is one self-contained cell — an analytic
// model evaluation or a simulated-MPI world — that shares nothing with its
// neighbours. Cells therefore parallelise trivially, but naively spawning
// one goroutine per cell multiplies the engine's own per-world goroutine
// fan-out (a 1296-rank world is 1296 goroutines by itself). The Runner
// bounds the damage: at most `workers` cells execute at once, results come
// back in submission order, and the first error cancels the remainder,
// so output is byte-identical to a serial loop regardless of the budget.
package grid

import (
	"runtime"
	"sync"
)

// Runner is a shared worker budget. The zero value is not usable; call
// New. A single Runner may be shared by many concurrent Map/Do calls —
// the budget then caps their combined parallelism.
type Runner struct {
	sem chan struct{}
}

// New returns a Runner executing at most workers cells concurrently.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{sem: make(chan struct{}, workers)}
}

// Workers returns the runner's concurrency budget.
func (r *Runner) Workers() int { return cap(r.sem) }

// Map evaluates fn(0..n-1) concurrently under the runner's budget and
// returns the results in index order. The first error (lowest index among
// failures is not guaranteed — first observed wins) aborts scheduling of
// cells that have not started; cells already running finish and their
// results are discarded.
func Map[T any](r *Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < n; i++ {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		r.sem <- struct{}{} // acquire before spawning: bounds goroutines, not just work
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-r.sem }()
			v, err := fn(i)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			out[i] = v
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Do runs the tasks concurrently under the runner's budget and waits for
// all of them; the first error is returned.
func Do(r *Runner, tasks ...func() error) error {
	_, err := Map(r, len(tasks), func(i int) (struct{}, error) {
		return struct{}{}, tasks[i]()
	})
	return err
}
