package grid

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	r := New(4)
	got, err := Map(r, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapBudget(t *testing.T) {
	const workers = 3
	r := New(workers)
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(r, 64, func(i int) (struct{}, error) {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds budget %d", p, workers)
	}
}

func TestMapError(t *testing.T) {
	r := New(2)
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Map(r, 1000, func(i int) (int, error) {
		calls.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := calls.Load(); n == 1000 {
		t.Error("error did not stop scheduling of remaining cells")
	}
}

func TestMapSharedRunner(t *testing.T) {
	// Two concurrent Maps sharing one Runner must respect the combined cap
	// and both complete (no lost slots).
	const workers = 2
	r := New(workers)
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	cell := func(i int) (int, error) {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer inFlight.Add(-1)
		return i, nil
	}
	err := Do(New(2),
		func() error { _, err := Map(r, 50, cell); return err },
		func() error { _, err := Map(r, 50, cell); return err },
	)
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds shared budget %d", p, workers)
	}
}

func TestDo(t *testing.T) {
	r := New(0) // GOMAXPROCS default
	if r.Workers() < 1 {
		t.Fatalf("default budget %d", r.Workers())
	}
	var sum atomic.Int64
	var tasks []func() error
	for i := 1; i <= 10; i++ {
		i := i
		tasks = append(tasks, func() error { sum.Add(int64(i)); return nil })
	}
	if err := Do(r, tasks...); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 55 {
		t.Fatalf("sum = %d, want 55", sum.Load())
	}
	wantErr := fmt.Errorf("task failed")
	if err := Do(r, func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}
