package sparse

import (
	"math"
	"reflect"
	"testing"
)

func TestParseRoundTrips(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("dense"); err == nil {
		t.Fatal("ParseKind accepted \"dense\"")
	}
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if got, err := ParseAlgorithm("bicgstab"); err != nil || got != BiCGSTAB {
		t.Fatalf("ParseAlgorithm is case-insensitive: got %v, %v", got, err)
	}
	if _, err := ParseAlgorithm("IMe"); err == nil {
		t.Fatal("ParseAlgorithm accepted \"IMe\"")
	}
}

func testSpecs() []Spec {
	return []Spec{
		{Kind: Banded, N: 60, Band: 4, Cond: 100, Seed: 7},
		{Kind: Random, N: 60, Density: 0.1, Cond: 50, Seed: 11},
	}
}

func TestGeneratorDeterministicSymmetricSPD(t *testing.T) {
	for _, spec := range testSpecs() {
		a, err := spec.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Label(), err)
		}
		b, err := spec.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: regeneration not byte-identical", spec.Label())
		}
		d := a.Dense()
		shift := spec.Shift()
		for i := 0; i < spec.N; i++ {
			var off float64
			for j := 0; j < spec.N; j++ {
				if d.At(i, j) != d.At(j, i) {
					t.Fatalf("%s: asymmetric at (%d,%d)", spec.Label(), i, j)
				}
				if j != i {
					off += math.Abs(d.At(i, j))
				}
			}
			// Strict diagonal dominance with margin δ ⇒ SPD (symmetric +
			// Gershgorin), the property CG depends on.
			if want := off + shift; math.Abs(d.At(i, i)-want) > 1e-12*want {
				t.Fatalf("%s: diag[%d] = %g, want rowsum+shift = %g", spec.Label(), i, d.At(i, i), want)
			}
			if off > spec.SBound() {
				t.Fatalf("%s: row %d off-diagonal sum %g exceeds SBound %g", spec.Label(), i, off, spec.SBound())
			}
		}
	}
}

func TestRowBlockMatchesFullMatrix(t *testing.T) {
	for _, spec := range testSpecs() {
		full, err := spec.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range [][2]int{{0, 13}, {13, 40}, {40, 60}, {0, 60}, {17, 17}} {
			blk, err := spec.RowBlock(cut[0], cut[1])
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := cut[0], cut[1]
			if blk.Rows != hi-lo {
				t.Fatalf("%s [%d,%d): %d rows", spec.Label(), lo, hi, blk.Rows)
			}
			for i := 0; i < blk.Rows; i++ {
				gs, ge := full.RowPtr[lo+i], full.RowPtr[lo+i+1]
				bs, be := blk.RowPtr[i], blk.RowPtr[i+1]
				if ge-gs != be-bs ||
					!reflect.DeepEqual(full.Col[gs:ge], blk.Col[bs:be]) ||
					!reflect.DeepEqual(full.Val[gs:ge], blk.Val[bs:be]) {
					t.Fatalf("%s: block row %d differs from full row %d", spec.Label(), i, lo+i)
				}
			}
		}
	}
}

func TestSpMVMatchesDense(t *testing.T) {
	for _, spec := range testSpecs() {
		a, err := spec.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		x := spec.RHS() // any deterministic vector
		want := a.Dense().MulVec(x)
		got := a.MulVec(x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("%s: (A·x)[%d] = %g, want %g", spec.Label(), i, got[i], want[i])
			}
		}
	}
}

func TestCSRValidateRejects(t *testing.T) {
	bad := []*CSR{
		{Rows: 1, Cols: 1, RowPtr: []int{0}},                                        // short RowPtr
		{Rows: 1, Cols: 1, RowPtr: []int{0, 1}, Col: []int{1}, Val: []float64{1}},   // column out of range
		{Rows: 1, Cols: 3, RowPtr: []int{0, 2}, Col: []int{1, 1}, Val: []float64{1, 2}}, // non-increasing
		{Rows: 2, Cols: 2, RowPtr: []int{0, 1, 0}, Col: []int{0}, Val: []float64{1}},    // non-monotone
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Fatalf("case %d: invalid CSR accepted", i)
		}
	}
}

func TestSpecValidateRejects(t *testing.T) {
	bad := []Spec{
		{Kind: Banded, N: 0, Band: 1, Cond: 10},
		{Kind: Banded, N: 10, Band: 0, Cond: 10},
		{Kind: Banded, N: 10, Band: 10, Cond: 10},
		{Kind: Random, N: 10, Density: 0, Cond: 10},
		{Kind: Random, N: 10, Density: 1.5, Cond: 10},
		{Kind: Banded, N: 10, Band: 2, Cond: 1},
		{Kind: Banded, N: 10, Band: 2, Cond: math.Inf(1)},
		{Kind: Kind(9), N: 10, Cond: 10},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d (%+v): invalid spec accepted", i, s)
		}
	}
}

func TestEstNNZBandedExact(t *testing.T) {
	spec := Spec{Kind: Banded, N: 60, Band: 4, Cond: 100, Seed: 7}
	a, err := spec.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	// Banded patterns are fully dense inside the band (values in
	// [-1,-0.1) never vanish), so the closed form is exact.
	if got := float64(a.NNZ()); got != spec.EstNNZ() {
		t.Fatalf("EstNNZ = %g, actual %g", spec.EstNNZ(), got)
	}
}

func TestBlockRangePartition(t *testing.T) {
	for _, tc := range []struct{ n, ranks int }{{10, 3}, {96, 96}, {97, 8}, {5, 5}, {1000, 7}} {
		prev := 0
		for r := 0; r < tc.ranks; r++ {
			lo, hi := BlockRange(tc.n, tc.ranks, r)
			if lo != prev || hi < lo {
				t.Fatalf("n=%d ranks=%d rank=%d: [%d,%d) after %d", tc.n, tc.ranks, r, lo, hi, prev)
			}
			for row := lo; row < hi; row++ {
				if OwnerOf(tc.n, tc.ranks, row) != r {
					t.Fatalf("n=%d ranks=%d: OwnerOf(%d) != %d", tc.n, tc.ranks, row, r)
				}
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d ranks=%d: partition covers %d rows", tc.n, tc.ranks, prev)
		}
	}
}
