package sparse

import "math"

// Performance-accounting constants for the iterative solvers. Like the
// dense solvers' perf constants (ime/perf.go, scalapack), these drive
// both the executable solver's virtual-time charges and the analytic
// model — the two must agree, which is why they live here.
//
// The kernels are memory-bound, so everything is expressed in streamed
// bytes over an effective per-core bandwidth rather than in flops over an
// arithmetic rate.

const (
	// HostStreamBps is the effective per-core streaming bandwidth of a
	// Xeon 8160 core in an occupied socket: ~128 GB/s of socket DRAM
	// bandwidth shared by 24 cores, slightly above the fair share because
	// SpMV's index-driven loads prefetch well on banded structure.
	HostStreamBps = 5.5e9
	// DramBytesPerNNZ is the traffic one CSR entry costs in SpMV: 8 B
	// value + 4 B column index, with the vector reads mostly cached.
	DramBytesPerNNZ = 12.0
	// CoreActivity scales per-core dynamic power while in sparse kernels.
	// Memory-bound code keeps the FP pipes half-idle waiting on DRAM, so
	// it sits below nominal — the opposite end of the scale from IMe's
	// 1.12 (dense streaming updates saturate the load/store pipes).
	CoreActivity = 0.85
	// SolverTol is the default relative-residual convergence target of
	// the executable solvers and the iteration-count model.
	SolverTol = 1e-10
)

// Per-iteration shape of each solver: SpMV applications, scalar
// allreduces (dot products), and the streamed vector traffic in bytes
// per matrix row (axpy-family updates plus the local dot reads).
type iterShape struct {
	spmvs      int
	dots       int
	vecBytes   float64 // per row per iteration
	itersCoeff float64 // iteration-count coefficient on √κ·ln(2/tol)
}

// shapeOf returns the per-iteration accounting shape of a solver.
func shapeOf(alg Algorithm) iterShape {
	switch alg {
	case BiCGSTAB:
		// 2 SpMVs, 3 allreduces (ρ, r̂·v, fused t/s dots), and the p, s,
		// x, r updates plus dot reads ≈ 168 B/row. The 0.35 coefficient
		// reflects its smoother two-sweep convergence on these systems.
		return iterShape{spmvs: 2, dots: 3, vecBytes: 168, itersCoeff: 0.35}
	default:
		// CG: 1 SpMV, 2 allreduces (p·q, r·r), three axpys and the dot
		// reads ≈ 96 B/row. ½√κ·ln(2/ε) is the classical CG bound.
		return iterShape{spmvs: 1, dots: 2, vecBytes: 96, itersCoeff: 0.5}
	}
}

// EstIters is the analytic model's iteration count for a system with
// condition bound cond: coeff·√κ·ln(2/tol), clamped to [1, n] (CG is
// exact in n steps).
func EstIters(alg Algorithm, cond float64, n int) int {
	sh := shapeOf(alg)
	it := int(math.Ceil(sh.itersCoeff * math.Sqrt(cond) * math.Log(2/SolverTol)))
	if it < 1 {
		it = 1
	}
	if it > n {
		it = n
	}
	return it
}

// WorkFlops returns the arithmetic work of iters solver iterations —
// the numerator of the Green500-style efficiency metric: 2 flops per
// stored entry per SpMV plus one flop per streamed vector double.
func WorkFlops(alg Algorithm, spec Spec, iters int) float64 {
	sh := shapeOf(alg)
	perIter := float64(sh.spmvs)*2*spec.EstNNZ() + sh.vecBytes/8*float64(spec.N)
	return float64(iters) * perIter
}
