package sparse

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/perfmodel"
	"repro/internal/rapl"
)

func accelConfig(t *testing.T, ranks int) cluster.Config {
	t.Helper()
	cfg, err := cluster.NewConfig(ranks, cluster.FullLoad, cluster.MarconiA3Accel())
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestModelDeterministic(t *testing.T) {
	cfg := accelConfig(t, 144)
	spec := Spec{Kind: Banded, N: 131072, Band: 256, Cond: 1e4, Seed: 7}
	a, err := Model(CG, spec, cfg, cluster.DeviceAccel, perfmodel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Model(CG, spec, cfg, cluster.DeviceAccel, perfmodel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("model rerun differs:\n%+v\n%+v", a, b)
	}
}

func TestModelEnergyDomains(t *testing.T) {
	cfg := accelConfig(t, 144)
	spec := Spec{Kind: Banded, N: 131072, Band: 256, Cond: 1e4, Seed: 7}
	cpu, err := Model(CG, spec, cfg, cluster.DeviceCPU, perfmodel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cpu.EnergyJ[rapl.Accel]; ok {
		t.Fatal("CPU run charged the accelerator domain")
	}
	if len(cpu.EnergyJ) != 4 {
		t.Fatalf("CPU run has %d energy domains, want 4", len(cpu.EnergyJ))
	}
	acc, err := Model(CG, spec, cfg, cluster.DeviceAccel, perfmodel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if acc.EnergyJ[rapl.Accel] <= 0 {
		t.Fatal("accelerated run did not charge the accelerator domain")
	}
	if len(acc.EnergyJ) != 5 {
		t.Fatalf("accelerated run has %d energy domains, want 5", len(acc.EnergyJ))
	}
	for _, m := range []ModelResult{cpu, acc} {
		var sum float64
		for _, dom := range append(rapl.Domains(), rapl.Accel) {
			sum += m.EnergyJ[dom]
		}
		if m.TotalJ != sum {
			t.Fatalf("TotalJ %g != domain sum %g", m.TotalJ, sum)
		}
		if m.DurationS <= 0 || m.Iters < 1 || m.Flops <= 0 {
			t.Fatalf("degenerate result %+v", m)
		}
	}
}

// TestModelDeviceCrossover pins the advisor's reason to exist: the
// accelerator wins big memory-bound solves, the CPU wins small ones
// where idle accelerator power and transfer latency dominate.
func TestModelDeviceCrossover(t *testing.T) {
	cfg := accelConfig(t, 144)
	big := Spec{Kind: Banded, N: 1048576, Band: 256, Cond: 1e4, Seed: 7}
	small := Spec{Kind: Banded, N: 16384, Band: 256, Cond: 100, Seed: 7}
	for _, alg := range Algorithms() {
		bigCPU, err := Model(alg, big, cfg, cluster.DeviceCPU, perfmodel.Params{})
		if err != nil {
			t.Fatal(err)
		}
		bigAcc, err := Model(alg, big, cfg, cluster.DeviceAccel, perfmodel.Params{})
		if err != nil {
			t.Fatal(err)
		}
		if bigAcc.TotalJ >= bigCPU.TotalJ || bigAcc.DurationS >= bigCPU.DurationS {
			t.Fatalf("%s n=%d: accel J=%.0f t=%.2f vs cpu J=%.0f t=%.2f — accelerator should win",
				alg, big.N, bigAcc.TotalJ, bigAcc.DurationS, bigCPU.TotalJ, bigCPU.DurationS)
		}
		smallCPU, err := Model(alg, small, cfg, cluster.DeviceCPU, perfmodel.Params{})
		if err != nil {
			t.Fatal(err)
		}
		smallAcc, err := Model(alg, small, cfg, cluster.DeviceAccel, perfmodel.Params{})
		if err != nil {
			t.Fatal(err)
		}
		if smallAcc.TotalJ <= smallCPU.TotalJ {
			t.Fatalf("%s n=%d: accel J=%.0f vs cpu J=%.0f — CPU should win min-energy",
				alg, small.N, smallAcc.TotalJ, smallCPU.TotalJ)
		}
	}
}

func TestModelRejects(t *testing.T) {
	cfgCPU, err := cluster.NewConfig(144, cluster.FullLoad, cluster.MarconiA3())
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Kind: Banded, N: 131072, Band: 256, Cond: 1e4, Seed: 7}
	if _, err := Model(CG, spec, cfgCPU, cluster.DeviceAccel, perfmodel.Params{}); err == nil {
		t.Fatal("accelerated model accepted a machine without accelerators")
	}
	if _, err := Model(CG, spec, cfgCPU, cluster.DeviceCPU, perfmodel.Params{PowerCapW: 100}); err == nil {
		t.Fatal("sparse model accepted a power cap")
	}
	tiny := Spec{Kind: Banded, N: 12, Band: 2, Cond: 10, Seed: 1}
	if _, err := Model(CG, tiny, cfgCPU, cluster.DeviceCPU, perfmodel.Params{}); err == nil {
		t.Fatal("model accepted more ranks than rows")
	}
}

func TestEstItersBounds(t *testing.T) {
	if it := EstIters(CG, 100, 1000000); it < 10 || it > 1000 {
		t.Fatalf("CG κ=100 iters = %d, implausible", it)
	}
	if it := EstIters(CG, 1e12, 50); it != 50 {
		t.Fatalf("iteration clamp to n failed: %d", it)
	}
	if EstIters(BiCGSTAB, 100, 1000000) >= EstIters(CG, 100, 1000000) {
		t.Fatal("BiCGSTAB sweep count should sit below CG's for equal κ")
	}
}

func TestDeviceParse(t *testing.T) {
	for _, d := range cluster.Devices() {
		got, err := cluster.ParseDevice(d.String())
		if err != nil || got != d {
			t.Fatalf("ParseDevice(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := cluster.ParseDevice("gpu"); err == nil {
		t.Fatal("ParseDevice accepted \"gpu\"")
	}
}
