package sparse

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/rapl"
)

// The analytic sparse model: virtual time and energy for a CG/BiCGSTAB
// solve at paper scale, on CPU cores or on the node's accelerators. It
// shares the kernel constants with the executable solver (perf.go) and
// the communication/power calibration with the dense analytic engine, so
// its outputs live in the same unit system as every other cell in the
// store.

// ModelVersion stamps the sparse analytic semantics — the iteration
// model, kernel-bandwidth accounting and the accelerator energy domain.
// Bump on any change that alters outputs for identical inputs, so
// persisted sparse cells are never served across model changes.
const ModelVersion = "sparse-analytic/v1"

// ModelResult is one modelled sparse solve.
type ModelResult struct {
	// DurationS is the end-to-end virtual time.
	DurationS float64
	// ComputeS is the kernel time (SpMV + vector updates) per rank.
	ComputeS float64
	// ExposedCommS is the halo + allreduce time on the critical path.
	ExposedCommS float64
	// Iters is the modelled iteration count.
	Iters int
	// EnergyJ maps each RAPL domain to joules over the whole machine
	// share; accelerated runs add the rapl.Accel domain.
	EnergyJ map[rapl.Domain]float64
	// TotalJ sums EnergyJ.
	TotalJ float64
	// Flops is the arithmetic work (for efficiency objectives).
	Flops float64
}

// Model predicts a distributed sparse solve on the given configuration
// and device. Accelerated runs require cfg.Spec.Accel (resolve the
// experiment against a machine like cluster.MarconiA3Accel). Power caps
// are not modelled for sparse runs — the kernels are memory-bound and sit
// far below TDP, so a PL1 cap never binds; callers must reject requests
// that combine the two rather than silently ignore the cap.
func Model(alg Algorithm, spec Spec, cfg cluster.Config, device cluster.Device, prm perfmodel.Params) (ModelResult, error) {
	if err := spec.Validate(); err != nil {
		return ModelResult{}, err
	}
	if cfg.Ranks <= 0 || cfg.Ranks > spec.N {
		return ModelResult{}, fmt.Errorf("sparse: %d ranks unusable for order %d", cfg.Ranks, spec.N)
	}
	if prm.PowerCapW > 0 {
		return ModelResult{}, fmt.Errorf("sparse: power caps are not modelled for sparse solves")
	}
	if device == cluster.DeviceAccel && (cfg.Spec == nil || cfg.Spec.Accel == nil) {
		return ModelResult{}, fmt.Errorf("sparse: device accel requires a machine with accelerators (got %s)", specName(cfg.Spec))
	}
	prm = prm.Normalized()
	cost, cal := prm.Cost, prm.Calibration
	sh := shapeOf(alg)
	iters := EstIters(alg, spec.Cond, spec.N)

	rowsPerRank := float64(spec.N) / float64(cfg.Ranks)
	nnzPerRank := spec.EstNNZ() / float64(cfg.Ranks)
	spmvBytes := nnzPerRank * DramBytesPerNNZ
	vecBytes := sh.vecBytes * rowsPerRank

	// Halo shape: neighbour count and exchanged doubles per rank per
	// sweep. Banded blocks touch at most the adjacent blocks' Band rows
	// on each side; random patterns couple a rank to everyone, with the
	// expected external-column count from the complement probability.
	var peers, haloElems float64
	switch spec.Kind {
	case Banded:
		peers = 2
		if float64(cfg.Ranks-1) < peers {
			peers = float64(cfg.Ranks - 1)
		}
		haloElems = math.Min(2*float64(spec.Band), float64(spec.N)-rowsPerRank)
	default:
		// E[external cols] = (n − rows)·(1 − (1−density)^rows).
		hit := -math.Expm1(rowsPerRank * math.Log1p(-spec.Density))
		haloElems = (float64(spec.N) - rowsPerRank) * hit
		peers = math.Min(float64(cfg.Ranks-1), haloElems)
	}
	haloBytes := haloElems * mpi.Float64Bytes
	intra := cfg.Nodes <= 1
	haloTime := peers*(cost.SendOverhead+cost.RecvOverhead) + cost.Wire(intra, haloBytes)
	dotTime := float64(sh.dots) * cost.AllreduceTime(cfg.Ranks, mpi.Float64Bytes)

	accel := cfg.Spec.Accel
	var computeS, exposedComm, accelOverheadS float64
	if device == cluster.DeviceAccel {
		// Each rank drives an equal share of the node's accelerator
		// memory bandwidth; every sweep ships the halo over the host link
		// and each allreduce syncs a scalar across it.
		perRankBW := float64(accel.PerNode) * accel.MemBandwidthBps / float64(cfg.RanksPerNode)
		computeS = float64(iters) * (float64(sh.spmvs)*spmvBytes + vecBytes) / perRankBW
		accelOverheadS = float64(iters) * (float64(sh.spmvs)*(accel.TransferLatS+haloBytes/accel.TransferBps) +
			float64(sh.dots)*2*accel.TransferLatS)
	} else {
		computeS = float64(iters) * (float64(sh.spmvs)*spmvBytes + vecBytes) / HostStreamBps
	}
	exposedComm = float64(iters)*(float64(sh.spmvs)*haloTime+dotTime) + accelOverheadS
	duration := computeS + exposedComm

	// Energy mirrors perfmodel.energyFor: every active core is busy for
	// the whole run (kernels at the sparse activity factor on CPU, MPI
	// busy-poll at nominal; a host core driving an accelerator polls the
	// device at nominal for the whole duration).
	coresPerSocket := 24
	if cfg.Spec != nil {
		coresPerSocket = cfg.Spec.CoresPerSocket
	}
	hostKernelS := computeS
	if device == cluster.DeviceAccel {
		hostKernelS = 0 // kernels run on the device; hosts poll
	}
	pollS := duration - hostKernelS
	out := make(map[rapl.Domain]float64, 5)
	pkgDomains := [2]rapl.Domain{rapl.PKG0, rapl.PKG1}
	dramDomains := [2]rapl.Domain{rapl.DRAM0, rapl.DRAM1}
	for s := 0; s < 2; s++ {
		cores := cfg.ActiveCores(s)
		busy := float64(cores) * (hostKernelS*CoreActivity + pollS)
		pkgJ := cal.PkgEnergy(duration, busy, s) +
			cal.UncorePower(cores, coresPerSocket)*duration
		// Host DRAM traffic: the kernels' streamed bytes on CPU, only the
		// staged halo/transfer bytes when the kernels live on the device.
		var bytes float64
		if device == cluster.DeviceAccel {
			bytes = float64(iters) * float64(sh.spmvs) * haloBytes * float64(cores)
		} else {
			bytes = float64(iters) * (float64(sh.spmvs)*spmvBytes + vecBytes) * float64(cores)
		}
		dramJ := cal.DramEnergy(duration, bytes)
		out[pkgDomains[s]] += pkgJ * float64(cfg.Nodes)
		out[dramDomains[s]] += dramJ * float64(cfg.Nodes)
	}
	if device == cluster.DeviceAccel {
		perDev := accel.IdlePowerW*(duration-computeS) + accel.ActivePowerW*computeS
		out[rapl.Accel] = float64(cfg.Nodes) * float64(accel.PerNode) * perDev
	}
	// Sum in fixed domain order so TotalJ is bit-reproducible.
	var total float64
	for _, dom := range append(rapl.Domains(), rapl.Accel) {
		total += out[dom]
	}
	return ModelResult{
		DurationS:    duration,
		ComputeS:     computeS,
		ExposedCommS: exposedComm,
		Iters:        iters,
		EnergyJ:      out,
		TotalJ:       total,
		Flops:        WorkFlops(alg, spec, iters),
	}, nil
}

func specName(s *cluster.MachineSpec) string {
	if s == nil {
		return "nil spec"
	}
	return s.Name
}
