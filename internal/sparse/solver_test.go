package sparse

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/scalapack"
)

// runSolve executes a distributed solve and checks every rank returned
// the identical full solution.
func runSolve(t *testing.T, alg Algorithm, spec Spec, ranks int, opt Options) Solution {
	t.Helper()
	w, err := mpi.NewWorld(ranks, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	sols := make([]Solution, ranks)
	err = w.Run(func(p *mpi.Proc) error {
		sol, err := Solve(p, alg, spec, opt)
		if err != nil {
			return err
		}
		mu.Lock()
		sols[p.Rank()] = sol
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < ranks; r++ {
		for i := range sols[0].X {
			if sols[r].X[i] != sols[0].X[i] {
				t.Fatalf("rank %d solution diverges at x[%d]: %g != %g", r, i, sols[r].X[i], sols[0].X[i])
			}
		}
	}
	return sols[0]
}

// denseReference solves the same system with the dense direct solver.
func denseReference(t *testing.T, spec Spec) []float64 {
	t.Helper()
	a, err := spec.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	x, err := scalapack.Dgesv(&mat.System{A: a.Dense(), B: spec.RHS()})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func checkAgainstDense(t *testing.T, alg Algorithm, spec Spec, ranks int) {
	t.Helper()
	want := denseReference(t, spec)
	sol := runSolve(t, alg, spec, ranks, Options{Tol: 1e-12})
	norm := 0.0
	for _, v := range want {
		norm = math.Max(norm, math.Abs(v))
	}
	for i := range want {
		if math.Abs(sol.X[i]-want[i]) > 1e-9*(1+norm) {
			t.Fatalf("%s %s ranks=%d: x[%d] = %.15g, dense reference %.15g (iters %d)",
				alg, spec.Label(), ranks, i, sol.X[i], want[i], sol.Iters)
		}
	}
	if sol.Residual > 1e-10 {
		t.Fatalf("%s %s: reported residual %g", alg, spec.Label(), sol.Residual)
	}
}

func TestCGMatchesDenseReference(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: Banded, N: 96, Band: 5, Cond: 100, Seed: 3},
		{Kind: Random, N: 80, Density: 0.08, Cond: 40, Seed: 5},
	} {
		for _, ranks := range []int{1, 3, 8} {
			checkAgainstDense(t, CG, spec, ranks)
		}
	}
}

func TestBiCGSTABMatchesDenseReference(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: Banded, N: 96, Band: 5, Cond: 100, Seed: 3},
		{Kind: Random, N: 80, Density: 0.08, Cond: 40, Seed: 5},
	} {
		for _, ranks := range []int{1, 4} {
			checkAgainstDense(t, BiCGSTAB, spec, ranks)
		}
	}
}

func TestSolveDeterministicRerun(t *testing.T) {
	spec := Spec{Kind: Banded, N: 64, Band: 3, Cond: 64, Seed: 9}
	a := runSolve(t, CG, spec, 4, Options{})
	b := runSolve(t, CG, spec, 4, Options{})
	if a.Iters != b.Iters || a.Residual != b.Residual {
		t.Fatalf("rerun differs: %d/%g vs %d/%g", a.Iters, a.Residual, b.Iters, b.Residual)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("rerun not bitwise identical at x[%d]", i)
		}
	}
}

// TestSolve96Ranks is the scale point of the race lane: 96 ranks, both
// solvers, true residual verified against the generated matrix.
func TestSolve96Ranks(t *testing.T) {
	spec := Spec{Kind: Banded, N: 960, Band: 4, Cond: 50, Seed: 13}
	a, err := spec.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	b := spec.RHS()
	bn := mat.TwoNorm(b)
	for _, alg := range Algorithms() {
		sol := runSolve(t, alg, spec, 96, Options{ChargeCosts: true})
		r := a.MulVec(sol.X)
		for i := range r {
			r[i] -= b[i]
		}
		if rr := mat.TwoNorm(r) / bn; rr > 1e-8 {
			t.Fatalf("%s at 96 ranks: true relative residual %g", alg, rr)
		}
	}
}

// TestCrashSurfacesRankFailed pins the fault contract: a rank crashing
// mid-solve turns into mpi.ErrRankFailed on the live ranks — never a
// deadlock.
func TestCrashSurfacesRankFailed(t *testing.T) {
	const ranks, victim = 6, 2
	inj, err := fault.New(fault.Config{
		Seed: 1,
		// The virtual clock advances in ~µs steps per iteration; crash
		// almost immediately so the halo/allreduce path hits the corpse.
		Events: []fault.Event{{Time: 1e-6, Ranks: []int{victim}}},
	}, ranks)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(ranks, mpi.Options{Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Kind: Banded, N: 600, Band: 8, Cond: 1e4, Seed: 21}
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(p *mpi.Proc) error {
			_, err := Solve(p, CG, spec, Options{ChargeCosts: true})
			return err
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, mpi.ErrRankFailed) {
			t.Fatalf("solve with crashed rank returned %v, want mpi.ErrRankFailed", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("solve with crashed rank deadlocked")
	}
}

func TestSolveRejects(t *testing.T) {
	w, err := mpi.NewWorld(4, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) error {
		if _, err := Solve(p, CG, Spec{Kind: Banded, N: 2, Band: 1, Cond: 10}, Options{}); err == nil {
			return errors.New("accepted more ranks than rows")
		}
		if _, err := Solve(p, CG, Spec{Kind: Banded, N: 0, Band: 1, Cond: 10}, Options{}); err == nil {
			return errors.New("accepted invalid spec")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNonConvergenceError forces MaxIter exhaustion and checks the error
// is typed as such rather than returning a bogus solution.
func TestNonConvergenceError(t *testing.T) {
	spec := Spec{Kind: Banded, N: 64, Band: 3, Cond: 1e6, Seed: 2}
	w, err := mpi.NewWorld(2, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) error {
		_, err := Solve(p, CG, spec, Options{MaxIter: 2})
		if err == nil {
			return errors.New("2-iteration budget converged on a κ=1e6 system")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
