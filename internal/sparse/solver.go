package sparse

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/mpi"
)

// Distributed CG / BiCGSTAB over the simulated-MPI substrate.
//
// Distribution is a contiguous row-block partition (BlockRange). Every
// rank generates its own rows from the Spec, so there is no input
// distribution step. The halo plan is negotiated once: a rank derives
// which external vector entries its rows touch, and — because the
// generated sparsity pattern is symmetric — the set of peers that need
// entries *from* it is exactly the set it needs entries from, so the
// plan is one index-list exchange with no discovery round. Per
// iteration the exchange is all-sends-then-all-recvs, one message per
// (src,dst) pair, which the mailbox's buffered streams absorb without
// deadlock; a crashed peer surfaces as mpi.ErrRankFailed from the
// Send/Recv itself.
//
// Phases (spmv, halo, dot, axpy) are recorded on the tracer; with
// ChargeCosts the kernels charge virtual time and DRAM traffic at the
// memory-bound rates in perf.go through the same RAPL accounting the
// dense solvers use.

// BlockRange returns the half-open row range [lo,hi) owned by rank r of
// ranks under contiguous block distribution with remainder rows on the
// leading ranks (same convention as the dense solvers).
func BlockRange(n, ranks, r int) (lo, hi int) {
	if ranks <= 0 || r < 0 || r >= ranks {
		return 0, 0
	}
	base := n / ranks
	rem := n % ranks
	if r < rem {
		lo = r * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (r-rem)*base
	return lo, lo + base
}

// OwnerOf returns the rank owning row (0-based) under BlockRange.
func OwnerOf(n, ranks, row int) int {
	if ranks <= 0 || row < 0 || row >= n {
		return -1
	}
	base := n / ranks
	rem := n % ranks
	cut := rem * (base + 1)
	if row < cut {
		return row / (base + 1)
	}
	return rem + (row-cut)/base
}

// Options configures a distributed solve.
type Options struct {
	// Tol is the relative-residual convergence target (SolverTol if 0).
	Tol float64
	// MaxIter bounds the iteration count (4·n if 0).
	MaxIter int
	// ChargeCosts enables virtual-time/energy accounting of the kernels
	// at the perf.go rates (communication is always charged by the
	// substrate).
	ChargeCosts bool
}

// Solution is the outcome of a converged distributed solve.
type Solution struct {
	// X is the full solution vector, identical on every rank.
	X []float64
	// Iters is the iteration count to convergence.
	Iters int
	// Residual is the final relative residual from the recurrence.
	Residual float64
}

// Tags of the solver's point-to-point traffic (collectives use the
// substrate's reserved negative tags).
const (
	tagHaloIdx = 7001 // one-time halo plan: index lists
	tagHalo    = 7002 // per-iteration halo values
)

// Solve runs the selected iterative solver on the world communicator.
func Solve(p *mpi.Proc, alg Algorithm, spec Spec, opt Options) (Solution, error) {
	if err := spec.Validate(); err != nil {
		return Solution{}, err
	}
	if p.Size() > spec.N {
		return Solution{}, fmt.Errorf("sparse: %d ranks exceed order %d", p.Size(), spec.N)
	}
	if opt.Tol <= 0 {
		opt.Tol = SolverTol
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 4 * spec.N
	}
	d, err := newDist(p, spec, opt.ChargeCosts)
	if err != nil {
		return Solution{}, err
	}
	if opt.ChargeCosts {
		p.SetActivity(CoreActivity)
		defer p.SetActivity(1)
	}
	switch alg {
	case CG:
		return d.cg(opt)
	case BiCGSTAB:
		return d.bicgstab(opt)
	default:
		return Solution{}, fmt.Errorf("sparse: unknown algorithm %v", alg)
	}
}

// haloPeer is one neighbour of the halo plan.
type haloPeer struct {
	rank int
	// sendOff are local row offsets whose values the peer needs.
	sendOff []int
	// recvPos are positions in the extended vector (≥ rows) filled by
	// the peer's message, in the peer's send order.
	recvPos []int
	sendBuf []float64
}

// dist is the per-rank state of a distributed solve.
type dist struct {
	p      *mpi.Proc
	c      *mpi.Comm
	spec   Spec
	lo, hi int
	rows   int
	// a holds this rank's rows with columns remapped to the extended
	// local vector: [0,rows) are owned entries, rows+k is external k.
	a     *CSR
	peers []haloPeer
	// xext is the extended SpMV input: owned block followed by halo.
	xext   []float64
	charge bool
}

// newDist generates the rank's row block, remaps it to extended-vector
// indexing and negotiates the halo plan.
func newDist(p *mpi.Proc, spec Spec, charge bool) (*dist, error) {
	size, rank := p.Size(), p.Rank()
	lo, hi := BlockRange(spec.N, size, rank)
	a, err := spec.RowBlock(lo, hi)
	if err != nil {
		return nil, err
	}
	d := &dist{p: p, c: p.World(), spec: spec, lo: lo, hi: hi, rows: hi - lo, a: a, charge: charge}

	// External columns, sorted and deduplicated; sorted order groups
	// them by owning rank, since ownership is contiguous.
	extSet := make(map[int]struct{})
	for _, j := range a.Col {
		if j < lo || j >= hi {
			extSet[j] = struct{}{}
		}
	}
	ext := make([]int, 0, len(extSet))
	for j := range extSet {
		ext = append(ext, j)
	}
	sort.Ints(ext)
	extPos := make(map[int]int, len(ext))
	for k, j := range ext {
		extPos[j] = d.rows + k
	}
	for i, j := range a.Col {
		if j >= lo && j < hi {
			a.Col[i] = j - lo
		} else {
			a.Col[i] = extPos[j]
		}
	}
	a.Cols = d.rows + len(ext) // now indexed against the extended vector
	d.xext = make([]float64, a.Cols)

	// Group the needed entries by owner. The symmetric pattern makes
	// peer sets symmetric, so the same loop fixes who we send to.
	byOwner := make(map[int][]int)
	var peerRanks []int
	for _, j := range ext {
		o := OwnerOf(spec.N, size, j)
		if _, seen := byOwner[o]; !seen {
			peerRanks = append(peerRanks, o)
		}
		byOwner[o] = append(byOwner[o], j)
	}
	sort.Ints(peerRanks)

	// One-time plan exchange: tell each peer which of its rows we need
	// (as float64-encoded indices), receive the symmetric request.
	for _, o := range peerRanks {
		need := byOwner[o]
		msg := make([]float64, len(need))
		for i, j := range need {
			msg[i] = float64(j)
		}
		if err := p.SendNoCopy(d.c, o, tagHaloIdx, msg); err != nil {
			return nil, err
		}
	}
	for _, o := range peerRanks {
		req, err := p.Recv(d.c, o, tagHaloIdx)
		if err != nil {
			return nil, err
		}
		need := byOwner[o]
		hp := haloPeer{
			rank:    o,
			sendOff: make([]int, len(req)),
			recvPos: make([]int, len(need)),
			sendBuf: make([]float64, len(req)),
		}
		for i, f := range req {
			j := int(f)
			if j < lo || j >= hi {
				return nil, fmt.Errorf("sparse: rank %d asked rank %d for row %d outside [%d,%d)", o, rank, j, lo, hi)
			}
			hp.sendOff[i] = j - lo
		}
		for i, j := range need {
			hp.recvPos[i] = extPos[j]
		}
		d.peers = append(d.peers, hp)
	}
	return d, nil
}

// exchange refreshes the halo of the extended vector from the owned
// values v (length rows): buffered sends to every peer, then receives —
// one message per pair, so the streams never fill and a crash in either
// direction surfaces as a typed error instead of a deadlock.
func (d *dist) exchange(iter int, v []float64) error {
	copy(d.xext[:d.rows], v)
	if len(d.peers) == 0 {
		return nil
	}
	ph := d.p.BeginPhase("halo", iter)
	defer d.p.EndPhase(ph)
	for i := range d.peers {
		hp := &d.peers[i]
		for k, off := range hp.sendOff {
			hp.sendBuf[k] = v[off]
		}
		if err := d.p.Send(d.c, hp.rank, tagHalo, hp.sendBuf); err != nil {
			return err
		}
	}
	for i := range d.peers {
		hp := &d.peers[i]
		in, err := d.p.Recv(d.c, hp.rank, tagHalo)
		if err != nil {
			return err
		}
		if len(in) != len(hp.recvPos) {
			return fmt.Errorf("sparse: halo from rank %d carried %d values, want %d", hp.rank, len(in), len(hp.recvPos))
		}
		for k, pos := range hp.recvPos {
			d.xext[pos] = in[k]
		}
	}
	return nil
}

// spmv computes dst = A·xext (call exchange first) and charges the
// memory-bound kernel.
func (d *dist) spmv(iter int, dst []float64) {
	ph := d.p.BeginPhase("spmv", iter)
	d.a.MulVecInto(dst, d.xext)
	d.chargeBytes(float64(d.a.NNZ()) * DramBytesPerNNZ)
	d.p.EndPhase(ph)
}

// dots computes global dot products over the block-distributed vector
// pairs in one fused allreduce.
func (d *dist) dots(iter int, pairs ...[2][]float64) ([]float64, error) {
	ph := d.p.BeginPhase("dot", iter)
	defer d.p.EndPhase(ph)
	local := make([]float64, len(pairs))
	for k, pr := range pairs {
		local[k] = mat.Dot(pr[0], pr[1])
	}
	d.chargeBytes(16 * float64(d.rows) * float64(len(pairs)))
	return d.p.AllreduceSum(d.c, local)
}

// axpyPhase wraps a batch of local vector updates in an "axpy" span and
// charges their streamed traffic (bytes per row).
func (d *dist) axpyPhase(iter int, bytesPerRow float64, body func()) {
	ph := d.p.BeginPhase("axpy", iter)
	body()
	d.chargeBytes(bytesPerRow * float64(d.rows))
	d.p.EndPhase(ph)
}

// chargeBytes charges a memory-bound kernel touching the given traffic.
func (d *dist) chargeBytes(bytes float64) {
	if d.charge {
		d.p.Compute(bytes/HostStreamBps, bytes)
	}
}

// finish allgathers the owned blocks into the full solution. Allgather
// contributions must be equal length, so blocks are padded to the
// largest block and trimmed back per the partition on reassembly.
func (d *dist) finish(x []float64, iters int, rr, bb float64) (Solution, error) {
	size := d.p.Size()
	maxBlock := (d.spec.N + size - 1) / size
	padded := make([]float64, maxBlock)
	copy(padded, x)
	chunks, err := d.p.Allgather(d.c, padded)
	if err != nil {
		return Solution{}, err
	}
	full := make([]float64, 0, d.spec.N)
	for r, ch := range chunks {
		lo, hi := BlockRange(d.spec.N, size, r)
		full = append(full, ch[:hi-lo]...)
	}
	res := 0.0
	if bb > 0 {
		res = math.Sqrt(rr / bb)
	}
	return Solution{X: full, Iters: iters, Residual: res}, nil
}

// cg is the conjugate gradient iteration.
func (d *dist) cg(opt Options) (Solution, error) {
	x := make([]float64, d.rows)
	r := d.spec.RHSRange(d.lo, d.hi)
	pv := mat.VecClone(r)
	q := make([]float64, d.rows)

	rr0, err := d.dots(0, [2][]float64{r, r})
	if err != nil {
		return Solution{}, err
	}
	rr, bb := rr0[0], rr0[0]
	tol2 := opt.Tol * opt.Tol * bb
	iters := 0
	for it := 1; it <= opt.MaxIter && rr > tol2; it++ {
		if err := d.exchange(it, pv); err != nil {
			return Solution{}, err
		}
		d.spmv(it, q)
		pq, err := d.dots(it, [2][]float64{pv, q})
		if err != nil {
			return Solution{}, err
		}
		if pq[0] <= 0 {
			return Solution{}, fmt.Errorf("sparse: CG breakdown at iteration %d (p·Ap = %g)", it, pq[0])
		}
		alpha := rr / pq[0]
		d.axpyPhase(it, 48, func() {
			mat.Axpy(alpha, pv, x)
			mat.Axpy(-alpha, q, r)
		})
		rrNew, err := d.dots(it, [2][]float64{r, r})
		if err != nil {
			return Solution{}, err
		}
		beta := rrNew[0] / rr
		rr = rrNew[0]
		d.axpyPhase(it, 24, func() {
			for i := range pv {
				pv[i] = r[i] + beta*pv[i]
			}
		})
		iters = it
	}
	if rr > tol2 {
		return Solution{}, fmt.Errorf("sparse: CG did not converge within %d iterations (rel residual %.3e)", opt.MaxIter, math.Sqrt(rr/bb))
	}
	return d.finish(x, iters, rr, bb)
}

// bicgstab is the stabilised bi-conjugate gradient iteration. The final
// residual norm uses the exact update algebra ‖s−ωt‖² = s·s − 2ω·t·s +
// ω²·t·t, folding what would be a fourth allreduce into the fused dots.
func (d *dist) bicgstab(opt Options) (Solution, error) {
	x := make([]float64, d.rows)
	r := d.spec.RHSRange(d.lo, d.hi)
	rhat := mat.VecClone(r)
	pv := make([]float64, d.rows)
	v := make([]float64, d.rows)
	s := make([]float64, d.rows)
	t := make([]float64, d.rows)

	rr0, err := d.dots(0, [2][]float64{r, r})
	if err != nil {
		return Solution{}, err
	}
	rr, bb := rr0[0], rr0[0]
	tol2 := opt.Tol * opt.Tol * bb
	rho, alpha, omega := 1.0, 1.0, 1.0
	iters := 0
	for it := 1; it <= opt.MaxIter && rr > tol2; it++ {
		rhoNew, err := d.dots(it, [2][]float64{rhat, r})
		if err != nil {
			return Solution{}, err
		}
		if rhoNew[0] == 0 {
			return Solution{}, fmt.Errorf("sparse: BiCGSTAB breakdown at iteration %d (ρ = 0)", it)
		}
		if it == 1 {
			copy(pv, r)
		} else {
			beta := (rhoNew[0] / rho) * (alpha / omega)
			d.axpyPhase(it, 32, func() {
				for i := range pv {
					pv[i] = r[i] + beta*(pv[i]-omega*v[i])
				}
			})
		}
		rho = rhoNew[0]
		if err := d.exchange(it, pv); err != nil {
			return Solution{}, err
		}
		d.spmv(it, v)
		rv, err := d.dots(it, [2][]float64{rhat, v})
		if err != nil {
			return Solution{}, err
		}
		if rv[0] == 0 {
			return Solution{}, fmt.Errorf("sparse: BiCGSTAB breakdown at iteration %d (r̂·v = 0)", it)
		}
		alpha = rho / rv[0]
		d.axpyPhase(it, 24, func() {
			for i := range s {
				s[i] = r[i] - alpha*v[i]
			}
		})
		if err := d.exchange(it, s); err != nil {
			return Solution{}, err
		}
		d.spmv(it, t)
		fused, err := d.dots(it, [2][]float64{t, s}, [2][]float64{t, t}, [2][]float64{s, s})
		if err != nil {
			return Solution{}, err
		}
		ts, tt, ss := fused[0], fused[1], fused[2]
		if tt == 0 {
			// s is already (numerically) zero: accept the half step.
			d.axpyPhase(it, 24, func() { mat.Axpy(alpha, pv, x) })
			rr = ss
			iters = it
			break
		}
		omega = ts / tt
		d.axpyPhase(it, 56, func() {
			for i := range x {
				x[i] += alpha*pv[i] + omega*s[i]
			}
			for i := range r {
				r[i] = s[i] - omega*t[i]
			}
		})
		rr = ss - 2*omega*ts + omega*omega*tt
		if rr < 0 {
			rr = 0 // cancellation guard: the true norm is non-negative
		}
		iters = it
	}
	if rr > tol2 {
		return Solution{}, fmt.Errorf("sparse: BiCGSTAB did not converge within %d iterations (rel residual %.3e)", opt.MaxIter, math.Sqrt(rr/bb))
	}
	return d.finish(x, iters, rr, bb)
}
