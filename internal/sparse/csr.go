package sparse

import (
	"fmt"

	"repro/internal/mat"
)

// CSR is a compressed-sparse-row matrix. A full matrix has Rows == Cols;
// a distributed row block (Spec.RowBlock) stores only its rows, with
// column indices still global, which is exactly the form the distributed
// SpMV wants before its halo remap.
type CSR struct {
	Rows, Cols int
	// RowPtr has Rows+1 entries; row i's entries are
	// Col[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]], with
	// column indices strictly increasing within a row.
	RowPtr []int
	Col    []int
	Val    []float64
}

// NNZ returns the stored entry count.
func (a *CSR) NNZ() int { return len(a.Val) }

// Validate checks the structural invariants.
func (a *CSR) Validate() error {
	if a.Rows < 0 || a.Cols < 0 {
		return fmt.Errorf("sparse: negative shape %dx%d", a.Rows, a.Cols)
	}
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("sparse: RowPtr has %d entries, want %d", len(a.RowPtr), a.Rows+1)
	}
	if len(a.Col) != len(a.Val) {
		return fmt.Errorf("sparse: %d columns vs %d values", len(a.Col), len(a.Val))
	}
	if a.RowPtr[0] != 0 || a.RowPtr[a.Rows] != len(a.Val) {
		return fmt.Errorf("sparse: RowPtr bounds [%d,%d], want [0,%d]", a.RowPtr[0], a.RowPtr[a.Rows], len(a.Val))
	}
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.Col[k] < 0 || a.Col[k] >= a.Cols {
				return fmt.Errorf("sparse: row %d column %d out of range [0,%d)", i, a.Col[k], a.Cols)
			}
			if k > a.RowPtr[i] && a.Col[k] <= a.Col[k-1] {
				return fmt.Errorf("sparse: row %d columns not strictly increasing", i)
			}
		}
	}
	return nil
}

// MulVec returns A·x for a vector of length Cols.
func (a *CSR) MulVec(x []float64) []float64 {
	y := make([]float64, a.Rows)
	a.MulVecInto(y, x)
	return y
}

// MulVecInto computes dst = A·x without allocating; dst must have length
// Rows and x length Cols.
func (a *CSR) MulVecInto(dst, x []float64) {
	if len(dst) != a.Rows || len(x) != a.Cols {
		panic(fmt.Sprintf("sparse: MulVecInto shapes dst=%d x=%d for %dx%d matrix", len(dst), len(x), a.Rows, a.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.Col[k]]
		}
		dst[i] = s
	}
}

// Dense materialises the matrix — the seam to the dense reference solves
// the numerics tests cross-check against.
func (a *CSR) Dense() *mat.Dense {
	d := mat.New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d.Set(i, a.Col[k], a.Val[k])
		}
	}
	return d
}
