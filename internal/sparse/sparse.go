// Package sparse is the iterative-solver workload family: CSR sparse
// matrices with deterministic seeded generators, a distributed SpMV over
// the simulated-MPI substrate (row-block partition, halo exchange on the
// lazy per-(src,dst) streams), and CG/BiCGSTAB solvers whose virtual time
// and energy are charged through the same cost-model/RAPL path as the
// dense solvers.
//
// The source paper compares two dense direct solvers; "On the energy
// efficiency of sparse matrix computations on multi-GPU clusters"
// (PAPERS.md) motivates this package: SpMV-dominated iterative solves are
// memory-bound, convergence-dependent and accelerator-friendly — a
// qualitatively different energy profile, and a genuinely non-obvious
// CPU-vs-accelerator placement decision for the advisor. The analytic
// side (model.go) extends the grid with matrix kind, nnz density,
// condition number and device axes; the executable side (solver.go) runs
// the real distributed numerics for cross-checks, monitoring and the
// fault plane.
package sparse

import (
	"fmt"
	"strings"
)

// Kind selects the sparsity structure of a generated matrix.
type Kind int

const (
	// Banded matrices have entries within a fixed half-bandwidth of the
	// diagonal (stencil-like problems).
	Banded Kind = iota
	// Random matrices place off-diagonal entries independently with a
	// fixed density (unstructured graphs / circuits).
	Random
)

// Kinds lists all matrix kinds in canonical order.
func Kinds() []Kind { return []Kind{Banded, Random} }

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Banded:
		return "banded"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind is the inverse of Kind.String, for request-driven callers
// that receive matrix kinds as text.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sparse: unknown matrix kind %q (want banded or random)", s)
}

// Algorithm selects the iterative solver.
type Algorithm int

const (
	// CG is the conjugate gradient method (SPD systems).
	CG Algorithm = iota
	// BiCGSTAB is the stabilised bi-conjugate gradient method; two SpMVs
	// per iteration but a smoother residual history.
	BiCGSTAB
)

// Algorithms lists both solvers in canonical order.
func Algorithms() []Algorithm { return []Algorithm{CG, BiCGSTAB} }

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case CG:
		return "CG"
	case BiCGSTAB:
		return "BiCGSTAB"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm is the inverse of Algorithm.String (case-insensitive).
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if strings.EqualFold(s, a.String()) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("sparse: unknown algorithm %q (want CG or BiCGSTAB)", s)
}
