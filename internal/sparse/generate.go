package sparse

import (
	"fmt"
	"math"
)

// Spec is the deterministic recipe for one sparse SPD system: every
// entry of the matrix and the right-hand side is a pure function of
// (Spec, i, j), so any rank can generate exactly its row block with no
// input distribution or negotiation — the property the distributed
// solver's halo plan is built on (the sparsity pattern is symmetric, so
// peer sets follow from a rank's own rows).
type Spec struct {
	Kind Kind
	// N is the matrix order.
	N int
	// Band is the half-bandwidth (Banded kind): entries live at
	// |i−j| ≤ Band.
	Band int
	// Density is the independent off-diagonal entry probability
	// (Random kind).
	Density float64
	// Cond is the target condition-number bound, enforced via the
	// diagonal shift (see Shift): Gershgorin confines the spectrum to
	// [δ, 2·s+δ] for row sums s ≤ SBound, so κ ≲ Cond.
	Cond float64
	// Seed drives every pseudo-random draw.
	Seed int64
}

// Validate reports an error for an unusable spec.
func (s Spec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("sparse: order %d must be positive", s.N)
	}
	switch s.Kind {
	case Banded:
		if s.Band < 1 || s.Band >= s.N {
			return fmt.Errorf("sparse: half-bandwidth %d outside [1,%d)", s.Band, s.N)
		}
	case Random:
		if !(s.Density > 0 && s.Density <= 1) {
			return fmt.Errorf("sparse: density %g outside (0,1]", s.Density)
		}
	default:
		return fmt.Errorf("sparse: unknown matrix kind %v", s.Kind)
	}
	if !(s.Cond > 1) || math.IsInf(s.Cond, 0) || math.IsNaN(s.Cond) {
		return fmt.Errorf("sparse: condition target %g must exceed 1", s.Cond)
	}
	return nil
}

// Label renders a short human-readable identifier such as
// "banded/n=4096/band=64/cond=100".
func (s Spec) Label() string {
	switch s.Kind {
	case Random:
		return fmt.Sprintf("random/n=%d/density=%g/cond=%g", s.N, s.Density, s.Cond)
	default:
		return fmt.Sprintf("banded/n=%d/band=%d/cond=%g", s.N, s.Band, s.Cond)
	}
}

// Hash salts separating the independent pseudo-random streams.
const (
	saltPresence = 0x70726573 // off-diagonal presence (Random kind)
	saltValue    = 0x76616c75 // off-diagonal values
	saltRHS      = 0x72687321 // right-hand side
)

// splitmix64 is the seeded hash behind every draw (same construction the
// analytic engine's jitter uses).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pairHash hashes (seed, salt, i, j); callers pass (min,max) so the draw
// is symmetric in (i,j).
func (s Spec) pairHash(salt uint64, i, j int) uint64 {
	h := splitmix64(uint64(s.Seed) ^ salt)
	h = splitmix64(h ^ uint64(i))
	return splitmix64(h ^ uint64(j)<<1)
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// offdiag returns the symmetric off-diagonal entry A[i][j] = A[j][i] for
// i ≠ j, or 0 when the pattern has no entry there. Values are in
// [-1,-0.1): a (negative, Laplacian-like) stencil weight; the sign is
// immaterial for the SPD construction, which only uses |A[i][j]|.
func (s Spec) offdiag(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	switch s.Kind {
	case Banded:
		if j-i > s.Band {
			return 0
		}
	case Random:
		if unit(s.pairHash(saltPresence, i, j)) >= s.Density {
			return 0
		}
	}
	return -(0.1 + 0.9*unit(s.pairHash(saltValue, i, j)))
}

// SBound is a deterministic bound on the off-diagonal absolute row sum
// used to place the diagonal shift. For Banded it is exact (each |entry|
// < 1); for Random it covers the expectation with slack for fluctuation,
// so the realised condition number lands at or below Cond.
func (s Spec) SBound() float64 {
	switch s.Kind {
	case Random:
		return 1.5*s.Density*float64(s.N-1) + 2
	default:
		return 2 * float64(s.Band)
	}
}

// Shift is the diagonal shift δ: with diag = rowAbsSum + δ, Gershgorin
// gives eigenvalues in [δ, 2·SBound+δ], hence κ ≤ 1 + 2·SBound/δ = Cond.
func (s Spec) Shift() float64 { return 2 * s.SBound() / (s.Cond - 1) }

// RowBlock generates rows [lo,hi) of the matrix as a CSR with global
// column indices — the distributed solver's per-rank share. RowBlock(0,N)
// is the full matrix.
func (s Spec) RowBlock(lo, hi int) (*CSR, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if lo < 0 || hi < lo || hi > s.N {
		return nil, fmt.Errorf("sparse: row block [%d,%d) outside [0,%d]", lo, hi, s.N)
	}
	shift := s.Shift()
	a := &CSR{Rows: hi - lo, Cols: s.N, RowPtr: make([]int, hi-lo+1)}
	for i := lo; i < hi; i++ {
		jlo, jhi := 0, s.N
		if s.Kind == Banded {
			jlo, jhi = i-s.Band, i+s.Band+1
			if jlo < 0 {
				jlo = 0
			}
			if jhi > s.N {
				jhi = s.N
			}
		}
		var rowSum float64
		diagAt := -1
		for j := jlo; j < jhi; j++ {
			if j == i {
				diagAt = len(a.Val)
				a.Col = append(a.Col, j)
				a.Val = append(a.Val, 0) // patched below
				continue
			}
			if v := s.offdiag(i, j); v != 0 {
				a.Col = append(a.Col, j)
				a.Val = append(a.Val, v)
				rowSum += math.Abs(v)
			}
		}
		a.Val[diagAt] = rowSum + shift
		a.RowPtr[i-lo+1] = len(a.Val)
	}
	return a, nil
}

// Matrix generates the full matrix.
func (s Spec) Matrix() (*CSR, error) { return s.RowBlock(0, s.N) }

// RHSRange generates entries [lo,hi) of the right-hand side, values in
// [-1,1).
func (s Spec) RHSRange(lo, hi int) []float64 {
	b := make([]float64, hi-lo)
	for i := lo; i < hi; i++ {
		b[i-lo] = 2*unit(s.pairHash(saltRHS, i, i)) - 1
	}
	return b
}

// RHS generates the full right-hand side.
func (s Spec) RHS() []float64 { return s.RHSRange(0, s.N) }

// EstNNZ is the analytic model's entry count: exact for Banded
// (n + 2·band·n − band·(band+1) after edge truncation), the expectation
// for Random (n diagonal + n·(n−1)·density off-diagonal).
func (s Spec) EstNNZ() float64 {
	n := float64(s.N)
	switch s.Kind {
	case Random:
		return n + n*(n-1)*s.Density
	default:
		b := float64(s.Band)
		return n + 2*b*n - b*(b+1)
	}
}
