package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCoalescerSharesOneComputation(t *testing.T) {
	c := NewCoalescer()
	var computes atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	fn := func() ([]byte, error) {
		computes.Add(1)
		close(entered)
		<-release
		return []byte("body"), nil
	}

	const followers = 16
	var wg sync.WaitGroup
	results := make([][]byte, followers+1)
	shared := make([]bool, followers+1)
	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		results[0], shared[0], _ = c.Do(context.Background(), "k", fn)
	}()
	<-entered
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], shared[i], _ = c.Do(context.Background(), "k", fn)
		}(i)
	}
	// Followers must be parked on the call before we release the leader;
	// poll until the key is the only in-flight entry and goroutines had a
	// chance to block (the select is the only place they can be).
	deadline := time.After(2 * time.Second)
	for c.Inflight() != 1 {
		select {
		case <-deadline:
			t.Fatal("coalescer never reached one in-flight call")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	if shared[0] {
		t.Fatal("leader reported shared")
	}
	for i := 0; i <= followers; i++ {
		if string(results[i]) != "body" {
			t.Fatalf("caller %d got %q", i, results[i])
		}
	}
}

func TestCoalescerFollowerHonoursDeadline(t *testing.T) {
	c := NewCoalescer()
	release := make(chan struct{})
	entered := make(chan struct{})
	go c.Do(context.Background(), "k", func() ([]byte, error) {
		close(entered)
		<-release
		return []byte("late"), nil
	})
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, shared, err := c.Do(ctx, "k", func() ([]byte, error) { t.Fatal("follower must not compute"); return nil, nil })
	if shared || !errors.Is(err, context.DeadlineExceeded) {
		// shared must be false: the follower received nothing from the
		// leader, and reporting it as coalesced would double-count it with
		// the deadline shed metrics.
		t.Fatalf("follower: shared=%v err=%v, want unshared deadline error", shared, err)
	}
	close(release) // the leader still completes
}

func TestCoalescerErrorPropagates(t *testing.T) {
	c := NewCoalescer()
	boom := errors.New("boom")
	_, shared, err := c.Do(context.Background(), "k", func() ([]byte, error) { return nil, boom })
	if shared || !errors.Is(err, boom) {
		t.Fatalf("shared=%v err=%v", shared, err)
	}
	// The key is released after completion: a fresh call recomputes.
	body, shared, err := c.Do(context.Background(), "k", func() ([]byte, error) { return []byte("ok"), nil })
	if shared || err != nil || string(body) != "ok" {
		t.Fatalf("retry: body=%q shared=%v err=%v", body, shared, err)
	}
}
