package server

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Cache is an LRU+TTL byte cache for marshalled response bodies.
//
// The advisor's workloads are deterministic pure functions of the
// canonicalized request (the analytic engine has no hidden state), so a
// cached body is not an approximation of a fresh compute — it IS the
// fresh compute, byte for byte. Capacity is bounded by entry count (the
// grid of plausible requests is small and bodies are a few KB), and the
// TTL exists to bound memory residency, not staleness.
type Cache struct {
	mu    sync.Mutex
	max   int
	ttl   time.Duration // <= 0: entries never expire
	now   func() time.Time
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	// Instrumentation, optionally attached by the server after
	// construction (telemetry instruments are nil-safe no-ops until
	// then). entriesGauge tracks residency; the eviction counters split
	// by cause so capacity pressure (working set exceeds CacheEntries —
	// a sizing signal) is distinguishable from TTL housekeeping.
	entriesGauge    *telemetry.Gauge
	evictedCapacity *telemetry.Counter
	evictedExpired  *telemetry.Counter
}

type cacheEntry struct {
	key     string
	body    []byte
	expires time.Time // zero: never
}

// NewCache returns a cache holding at most maxEntries bodies, each for
// at most ttl (ttl <= 0 disables expiry). maxEntries must be positive.
func NewCache(maxEntries int, ttl time.Duration) *Cache {
	if maxEntries <= 0 {
		panic("server: cache capacity must be positive")
	}
	return &Cache{
		max:   maxEntries,
		ttl:   ttl,
		now:   time.Now,
		ll:    list.New(),
		items: make(map[string]*list.Element, maxEntries),
	}
}

// Get returns the cached body for key, refreshing its recency. Expired
// entries are evicted on access and report a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(el)
		c.evictedExpired.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.body, true
}

// Put stores body under key as the most recent entry, evicting the least
// recently used entry beyond capacity. The caller must not mutate body
// afterwards (handlers never do: bodies are write-once marshal results).
func (c *Cache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		e.body, e.expires = body, expires
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body, expires: expires})
	for c.ll.Len() > c.max {
		c.removeLocked(c.ll.Back())
		c.evictedCapacity.Inc()
	}
	c.entriesGauge.Set(float64(c.ll.Len()))
}

// Len returns the number of resident entries (expired ones included
// until touched).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *Cache) removeLocked(el *list.Element) {
	delete(c.items, el.Value.(*cacheEntry).key)
	c.ll.Remove(el)
	c.entriesGauge.Set(float64(c.ll.Len()))
}
