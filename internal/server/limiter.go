package server

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/telemetry"
)

// ErrQueueFull reports that the admission queue is at capacity; the
// request is shed immediately (429 Retry-After) instead of waiting.
var ErrQueueFull = errors.New("server: admission queue full")

// ErrDraining reports that the server is shutting down and admits no new
// computations (503 Retry-After); in-flight work completes.
var ErrDraining = errors.New("server: draining")

// Limiter is the admission controller: a semaphore bounding concurrent
// computations plus a bounded FIFO-ish wait queue. Model evaluations are
// CPU-bound, so admitting more than the core count just thrashes; beyond
// the queue bound, shedding immediately beats queueing work whose client
// will have timed out by the time it runs (classic load-shedding
// doctrine). Waiters give up when their request deadline expires.
type Limiter struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64

	// Optional gauges mirroring the limiter state into the metrics
	// registry (nil-safe, like all telemetry instruments).
	inflightGauge *telemetry.Gauge
	queueGauge    *telemetry.Gauge
}

// NewLimiter returns a limiter admitting maxInflight concurrent holders
// with at most maxQueue waiters. Both must be positive.
func NewLimiter(maxInflight, maxQueue int) *Limiter {
	if maxInflight <= 0 || maxQueue <= 0 {
		panic("server: limiter bounds must be positive")
	}
	return &Limiter{slots: make(chan struct{}, maxInflight), maxQueue: int64(maxQueue)}
}

// Acquire obtains a computation slot, waiting in the bounded queue if
// none is free. It fails fast with ErrQueueFull when the queue is at
// capacity, and with ctx.Err() if the deadline expires while queued.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		l.inflightGauge.Add(1)
		return nil
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		return ErrQueueFull
	}
	l.queueGauge.Add(1)
	defer func() {
		l.queued.Add(-1)
		l.queueGauge.Add(-1)
	}()
	select {
	case l.slots <- struct{}{}:
		l.inflightGauge.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot obtained by a successful Acquire.
func (l *Limiter) Release() {
	<-l.slots
	l.inflightGauge.Add(-1)
}

// Inflight returns the number of held slots.
func (l *Limiter) Inflight() int { return len(l.slots) }

// Queued returns the number of waiters.
func (l *Limiter) Queued() int { return int(l.queued.Load()) }
