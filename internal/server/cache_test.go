package server

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2, 0)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes the LRU victim
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be resident")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewCache(8, time.Minute)
	c.now = func() time.Time { return now }
	c.Put("k", []byte("V"))
	now = now.Add(59 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry expired early")
	}
	now = now.Add(2 * time.Second) // 61s after Put, but Get refreshed nothing: TTL is from Put
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry should have expired")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry still resident, len = %d", c.Len())
	}
	// Re-Put restarts the clock.
	c.Put("k", []byte("V2"))
	now = now.Add(30 * time.Second)
	if b, ok := c.Get("k"); !ok || string(b) != "V2" {
		t.Fatalf("re-put entry = %q, %v", b, ok)
	}
}

func TestCachePutOverwrites(t *testing.T) {
	c := NewCache(4, 0)
	c.Put("k", []byte("old"))
	c.Put("k", []byte("new"))
	if b, _ := c.Get("k"); string(b) != "new" {
		t.Fatalf("got %q, want new", b)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(64, time.Minute)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Put(k, []byte(k))
				if b, ok := c.Get(k); ok && string(b) != k {
					t.Errorf("got %q under key %q", b, k)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestCacheEvictionInstruments(t *testing.T) {
	reg := telemetry.NewRegistry()
	now := time.Unix(1000, 0)
	c := NewCache(2, time.Minute)
	c.now = func() time.Time { return now }
	c.entriesGauge = reg.Gauge("g", "")
	c.evictedCapacity = reg.Counter("cap", "")
	c.evictedExpired = reg.Counter("exp", "")

	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Put("c", []byte("C")) // capacity eviction of a
	if got := c.evictedCapacity.Value(); got != 1 {
		t.Fatalf("capacity evictions = %g, want 1", got)
	}
	if got := c.entriesGauge.Value(); got != 2 {
		t.Fatalf("entries gauge = %g, want 2", got)
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have expired")
	}
	if got := c.evictedExpired.Value(); got != 1 {
		t.Fatalf("expired evictions = %g, want 1", got)
	}
	if got := c.entriesGauge.Value(); got != 1 {
		t.Fatalf("entries gauge = %g, want 1 after expiry", got)
	}
}
